// Diskwrites: Darwin optimising a hardware-dependent objective (§6.3). An
// SSD-backed server wants high hit rates *and* few disk writes (SSD write
// endurance is CAPEX, §2.2). The same Darwin framework is retrained with the
// combined objective OHR − K·diskWrite pressure; only the reward changes.
//
//	go run ./examples/diskwrites
package main

import (
	"fmt"
	"log"

	"darwin"
)

func main() {
	experts := darwin.ExpertGrid(
		[]int{1, 2, 3, 5, 7},
		[]int64{2 << 10, 10 << 10, 50 << 10, 200 << 10},
	)
	eval := darwin.EvalConfig{HOCBytes: 512 << 10, DCBytes: 64 << 20, WarmupFrac: 0.1}
	const warmup = 2_000

	var train []*darwin.Trace
	for _, pct := range []int{0, 25, 50, 75, 100} {
		for seed := int64(0); seed < 2; seed++ {
			tr, err := darwin.ImageDownloadMix(pct, 20_000, 8800+100*int64(pct)+seed)
			if err != nil {
				log.Fatal(err)
			}
			train = append(train, tr)
		}
	}
	ds, err := darwin.BuildDataset(train, darwin.DatasetConfig{
		Experts: experts, Eval: eval, FeatureWindow: warmup,
	})
	if err != nil {
		log.Fatal(err)
	}

	live, err := darwin.ImageDownloadMix(0, 60_000, 555)
	if err != nil {
		log.Fatal(err)
	}

	run := func(obj darwin.Objective) darwin.CacheMetrics {
		model, err := darwin.Train(ds, darwin.TrainConfig{
			Objective: obj, NumClusters: 5, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		hier, err := darwin.NewCache(darwin.CacheConfig{HOCBytes: eval.HOCBytes, DCBytes: eval.DCBytes})
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := darwin.NewController(model, hier, darwin.OnlineConfig{
			Epoch: 60_000, Warmup: warmup, Round: 600, Delta: 0.05, StabilityRounds: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range live.Requests {
			ctrl.Serve(r)
		}
		for _, d := range ctrl.Diags() {
			fmt.Printf("  [%s] epoch %d -> %s\n", obj.Name(), d.Epoch, d.Chosen)
		}
		return ctrl.Metrics()
	}

	fmt.Println("same framework, two objectives (only the reward changes):")
	ohr := run(darwin.OHRObjective{})
	combined := run(darwin.CombinedObjective{K: 2})

	report := func(name string, m darwin.CacheMetrics) {
		// §6.3 approximates SSD write pressure by the bytes missed in the
		// HOC, which the disk tier must then serve or absorb.
		writePressure := float64(m.Bytes-m.HOCHitBytes) / float64(m.Requests)
		fmt.Printf("%-22s OHR %.4f  BMR %.4f  HOC-miss (SSD) pressure %.0f B/req\n",
			name, m.OHR(), m.BMR(), writePressure)
	}
	fmt.Println()
	report("darwin[ohr]", ohr)
	report("darwin[ohr-diskwrite]", combined)
	fmt.Println("\nthe combined objective trades a little OHR for fewer bytes pushed at the SSD")
}
