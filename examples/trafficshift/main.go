// Trafficshift: the scenario that motivates Darwin (§2.1) — a CDN load
// balancer abruptly changes a server's traffic mix (e.g. a major software
// update is released and a Web-heavy server starts serving large downloads).
// Darwin re-identifies the best admission expert each epoch; static experts
// tuned for the old mix degrade.
//
//	go run ./examples/trafficshift
package main

import (
	"fmt"
	"log"

	"darwin"
)

func main() {
	experts := darwin.ExpertGrid(
		[]int{1, 2, 3, 5, 7},
		[]int64{2 << 10, 10 << 10, 50 << 10, 200 << 10},
	)
	eval := darwin.EvalConfig{HOCBytes: 512 << 10, DCBytes: 64 << 20, WarmupFrac: 0.1}
	const (
		epoch  = 40_000
		warmup = 2_000
	)

	// Offline phase over the mix space.
	fmt.Println("offline training...")
	var train []*darwin.Trace
	for _, pct := range []int{0, 25, 50, 75, 100} {
		for seed := int64(0); seed < 2; seed++ {
			tr, err := darwin.ImageDownloadMix(pct, 20_000, 7000+100*int64(pct)+seed)
			if err != nil {
				log.Fatal(err)
			}
			train = append(train, tr)
		}
	}
	ds, err := darwin.BuildDataset(train, darwin.DatasetConfig{
		Experts: experts, Eval: eval, FeatureWindow: warmup,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := darwin.Train(ds, darwin.TrainConfig{NumClusters: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// The live workload: three epochs with a hard mix shift between them —
	// image-heavy browsing, then an iOS-update-style download surge, then a
	// mixed steady state.
	seg1, err := darwin.ImageDownloadMix(100, epoch, 31)
	if err != nil {
		log.Fatal(err)
	}
	seg2, err := darwin.ImageDownloadMix(0, epoch, 32)
	if err != nil {
		log.Fatal(err)
	}
	seg3, err := darwin.ImageDownloadMix(50, epoch, 33)
	if err != nil {
		log.Fatal(err)
	}
	live := darwin.ConcatTraces("shifting-live", seg1, seg2, seg3)

	// Darwin adapts at epoch boundaries.
	hier, err := darwin.NewCache(darwin.CacheConfig{HOCBytes: eval.HOCBytes, DCBytes: eval.DCBytes})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := darwin.NewController(model, hier, darwin.OnlineConfig{
		Epoch: epoch, Warmup: warmup, Round: 600, Delta: 0.05, StabilityRounds: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	var marks []darwin.CacheMetrics
	for i, r := range live.Requests {
		if i%epoch == 0 {
			marks = append(marks, ctrl.Metrics())
		}
		ctrl.Serve(r)
	}
	marks = append(marks, ctrl.Metrics())

	fmt.Println("\nper-epoch adaptation:")
	for _, d := range ctrl.Diags() {
		fmt.Printf("  epoch %d: cluster %d, %d candidates, %d rounds (%s) -> %s\n",
			d.Epoch, d.Cluster, d.SetSize, d.Rounds, d.StopReason, d.Chosen)
	}
	names := []string{"image-heavy", "download-surge", "mixed"}
	fmt.Println("\nper-segment HOC OHR:")
	for i := 0; i+1 < len(marks); i++ {
		seg := marks[i+1].Sub(marks[i])
		fmt.Printf("  %-15s darwin %.4f\n", names[i], seg.OHR())
	}

	// The counterfactual: stick with the expert that was best for segment 1.
	firstChoice := ctrl.Diags()[0].Chosen
	m, err := darwin.Evaluate(live, firstChoice, darwin.EvalConfig{
		HOCBytes: eval.HOCBytes, DCBytes: eval.DCBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhole trace: darwin %.4f vs frozen %s %.4f\n",
		ctrl.Metrics().OHR(), firstChoice, m.OHR())
}
