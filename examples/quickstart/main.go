// Quickstart: train Darwin offline on synthetic traces, then let it manage a
// cache online and compare against a hand-tuned static expert.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"darwin"
)

func main() {
	// The expert grid: candidate HOC admission policies (f, s).
	experts := darwin.ExpertGrid(
		[]int{1, 2, 3, 5, 7},
		[]int64{2 << 10, 10 << 10, 50 << 10, 200 << 10},
	)
	eval := darwin.EvalConfig{HOCBytes: 512 << 10, DCBytes: 64 << 20, WarmupFrac: 0.1}

	// 1. Offline: collect historical traces across traffic mixes. In a real
	// deployment these come from CDN logs; here the Tragen-like generator
	// synthesises Image:Download mixes.
	fmt.Println("building offline training corpus...")
	var train []*darwin.Trace
	for _, pct := range []int{0, 25, 50, 75, 100} {
		for seed := int64(0); seed < 2; seed++ {
			tr, err := darwin.ImageDownloadMix(pct, 20_000, 100*int64(pct)+seed)
			if err != nil {
				log.Fatal(err)
			}
			train = append(train, tr)
		}
	}

	// 2. Offline: evaluate experts, cluster traffic, train predictors.
	const warmup = 2_000
	ds, err := darwin.BuildDataset(train, darwin.DatasetConfig{
		Experts:       experts,
		Eval:          eval,
		FeatureWindow: warmup,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := darwin.Train(ds, darwin.TrainConfig{NumClusters: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d traces with %d experts\n", len(train), len(experts))

	// 3. Online: a live workload the model has never seen (pure Image).
	live, err := darwin.ImageDownloadMix(100, 60_000, 4242)
	if err != nil {
		log.Fatal(err)
	}
	hier, err := darwin.NewCache(darwin.CacheConfig{HOCBytes: eval.HOCBytes, DCBytes: eval.DCBytes})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := darwin.NewController(model, hier, darwin.OnlineConfig{
		Epoch:           60_000,
		Warmup:          warmup,
		Round:           600,
		Delta:           0.05,
		StabilityRounds: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range live.Requests {
		ctrl.Serve(r)
	}
	for _, d := range ctrl.Diags() {
		fmt.Printf("epoch %d: cluster %d, %d candidates, %d bandit rounds (%s) -> deployed %s\n",
			d.Epoch, d.Cluster, d.SetSize, d.Rounds, d.StopReason, d.Chosen)
	}
	fmt.Printf("darwin OHR: %.4f\n", ctrl.Metrics().OHR())

	// Compare with a static expert tuned for a different (Download) mix.
	static := darwin.Expert{Freq: 1, MaxSize: 200 << 10}
	m, err := darwin.Evaluate(live, static, darwin.EvalConfig{
		HOCBytes: eval.HOCBytes, DCBytes: eval.DCBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static %s OHR: %.4f\n", static, m.OHR())
}
