// Cluster: the full §2.1 scenario end to end. A global workload is routed
// over a four-server cluster by a consistent-hashing load balancer with
// bounded loads; mid-run, two servers drain and the survivors absorb their
// traffic, shifting every surviving server's mix. Each server runs its own
// Darwin controller and re-identifies its best admission expert.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"darwin"
)

func main() {
	experts := darwin.ExpertGrid(
		[]int{1, 2, 3, 5, 7},
		[]int64{2 << 10, 10 << 10, 50 << 10, 200 << 10},
	)
	eval := darwin.EvalConfig{HOCBytes: 512 << 10, DCBytes: 64 << 20, WarmupFrac: 0.1}
	const warmup = 1_500

	// Offline phase shared by all edge servers (one model, many deployments).
	fmt.Println("offline training (shared model)...")
	var train []*darwin.Trace
	for _, pct := range []int{0, 25, 50, 75, 100} {
		for seed := int64(0); seed < 2; seed++ {
			tr, err := darwin.ImageDownloadMix(pct, 15_000, 5100+100*int64(pct)+seed)
			if err != nil {
				log.Fatal(err)
			}
			train = append(train, tr)
		}
	}
	ds, err := darwin.BuildDataset(train, darwin.DatasetConfig{
		Experts: experts, Eval: eval, FeatureWindow: warmup,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := darwin.Train(ds, darwin.TrainConfig{NumClusters: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// A global workload, balanced over four servers; halfway through, two
	// servers drain for maintenance and the survivors absorb their traffic.
	global, err := darwin.ImageDownloadMix(50, 160_000, 9001)
	if err != nil {
		log.Fatal(err)
	}
	subs, err := darwin.SplitTrace(global, darwin.LoadBalancerConfig{
		Servers:        4,
		RebalanceEvery: 20_000,
		LoadFactor:     0.15,
		WeightSchedule: func(window int) []float64 {
			if window < 4 {
				return []float64{1, 1, 1, 1}
			}
			return []float64{1, 1, 0.05, 0.05} // servers 2 and 3 drain
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-server Darwin deployments:")
	for si, sub := range subs {
		if sub.Len() < 10_000 {
			fmt.Printf("server %d: only %d requests (drained), skipping controller\n", si, sub.Len())
			continue
		}
		hier, err := darwin.NewCache(darwin.CacheConfig{HOCBytes: eval.HOCBytes, DCBytes: eval.DCBytes})
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := darwin.NewController(model, hier, darwin.OnlineConfig{
			Epoch: 20_000, Warmup: warmup, Round: 500, Delta: 0.05, StabilityRounds: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range sub.Requests {
			ctrl.Serve(r)
		}
		fmt.Printf("server %d: %d requests, OHR %.4f\n", si, sub.Len(), ctrl.Metrics().OHR())
		for _, d := range ctrl.Diags() {
			fmt.Printf("   epoch %d: %d candidates, %d rounds (%s) -> %s\n",
				d.Epoch, d.SetSize, d.Rounds, d.StopReason, d.Chosen)
		}
	}
}
