// Prototype: the full HTTP testbed in one process (§5, §6.4) — an origin
// server with injected WAN latency, a Darwin-managed caching proxy, and a
// closed-loop load generator measuring first-byte latency and throughput.
//
//	go run ./examples/prototype
//	go run ./examples/prototype -shards 4   # lock-striped proxy data plane
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"darwin"
)

func main() {
	shards := flag.Int("shards", 0, "cache engine shard count (0 = auto, 1 = serial/global-lock)")
	flag.Parse()
	if *shards <= 0 {
		*shards = darwin.AutoShards()
	}
	experts := darwin.ExpertGrid(
		[]int{1, 2, 3, 5},
		[]int64{2 << 10, 10 << 10, 50 << 10, 200 << 10},
	)
	eval := darwin.EvalConfig{HOCBytes: 512 << 10, DCBytes: 64 << 20, WarmupFrac: 0.1}
	const warmup = 1_500

	// Offline phase.
	fmt.Println("training offline model...")
	var train []*darwin.Trace
	for _, pct := range []int{0, 50, 100} {
		for seed := int64(0); seed < 2; seed++ {
			tr, err := darwin.ImageDownloadMix(pct, 15_000, 2200+100*int64(pct)+seed)
			if err != nil {
				log.Fatal(err)
			}
			train = append(train, tr)
		}
	}
	ds, err := darwin.BuildDataset(train, darwin.DatasetConfig{
		Experts: experts, Eval: eval, FeatureWindow: warmup,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := darwin.Train(ds, darwin.TrainConfig{NumClusters: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Origin with injected WAN latency.
	origin := &darwin.Origin{Latency: 5 * time.Millisecond}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	// Darwin-managed proxy with a disk-latency DC, over a sharded engine so
	// concurrent clients hit per-shard locks instead of one global mutex.
	eng, err := darwin.NewShardedCache(darwin.CacheConfig{HOCBytes: eval.HOCBytes, DCBytes: eval.DCBytes}, *shards)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := darwin.NewController(model, eng, darwin.OnlineConfig{
		Epoch: 20_000, Warmup: warmup, Round: 500, Delta: 0.05, StabilityRounds: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	proxy := darwin.NewProxy(ctrl, originSrv.URL, time.Millisecond)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()
	fmt.Printf("origin %s (5ms), proxy %s (1ms disk, %d shards)\n", originSrv.URL, proxySrv.URL, eng.Shards())

	// Load: a mixed workload replayed by concurrent closed-loop clients.
	live, err := darwin.ImageDownloadMix(60, 8_000, 777)
	if err != nil {
		log.Fatal(err)
	}
	for _, conc := range []int{1, 8, 32} {
		res, err := darwin.RunLoad(context.Background(), live, darwin.LoadConfig{
			ProxyURL:    proxySrv.URL,
			Concurrency: conc,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("concurrency %3d: %.1f Mbps, p50 %-8v p99 %-8v (%d hoc / %d dc / %d miss)\n",
			conc, res.ThroughputBps()/1e6,
			res.LatencyPercentile(50).Round(10*time.Microsecond),
			res.LatencyPercentile(99).Round(10*time.Microsecond),
			res.HOCHits, res.DCHits, res.Misses)
	}
	reqs, bytes := origin.Stats()
	m := proxy.Metrics()
	fmt.Printf("\nproxy OHR %.4f; origin saw %d requests (%.1f MB midgress)\n",
		m.OHR(), reqs, float64(bytes)/(1<<20))
}
