// bench_test.go regenerates every table and figure of the Darwin paper's
// evaluation (one benchmark per table/figure; see DESIGN.md §3). Each
// benchmark prints the paper-style report once and times the experiment's
// core operation, so `go test -bench=. -benchmem` both measures the system
// and emits the rows the paper reports.
package darwin_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"darwin/internal/bandit"
	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/exp"
	"darwin/internal/features"
	"darwin/internal/trace"
)

var printed sync.Map

// printOnce emits a report the first time a benchmark runs (go test re-runs
// benchmark functions with growing b.N).
func printOnce(key string, reps ...*exp.Report) {
	if _, loaded := printed.LoadOrStore(key, true); loaded {
		return
	}
	for _, r := range reps {
		fmt.Println(r.String())
	}
}

func benchCorpus(b *testing.B) *exp.Corpus {
	b.Helper()
	c, err := exp.CachedCorpus(exp.Small(), "ohr")
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func mustMix(b *testing.B, pct, n int, seed int64) *trace.Trace {
	b.Helper()
	tr, err := exp.SyntheticMix(pct, n, seed)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// --- Table 1 -------------------------------------------------------------

func BenchmarkTable1Capabilities(b *testing.B) {
	printOnce("table1", exp.Table1())
	for i := 0; i < b.N; i++ {
		_ = exp.Table1().String()
	}
}

// --- Figure 2 ------------------------------------------------------------

func benchFig2(b *testing.B, key, title string, pct int, seed int64, metric exp.GridMetric) {
	sc := exp.Small()
	tr := mustMix(b, pct, sc.OnlineTraceLen, seed)
	rep, err := exp.Fig2Grid(title, tr, sc.Experts, sc.Eval, metric)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(key, rep)
	e := sc.Experts[len(sc.Experts)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Core operation: one full-trace single-expert evaluation.
		if _, err := cache.Evaluate(tr, e, sc.Eval); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ProductionWindows(b *testing.B) {
	sc := exp.Small()
	w1 := mustMix(b, 60, sc.OnlineTraceLen, sc.Seed+11)
	w2 := mustMix(b, 30, sc.OnlineTraceLen, sc.Seed+12)
	r1, err := exp.Fig2Grid("Figure 2a: production window 1 OHR (mix 60:40)", w1, sc.Experts, sc.Eval, exp.GridOHR)
	if err != nil {
		b.Fatal(err)
	}
	r2, err := exp.Fig2Grid("Figure 2b: production window 2 OHR (mix 30:70)", w2, sc.Experts, sc.Eval, exp.GridOHR)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig2ab", r1, r2)
	e := sc.Experts[len(sc.Experts)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Evaluate(w1, e, sc.Eval); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ImageOHR(b *testing.B) {
	benchFig2(b, "fig2c", "Figure 2c: Image class OHR", 100, exp.Small().Seed+13, exp.GridOHR)
}

func BenchmarkFig2DownloadOHR(b *testing.B) {
	benchFig2(b, "fig2d", "Figure 2d: Download class OHR", 0, exp.Small().Seed+14, exp.GridOHR)
}

func BenchmarkFig2DownloadDiskWrite(b *testing.B) {
	benchFig2(b, "fig2e", "Figure 2e: Download class disk writes", 0, exp.Small().Seed+14, exp.GridDiskWrite)
}

// --- Figure 4 ------------------------------------------------------------

func BenchmarkFig4aSimulation(b *testing.B) {
	c := benchCorpus(b)
	rep, _, diags, err := exp.Fig4Compare(c, "Figure 4a: Darwin vs baselines (simulation, small HOC)")
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig4a", rep, exp.Fig5dBanditRounds(diags))
	tr := c.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Core operation: a full Darwin online run over one test trace.
		if _, _, err := exp.RunDarwin(c, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4bLargeCache(b *testing.B) {
	c, err := exp.ScaledCorpus(exp.Small(), 5)
	if err != nil {
		b.Fatal(err)
	}
	rep, _, _, err := exp.Fig4Compare(c, "Figure 4b: Darwin vs baselines (5x scaled cache)")
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig4b", rep)
	tr := c.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.RunDarwin(c, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4cPrototypeOHR(b *testing.B) {
	c, err0 := exp.CachedCorpus(exp.PrototypeScale(exp.Small()), "ohr")
	if err0 != nil {
		b.Fatal(err0)
	}
	pc := exp.DefaultPrototypeConfig()
	tr, err := exp.PrototypeTrace(c, pc.TraceLen)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := exp.Fig4cPrototypeOHR(c, pc, tr)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig4c", rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4cPrototypeOHR(c, pc, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5 ------------------------------------------------------------

func BenchmarkFig5aFeatureConvergence(b *testing.B) {
	c := benchCorpus(b)
	fcfg := features.DefaultConfig()
	rep, err := exp.Fig5aFeatureConvergence(c.Train, fcfg, []float64{0.01, 0.03, 0.1, 0.3, 0.5, 0.9})
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig5a", rep)
	tr := c.Train[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Core operation: full-trace feature extraction (the warm-up work).
		if _, err := features.FromTrace(tr, fcfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5bClusterReduction(b *testing.B) {
	c := benchCorpus(b)
	rep, err := exp.Fig5bClusterReduction(c.Dataset, c.Scale.NumClusters, []float64{1, 2, 5}, c.Scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig5b", rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Core operation: clustering + expert-set association.
		if _, err := core.Train(c.Dataset, core.TrainConfig{
			NumClusters: c.Scale.NumClusters, ThetaPct: 1, Seed: 1, SkipPredictors: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5cPredictorAccuracy(b *testing.B) {
	c := benchCorpus(b)
	rep, err := exp.Fig5cPredictorAccuracy(c.Model, c.Dataset.Records, []float64{1, 2, 5})
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig5c", rep)
	// Core operation: one cross-expert inference (the per-round online cost).
	var i0, j0 = -1, -1
	for _, set := range c.Model.ExpertSets {
		if len(set) >= 2 {
			i0, j0 = set[0], set[1]
			break
		}
	}
	if i0 < 0 {
		b.Skip("no trained predictor pair")
	}
	x := c.Dataset.Records[0].Extended
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Model.PredictCond(i0, j0, x)
	}
}

func BenchmarkFig10OutOfDistribution(b *testing.B) {
	// Figure 10: predictors evaluated on records drawn from a different
	// distribution (held-out test traces) than they were trained on.
	c := benchCorpus(b)
	testDS, err := core.BuildDataset(c.Test, core.DatasetConfig{
		Experts:       c.Scale.Experts,
		Eval:          c.Scale.Eval,
		FeatureWindow: c.Scale.Online.Warmup,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := exp.Fig5cPredictorAccuracy(c.Model, testDS.Records, []float64{1, 2, 5})
	if err != nil {
		b.Fatal(err)
	}
	rep.Title = "Figure 10: out-of-distribution " + rep.Title
	printOnce("fig10", rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5cPredictorAccuracy(c.Model, testDS.Records, []float64{1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5dBanditRounds(b *testing.B) {
	c := benchCorpus(b)
	_, _, diags, err := exp.Fig4Compare(c, "fig4a-for-5d")
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig5d", exp.Fig5dBanditRounds(diags))
	// Core operation: one synthetic best-arm identification run.
	mu := []float64{0.45, 0.40, 0.35, 0.30}
	sigma2 := make([][]float64, len(mu))
	for i := range sigma2 {
		sigma2[i] = make([]float64, len(mu))
		for j := range sigma2[i] {
			sigma2[i][j] = 0.02
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := bandit.NewEnv(mu, sigma2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		alg, err := bandit.New(bandit.DefaultConfig(sigma2))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := bandit.Run(alg, env, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6 ------------------------------------------------------------

func benchFig6(b *testing.B, key, objective, title string) {
	rep, err := exp.Fig6Objective(exp.Small(), objective, title)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(key, rep)
	c, err := exp.CachedCorpus(exp.Small(), objective)
	if err != nil {
		b.Fatal(err)
	}
	tr := c.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.RunDarwin(c, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aBMR(b *testing.B) {
	benchFig6(b, "fig6a", "bmr", "Figure 6a: HOC byte miss ratio objective")
}

func BenchmarkFig6bDiskWriteObjective(b *testing.B) {
	benchFig6(b, "fig6b", "combined", "Figure 6b: OHR - disk-write objective")
}

// --- Figure 7 ------------------------------------------------------------

func BenchmarkFig7aLatencyCDF(b *testing.B) {
	c, err0 := exp.CachedCorpus(exp.PrototypeScale(exp.Small()), "ohr")
	if err0 != nil {
		b.Fatal(err0)
	}
	pc := exp.DefaultPrototypeConfig()
	tr, err := exp.PrototypeTrace(c, pc.TraceLen)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := exp.Fig7aLatency(c, pc, tr)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig7a", rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7aLatency(c, pc, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7bThroughput(b *testing.B) {
	c, err0 := exp.CachedCorpus(exp.PrototypeScale(exp.Small()), "ohr")
	if err0 != nil {
		b.Fatal(err0)
	}
	pc := exp.DefaultPrototypeConfig()
	pc.ConcurrencySweep = []int{1, 8, 32}
	tr, err := exp.PrototypeTrace(c, pc.TraceLen)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := exp.Fig7bThroughput(c, pc, tr)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig7b", rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7bThroughput(c, pc, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2 -------------------------------------------------------------

func BenchmarkTable2Improvements(b *testing.B) {
	c := benchCorpus(b)
	rep, err := exp.Table2(c)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("table2", rep)
	tr := c.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Core operation: one adaptive-baseline run (Percentile).
		srv, err := exp.NewBaseline("percentile", c)
		if err != nil {
			b.Fatal(err)
		}
		baselines.Play(srv, tr, c.Scale.Eval.WarmupFrac)
	}
}

// --- Figure 11 -----------------------------------------------------------

func BenchmarkFig11ThreeKnobReduction(b *testing.B) {
	sc := exp.Small()
	rep, err := exp.Fig11ThreeKnob(sc, []float64{1, 5})
	if err != nil {
		b.Fatal(err)
	}
	printOnce("fig11", rep)
	g := cache.Grid3([]int{2, 3}, []int64{2 << 10, 50 << 10}, []int64{2000, 10000})
	tr := mustMix(b, 50, 10000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.EvaluateAll(tr, g, sc.Eval); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §6.4 overhead -------------------------------------------------------

func BenchmarkOverheadAccounting(b *testing.B) {
	c := benchCorpus(b)
	rep, err := exp.OverheadReport(c, c.Test[0])
	if err != nil {
		b.Fatal(err)
	}
	printOnce("overhead", rep)
	// Core operation: per-request cost of a Darwin-managed cache (§6.4's
	// claim: learning is off the request path).
	hier, err := cache.New(cache.Config{HOCBytes: c.Scale.Eval.HOCBytes, DCBytes: c.Scale.Eval.DCBytes})
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := core.NewController(c.Model, hier, c.Scale.Online)
	if err != nil {
		b.Fatal(err)
	}
	tr := c.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Serve(tr.Requests[i%tr.Len()])
	}
}

// --- Ablations -----------------------------------------------------------

func BenchmarkAblationSideInfo(b *testing.B) {
	rep, err := exp.AblationSideInfo(exp.Small())
	if err != nil {
		b.Fatal(err)
	}
	// Also demonstrate the Theorem-2 scaling claim on synthetic Gaussian
	// environments: rounds-to-identify vs K.
	scaling := &exp.Report{
		Title:  "Ablation: rounds to identify vs number of experts K (synthetic)",
		Header: []string{"K", "side-info rounds", "side-info acc", "standard rounds", "standard acc"},
	}
	for _, k := range []int{4, 8, 16} {
		mu := make([]float64, k)
		for i := range mu {
			mu[i] = 0.5 - 0.04*float64(i)
		}
		side := make([][]float64, k)
		own := make([]float64, k)
		for i := range side {
			side[i] = make([]float64, k)
			own[i] = 0.02
			for j := range side[i] {
				side[i][j] = 0.02
			}
		}
		std := bandit.StandardSigma2(own)
		avg := func(sigma2 [][]float64) (float64, float64) {
			total, correct := 0, 0
			const trials = 20
			for t := 0; t < trials; t++ {
				env, err := bandit.NewEnv(mu, sigma2, int64(100*k+t))
				if err != nil {
					b.Fatal(err)
				}
				alg, err := bandit.New(bandit.DefaultConfig(sigma2))
				if err != nil {
					b.Fatal(err)
				}
				best, rounds, err := bandit.Run(alg, env, 5000)
				if err != nil {
					b.Fatal(err)
				}
				total += rounds
				if best == 0 {
					correct++
				}
			}
			return float64(total) / trials, float64(correct) / trials
		}
		sr, sa := avg(side)
		tr2, ta := avg(std)
		scaling.AddRow(fmt.Sprint(k),
			fmt.Sprintf("%.1f", sr), fmt.Sprintf("%.2f", sa),
			fmt.Sprintf("%.1f", tr2), fmt.Sprintf("%.2f", ta))
	}
	printOnce("ablation-sideinfo", rep, scaling)
	sigma2 := [][]float64{{0.02, 0.02}, {0.02, 0.02}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := bandit.NewEnv([]float64{0.5, 0.4}, sigma2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		alg, err := bandit.New(bandit.DefaultConfig(sigma2))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := bandit.Run(alg, env, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStopping(b *testing.B) {
	rep, err := exp.AblationStopping(exp.Small())
	if err != nil {
		b.Fatal(err)
	}
	rep2, err := exp.AblationRoundLength(exp.Small(), []int{250, 500, 1000})
	if err != nil {
		b.Fatal(err)
	}
	printOnce("ablation-stopping", rep, rep2)
	nu := []float64{0.5, 0.45, 0.4}
	sigma2 := make([][]float64, 3)
	for i := range sigma2 {
		sigma2[i] = []float64{0.02, 0.02, 0.02}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Core operation: one allocation solve (Eq. 3), the per-round cost.
		alpha := bandit.SolveAlpha(nu, sigma2)
		if math.IsNaN(alpha[0]) {
			b.Fatal("NaN allocation")
		}
	}
}

func BenchmarkAblationEviction(b *testing.B) {
	// DESIGN.md design-choice ablation: the paper evaluates with LRU at both
	// levels; how much does the HOC eviction policy matter under the best
	// static expert?
	sc := exp.Small()
	tr := mustMix(b, 50, sc.OnlineTraceLen, sc.Seed+77)
	rep := &exp.Report{
		Title:  "Ablation: HOC eviction policy under the best static expert",
		Header: []string{"eviction", "OHR", "BMR"},
	}
	e := cache.Expert{Freq: 2, MaxSize: 50 << 10}
	for _, name := range []string{"lru", "s4lru", "lfu", "fifo"} {
		cfg := sc.Eval
		cfg.HOCEviction = name
		m, err := cache.Evaluate(tr, e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep.AddRow(name, fmt.Sprintf("%.4f", m.OHR()), fmt.Sprintf("%.4f", m.BMR()))
	}
	printOnce("ablation-eviction", rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sc.Eval
		cfg.HOCEviction = "s4lru"
		if _, err := cache.Evaluate(tr, e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPredictorFeatures(b *testing.B) {
	c := benchCorpus(b)
	testDS, err := core.BuildDataset(c.Test, core.DatasetConfig{
		Experts:       c.Scale.Experts,
		Eval:          c.Scale.Eval,
		FeatureWindow: c.Scale.Online.Warmup,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := exp.AblationPredictorFeatures(exp.Small(), testDS.Records)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("ablation-features", rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Core operation: training one predictor-set pass without nets for
		// reference cost (clustering + sets).
		if _, err := core.Train(c.Dataset, core.TrainConfig{
			NumClusters: c.Scale.NumClusters, SkipPredictors: true, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureWorkEvictionSelection(b *testing.B) {
	// §7 future work implemented: Darwin's selection machinery applied to
	// HOC *eviction* policies. The report compares the online selector
	// against each fixed eviction policy on the same trace.
	sc := exp.Small()
	tr := mustMix(b, 50, sc.OnlineTraceLen, sc.Seed+88)
	rep := &exp.Report{
		Title:  "Future work (§7): online eviction-policy selection",
		Header: []string{"policy", "OHR"},
	}
	e := cache.Expert{Freq: 2, MaxSize: 50 << 10}
	for _, name := range []string{"lru", "s4lru", "lfu", "gdsf"} {
		cfg := sc.Eval
		cfg.HOCEviction = name
		m, err := cache.Evaluate(tr, e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep.AddRow("fixed "+name, fmt.Sprintf("%.4f", m.OHR()))
	}
	runSelector := func() (float64, string, error) {
		h, err := cache.New(cache.Config{HOCBytes: sc.Eval.HOCBytes, DCBytes: sc.Eval.DCBytes, Expert: e})
		if err != nil {
			return 0, "", err
		}
		sel, err := core.NewEvictionSelector(h, core.EvictionSelectorConfig{
			Epoch: sc.OnlineTraceLen + 1, Round: sc.Online.Round, StabilityRounds: 5,
		})
		if err != nil {
			return 0, "", err
		}
		warm := int(float64(tr.Len()) * sc.Eval.WarmupFrac)
		for i, r := range tr.Requests {
			if i == warm {
				h.ResetMetrics()
			}
			sel.Serve(r)
		}
		return sel.Metrics().OHR(), sel.Deployed(), nil
	}
	ohr, deployed, err := runSelector()
	if err != nil {
		b.Fatal(err)
	}
	rep.AddRow("darwin-selected ("+deployed+")", fmt.Sprintf("%.4f", ohr))
	rep.AddNote("the selector converges onto a competitive policy online, with exploration cost")
	printOnce("future-eviction", rep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runSelector(); err != nil {
			b.Fatal(err)
		}
	}
}
