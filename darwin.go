// Package darwin is a from-scratch Go implementation of Darwin, the
// flexible learning-based CDN cache management system of Chen et al.
// (ACM SIGCOMM 2023).
//
// Darwin tunes the admission policy of a CDN server's Hot Object Cache
// (HOC) online. Admission policies are "experts" — (frequency, size[,
// recency]) threshold tuples — and Darwin selects among them with a
// three-stage pipeline:
//
//  1. offline, historical traces are evaluated under every expert, clustered
//     by traffic features, and each cluster is associated with a small set
//     of promising experts;
//  2. offline, cross-expert prediction networks are trained to estimate one
//     expert's hit rate from another's observed behaviour;
//  3. online, each epoch estimates the current traffic's features, matches a
//     cluster, and runs a Track-and-Stop-with-Side-Information bandit that
//     identifies the best expert in the cluster's set, which is then
//     deployed for the remainder of the epoch.
//
// # Quick start
//
//	trainTraces := ...                     // []*darwin.Trace of historical traffic
//	ds, _ := darwin.BuildDataset(trainTraces, darwin.DatasetConfig{})
//	model, _ := darwin.Train(ds, darwin.TrainConfig{})
//	hier, _ := darwin.NewCache(darwin.CacheConfig{HOCBytes: 2 << 20, DCBytes: 200 << 20})
//	ctrl, _ := darwin.NewController(model, hier, darwin.DefaultOnlineConfig())
//	for _, r := range live.Requests {
//	    ctrl.Serve(r)                      // admission adapts online
//	}
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package darwin

import (
	"darwin/internal/bandit"
	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/features"
	"darwin/internal/lb"
	"darwin/internal/server"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

// Request is one CDN request: (object ID, size, timestamp).
type Request = trace.Request

// Trace is an ordered request sequence.
type Trace = trace.Trace

// TraceStats summarises a trace.
type TraceStats = trace.Stats

// ConcatTraces joins traces end-to-end with shifted timestamps, modelling
// load-balancer-driven traffic mix changes.
var ConcatTraces = trace.Concat

// ReadTrace decodes a trace from its "id size time" line format.
var ReadTrace = trace.Read

// Expert is an HOC admission policy: admit objects requested more than Freq
// times with size at most MaxSize (and, optionally, last requested at most
// MaxAge requests ago).
type Expert = cache.Expert

// ExpertGrid builds the cross product of frequency and size thresholds.
var ExpertGrid = cache.Grid

// ExpertGrid3 builds a three-knob (frequency, size, recency) grid.
var ExpertGrid3 = cache.Grid3

// DefaultExpertGrid is the scaled 36-expert grid used throughout the
// reproduction.
var DefaultExpertGrid = cache.DefaultGrid

// CacheConfig parameterises a two-level cache.
type CacheConfig = cache.Config

// Cache is the two-level HOC+DC cache server model.
type Cache = cache.Hierarchy

// CacheMetrics accumulates cache performance counters (OHR, BMR, disk
// writes, ...).
type CacheMetrics = cache.Metrics

// CacheResult says where a request was served from.
type CacheResult = cache.Result

// Request outcomes.
const (
	HOCHit = cache.HOCHit
	DCHit  = cache.DCHit
	Miss   = cache.Miss
)

// NewCache builds a two-level cache.
func NewCache(cfg CacheConfig) (*Cache, error) { return cache.New(cfg) }

// CacheEngine is the cache data-plane seam shared by the simulator, the
// proxy, and the online controller: Cache implements it for serial replay,
// ShardedCache for the concurrent data plane.
type CacheEngine = cache.Engine

// ShardedCache is the concurrent cache engine: N independent cache shards
// with id-hash routing, per-shard locks, and lock-free aggregate metrics.
// One shard reproduces the serial Cache bit-for-bit.
type ShardedCache = cache.Sharded

// NewShardedCache builds a sharded engine, splitting capacities evenly
// across shards (shards <= 0 selects 1).
var NewShardedCache = cache.NewSharded

// AutoShards picks a shard count for this process: 1 (serial, no routing or
// striping overhead) when GOMAXPROCS is 1, otherwise GOMAXPROCS rounded up
// to a power of two so shard routing is a mask.
var AutoShards = cache.AutoShards

// EvalConfig configures single-expert trace evaluations.
type EvalConfig = cache.EvalConfig

// Evaluate plays a trace through a fresh cache under one expert.
var Evaluate = cache.Evaluate

// EvaluateAll evaluates every expert on a trace.
var EvaluateAll = cache.EvaluateAll

// FeatureConfig sets the traffic feature vector shape.
type FeatureConfig = features.Config

// DefaultFeatureConfig returns the paper's 15-entry vector shape.
var DefaultFeatureConfig = features.DefaultConfig

// FeatureExtractor accumulates traffic features over a request stream.
type FeatureExtractor = features.Extractor

// NewFeatureExtractor builds an extractor.
var NewFeatureExtractor = features.NewExtractor

// Dataset is the offline evaluation of a training corpus.
type Dataset = core.Dataset

// DatasetConfig configures BuildDataset.
type DatasetConfig = core.DatasetConfig

// BuildDataset evaluates every expert on every training trace and extracts
// features (offline step 0).
var BuildDataset = core.BuildDataset

// TrainConfig configures offline training.
type TrainConfig = core.TrainConfig

// Model is Darwin's trained offline state.
type Model = core.Model

// Train runs offline clustering, expert-set association, and cross-expert
// predictor training (steps 1a/1b).
var Train = core.Train

// Objective maps cache behaviour to the scalar reward Darwin maximises.
type Objective = core.Objective

// Built-in objectives.
type (
	// OHRObjective maximises the HOC object hit rate.
	OHRObjective = core.OHRObjective
	// BMRObjective minimises the HOC byte miss ratio.
	BMRObjective = core.BMRObjective
	// CombinedObjective maximises OHR − K·(disk-write pressure).
	CombinedObjective = core.CombinedObjective
)

// ObjectiveByName returns "ohr", "bmr", or "combined".
var ObjectiveByName = core.ObjectiveByName

// OnlineConfig parameterises the online selection loop (N_e, N_warmup,
// N_round, δ, ...).
type OnlineConfig = core.OnlineConfig

// DefaultOnlineConfig returns the scaled online defaults.
var DefaultOnlineConfig = core.DefaultOnlineConfig

// Controller drives Darwin's online phase over a cache.
type Controller = core.Controller

// NewController wires a trained model to a cache engine (a *Cache or a
// *ShardedCache).
var NewController = core.NewController

// EpochDiag records one epoch's online decisions.
type EpochDiag = core.EpochDiag

// WriteModel serialises a trained model as JSON (see cmd/darwin-train).
var WriteModel = core.WriteModel

// ReadModel restores a model written by WriteModel.
var ReadModel = core.ReadModel

// OfflineOptimalOHR computes the clairvoyant (Belady-style) hit-rate bound
// for a cache of the given capacity — the "hindsight optimal" reference.
var OfflineOptimalOHR = cache.OfflineOptimalOHR

// EvictionSelectorConfig parameterises online eviction-policy selection, the
// paper's §7 future-work extension.
type EvictionSelectorConfig = core.EvictionSelectorConfig

// EvictionSelector applies Darwin's expert-selection machinery to HOC
// eviction policies.
type EvictionSelector = core.EvictionSelector

// NewEvictionSelector wires a selector to a cache.
var NewEvictionSelector = core.NewEvictionSelector

// BanditConfig parameterises Track and Stop with Side Information directly
// (most callers use Controller instead).
type BanditConfig = bandit.Config

// Bandit is the best-arm identification algorithm of §4.2.
type Bandit = bandit.Algorithm

// NewBandit validates a configuration and returns a fresh identification
// run.
var NewBandit = bandit.New

// TrafficClass describes one synthetic traffic class for the Tragen-like
// generator.
type TrafficClass = tracegen.Class

// Predefined traffic classes.
var (
	ImageClass    = tracegen.Image
	DownloadClass = tracegen.Download
	WebClass      = tracegen.Web
	VideoClass    = tracegen.Video
	ScanClass     = tracegen.Scan
)

// MixConfig configures a mixed-class synthetic trace.
type MixConfig = tracegen.MixConfig

// GenerateTrace produces a mixed synthetic trace.
var GenerateTrace = tracegen.Generate

// ImageDownloadMix generates the paper's canonical two-class mix.
var ImageDownloadMix = tracegen.ImageDownloadMix

// LoadBalancerConfig parameterises the cluster load-balancing model of §2.1
// (consistent hashing with bounded loads and periodic re-evaluation).
type LoadBalancerConfig = lb.Config

// LoadBalancer routes requests to server indices.
type LoadBalancer = lb.Balancer

// NewLoadBalancer builds a cluster balancer.
var NewLoadBalancer = lb.New

// SplitTrace routes a global trace through a load balancer and returns each
// server's sub-trace — the mechanism that imposes per-server traffic-mix
// shifts.
var SplitTrace = lb.Split

// Origin is the prototype's origin server.
type Origin = server.Origin

// Proxy is the prototype's CDN caching proxy.
type Proxy = server.Proxy

// NewProxy builds a proxy around a cache decider.
var NewProxy = server.NewProxy

// LoadConfig configures the prototype load generator.
type LoadConfig = server.LoadConfig

// LoadResult aggregates a load-generation run.
type LoadResult = server.LoadResult

// RunLoad replays a trace against a proxy.
var RunLoad = server.RunLoad
