package darwin_test

import (
	"testing"

	"darwin"
)

// TestEndToEndPublicAPI exercises the documented quick-start flow through
// the public façade only.
func TestEndToEndPublicAPI(t *testing.T) {
	experts := darwin.ExpertGrid([]int{1, 3, 5}, []int64{2 << 10, 20 << 10, 200 << 10})
	eval := darwin.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1}

	// Offline: historical traces → dataset → model.
	var train []*darwin.Trace
	for _, pct := range []int{0, 50, 100} {
		for seed := int64(0); seed < 2; seed++ {
			tr, err := darwin.ImageDownloadMix(pct, 8000, 600+seed+int64(pct))
			if err != nil {
				t.Fatal(err)
			}
			train = append(train, tr)
		}
	}
	ds, err := darwin.BuildDataset(train, darwin.DatasetConfig{
		Experts:       experts,
		Eval:          eval,
		FeatureWindow: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := darwin.Train(ds, darwin.TrainConfig{NumClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Online: controller over a fresh cache.
	hier, err := darwin.NewCache(darwin.CacheConfig{HOCBytes: eval.HOCBytes, DCBytes: eval.DCBytes})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := darwin.NewController(model, hier, darwin.OnlineConfig{
		Epoch: 12000, Warmup: 800, Round: 300, Delta: 0.05, StabilityRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	live, err := darwin.ImageDownloadMix(100, 12000, 999)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range live.Requests {
		ctrl.Serve(r)
	}
	m := ctrl.Metrics()
	if m.Requests != int64(live.Len()) {
		t.Fatalf("requests = %d", m.Requests)
	}
	if len(ctrl.Diags()) == 0 {
		t.Fatal("no epochs recorded")
	}
	if m.OHR() <= 0 {
		t.Fatal("no hits at all")
	}
}

func TestPublicObjectives(t *testing.T) {
	for _, name := range []string{"ohr", "bmr", "combined"} {
		if _, err := darwin.ObjectiveByName(name); err != nil {
			t.Fatalf("ObjectiveByName(%q): %v", name, err)
		}
	}
	var m darwin.CacheMetrics
	m.Requests, m.HOCHits = 10, 5
	if (darwin.OHRObjective{}).Reward(m) != 0.5 {
		t.Fatal("OHR objective broken through façade")
	}
}

func TestPublicTraceHelpers(t *testing.T) {
	a, err := darwin.ImageDownloadMix(50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := darwin.ImageDownloadMix(50, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	joined := darwin.ConcatTraces("j", a, b)
	if joined.Len() != 200 {
		t.Fatalf("Concat len = %d", joined.Len())
	}
	s := joined.Summarize()
	if s.Requests != 200 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPublicExpertGrid(t *testing.T) {
	if len(darwin.DefaultExpertGrid()) != 36 {
		t.Fatal("default grid should have 36 experts")
	}
	g3 := darwin.ExpertGrid3([]int{1}, []int64{10}, []int64{5, 6})
	if len(g3) != 2 {
		t.Fatal("3-knob grid wrong")
	}
}
