# Development targets. `make tier1` is the PR gate: vet + build + full test
# suite, plus the race detector on the concurrency-heavy packages (the HTTP
# prototype's proxy/origin, the load-balancer model, the cache, the parallel
# evaluation engine, and the experiment drivers that fan out over it).

GO ?= go

.PHONY: tier1 vet build test race bench microbench chaos

tier1: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/server ./internal/lb ./internal/cache ./internal/par ./internal/core ./internal/exp

# bench runs the reproducible performance harness (hot-path micro benchmarks
# plus serial-vs-parallel sweep timings) and writes BENCH_<date>.json.
bench:
	$(GO) run ./cmd/bench

microbench:
	$(GO) test -bench . -run xxx -benchtime 0.5s ./internal/server

chaos:
	$(GO) run ./cmd/experiments -only chaos
