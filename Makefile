# Development targets. `make tier1` is the PR gate: build + vet + the
# repo's own static analyzers (cmd/darwinlint) + full test suite. `make race`
# adds the race detector on the concurrency-heavy packages and `make fuzz`
# runs short fuzzing sessions over the parsing and hashing seams.

GO ?= go

.PHONY: tier1 vet build test lint lint-audit race fuzz bench microbench profile chaos chaos-crash chaos-cluster chaos-flap

tier1: build vet lint test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the project's own stdlib-only static-analysis suite: determinism,
# hot-path allocation, locking, error-hygiene, context-propagation, lock-order,
# seqlock-publication, atomic-mixing, durable-IO, and goroutine-termination
# rules (see internal/lint and the README's "Static analysis & verification").
# The content-hash cache makes warm runs (no .go/go.mod/config change) replay
# the stored result without type-checking; timing for both paths prints to
# stderr.
lint:
	$(GO) run ./cmd/darwinlint -cache .darwinlint.cache ./...

# lint-audit additionally flags stale //lint:ignore directives that no longer
# suppress anything. Audit runs bypass the cache.
lint-audit:
	$(GO) run ./cmd/darwinlint -audit ./...

race:
	$(GO) test -race ./internal/server ./internal/lb ./internal/cluster ./internal/cache ./internal/stripe ./internal/par ./internal/core ./internal/exp ./internal/bloom ./internal/bandit ./internal/breaker ./internal/diskcache ./internal/persist ./internal/gossip

# fuzz runs each fuzz target briefly: URL parsing on the proxy/origin seam,
# the Bloom filter's uint64/string hash-identity invariants, the durability
# decoders (persist frames, journal records/segments, checkpoint and
# neural-weight payloads) — corrupted on-disk bytes must produce typed
# errors, never panics — and darwinlint's own annotation parsers
# (//lint:ignore directives and guarded-by comments).
fuzz:
	$(GO) test ./internal/server -fuzz FuzzParseObjectURL -fuzztime 10s
	$(GO) test ./internal/bloom -fuzz FuzzHashIdentity -fuzztime 10s
	$(GO) test ./internal/bloom -fuzz FuzzFilterU64StringIdentity -fuzztime 10s
	$(GO) test ./internal/bloom -fuzz FuzzCountingU64StringIdentity -fuzztime 10s
	$(GO) test ./internal/persist -fuzz FuzzDecodeFrame -fuzztime 10s
	$(GO) test ./internal/diskcache -fuzz FuzzDecodeRecord -fuzztime 10s
	$(GO) test ./internal/diskcache -fuzz FuzzOpenSegment -fuzztime 10s
	$(GO) test ./internal/core -fuzz FuzzDecodeCheckpoint -fuzztime 10s
	$(GO) test ./internal/gossip -fuzz FuzzDecodeDigest -fuzztime 10s
	$(GO) test ./internal/neural -fuzz FuzzUnmarshalNet -fuzztime 10s
	$(GO) test ./internal/lint -fuzz FuzzParseIgnoreDirective -fuzztime 10s
	$(GO) test ./internal/lint -fuzz FuzzParseGuardedBy -fuzztime 10s

# bench runs the reproducible performance harness (hot-path micro benchmarks,
# durability journal/recovery costs, serial-vs-parallel sweep timings) and
# writes BENCH_<date>.json.
bench:
	$(GO) run ./cmd/bench

microbench:
	$(GO) test -bench . -run xxx -benchtime 0.5s ./internal/server

# profile captures CPU and heap profiles of the proxy-throughput sections
# (no JSON written); inspect with `go tool pprof cpu.pprof` / `heap.pprof`.
profile:
	$(GO) run ./cmd/bench -only proxy,matrix -cpuprofile cpu.pprof -memprofile heap.pprof -out -

chaos:
	$(GO) run ./cmd/experiments -only chaos

# chaos-crash is the crash-recovery suite: the in-process experiment (SIGKILL
# simulated by abandoning the journal) and the real-process test that
# SIGKILLs a durable darwin-proxy binary mid-traffic and asserts the restart
# recovers the DC from the journal.
chaos-crash:
	$(GO) run ./cmd/experiments -only crash
	DARWIN_CRASH_PROC=1 $(GO) test ./cmd/darwin-proxy -run TestCrashRecoveryProcess -v

# chaos-cluster is the distributed-edge suite: the deterministic in-process
# cluster drain experiment, then the real-process test that runs a 3-node
# peer-filled cluster behind darwin-front, SIGTERM-drains one node mid-flood,
# and asserts zero client-visible failures while the survivors absorb the load.
chaos-cluster:
	$(GO) run ./cmd/experiments -only cluster
	DARWIN_CLUSTER_PROC=1 $(GO) test ./cmd/darwin-front -run TestClusterDrainProcess -v

# chaos-flap is the self-healing membership suite: the deterministic flap /
# asymmetric-partition / drain-handoff experiment on simulated clocks, then
# the real-process test that SIGTERM-drains a 2-node cluster's donor and
# asserts its ring successor inherits the working set through POST /state.
chaos-flap:
	$(GO) run ./cmd/experiments -only flap
	DARWIN_FLAP_PROC=1 $(GO) test ./cmd/darwin-proxy -run TestDrainHandoffProcess -v
