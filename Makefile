# Development targets. `make tier1` is the PR gate: build + vet + the
# repo's own static analyzers (cmd/darwinlint) + full test suite. `make race`
# adds the race detector on the concurrency-heavy packages and `make fuzz`
# runs short fuzzing sessions over the parsing and hashing seams.

GO ?= go

.PHONY: tier1 vet build test lint race fuzz bench microbench chaos

tier1: build vet lint test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the project's own stdlib-only static-analysis suite: determinism,
# hot-path allocation, locking, error-hygiene, and context-propagation rules
# (see internal/lint and the README's "Static analysis & verification").
lint:
	$(GO) run ./cmd/darwinlint ./...

race:
	$(GO) test -race ./internal/server ./internal/lb ./internal/cache ./internal/stripe ./internal/par ./internal/core ./internal/exp ./internal/bloom ./internal/bandit ./internal/breaker

# fuzz runs each fuzz target briefly: URL parsing on the proxy/origin seam
# and the Bloom filter's uint64/string hash-identity invariants.
fuzz:
	$(GO) test ./internal/server -fuzz FuzzParseObjectURL -fuzztime 10s
	$(GO) test ./internal/bloom -fuzz FuzzHashIdentity -fuzztime 10s
	$(GO) test ./internal/bloom -fuzz FuzzFilterU64StringIdentity -fuzztime 10s
	$(GO) test ./internal/bloom -fuzz FuzzCountingU64StringIdentity -fuzztime 10s

# bench runs the reproducible performance harness (hot-path micro benchmarks
# plus serial-vs-parallel sweep timings) and writes BENCH_<date>.json.
bench:
	$(GO) run ./cmd/bench

microbench:
	$(GO) test -bench . -run xxx -benchtime 0.5s ./internal/server

chaos:
	$(GO) run ./cmd/experiments -only chaos
