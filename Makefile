# Development targets. `make tier1` is the PR gate: vet + build + full test
# suite, plus the race detector on the concurrency-heavy packages (the HTTP
# prototype's proxy/origin, the load-balancer model, and the cache).

GO ?= go

.PHONY: tier1 vet build test race bench chaos

tier1: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/server ./internal/lb ./internal/cache

bench:
	$(GO) test -bench . -run xxx -benchtime 0.5s ./internal/server

chaos:
	$(GO) run ./cmd/experiments -only chaos
