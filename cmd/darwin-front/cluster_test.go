package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestClusterDrainProcess is the real-process cluster chaos test: it builds
// darwin-proxy and darwin-front, runs a 3-node peer-filled cluster behind the
// front tier, SIGTERM-drains one node mid-flood, and asserts that the client
// never sees a failure — the drained node's weight drops to zero at a window
// boundary and the survivors absorb its share. Run via `make chaos-cluster`;
// env-gated because it builds binaries and binds TCP ports.
func TestClusterDrainProcess(t *testing.T) {
	if os.Getenv("DARWIN_CLUSTER_PROC") != "1" {
		t.Skip("set DARWIN_CLUSTER_PROC=1 (make chaos-cluster) to run the subprocess cluster test")
	}

	dir := t.TempDir()
	proxyBin := filepath.Join(dir, "darwin-proxy")
	frontBin := filepath.Join(dir, "darwin-front")
	if out, err := exec.Command("go", "build", "-o", proxyBin, "../darwin-proxy").CombinedOutput(); err != nil {
		t.Fatalf("building darwin-proxy: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", frontBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building darwin-front: %v\n%s", err, out)
	}

	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		size, _ := strconv.Atoi(r.URL.Query().Get("size"))
		if size <= 0 {
			size = 1
		}
		w.Header().Set("Content-Length", strconv.Itoa(size))
		if _, err := w.Write(make([]byte, size)); err != nil {
			return
		}
	}))
	defer origin.Close()

	// Three cluster nodes, each peer-filling over the shared node list.
	const nodes = 3
	addrs := make([]string, nodes)
	bases := make([]string, nodes)
	for i := range addrs {
		addrs[i] = freeAddr(t)
		bases[i] = "http://" + addrs[i]
	}
	peerList := strings.Join(bases, ",")
	procs := make([]*exec.Cmd, nodes)
	for i := range procs {
		procs[i] = start(t, proxyBin,
			"-addr", addrs[i], "-origin", origin.URL,
			"-mode", "static", "-f", "1", "-s", "1048576",
			"-hoc", "262144", "-dc", "33554432", "-shards", "2",
			"-dc-latency", "0s", "-drain", "2s",
			"-peers", peerList, "-self", bases[i],
		)
		defer func(p *exec.Cmd) {
			_ = p.Process.Kill()
			_ = p.Wait()
		}(procs[i])
	}
	for _, b := range bases {
		waitReady(t, b)
	}

	frontAddr := freeAddr(t)
	frontBase := "http://" + frontAddr
	front := start(t, frontBin,
		"-addr", frontAddr, "-backends", peerList,
		"-rebalance-every", "200", "-probe-every", "50ms",
	)
	defer func() {
		_ = front.Process.Kill()
		_ = front.Wait()
	}()
	waitReady(t, frontBase)

	// Phase 1: flood the healthy cluster (3 passes over 200 objects: register,
	// admit, hit).
	const objects = 200
	for pass := 0; pass < 3; pass++ {
		for id := 1; id <= objects; id++ {
			mustGet(t, fmt.Sprintf("%s/obj/%d?size=4096", frontBase, id))
		}
	}

	// SIGTERM node 0 mid-flood: readyz flips to 503, in-flights drain, the
	// process exits. The front's prober and the next window boundary do the
	// rest.
	if err := procs[0].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Phase 2: keep flooding through the drain and death. Every request must
	// still succeed — relayed to a live node or failed over in-request.
	for pass := 0; pass < 3; pass++ {
		for id := 1; id <= objects; id++ {
			mustGet(t, fmt.Sprintf("%s/obj/%d?size=4096", frontBase, id))
		}
	}
	_ = procs[0].Wait() // fully dead before the final checks

	// Give the prober one more cycle, then force a window boundary with a
	// last burst.
	time.Sleep(200 * time.Millisecond)
	for id := 1; id <= objects; id++ {
		mustGet(t, fmt.Sprintf("%s/obj/%d?size=4096", frontBase, id))
	}

	if w0 := metric(t, frontBase, "backend_weight{node=0}"); w0 != 0 {
		t.Fatalf("drained node still holds ring weight %d", w0)
	}
	if nb := metric(t, frontBase, "no_backend"); nb != 0 {
		t.Fatalf("%d requests found no backend despite two live survivors", nb)
	}
	reqs := metric(t, frontBase, "requests")
	relayed := metric(t, frontBase, "relayed")
	if reqs != relayed {
		t.Fatalf("requests=%d relayed=%d: some requests were dropped", reqs, relayed)
	}
	fills := 0
	for _, b := range bases[1:] {
		fills += metric(t, b, "peer_fills")
	}
	t.Logf("cluster drained node 0 cleanly: %d requests all relayed, %d survivor peer fills, failovers=%d",
		reqs, fills, metric(t, frontBase, "failovers"))
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func start(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

func mustGet(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
}

// metric fetches /metrics and returns the named counter.
func metric(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				t.Fatalf("metric %s = %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}
