// Command darwin-front runs the cluster's content-aware front tier (§2.1's
// balancer, live): a consistent-hash ring with bounded loads over N
// darwin-proxy backends, with /readyz-driven weight shedding, per-backend
// circuit breakers with in-request failover, and popularity-adaptive
// replication of hot objects over ring successors.
//
// Usage:
//
//	darwin-front -addr :8070 -backends http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"darwin/internal/lb"
	"darwin/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8070", "listen address")
		backends = flag.String("backends", "", "comma-separated darwin-proxy base URLs (required; same order as the proxies' -peers)")

		vnodes     = flag.Int("vnodes", 64, "virtual nodes per backend on the ring")
		loadFactor = flag.Float64("load-factor", 0.25, "bounded-loads ε: per-window budget headroom before spilling")
		rebalance  = flag.Int("rebalance-every", 10_000, "requests per rebalance window (weights, budgets, replication factors refresh at boundaries)")
		attempts   = flag.Int("attempts", 3, "max distinct backends tried per request (failover)")
		probeEvery = flag.Duration("probe-every", 250*time.Millisecond, "readiness poll period")
		gossipOn   = flag.Bool("gossip", true, "graded membership via /gossip digests (falls back to binary /readyz per backend)")

		repTopK  = flag.Int("rep-top-k", 16, "max hot objects holding extra replicas per window")
		repMax   = flag.Int("rep-max-factor", 3, "replication factor cap per object")
		repShare = flag.Float64("rep-hot-share", 0.02, "request share granting one extra replica")

		drain = flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
	)
	flag.Parse()
	if *backends == "" {
		fatal(fmt.Errorf("-backends is required"))
	}
	nodes := strings.Split(*backends, ",")

	front, err := server.NewFront(server.FrontConfig{
		Backends:       nodes,
		VirtualNodes:   *vnodes,
		LoadFactor:     *loadFactor,
		RebalanceEvery: *rebalance,
		Attempts:       *attempts,
		ProbeEvery:     *probeEvery,
		DisableGossip:  !*gossipOn,
		Replication: lb.ReplicationConfig{
			TopK:      *repTopK,
			MaxFactor: *repMax,
			HotShare:  *repShare,
		},
	})
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	front.Start(ctx)

	health := server.NewHealth()
	mux := http.NewServeMux()
	mux.Handle("/obj/", front)
	mux.HandleFunc("/healthz", health.Healthz)
	mux.HandleFunc("/readyz", health.Readyz)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		st := front.Stats()
		fmt.Fprintf(w, "requests %d\nrelayed %d\nfailovers %d\nbreaker_rejects %d\nno_backend %d\nreplicated %d\nwindow %d\n",
			st.Requests, st.Relayed, st.Failovers, st.BreakerRejects, st.NoBackend, st.Replicated, front.Window())
		for i, wt := range front.Weights() {
			fmt.Fprintf(w, "backend_weight{node=%d} %g\n", i, wt)
		}
		for i := range nodes {
			timeouts, refused := front.ProbeStats(i)
			fmt.Fprintf(w, "backend_status{node=%d} %s\nprobe_timeout{node=%d} %d\nprobe_refused{node=%d} %d\n",
				i, front.MembershipStatus(i), i, timeouts, i, refused)
		}
		if memb := front.Membership(); memb != nil {
			for i := range nodes {
				fmt.Fprintf(w, "gossip_phi{node=%d} %.3f\n", i, memb.Phi(i))
			}
		}
		var rs [lb.RsWidth]int64
		front.ReplicationStats(rs[:])
		fmt.Fprintf(w, "rep_observed %d\nrep_hot_objects %d\nrep_extra_replicas %d\nrep_max_factor %d\n",
			rs[lb.RsObserved], rs[lb.RsHotObjects], rs[lb.RsExtraReplicas], rs[lb.RsMaxFactor])
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "darwin-front: listening on %s over %d backends (%s)\n", *addr, len(nodes), *backends)
	if err := runServer(ctx, srv, *drain, health); err != nil {
		fatal(err)
	}
	st := front.Stats()
	fmt.Fprintf(os.Stderr, "darwin-front: %d requests, %d relayed, %d failovers, %d no-backend\n",
		st.Requests, st.Relayed, st.Failovers, st.NoBackend)
}

// runServer serves until SIGINT/SIGTERM, then runs the health-gated drain:
// /readyz flips to 503 first, then in-flight connections drain.
func runServer(ctx context.Context, srv *http.Server, drain time.Duration, health *server.Health) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	health.StartDrain()
	fmt.Fprintln(os.Stderr, "darwin-front: draining (readyz now 503), shutting down...")
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "darwin-front:", err)
	os.Exit(1)
}
