// Command loadgen replays a CDN trace against a proxy with configurable
// concurrency, reporting first-byte latency percentiles and application
// throughput (§6.4's client).
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -mix 50 -n 100000 -concurrency 200
//	loadgen -url http://127.0.0.1:8080 -trace t.txt -concurrency 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"darwin/internal/server"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "proxy base URL")
		tracePath   = flag.String("trace", "", "trace file; empty generates a synthetic mix")
		mix         = flag.Int("mix", 50, "Image percentage for the synthetic mix")
		n           = flag.Int("n", 50000, "synthetic trace length")
		seed        = flag.Int64("seed", 1, "synthetic trace seed")
		concurrency = flag.Int("concurrency", 8, "closed-loop client workers")
		clientLat   = flag.Duration("client-latency", 0, "injected client->proxy delay per request")
	)
	flag.Parse()

	var (
		tr  *trace.Trace
		err error
	)
	if *tracePath != "" {
		fd, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.Read(fd, *tracePath)
		fd.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		tr, err = tracegen.ImageDownloadMix(*mix, *n, *seed)
		if err != nil {
			fatal(err)
		}
	}

	res, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
		ProxyURL:      *url,
		Concurrency:   *concurrency,
		ClientLatency: *clientLat,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("requests:    %d ok, %d errors (%.2f%% error rate)\n", res.Requests, res.Errors, 100*res.ErrorRate())
	if res.Errors > 0 {
		fmt.Printf("error mix:   %d timeout / %d 5xx / %d truncated / %d other\n",
			res.Timeouts, res.Status5xx, res.Truncated, res.OtherErrors)
	}
	if res.StaleServes > 0 {
		fmt.Printf("degraded:    %d stale serves (origin down, served from proxy memory)\n", res.StaleServes)
	}
	fmt.Printf("wall time:   %v\n", res.Wall.Round(time.Millisecond))
	fmt.Printf("throughput:  %.1f Mbps\n", res.ThroughputBps()/1e6)
	fmt.Printf("cache mix:   %d hoc / %d dc / %d miss\n", res.HOCHits, res.DCHits, res.Misses)
	for _, p := range []float64{10, 50, 90, 99} {
		fmt.Printf("p%-2.0f first-byte latency: %v\n", p, res.LatencyPercentile(p).Round(10*time.Microsecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
