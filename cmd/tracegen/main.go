// Command tracegen generates synthetic CDN request traces in the style of
// Tragen (§6 "CDN Traces"): single traffic classes or Image:Download mixes,
// written in the repository's "id size time" line format.
//
// Usage:
//
//	tracegen -mix 70 -n 1000000 -seed 1 -o trace.txt
//	tracegen -class download -n 500000 > download.txt
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"darwin/internal/persist"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func main() {
	var (
		class = flag.String("class", "", "single traffic class: image, download, web, video, scan")
		mix   = flag.Int("mix", -1, "Image percentage of an Image:Download mix (0-100)")
		n     = flag.Int("n", 100000, "number of requests")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
		stats = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	var (
		tr  *trace.Trace
		err error
	)
	switch {
	case *class != "" && *mix >= 0:
		fatal(fmt.Errorf("use either -class or -mix, not both"))
	case *class != "":
		c, cerr := tracegen.ByName(*class)
		if cerr != nil {
			fatal(cerr)
		}
		tr, err = tracegen.Generate(tracegen.MixConfig{
			Classes: []tracegen.Class{c}, Requests: *n, Seed: *seed,
		})
	case *mix >= 0:
		tr, err = tracegen.ImageDownloadMix(*mix, *n, *seed)
	default:
		fatal(fmt.Errorf("specify -class <name> or -mix <image-pct>"))
	}
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		// Buffer then rename into place so an interrupted run never leaves a
		// truncated trace file behind.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			fatal(err)
		}
		if err := persist.WriteFileAtomic(*out, buf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
	} else if err := tr.Write(os.Stdout); err != nil {
		fatal(err)
	}
	if *stats {
		s := tr.Summarize()
		fmt.Fprintf(os.Stderr, "%s: %d requests, %d objects, %.1f MB total, %.1f%% one-hit wonders, mean size %.0f B\n",
			tr.Name, s.Requests, s.UniqueObjects, float64(s.TotalBytes)/(1<<20),
			100*float64(s.OneHitWonders)/float64(max(1, s.UniqueObjects)), s.MeanSize)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
