// Command darwin-sim runs the cache simulator on a trace under a chosen
// policy: a static expert, Darwin (trained on a synthetic corpus or on
// provided training traces), or one of the adaptive baselines.
//
// Usage:
//
//	darwin-sim -trace t.txt -policy static -f 3 -s 20480
//	darwin-sim -trace t.txt -policy darwin -objective ohr
//	darwin-sim -trace t.txt -policy percentile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/exp"
	"darwin/internal/par"
	"darwin/internal/trace"
)

func main() {
	var (
		tracePath   = flag.String("trace", "", "trace file (id size time per line); empty generates a synthetic 50:50 mix")
		policy      = flag.String("policy", "darwin", "static | darwin | percentile | hillclimbing-1k | hillclimbing-10k | adaptsize | directmapping | tinylfu")
		f           = flag.Int("f", 2, "static expert frequency threshold")
		s           = flag.Int64("s", 10<<10, "static expert size threshold (bytes)")
		hoc         = flag.Int64("hoc", 2<<20, "HOC bytes")
		dc          = flag.Int64("dc", 200<<20, "DC bytes")
		warmup      = flag.Float64("warmup", 0.1, "warm-up fraction excluded from metrics")
		objective   = flag.String("objective", "ohr", "darwin objective: ohr | bmr | combined")
		n           = flag.Int("n", 200000, "synthetic trace length when -trace is empty")
		seed        = flag.Int64("seed", 7, "synthetic trace seed")
		modelPath   = flag.String("model", "", "pre-trained model from darwin-train (darwin policy only; skips offline training)")
		parallelism = flag.Int("parallelism", runtime.NumCPU(), "worker count for offline training sweeps; 1 forces the serial path")
	)
	flag.Parse()
	par.SetDefault(*parallelism)

	tr, err := loadTrace(*tracePath, *n, *seed)
	if err != nil {
		fatal(err)
	}

	sc := exp.Default()
	sc.Eval = cache.EvalConfig{HOCBytes: *hoc, DCBytes: *dc, WarmupFrac: *warmup}
	sc.OnlineTraceLen = tr.Len()

	var m cache.Metrics
	switch *policy {
	case "static":
		m, err = cache.Evaluate(tr, cache.Expert{Freq: *f, MaxSize: *s}, sc.Eval)
	case "darwin":
		var model *core.Model
		if *modelPath != "" {
			var fd *os.File
			fd, err = os.Open(*modelPath)
			if err == nil {
				model, err = core.ReadModel(fd)
				fd.Close()
			}
		} else {
			fmt.Fprintln(os.Stderr, "darwin-sim: training Darwin on a synthetic corpus (this runs the full offline phase)...")
			var c *exp.Corpus
			c, err = exp.BuildCorpus(sc, *objective)
			if err == nil {
				model = c.Model
				sc.Experts = c.Scale.Experts
			}
		}
		if err == nil {
			c := &exp.Corpus{Scale: sc, Model: model}
			if model != nil {
				c.Scale.Experts = model.Experts
				if model.FeatureWindow > 0 {
					c.Scale.Online.Warmup = model.FeatureWindow
				}
			}
			var diags []core.EpochDiag
			m, diags, err = exp.RunDarwin(c, tr)
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "epoch %d: cluster %d, %d candidate experts, %d rounds (%s), deployed %s\n",
					d.Epoch, d.Cluster, d.SetSize, d.Rounds, d.StopReason, d.Chosen)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "darwin-sim: training offline corpus for baseline construction...")
		var c *exp.Corpus
		c, err = exp.BuildCorpus(sc, *objective)
		if err == nil {
			var srv baselines.Server
			srv, err = exp.NewBaseline(*policy, c)
			if err == nil {
				m = baselines.Play(srv, tr, sc.Eval.WarmupFrac)
			}
		}
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace:              %s (%d requests)\n", tr.Name, tr.Len())
	fmt.Printf("policy:             %s\n", *policy)
	fmt.Printf("HOC OHR:            %.4f\n", m.OHR())
	fmt.Printf("total OHR (HOC+DC): %.4f\n", m.TotalOHR())
	fmt.Printf("HOC BMR:            %.4f\n", m.BMR())
	fmt.Printf("disk writes:        %d objects, %.1f MB (%.1f B/request)\n",
		m.DCWrites, float64(m.DCWriteBytes)/(1<<20), m.DiskWritesPerRequest())
	fmt.Printf("origin fetches:     %d (%.1f MB midgress)\n", m.Misses, float64(m.MissBytes)/(1<<20))
}

func loadTrace(path string, n int, seed int64) (*trace.Trace, error) {
	if path == "" {
		return exp.SyntheticMix(50, n, seed)
	}
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	return trace.Read(fd, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "darwin-sim:", err)
	os.Exit(1)
}
