// Command darwin-train runs Darwin's offline phase (Figure 3, steps 1a/1b)
// and writes the trained model to a JSON file that darwin-proxy and
// darwin-sim can load, so edge servers do not retrain at startup.
//
// Usage:
//
//	darwin-train -o model.json                          # synthetic corpus
//	darwin-train -traces 'traces/*.txt' -o model.json   # real trace files
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/exp"
	"darwin/internal/persist"
	"darwin/internal/trace"
)

func main() {
	var (
		out       = flag.String("o", "model.json", "output model file")
		globArg   = flag.String("traces", "", "glob of training trace files; empty generates a synthetic corpus")
		objective = flag.String("objective", "ohr", "objective: ohr | bmr | combined")
		clusters  = flag.Int("clusters", 8, "number of K-means clusters")
		theta     = flag.Float64("theta", 1, "expert-set threshold percent")
		hoc       = flag.Int64("hoc", 2<<20, "HOC bytes")
		dc        = flag.Int64("dc", 200<<20, "DC bytes")
		warmup    = flag.Int("warmup", 6000, "online warm-up length the model will be used with (aligns training features)")
		scaleName = flag.String("scale", "default", "synthetic corpus scale: small | default")
		seed      = flag.Int64("seed", 1, "training seed")
	)
	flag.Parse()

	obj, err := core.ObjectiveByName(*objective)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	var model *core.Model
	if *globArg == "" {
		var sc exp.Scale
		switch *scaleName {
		case "small":
			sc = exp.Small()
		case "default":
			sc = exp.Default()
		default:
			fatal(fmt.Errorf("unknown scale %q", *scaleName))
		}
		sc.Eval.HOCBytes, sc.Eval.DCBytes = *hoc, *dc
		sc.NumClusters = *clusters
		sc.ThetaPct = *theta
		sc.Seed = *seed
		fmt.Fprintf(os.Stderr, "darwin-train: building synthetic corpus (%s scale)...\n", *scaleName)
		c, err := exp.BuildCorpus(sc, *objective)
		if err != nil {
			fatal(err)
		}
		model = c.Model
	} else {
		paths, err := filepath.Glob(*globArg)
		if err != nil {
			fatal(err)
		}
		if len(paths) == 0 {
			fatal(fmt.Errorf("no traces match %q", *globArg))
		}
		var traces []*trace.Trace
		for _, p := range paths {
			fd, err := os.Open(p)
			if err != nil {
				fatal(err)
			}
			tr, err := trace.Read(fd, filepath.Base(p))
			fd.Close()
			if err != nil {
				fatal(err)
			}
			traces = append(traces, tr)
		}
		fmt.Fprintf(os.Stderr, "darwin-train: evaluating %d traces x %d experts...\n",
			len(traces), len(cache.DefaultGrid()))
		ds, err := core.BuildDataset(traces, core.DatasetConfig{
			Eval:          cache.EvalConfig{HOCBytes: *hoc, DCBytes: *dc, WarmupFrac: 0.1},
			FeatureWindow: *warmup,
		})
		if err != nil {
			fatal(err)
		}
		model, err = core.Train(ds, core.TrainConfig{
			Objective:   obj,
			NumClusters: *clusters,
			ThetaPct:    *theta,
			Seed:        *seed,
		})
		if err != nil {
			fatal(err)
		}
	}

	// Buffer the model and land it atomically: a crash or full disk mid-write
	// must never leave a torn model file where a good one stood.
	var buf bytes.Buffer
	if err := core.WriteModel(&buf, model); err != nil {
		fatal(err)
	}
	if err := persist.WriteFileAtomic(*out, buf.Bytes(), 0o644); err != nil {
		fatal(err)
	}
	trained := 0
	for _, row := range model.Predictors {
		for _, n := range row {
			if n != nil {
				trained++
			}
		}
	}
	fmt.Fprintf(os.Stderr, "darwin-train: wrote %s (%d clusters, %d predictors) in %v\n",
		*out, model.Clusters.K(), trained, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "darwin-train:", err)
	os.Exit(1)
}
