package main

// Drain-time state handoff: the glue between the server layer's /state
// endpoint and the checkpoint codec. A draining node provides its full
// learned state as one DRWNCKPT frame (the exact bytes the durability layer
// writes to disk); the inheriting successor merges the pieces it can use:
//
//   - cache contents: the donor's resident HOC+DC set folds into the
//     inheritor's DC through the normal eviction path (MergeDC) — the
//     successor is about to receive the donor's keyspace, so those objects
//     are tomorrow's traffic.
//   - learned state: bandit posteriors and the controller's epoch position
//     are adopted only when the donor is *ahead* (later epoch, or further
//     into the same epoch) — an inheritor with more learning keeps its own.
//
// Everything is validate-then-commit: the frame's CRC, the checkpoint
// decode, and all entry validation run before the first mutation, so a
// corrupt frame leaves the inheritor untouched (the server layer answers it
// 400 and counts a state_reject).

import (
	"fmt"

	"darwin/internal/cache"
	"darwin/internal/core"
)

// handoffProvider builds the /state GET (and drain-push) side: a fresh
// checkpoint frame of the node's current state.
func handoffProvider(eng *cache.Sharded, ctrl *core.Controller, model *core.Model) func() ([]byte, error) {
	return func() ([]byte, error) {
		es, err := eng.State()
		if err != nil {
			return nil, err
		}
		ck := &core.Checkpoint{Model: model, Engine: es}
		if ctrl != nil {
			ck.Controller = ctrl.CheckpointState()
		}
		return core.EncodeCheckpointFrame(ck)
	}
}

// donorResidents flattens a donor engine snapshot into one resident-object
// list: DC first, then HOC (MergeDC admits in order and evicts from the DC
// tail under pressure, so the donor's hottest objects — its HOC — are
// admitted last and sit most-protected).
func donorResidents(es *cache.ShardedState) []cache.ResidentObject {
	var out []cache.ResidentObject
	for _, sh := range es.Shards {
		if sh == nil {
			continue
		}
		out = append(out, sh.DC...)
	}
	for _, sh := range es.Shards {
		if sh == nil {
			continue
		}
		out = append(out, sh.HOC...)
	}
	return out
}

// controllerAhead reports whether the donor's learning position is strictly
// ahead of ours: a later epoch, or more requests into the same epoch.
func controllerAhead(donor, local *core.ControllerState) bool {
	if donor.Epoch != local.Epoch {
		return donor.Epoch > local.Epoch
	}
	return donor.EpochReqs > local.EpochReqs
}

// handoffAcceptor builds the /state POST side: decode, validate everything,
// then commit — controller first (its restore is internally
// validate-then-commit), cache merge last (it cannot fail once entries are
// validated).
func handoffAcceptor(eng *cache.Sharded, ctrl *core.Controller) func([]byte) error {
	return func(data []byte) error {
		ck, err := core.DecodeCheckpointFrame(data)
		if err != nil {
			return err
		}
		if ck.Engine == nil {
			return fmt.Errorf("handoff: frame carries no engine state")
		}
		entries := donorResidents(ck.Engine)
		for _, e := range entries {
			if e.Size <= 0 {
				return fmt.Errorf("handoff: donor object %d has size %d", e.ID, e.Size)
			}
		}
		if ctrl != nil && ck.Controller != nil && controllerAhead(ck.Controller, ctrl.CheckpointState()) {
			if err := ctrl.RestoreState(ck.Controller); err != nil {
				return fmt.Errorf("handoff: adopting controller state: %w", err)
			}
		}
		if _, err := eng.MergeDC(entries); err != nil {
			return fmt.Errorf("handoff: merging donor cache: %w", err)
		}
		return nil
	}
}
