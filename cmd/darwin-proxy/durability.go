package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/diskcache"
)

// checkpointFile is the checkpoint's name inside the data directory.
const checkpointFile = "darwin.ckpt"

// durability owns a proxy's on-disk state: the append-only DC journal and the
// periodic learned-state checkpoint. It is inert (nil) unless -data-dir is
// set.
//
// Recovery model: the journal is written synchronously on every DC admission
// and eviction, so after a crash it is always fresher than the last periodic
// checkpoint. Restore therefore applies the checkpoint first (HOC contents,
// bloom filter, frequency tracker, bandit posteriors, controller phase) and
// then reconciles the DC against the journal's live set, which wins.
type durability struct {
	store    *diskcache.Store
	ckptPath string
	interval time.Duration

	model *core.Model      // nil in static mode
	ctrl  *core.Controller // nil in static mode
	eng   *cache.Sharded

	loaded    *core.Checkpoint // checkpoint found at startup, nil on cold start
	recovered atomic.Bool      // readiness gate: flips once recovery completes
	stop      chan struct{}
	done      chan struct{}
}

// openDurability opens (or creates) the data directory's journal and reads
// any checkpoint. A corrupt checkpoint is never fatal: the proxy logs it and
// recovers from the journal alone.
func openDurability(dir, policy string, batch int, segBytes int64, interval time.Duration) (*durability, error) {
	pol, err := diskcache.ParseSyncPolicy(policy)
	if err != nil {
		return nil, err
	}
	store, err := diskcache.Open(diskcache.Config{
		Dir:          dir,
		SegmentBytes: segBytes,
		Sync:         pol,
		BatchEvery:   batch,
	})
	if err != nil {
		return nil, fmt.Errorf("opening disk cache journal: %w", err)
	}
	d := &durability{
		store:    store,
		ckptPath: filepath.Join(dir, checkpointFile),
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	ck, err := core.LoadCheckpoint(d.ckptPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darwin-proxy: checkpoint unreadable (%v); recovering from journal only\n", err)
	}
	d.loaded = ck
	return d, nil
}

// attach binds the engine (and, in darwin mode, the controller and model)
// once they exist, then starts recovery and the periodic checkpointer in the
// background. The /readyz recovery gate stays unready until restore finishes.
func (d *durability) attach(eng *cache.Sharded, ctrl *core.Controller, model *core.Model) {
	d.eng = eng
	d.ctrl = ctrl
	d.model = model
	go d.run()
}

// recover replays checkpoint + journal into the live engine. Every failure is
// a warning, not an exit: a proxy that lost its learned state still serves,
// it just re-warms.
func (d *durability) recover() {
	start := time.Now()
	if ck := d.loaded; ck != nil {
		if ck.Engine != nil {
			if err := d.eng.RestoreState(ck.Engine); err != nil {
				fmt.Fprintf(os.Stderr, "darwin-proxy: engine state not restored (%v); continuing cold\n", err)
			}
		}
		if d.ctrl != nil && ck.Controller != nil {
			if err := d.ctrl.RestoreState(ck.Controller); err != nil {
				fmt.Fprintf(os.Stderr, "darwin-proxy: controller state not restored (%v); re-warming\n", err)
			}
		}
	}
	// The journal is fresher than any checkpoint: rebuild the DC from its
	// live set (oldest-first, so the newest objects land most protected).
	live := d.store.Live()
	if err := d.eng.RestoreDC(live); err != nil {
		fmt.Fprintf(os.Stderr, "darwin-proxy: DC journal not applied (%v); continuing cold\n", err)
	}
	d.recovered.Store(true)
	st := d.store.Stats()
	fmt.Fprintf(os.Stderr, "darwin-proxy: recovered %d DC objects (%d B) from %d segments in %s (checkpoint=%v, truncated=%dB)\n",
		len(live), st.LiveBytes, st.Segments, time.Since(start).Round(time.Millisecond), d.loaded != nil, st.TruncatedBytes)
}

// checkpoint captures and atomically persists the full learned state.
func (d *durability) checkpoint() error {
	es, err := d.eng.State()
	if err != nil {
		return err
	}
	ck := &core.Checkpoint{Model: d.model, Engine: es}
	if d.ctrl != nil {
		ck.Controller = d.ctrl.CheckpointState()
	}
	if err := core.SaveCheckpoint(d.ckptPath, ck); err != nil {
		return err
	}
	return d.store.Sync()
}

// run is the background durability loop: recovery first, then periodic
// checkpoints until close.
func (d *durability) run() {
	defer close(d.done)
	d.recover()
	if d.interval <= 0 {
		<-d.stop
		return
	}
	tick := time.NewTicker(d.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := d.checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "darwin-proxy: checkpoint failed: %v\n", err)
			}
		case <-d.stop:
			return
		}
	}
}

// close stops the loop, writes a final checkpoint, and closes the journal.
// Called after the HTTP server has drained, so the captured state is quiesced.
func (d *durability) close() {
	close(d.stop)
	<-d.done
	if err := d.checkpoint(); err != nil {
		fmt.Fprintf(os.Stderr, "darwin-proxy: final checkpoint failed: %v\n", err)
	}
	if err := d.store.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "darwin-proxy: closing journal: %v\n", err)
	}
}
