package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"net/http"
)

// TestDrainHandoffProcess is the real-process drain-handoff chaos test: a
// 2-node peer cluster where node A is warmed, SIGTERM-drained, and must push
// its learned state (the DRWNCKPT checkpoint frame) to its ring successor B
// over POST /state before exiting. B then serves A's working set from its
// own DC instead of re-fetching it from the origin — the inheritor starts
// warm. Run via `make chaos-flap`; env-gated because it builds a binary and
// binds TCP ports.
func TestDrainHandoffProcess(t *testing.T) {
	if os.Getenv("DARWIN_FLAP_PROC") != "1" {
		t.Skip("set DARWIN_FLAP_PROC=1 (make chaos-flap) to run the subprocess handoff test")
	}

	bin := filepath.Join(t.TempDir(), "darwin-proxy")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building proxy: %v\n%s", err, out)
	}

	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		size, _ := strconv.Atoi(r.URL.Query().Get("size"))
		if size <= 0 {
			size = 1
		}
		w.Header().Set("Content-Length", strconv.Itoa(size))
		if _, err := w.Write(make([]byte, size)); err != nil {
			return
		}
	}))
	defer origin.Close()

	addrs := []string{freeAddr(t), freeAddr(t)}
	bases := []string{"http://" + addrs[0], "http://" + addrs[1]}
	peerList := strings.Join(bases, ",")
	mkArgs := func(i int) []string {
		// MaxSize 1 KiB with 4 KiB objects keeps residency in the DC — the
		// level the handoff merge fills on the inheritor.
		return []string{
			"-addr", addrs[i], "-origin", origin.URL,
			"-mode", "static", "-f", "1", "-s", "1024",
			"-hoc", "262144", "-dc", "33554432", "-shards", "2",
			"-dc-latency", "0s", "-drain", "2s", "-lame-duck", "50ms",
			"-peers", peerList, "-self", bases[i],
		}
	}
	procs := make([]*exec.Cmd, 2)
	for i := range procs {
		procs[i] = startProxy(t, bin, mkArgs(i))
		defer func(p *exec.Cmd) {
			_ = p.Process.Kill()
			_ = p.Wait()
		}(procs[i])
	}
	for _, b := range bases {
		waitReady(t, b)
	}

	// Warm node A: two passes register then admit each object to A's DC.
	const objects = 200
	for pass := 0; pass < 2; pass++ {
		for id := 1; id <= objects; id++ {
			mustGet(t, fmt.Sprintf("%s/obj/%d?size=4096", bases[0], id))
		}
	}

	// Node B has served nothing; it would start cold without the handoff.
	if hits := metric(t, bases[1], "dc_hits"); hits != 0 {
		t.Fatalf("B has %d dc_hits before the drain, want 0", hits)
	}
	originBefore := metric(t, bases[1], "origin_fetches")

	// SIGTERM A: drain, then push the checkpoint frame to the ring successor
	// (with 2 nodes, that is B by construction).
	if err := procs[0].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := procs[0].Wait(); err != nil {
		t.Fatalf("drained node exited abnormally: %v", err)
	}

	if merges := metric(t, bases[1], "state_merges"); merges != 1 {
		t.Fatalf("B state_merges = %d after A's drain, want 1", merges)
	}
	if rejects := metric(t, bases[1], "state_rejects"); rejects != 0 {
		t.Fatalf("B state_rejects = %d, want 0", rejects)
	}

	// One pass over A's working set against B: the inheritor serves from the
	// merged DC instead of the origin.
	for id := 1; id <= objects; id++ {
		mustGet(t, fmt.Sprintf("%s/obj/%d?size=4096", bases[1], id))
	}
	hits := metric(t, bases[1], "dc_hits")
	if hits < objects*9/10 {
		t.Fatalf("inheritor served %d/%d from the DC, want >= %d (handoff lost)", hits, objects, objects*9/10)
	}
	if grew := metric(t, bases[1], "origin_fetches") - originBefore; grew > objects/10 {
		t.Fatalf("inheritor still fetched %d objects from the origin, want <= %d", grew, objects/10)
	}
	t.Logf("inheritor served %d/%d of the donor's working set from the merged DC", hits, objects)
}
