package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestCrashRecoveryProcess is the real-process chaos test: it SIGKILLs a
// durable proxy mid-traffic and asserts that a restart over the same data
// directory recovers the DC from the journal. Run via `make chaos-crash`; it
// is env-gated because it builds a binary and binds TCP ports.
func TestCrashRecoveryProcess(t *testing.T) {
	if os.Getenv("DARWIN_CRASH_PROC") != "1" {
		t.Skip("set DARWIN_CRASH_PROC=1 (make chaos-crash) to run the subprocess crash test")
	}

	bin := filepath.Join(t.TempDir(), "darwin-proxy")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building proxy: %v\n%s", err, out)
	}

	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		size, _ := strconv.Atoi(r.URL.Query().Get("size"))
		if size <= 0 {
			size = 1
		}
		w.Header().Set("Content-Length", strconv.Itoa(size))
		if _, err := w.Write(make([]byte, size)); err != nil {
			return
		}
	}))
	defer origin.Close()

	dataDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	// Static mode: MaxSize 1 KiB with 4 KiB objects keeps everything out of
	// the HOC, so all residency is DC — exactly what the journal persists.
	args := []string{
		"-addr", addr, "-origin", origin.URL,
		"-mode", "static", "-f", "1", "-s", "1024",
		"-hoc", "262144", "-dc", "8388608", "-shards", "2",
		"-dc-latency", "0s",
		"-data-dir", dataDir, "-fsync", "always", "-checkpoint-interval", "0",
	}
	proc := startProxy(t, bin, args)
	waitReady(t, base)

	// Populate: two requests per id — the first registers the object in the
	// bloom filter, the second admits it to the DC.
	const objects = 200
	for pass := 0; pass < 2; pass++ {
		for id := 1; id <= objects; id++ {
			mustGet(t, fmt.Sprintf("%s/obj/%d?size=4096", base, id))
		}
	}
	if hits := metric(t, base, "dc_hits"); hits != 0 {
		t.Fatalf("dc_hits = %d during populate, want 0 (two passes only)", hits)
	}

	// SIGKILL: no drain, no final checkpoint, no journal close.
	if err := proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = proc.Wait()

	// Restart over the same data directory and wait for the recovery gate.
	restarted := startProxy(t, bin, args)
	defer func() {
		_ = restarted.Process.Kill()
		_ = restarted.Wait()
	}()
	waitReady(t, base)

	if rec := metric(t, base, "recovered"); rec != 1 {
		t.Fatalf("recovered = %d after restart, want 1", rec)
	}
	if rp := metric(t, base, "recovered_puts"); rp < objects {
		t.Fatalf("recovered_puts = %d, want >= %d", rp, objects)
	}

	// One request per object: a recovered DC serves them as hits; a cold
	// cache would fetch every one from the origin.
	for id := 1; id <= objects; id++ {
		mustGet(t, fmt.Sprintf("%s/obj/%d?size=4096", base, id))
	}
	hits := metric(t, base, "dc_hits")
	if hits < objects*9/10 {
		t.Fatalf("dc_hits = %d after recovery, want >= %d (DC residency lost in crash)", hits, objects*9/10)
	}
	t.Logf("recovered proxy served %d/%d post-crash requests from the DC", hits, objects)
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startProxy(t *testing.T, bin string, args []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("proxy never became ready")
}

func mustGet(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
}

// metric fetches /metrics and returns the named counter.
func metric(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				t.Fatalf("metric %s = %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}
