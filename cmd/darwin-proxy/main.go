// Command darwin-proxy runs the ATS-like CDN caching proxy (§5). The HOC
// admission policy is either a fixed static expert or Darwin's online
// controller; in the latter case the offline phase is trained at startup on
// a synthetic corpus (the prototype equivalent of shipping a pre-trained
// model to the edge).
//
// Usage:
//
//	darwin-proxy -addr :8080 -origin http://127.0.0.1:9000 -mode darwin
//	darwin-proxy -addr :8080 -origin http://127.0.0.1:9000 -mode static -f 2 -s 10240
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // side-listener profiling endpoints, gated by -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/breaker"
	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/exp"
	"darwin/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		origin    = flag.String("origin", "http://127.0.0.1:9000", "origin base URL")
		dcLatency = flag.Duration("dc-latency", 2*time.Millisecond, "injected disk-read delay")
		mode      = flag.String("mode", "darwin", "darwin | static")
		f         = flag.Int("f", 2, "static expert frequency threshold")
		s         = flag.Int64("s", 10<<10, "static expert size threshold (bytes)")
		hoc       = flag.Int64("hoc", 2<<20, "HOC bytes")
		dc        = flag.Int64("dc", 200<<20, "DC bytes")
		objective = flag.String("objective", "ohr", "darwin objective: ohr | bmr | combined")
		shards    = flag.Int("shards", 0, "cache engine shard count (0 = auto from GOMAXPROCS, 1 = serial/global-lock data plane)")
		pubEvery  = flag.Int("publish-every", 32, "requests per shard between metric-mirror publications (1 = publish every request)")
		pprofAddr = flag.String("pprof", "", "pprof listen address (e.g. localhost:6060; empty = disabled)")
		modelPath = flag.String("model", "", "pre-trained model file from darwin-train (skips startup training)")

		dataDir    = flag.String("data-dir", "", "durable state directory: DC journal + learned-state checkpoints (empty = in-memory only)")
		fsyncPol   = flag.String("fsync", "batch", "journal fsync policy: batch | always | off")
		fsyncBatch = flag.Int("fsync-batch", 256, "journal appends per fsync under -fsync=batch")
		segBytes   = flag.Int64("segment-bytes", 16<<20, "journal segment size before rotation (bytes)")
		ckptEvery  = flag.Duration("checkpoint-interval", 30*time.Second, "learned-state checkpoint period (0 = checkpoint only at shutdown)")

		resilient    = flag.Bool("resilient", true, "enable the fault-tolerance layer (retries, coalescing, serve-stale)")
		retries      = flag.Int("retries", 4, "total origin fetch attempts per miss (1 = no retry)")
		fetchTimeout = flag.Duration("fetch-timeout", 2*time.Second, "per-attempt origin fetch deadline")
		backoff      = flag.Duration("backoff", 5*time.Millisecond, "base retry backoff (doubles per retry, jittered)")
		backoffMax   = flag.Duration("backoff-max", 250*time.Millisecond, "retry backoff cap")
		coalesce     = flag.Bool("coalesce", true, "single-flight coalescing of concurrent misses")
		serveStale   = flag.Bool("serve-stale", true, "serve previously-seen objects stale when the origin is down")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
		lameDuck     = flag.Duration("lame-duck", 300*time.Millisecond, "keep serving after readyz/gossip flip to 503 so probers observe the drain verdict before the listener closes")

		peers       = flag.String("peers", "", "comma-separated cluster node base URLs (enables peer cache fill; must include -self)")
		self        = flag.String("self", "", "this node's own entry in -peers")
		peerFanout  = flag.Int("peer-fanout", 2, "max ring siblings probed per miss")
		peerTimeout = flag.Duration("peer-timeout", 150*time.Millisecond, "per-sibling probe deadline")
		gossipOn    = flag.Bool("gossip", true, "SWIM-style membership: piggyback heartbeat digests on peer probes and serve /gossip")
		handoffOn   = flag.Bool("handoff", true, "serve /state and push learned state to the ring successor on drain")

		overload       = flag.Bool("overload", true, "enable the overload-protection layer (breaker, admission, deadlines, hedging)")
		maxInflight    = flag.Int64("max-inflight", 512, "admission control: max concurrently admitted requests (0 = unlimited)")
		propagateDL    = flag.Bool("propagate-deadline", true, "honor the client X-Darwin-Deadline-Ms header")
		minFetchBudget = flag.Duration("min-fetch-budget", 50*time.Millisecond, "shed misses whose remaining deadline is below this floor")
		hedge          = flag.Duration("hedge", 25*time.Millisecond, "hedged second origin fetch delay (0 = no hedging)")
		retryBudget    = flag.Int64("retry-budget", 0, "max retries per window (0 = breaker half-open probe budget, <0 = uncapped)")
		brkWindow      = flag.Duration("brk-window", time.Second, "circuit breaker rolling window")
		brkThreshold   = flag.Float64("brk-threshold", 0.5, "circuit breaker failure-ratio trip threshold")
		brkMinRequests = flag.Int64("brk-min-requests", 10, "circuit breaker volume floor before tripping")
		brkOpenFor     = flag.Duration("brk-open-for", 250*time.Millisecond, "circuit breaker cool-off before half-open")
		brkProbes      = flag.Int64("brk-probes", 3, "circuit breaker half-open probe budget")
	)
	flag.Parse()
	if *shards <= 0 {
		*shards = cache.AutoShards()
	}

	var (
		dec server.Decider
		err error
	)
	// Durable state: open the DC journal and load any checkpoint before
	// building engines, so both plug into the construction below.
	var dur *durability
	var dclog cache.DCLog
	if *dataDir != "" {
		dur, err = openDurability(*dataDir, *fsyncPol, *fsyncBatch, *segBytes, *ckptEvery)
		if err != nil {
			fatal(err)
		}
		dclog = dur.store
	}
	var (
		shEng *cache.Sharded
		ctrl  *core.Controller
		model *core.Model
	)
	switch *mode {
	case "static":
		var st *baselines.Static
		st, err = baselines.NewStaticSharded(cache.Expert{Freq: *f, MaxSize: *s},
			cache.EvalConfig{HOCBytes: *hoc, DCBytes: *dc, DCLog: dclog}, *shards)
		if err == nil {
			dec = st
			shEng = st.Engine().(*cache.Sharded)
		}
	case "darwin":
		sc := exp.Default()
		sc.Eval.HOCBytes = *hoc
		sc.Eval.DCBytes = *dc
		switch {
		case *modelPath != "":
			var fd *os.File
			fd, err = os.Open(*modelPath)
			if err == nil {
				model, err = core.ReadModel(fd)
				fd.Close()
			}
		case dur != nil && dur.loaded != nil && dur.loaded.Model != nil:
			// Fast restart: the checkpoint carries the trained model, so a
			// crashed proxy skips retraining entirely.
			fmt.Fprintln(os.Stderr, "darwin-proxy: reusing trained model from checkpoint")
			model = dur.loaded.Model
		default:
			fmt.Fprintln(os.Stderr, "darwin-proxy: training offline model on a synthetic corpus...")
			var c *exp.Corpus
			c, err = exp.BuildCorpus(sc, *objective)
			if err == nil {
				model = c.Model
			}
		}
		if err == nil {
			if model.FeatureWindow > 0 {
				sc.Online.Warmup = model.FeatureWindow
			}
			var eng *cache.Sharded
			eng, err = cache.NewSharded(cache.Config{HOCBytes: *hoc, DCBytes: *dc, DCLog: dclog}, *shards)
			if err == nil {
				ctrl, err = core.NewController(model, eng, sc.Online)
				if err == nil {
					dec = ctrl
					shEng = eng
				}
			}
		}
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fatal(err)
	}
	if dur != nil {
		dur.attach(shEng, ctrl, model)
	}
	// Batched counter publication: shards accumulate metric deltas locally and
	// publish the whole consistent block every K requests, keeping the seqlock
	// fences off the per-request path. Round-boundary and /metrics reads go
	// through SyncMetrics, so learning and reporting still see exact counts.
	shEng.SetPublishEvery(*pubEvery)

	res := server.Resilience{
		Enabled:      *resilient,
		MaxAttempts:  *retries,
		FetchTimeout: *fetchTimeout,
		BackoffBase:  *backoff,
		BackoffMax:   *backoffMax,
		Coalesce:     *coalesce,
		ServeStale:   *serveStale,
		Seed:         1,
	}
	ov := server.Overload{
		Enabled: *overload,
		Breaker: breaker.Config{
			Window:           *brkWindow,
			FailureThreshold: *brkThreshold,
			MinRequests:      *brkMinRequests,
			OpenFor:          *brkOpenFor,
			HalfOpenProbes:   *brkProbes,
		},
		MaxInFlight:       *maxInflight,
		PropagateDeadline: *propagateDL,
		MinFetchBudget:    *minFetchBudget,
		Hedge:             *hedge,
		RetryBudget:       *retryBudget,
	}
	proxy := server.NewOverloadProxy(dec, *origin, *dcLatency, res, ov)
	clustered := *peers != ""
	if clustered {
		if err := proxy.SetPeers(server.PeerConfig{
			Self:          *self,
			Nodes:         strings.Split(*peers, ","),
			Fanout:        *peerFanout,
			FetchTimeout:  *peerTimeout,
			DisableGossip: !*gossipOn,
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "darwin-proxy: peer fill over %s (self %s, gossip=%v)\n", *peers, *self, *gossipOn)
		if *handoffOn && shEng != nil {
			proxy.EnableStateHandoff(server.StateHandoff{
				Provide: handoffProvider(shEng, ctrl, model),
				Accept:  handoffAcceptor(shEng, ctrl),
			})
		}
	}
	gates := []server.Gate{{Name: "breaker", Ready: proxy.Ready}}
	if dur != nil {
		// The proxy serves during recovery (cache misses are correct, just
		// cold), but /readyz holds 503 so balancers don't route to a
		// still-warming instance.
		gates = append(gates, server.Gate{Name: "recovery", Ready: dur.recovered.Load})
	}
	health := server.NewHealth(gates...)
	mux := http.NewServeMux()
	mux.Handle("/obj/", proxy)
	mux.HandleFunc("/healthz", health.Healthz)
	mux.HandleFunc("/readyz", health.Readyz)
	if clustered {
		// /gossip is drain-gated: a draining node answers 503, which the
		// front tier reads as an explicit "stop routing here" — immediate
		// weight shed, no waiting for phi to accrue.
		mux.HandleFunc("/gossip", func(w http.ResponseWriter, r *http.Request) {
			if health.Draining() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			proxy.ServeGossip(w, r)
		})
		mux.HandleFunc("/state", proxy.ServeState)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m := proxy.Metrics()
		st := proxy.Stats()
		fmt.Fprintf(w, "requests %d\nhoc_hits %d\ndc_hits %d\nmisses %d\nohr %.4f\nbmr %.4f\ndisk_write_bytes %d\n",
			m.Requests, m.HOCHits, m.DCHits, m.Misses, m.OHR(), m.BMR(), m.DCWriteBytes)
		fmt.Fprintf(w, "origin_fetches %d\nretries %d\nfetch_failures %d\ncoalesced %d\nstale_serves %d\nproxy_errors %d\n",
			st.OriginFetches, st.Retries, st.FetchFailures, st.Coalesced, st.StaleServes, st.Errors)
		fmt.Fprintf(w, "shed %d\ndeadline_sheds %d\nbreaker_rejects %d\nhedges %d\nhedge_wins %d\nretry_budget_denied %d\n",
			st.Shed, st.DeadlineSheds, st.BreakerRejects, st.Hedges, st.HedgeWins, st.RetryBudgetDenied)
		fmt.Fprintf(w, "peer_probes %d\npeer_fills %d\npeer_errors %d\npeer_rejects %d\npeer_served %d\n",
			st.PeerProbes, st.PeerFills, st.PeerErrors, st.PeerRejects, st.PeerServed)
		fmt.Fprintf(w, "peer_skips_dead %d\ngossip_exchanges %d\nstate_merges %d\nstate_rejects %d\nstate_pushes %d\n",
			st.PeerSkipsDead, st.GossipExchanges, st.StateMerges, st.StateRejects, st.StatePushes)
		if memb := proxy.Membership(); memb != nil {
			for i := 0; i < memb.Nodes(); i++ {
				if i == memb.Self() {
					continue
				}
				fmt.Fprintf(w, "gossip_peer_status{node=%d} %d\ngossip_peer_phi{node=%d} %.3f\n",
					i, memb.Status(i), i, memb.Phi(i))
			}
		}
		if bs, ok := proxy.BreakerSnapshot(); ok {
			fmt.Fprintf(w, "breaker_state %s\nbreaker_opens %d\nbreaker_half_opens %d\nbreaker_reopens %d\nbreaker_closes %d\nbreaker_denied %d\nbreaker_probes %d\n",
				bs.State, bs.Opens, bs.HalfOpens, bs.Reopens, bs.Closes, bs.Denied, bs.Probes)
		}
		if dur != nil {
			ds := dur.store.Stats()
			fmt.Fprintf(w, "recovered %d\njournal_live_objects %d\njournal_live_bytes %d\njournal_log_bytes %d\njournal_segments %d\njournal_syncs %d\njournal_compactions %d\njournal_dropped_ops %d\nrecovered_puts %d\n",
				boolToInt(dur.recovered.Load()), ds.LiveObjects, ds.LiveBytes, ds.LogBytes, ds.Segments, ds.Syncs, ds.Compactions, ds.DroppedOps, ds.RecoveredPuts)
		}
	})
	if *pprofAddr != "" {
		// Profiling runs on its own listener so /debug/pprof is never exposed
		// on the serving address. net/http/pprof registers its handlers on
		// http.DefaultServeMux.
		//lint:ignore goctx the pprof side listener intentionally lives for the whole process; it holds no connections the drain path must quiesce
		go func() {
			fmt.Fprintf(os.Stderr, "darwin-proxy: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "darwin-proxy: pprof listener:", err)
			}
		}()
	}
	// Timeouts close slowloris-style connections that trickle headers or
	// hold sockets idle; graceful shutdown drains in-flight requests.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "darwin-proxy: %s mode, listening on %s, origin %s (shards=%d, resilient=%v, overload=%v)\n", *mode, *addr, *origin, *shards, *resilient, *overload)
	if err := runServer(srv, *drain, *lameDuck, health); err != nil {
		fatal(err)
	}
	if clustered && *handoffOn && shEng != nil {
		// The server has drained, so the state below is quiesced — hand it to
		// the ring successor (the node inheriting this keyspace). Best
		// effort: a dead or refusing successor just starts cold, as before.
		hctx, hcancel := context.WithTimeout(context.Background(), *drain)
		if succ, err := proxy.PushStateToSuccessor(hctx, nil); err != nil {
			fmt.Fprintf(os.Stderr, "darwin-proxy: state handoff skipped: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "darwin-proxy: state handed off to ring successor %d\n", succ)
		}
		hcancel()
	}
	if dur != nil {
		// The server has drained: capture a final quiesced checkpoint and
		// close the journal cleanly.
		dur.close()
	}
	st := proxy.Stats()
	fmt.Fprintf(os.Stderr, "darwin-proxy: %d origin fetches, %d retries, %d coalesced, %d stale serves, %d fetch failures\n",
		st.OriginFetches, st.Retries, st.Coalesced, st.StaleServes, st.FetchFailures)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runServer serves until SIGINT/SIGTERM, then runs the health-gated drain:
// /readyz and /gossip flip to 503 first, the lame-duck window keeps the
// listener open so probers actually observe that explicit verdict (an
// immediate Shutdown would close the listener and make a graceful drain look
// like a crash — refused probes — which the graded membership layer
// deliberately sheds slowly), and only then are in-flight connections
// drained for up to the given deadline.
func runServer(srv *http.Server, drain, lameDuck time.Duration, health *server.Health) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	health.StartDrain()
	fmt.Fprintln(os.Stderr, "darwin-proxy: draining (readyz now 503), shutting down...")
	if lameDuck > 0 {
		time.Sleep(lameDuck)
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "darwin-proxy:", err)
	os.Exit(1)
}
