// Command darwin-proxy runs the ATS-like CDN caching proxy (§5). The HOC
// admission policy is either a fixed static expert or Darwin's online
// controller; in the latter case the offline phase is trained at startup on
// a synthetic corpus (the prototype equivalent of shipping a pre-trained
// model to the edge).
//
// Usage:
//
//	darwin-proxy -addr :8080 -origin http://127.0.0.1:9000 -mode darwin
//	darwin-proxy -addr :8080 -origin http://127.0.0.1:9000 -mode static -f 2 -s 10240
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/exp"
	"darwin/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		origin    = flag.String("origin", "http://127.0.0.1:9000", "origin base URL")
		dcLatency = flag.Duration("dc-latency", 2*time.Millisecond, "injected disk-read delay")
		mode      = flag.String("mode", "darwin", "darwin | static")
		f         = flag.Int("f", 2, "static expert frequency threshold")
		s         = flag.Int64("s", 10<<10, "static expert size threshold (bytes)")
		hoc       = flag.Int64("hoc", 2<<20, "HOC bytes")
		dc        = flag.Int64("dc", 200<<20, "DC bytes")
		objective = flag.String("objective", "ohr", "darwin objective: ohr | bmr | combined")
		modelPath = flag.String("model", "", "pre-trained model file from darwin-train (skips startup training)")
	)
	flag.Parse()

	var (
		dec server.Decider
		err error
	)
	switch *mode {
	case "static":
		dec, err = baselines.NewStatic(cache.Expert{Freq: *f, MaxSize: *s},
			cache.EvalConfig{HOCBytes: *hoc, DCBytes: *dc})
	case "darwin":
		var model *core.Model
		sc := exp.Default()
		sc.Eval.HOCBytes = *hoc
		sc.Eval.DCBytes = *dc
		if *modelPath != "" {
			var fd *os.File
			fd, err = os.Open(*modelPath)
			if err == nil {
				model, err = core.ReadModel(fd)
				fd.Close()
			}
		} else {
			fmt.Fprintln(os.Stderr, "darwin-proxy: training offline model on a synthetic corpus...")
			var c *exp.Corpus
			c, err = exp.BuildCorpus(sc, *objective)
			if err == nil {
				model = c.Model
			}
		}
		if err == nil {
			if model.FeatureWindow > 0 {
				sc.Online.Warmup = model.FeatureWindow
			}
			var hier *cache.Hierarchy
			hier, err = cache.New(cache.Config{HOCBytes: *hoc, DCBytes: *dc})
			if err == nil {
				dec, err = core.NewController(model, hier, sc.Online)
			}
		}
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fatal(err)
	}

	proxy := server.NewProxy(dec, *origin, *dcLatency)
	mux := http.NewServeMux()
	mux.Handle("/obj/", proxy)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m := proxy.Metrics()
		fmt.Fprintf(w, "requests %d\nhoc_hits %d\ndc_hits %d\nmisses %d\nohr %.4f\nbmr %.4f\ndisk_write_bytes %d\n",
			m.Requests, m.HOCHits, m.DCHits, m.Misses, m.OHR(), m.BMR(), m.DCWriteBytes)
	})
	fmt.Fprintf(os.Stderr, "darwin-proxy: %s mode, listening on %s, origin %s\n", *mode, *addr, *origin)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "darwin-proxy:", err)
	os.Exit(1)
}
