package main

// Property test for the drain-time state handoff: a donor controller's
// learned state — bandit posteriors above all — must round-trip through the
// real HTTP path (provider → DRWNCKPT frame → POST /state → acceptor →
// inheritor restore) bit-identically, across many seeds. And the dual: a
// corrupt frame must be rejected by the CRC/validation layers without
// mutating the inheritor at all.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/server"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

var (
	handoffModelOnce sync.Once
	handoffModelVal  *core.Model
	handoffModelErr  error
)

// handoffModel trains one small model shared by every seed (training
// dominates the test's cost; controllers over it are cheap).
func handoffModel(t *testing.T) *core.Model {
	t.Helper()
	handoffModelOnce.Do(func() {
		var traces []*trace.Trace
		for seed := int64(0); seed < 4; seed++ {
			tr, err := tracegen.ImageDownloadMix(50, 8000, 100+seed)
			if err != nil {
				handoffModelErr = err
				return
			}
			traces = append(traces, tr)
		}
		ds, err := core.BuildDataset(traces, core.DatasetConfig{
			Experts: cache.Grid([]int{1, 3}, []int64{2 << 10, 20 << 10}),
			Eval:    cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1},
		})
		if err != nil {
			handoffModelErr = err
			return
		}
		// A generous θ makes every cluster's expert set multi-member, so the
		// identify phase always instantiates the bandit this test round-trips.
		handoffModelVal, handoffModelErr = core.Train(ds, core.TrainConfig{NumClusters: 2, ThetaPct: 50, Seed: 1})
	})
	if handoffModelErr != nil {
		t.Fatal(handoffModelErr)
	}
	return handoffModelVal
}

func handoffOnlineCfg() core.OnlineConfig {
	return core.OnlineConfig{
		Epoch:           600,
		Warmup:          100,
		Round:           50,
		Delta:           0.05,
		StabilityRounds: 8,
		Neff:            50,
		VarFloor:        1e-4,
	}
}

func newHandoffController(t *testing.T, m *core.Model) (*core.Controller, *cache.Sharded) {
	t.Helper()
	eng, err := cache.NewSharded(cache.Config{HOCBytes: 256 << 10, DCBytes: 32 << 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(m, eng, handoffOnlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, eng
}

// TestStateHandoffRoundTrip drives a donor controller on seeded traffic,
// ships its frame through the inheritor's real /state HTTP endpoint, and
// asserts the inheritor adopted the bandit posteriors bit-identically. Then
// it corrupts the same frame one byte at a time and asserts every corrupt
// POST is a 400 that mutates nothing.
func TestStateHandoffRoundTrip(t *testing.T) {
	model := handoffModel(t)
	const seeds = 25
	banditsSeen := 0
	for seed := int64(1); seed <= seeds; seed++ {
		// Donor: a controller caught mid-identify (warmup 100 + a few 50-req
		// rounds), so the checkpoint carries live bandit posteriors.
		donorCtrl, donorEng := newHandoffController(t, model)
		tr, err := tracegen.ImageDownloadMix(50, 250, 1000+seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range tr.Requests {
			donorCtrl.Serve(req)
		}
		donorState := donorCtrl.CheckpointState()
		if donorState.Bandit != nil {
			banditsSeen++
		}
		frame, err := handoffProvider(donorEng, donorCtrl, model)()
		if err != nil {
			t.Fatal(err)
		}

		// Inheritor: a fresh proxy serving the real /state endpoint.
		inhCtrl, inhEng := newHandoffController(t, model)
		proxy := server.NewProxy(inhCtrl, "http://127.0.0.1:9", 0)
		proxy.EnableStateHandoff(server.StateHandoff{
			Provide: handoffProvider(inhEng, inhCtrl, model),
			Accept:  handoffAcceptor(inhEng, inhCtrl),
		})
		srv := httptest.NewServer(http.HandlerFunc(proxy.ServeState))

		resp, err := http.Post(srv.URL+"/state", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seed %d: handoff POST status %d, want 204", seed, resp.StatusCode)
		}

		// The donor was ahead (the inheritor is epoch-zero fresh), so its
		// learned state must have been adopted whole — posteriors to the bit.
		got := inhCtrl.CheckpointState()
		if !reflect.DeepEqual(got.Bandit, donorState.Bandit) {
			t.Fatalf("seed %d: bandit posteriors mutated in transit:\n got %+v\nwant %+v", seed, got.Bandit, donorState.Bandit)
		}
		if got.Epoch != donorState.Epoch || got.EpochReqs != donorState.EpochReqs {
			t.Fatalf("seed %d: epoch position %d/%d, want %d/%d", seed, got.Epoch, got.EpochReqs, donorState.Epoch, donorState.EpochReqs)
		}

		// And the donor's residency arrived: the inheritor can now re-serve
		// it through its own provider, still bit-identical.
		reframe, err := handoffProvider(inhEng, inhCtrl, model)()
		if err != nil {
			t.Fatal(err)
		}
		reck, err := core.DecodeCheckpointFrame(reframe)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reck.Controller.Bandit, donorState.Bandit) {
			t.Fatalf("seed %d: posteriors drifted through the inheritor's own provider", seed)
		}

		// Corruption: flipping any byte must yield a 400 and zero mutation.
		before := inhCtrl.CheckpointState()
		engBefore, err := inhEng.State()
		if err != nil {
			t.Fatal(err)
		}
		for _, pos := range []int{0, len(frame) / 3, len(frame) / 2, len(frame) - 1} {
			bad := append([]byte(nil), frame...)
			bad[pos] ^= 0x41
			resp, err := http.Post(srv.URL+"/state", "application/octet-stream", bytes.NewReader(bad))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("seed %d: corrupt frame (byte %d) got status %d, want 400 (%s)", seed, pos, resp.StatusCode, body)
			}
		}
		if !reflect.DeepEqual(inhCtrl.CheckpointState(), before) {
			t.Fatalf("seed %d: corrupt frames mutated the inheritor's controller", seed)
		}
		engAfter, err := inhEng.State()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(engAfter, engBefore) {
			t.Fatalf("seed %d: corrupt frames mutated the inheritor's engine", seed)
		}
		if st := proxy.Stats(); st.StateMerges != 1 || st.StateRejects != 4 {
			t.Fatalf("seed %d: merges=%d rejects=%d, want 1/4", seed, st.StateMerges, st.StateRejects)
		}
		srv.Close()
	}
	if banditsSeen == 0 {
		t.Fatal("no seed produced bandit posteriors; the round-trip never exercised them")
	}
}
