// Command darwinlint runs the repository's custom static-analysis suite (see
// internal/lint): determinism, hot-path allocation, locking, error-hygiene
// and context-propagation rules, built only on the standard library's go/ast
// and go/types.
//
// Usage:
//
//	darwinlint [-root dir] [patterns...]
//
// Patterns are ./... (the default, whole module) or directory paths like
// ./internal/cache; analysis always covers the whole module (the hot-path
// rule needs the full call graph), patterns only filter which files'
// diagnostics are reported. Exits 1 when any diagnostic survives
// //lint:ignore suppression.
//
// -fixture dir runs a single golden-fixture package (a directory under
// internal/lint/testdata) with the rule that fixture exercises — the same
// configuration the fixture tests use. Seeded violations make it exit 1,
// which is how the gate demonstrates each analyzer still fires:
//
//	darwinlint -fixture internal/lint/testdata/determinism
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"darwin/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
	fixture := flag.String("fixture", "", "run one internal/lint/testdata fixture package instead of the module")
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "darwinlint:", err)
			os.Exit(2)
		}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwinlint:", err)
		os.Exit(2)
	}

	loader, err := lint.NewLoader(abs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwinlint:", err)
		os.Exit(2)
	}

	var prog *lint.Program
	cfg := lint.DefaultConfig()
	if *fixture != "" {
		name := filepath.Base(filepath.Clean(*fixture))
		pkg, err := loader.LoadDirAs(*fixture, lint.FixturePrefix+name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darwinlint:", err)
			os.Exit(2)
		}
		prog = &lint.Program{Fset: loader.Fset(), Pkgs: []*lint.Package{pkg}}
		cfg = lint.FixtureConfig(name)
	} else {
		prog, err = loader.LoadAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "darwinlint:", err)
			os.Exit(2)
		}
	}

	filters := fileFilters(abs, flag.Args())
	failed := false
	for _, d := range lint.Run(prog, cfg) {
		if !matchesFilter(d.Pos.Filename, filters) {
			continue
		}
		failed = true
		name := d.Pos.Filename
		if rel, err := filepath.Rel(abs, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
	}
	if failed {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// fileFilters converts CLI patterns into absolute directory prefixes; nil
// means report everything.
func fileFilters(root string, patterns []string) []string {
	var filters []string
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "." {
			return nil
		}
		trimmed := strings.TrimSuffix(p, "/...")
		if !filepath.IsAbs(trimmed) {
			trimmed = filepath.Join(root, trimmed)
		}
		filters = append(filters, filepath.Clean(trimmed))
	}
	return filters
}

// matchesFilter reports whether file lies under any filter directory.
func matchesFilter(file string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if file == f || strings.HasPrefix(file, f+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
