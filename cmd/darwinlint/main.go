// Command darwinlint runs the repository's custom static-analysis suite (see
// internal/lint): the determinism, hot-path allocation, locking, error-hygiene
// and context-propagation rules, plus the whole-program concurrency and
// durability analyzers (lockorder, seqlockpub, atomicmix, persistio, goctx),
// built only on the standard library's go/ast and go/types.
//
// Usage:
//
//	darwinlint [-root dir] [-cache file] [-audit] [-json|-sarif] [patterns...]
//
// Patterns are ./... (the default, whole module) or directory paths like
// ./internal/cache; analysis always covers the whole module (the hot-path and
// lock-order rules need the full call graph), patterns only filter which
// files' diagnostics are reported. Exits 1 when any diagnostic survives
// //lint:ignore suppression.
//
// -cache file enables the content-hash result cache: when no .go file,
// go.mod, or the analyzer configuration changed since the stored run, the
// stored diagnostics are replayed without loading or type-checking anything.
// The cache is whole-tree and all-or-nothing because the whole-program
// analyzers make per-package reuse unsound. Timing for both paths goes to
// stderr.
//
// -audit additionally reports //lint:ignore directives that suppressed
// nothing (stale suppressions). Audit runs bypass the cache.
//
// -json and -sarif switch the report from file:line:col text to a JSON array
// or a SARIF 2.1.0 log on stdout.
//
// -fixture dir runs a single golden-fixture package (a directory under
// internal/lint/testdata) with the rule that fixture exercises — the same
// configuration the fixture tests use. Seeded violations make it exit 1,
// which is how the gate demonstrates each analyzer still fires:
//
//	darwinlint -fixture internal/lint/testdata/lockorder
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"darwin/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
	fixture := flag.String("fixture", "", "run one internal/lint/testdata fixture package instead of the module")
	cachePath := flag.String("cache", "", "content-hash result cache file (relative paths join the module root)")
	audit := flag.Bool("audit", false, "also report stale //lint:ignore directives that suppress nothing")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	flag.Parse()

	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "darwinlint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "darwinlint:", err)
			os.Exit(2)
		}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwinlint:", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	if *fixture != "" {
		diags = runFixture(abs, *fixture)
	} else {
		diags = runModule(abs, *cachePath, *audit)
	}

	// Report paths relative to the module root: stable across checkouts and
	// what both humans and SARIF consumers expect.
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	filters := fileFilters(abs, flag.Args())
	kept := diags[:0]
	for _, d := range diags {
		full := d.Pos.Filename
		if !filepath.IsAbs(full) {
			full = filepath.Join(abs, full)
		}
		if matchesFilter(full, filters) {
			kept = append(kept, d)
		}
	}
	diags = kept

	switch {
	case *jsonOut:
		render(lint.RenderJSON(diags))
	case *sarifOut:
		render(lint.RenderSARIF(diags))
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runModule analyzes the whole module, consulting the content-hash cache
// when enabled (cache hits replay stored diagnostics without type-checking).
func runModule(abs, cachePath string, audit bool) []lint.Diagnostic {
	cfg := lint.DefaultConfig()
	start := time.Now()

	var key string
	if cachePath != "" && !audit {
		if !filepath.IsAbs(cachePath) {
			cachePath = filepath.Join(abs, cachePath)
		}
		var err error
		key, err = lint.CacheKey(abs, &cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "darwinlint:", err)
			os.Exit(2)
		}
		if diags, ok := lint.LoadCache(cachePath, key); ok {
			fmt.Fprintf(os.Stderr, "darwinlint: warm run in %s (content-hash cache hit)\n",
				time.Since(start).Round(time.Millisecond))
			return diags
		}
	}

	loader, err := lint.NewLoader(abs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwinlint:", err)
		os.Exit(2)
	}
	prog, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwinlint:", err)
		os.Exit(2)
	}
	var diags []lint.Diagnostic
	if audit {
		diags = lint.RunAudit(prog, cfg)
	} else {
		diags = lint.Run(prog, cfg)
	}

	if key != "" {
		if err := lint.SaveCache(cachePath, key, diags); err != nil {
			fmt.Fprintln(os.Stderr, "darwinlint: saving cache:", err)
		}
		fmt.Fprintf(os.Stderr, "darwinlint: cold run in %s (cache updated)\n",
			time.Since(start).Round(time.Millisecond))
	}
	return diags
}

// runFixture analyzes one golden-fixture package under the configuration
// that enables exactly its rule.
func runFixture(abs, fixture string) []lint.Diagnostic {
	loader, err := lint.NewLoader(abs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwinlint:", err)
		os.Exit(2)
	}
	name := filepath.Base(filepath.Clean(fixture))
	pkg, err := loader.LoadDirAs(fixture, lint.FixturePrefix+name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwinlint:", err)
		os.Exit(2)
	}
	prog := &lint.Program{Fset: loader.Fset(), Pkgs: []*lint.Package{pkg}}
	return lint.Run(prog, lint.FixtureConfig(name))
}

// render writes a serialized report to stdout, exiting on encoding errors.
func render(data []byte, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwinlint:", err)
		os.Exit(2)
	}
	os.Stdout.Write(data)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// fileFilters converts CLI patterns into absolute directory prefixes; nil
// means report everything.
func fileFilters(root string, patterns []string) []string {
	var filters []string
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "." {
			return nil
		}
		trimmed := strings.TrimSuffix(p, "/...")
		if !filepath.IsAbs(trimmed) {
			trimmed = filepath.Join(root, trimmed)
		}
		filters = append(filters, filepath.Clean(trimmed))
	}
	return filters
}

// matchesFilter reports whether file lies under any filter directory.
func matchesFilter(file string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if file == f || strings.HasPrefix(file, f+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
