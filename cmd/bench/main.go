// Command bench is the reproducible performance harness for the simulator
// and the parallel experiment engine. It times the request-serving hot path
// (per eviction policy, plus the feature extractor, frequency trackers and
// Bloom filters) with testing.Benchmark, then measures wall-clock for the
// embarrassingly parallel sweeps (expert-grid evaluation, the Figure 2 panel
// suite) serial vs parallel, asserting along the way that both paths produce
// identical output, and finally measures end-to-end HTTP proxy throughput at
// concurrency 64 with the global-lock (shards=1) vs sharded cache engine.
// Results are written as machine-readable JSON so runs can be diffed across
// commits; see the committed BENCH_*.json baselines.
//
// The proxy matrix section sweeps GOMAXPROCS × shards × concurrency so the
// sharding claim is honest about its scaling axis: shards>1 only pays when
// GOMAXPROCS>1, and the matrix records both sides rather than a single cherry-
// picked point.
//
// Usage:
//
//	bench                      # writes BENCH_<today>.json
//	bench -out results.json -parallelism 8
//	bench -only proxy,matrix -cpuprofile cpu.pprof -out -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"context"
	"net/http/httptest"

	"darwin/internal/baselines"
	"darwin/internal/bloom"
	"darwin/internal/cache"
	"darwin/internal/diskcache"
	"darwin/internal/exp"
	"darwin/internal/features"
	"darwin/internal/gossip"
	"darwin/internal/par"
	"darwin/internal/persist"
	"darwin/internal/server"
	"darwin/internal/trace"
)

// Micro is one testing.Benchmark result over a single-threaded hot-path op.
type Micro struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// Sweep is one serial-vs-parallel wall-clock comparison of an experiment
// driver, with an output-equivalence check.
type Sweep struct {
	Name            string  `json:"name"`
	Tasks           int     `json:"tasks"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	OutputIdentical bool    `json:"output_identical"`
}

// ProxyBench is one HTTP-proxy throughput measurement: a closed-loop load
// run at fixed concurrency against a static-expert proxy whose cache engine
// uses the given shard count (1 = the legacy global-lock data plane).
type ProxyBench struct {
	Name string `json:"name"`
	// GOMAXPROCS is the scheduler parallelism the arm ran under (matrix arms
	// vary it; plain arms inherit the process default and omit the field).
	GOMAXPROCS  int `json:"gomaxprocs,omitempty"`
	Shards      int `json:"shards"`
	Concurrency int `json:"concurrency"`
	// Runs is the number of repetitions behind the reported numbers (the best
	// run by throughput is kept: on a shared host, neighbor interference only
	// subtracts, so the max estimates capability with the least bias).
	Runs int `json:"runs,omitempty"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	ThroughputMbps float64 `json:"throughput_mbps"`
	ReqPerSec      float64 `json:"req_per_sec"`
	P99Millis      float64 `json:"p99_ms"`
	// OnTimeRate and Shed are reported by the overload arms: the fraction of
	// issued requests completing within the client deadline, and the count of
	// deliberate 503 sheds. A healthy origin should show OnTimeRate ≈ 1 and
	// Shed ≈ 0 — the protection layer's tax is read off the throughput delta.
	OnTimeRate float64 `json:"on_time_rate,omitempty"`
	Shed       int     `json:"shed,omitempty"`
	// Nodes, OHR, and PeerFills are reported by the cluster arms: backend
	// count behind the front tier, the cluster-wide hit rate (local hits plus
	// peer fills over requests), and how many misses a ring sibling absorbed.
	Nodes     int     `json:"nodes,omitempty"`
	OHR       float64 `json:"ohr,omitempty"`
	PeerFills int     `json:"peer_fills,omitempty"`
}

// Durability records the cost of the crash-safety layer: journal append
// latency under each fsync policy, and how fast a journal replays on restart.
type Durability struct {
	// JournalPut holds one Micro per fsync policy (off, batch, always).
	JournalPut []Micro `json:"journal_put"`
	// Recovery measures diskcache.Open over a pre-written journal.
	RecoveryRecords       int     `json:"recovery_records"`
	RecoverySeconds       float64 `json:"recovery_seconds"`
	RecoveryRecordsPerSec float64 `json:"recovery_records_per_sec"`
}

// Report is the full benchmark record.
type Report struct {
	Date        string       `json:"date"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Parallelism int          `json:"parallelism"`
	Micro       []Micro      `json:"micro"`
	Durability  Durability   `json:"durability"`
	Sweeps      []Sweep      `json:"sweeps"`
	Proxy       []ProxyBench `json:"proxy"`
}

func main() {
	var (
		out         = flag.String("out", "", "output JSON path; empty selects BENCH_<date>.json, \"-\" skips the JSON write")
		parallelism = flag.Int("parallelism", runtime.NumCPU(), "worker count for the parallel side of sweep comparisons")
		only        = flag.String("only", "", "comma-separated sections to run: micro,gossip,durability,sweeps,proxy,matrix,overload,cluster (empty = all)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile covering the selected sections to this path")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken after the selected sections to this path")
	)
	flag.Parse()

	sections := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sections[s] = true
		}
	}
	want := func(name string) bool { return len(sections) == 0 || sections[name] }

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	if *cpuProfile != "" {
		//lint:ignore persistio pprof streams into a live handle; a torn profile from a crashed bench is diagnostic debris, not durable state
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		Date:        date,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: *parallelism,
	}

	tr, err := exp.SyntheticMix(50, 100_000, 7)
	if err != nil {
		fatal(err)
	}

	if want("micro") {
		fmt.Println("== micro benchmarks (single-threaded hot path) ==")
		for _, name := range []string{"lru", "fifo", "lfu", "s4lru", "gdsf"} {
			rep.Micro = append(rep.Micro, micro("hierarchy-serve/"+name, benchServe(tr, name)))
		}
		rep.Micro = append(rep.Micro,
			micro("features-observe", benchObserve(tr)),
			micro("tracker-exact", benchTracker(tr, cache.NewExactTracker())),
			micro("tracker-approx", benchTracker(tr, cache.NewApproxTracker(1<<16))),
			micro("bloom-test-and-add-u64", benchBloom(tr)),
		)
		for _, m := range rep.Micro {
			fmt.Printf("  %-28s %10.1f ns/op  %4d allocs/op  %8.0f ops/s\n",
				m.Name, m.NsPerOp, m.AllocsPerOp, m.OpsPerSec)
		}
	}

	if want("gossip") {
		fmt.Println("\n== gossip (membership digest wire costs, per probe) ==")
		gm := []Micro{
			micro("gossip-digest-append", benchDigestAppend(16)),
			micro("gossip-digest-decode", benchDigestDecode(16)),
			micro("gossip-digest-merge", benchDigestMerge(16)),
		}
		rep.Micro = append(rep.Micro, gm...)
		for _, m := range gm {
			fmt.Printf("  %-28s %10.1f ns/op  %4d allocs/op  %8.0f ops/s\n",
				m.Name, m.NsPerOp, m.AllocsPerOp, m.OpsPerSec)
		}
	}

	if want("durability") {
		fmt.Println("\n== durability (DC journal append + crash recovery) ==")
		dur, err := benchDurability()
		if err != nil {
			fatal(err)
		}
		rep.Durability = dur
		for _, m := range dur.JournalPut {
			fmt.Printf("  %-28s %10.1f ns/op  %4d allocs/op  %8.0f ops/s\n",
				m.Name, m.NsPerOp, m.AllocsPerOp, m.OpsPerSec)
		}
		fmt.Printf("  %-28s %d records in %.3fs  (%.0f records/s)\n",
			"journal-recovery", dur.RecoveryRecords, dur.RecoverySeconds, dur.RecoveryRecordsPerSec)
	}

	if want("sweeps") {
		fmt.Printf("\n== sweeps (serial vs %d workers) ==\n", *parallelism)
		sw, err := sweepEvaluateAll(tr, *parallelism)
		if err != nil {
			fatal(err)
		}
		rep.Sweeps = append(rep.Sweeps, sw)
		sw, err = sweepFig2(*parallelism)
		if err != nil {
			fatal(err)
		}
		rep.Sweeps = append(rep.Sweeps, sw)
		for _, s := range rep.Sweeps {
			fmt.Printf("  %-20s %2d tasks  serial %6.2fs  parallel %6.2fs  speedup %.2fx  identical=%v\n",
				s.Name, s.Tasks, s.SerialSeconds, s.ParallelSeconds, s.Speedup, s.OutputIdentical)
			if !s.OutputIdentical {
				fatal(fmt.Errorf("sweep %s: parallel output differs from serial", s.Name))
			}
		}
	}

	// The sharded arm uses NumCPU shards but never fewer than 4, so the
	// lock-striping comparison stays meaningful on small containers.
	shardArm := runtime.NumCPU()
	if shardArm < 4 {
		shardArm = 4
	}
	// The three throughput sections (proxy, matrix, overload) pool their arms
	// into ONE bestOf call: repetitions are interleaved across every enabled
	// arm, so each arm's proxyRuns samples span the combined sections' wall
	// time (minutes) instead of that arm's own ~10 s slice. On a host whose
	// background load oscillates on minute scales, that coverage is the
	// difference between best-of-N finding an interference-free window and
	// best-of-N re-sampling the same bad one.
	printStd := func(pb ProxyBench) {
		fmt.Printf("  %-36s %8.1f Mbps  %8.0f req/s  p99 %6.2f ms  errors %d\n",
			pb.Name, pb.ThroughputMbps, pb.ReqPerSec, pb.P99Millis, pb.Errors)
	}
	printOverload := func(pb ProxyBench) {
		fmt.Printf("  %-36s %8.1f Mbps  %8.0f req/s  p99 %6.2f ms  on-time %.4f  shed %d\n",
			pb.Name, pb.ThroughputMbps, pb.ReqPerSec, pb.P99Millis, pb.OnTimeRate, pb.Shed)
	}
	type proxySection struct {
		header string
		print  func(ProxyBench)
		arms   []func() (ProxyBench, error)
	}
	var tputSections []proxySection
	if want("proxy") {
		var arms []func() (ProxyBench, error)
		for _, shards := range []int{1, shardArm} {
			arms = append(arms, func() (ProxyBench, error) { return benchProxyOnce(shards, 64) })
		}
		tputSections = append(tputSections, proxySection{
			header: "\n== proxy throughput (concurrency 64, global lock vs sharded) ==",
			print:  printStd,
			arms:   arms,
		})
	}
	if want("matrix") {
		tputSections = append(tputSections, proxySection{
			header: "\n== proxy matrix (GOMAXPROCS × shards × concurrency) ==",
			print:  printStd,
			arms:   benchProxyMatrixArms(),
		})
	}
	if want("overload") {
		var arms []func() (ProxyBench, error)
		for _, protected := range []bool{false, true} {
			arms = append(arms, func() (ProxyBench, error) { return benchOverloadProxyOnce(shardArm, 64, protected) })
		}
		tputSections = append(tputSections, proxySection{
			header: "\n== overload layer overhead (healthy origin, deadline-carrying clients) ==",
			print:  printOverload,
			arms:   arms,
		})
	}
	if want("cluster") {
		var arms []func() (ProxyBench, error)
		for _, nodes := range []int{1, 3} {
			arms = append(arms, func() (ProxyBench, error) { return benchClusterOnce(nodes, shardArm, 64) })
		}
		tputSections = append(tputSections, proxySection{
			header: "\n== cluster front tier (1-node vs 3-node: ring routing + peer fill) ==",
			print: func(pb ProxyBench) {
				fmt.Printf("  %-36s %8.1f Mbps  %8.0f req/s  p99 %6.2f ms  ohr %.4f  peerfills %d\n",
					pb.Name, pb.ThroughputMbps, pb.ReqPerSec, pb.P99Millis, pb.OHR, pb.PeerFills)
			},
			arms: arms,
		})
	}
	if len(tputSections) > 0 {
		var all []func() (ProxyBench, error)
		for _, s := range tputSections {
			all = append(all, s.arms...)
		}
		// Drop the sweep sections' heap before timing the proxy: a pending GC
		// of simulation garbage shouldn't land in a throughput sample.
		runtime.GC()
		results, err := bestOf(all)
		if err != nil {
			fatal(err)
		}
		idx := 0
		for _, s := range tputSections {
			fmt.Println(s.header)
			for range s.arms {
				pb := results[idx]
				idx++
				rep.Proxy = append(rep.Proxy, pb)
				s.print(pb)
			}
		}
	}

	if *memProfile != "" {
		//lint:ignore persistio pprof writes into a live handle; a torn profile from a crashed bench is diagnostic debris, not durable state
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if path == "-" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := persist.WriteFileAtomic(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func micro(name string, r testing.BenchmarkResult) Micro {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return Micro{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		OpsPerSec:   1e9 / ns,
	}
}

// benchServe times Hierarchy.Serve with the given eviction policy at both
// levels, replaying a pre-generated trace so request generation stays out of
// the measured loop.
func benchServe(tr *trace.Trace, eviction string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		h, err := cache.New(cache.Config{
			HOCBytes:    256 << 10,
			DCBytes:     32 << 20,
			HOCEviction: eviction,
			DCEviction:  eviction,
			Expert:      cache.Expert{Freq: 2, MaxSize: 64 << 10},
		})
		if err != nil {
			b.Fatal(err)
		}
		reqs := tr.Requests
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Serve(reqs[i%len(reqs)])
		}
	})
}

func benchObserve(tr *trace.Trace) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		ex, err := features.NewExtractor(features.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		reqs := tr.Requests
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.Observe(reqs[i%len(reqs)])
		}
	})
}

func benchTracker(tr *trace.Trace, t cache.FrequencyTracker) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		reqs := tr.Requests
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Observe(reqs[i%len(reqs)].ID, int64(i))
		}
	})
}

func benchBloom(tr *trace.Trace) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		f := bloom.New(1<<20, 0.01)
		reqs := tr.Requests
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.TestAndAddU64(reqs[i%len(reqs)].ID)
		}
	})
}

// benchEntries builds a nodes-wide digest entry set with live sequences.
func benchEntries(nodes int) []gossip.Entry {
	entries := make([]gossip.Entry, nodes)
	for i := range entries {
		entries[i] = gossip.Entry{Node: uint16(i), Seq: uint64(1000 + i), Status: uint8(gossip.Alive)}
	}
	return entries
}

// benchDigestAppend times encoding one digest — the cost added to every peer
// probe and /gossip answer. Must be allocation-free on a warm buffer.
func benchDigestAppend(nodes int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		entries := benchEntries(nodes)
		buf := gossip.AppendDigest(nil, 0, entries)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = gossip.AppendDigest(buf[:0], 0, entries)
		}
	})
}

// benchDigestDecode times parsing one digest off the wire — the receive-side
// cost on the probe path. Must be allocation-free on a warm entry slice.
func benchDigestDecode(nodes int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		wire := gossip.AppendDigest(nil, 0, benchEntries(nodes))
		dst := make([]gossip.Entry, 0, nodes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := gossip.DecodeDigest(wire, dst[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchDigestMerge times folding a decoded digest into a membership — the
// detector bookkeeping per probe (sequence advance + phi sample push).
func benchDigestMerge(nodes int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		now := time.Unix(0, 0)
		memb, err := gossip.New(gossip.Config{
			Nodes: nodes,
			Self:  -1,
			Clock: func() time.Time { return now },
		})
		if err != nil {
			b.Fatal(err)
		}
		entries := benchEntries(nodes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range entries {
				entries[j].Seq++
			}
			now = now.Add(250 * time.Millisecond)
			memb.Merge(0, entries)
		}
	})
}

// benchDurability times the DC journal under each fsync policy and measures
// replay speed on reopen — the two numbers that price crash safety: what a
// durable admission costs on the hot path, and how long a restart spends
// rebuilding the index.
func benchDurability() (Durability, error) {
	var d Durability
	for _, pol := range []diskcache.SyncPolicy{diskcache.SyncOff, diskcache.SyncBatch, diskcache.SyncAlways} {
		pol := pol
		r := testing.Benchmark(func(b *testing.B) {
			dir, err := os.MkdirTemp("", "bench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := diskcache.Open(diskcache.Config{Dir: dir, Sync: pol})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Put(uint64(i), 4096)
			}
			b.StopTimer()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		})
		d.JournalPut = append(d.JournalPut, micro("journal-put/fsync="+pol.String(), r))
	}

	// Recovery: replay a 200k-record journal (puts with a delete tail) and
	// time the index rebuild that Open performs.
	const recRecords = 200_000
	dir, err := os.MkdirTemp("", "bench-recovery-*")
	if err != nil {
		return d, err
	}
	defer os.RemoveAll(dir)
	st, err := diskcache.Open(diskcache.Config{Dir: dir, Sync: diskcache.SyncOff})
	if err != nil {
		return d, err
	}
	for i := 0; i < recRecords*9/10; i++ {
		st.Put(uint64(i), 4096)
	}
	for i := 0; i < recRecords/10; i++ {
		st.Remove(uint64(i))
	}
	if err := st.Close(); err != nil {
		return d, err
	}
	start := time.Now()
	st2, err := diskcache.Open(diskcache.Config{Dir: dir, Sync: diskcache.SyncOff})
	if err != nil {
		return d, err
	}
	elapsed := time.Since(start)
	stats := st2.Stats()
	if err := st2.Close(); err != nil {
		return d, err
	}
	replayed := int(stats.RecoveredPuts + stats.RecoveredDeletes)
	d.RecoveryRecords = replayed
	d.RecoverySeconds = elapsed.Seconds()
	d.RecoveryRecordsPerSec = float64(replayed) / elapsed.Seconds()
	return d, nil
}

// sweepEvaluateAll times the expert-grid evaluation (the inner loop of
// Darwin's offline phase) serial vs parallel and verifies the metrics match
// exactly.
func sweepEvaluateAll(tr *trace.Trace, parallelism int) (Sweep, error) {
	sc := exp.Small()
	experts := sc.Experts
	cfg := sc.Eval

	start := time.Now()
	serial, err := cache.EvaluateAllParallel(tr, experts, cfg, 1)
	if err != nil {
		return Sweep{}, err
	}
	serialDur := time.Since(start)

	start = time.Now()
	parallel, err := cache.EvaluateAllParallel(tr, experts, cfg, parallelism)
	if err != nil {
		return Sweep{}, err
	}
	parallelDur := time.Since(start)

	identical := len(serial) == len(parallel)
	for i := 0; identical && i < len(serial); i++ {
		identical = serial[i] == parallel[i]
	}
	return Sweep{
		Name:            "evaluate-all-grid",
		Tasks:           len(experts),
		SerialSeconds:   serialDur.Seconds(),
		ParallelSeconds: parallelDur.Seconds(),
		Speedup:         serialDur.Seconds() / parallelDur.Seconds(),
		OutputIdentical: identical,
	}, nil
}

// sweepFig2 times the Figure 2 panel suite at benchmark scale serial vs
// parallel and verifies the rendered reports match byte for byte.
func sweepFig2(parallelism int) (Sweep, error) {
	run := func(p int) (string, time.Duration, error) {
		prev := par.SetDefault(p)
		defer par.SetDefault(prev)
		start := time.Now()
		reps, err := exp.Fig2Suite(exp.Small())
		if err != nil {
			return "", 0, err
		}
		var out string
		for _, r := range reps {
			out += r.String() + "\n"
		}
		return out, time.Since(start), nil
	}

	serialOut, serialDur, err := run(1)
	if err != nil {
		return Sweep{}, err
	}
	parallelOut, parallelDur, err := run(parallelism)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{
		Name:            "fig2-suite",
		Tasks:           5,
		SerialSeconds:   serialDur.Seconds(),
		ParallelSeconds: parallelDur.Seconds(),
		Speedup:         serialDur.Seconds() / parallelDur.Seconds(),
		OutputIdentical: serialOut == parallelOut,
	}, nil
}

// proxyRuns is the repetition count for proxy throughput arms; the best run
// is reported (see ProxyBench.Runs).
const proxyRuns = 5

// bestOf runs every arm once per pass, proxyRuns passes total, and reports
// each arm's best run by throughput. Interleaving the repetitions across
// arms — rather than running one arm's repetitions back to back — matters on
// a shared host whose background load oscillates over minutes: back-to-back
// runs land in a single ~10 s noise window, while interleaved runs spread
// one arm's samples across the whole section's wall time, so best-of-N can
// find an interference-free window for every arm. Interference only ever
// subtracts throughput, which is why the max (not the mean) is the
// least-biased capability estimate.
func bestOf(arms []func() (ProxyBench, error)) ([]ProxyBench, error) {
	best := make([]ProxyBench, len(arms))
	for pass := 0; pass < proxyRuns; pass++ {
		for i, arm := range arms {
			pb, err := arm()
			if err != nil {
				return nil, err
			}
			if pb.ThroughputMbps > best[i].ThroughputMbps {
				best[i] = pb
			}
		}
	}
	for i := range best {
		best[i].Runs = proxyRuns
	}
	return best, nil
}

// benchProxyOnce measures end-to-end proxy throughput for a static-expert
// decider over a cache engine with the given shard count: shards=1 is the
// legacy global-lock data plane (a single-shard engine serializes exactly
// like the old proxy mutex), shards=N stripes the object space. Latencies
// are zeroed so lock contention — not injected delay — bounds throughput.
// Every call builds a fresh proxy and cache; repetition is bestOf's job.
func benchProxyOnce(shards, concurrency int) (ProxyBench, error) {
	tr, err := exp.SyntheticMix(50, 30_000, 11)
	if err != nil {
		return ProxyBench{}, err
	}
	dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, shards)
	if err != nil {
		return ProxyBench{}, err
	}
	// Batched publication, as cmd/darwin-proxy configures it: the bench
	// measures the deployed fast path, not the publish-every-request debug
	// setting.
	if sh, ok := dec.Engine().(*cache.Sharded); ok {
		sh.SetPublishEvery(32)
	}
	origin := &server.Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	proxy := server.NewProxy(dec, originSrv.URL, 0)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()
	res, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
		ProxyURL:    proxySrv.URL,
		Concurrency: concurrency,
	})
	if err != nil {
		return ProxyBench{}, err
	}
	name := fmt.Sprintf("proxy-throughput/shards=%d", shards)
	return ProxyBench{
		Name:           name,
		Shards:         shards,
		Concurrency:    concurrency,
		Requests:       res.Requests,
		Errors:         res.Errors,
		ThroughputMbps: res.ThroughputBps() / 1e6,
		ReqPerSec:      float64(res.Requests) / res.Wall.Seconds(),
		P99Millis:      float64(res.LatencyPercentile(99).Microseconds()) / 1000,
	}, nil
}

// benchProxyMatrixArms builds the arms sweeping the axes the sharding claim
// actually depends on: GOMAXPROCS (can handlers run in parallel at all?),
// shard count (is the data plane striped?), and client concurrency (is there
// contention to relieve?). On a single-core container the honest result is
// that shards=1 wins at GOMAXPROCS=1 — shard routing is pure overhead
// without scheduler parallelism — and the matrix records that rather than
// hiding it. GOMAXPROCS values above NumCPU are deliberately not swept:
// oversubscription measures the scheduler, not the cache. Each arm sets and
// restores GOMAXPROCS itself, since bestOf interleaves it with arms from
// other sections.
func benchProxyMatrixArms() []func() (ProxyBench, error) {
	gmps := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		gmps = append(gmps, n)
	}
	var arms []func() (ProxyBench, error)
	for _, gmp := range gmps {
		for _, shards := range []int{1, 4} {
			for _, conc := range []int{16, 64} {
				arms = append(arms, func() (ProxyBench, error) {
					prev := runtime.GOMAXPROCS(gmp)
					defer runtime.GOMAXPROCS(prev)
					pb, err := benchProxyOnce(shards, conc)
					if err != nil {
						return ProxyBench{}, err
					}
					pb.Name = fmt.Sprintf("proxy-matrix/gmp=%d/shards=%d/conc=%d", gmp, shards, conc)
					pb.GOMAXPROCS = gmp
					return pb, nil
				})
			}
		}
	}
	return arms
}

// benchOverloadProxy measures the overload-protection layer's happy-path tax:
// the same deadline-carrying closed-loop load against a healthy origin, with
// the full stack (breaker accounting, admission, deadline propagation,
// hedging arming) either off (retry-only, the PR 1 data plane) or on. With a
// healthy origin the two should be within noise of each other — protection
// must be ~free until faults make it earn its keep. Repetition is bestOf's
// job, so the tax comparison is best-vs-best instead of one noise sample
// against another.
func benchOverloadProxyOnce(shards, concurrency int, protected bool) (ProxyBench, error) {
	tr, err := exp.SyntheticMix(50, 30_000, 11)
	if err != nil {
		return ProxyBench{}, err
	}
	dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, shards)
	if err != nil {
		return ProxyBench{}, err
	}
	if sh, ok := dec.Engine().(*cache.Sharded); ok {
		sh.SetPublishEvery(32)
	}
	origin := &server.Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	res := server.DefaultResilience()
	ov := server.Overload{}
	name := "proxy-overload/retry-only"
	if protected {
		ov = server.DefaultOverload()
		name = "proxy-overload/protected"
	}
	proxy := server.NewOverloadProxy(dec, originSrv.URL, 0, res, ov)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()
	lr, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
		ProxyURL:    proxySrv.URL,
		Concurrency: concurrency,
		Deadline:    250 * time.Millisecond,
	})
	if err != nil {
		return ProxyBench{}, err
	}
	return ProxyBench{
		Name:           name,
		Shards:         shards,
		Concurrency:    concurrency,
		Requests:       lr.Requests,
		Errors:         lr.Errors,
		ThroughputMbps: lr.ThroughputBps() / 1e6,
		ReqPerSec:      float64(lr.Requests) / lr.Wall.Seconds(),
		P99Millis:      float64(lr.LatencyPercentile(99).Microseconds()) / 1000,
		OnTimeRate:     lr.GoodputRate(),
		Shed:           lr.Shed,
	}, nil
}

// benchClusterOnce measures end-to-end throughput of the distributed edge:
// a front tier consistent-hash routing over `nodes` caching proxies that
// peer-fill from each other on misses, against one shared origin. nodes=1 is
// the degenerate cluster — one backend, no peers — so the delta to nodes=3
// prices the cluster machinery (ring routing, one relay hop, sibling probes)
// against its payoff (aggregate cache capacity, peer fills replacing origin
// hops). Each node runs the deployed data plane: sharded engine, batched
// publication, the resilient origin path.
func benchClusterOnce(nodes, shards, concurrency int) (ProxyBench, error) {
	tr, err := exp.SyntheticMix(50, 30_000, 11)
	if err != nil {
		return ProxyBench{}, err
	}
	origin := &server.Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	proxies := make([]*server.Proxy, nodes)
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
			cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, shards)
		if err != nil {
			return ProxyBench{}, err
		}
		if sh, ok := dec.Engine().(*cache.Sharded); ok {
			sh.SetPublishEvery(32)
		}
		proxies[i] = server.NewResilientProxy(dec, originSrv.URL, 0, server.DefaultResilience())
		srv := httptest.NewServer(proxies[i])
		defer srv.Close()
		urls[i] = srv.URL
	}
	if nodes > 1 {
		for i, p := range proxies {
			if err := p.SetPeers(server.PeerConfig{Self: urls[i], Nodes: urls}); err != nil {
				return ProxyBench{}, err
			}
		}
	}
	front, err := server.NewFront(server.FrontConfig{Backends: urls})
	if err != nil {
		return ProxyBench{}, err
	}
	frontSrv := httptest.NewServer(front)
	defer frontSrv.Close()

	lr, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
		ProxyURL:    frontSrv.URL,
		Concurrency: concurrency,
	})
	if err != nil {
		return ProxyBench{}, err
	}
	ohr := 0.0
	if lr.Requests > 0 {
		ohr = float64(lr.HOCHits+lr.DCHits+lr.PeerFills) / float64(lr.Requests)
	}
	return ProxyBench{
		Name:           fmt.Sprintf("cluster/nodes=%d", nodes),
		Shards:         shards,
		Concurrency:    concurrency,
		Nodes:          nodes,
		Requests:       lr.Requests,
		Errors:         lr.Errors,
		ThroughputMbps: lr.ThroughputBps() / 1e6,
		ReqPerSec:      float64(lr.Requests) / lr.Wall.Seconds(),
		P99Millis:      float64(lr.LatencyPercentile(99).Microseconds()) / 1000,
		OHR:            ohr,
		PeerFills:      lr.PeerFills,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
