// Command bench is the reproducible performance harness for the simulator
// and the parallel experiment engine. It times the request-serving hot path
// (per eviction policy, plus the feature extractor, frequency trackers and
// Bloom filters) with testing.Benchmark, then measures wall-clock for the
// embarrassingly parallel sweeps (expert-grid evaluation, the Figure 2 panel
// suite) serial vs parallel, asserting along the way that both paths produce
// identical output, and finally measures end-to-end HTTP proxy throughput at
// concurrency 64 with the global-lock (shards=1) vs sharded cache engine.
// Results are written as machine-readable JSON so runs can be diffed across
// commits; see the committed BENCH_*.json baselines.
//
// Usage:
//
//	bench                      # writes BENCH_<today>.json
//	bench -out results.json -parallelism 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"context"
	"net/http/httptest"

	"darwin/internal/baselines"
	"darwin/internal/bloom"
	"darwin/internal/cache"
	"darwin/internal/diskcache"
	"darwin/internal/exp"
	"darwin/internal/features"
	"darwin/internal/par"
	"darwin/internal/persist"
	"darwin/internal/server"
	"darwin/internal/trace"
)

// Micro is one testing.Benchmark result over a single-threaded hot-path op.
type Micro struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// Sweep is one serial-vs-parallel wall-clock comparison of an experiment
// driver, with an output-equivalence check.
type Sweep struct {
	Name            string  `json:"name"`
	Tasks           int     `json:"tasks"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	OutputIdentical bool    `json:"output_identical"`
}

// ProxyBench is one HTTP-proxy throughput measurement: a closed-loop load
// run at fixed concurrency against a static-expert proxy whose cache engine
// uses the given shard count (1 = the legacy global-lock data plane).
type ProxyBench struct {
	Name           string  `json:"name"`
	Shards         int     `json:"shards"`
	Concurrency    int     `json:"concurrency"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	ThroughputMbps float64 `json:"throughput_mbps"`
	ReqPerSec      float64 `json:"req_per_sec"`
	P99Millis      float64 `json:"p99_ms"`
	// OnTimeRate and Shed are reported by the overload arms: the fraction of
	// issued requests completing within the client deadline, and the count of
	// deliberate 503 sheds. A healthy origin should show OnTimeRate ≈ 1 and
	// Shed ≈ 0 — the protection layer's tax is read off the throughput delta.
	OnTimeRate float64 `json:"on_time_rate,omitempty"`
	Shed       int     `json:"shed,omitempty"`
}

// Durability records the cost of the crash-safety layer: journal append
// latency under each fsync policy, and how fast a journal replays on restart.
type Durability struct {
	// JournalPut holds one Micro per fsync policy (off, batch, always).
	JournalPut []Micro `json:"journal_put"`
	// Recovery measures diskcache.Open over a pre-written journal.
	RecoveryRecords       int     `json:"recovery_records"`
	RecoverySeconds       float64 `json:"recovery_seconds"`
	RecoveryRecordsPerSec float64 `json:"recovery_records_per_sec"`
}

// Report is the full benchmark record.
type Report struct {
	Date        string       `json:"date"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Parallelism int          `json:"parallelism"`
	Micro       []Micro      `json:"micro"`
	Durability  Durability   `json:"durability"`
	Sweeps      []Sweep      `json:"sweeps"`
	Proxy       []ProxyBench `json:"proxy"`
}

func main() {
	var (
		out         = flag.String("out", "", "output JSON path; empty selects BENCH_<date>.json")
		parallelism = flag.Int("parallelism", runtime.NumCPU(), "worker count for the parallel side of sweep comparisons")
	)
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	rep := Report{
		Date:        date,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: *parallelism,
	}

	tr, err := exp.SyntheticMix(50, 100_000, 7)
	if err != nil {
		fatal(err)
	}

	fmt.Println("== micro benchmarks (single-threaded hot path) ==")
	for _, name := range []string{"lru", "fifo", "lfu", "s4lru", "gdsf"} {
		rep.Micro = append(rep.Micro, micro("hierarchy-serve/"+name, benchServe(tr, name)))
	}
	rep.Micro = append(rep.Micro,
		micro("features-observe", benchObserve(tr)),
		micro("tracker-exact", benchTracker(tr, cache.NewExactTracker())),
		micro("tracker-approx", benchTracker(tr, cache.NewApproxTracker(1<<16))),
		micro("bloom-test-and-add-u64", benchBloom(tr)),
	)
	for _, m := range rep.Micro {
		fmt.Printf("  %-28s %10.1f ns/op  %4d allocs/op  %8.0f ops/s\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.OpsPerSec)
	}

	fmt.Println("\n== durability (DC journal append + crash recovery) ==")
	dur, err := benchDurability()
	if err != nil {
		fatal(err)
	}
	rep.Durability = dur
	for _, m := range dur.JournalPut {
		fmt.Printf("  %-28s %10.1f ns/op  %4d allocs/op  %8.0f ops/s\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.OpsPerSec)
	}
	fmt.Printf("  %-28s %d records in %.3fs  (%.0f records/s)\n",
		"journal-recovery", dur.RecoveryRecords, dur.RecoverySeconds, dur.RecoveryRecordsPerSec)

	fmt.Printf("\n== sweeps (serial vs %d workers) ==\n", *parallelism)
	sw, err := sweepEvaluateAll(tr, *parallelism)
	if err != nil {
		fatal(err)
	}
	rep.Sweeps = append(rep.Sweeps, sw)
	sw, err = sweepFig2(*parallelism)
	if err != nil {
		fatal(err)
	}
	rep.Sweeps = append(rep.Sweeps, sw)
	for _, s := range rep.Sweeps {
		fmt.Printf("  %-20s %2d tasks  serial %6.2fs  parallel %6.2fs  speedup %.2fx  identical=%v\n",
			s.Name, s.Tasks, s.SerialSeconds, s.ParallelSeconds, s.Speedup, s.OutputIdentical)
		if !s.OutputIdentical {
			fatal(fmt.Errorf("sweep %s: parallel output differs from serial", s.Name))
		}
	}

	fmt.Println("\n== proxy throughput (concurrency 64, global lock vs sharded) ==")
	// The sharded arm uses NumCPU shards but never fewer than 4, so the
	// lock-striping comparison stays meaningful on small containers.
	shardArm := runtime.NumCPU()
	if shardArm < 4 {
		shardArm = 4
	}
	for _, shards := range []int{1, shardArm} {
		pb, err := benchProxy(shards, 64)
		if err != nil {
			fatal(err)
		}
		rep.Proxy = append(rep.Proxy, pb)
		fmt.Printf("  %-24s %8.1f Mbps  %8.0f req/s  p99 %6.2f ms  errors %d\n",
			pb.Name, pb.ThroughputMbps, pb.ReqPerSec, pb.P99Millis, pb.Errors)
	}

	fmt.Println("\n== overload layer overhead (healthy origin, deadline-carrying clients) ==")
	for _, protected := range []bool{false, true} {
		pb, err := benchOverloadProxy(shardArm, 64, protected)
		if err != nil {
			fatal(err)
		}
		rep.Proxy = append(rep.Proxy, pb)
		fmt.Printf("  %-24s %8.1f Mbps  %8.0f req/s  p99 %6.2f ms  on-time %.4f  shed %d\n",
			pb.Name, pb.ThroughputMbps, pb.ReqPerSec, pb.P99Millis, pb.OnTimeRate, pb.Shed)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := persist.WriteFileAtomic(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func micro(name string, r testing.BenchmarkResult) Micro {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return Micro{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		OpsPerSec:   1e9 / ns,
	}
}

// benchServe times Hierarchy.Serve with the given eviction policy at both
// levels, replaying a pre-generated trace so request generation stays out of
// the measured loop.
func benchServe(tr *trace.Trace, eviction string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		h, err := cache.New(cache.Config{
			HOCBytes:    256 << 10,
			DCBytes:     32 << 20,
			HOCEviction: eviction,
			DCEviction:  eviction,
			Expert:      cache.Expert{Freq: 2, MaxSize: 64 << 10},
		})
		if err != nil {
			b.Fatal(err)
		}
		reqs := tr.Requests
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Serve(reqs[i%len(reqs)])
		}
	})
}

func benchObserve(tr *trace.Trace) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		ex, err := features.NewExtractor(features.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		reqs := tr.Requests
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.Observe(reqs[i%len(reqs)])
		}
	})
}

func benchTracker(tr *trace.Trace, t cache.FrequencyTracker) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		reqs := tr.Requests
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Observe(reqs[i%len(reqs)].ID, int64(i))
		}
	})
}

func benchBloom(tr *trace.Trace) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		f := bloom.New(1<<20, 0.01)
		reqs := tr.Requests
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.TestAndAddU64(reqs[i%len(reqs)].ID)
		}
	})
}

// benchDurability times the DC journal under each fsync policy and measures
// replay speed on reopen — the two numbers that price crash safety: what a
// durable admission costs on the hot path, and how long a restart spends
// rebuilding the index.
func benchDurability() (Durability, error) {
	var d Durability
	for _, pol := range []diskcache.SyncPolicy{diskcache.SyncOff, diskcache.SyncBatch, diskcache.SyncAlways} {
		pol := pol
		r := testing.Benchmark(func(b *testing.B) {
			dir, err := os.MkdirTemp("", "bench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := diskcache.Open(diskcache.Config{Dir: dir, Sync: pol})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Put(uint64(i), 4096)
			}
			b.StopTimer()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		})
		d.JournalPut = append(d.JournalPut, micro("journal-put/fsync="+pol.String(), r))
	}

	// Recovery: replay a 200k-record journal (puts with a delete tail) and
	// time the index rebuild that Open performs.
	const recRecords = 200_000
	dir, err := os.MkdirTemp("", "bench-recovery-*")
	if err != nil {
		return d, err
	}
	defer os.RemoveAll(dir)
	st, err := diskcache.Open(diskcache.Config{Dir: dir, Sync: diskcache.SyncOff})
	if err != nil {
		return d, err
	}
	for i := 0; i < recRecords*9/10; i++ {
		st.Put(uint64(i), 4096)
	}
	for i := 0; i < recRecords/10; i++ {
		st.Remove(uint64(i))
	}
	if err := st.Close(); err != nil {
		return d, err
	}
	start := time.Now()
	st2, err := diskcache.Open(diskcache.Config{Dir: dir, Sync: diskcache.SyncOff})
	if err != nil {
		return d, err
	}
	elapsed := time.Since(start)
	stats := st2.Stats()
	if err := st2.Close(); err != nil {
		return d, err
	}
	replayed := int(stats.RecoveredPuts + stats.RecoveredDeletes)
	d.RecoveryRecords = replayed
	d.RecoverySeconds = elapsed.Seconds()
	d.RecoveryRecordsPerSec = float64(replayed) / elapsed.Seconds()
	return d, nil
}

// sweepEvaluateAll times the expert-grid evaluation (the inner loop of
// Darwin's offline phase) serial vs parallel and verifies the metrics match
// exactly.
func sweepEvaluateAll(tr *trace.Trace, parallelism int) (Sweep, error) {
	sc := exp.Small()
	experts := sc.Experts
	cfg := sc.Eval

	start := time.Now()
	serial, err := cache.EvaluateAllParallel(tr, experts, cfg, 1)
	if err != nil {
		return Sweep{}, err
	}
	serialDur := time.Since(start)

	start = time.Now()
	parallel, err := cache.EvaluateAllParallel(tr, experts, cfg, parallelism)
	if err != nil {
		return Sweep{}, err
	}
	parallelDur := time.Since(start)

	identical := len(serial) == len(parallel)
	for i := 0; identical && i < len(serial); i++ {
		identical = serial[i] == parallel[i]
	}
	return Sweep{
		Name:            "evaluate-all-grid",
		Tasks:           len(experts),
		SerialSeconds:   serialDur.Seconds(),
		ParallelSeconds: parallelDur.Seconds(),
		Speedup:         serialDur.Seconds() / parallelDur.Seconds(),
		OutputIdentical: identical,
	}, nil
}

// sweepFig2 times the Figure 2 panel suite at benchmark scale serial vs
// parallel and verifies the rendered reports match byte for byte.
func sweepFig2(parallelism int) (Sweep, error) {
	run := func(p int) (string, time.Duration, error) {
		prev := par.SetDefault(p)
		defer par.SetDefault(prev)
		start := time.Now()
		reps, err := exp.Fig2Suite(exp.Small())
		if err != nil {
			return "", 0, err
		}
		var out string
		for _, r := range reps {
			out += r.String() + "\n"
		}
		return out, time.Since(start), nil
	}

	serialOut, serialDur, err := run(1)
	if err != nil {
		return Sweep{}, err
	}
	parallelOut, parallelDur, err := run(parallelism)
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{
		Name:            "fig2-suite",
		Tasks:           5,
		SerialSeconds:   serialDur.Seconds(),
		ParallelSeconds: parallelDur.Seconds(),
		Speedup:         serialDur.Seconds() / parallelDur.Seconds(),
		OutputIdentical: serialOut == parallelOut,
	}, nil
}

// benchProxy measures end-to-end proxy throughput for a static-expert
// decider over a cache engine with the given shard count: shards=1 is the
// legacy global-lock data plane (a single-shard engine serializes exactly
// like the old proxy mutex), shards=N stripes the object space. Latencies
// are zeroed so lock contention — not injected delay — bounds throughput.
func benchProxy(shards, concurrency int) (ProxyBench, error) {
	tr, err := exp.SyntheticMix(50, 30_000, 11)
	if err != nil {
		return ProxyBench{}, err
	}
	dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, shards)
	if err != nil {
		return ProxyBench{}, err
	}
	origin := &server.Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	proxy := server.NewProxy(dec, originSrv.URL, 0)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()
	res, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
		ProxyURL:    proxySrv.URL,
		Concurrency: concurrency,
	})
	if err != nil {
		return ProxyBench{}, err
	}
	name := fmt.Sprintf("proxy-throughput/shards=%d", shards)
	return ProxyBench{
		Name:           name,
		Shards:         shards,
		Concurrency:    concurrency,
		Requests:       res.Requests,
		Errors:         res.Errors,
		ThroughputMbps: res.ThroughputBps() / 1e6,
		ReqPerSec:      float64(res.Requests) / res.Wall.Seconds(),
		P99Millis:      float64(res.LatencyPercentile(99).Microseconds()) / 1000,
	}, nil
}

// benchOverloadProxy measures the overload-protection layer's happy-path tax:
// the same deadline-carrying closed-loop load against a healthy origin, with
// the full stack (breaker accounting, admission, deadline propagation,
// hedging arming) either off (retry-only, the PR 1 data plane) or on. With a
// healthy origin the two should be within noise of each other — protection
// must be ~free until faults make it earn its keep.
func benchOverloadProxy(shards, concurrency int, protected bool) (ProxyBench, error) {
	tr, err := exp.SyntheticMix(50, 30_000, 11)
	if err != nil {
		return ProxyBench{}, err
	}
	dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, shards)
	if err != nil {
		return ProxyBench{}, err
	}
	origin := &server.Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	res := server.DefaultResilience()
	ov := server.Overload{}
	name := "proxy-overload/retry-only"
	if protected {
		ov = server.DefaultOverload()
		name = "proxy-overload/protected"
	}
	proxy := server.NewOverloadProxy(dec, originSrv.URL, 0, res, ov)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()
	lr, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
		ProxyURL:    proxySrv.URL,
		Concurrency: concurrency,
		Deadline:    250 * time.Millisecond,
	})
	if err != nil {
		return ProxyBench{}, err
	}
	return ProxyBench{
		Name:           name,
		Shards:         shards,
		Concurrency:    concurrency,
		Requests:       lr.Requests,
		Errors:         lr.Errors,
		ThroughputMbps: lr.ThroughputBps() / 1e6,
		ReqPerSec:      float64(lr.Requests) / lr.Wall.Seconds(),
		P99Millis:      float64(lr.LatencyPercentile(99).Microseconds()) / 1000,
		OnTimeRate:     lr.GoodputRate(),
		Shed:           lr.Shed,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
