// Command origin runs the prototype's origin server: it serves any object of
// any requested size at /obj/<id>?size=<bytes> after an injected WAN delay
// (§5, §6 "Testbed Setup").
//
// Usage:
//
//	origin -addr :9000 -latency 100ms
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"darwin/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":9000", "listen address")
		latency = flag.Duration("latency", 100*time.Millisecond, "injected per-request delay")
	)
	flag.Parse()

	origin := &server.Origin{Latency: *latency}
	fmt.Fprintf(os.Stderr, "origin: listening on %s with %v injected latency\n", *addr, *latency)
	if err := http.ListenAndServe(*addr, origin); err != nil {
		fmt.Fprintln(os.Stderr, "origin:", err)
		os.Exit(1)
	}
}
