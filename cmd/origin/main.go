// Command origin runs the prototype's origin server: it serves any object of
// any requested size at /obj/<id>?size=<bytes> after an injected WAN delay
// (§5, §6 "Testbed Setup").
//
// A deterministic fault injector (internal/faults) can wrap the handler to
// model an unhealthy origin for chaos runs: hard 5xx errors, latency spikes,
// first-byte stalls, mid-stream body truncation, and wall-clock outage
// windows, all drawn from a seeded RNG.
//
// Usage:
//
//	origin -addr :9000 -latency 100ms
//	origin -addr :9000 -fault-error-rate 0.1 -fault-outages 30s+10s -fault-seed 42
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"darwin/internal/faults"
	"darwin/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":9000", "listen address")
		latency = flag.Duration("latency", 100*time.Millisecond, "injected per-request delay")

		faultErrRate   = flag.Float64("fault-error-rate", 0, "probability of an injected hard 5xx per request")
		faultSpikeRate = flag.Float64("fault-spike-rate", 0, "probability of an injected latency spike per request")
		faultSpike     = flag.Duration("fault-spike", 50*time.Millisecond, "injected latency spike duration")
		faultStallRate = flag.Float64("fault-stall-rate", 0, "probability the response stalls before its first byte")
		faultStall     = flag.Duration("fault-stall", 5*time.Second, "injected first-byte stall duration")
		faultTruncRate = flag.Float64("fault-truncate-rate", 0, "probability the body is cut short mid-stream")
		faultOutages   = flag.String("fault-outages", "", "outage windows since startup, e.g. \"30s+10s,2m+30s\"")
		faultSeed      = flag.Int64("fault-seed", 1, "fault injector RNG seed")

		drain = flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
	)
	flag.Parse()

	origin := &server.Origin{Latency: *latency}
	var handler http.Handler = origin

	outages, err := faults.ParseOutages(*faultOutages)
	if err != nil {
		fatal(err)
	}
	var injector *faults.Injector
	if *faultErrRate > 0 || *faultSpikeRate > 0 || *faultStallRate > 0 || *faultTruncRate > 0 || len(outages) > 0 {
		injector = faults.New(faults.Config{
			Seed:         *faultSeed,
			ErrorRate:    *faultErrRate,
			SpikeRate:    *faultSpikeRate,
			Spike:        *faultSpike,
			StallRate:    *faultStallRate,
			Stall:        *faultStall,
			TruncateRate: *faultTruncRate,
			Outages:      outages,
		})
		handler = injector.Wrap(origin)
		fmt.Fprintf(os.Stderr, "origin: fault injection on (err=%.2f spike=%.2f stall=%.2f trunc=%.2f outages=%q seed=%d)\n",
			*faultErrRate, *faultSpikeRate, *faultStallRate, *faultTruncRate, *faultOutages, *faultSeed)
	}

	// Health surface: /healthz answers while the process lives; /readyz flips
	// to 503 the moment the drain starts. The injector deliberately does NOT
	// wrap these endpoints — a chaos outage makes the origin fail requests,
	// not lie to its orchestrator.
	health := server.NewHealth()
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.HandleFunc("/healthz", health.Healthz)
	mux.HandleFunc("/readyz", health.Readyz)

	// Timeouts close slowloris-style connections that trickle headers or
	// hold sockets idle; ListenAndServe's zero-value server never would.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "origin: listening on %s with %v injected latency\n", *addr, *latency)
	if err := runServer(srv, *drain, health); err != nil {
		fatal(err)
	}
	if injector != nil {
		st := injector.Stats()
		fmt.Fprintf(os.Stderr, "origin: faults injected: %d errors, %d outage drops, %d spikes, %d stalls, %d truncations over %d requests\n",
			st.Errors, st.OutageDrops, st.Spikes, st.Stalls, st.Truncations, st.Requests)
	}
	reqs, bytes := origin.Stats()
	fmt.Fprintf(os.Stderr, "origin: served %d requests, %d bytes\n", reqs, bytes)
}

// runServer serves until SIGINT/SIGTERM, then runs the health-gated drain:
// /readyz flips to 503 first, and only then are in-flight connections
// drained for up to the given deadline.
func runServer(srv *http.Server, drain time.Duration, health *server.Health) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	health.StartDrain()
	fmt.Fprintln(os.Stderr, "origin: draining (readyz now 503), shutting down...")
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "origin:", err)
	os.Exit(1)
}
