// Command experiments regenerates every table and figure of the paper's
// evaluation (§6, Appendix A.3) at a chosen scale and prints the rows/series
// the paper reports. See DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	experiments                 # all experiments at benchmark ("small") scale
//	experiments -scale default  # the fuller scaled operating point
//	experiments -only fig4a,table2
//	experiments -only crash     # SIGKILL crash-recovery chaos arm
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"darwin/internal/exp"
	"darwin/internal/features"
	"darwin/internal/par"
)

func main() {
	var (
		scaleName   = flag.String("scale", "small", "small | default")
		only        = flag.String("only", "", "comma-separated experiment ids (e.g. fig2,fig4a,table2); empty runs all")
		parallelism = flag.Int("parallelism", runtime.NumCPU(), "worker count for sweep evaluation; 1 forces the serial path")
		shards      = flag.Int("shards", 1, "cache engine shard count for the prototype/chaos proxies (1 = serial)")
	)
	flag.Parse()
	par.SetDefault(*parallelism)

	var sc exp.Scale
	switch *scaleName {
	case "small":
		sc = exp.Small()
	case "default":
		sc = exp.Default()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	type experiment struct {
		id  string
		run func() error
	}
	experiments := []experiment{
		{"table1", func() error { emit(exp.Table1()); return nil }},
		{"fig2", func() error {
			reps, err := exp.Fig2Suite(sc)
			if err != nil {
				return err
			}
			for _, r := range reps {
				emit(r)
			}
			return nil
		}},
		{"fig4a", func() error {
			c, err := exp.CachedCorpus(sc, "ohr")
			if err != nil {
				return err
			}
			rep, _, diags, err := exp.Fig4Compare(c, "Figure 4a: Darwin vs baselines (simulation)")
			if err != nil {
				return err
			}
			emit(rep)
			emit(exp.Fig5dBanditRounds(diags))
			return nil
		}},
		{"fig4b", func() error {
			c, err := exp.ScaledCorpus(sc, 5)
			if err != nil {
				return err
			}
			rep, _, _, err := exp.Fig4Compare(c, "Figure 4b: Darwin vs baselines (5x scaled cache)")
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"fig4c", func() error {
			c, err := exp.CachedCorpus(exp.PrototypeScale(sc), "ohr")
			if err != nil {
				return err
			}
			pc := exp.DefaultPrototypeConfig()
			pc.Shards = *shards
			tr, err := exp.PrototypeTrace(c, pc.TraceLen)
			if err != nil {
				return err
			}
			rep, err := exp.Fig4cPrototypeOHR(c, pc, tr)
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"fig5a", func() error {
			train, _, err := exp.BuildTraces(sc)
			if err != nil {
				return err
			}
			rep, err := exp.Fig5aFeatureConvergence(train, features.DefaultConfig(),
				[]float64{0.01, 0.03, 0.1, 0.3, 0.5, 0.9})
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"fig5b", func() error {
			c, err := exp.CachedCorpus(sc, "ohr")
			if err != nil {
				return err
			}
			rep, err := exp.Fig5bClusterReduction(c.Dataset, sc.NumClusters, []float64{1, 2, 5}, sc.Seed)
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"fig5c", func() error {
			c, err := exp.CachedCorpus(sc, "ohr")
			if err != nil {
				return err
			}
			rep, err := exp.Fig5cPredictorAccuracy(c.Model, c.Dataset.Records, []float64{1, 2, 5})
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"fig6a", func() error {
			rep, err := exp.Fig6Objective(sc, "bmr", "Figure 6a: HOC byte miss ratio objective")
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"fig6b", func() error {
			rep, err := exp.Fig6Objective(sc, "combined", "Figure 6b: OHR - disk-write objective")
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"fig7", func() error {
			c, err := exp.CachedCorpus(exp.PrototypeScale(sc), "ohr")
			if err != nil {
				return err
			}
			pc := exp.DefaultPrototypeConfig()
			pc.Shards = *shards
			tr, err := exp.PrototypeTrace(c, pc.TraceLen)
			if err != nil {
				return err
			}
			rep, err := exp.Fig7aLatency(c, pc, tr)
			if err != nil {
				return err
			}
			emit(rep)
			rep, err = exp.Fig7bThroughput(c, pc, tr)
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"table2", func() error {
			c, err := exp.CachedCorpus(sc, "ohr")
			if err != nil {
				return err
			}
			rep, err := exp.Table2(c)
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"fig11", func() error {
			rep, err := exp.Fig11ThreeKnob(sc, []float64{1, 5})
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"overhead", func() error {
			c, err := exp.CachedCorpus(sc, "ohr")
			if err != nil {
				return err
			}
			rep, err := exp.OverheadReport(c, c.Test[0])
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"chaos", func() error {
			cc := exp.DefaultChaosConfig()
			cc.Prototype.Shards = *shards
			rep, err := exp.ChaosReport(cc)
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"crash", func() error {
			cc := exp.DefaultCrashConfig()
			cc.Scale = sc
			cc.Shards = *shards
			rep, err := exp.CrashRecoveryReport(cc)
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"cluster", func() error {
			rep, err := exp.ClusterReport(exp.DefaultClusterConfig())
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"flap", func() error {
			rep, err := exp.FlapReport(exp.DefaultFlapConfig())
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"overload", func() error {
			oc := exp.DefaultOverloadConfig()
			oc.Prototype.Shards = *shards
			rep, err := exp.OverloadReport(oc)
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
		{"ablations", func() error {
			for _, f := range []func(exp.Scale) (*exp.Report, error){
				exp.AblationSideInfo,
				exp.AblationStopping,
			} {
				rep, err := f(sc)
				if err != nil {
					return err
				}
				emit(rep)
			}
			rep, err := exp.AblationRoundLength(sc, []int{sc.Online.Round / 2, sc.Online.Round, sc.Online.Round * 2})
			if err != nil {
				return err
			}
			emit(rep)
			return nil
		}},
	}

	for _, e := range experiments {
		if !selected(e.id) {
			continue
		}
		start := time.Now()
		fmt.Printf("--- running %s ---\n", e.id)
		if err := e.run(); err != nil {
			fatal(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

func emit(r *exp.Report) { fmt.Println(r.String()) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
