module darwin

go 1.22
