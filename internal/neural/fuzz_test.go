package neural

import (
	"encoding/json"
	"math"
	"testing"
)

func TestUnmarshalRejectsBadShapes(t *testing.T) {
	n, err := New(Config{Inputs: 3, Hidden: []int{4}, Outputs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(nj *netJSON)
	}{
		{"missing-layer", func(nj *netJSON) { nj.Layers = nj.Layers[:1] }},
		{"missing-row", func(nj *netJSON) { nj.Layers[0].W = nj.Layers[0].W[:2] }},
		{"short-row", func(nj *netJSON) { nj.Layers[0].W[1] = nj.Layers[0].W[1][:1] }},
		{"short-bias", func(nj *netJSON) { nj.Layers[1].B = nj.Layers[1].B[:1] }},
		{"wrong-act", func(nj *netJSON) { nj.Layers[1].Act = Tanh }},
		{"nan-weight", func(nj *netJSON) { nj.Layers[0].W[0][0] = math.NaN() }},
		{"inf-bias", func(nj *netJSON) { nj.Layers[1].B[0] = math.Inf(-1) }},
		{"bad-config", func(nj *netJSON) { nj.Cfg.Inputs = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var nj netJSON
			if err := json.Unmarshal(good, &nj); err != nil {
				t.Fatal(err)
			}
			tc.mut(&nj)
			blob, err := json.Marshal(nj)
			if err != nil {
				// NaN/Inf are not representable in JSON: corrupt the good
				// blob via the decoded struct path instead.
				t.Skip("mutation not JSON-encodable")
			}
			var m Net
			if err := json.Unmarshal(blob, &m); err == nil {
				t.Fatal("malformed network accepted")
			}
		})
	}
}

// FuzzUnmarshalNet asserts the decoder's safety contract: arbitrary JSON
// either errors or yields a network whose Forward works at the declared
// dimensions and whose re-serialisation round-trips bit-identically.
func FuzzUnmarshalNet(f *testing.F) {
	n, err := New(Config{Inputs: 2, Hidden: []int{3}, Outputs: 2, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	good, err := json.Marshal(n)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"cfg":{"Inputs":1,"Outputs":1},"layers":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Net
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		x := make([]float64, m.Inputs())
		out := m.Forward(x)
		if len(out) != m.Outputs() {
			t.Fatalf("Forward returned %d outputs, want %d", len(out), m.Outputs())
		}
		first, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("accepted net fails to re-marshal: %v", err)
		}
		var m2 Net
		if err := json.Unmarshal(first, &m2); err != nil {
			t.Fatalf("re-marshalled net fails to decode: %v", err)
		}
		second, err := json.Marshal(&m2)
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(second) {
			t.Fatal("marshal→unmarshal→marshal not bit-identical")
		}
	})
}
