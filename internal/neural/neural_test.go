package neural

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Inputs: 0, Outputs: 1}); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := New(Config{Inputs: 1, Outputs: 0}); err == nil {
		t.Error("zero outputs accepted")
	}
	if _, err := New(Config{Inputs: 1, Outputs: 1, Hidden: []int{0}}); err == nil {
		t.Error("zero-width hidden layer accepted")
	}
	if _, err := New(Config{Inputs: 1, Outputs: 1, HiddenAct: Softmax, Hidden: []int{2}}); err == nil {
		t.Error("softmax hidden activation accepted")
	}
}

func TestForwardShapes(t *testing.T) {
	n, err := New(Config{Inputs: 3, Hidden: []int{5}, Outputs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := n.Forward([]float64{1, 2, 3})
	if len(out) != 2 {
		t.Fatalf("output len = %d", len(out))
	}
	if n.Inputs() != 3 || n.Outputs() != 2 {
		t.Fatal("dims wrong")
	}
	// Sigmoid output in (0,1).
	for _, v := range out {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output %v outside (0,1)", v)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	cfg := Config{Inputs: 4, Hidden: []int{8}, Outputs: 2, Seed: 5}
	a, _ := New(cfg)
	b, _ := New(cfg)
	x := []float64{0.1, -0.3, 0.5, 0.9}
	oa, ob := a.Forward(x), b.Forward(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same seed produced different nets")
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	n, err := New(Config{Inputs: 2, Hidden: []int{4}, Outputs: 3, OutputAct: Softmax, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := n.Forward([]float64{1, -1})
	var sum float64
	for _, v := range out {
		if v < 0 {
			t.Fatalf("negative softmax output %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestTrainXOR(t *testing.T) {
	n, err := New(Config{Inputs: 2, Hidden: []int{8}, Outputs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := [][]float64{{0}, {1}, {1}, {0}}
	loss, err := Trainer{LR: 0.5, Epochs: 3000, BatchSize: 4, Seed: 1}.Train(n, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.03 {
		t.Fatalf("XOR loss = %v, want < 0.03", loss)
	}
	for i, x := range xs {
		out := n.Forward(x)[0]
		if math.Abs(out-ys[i][0]) > 0.3 {
			t.Fatalf("XOR(%v) = %.3f, want %v", x, out, ys[i][0])
		}
	}
}

func TestTrainRegressionProbability(t *testing.T) {
	// The cross-expert predictor use case: learn p = f(x) in [0,1].
	rng := rand.New(rand.NewSource(7))
	var xs, ys [][]float64
	for i := 0; i < 400; i++ {
		x := rng.Float64()*2 - 1
		p := 1 / (1 + math.Exp(-3*x)) // smooth monotone target
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{p})
	}
	n, err := New(Config{Inputs: 1, Hidden: []int{8}, Outputs: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := Trainer{LR: 0.2, Epochs: 200, BatchSize: 32, Seed: 2}.Train(n, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.005 {
		t.Fatalf("regression loss = %v", loss)
	}
}

func TestTrainClassification(t *testing.T) {
	// Three well-separated 2-D blobs with a softmax head.
	rng := rand.New(rand.NewSource(11))
	centers := [][]float64{{0, 0}, {4, 4}, {-4, 4}}
	var xs, ys [][]float64
	for c, ctr := range centers {
		for i := 0; i < 60; i++ {
			xs = append(xs, []float64{ctr[0] + rng.NormFloat64()*0.5, ctr[1] + rng.NormFloat64()*0.5})
			ys = append(ys, OneHot(3, c))
		}
	}
	n, err := New(Config{Inputs: 2, Hidden: []int{12}, Outputs: 3, OutputAct: Softmax, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Trainer{LR: 0.1, Epochs: 150, BatchSize: 16, Seed: 3}).Train(n, xs, ys); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range xs {
		want := 0
		for j, v := range ys[i] {
			if v == 1 {
				want = j
			}
		}
		if n.Classify(x) == want {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Fatalf("classification accuracy %.2f, want >= 0.95", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	n, _ := New(Config{Inputs: 2, Outputs: 1, Seed: 1})
	if _, err := (Trainer{}).Train(n, nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := (Trainer{}).Train(n, [][]float64{{1, 2}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("mismatched set sizes accepted")
	}
	if _, err := (Trainer{}).Train(n, [][]float64{{1}}, [][]float64{{1}}); err == nil {
		t.Error("wrong input dim accepted")
	}
}

func TestLinearModelNoHidden(t *testing.T) {
	n, err := New(Config{Inputs: 1, Outputs: 1, OutputAct: Identity, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fit y = 2x + 1.
	var xs, ys [][]float64
	for i := -10; i <= 10; i++ {
		x := float64(i) / 10
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{2*x + 1})
	}
	loss, err := Trainer{LR: 0.1, Epochs: 500, BatchSize: 8, Seed: 1}.Train(n, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-3 {
		t.Fatalf("linear fit loss = %v", loss)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	n, err := New(Config{Inputs: 3, Hidden: []int{4}, Outputs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var m Net
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 0.1}
	a, b := n.Forward(x), m.Forward(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("restored net differs: %v vs %v", a, b)
		}
	}
}

func TestOneHot(t *testing.T) {
	v := OneHot(3, 1)
	if v[0] != 0 || v[1] != 1 || v[2] != 0 {
		t.Fatalf("OneHot = %v", v)
	}
	if sum := OneHot(3, -1); sum[0]+sum[1]+sum[2] != 0 {
		t.Fatal("out-of-range index should yield zero vector")
	}
}

func TestLossEmpty(t *testing.T) {
	n, _ := New(Config{Inputs: 1, Outputs: 1, Seed: 1})
	if n.Loss(nil, nil) != 0 {
		t.Fatal("Loss of empty set should be 0")
	}
}

func BenchmarkForward(b *testing.B) {
	n, err := New(Config{Inputs: 31, Hidden: []int{16}, Outputs: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 31)
	for i := range x {
		x[i] = float64(i) / 31
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}
