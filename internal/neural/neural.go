// Package neural implements the small fully-connected networks Darwin uses:
// the cross-expert predictors M_{i,j} (§4.1) — one-hidden-layer nets mapping
// a trace's extended feature vector to the conditional hit probabilities
// P(E_j hit | E_i hit) and P(E_j hit | E_i miss) — and the multi-class
// DirectMapping baseline (§4). Only the Go standard library is used: layers
// are plain matrices, training is mini-batch SGD with momentum, and all
// randomness is seeded for reproducibility.
package neural

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// Activation names a layer nonlinearity.
type Activation string

// Supported activations.
const (
	ReLU     Activation = "relu"
	Tanh     Activation = "tanh"
	Sigmoid  Activation = "sigmoid"
	Identity Activation = "identity"
	// Softmax is valid only as the output activation, paired with
	// cross-entropy loss.
	Softmax Activation = "softmax"
)

func (a Activation) apply(z []float64) []float64 {
	out := make([]float64, len(z))
	switch a {
	case ReLU:
		for i, v := range z {
			if v > 0 {
				out[i] = v
			}
		}
	case Tanh:
		for i, v := range z {
			out[i] = math.Tanh(v)
		}
	case Sigmoid:
		for i, v := range z {
			out[i] = 1 / (1 + math.Exp(-v))
		}
	case Identity:
		copy(out, z)
	case Softmax:
		max := math.Inf(-1)
		for _, v := range z {
			if v > max {
				max = v
			}
		}
		var sum float64
		for i, v := range z {
			out[i] = math.Exp(v - max)
			sum += out[i]
		}
		for i := range out {
			out[i] /= sum
		}
	default:
		panic(fmt.Sprintf("neural: unknown activation %q", a))
	}
	return out
}

// derivative returns dA/dz given the activation value a (not used for
// Softmax, whose delta is fused with cross-entropy).
func (act Activation) derivative(a float64) float64 {
	switch act {
	case ReLU:
		if a > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - a*a
	case Sigmoid:
		return a * (1 - a)
	case Identity:
		return 1
	}
	panic(fmt.Sprintf("neural: derivative of %q", act))
}

// layer is one dense layer with weights W[out][in] and biases b[out].
type layer struct {
	W    [][]float64
	B    []float64
	Act  Activation
	vW   [][]float64 // momentum buffers
	vB   []float64
	in   []float64 // cached forward input
	preA []float64 // cached activation output
}

// Config describes a network.
type Config struct {
	// Inputs is the input dimension.
	Inputs int
	// Hidden lists hidden layer widths (may be empty for a linear model).
	Hidden []int
	// Outputs is the output dimension.
	Outputs int
	// HiddenAct is the hidden activation (default Tanh).
	HiddenAct Activation
	// OutputAct is the output activation (default Sigmoid). Softmax selects
	// cross-entropy loss; everything else trains with MSE.
	OutputAct Activation
	// Seed initialises weights deterministically.
	Seed int64
}

// Net is a feed-forward network.
type Net struct {
	cfg    Config
	layers []*layer
}

// New builds a network with Xavier-uniform initial weights.
func New(cfg Config) (*Net, error) {
	if cfg.Inputs <= 0 || cfg.Outputs <= 0 {
		return nil, fmt.Errorf("neural: need positive dims, got in=%d out=%d", cfg.Inputs, cfg.Outputs)
	}
	for _, h := range cfg.Hidden {
		if h <= 0 {
			return nil, fmt.Errorf("neural: hidden width must be > 0, got %d", h)
		}
	}
	if cfg.HiddenAct == "" {
		cfg.HiddenAct = Tanh
	}
	if cfg.OutputAct == "" {
		cfg.OutputAct = Sigmoid
	}
	if cfg.HiddenAct == Softmax {
		return nil, fmt.Errorf("neural: softmax is output-only")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := append([]int{cfg.Inputs}, cfg.Hidden...)
	dims = append(dims, cfg.Outputs)
	n := &Net{cfg: cfg}
	for l := 0; l+1 < len(dims); l++ {
		in, out := dims[l], dims[l+1]
		act := cfg.HiddenAct
		if l+2 == len(dims) {
			act = cfg.OutputAct
		}
		lim := math.Sqrt(6 / float64(in+out))
		ly := &layer{
			W:   make([][]float64, out),
			B:   make([]float64, out),
			Act: act,
			vW:  make([][]float64, out),
			vB:  make([]float64, out),
		}
		for o := 0; o < out; o++ {
			ly.W[o] = make([]float64, in)
			ly.vW[o] = make([]float64, in)
			for i := 0; i < in; i++ {
				ly.W[o][i] = (rng.Float64()*2 - 1) * lim
			}
		}
		n.layers = append(n.layers, ly)
	}
	return n, nil
}

// Inputs returns the input dimension.
func (n *Net) Inputs() int { return n.cfg.Inputs }

// Outputs returns the output dimension.
func (n *Net) Outputs() int { return n.cfg.Outputs }

// Forward runs inference. The input length must equal Inputs().
func (n *Net) Forward(x []float64) []float64 {
	a := x
	for _, ly := range n.layers {
		z := make([]float64, len(ly.W))
		for o, row := range ly.W {
			s := ly.B[o]
			for i, w := range row {
				s += w * a[i]
			}
			z[o] = s
		}
		a = ly.Act.apply(z)
	}
	return a
}

// forwardTrain runs inference caching per-layer inputs and activations.
func (n *Net) forwardTrain(x []float64) []float64 {
	a := x
	for _, ly := range n.layers {
		ly.in = a
		z := make([]float64, len(ly.W))
		for o, row := range ly.W {
			s := ly.B[o]
			for i, w := range row {
				s += w * a[i]
			}
			z[o] = s
		}
		a = ly.Act.apply(z)
		ly.preA = a
	}
	return a
}

// backward accumulates gradients for one sample into gW/gB given the output
// delta (dLoss/dz of the output layer).
func (n *Net) backward(delta []float64, gW [][][]float64, gB [][]float64) {
	for l := len(n.layers) - 1; l >= 0; l-- {
		ly := n.layers[l]
		for o, row := range ly.W {
			gB[l][o] += delta[o]
			for i := range row {
				gW[l][o][i] += delta[o] * ly.in[i]
			}
		}
		if l == 0 {
			break
		}
		prev := n.layers[l-1]
		nd := make([]float64, len(prev.W))
		for i := range nd {
			var s float64
			for o, row := range ly.W {
				s += row[i] * delta[o]
			}
			nd[i] = s * prev.Act.derivative(prev.preA[i])
		}
		delta = nd
	}
}

// Trainer holds SGD hyper-parameters.
type Trainer struct {
	// LR is the learning rate (default 0.05).
	LR float64
	// Momentum is the classical momentum coefficient (default 0.9).
	Momentum float64
	// Epochs is the number of passes over the data (default 50).
	Epochs int
	// BatchSize is the mini-batch size (default 16).
	BatchSize int
	// Seed shuffles mini-batches deterministically.
	Seed int64
	// L2 is optional weight decay.
	L2 float64
}

func (t Trainer) withDefaults() Trainer {
	if t.LR <= 0 {
		t.LR = 0.05
	}
	if t.Momentum < 0 || t.Momentum >= 1 {
		t.Momentum = 0.9
	}
	if t.Epochs <= 0 {
		t.Epochs = 50
	}
	if t.BatchSize <= 0 {
		t.BatchSize = 16
	}
	return t
}

// Train fits the network to (xs, ys) and returns the final average loss.
func (t Trainer) Train(n *Net, xs, ys [][]float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, fmt.Errorf("neural: bad training set sizes %d/%d", len(xs), len(ys))
	}
	for i := range xs {
		if len(xs[i]) != n.cfg.Inputs || len(ys[i]) != n.cfg.Outputs {
			return 0, fmt.Errorf("neural: sample %d dims (%d,%d) want (%d,%d)",
				i, len(xs[i]), len(ys[i]), n.cfg.Inputs, n.cfg.Outputs)
		}
	}
	t = t.withDefaults()
	rng := rand.New(rand.NewSource(t.Seed))
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}

	gW := make([][][]float64, len(n.layers))
	gB := make([][]float64, len(n.layers))
	for l, ly := range n.layers {
		gW[l] = make([][]float64, len(ly.W))
		gB[l] = make([]float64, len(ly.B))
		for o := range ly.W {
			gW[l][o] = make([]float64, len(ly.W[o]))
		}
	}

	for epoch := 0; epoch < t.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += t.BatchSize {
			end := start + t.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for l := range gW {
				for o := range gW[l] {
					for i := range gW[l][o] {
						gW[l][o][i] = 0
					}
					gB[l][o] = 0
				}
			}
			for _, s := range idx[start:end] {
				out := n.forwardTrain(xs[s])
				delta := n.outputDelta(out, ys[s])
				n.backward(delta, gW, gB)
			}
			scale := t.LR / float64(end-start)
			for l, ly := range n.layers {
				for o := range ly.W {
					for i := range ly.W[o] {
						ly.vW[o][i] = t.Momentum*ly.vW[o][i] - scale*(gW[l][o][i]+t.L2*ly.W[o][i])
						ly.W[o][i] += ly.vW[o][i]
					}
					ly.vB[o] = t.Momentum*ly.vB[o] - scale*gB[l][o]
					ly.B[o] += ly.vB[o]
				}
			}
		}
	}
	return n.Loss(xs, ys), nil
}

// outputDelta returns dLoss/dz for the output layer: MSE with the output
// activation's derivative, or the fused softmax+cross-entropy delta.
func (n *Net) outputDelta(out, y []float64) []float64 {
	d := make([]float64, len(out))
	act := n.layers[len(n.layers)-1].Act
	if act == Softmax {
		for i := range d {
			d[i] = out[i] - y[i]
		}
		return d
	}
	for i := range d {
		d[i] = (out[i] - y[i]) * act.derivative(out[i])
	}
	return d
}

// Loss returns the average loss over the dataset: cross-entropy for a
// softmax output, otherwise MSE.
func (n *Net) Loss(xs, ys [][]float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	act := n.layers[len(n.layers)-1].Act
	var total float64
	for s := range xs {
		out := n.Forward(xs[s])
		if act == Softmax {
			for i, y := range ys[s] {
				if y > 0 {
					p := out[i]
					if p < 1e-12 {
						p = 1e-12
					}
					total -= y * math.Log(p)
				}
			}
		} else {
			for i, y := range ys[s] {
				d := out[i] - y
				total += d * d
			}
		}
	}
	return total / float64(len(xs))
}

// Classify returns the argmax output index for x.
func (n *Net) Classify(x []float64) int {
	out := n.Forward(x)
	best, bi := math.Inf(-1), 0
	for i, v := range out {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// netJSON is the serialised form.
type netJSON struct {
	Cfg    Config      `json:"cfg"`
	Layers []layerJSON `json:"layers"`
}

type layerJSON struct {
	W   [][]float64 `json:"w"`
	B   []float64   `json:"b"`
	Act Activation  `json:"act"`
}

// MarshalJSON serialises the network weights.
func (n *Net) MarshalJSON() ([]byte, error) {
	nj := netJSON{Cfg: n.cfg}
	for _, ly := range n.layers {
		nj.Layers = append(nj.Layers, layerJSON{W: ly.W, B: ly.B, Act: ly.Act})
	}
	return json.Marshal(nj)
}

// UnmarshalJSON restores a serialised network.
func (n *Net) UnmarshalJSON(data []byte) error {
	var nj netJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return err
	}
	restored, err := New(nj.Cfg)
	if err != nil {
		return err
	}
	if len(restored.layers) != len(nj.Layers) {
		return fmt.Errorf("neural: layer count mismatch %d vs %d", len(restored.layers), len(nj.Layers))
	}
	// Validate every layer's shape against the config-derived skeleton before
	// applying anything: a truncated or hand-edited blob must fail loudly
	// here, not as an index panic inside Forward.
	for l, lj := range nj.Layers {
		want := restored.layers[l]
		if len(lj.W) != len(want.W) || len(lj.B) != len(want.B) {
			return fmt.Errorf("neural: layer %d shape mismatch: %d×?/%d, want %d×?/%d",
				l, len(lj.W), len(lj.B), len(want.W), len(want.B))
		}
		for o, row := range lj.W {
			if len(row) != len(want.W[o]) {
				return fmt.Errorf("neural: layer %d row %d has %d inputs, want %d",
					l, o, len(row), len(want.W[o]))
			}
		}
		if lj.Act != want.Act {
			return fmt.Errorf("neural: layer %d activation %q does not match config-derived %q",
				l, lj.Act, want.Act)
		}
		for _, row := range lj.W {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("neural: layer %d has non-finite weight", l)
				}
			}
		}
		for _, v := range lj.B {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("neural: layer %d has non-finite bias", l)
			}
		}
	}
	for l, lj := range nj.Layers {
		restored.layers[l].W = lj.W
		restored.layers[l].B = lj.B
		restored.layers[l].Act = lj.Act
	}
	*n = *restored
	return nil
}

// OneHot builds a one-hot vector of length n with index i set.
func OneHot(n, i int) []float64 {
	v := make([]float64, n)
	if i >= 0 && i < n {
		v[i] = 1
	}
	return v
}
