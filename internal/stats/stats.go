// Package stats provides small numeric helpers shared across the Darwin
// reproduction: percentiles, CDF construction, online moment tracking,
// histograms, and a Fenwick (binary indexed) tree used by the stack-distance
// extractor.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than two
// samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value
}

// CDF builds an empirical CDF from samples, deduplicating equal values.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	out := make([]CDFPoint, 0, len(sorted))
	for i, v := range sorted {
		if i+1 < len(sorted) && sorted[i+1] == v {
			continue // keep only the last (highest-fraction) point per value
		}
		out = append(out, CDFPoint{Value: v, Fraction: float64(i+1) / n})
	}
	return out
}

// Welford tracks a running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples added.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Histogram is a fixed-bucket histogram over [Min, Max) with uniform buckets;
// samples outside the range are clamped into the first/last bucket.
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	total    uint64
}

// NewHistogram allocates a histogram with n uniform buckets spanning
// [min, max). It panics if n <= 0 or max <= min.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) n=%d", min, max, n))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Fractions returns per-bucket fractions of the total (all zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Fenwick is a binary indexed tree over int64 values supporting point update
// and prefix-sum query in O(log n). Index range is [0, n).
type Fenwick struct {
	tree []int64
}

// NewFenwick returns a Fenwick tree with n zero-initialized slots.
func NewFenwick(n int) *Fenwick {
	return &Fenwick{tree: make([]int64, n+1)}
}

// Len returns the number of addressable slots.
func (f *Fenwick) Len() int { return len(f.tree) - 1 }

// Add adds delta to slot i.
func (f *Fenwick) Add(i int, delta int64) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum of slots [0, i].
func (f *Fenwick) PrefixSum(i int) int64 {
	var sum int64
	if i >= f.Len() {
		i = f.Len() - 1
	}
	for i++; i > 0; i -= i & (-i) {
		sum += f.tree[i]
	}
	return sum
}

// RangeSum returns the sum of slots [lo, hi]. It returns 0 when lo > hi.
func (f *Fenwick) RangeSum(lo, hi int) int64 {
	if lo > hi {
		return 0
	}
	if lo <= 0 {
		return f.PrefixSum(hi)
	}
	return f.PrefixSum(hi) - f.PrefixSum(lo-1)
}
