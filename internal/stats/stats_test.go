package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton inputs must yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("Percentile(50) = %v, want 5", got)
	}
	if got := Percentile(xs, 75); got != 7.5 {
		t.Fatalf("Percentile(75) = %v, want 7.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 2, 2, 3})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF has %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("CDF[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pts := CDF(xs)
		prevV := math.Inf(-1)
		prevF := 0.0
		for _, p := range pts {
			if p.Value <= prevV || p.Fraction < prevF {
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		return len(pts) == 0 || pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-9 {
		t.Fatalf("Welford var %v != batch %v", w.Variance(), Variance(xs))
	}
	if w.Count() != len(xs) {
		t.Fatalf("Count = %d", w.Count())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 9.99, 10, 100, -3} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// buckets: [0,2) [2,4) [4,6) [6,8) [8,10)
	want := []uint64{3, 1, 0, 0, 3}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid histogram")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestFenwickBasic(t *testing.T) {
	f := NewFenwick(10)
	f.Add(0, 5)
	f.Add(3, 7)
	f.Add(9, 2)
	if got := f.PrefixSum(0); got != 5 {
		t.Fatalf("PrefixSum(0) = %d", got)
	}
	if got := f.PrefixSum(3); got != 12 {
		t.Fatalf("PrefixSum(3) = %d", got)
	}
	if got := f.PrefixSum(9); got != 14 {
		t.Fatalf("PrefixSum(9) = %d", got)
	}
	if got := f.RangeSum(1, 3); got != 7 {
		t.Fatalf("RangeSum(1,3) = %d", got)
	}
	if got := f.RangeSum(4, 2); got != 0 {
		t.Fatalf("RangeSum(4,2) = %d", got)
	}
	f.Add(3, -7)
	if got := f.PrefixSum(9); got != 7 {
		t.Fatalf("after removal PrefixSum(9) = %d", got)
	}
}

func TestFenwickAgainstNaive(t *testing.T) {
	const n = 64
	f := NewFenwick(n)
	naive := make([]int64, n)
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 2000; step++ {
		i := rng.Intn(n)
		d := int64(rng.Intn(21) - 10)
		f.Add(i, d)
		naive[i] += d
		lo, hi := rng.Intn(n), rng.Intn(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want int64
		for j := lo; j <= hi; j++ {
			want += naive[j]
		}
		if got := f.RangeSum(lo, hi); got != want {
			t.Fatalf("step %d RangeSum(%d,%d) = %d, want %d", step, lo, hi, got, want)
		}
	}
}

func TestFenwickPrefixBeyondLen(t *testing.T) {
	f := NewFenwick(4)
	f.Add(3, 9)
	if got := f.PrefixSum(100); got != 9 {
		t.Fatalf("PrefixSum beyond len = %d, want 9", got)
	}
}
