// Package persist provides the durability primitives shared by every
// on-disk artifact the repository emits: a versioned, checksummed binary
// frame for snapshot payloads, and atomic write-temp-then-rename file
// replacement so a crash mid-write never leaves a truncated or torn file
// behind.
//
// A frame is:
//
//	magic    [8]byte  — artifact identity ("DRWNMODL", "DRWNCKPT", ...)
//	version  uint32LE — format version of the payload
//	length   uint64LE — payload length in bytes
//	crc32    uint32LE — IEEE CRC32 of the payload
//	payload  [length]byte
//
// Decoding a frame whose magic, version, length, or checksum does not match
// returns a *FormatError wrapping one of the sentinel errors below — never a
// panic, and never a partially decoded payload.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Sentinel decode failures, matchable with errors.Is.
var (
	// ErrBadMagic: the stream does not start with the expected magic bytes —
	// wrong artifact kind, or garbage.
	ErrBadMagic = errors.New("persist: bad magic")
	// ErrVersion: the frame's format version is not the one the reader
	// understands.
	ErrVersion = errors.New("persist: unsupported format version")
	// ErrTruncated: the stream ended before the declared payload was read.
	ErrTruncated = errors.New("persist: truncated frame")
	// ErrCorrupt: the payload checksum does not match, or the declared
	// length is implausible.
	ErrCorrupt = errors.New("persist: corrupt frame")
)

// FormatError describes a frame decode failure: which artifact was expected
// and which sentinel condition fired.
type FormatError struct {
	// Magic is the expected artifact magic.
	Magic string
	// Detail is a human-readable elaboration ("version 7, want 2").
	Detail string
	// Err is one of the sentinel errors above.
	Err error
}

// Error implements error.
func (e *FormatError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("%v (magic %q)", e.Err, e.Magic)
	}
	return fmt.Sprintf("%v (magic %q): %s", e.Err, e.Magic, e.Detail)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *FormatError) Unwrap() error { return e.Err }

// MagicLen is the fixed magic length; Encode/Decode reject other lengths.
const MagicLen = 8

// headerLen is magic + version + length + crc32.
const headerLen = MagicLen + 4 + 8 + 4

// MaxPayload bounds the declared payload length a decoder will allocate for.
// A corrupt length field must not be able to demand an absurd allocation.
const MaxPayload = 1 << 31

// EncodeFrame writes one frame: header then payload.
func EncodeFrame(w io.Writer, magic string, version uint32, payload []byte) error {
	if len(magic) != MagicLen {
		return fmt.Errorf("persist: magic %q must be %d bytes", magic, MagicLen)
	}
	if int64(len(payload)) > MaxPayload {
		return fmt.Errorf("persist: payload of %d bytes exceeds the %d-byte frame limit", len(payload), int64(MaxPayload))
	}
	var hdr [headerLen]byte
	copy(hdr[:MagicLen], magic)
	binary.LittleEndian.PutUint32(hdr[MagicLen:], version)
	binary.LittleEndian.PutUint64(hdr[MagicLen+4:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[MagicLen+12:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("persist: writing frame payload: %w", err)
	}
	return nil
}

// DecodeFrame reads one frame, verifying magic, version, length, and
// checksum before returning the payload. All validation failures return a
// *FormatError; the payload is returned only when fully verified.
func DecodeFrame(r io.Reader, magic string, version uint32) ([]byte, error) {
	if len(magic) != MagicLen {
		return nil, fmt.Errorf("persist: magic %q must be %d bytes", magic, MagicLen)
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, &FormatError{Magic: magic, Detail: "short header", Err: ErrTruncated}
	}
	if string(hdr[:MagicLen]) != magic {
		return nil, &FormatError{Magic: magic, Detail: fmt.Sprintf("got %q", hdr[:MagicLen]), Err: ErrBadMagic}
	}
	v := binary.LittleEndian.Uint32(hdr[MagicLen:])
	if v != version {
		return nil, &FormatError{Magic: magic, Detail: fmt.Sprintf("version %d, want %d", v, version), Err: ErrVersion}
	}
	length := binary.LittleEndian.Uint64(hdr[MagicLen+4:])
	if length > MaxPayload {
		return nil, &FormatError{Magic: magic, Detail: fmt.Sprintf("declared payload of %d bytes", length), Err: ErrCorrupt}
	}
	sum := binary.LittleEndian.Uint32(hdr[MagicLen+12:])
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, &FormatError{Magic: magic, Detail: "short payload", Err: ErrTruncated}
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, &FormatError{Magic: magic, Detail: "payload checksum mismatch", Err: ErrCorrupt}
	}
	return payload, nil
}
