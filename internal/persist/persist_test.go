package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const testMagic = "TESTMAGC"

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xa5}, 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, testMagic, 3, p); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeFrame(&buf, testMagic, 3)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestDecodeFrameTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, testMagic, 3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	t.Run("bad-magic", func(t *testing.T) {
		b := append([]byte(nil), frame...)
		b[0] ^= 0xff
		_, err := DecodeFrame(bytes.NewReader(b), testMagic, 3)
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		_, err := DecodeFrame(bytes.NewReader(frame), testMagic, 4)
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		_, err := DecodeFrame(bytes.NewReader(frame[:5]), testMagic, 3)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		_, err := DecodeFrame(bytes.NewReader(frame[:len(frame)-3]), testMagic, 3)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("flipped-payload-bit", func(t *testing.T) {
		b := append([]byte(nil), frame...)
		b[len(b)-1] ^= 0x01
		_, err := DecodeFrame(bytes.NewReader(b), testMagic, 3)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("absurd-length", func(t *testing.T) {
		b := append([]byte(nil), frame...)
		for i := MagicLen + 4; i < MagicLen+12; i++ {
			b[i] = 0xff
		}
		_, err := DecodeFrame(bytes.NewReader(b), testMagic, 3)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("format-error-type", func(t *testing.T) {
		_, err := DecodeFrame(bytes.NewReader(nil), testMagic, 3)
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("got %T, want *FormatError", err)
		}
		if fe.Magic != testMagic {
			t.Fatalf("FormatError.Magic = %q", fe.Magic)
		}
	})
}

func TestEncodeFrameRejectsBadMagicLength(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, "short", 1, nil); err == nil {
		t.Fatal("want error for 5-byte magic")
	}
	if _, err := DecodeFrame(&buf, "short", 1); err == nil {
		t.Fatal("want error for 5-byte magic")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-longer" {
		t.Fatalf("content = %q", got)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1 (temp files left behind?)", len(ents))
	}
}

func TestSaveLoadFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.bin")
	payload := []byte(`{"hello":"world"}`)
	if err := SaveFrame(path, testMagic, 7, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrame(path, testMagic, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	if _, err := LoadFrame(path, "WRONGMAG", 7); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	if _, err := LoadFrame(filepath.Join(t.TempDir(), "absent"), testMagic, 7); !os.IsNotExist(err) {
		t.Fatalf("got %v, want not-exist", err)
	}
}
