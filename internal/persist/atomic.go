package persist

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with data without ever exposing a partial
// file: the bytes are written to a temporary file in the same directory,
// fsynced, and renamed over the destination. Readers observe either the old
// content or the new content, never a torn mix — the invariant every
// artifact writer in this repository (models, checkpoints, BENCH json,
// experiment figures) relies on across crashes.
func WriteFileAtomic(path string, data []byte, perm fs.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any failure below removes the temp file; the destination is untouched.
	fail := func(op string, err error) error {
		_ = tmp.Close()          // already failing; surface the first error
		_ = os.Remove(tmpName)   // best-effort cleanup of the orphaned temp
		return fmt.Errorf("persist: %s for %s: %w", op, path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("writing temp", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmod temp", err)
	}
	// Sync before rename: the rename must never promote bytes that are not
	// yet durable, or a crash could atomically install a hollow file.
	if err := tmp.Sync(); err != nil {
		return fail("syncing temp", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("closing temp", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName) // best-effort cleanup of the orphaned temp
		return fmt.Errorf("persist: renaming into %s: %w", path, err)
	}
	// Sync the directory so the rename itself survives a crash. Best-effort:
	// some filesystems reject directory fsync, and the data rename above has
	// already succeeded.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()  // best-effort; see above
		_ = d.Close() // read-only handle; nothing to flush
	}
	return nil
}

// SaveFrame atomically writes a single-frame artifact file: payload wrapped
// in the magic/version/checksum frame, installed with WriteFileAtomic.
func SaveFrame(path, magic string, version uint32, payload []byte, perm fs.FileMode) error {
	buf := make([]byte, 0, headerLen+len(payload))
	w := &appendWriter{buf: buf}
	if err := EncodeFrame(w, magic, version, payload); err != nil {
		return err
	}
	return WriteFileAtomic(path, w.buf, perm)
}

// LoadFrame reads a single-frame artifact file written by SaveFrame,
// returning the verified payload. A missing file returns the os.Open error
// (matchable with os.IsNotExist); a present-but-invalid file returns a
// *FormatError.
func LoadFrame(path, magic string, version uint32) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeFrame(f, magic, version)
}

// appendWriter is an error-free in-memory io.Writer over an append slice.
type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
