package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame asserts the frame decoder's safety contract: arbitrary
// input — truncations, bit flips, hostile length fields — either decodes to
// a checksum-verified payload or returns a *FormatError. It must never
// panic and never return payload bytes that fail re-verification.
func FuzzDecodeFrame(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeFrame(&seed, "FUZZMAGC", 1, []byte("seed payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:headerLen-2])
	f.Add([]byte{})
	f.Add([]byte("FUZZMAGC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeFrame(bytes.NewReader(data), "FUZZMAGC", 1)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %v is not a *FormatError", err)
			}
			return
		}
		// A successful decode must round-trip to an identical frame prefix.
		var re bytes.Buffer
		if err := EncodeFrame(&re, "FUZZMAGC", 1, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}
