package cluster

import (
	"math/rand"
	"testing"
)

// blobs generates n points around each of the given centers with small noise.
func blobs(centers [][]float64, n int, noise float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var pts [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j, v := range c {
				p[j] = v + rng.NormFloat64()*noise
			}
			pts = append(pts, p)
			labels = append(labels, ci)
		}
	}
	return pts, labels
}

func TestFitSeparatesBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	pts, labels := blobs(centers, 50, 0.5, 3)
	m, err := Fit(pts, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 {
		t.Fatalf("K = %d", m.K())
	}
	// Every true blob must map to a single fitted cluster, and different
	// blobs to different clusters.
	blobToCluster := map[int]int{}
	for i, p := range pts {
		c := m.Assign(p)
		if prev, ok := blobToCluster[labels[i]]; ok && prev != c {
			t.Fatalf("blob %d split across clusters %d and %d", labels[i], prev, c)
		}
		blobToCluster[labels[i]] = c
	}
	seen := map[int]bool{}
	for _, c := range blobToCluster {
		if seen[c] {
			t.Fatal("two blobs merged into one cluster")
		}
		seen[c] = true
	}
}

func TestFitDeterministic(t *testing.T) {
	pts, _ := blobs([][]float64{{0, 0}, {5, 5}}, 30, 1, 9)
	a, err := Fit(pts, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(pts, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("Fit not deterministic for fixed seed")
		}
	}
}

func TestAssignMatchesTrainingAssignments(t *testing.T) {
	pts, _ := blobs([][]float64{{0, 0}, {8, 8}}, 40, 0.3, 5)
	m, err := Fit(pts, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if got := m.Assign(p); got != m.Assignments[i] {
			t.Fatalf("Assign(%d) = %d, training assignment = %d", i, got, m.Assignments[i])
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, DefaultConfig(2)); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, DefaultConfig(2)); err == nil {
		t.Error("ragged points accepted")
	}
	if _, err := Fit([][]float64{{1}}, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestKClampedToPoints(t *testing.T) {
	pts := [][]float64{{1, 2}, {3, 4}}
	m, err := Fit(pts, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if m.K() > 2 {
		t.Fatalf("K = %d, want <= 2", m.K())
	}
}

func TestConstantDimensionHandled(t *testing.T) {
	// Second dimension constant: std=0 must not divide by zero.
	pts := [][]float64{{0, 5}, {1, 5}, {10, 5}, {11, 5}}
	m, err := Fit(pts, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Assign(pts[0]) == m.Assign(pts[2]) {
		t.Fatal("distinct groups along first dimension not separated")
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	m, err := Fit(pts, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Inertia != 0 {
		t.Fatalf("Inertia = %v for identical points", m.Inertia)
	}
}

func TestInertiaImprovesWithMoreClusters(t *testing.T) {
	pts, _ := blobs([][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}, 25, 1, 8)
	m1, err := Fit(pts, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Fit(pts, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if m4.Inertia >= m1.Inertia {
		t.Fatalf("inertia did not improve: k=1 %.2f vs k=4 %.2f", m1.Inertia, m4.Inertia)
	}
}
