// Package cluster implements the unsupervised trace clustering of Darwin's
// offline phase (Appendix A.1): feature vectors are z-score standardised and
// grouped with K-means (k-means++ seeding, Lloyd iterations). The resulting
// model maps an online feature estimate to its nearest cluster.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Model is a fitted K-means clustering over standardised features.
type Model struct {
	// Centroids are in standardised space, one per cluster.
	Centroids [][]float64
	// Mean and Std are the per-dimension standardisation parameters learned
	// from the training set.
	Mean, Std []float64
	// Assignments holds the training points' cluster indices.
	Assignments []int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
}

// Config controls fitting.
type Config struct {
	// K is the number of clusters (paper: 52 over its offline set).
	K int
	// MaxIter bounds Lloyd iterations.
	MaxIter int
	// Seed makes fitting deterministic.
	Seed int64
	// Restarts runs k-means++ this many times and keeps the best inertia.
	Restarts int
}

// DefaultConfig returns sensible fitting parameters.
func DefaultConfig(k int) Config {
	return Config{K: k, MaxIter: 100, Seed: 1, Restarts: 4}
}

// Fit clusters the given feature vectors.
func Fit(points [][]float64, cfg Config) (*Model, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("cluster: K must be > 0, got %d", cfg.K)
	}
	if cfg.K > len(points) {
		cfg.K = len(points)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}

	mean, std := standardiseParams(points)
	z := make([][]float64, len(points))
	for i, p := range points {
		z[i] = standardise(p, mean, std)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var best *Model
	for r := 0; r < cfg.Restarts; r++ {
		cents := seedPlusPlus(z, cfg.K, rng)
		assign := make([]int, len(z))
		var inertia float64
		for iter := 0; iter < cfg.MaxIter; iter++ {
			changed := false
			inertia = 0
			for i, p := range z {
				ci, d := nearest(cents, p)
				if ci != assign[i] {
					assign[i] = ci
					changed = true
				}
				inertia += d
			}
			recompute(cents, z, assign, rng)
			if !changed && iter > 0 {
				break
			}
		}
		if best == nil || inertia < best.Inertia {
			best = &Model{
				Centroids:   cents,
				Mean:        mean,
				Std:         std,
				Assignments: append([]int(nil), assign...),
				Inertia:     inertia,
			}
		}
	}
	return best, nil
}

// K returns the number of clusters.
func (m *Model) K() int { return len(m.Centroids) }

// Assign returns the nearest cluster for a raw (unstandardised) feature
// vector.
func (m *Model) Assign(p []float64) int {
	ci, _ := nearest(m.Centroids, standardise(p, m.Mean, m.Std))
	return ci
}

func standardiseParams(points [][]float64) (mean, std []float64) {
	dim := len(points[0])
	mean = make([]float64, dim)
	std = make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(points))
	}
	for _, p := range points {
		for j, v := range p {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(points)))
		if std[j] == 0 {
			std[j] = 1 // constant dimension: leave centred values at 0
		}
	}
	return mean, std
}

func standardise(p, mean, std []float64) []float64 {
	out := make([]float64, len(p))
	for j, v := range p {
		out[j] = (v - mean[j]) / std[j]
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return d
}

func nearest(cents [][]float64, p []float64) (int, float64) {
	bi, bd := 0, math.Inf(1)
	for i, c := range cents {
		if d := sqDist(c, p); d < bd {
			bi, bd = i, d
		}
	}
	return bi, bd
}

// seedPlusPlus picks k initial centroids with k-means++ weighting.
func seedPlusPlus(z [][]float64, k int, rng *rand.Rand) [][]float64 {
	cents := make([][]float64, 0, k)
	first := z[rng.Intn(len(z))]
	cents = append(cents, append([]float64(nil), first...))
	d2 := make([]float64, len(z))
	for len(cents) < k {
		var total float64
		for i, p := range z {
			_, d := nearest(cents, p)
			d2[i] = d
			total += d
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			cents = append(cents, append([]float64(nil), z[rng.Intn(len(z))]...))
			continue
		}
		r := rng.Float64() * total
		var acc float64
		pick := len(z) - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		cents = append(cents, append([]float64(nil), z[pick]...))
	}
	return cents
}

// recompute moves each centroid to the mean of its members; empty clusters
// are re-seeded on a random point.
func recompute(cents [][]float64, z [][]float64, assign []int, rng *rand.Rand) {
	dim := len(z[0])
	counts := make([]int, len(cents))
	for i := range cents {
		for j := 0; j < dim; j++ {
			cents[i][j] = 0
		}
	}
	for i, p := range z {
		c := assign[i]
		counts[c]++
		for j, v := range p {
			cents[c][j] += v
		}
	}
	for i := range cents {
		if counts[i] == 0 {
			copy(cents[i], z[rng.Intn(len(z))])
			continue
		}
		for j := range cents[i] {
			cents[i][j] /= float64(counts[i])
		}
	}
}
