package exp

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/breaker"
	"darwin/internal/cache"
	"darwin/internal/faults"
	"darwin/internal/server"
	"darwin/internal/trace"
)

// OverloadConfig sizes the overload chaos experiment: a flash-crowd arrival
// schedule replayed against a browned-out origin (stalls + errors + one hard
// outage), comparing the PR 1 retry-only data plane with the full overload-
// protection stack (circuit breaker, admission control, deadline propagation,
// hedging, retry budget). The regime the paper's §6.4 testbed never enters —
// and the one where retries alone make things worse, not better.
type OverloadConfig struct {
	// Prototype carries the testbed latencies and client concurrency.
	Prototype PrototypeConfig
	// Faults is the origin brownout schedule: stalls model a saturated
	// origin answering slowly, errors and the outage window model the part
	// of the fleet that has tipped over.
	Faults faults.Config
	// Resilience is the retry layer shared by both arms, so the comparison
	// isolates the overload controls.
	Resilience server.Resilience
	// Overload is the protected arm's configuration; the retry-only control
	// always runs with the zero (disabled) Overload.
	Overload server.Overload
	// Deadline is the client's per-request freshness deadline: propagated to
	// the proxy and used to classify on-time (goodput) completions.
	Deadline time.Duration
	// Burst is the seeded flash-crowd arrival schedule driving dispatch.
	Burst server.Burst
	// Expert and Eval fix the static decider driving both arms.
	Expert cache.Expert
	Eval   cache.EvalConfig
	// Mix and Seed generate the replayed trace.
	Mix  int
	Seed int64
}

// DefaultOverloadConfig returns the benchmark-scale overload schedule: a
// 300 ms client deadline against an origin that stalls 12% of responses for
// 900 ms (slow enough to blow the deadline, fast enough that the retry-only
// proxy happily waits it out), errors 10%, and goes hard-down for one 400 ms
// window — while the client dispatches in seeded flash crowds.
func DefaultOverloadConfig() OverloadConfig {
	pc := DefaultPrototypeConfig()
	pc.OriginLatency = 1 * time.Millisecond
	pc.Concurrency = 24
	pc.TraceLen = 4000
	return OverloadConfig{
		Prototype: pc,
		Faults: faults.Config{
			Seed:      42,
			ErrorRate: 0.10,
			StallRate: 0.12,
			Stall:     900 * time.Millisecond,
			Outages:   []faults.Window{{Start: 2500 * time.Millisecond, End: 3500 * time.Millisecond}},
		},
		Resilience: server.DefaultResilience(),
		Overload:   server.DefaultOverload(),
		Deadline:   300 * time.Millisecond,
		Burst: server.Burst{
			Seed:  11,
			Gap:   1 * time.Millisecond,
			Every: 500,
			Len:   125,
		},
		Expert: cache.Expert{Freq: 1, MaxSize: 1 << 20},
		Eval:   cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20},
		Mix:    50,
		Seed:   7,
	}
}

// overloadRun replays the flash-crowd trace through a fresh
// origin+injector+proxy stack and returns the client-side result plus the
// proxy counters and the breaker snapshot (zero for the retry-only arm).
func overloadRun(oc OverloadConfig, ov server.Overload, tr *trace.Trace) (server.LoadResult, server.ProxyStats, breaker.Snapshot, error) {
	dec, err := baselines.NewStaticSharded(oc.Expert, oc.Eval, oc.Prototype.shards())
	if err != nil {
		return server.LoadResult{}, server.ProxyStats{}, breaker.Snapshot{}, err
	}
	origin := &server.Origin{Latency: oc.Prototype.OriginLatency}
	injector := faults.New(oc.Faults)
	originSrv := httptest.NewServer(injector.Wrap(origin))
	defer originSrv.Close()
	proxy := server.NewOverloadProxy(dec, originSrv.URL, oc.Prototype.DCLatency, oc.Resilience, ov)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	// Like the chaos experiment, outage windows anchor to the physical clock
	// of the live origin server — the wall-clock boundary the determinism
	// rule carves out for internal/server.
	//lint:ignore determinism prototype testbed runs on the physical clock; simulator replays never reach this path
	injector.Restart(time.Now()) // align the brownout windows with the replay
	lr, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
		ProxyURL:       proxySrv.URL,
		Concurrency:    oc.Prototype.Concurrency,
		ClientLatency:  oc.Prototype.ClientLatency,
		RequestTimeout: 30 * time.Second,
		Deadline:       oc.Deadline,
		Burst:          &oc.Burst,
	})
	snap, _ := proxy.BreakerSnapshot()
	return lr, proxy.Stats(), snap, err
}

// OverloadReport runs the flash-crowd brownout twice under an identical
// fault and arrival schedule — once with the PR 1 retry-only proxy and once
// with the overload-protection stack — and tabulates goodput, tail latency,
// and the error budget. The protected arm should win on both headline
// numbers: deadline-bounded attempts and hedging turn origin stalls into
// fast answers instead of slow ones, and the breaker converts the outage
// window into cheap stale serves instead of doomed fetches.
func OverloadReport(oc OverloadConfig) (*Report, error) {
	tr, err := tracegenMix(oc.Mix, oc.Prototype.TraceLen, oc.Seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: fmt.Sprintf("Overload: flash crowd vs origin brownout (protected vs retry-only, shards=%d)", oc.Prototype.shards()),
		Header: []string{"scheme", "ok", "ontime", "goodput", "errors", "shed", "stale",
			"p99ms", "fetches", "retries", "hedges", "hwins", "bropen", "brdeny"},
	}
	arms := []struct {
		name string
		ov   server.Overload
	}{
		{"retry-only", server.Overload{}},
		{"protected", oc.Overload},
	}
	for _, arm := range arms {
		lr, ps, bs, err := overloadRun(oc, arm.ov, tr)
		if err != nil {
			return nil, err
		}
		rep.AddRow(arm.name,
			fmt.Sprint(lr.Requests), fmt.Sprint(lr.OnTime), f4(lr.GoodputRate()),
			fmt.Sprint(lr.Errors), fmt.Sprint(lr.Shed), fmt.Sprint(lr.StaleServes),
			fmt.Sprintf("%.2f", float64(lr.LatencyPercentile(99).Microseconds())/1000),
			fmt.Sprint(ps.OriginFetches), fmt.Sprint(ps.Retries),
			fmt.Sprint(ps.Hedges), fmt.Sprint(ps.HedgeWins),
			fmt.Sprint(bs.Opens), fmt.Sprint(bs.Denied))
	}
	rep.AddNote("client deadline %v; goodput = on-time completions / issued requests", oc.Deadline)
	if len(oc.Faults.Outages) > 0 {
		rep.AddNote("brownout: %.0f%% stalls of %v, %.0f%% errors, outage %v-%v",
			oc.Faults.StallRate*100, oc.Faults.Stall, oc.Faults.ErrorRate*100,
			oc.Faults.Outages[0].Start, oc.Faults.Outages[0].End)
	} else {
		rep.AddNote("brownout: %.0f%% stalls of %v, %.0f%% errors",
			oc.Faults.StallRate*100, oc.Faults.Stall, oc.Faults.ErrorRate*100)
	}
	rep.AddNote("protected arm: deadline-bounded hedged fetches + breaker (opens=bropen) shed doomed work; retry-only waits out every stall")
	return rep, nil
}
