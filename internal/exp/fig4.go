package exp

import (
	"fmt"
	"sort"
	"sync"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/par"
	"darwin/internal/stats"
	"darwin/internal/trace"
)

// RunDarwin plays tr through a fresh Darwin controller and returns its
// post-warm-up metrics and the per-epoch diagnostics.
func RunDarwin(c *Corpus, tr *trace.Trace) (cache.Metrics, []core.EpochDiag, error) {
	hier, err := cache.New(cache.Config{
		HOCBytes:    c.Scale.Eval.HOCBytes,
		DCBytes:     c.Scale.Eval.DCBytes,
		HOCEviction: c.Scale.Eval.HOCEviction,
		DCEviction:  c.Scale.Eval.DCEviction,
	})
	if err != nil {
		return cache.Metrics{}, nil, err
	}
	ctrl, err := core.NewController(c.Model, hier, c.Scale.Online)
	if err != nil {
		return cache.Metrics{}, nil, err
	}
	m := baselines.Play(ctrl, tr, c.Scale.Eval.WarmupFrac)
	return m, ctrl.Diags(), nil
}

// BaselineNames lists the adaptive baselines CompareBaselines runs: the
// paper's Figure-4 legend (P, HC-Δs, Direct, AS) plus TinyLFU as an extra
// frequency-admission baseline from the paper's related work [17].
func BaselineNames() []string {
	return []string{"percentile", "hillclimbing-1k", "hillclimbing-10k", "directmapping", "adaptsize", "tinylfu"}
}

// NewBaseline constructs a named adaptive baseline sized for the corpus.
func NewBaseline(name string, c *Corpus) (baselines.Server, error) {
	sc := c.Scale
	percentileWindow := sc.OnlineTraceLen / 20
	if percentileWindow < 1000 {
		percentileWindow = 1000
	}
	hcWindow := sc.OnlineTraceLen / 20
	if hcWindow < 1000 {
		hcWindow = 1000
	}
	switch name {
	case "percentile":
		return baselines.NewPercentile(baselines.PercentileConfig{
			Experts: sc.Experts,
			Window:  percentileWindow,
			Eval:    sc.Eval,
		})
	case "hillclimbing-1k", "hillclimbing-10k":
		ds := int64(1 << 10)
		if name == "hillclimbing-10k" {
			ds = 10 << 10
		}
		return baselines.NewHillClimbing(baselines.HillClimbingConfig{
			Initial: sc.Experts[len(sc.Experts)/2],
			DeltaF:  1,
			DeltaS:  ds,
			Window:  hcWindow,
			Eval:    sc.Eval,
		})
	case "adaptsize":
		return baselines.NewAdaptSize(baselines.AdaptSizeConfig{
			Window: hcWindow,
			Eval:   sc.Eval,
			Seed:   sc.Seed,
		})
	case "tinylfu":
		return baselines.NewTinyLFU(baselines.TinyLFUConfig{
			Window: hcWindow,
			Eval:   sc.Eval,
		})
	case "directmapping":
		net, mean, std, err := baselines.TrainDirectMapping(c.Dataset, c.Model.Objective, sc.Seed)
		if err != nil {
			return nil, err
		}
		return baselines.NewDirectMapping(net, mean, std, sc.Experts, c.Dataset.FeatureCfg,
			baselines.DirectMappingConfig{
				Warmup: sc.Online.Warmup,
				Epoch:  sc.Online.Epoch,
				Eval:   sc.Eval,
			})
	}
	return nil, fmt.Errorf("exp: unknown baseline %q", name)
}

// hindsight memoises full-grid evaluations of test traces. Guarded by
// hindsightMu: Hindsight is called from the engine's worker goroutines.
var (
	hindsightMu    sync.Mutex
	hindsightCache = map[string][]cache.Metrics{}
)

// Hindsight evaluates every grid expert on tr (memoised per trace name).
func Hindsight(c *Corpus, tr *trace.Trace) ([]cache.Metrics, error) {
	key := fmt.Sprintf("%s|%d|%d", tr.Name, c.Scale.Eval.HOCBytes, len(c.Scale.Experts))
	hindsightMu.Lock()
	ms, ok := hindsightCache[key]
	hindsightMu.Unlock()
	if ok {
		return ms, nil
	}
	ms, err := cache.EvaluateAll(tr, c.Scale.Experts, c.Scale.Eval)
	if err != nil {
		return nil, err
	}
	hindsightMu.Lock()
	hindsightCache[key] = ms
	hindsightMu.Unlock()
	return ms, nil
}

// resetHindsightCache clears the memo (golden serial/parallel tests use it to
// force both runs through the full evaluation path).
func resetHindsightCache() {
	hindsightMu.Lock()
	hindsightCache = map[string][]cache.Metrics{}
	hindsightMu.Unlock()
}

// EnsembleSet groups the corpus's test traces by their hindsight-best static
// expert and picks one trace per group (§6.1 "Comparison with static
// baselines").
func EnsembleSet(c *Corpus) ([]*trace.Trace, error) {
	// Warm the hindsight memo for every test trace in parallel; the serial
	// grouping below then reads cached grids only.
	if err := par.ForEach(len(c.Test), 0, func(i int) error {
		_, err := Hindsight(c, c.Test[i])
		return err
	}); err != nil {
		return nil, err
	}
	byBest := map[int]*trace.Trace{}
	var order []int
	for _, tr := range c.Test {
		ms, err := Hindsight(c, tr)
		if err != nil {
			return nil, err
		}
		best := 0
		for i, m := range ms {
			if m.OHR() > ms[best].OHR() {
				best = i
			}
		}
		if _, ok := byBest[best]; !ok {
			byBest[best] = tr
			order = append(order, best)
		}
	}
	sort.Ints(order)
	out := make([]*trace.Trace, 0, len(order))
	for _, b := range order {
		out = append(out, byBest[b])
	}
	return out, nil
}

// ComparisonResult holds one scheme's OHR per ensemble trace.
type ComparisonResult struct {
	// Scheme names the policy.
	Scheme string
	// OHR[t] is the scheme's hit rate on ensemble trace t.
	OHR []float64
}

// compareCache memoises the expensive ensemble comparison per corpus.
// Guarded by compareMu.
var (
	compareMu    sync.Mutex
	compareCache = map[*Corpus]*compareOut{}
)

type compareOut struct {
	results []ComparisonResult
	diags   []core.EpochDiag
}

// compare runs Darwin and every baseline over the corpus's ensemble set
// (memoised per corpus so Figure 4 and Table 2 share one run).
func compare(c *Corpus) (*compareOut, error) {
	compareMu.Lock()
	out, ok := compareCache[c]
	compareMu.Unlock()
	if ok {
		return out, nil
	}
	out, err := compareFresh(c)
	if err != nil {
		return nil, err
	}
	compareMu.Lock()
	compareCache[c] = out
	compareMu.Unlock()
	return out, nil
}

// compareFresh performs the full comparison without memoisation. Every leg —
// Darwin per ensemble trace, the static-expert grids, and each (baseline,
// trace) pair — is an independent deterministic replay, so all of them fan
// out over the engine; results are assembled in fixed scheme/trace order, so
// the output is bit-identical to the serial path.
func compareFresh(c *Corpus) (*compareOut, error) {
	ensemble, err := EnsembleSet(c)
	if err != nil {
		return nil, err
	}
	if len(ensemble) == 0 {
		return nil, fmt.Errorf("exp: empty ensemble")
	}

	// Darwin: one online run per ensemble trace, diagnostics kept per trace
	// so the flattened order matches the serial loop.
	type darwinOut struct {
		ohr   float64
		diags []core.EpochDiag
	}
	darwinRuns, err := par.Map(ensemble, 0, func(i int, tr *trace.Trace) (darwinOut, error) {
		m, diags, err := RunDarwin(c, tr)
		if err != nil {
			return darwinOut{}, fmt.Errorf("darwin on %s: %w", tr.Name, err)
		}
		return darwinOut{ohr: m.OHR(), diags: diags}, nil
	})
	if err != nil {
		return nil, err
	}
	darwin := ComparisonResult{Scheme: "darwin"}
	var allDiags []core.EpochDiag
	for _, d := range darwinRuns {
		darwin.OHR = append(darwin.OHR, d.ohr)
		allDiags = append(allDiags, d.diags...)
	}
	results := []ComparisonResult{darwin}

	// Static experts (full grid; EnsembleSet already warmed the hindsight
	// memo for every ensemble trace).
	for ei, e := range c.Scale.Experts {
		r := ComparisonResult{Scheme: e.String()}
		for _, tr := range ensemble {
			ms, err := Hindsight(c, tr)
			if err != nil {
				return nil, err
			}
			r.OHR = append(r.OHR, ms[ei].OHR())
		}
		results = append(results, r)
	}

	// Adaptive baselines: flatten the (baseline, trace) matrix into one task
	// list; each task constructs its own server, so no state is shared.
	names := BaselineNames()
	type pair struct {
		name string
		tr   *trace.Trace
	}
	pairs := make([]pair, 0, len(names)*len(ensemble))
	for _, name := range names {
		for _, tr := range ensemble {
			pairs = append(pairs, pair{name: name, tr: tr})
		}
	}
	ohrs, err := par.Map(pairs, 0, func(i int, p pair) (float64, error) {
		srv, err := NewBaseline(p.name, c)
		if err != nil {
			return 0, fmt.Errorf("baseline %s: %w", p.name, err)
		}
		m := baselines.Play(srv, p.tr, c.Scale.Eval.WarmupFrac)
		return m.OHR(), nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		results = append(results, ComparisonResult{
			Scheme: name,
			OHR:    ohrs[ni*len(ensemble) : (ni+1)*len(ensemble)],
		})
	}

	return &compareOut{results: results, diags: allDiags}, nil
}

// Fig4Compare reproduces Figure 4a/4b: Darwin vs static and adaptive
// baselines over the ensemble set. It returns the report, the raw
// comparison, and Darwin's epoch diagnostics (reused by Figure 5d).
func Fig4Compare(c *Corpus, title string) (*Report, []ComparisonResult, []core.EpochDiag, error) {
	out, err := compare(c)
	if err != nil {
		return nil, nil, nil, err
	}
	darwin := out.results[0]
	rep := &Report{
		Title:  title,
		Header: []string{"scheme", "mean OHR", "min impr%", "median impr%", "max impr%"},
	}
	for _, r := range out.results[1:] {
		imps := improvements(darwin.OHR, r.OHR)
		rep.AddRow(r.Scheme, f4(stats.Mean(r.OHR)),
			f2(minOf(imps)), f2(stats.Percentile(imps, 50)), f2(maxOf(imps)))
	}
	rep.AddNote("darwin mean OHR %.4f over %d ensemble traces", stats.Mean(darwin.OHR), len(darwin.OHR))
	// R1 reference point: the clairvoyant (Belady-style) HOC bound.
	if ensemble, err := EnsembleSet(c); err == nil && len(ensemble) > 0 {
		bounds, _ := par.Map(ensemble, 0, func(i int, tr *trace.Trace) (float64, error) {
			return cache.OfflineOptimalOHR(tr, c.Scale.Eval.HOCBytes, c.Scale.Eval.WarmupFrac), nil
		})
		if mb := stats.Mean(bounds); mb > 0 {
			rep.AddNote("clairvoyant HOC bound (Belady): mean OHR %.4f; darwin reaches %.1f%% of it",
				mb, 100*stats.Mean(darwin.OHR)/mb)
		}
	}
	return rep, out.results, out.diags, nil
}

// Table2 reproduces Appendix Table 2: Darwin's average improvement rate
// against every baseline.
func Table2(c *Corpus) (*Report, error) {
	res, err := compare(c)
	if err != nil {
		return nil, err
	}
	darwin := res.results[0]
	out := &Report{
		Title:  "Table 2: average improvement rate of Darwin relative to baselines",
		Header: []string{"baseline", "avg improvement %"},
	}
	for _, r := range res.results[1:] {
		out.AddRow(r.Scheme, f2(stats.Mean(improvements(darwin.OHR, r.OHR))))
	}
	return out, nil
}

// improvements computes Darwin's percentage improvement over a baseline per
// ensemble trace.
func improvements(darwin, baseline []float64) []float64 {
	out := make([]float64, len(darwin))
	for i := range darwin {
		if baseline[i] <= 0 {
			out[i] = 0
			continue
		}
		out[i] = (darwin[i] - baseline[i]) / baseline[i] * 100
	}
	return out
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// HindsightTrace evaluates the scale's grid on one trace without a corpus.
func HindsightTrace(tr *trace.Trace, sc Scale) ([]cache.Metrics, error) {
	return cache.EvaluateAll(tr, sc.Experts, sc.Eval)
}
