package exp

import (
	"strings"
	"testing"
)

// TestFlapAcceptance pins the PR's three self-healing acceptance bars, all on
// simulated clocks:
//
//  1. a 1 s up / 1 s down flapper never sheds full ring weight under the
//     graded detector, versus >= 3 full sheds under the binary verdict;
//  2. an asymmetric partition of the front's probe path keeps cluster OHR at
//     >= 90% of the pre-fault level with zero client 5xx, because relayed
//     digests keep the partitioned node routable;
//  3. the drain handoff warms the inheritor to >= 95% of the donor's OHR
//     within one window, versus >= 4 windows (or never) cold.
func TestFlapAcceptance(t *testing.T) {
	fc := DefaultFlapConfig()
	res, err := RunFlap(fc)
	if err != nil {
		t.Fatal(err)
	}

	// Arm 1: flap detector.
	if res.Graded.FullSheds != 0 {
		t.Errorf("graded detector shed full weight %d times for a flapping node, want 0", res.Graded.FullSheds)
	}
	if res.Binary.FullSheds < 3 {
		t.Errorf("binary verdict shed only %d times, want >= 3 (the contrast arm)", res.Binary.FullSheds)
	}
	if res.Graded.SuspectSpells == 0 {
		t.Error("graded detector never even suspected the flapper; the arm is not exercising phi")
	}
	if res.Graded.PeakPhi >= 8 {
		t.Errorf("peak phi %.2f reached the dead threshold; hysteresis should never get there on a 1s flap", res.Graded.PeakPhi)
	}

	// Arm 2: asymmetric partition.
	if res.Gossip.Retention < 0.9 {
		t.Errorf("gossip arm OHR retention %.4f < 0.9 (pre %.4f, fault %.4f)",
			res.Gossip.Retention, res.Gossip.PreOHR, res.Gossip.FaultOHR)
	}
	if res.Gossip.Client5xx != 0 {
		t.Errorf("gossip arm saw %d client 5xx, want 0", res.Gossip.Client5xx)
	}
	if res.Gossip.ShedWindows != 0 {
		t.Errorf("gossip arm shed the partitioned node for %d windows, want 0 (relayed heartbeats)", res.Gossip.ShedWindows)
	}
	if res.Readyz.ShedWindows == 0 {
		t.Error("binary arm never shed the partitioned node; the partition is not biting")
	}
	if res.Readyz.Retention > res.Gossip.Retention {
		t.Errorf("binary arm retained more OHR (%.4f) than gossip (%.4f); shedding should cost locality",
			res.Readyz.Retention, res.Gossip.Retention)
	}

	// Arm 3: drain handoff.
	if res.Handoff.WarmWindows != 1 {
		t.Errorf("warm inheritor took %d windows to reach 95%% of donor OHR, want 1", res.Handoff.WarmWindows)
	}
	if res.Handoff.ColdWindows != 0 && res.Handoff.ColdWindows < 4 {
		t.Errorf("cold inheritor warmed in %d windows, want >= 4 or never", res.Handoff.ColdWindows)
	}
	if res.Handoff.WarmFirstOHR <= res.Handoff.ColdFirstOHR {
		t.Errorf("warm first-window OHR %.4f <= cold %.4f; the handoff transferred nothing",
			res.Handoff.WarmFirstOHR, res.Handoff.ColdFirstOHR)
	}
}

// TestFlapReportDeterministic pins byte-reproducibility: two full runs render
// identically (internal/exp is under the determinism lint rule, and this
// experiment takes no wall-clock carve-outs — every arm runs on simClock).
func TestFlapReportDeterministic(t *testing.T) {
	fc := DefaultFlapConfig()
	a, err := FlapReport(fc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FlapReport(fc)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("flap report not byte-reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	for _, want := range []string{"full-weight sheds", "ohr retention", "windows to 95%", "client 5xx"} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, a)
		}
	}
}
