package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/diskcache"
	"darwin/internal/persist"
)

// CrashConfig sizes the crash-recovery experiment: a darwin controller over a
// journaled disk cache is killed mid-flood (no shutdown path runs — exactly a
// SIGKILL's view of the world), restarted from checkpoint + journal, and
// raced against a cold-started control on the remainder of the trace.
type CrashConfig struct {
	// Scale fixes corpus, cache sizes, and the online configuration.
	Scale Scale
	// Shards is the engine shard count.
	Shards int
	// CrashFrac is the fraction of the trace served before the crash.
	CrashFrac float64
	// Window is the OHR trajectory window in requests.
	Window int
	// CkptEvery is the checkpoint cadence in requests — the crash always
	// loses the tail since the last checkpoint, as in production.
	CkptEvery int
	// Sync is the journal fsync policy during the flood.
	Sync diskcache.SyncPolicy
	// OutFile, when set, receives the per-window recovery trajectory as TSV
	// (written atomically).
	OutFile string
}

// DefaultCrashConfig returns the benchmark-scale crash schedule: crash at
// half-trace, 2k-request windows, checkpoint every 5k requests.
func DefaultCrashConfig() CrashConfig {
	return CrashConfig{
		Scale:     Small(),
		Shards:    1,
		CrashFrac: 0.5,
		Window:    2_000,
		CkptEvery: 5_000,
		Sync:      diskcache.SyncBatch,
	}
}

// crashArm is one post-crash contender.
type crashArm struct {
	name string
	ctrl *core.Controller
	last cache.Metrics
	traj []float64 // windowed total OHR per window
	hoc  []float64 // windowed HOC OHR per window
}

// CrashRecoveryReport runs the crash-recovery chaos experiment and tabulates
// recovery time, recovered state, and how many requests each arm needs to
// regain the pre-crash hit rate. The recovered arm should be back within
// roughly a warm-up budget; the cold arm must re-earn the whole cache.
func CrashRecoveryReport(cc CrashConfig) (*Report, error) {
	if cc.Window <= 0 || cc.CrashFrac <= 0 || cc.CrashFrac >= 1 {
		return nil, fmt.Errorf("exp: bad crash config %+v", cc)
	}
	c, err := CachedCorpus(cc.Scale, "ohr")
	if err != nil {
		return nil, err
	}
	tr := c.Test[0]
	dir, err := os.MkdirTemp("", "darwin-crash-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ckptPath := filepath.Join(dir, "darwin.ckpt")

	shards := cc.Shards
	if shards < 1 {
		shards = 1
	}
	store, err := diskcache.Open(diskcache.Config{Dir: dir, Sync: cc.Sync})
	if err != nil {
		return nil, err
	}
	eng, err := cache.NewSharded(cache.Config{
		HOCBytes: cc.Scale.Eval.HOCBytes, DCBytes: cc.Scale.Eval.DCBytes, DCLog: store,
	}, shards)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.NewController(c.Model, eng, cc.Scale.Online)
	if err != nil {
		return nil, err
	}

	// Phase 1: flood until the crash point, checkpointing on cadence.
	crashAt := int(float64(tr.Len()) * cc.CrashFrac)
	saveCkpt := func() error {
		es, err := eng.State()
		if err != nil {
			return err
		}
		return core.SaveCheckpoint(ckptPath, &core.Checkpoint{Engine: es, Controller: ctrl.CheckpointState()})
	}
	var preWindow cache.Metrics
	for i := 0; i < crashAt; i++ {
		ctrl.Serve(tr.Requests[i])
		if cc.CkptEvery > 0 && (i+1)%cc.CkptEvery == 0 {
			if err := saveCkpt(); err != nil {
				return nil, err
			}
		}
		if i == crashAt-cc.Window-1 {
			preWindow = eng.Metrics()
		}
	}
	pre := eng.Metrics().Sub(preWindow)
	preOHR, preTotal := pre.OHR(), pre.TotalOHR()
	lostSinceCkpt := crashAt
	if cc.CkptEvery > 0 {
		lostSinceCkpt = crashAt % cc.CkptEvery
	}

	// The crash: the store is abandoned — no Close, no final checkpoint, no
	// pending-batch flush. Only what an fsync already made durable survives.
	store = nil
	eng = nil
	ctrl = nil

	// Phase 2a: recovery — reopen the journal, load the checkpoint, rebuild.
	//lint:ignore determinism recovery wall time is a reported measurement, not replay state
	recoverStart := time.Now()
	store2, err := diskcache.Open(diskcache.Config{Dir: dir, Sync: cc.Sync})
	if err != nil {
		return nil, err
	}
	defer store2.Close()
	ck, err := core.LoadCheckpoint(ckptPath)
	if err != nil {
		return nil, err
	}
	eng2, err := cache.NewSharded(cache.Config{
		HOCBytes: cc.Scale.Eval.HOCBytes, DCBytes: cc.Scale.Eval.DCBytes, DCLog: store2,
	}, shards)
	if err != nil {
		return nil, err
	}
	ctrl2, err := core.NewController(c.Model, eng2, cc.Scale.Online)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		if err := eng2.RestoreState(ck.Engine); err != nil {
			return nil, fmt.Errorf("exp: engine restore: %w", err)
		}
		if err := ctrl2.RestoreState(ck.Controller); err != nil {
			return nil, fmt.Errorf("exp: controller restore: %w", err)
		}
	}
	live := store2.Live()
	if err := eng2.RestoreDC(live); err != nil {
		return nil, fmt.Errorf("exp: DC reconcile: %w", err)
	}
	//lint:ignore determinism recovery wall time is a reported measurement, not replay state
	recoveryTime := time.Since(recoverStart)

	// Phase 2b: cold control — same model, nothing restored.
	eng3, err := cache.NewSharded(cache.Config{
		HOCBytes: cc.Scale.Eval.HOCBytes, DCBytes: cc.Scale.Eval.DCBytes,
	}, shards)
	if err != nil {
		return nil, err
	}
	ctrl3, err := core.NewController(c.Model, eng3, cc.Scale.Online)
	if err != nil {
		return nil, err
	}

	arms := []*crashArm{
		{name: "recovered", ctrl: ctrl2, last: eng2.Metrics()},
		{name: "cold-start", ctrl: ctrl3},
	}
	for i := crashAt; i < tr.Len(); i++ {
		for _, a := range arms {
			a.ctrl.Serve(tr.Requests[i])
		}
		if (i-crashAt+1)%cc.Window == 0 {
			for _, a := range arms {
				m := a.ctrl.Metrics()
				d := m.Sub(a.last)
				a.last = m
				a.traj = append(a.traj, d.TotalOHR())
				a.hoc = append(a.hoc, d.OHR())
			}
		}
	}

	rep := &Report{
		Title: fmt.Sprintf("Crash recovery: SIGKILL mid-flood at request %d (crash loses %d journal-covered requests since last checkpoint)", crashAt, lostSinceCkpt),
		Header: []string{"arm", "recovery-ms", "dc-objs-recovered", "reqs-to-95%-ohr",
			"reqs-to-95%-tohr", "first-window-tohr", "final-window-tohr"},
	}
	st := store2.Stats()
	for _, a := range arms {
		recMS, objs := "-", "-"
		if a.name == "recovered" {
			recMS = fmt.Sprintf("%.1f", float64(recoveryTime.Microseconds())/1000)
			objs = fmt.Sprint(len(live))
		}
		first, final := 0.0, 0.0
		if len(a.traj) > 0 {
			first, final = a.traj[0], a.traj[len(a.traj)-1]
		}
		rep.AddRow(a.name, recMS, objs,
			windowsToRecover(a.hoc, preOHR, cc.Window),
			windowsToRecover(a.traj, preTotal, cc.Window),
			f4(first), f4(final))
	}
	rep.AddNote("pre-crash windowed OHR %.4f, total OHR %.4f (window=%d requests, warmup budget=%d)",
		preOHR, preTotal, cc.Window, cc.Scale.Online.Warmup)
	rep.AddNote("journal recovery: %d puts / %d deletes replayed, %d B truncated as torn; fsync policy %s",
		st.RecoveredPuts, st.RecoveredDeletes, st.TruncatedBytes, cc.Sync)
	if cc.OutFile != "" {
		if err := writeTrajectory(cc.OutFile, cc.Window, crashAt, arms); err != nil {
			return nil, err
		}
		rep.AddNote("trajectory written to %s", cc.OutFile)
	}
	return rep, nil
}

// windowsToRecover returns the request count until the trajectory first
// reaches 95% of the pre-crash level, or "never" if it does not.
func windowsToRecover(traj []float64, pre float64, window int) string {
	if pre <= 0 {
		return "0"
	}
	for w, v := range traj {
		if v >= 0.95*pre {
			return fmt.Sprint((w + 1) * window)
		}
	}
	return "never"
}

// writeTrajectory emits the per-window recovery trajectories as TSV via an
// atomic temp-then-rename write, so a crash mid-report never leaves a torn
// figure input behind.
func writeTrajectory(path string, window, crashAt int, arms []*crashArm) error {
	buf := []byte("request")
	for _, a := range arms {
		buf = append(buf, '\t')
		buf = append(buf, a.name...)
		buf = append(buf, "_tohr"...)
	}
	buf = append(buf, '\n')
	n := 0
	for _, a := range arms {
		if len(a.traj) > n {
			n = len(a.traj)
		}
	}
	for w := 0; w < n; w++ {
		buf = append(buf, fmt.Sprintf("%d", crashAt+(w+1)*window)...)
		for _, a := range arms {
			buf = append(buf, '\t')
			if w < len(a.traj) {
				buf = append(buf, fmt.Sprintf("%.4f", a.traj[w])...)
			} else {
				buf = append(buf, '-')
			}
		}
		buf = append(buf, '\n')
	}
	return persist.WriteFileAtomic(path, buf, 0o644)
}
