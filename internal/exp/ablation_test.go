package exp

import (
	"strings"
	"testing"

	"darwin/internal/cache"
)

// cacheGrid3 returns a small three-knob expert grid for the extension test.
func cacheGrid3() []cache.Expert {
	return cache.Grid3([]int{1, 3}, []int64{10 << 10, 200 << 10}, []int64{2000, 20000})
}

func TestFig6ObjectiveBMR(t *testing.T) {
	rep, err := Fig6Objective(tiny(), "bmr", "fig6a test")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(tiny().Experts) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if !strings.Contains(rep.Notes[0], "bmr") {
		t.Fatalf("note = %v", rep.Notes)
	}
}

func TestFig6ObjectiveCombined(t *testing.T) {
	rep, err := Fig6Objective(tiny(), "combined", "fig6b test")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFig6ObjectiveUnknown(t *testing.T) {
	if _, err := Fig6Objective(tiny(), "latency", "x"); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

func TestAblationStoppingRuns(t *testing.T) {
	rep, err := AblationStopping(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestAblationRoundLength(t *testing.T) {
	sc := tiny()
	rep, err := AblationRoundLength(sc, []int{200, 400, 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// The absurd round length must be skipped (doesn't fit the epoch).
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (oversized N_round skipped)", len(rep.Rows))
	}
}

func TestAblationPredictorFeatures(t *testing.T) {
	c := tinyCorpus(t)
	rep, err := AblationPredictorFeatures(tiny(), c.Dataset.Records)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// nil test records default to the training records.
	rep2, err := AblationPredictorFeatures(tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Rows) != 2 {
		t.Fatal("nil records variant failed")
	}
}

func TestFig11ThreeKnob(t *testing.T) {
	sc := tiny()
	sc.TrainSeeds = 1 // keep the 3-knob dataset build fast
	rep, err := Fig11ThreeKnob(sc, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestScaledCorpus(t *testing.T) {
	c, err := ScaledCorpus(tiny(), 2)
	if err != nil {
		t.Fatal(err)
	}
	base := tinyCorpus(t)
	if c.Scale.Eval.HOCBytes != 2*base.Scale.Eval.HOCBytes {
		t.Fatal("cache not scaled")
	}
	if len(c.Test) != len(base.Test) {
		t.Fatal("test set size changed")
	}
	// Object sizes roughly doubled.
	s0 := base.Test[0].Summarize()
	s1 := c.Test[0].Summarize()
	ratio := s1.MeanSize / s0.MeanSize
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("mean size ratio %.2f, want ~2 (±20%% perturbation)", ratio)
	}
}

func TestHindsightTrace(t *testing.T) {
	sc := tiny()
	tr, err := SyntheticMix(50, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := HindsightTrace(tr, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(sc.Experts) {
		t.Fatalf("metrics = %d", len(ms))
	}
}

func TestFig4aIncludesBeladyNote(t *testing.T) {
	c := tinyCorpus(t)
	rep, _, _, err := Fig4Compare(c, "belady note test")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "Belady") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Belady note: %v", rep.Notes)
	}
}

// TestThreeKnobEndToEnd exercises the paper's claim that Darwin "can be
// trivially extended to include other knobs" (§4): the full offline+online
// pipeline runs unchanged over three-knob (f, s, recency) experts.
func TestThreeKnobEndToEnd(t *testing.T) {
	sc := tiny()
	sc.Experts = cacheGrid3()
	c, err := CachedCorpus(sc, "ohr")
	if err != nil {
		t.Fatal(err)
	}
	m, diags, err := RunDarwin(c, c.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || len(diags) == 0 {
		t.Fatal("three-knob pipeline produced nothing")
	}
	chosen := diags[len(diags)-1].Chosen
	found := false
	for _, e := range sc.Experts {
		if e == chosen {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen expert %v not from the three-knob grid", chosen)
	}
}
