package exp

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/server"
	"darwin/internal/trace"
)

// PrototypeConfig sizes the HTTP testbed experiments. The injected latencies
// preserve the paper's ordering (client↔proxy ≪ disk ≪ proxy↔origin) at a
// scale that keeps benchmark runs short.
type PrototypeConfig struct {
	// OriginLatency is the injected proxy→origin delay (paper: 100 ms).
	OriginLatency time.Duration
	// DCLatency is the injected disk-read delay.
	DCLatency time.Duration
	// ClientLatency is the injected client→proxy delay (paper: 10 ms).
	ClientLatency time.Duration
	// Concurrency is the client worker count for latency runs.
	Concurrency int
	// ConcurrencySweep lists the worker counts for the throughput experiment.
	ConcurrencySweep []int
	// TraceLen is the request count per prototype run.
	TraceLen int
	// Shards is the cache-engine shard count for every proxy decider in the
	// run (<= 0 selects 1, the serial/global-lock arrangement).
	Shards int
}

// shards returns the effective shard count.
func (pc PrototypeConfig) shards() int {
	if pc.Shards <= 0 {
		return 1
	}
	return pc.Shards
}

// DefaultPrototypeConfig returns benchmark-friendly latencies (2 ms origin,
// 500 µs disk, no client delay).
func DefaultPrototypeConfig() PrototypeConfig {
	return PrototypeConfig{
		OriginLatency:    2 * time.Millisecond,
		DCLatency:        500 * time.Microsecond,
		ClientLatency:    0,
		Concurrency:      8,
		ConcurrencySweep: []int{1, 4, 16, 64},
		TraceLen:         8000,
	}
}

// PrototypeScale shrinks a scale's online knobs so Darwin's full
// warm-up → identify → exploit cycle fits the short traces HTTP prototype
// runs can afford: one epoch per 2000 requests with a 600-request warm-up.
// The returned scale trains its own (cached) corpus whose FeatureWindow
// matches the shrunken warm-up.
func PrototypeScale(sc Scale) Scale {
	sc.Online.Epoch = 2000
	sc.Online.Warmup = 600
	sc.Online.Round = 300
	sc.Online.StabilityRounds = 3
	return sc
}

// startProxy spins up an origin+proxy pair around the given decider and
// returns the proxy URL and a shutdown func.
func startProxy(dec server.Decider, pc PrototypeConfig) (string, func()) {
	origin := &server.Origin{Latency: pc.OriginLatency}
	originSrv := httptest.NewServer(origin)
	proxy := server.NewProxy(dec, originSrv.URL, pc.DCLatency)
	proxySrv := httptest.NewServer(proxy)
	return proxySrv.URL, func() {
		proxySrv.Close()
		originSrv.Close()
	}
}

// darwinDecider builds a Darwin controller decider for the prototype over a
// sharded cache engine (shards=1 reproduces the serial hierarchy exactly).
func darwinDecider(c *Corpus, shards int) (server.Decider, error) {
	eng, err := cache.NewSharded(cache.Config{
		HOCBytes: c.Scale.Eval.HOCBytes,
		DCBytes:  c.Scale.Eval.DCBytes,
	}, shards)
	if err != nil {
		return nil, err
	}
	// The prototype trace is short; shrink the online knobs to fit.
	oc := c.Scale.Online
	return core.NewController(c.Model, eng, oc)
}

// Fig4cPrototypeOHR reproduces Figure 4c: Darwin vs a subset of static
// experts on the HTTP prototype at low concurrency.
func Fig4cPrototypeOHR(c *Corpus, pc PrototypeConfig, tr *trace.Trace) (*Report, error) {
	rep := &Report{
		Title:  fmt.Sprintf("Figure 4c: prototype OHR (low concurrency, shards=%d)", pc.shards()),
		Header: []string{"scheme", "OHR", "requests", "errors"},
	}
	runOne := func(name string, dec server.Decider) error {
		url, stop := startProxy(dec, pc)
		defer stop()
		res, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
			ProxyURL:    url,
			Concurrency: pc.Concurrency,
		})
		if err != nil {
			return err
		}
		ohr := 0.0
		if res.Requests > 0 {
			ohr = float64(res.HOCHits) / float64(res.Requests)
		}
		rep.AddRow(name, f4(ohr), fmt.Sprint(res.Requests), fmt.Sprint(res.Errors))
		return nil
	}

	dd, err := darwinDecider(c, pc.shards())
	if err != nil {
		return nil, err
	}
	if err := runOne("darwin", dd); err != nil {
		return nil, err
	}
	// A spread of static experts, as in the paper's prototype comparison.
	picks := []int{0, len(c.Scale.Experts) / 2, len(c.Scale.Experts) - 1}
	for _, ei := range picks {
		e := c.Scale.Experts[ei]
		st, err := baselines.NewStaticSharded(e, c.Scale.Eval, pc.shards())
		if err != nil {
			return nil, err
		}
		if err := runOne(e.String(), st); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// Fig7aLatency reproduces Figure 7a: the first-byte latency distribution for
// Darwin vs a static expert over a concatenated trace whose segments have
// different best experts.
func Fig7aLatency(c *Corpus, pc PrototypeConfig, tr *trace.Trace) (*Report, error) {
	rep := &Report{
		Title:  fmt.Sprintf("Figure 7a: first-byte latency (percentiles, ms, shards=%d)", pc.shards()),
		Header: []string{"scheme", "p10", "p50", "p90", "p99"},
	}
	runOne := func(name string, dec server.Decider) error {
		url, stop := startProxy(dec, pc)
		defer stop()
		res, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
			ProxyURL:      url,
			Concurrency:   pc.Concurrency,
			ClientLatency: pc.ClientLatency,
		})
		if err != nil {
			return err
		}
		ms := func(p float64) string {
			return fmt.Sprintf("%.2f", float64(res.LatencyPercentile(p).Microseconds())/1000)
		}
		rep.AddRow(name, ms(10), ms(50), ms(90), ms(99))
		return nil
	}
	dd, err := darwinDecider(c, pc.shards())
	if err != nil {
		return nil, err
	}
	if err := runOne("darwin", dd); err != nil {
		return nil, err
	}
	mid := c.Scale.Experts[len(c.Scale.Experts)/2]
	st, err := baselines.NewStaticSharded(mid, c.Scale.Eval, pc.shards())
	if err != nil {
		return nil, err
	}
	if err := runOne(mid.String(), st); err != nil {
		return nil, err
	}
	rep.AddNote("paper: Darwin lowers first-byte latency by avoiding origin round trips (higher OHR)")
	return rep, nil
}

// Fig7bThroughput reproduces Figure 7b: application throughput vs
// concurrency for Darwin and a static expert.
func Fig7bThroughput(c *Corpus, pc PrototypeConfig, tr *trace.Trace) (*Report, error) {
	rep := &Report{
		Title:  fmt.Sprintf("Figure 7b: throughput vs concurrency (Mbps, shards=%d)", pc.shards()),
		Header: []string{"concurrency", "darwin", "static"},
	}
	static := c.Scale.Experts[len(c.Scale.Experts)/2]
	for _, conc := range pc.ConcurrencySweep {
		run := func(dec server.Decider) (float64, error) {
			url, stop := startProxy(dec, pc)
			defer stop()
			res, err := server.RunLoad(context.Background(), tr, server.LoadConfig{ProxyURL: url, Concurrency: conc})
			if err != nil {
				return 0, err
			}
			return res.ThroughputBps() / 1e6, nil
		}
		dd, err := darwinDecider(c, pc.shards())
		if err != nil {
			return nil, err
		}
		dv, err := run(dd)
		if err != nil {
			return nil, err
		}
		st, err := baselines.NewStaticSharded(static, c.Scale.Eval, pc.shards())
		if err != nil {
			return nil, err
		}
		sv, err := run(st)
		if err != nil {
			return nil, err
		}
		rep.AddRow(intStr(conc), f2(dv), f2(sv))
	}
	rep.AddNote("paper: Darwin reaches 10.4 Gbps at 200 threads vs 9.3 Gbps static; shapes, not absolutes, carry over")
	return rep, nil
}

// PrototypeTrace builds the concatenated multi-segment trace of §6.4 (four
// segments with different best experts) at the prototype's length.
func PrototypeTrace(c *Corpus, totalLen int) (*trace.Trace, error) {
	segLen := totalLen / 4
	var segs []*trace.Trace
	for i, pct := range []int{100, 0, 75, 25} {
		tr, err := segmentTrace(c, pct, segLen, c.Scale.Seed+int64(900+i))
		if err != nil {
			return nil, err
		}
		segs = append(segs, tr)
	}
	return trace.Concat("prototype-concat", segs...), nil
}

func segmentTrace(c *Corpus, pct, n int, seed int64) (*trace.Trace, error) {
	return tracegenMix(pct, n, seed)
}
