package exp

import (
	"strings"
	"testing"
	"time"
)

func fastPrototype() PrototypeConfig {
	return PrototypeConfig{
		OriginLatency:    500 * time.Microsecond,
		DCLatency:        100 * time.Microsecond,
		Concurrency:      4,
		ConcurrencySweep: []int{1, 8},
		TraceLen:         1200,
	}
}

func TestPrototypeTraceConcatenation(t *testing.T) {
	c := tinyCorpus(t)
	tr, err := PrototypeTrace(c, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Requests[i].Time < tr.Requests[i-1].Time {
			t.Fatal("timestamps not monotone across segments")
		}
	}
}

func TestFig4cPrototype(t *testing.T) {
	c := tinyCorpus(t)
	pc := fastPrototype()
	tr, err := PrototypeTrace(c, pc.TraceLen)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fig4cPrototypeOHR(c, pc, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // darwin + three static picks
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0][0] != "darwin" {
		t.Fatalf("first row = %v", rep.Rows[0])
	}
	for _, row := range rep.Rows {
		if row[3] != "0" {
			t.Fatalf("errors in prototype run: %v", row)
		}
	}
}

func TestFig7aLatency(t *testing.T) {
	c := tinyCorpus(t)
	pc := fastPrototype()
	tr, err := PrototypeTrace(c, pc.TraceLen)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fig7aLatency(c, pc, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if !strings.Contains(rep.Title, "latency") {
		t.Fatal("title wrong")
	}
}

func TestFig7bThroughput(t *testing.T) {
	c := tinyCorpus(t)
	pc := fastPrototype()
	tr, err := PrototypeTrace(c, pc.TraceLen)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fig7bThroughput(c, pc, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(pc.ConcurrencySweep) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestOverheadReport(t *testing.T) {
	c := tinyCorpus(t)
	rep, err := OverheadReport(c, c.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 8 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestAblationSideInfoRuns(t *testing.T) {
	rep, err := AblationSideInfo(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}
