package exp

import (
	"strconv"
	"testing"
	"time"

	"darwin/internal/faults"
	"darwin/internal/server"
)

// fastOverload returns a timing-robust overload config for CI: rate-based
// faults only (no wall-clock outage window), a short stall that still blows
// the client deadline, small trace, tiny latencies, and burst pacing tight
// enough that the run stays fast.
func fastOverload() OverloadConfig {
	oc := DefaultOverloadConfig()
	oc.Prototype.OriginLatency = 200 * time.Microsecond
	oc.Prototype.DCLatency = 50 * time.Microsecond
	oc.Prototype.Concurrency = 8
	oc.Prototype.TraceLen = 800
	oc.Faults = faults.Config{
		Seed:      42,
		ErrorRate: 0.10,
		StallRate: 0.15,
		Stall:     150 * time.Millisecond,
	}
	oc.Deadline = 50 * time.Millisecond
	// The 50 ms deadline sits below the production 50 ms MinFetchBudget
	// floor; without a smaller floor every cold miss is born doomed and the
	// cache never warms.
	oc.Overload.MinFetchBudget = 5 * time.Millisecond
	oc.Burst = server.Burst{Seed: 11, Gap: 200 * time.Microsecond, Every: 200, Len: 50}
	oc.Resilience = server.DefaultResilience()
	oc.Resilience.BackoffBase = 1 * time.Millisecond
	oc.Resilience.BackoffMax = 5 * time.Millisecond
	return oc
}

func TestOverloadProtectedBeatsRetryOnly(t *testing.T) {
	rep, err := OverloadReport(fastOverload())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	control, protected := rep.Rows[0], rep.Rows[1]
	if control[0] != "retry-only" || protected[0] != "protected" {
		t.Fatalf("arm order: %v / %v", control[0], protected[0])
	}
	parse := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, col, err)
		}
		return v
	}
	const goodputCol, p99Col = 3, 7
	cg, pg := parse(control, goodputCol), parse(protected, goodputCol)
	cp99, pp99 := parse(control, p99Col), parse(protected, p99Col)
	// The headline claim: under flash crowd + brownout, the protected arm
	// keeps strictly higher goodput and strictly lower tail latency — the
	// retry-only proxy waits out every 150 ms stall past the 50 ms deadline
	// while the protected arm hedges or sheds it.
	if pg <= cg {
		t.Errorf("protected goodput %.4f <= retry-only %.4f", pg, cg)
	}
	if pp99 >= cp99 {
		t.Errorf("protected p99 %.2fms >= retry-only %.2fms", pp99, cp99)
	}
}

func TestOverloadHedgesEngage(t *testing.T) {
	rep, err := OverloadReport(fastOverload())
	if err != nil {
		t.Fatal(err)
	}
	const hedgesCol = 10
	protected := rep.Rows[1]
	n, err := strconv.Atoi(protected[hedgesCol])
	if err != nil {
		t.Fatal(err)
	}
	// 15% stalls at 150 ms against a 25 ms hedge delay: the protected arm
	// must launch backup fetches; zero means hedging never engaged.
	if n == 0 {
		t.Error("no hedged fetches recorded in the protected arm")
	}
}
