package exp

import (
	"reflect"
	"testing"

	"darwin/internal/par"
)

// withParallelism runs f with the engine's default width pinned to p,
// restoring the previous default afterwards.
func withParallelism(p int, f func()) {
	prev := par.SetDefault(p)
	defer par.SetDefault(prev)
	f()
}

// TestFig2SuiteSerialParallelIdentical is the golden equivalence check for
// the Figure 2 driver: the rendered panels must match byte for byte whether
// the sweep runs inline or fans out over the worker pool.
func TestFig2SuiteSerialParallelIdentical(t *testing.T) {
	sc := Small()
	sc.OnlineTraceLen = 10_000 // keep the golden run fast; shape is unchanged

	render := func(p int) string {
		var out string
		withParallelism(p, func() {
			reps, err := Fig2Suite(sc)
			if err != nil {
				t.Fatalf("parallelism %d: %v", p, err)
			}
			for _, r := range reps {
				out += r.String() + "\n"
			}
		})
		return out
	}

	serial := render(1)
	for _, p := range []int{2, 8} {
		if got := render(p); got != serial {
			t.Fatalf("parallelism %d: Fig2Suite output diverges from serial:\n got:\n%s\nwant:\n%s", p, got, serial)
		}
	}
}

// TestFig4CompareSerialParallelIdentical verifies the heaviest driver — the
// Darwin-vs-baselines ensemble comparison — produces identical results and
// epoch diagnostics on the serial and parallel paths. The hindsight memo is
// reset between runs so both actually evaluate the full grids.
func TestFig4CompareSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full ensemble comparison in -short mode")
	}
	c, err := CachedCorpus(Small(), "ohr")
	if err != nil {
		t.Fatal(err)
	}

	run := func(p int) *compareOut {
		var out *compareOut
		withParallelism(p, func() {
			resetHindsightCache()
			var err error
			out, err = compareFresh(c)
			if err != nil {
				t.Fatalf("parallelism %d: %v", p, err)
			}
		})
		return out
	}

	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial.results, parallel.results) {
		t.Fatalf("comparison results diverge:\n got %+v\nwant %+v", parallel.results, serial.results)
	}
	if !reflect.DeepEqual(serial.diags, parallel.diags) {
		t.Fatalf("epoch diagnostics diverge:\n got %+v\nwant %+v", parallel.diags, serial.diags)
	}
}
