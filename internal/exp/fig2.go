package exp

import (
	"fmt"
	"sort"

	"darwin/internal/cache"
	"darwin/internal/par"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

// GridMetric selects what a Figure-2 style sweep reports.
type GridMetric string

// Figure-2 grid metrics.
const (
	// GridOHR reports the HOC object hit rate (Figures 2a–2d).
	GridOHR GridMetric = "ohr"
	// GridDiskWrite reports DC write bytes per request (Figure 2e).
	GridDiskWrite GridMetric = "diskwrite"
)

// Fig2Grid evaluates every (f, s) expert on one trace and reports the metric
// grid plus the optimum, reproducing the heatmaps of Figure 2.
func Fig2Grid(title string, tr *trace.Trace, experts []cache.Expert, eval cache.EvalConfig, metric GridMetric) (*Report, error) {
	ms, err := cache.EvaluateAll(tr, experts, eval)
	if err != nil {
		return nil, err
	}
	value := func(m cache.Metrics) float64 {
		if metric == GridDiskWrite {
			return m.DiskWritesPerRequest()
		}
		return m.OHR()
	}
	// Collect the distinct threshold axes.
	fset := map[int]bool{}
	sset := map[int64]bool{}
	for _, e := range experts {
		fset[e.Freq] = true
		sset[e.MaxSize] = true
	}
	fs := make([]int, 0, len(fset))
	for f := range fset {
		fs = append(fs, f)
	}
	sort.Ints(fs)
	ss := make([]int64, 0, len(sset))
	for s := range sset {
		ss = append(ss, s)
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })

	byExpert := map[cache.Expert]float64{}
	for i, e := range experts {
		byExpert[e] = value(ms[i])
	}
	rep := &Report{Title: title, Header: []string{"f \\ s"}}
	for _, s := range ss {
		rep.Header = append(rep.Header, cache.Expert{MaxSize: s}.String()[2:])
	}
	bestE, bestV := experts[0], value(ms[0])
	better := func(v float64) bool {
		if metric == GridDiskWrite {
			return v < bestV
		}
		return v > bestV
	}
	for i, e := range experts {
		if v := value(ms[i]); better(v) {
			bestE, bestV = e, v
		}
	}
	for _, f := range fs {
		row := []string{fmt.Sprintf("f=%d", f)}
		for _, s := range ss {
			v, ok := byExpert[cache.Expert{Freq: f, MaxSize: s}]
			if !ok {
				row = append(row, "-")
				continue
			}
			if metric == GridDiskWrite {
				row = append(row, f2(v))
			} else {
				row = append(row, f4(v))
			}
		}
		rep.AddRow(row...)
	}
	if metric == GridDiskWrite {
		rep.AddNote("optimum: %s with %.2f write bytes/request (lower is better)", bestE, bestV)
	} else {
		rep.AddNote("optimum: %s with OHR %.4f", bestE, bestV)
	}
	return rep, nil
}

// Fig2Suite reproduces all five panels of Figure 2: two "production windows"
// (different media mixes), the Image class, and the Download class under OHR
// and disk-write metrics. It returns the reports in paper order and the best
// expert per panel so callers can check the "no one-size-fits-all" claim.
func Fig2Suite(sc Scale) ([]*Report, error) {
	mk := func(pct int, seed int64) (*trace.Trace, error) {
		return tracegen.ImageDownloadMix(pct, sc.OnlineTraceLen, seed)
	}
	type panel struct {
		title  string
		pct    int
		seed   int64
		metric GridMetric
	}
	panels := []panel{
		{"Figure 2a: production window 1 OHR (mix 60:40)", 60, sc.Seed + 11, GridOHR},
		{"Figure 2b: production window 2 OHR (mix 30:70)", 30, sc.Seed + 12, GridOHR},
		{"Figure 2c: Image class OHR", 100, sc.Seed + 13, GridOHR},
		{"Figure 2d: Download class OHR", 0, sc.Seed + 14, GridOHR},
		{"Figure 2e: Download class disk writes", 0, sc.Seed + 14, GridDiskWrite},
	}
	// Panels are independent (trace generation + grid evaluation), so they
	// fan out over the engine; out[i] keeps paper order deterministic.
	out, err := par.Map(panels, 0, func(i int, p panel) (*Report, error) {
		tr, err := mk(p.pct, p.seed)
		if err != nil {
			return nil, fmt.Errorf("panel %s: %w", p.title, err)
		}
		rep, err := Fig2Grid(p.title, tr, sc.Experts, sc.Eval, p.metric)
		if err != nil {
			return nil, fmt.Errorf("panel %s: %w", p.title, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
