package exp

// Cluster chaos: the distributed-edge experiment. A seeded trace floods a
// simulated N-node edge cluster — each node a full HOC+DC hierarchy — routed
// by the same consistent-hash ring with bounded loads, readiness
// re-weighting, and adaptive replication that server.Front runs live, with
// the peer-fill path modeled as a sibling residency probe before the origin
// hop. Mid-flood one node drains (SIGTERM: stops accepting, drops out of
// peer fill, sheds its ring weight at the next window boundary) and the
// report tracks per-window, per-node OHR through the dip and recovery:
// replication has pre-warmed the hot set on ring successors and peer fill
// re-warms the survivors from each other, so cluster OHR climbs back toward
// its pre-drain level without the drained node ever returning.
//
// Unlike the prototype/chaos/overload experiments this one runs no HTTP and
// reads no clock: routing, caching, and the latency model are all
// deterministic functions of the seeded trace, so the report is
// byte-reproducible run to run (the determinism lint rule holds with no
// carve-outs here).

import (
	"fmt"
	"time"

	"darwin/internal/cache"
	"darwin/internal/lb"
)

// ClusterConfig sizes the cluster chaos experiment.
type ClusterConfig struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// WindowLen is the rebalance window length in requests: weights, budgets,
	// and replication factors refresh at each boundary.
	WindowLen int
	// VirtualNodes and LoadFactor parameterise the ring.
	VirtualNodes int
	LoadFactor   float64
	// Replication parameterises the popularity tracker.
	Replication lb.ReplicationConfig
	// PeerFanout is how many ring successors a missing node probes before
	// the origin hop (the darwin-proxy -peer-fanout knob).
	PeerFanout int
	// DrainNode drains (stops accepting requests and answering peer probes)
	// at request index DrainAt — mid-window, so the tail of that window shows
	// in-request failover before the boundary strips the node's weight.
	DrainNode int
	DrainAt   int
	// Expert and Eval fix each node's admission expert and level capacities.
	Expert cache.Expert
	Eval   cache.EvalConfig
	// Mix, TraceLen, and Seed generate the replayed trace.
	Mix      int
	TraceLen int
	Seed     int64
	// Modeled service latencies: a local cache hit, a peer fill (one extra
	// intra-cluster hop), and an origin fetch (the WAN hop). Goodput counts
	// requests served within Deadline.
	HitLatency    time.Duration
	PeerLatency   time.Duration
	OriginLatency time.Duration
	Deadline      time.Duration
}

// DefaultClusterConfig returns the benchmark-scale cluster schedule: 3 nodes,
// 12 windows of 2000 requests, node 0 draining mid-window 5, and a latency
// model where only origin fetches blow the client deadline.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Nodes:         3,
		WindowLen:     2000,
		VirtualNodes:  64,
		LoadFactor:    0.25,
		Replication:   lb.ReplicationConfig{TopK: 16, MaxFactor: 3, HotShare: 0.02},
		PeerFanout:    2,
		DrainNode:     0,
		DrainAt:       11_000,
		Expert:        cache.Expert{Freq: 1, MaxSize: 1 << 20},
		Eval:          cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20},
		Mix:           50,
		TraceLen:      24_000,
		Seed:          7,
		HitLatency:    1 * time.Millisecond,
		PeerLatency:   2 * time.Millisecond,
		OriginLatency: 10 * time.Millisecond,
		Deadline:      5 * time.Millisecond,
	}
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	d := DefaultClusterConfig()
	if c.Nodes <= 1 {
		c.Nodes = d.Nodes
	}
	if c.WindowLen <= 0 {
		c.WindowLen = d.WindowLen
	}
	if c.PeerFanout <= 0 {
		c.PeerFanout = d.PeerFanout
	}
	if c.TraceLen <= 0 {
		c.TraceLen = d.TraceLen
	}
	if c.Eval.HOCBytes <= 0 {
		c.Eval = d.Eval
	}
	if c.Expert == (cache.Expert{}) {
		c.Expert = d.Expert
	}
	if c.HitLatency <= 0 {
		c.HitLatency, c.PeerLatency, c.OriginLatency, c.Deadline =
			d.HitLatency, d.PeerLatency, d.OriginLatency, d.Deadline
	}
	return c
}

// clusterWindow accumulates one rebalance window's cluster outcome.
type clusterWindow struct {
	reqs      int
	local     int // served from the routed node's HOC or DC
	peerFills int // origin-bound misses filled from a ring sibling
	origin    int // true origin fetches
	failovers int // requests re-routed off the draining node mid-window
	onTime    int // modeled latency within the client deadline

	nodeReqs []int // per routed node
	nodeHits []int

	hotObjects int // replication stats at the window's close
	maxFactor  int
}

func (w clusterWindow) ohr() float64 {
	if w.reqs == 0 {
		return 0
	}
	return float64(w.local+w.peerFills) / float64(w.reqs)
}

func (w clusterWindow) goodput() float64 {
	if w.reqs == 0 {
		return 0
	}
	return float64(w.onTime) / float64(w.reqs)
}

// ClusterResult is the full windowed trajectory plus the recovery headline.
type ClusterResult struct {
	Windows []clusterWindow
	// PreDrainOHR is the cluster OHR of the last full window before the
	// drain; FinalOHR is the last window's. Recovery is their ratio — the
	// acceptance bar is >= 0.9.
	PreDrainOHR float64
	FinalOHR    float64
	DrainWindow int
}

// Recovery returns FinalOHR / PreDrainOHR (0 when the pre-drain OHR is 0).
func (r *ClusterResult) Recovery() float64 {
	if r.PreDrainOHR == 0 {
		return 0
	}
	return r.FinalOHR / r.PreDrainOHR
}

// RunCluster replays the seeded trace through the simulated cluster and
// returns the windowed trajectory.
func RunCluster(cc ClusterConfig) (*ClusterResult, error) {
	cc = cc.withDefaults()
	if cc.DrainNode < 0 || cc.DrainNode >= cc.Nodes {
		return nil, fmt.Errorf("exp: drain node %d out of range [0,%d)", cc.DrainNode, cc.Nodes)
	}
	tr, err := tracegenMix(cc.Mix, cc.TraceLen, cc.Seed)
	if err != nil {
		return nil, err
	}

	nodes := make([]*cache.Hierarchy, cc.Nodes)
	for i := range nodes {
		nodes[i], err = cache.New(cache.Config{
			HOCBytes: cc.Eval.HOCBytes,
			DCBytes:  cc.Eval.DCBytes,
			Expert:   cc.Expert,
		})
		if err != nil {
			return nil, err
		}
	}

	// ready mirrors the front tier's /readyz view; the ring's readiness hook
	// reads it at each window boundary, so a mid-window drain keeps its stale
	// weight until the boundary and relies on failover in between — exactly
	// the live system's exposure window.
	ready := make([]bool, cc.Nodes)
	for i := range ready {
		ready[i] = true
	}
	ring, err := lb.NewRing(lb.Config{
		Servers:        cc.Nodes,
		VirtualNodes:   cc.VirtualNodes,
		LoadFactor:     cc.LoadFactor,
		RebalanceEvery: cc.WindowLen,
		Readiness: func(window, s int) float64 {
			if !ready[s] {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		return nil, err
	}
	rep := lb.NewReplicator(cc.Replication)

	width := cc.PeerFanout + 1
	if width > cc.Nodes {
		width = cc.Nodes
	}
	if width > lb.MaxReplicas {
		width = lb.MaxReplicas
	}
	var succ [lb.MaxReplicas]int
	var repStats [lb.RsWidth]int64

	res := &ClusterResult{DrainWindow: cc.DrainAt / cc.WindowLen}
	reqs := tr.Requests
	for start, window := 0, 0; start < len(reqs); start, window = start+cc.WindowLen, window+1 {
		end := start + cc.WindowLen
		if end > len(reqs) {
			end = len(reqs)
		}
		// Eager cadence, like lb.Split: exact window lengths so the final
		// partial window's budgets match its actual traffic.
		ring.BeginWindow(window, end-start)

		cw := clusterWindow{
			nodeReqs: make([]int, cc.Nodes),
			nodeHits: make([]int, cc.Nodes),
		}
		for i := start; i < end; i++ {
			if i == cc.DrainAt {
				ready[cc.DrainNode] = false
			}
			req := reqs[i]
			cw.reqs++

			s := ring.RouteReplicated(req.ID, rep.Factor(req.ID))
			rep.Observe(req.ID)
			if !ready[s] {
				// In-request failover: the first ready ring successor takes
				// it (the front tier's transport-error path).
				cw.failovers++
				k := ring.Successors(req.ID, succ[:width])
				s = -1
				for j := 0; j < k; j++ {
					if ready[succ[j]] {
						s = succ[j]
						break
					}
				}
				if s < 0 {
					for n := range nodes {
						if ready[n] {
							s = n
							break
						}
					}
				}
				if s < 0 {
					return nil, fmt.Errorf("exp: no ready node at request %d", i)
				}
			}

			cw.nodeReqs[s]++
			lat := cc.OriginLatency
			if r := nodes[s].Serve(req); r != cache.Miss {
				cw.local++
				cw.nodeHits[s]++
				lat = cc.HitLatency
			} else {
				// Origin-bound: probe ready ring siblings for residency
				// before the WAN hop (the proxy's peer-fill seam). The
				// primary's Serve above has already journaled the miss, so a
				// fill admits on the primary exactly like the live path.
				k := ring.Successors(req.ID, succ[:width])
				for j := 0; j < k; j++ {
					p := succ[j]
					if p == s || !ready[p] {
						continue
					}
					if nodes[p].Lookup(req.ID) != cache.Miss {
						nodes[p].Serve(req) // the sibling serves the bytes: recency touch
						cw.peerFills++
						lat = cc.PeerLatency
						break
					}
				}
				if lat == cc.OriginLatency {
					cw.origin++
				}
			}
			if lat <= cc.Deadline {
				cw.onTime++
			}
		}

		rep.Rebalance()
		rep.Stats(repStats[:])
		cw.hotObjects = int(repStats[lb.RsHotObjects])
		cw.maxFactor = int(repStats[lb.RsMaxFactor])
		res.Windows = append(res.Windows, cw)
	}

	if res.DrainWindow > 0 && res.DrainWindow <= len(res.Windows) {
		res.PreDrainOHR = res.Windows[res.DrainWindow-1].ohr()
	}
	if n := len(res.Windows); n > 0 {
		res.FinalOHR = res.Windows[n-1].ohr()
	}
	return res, nil
}

// ClusterReport runs the cluster chaos schedule and tabulates the per-window
// trajectory: per-node OHR, cluster OHR, goodput, peer fills, origin fetches,
// failovers, and the replication surface.
func ClusterReport(cc ClusterConfig) (*Report, error) {
	cc = cc.withDefaults()
	cr, err := RunCluster(cc)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: fmt.Sprintf("Cluster chaos: %d-node edge, node %d drains at request %d (window %d)",
			cc.Nodes, cc.DrainNode, cc.DrainAt, cr.DrainWindow),
	}
	rep.Header = []string{"window"}
	for n := 0; n < cc.Nodes; n++ {
		rep.Header = append(rep.Header, fmt.Sprintf("n%d-ohr", n))
	}
	rep.Header = append(rep.Header, "ohr", "goodput", "peerfill", "origin", "failover", "hot", "maxR")
	for w, cw := range cr.Windows {
		row := []string{fmt.Sprint(w)}
		for n := 0; n < cc.Nodes; n++ {
			if cw.nodeReqs[n] == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f4(float64(cw.nodeHits[n])/float64(cw.nodeReqs[n])))
		}
		row = append(row, f4(cw.ohr()), f4(cw.goodput()),
			fmt.Sprint(cw.peerFills), fmt.Sprint(cw.origin), fmt.Sprint(cw.failovers),
			fmt.Sprint(cw.hotObjects), fmt.Sprint(cw.maxFactor))
		rep.AddRow(row...)
	}
	rep.AddNote("pre-drain OHR %s (window %d), final OHR %s, recovery %.0f%% (bar: 90%%)",
		f4(cr.PreDrainOHR), cr.DrainWindow-1, f4(cr.FinalOHR), 100*cr.Recovery())
	rep.AddNote("drain: node %d stops accepting and leaves peer fill at request %d; its ring weight drops to 0 at the window-%d boundary (failovers cover the gap)",
		cc.DrainNode, cc.DrainAt, cr.DrainWindow+1)
	rep.AddNote("peer fill probes %d ring successors before the origin hop; replication pre-warms the hot set on successors (hot/maxR columns)",
		cc.PeerFanout)
	rep.AddNote("goodput: modeled latencies hit=%v peer=%v origin=%v against a %v deadline — only origin hops are late",
		cc.HitLatency, cc.PeerLatency, cc.OriginLatency, cc.Deadline)
	return rep, nil
}
