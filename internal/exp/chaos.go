package exp

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/faults"
	"darwin/internal/server"
	"darwin/internal/trace"
)

// ChaosConfig sizes the fault-injection experiment: a trace replayed through
// proxy+origin while the origin misbehaves on a deterministic schedule. The
// reproduction's equivalent of a fault-injection table — the paper's §6.4
// testbed never exercises an unhealthy origin, but "survives production
// conditions" is exactly a claim about this regime.
type ChaosConfig struct {
	// Prototype carries the testbed latencies and client concurrency.
	Prototype PrototypeConfig
	// Faults is the origin fault schedule (rates + outage windows).
	Faults faults.Config
	// Resilience is the hardened proxy's configuration; the control row
	// always runs with the zero (legacy) Resilience.
	Resilience server.Resilience
	// Expert and Eval fix the static decider driving both rows, so the two
	// arms differ only in the data plane.
	Expert cache.Expert
	Eval   cache.EvalConfig
	// Mix and Seed generate the replayed trace.
	Mix  int
	Seed int64
}

// DefaultChaosConfig returns the benchmark-scale chaos schedule: 10% hard
// origin errors, 5% latency spikes, 5% mid-stream truncations, and one
// 150 ms hard outage window starting 150 ms into the run.
func DefaultChaosConfig() ChaosConfig {
	pc := DefaultPrototypeConfig()
	pc.OriginLatency = 1 * time.Millisecond
	pc.Concurrency = 16
	pc.TraceLen = 4000
	return ChaosConfig{
		Prototype: pc,
		Faults: faults.Config{
			Seed:         42,
			ErrorRate:    0.10,
			SpikeRate:    0.05,
			Spike:        20 * time.Millisecond,
			TruncateRate: 0.05,
			Outages:      []faults.Window{{Start: 150 * time.Millisecond, End: 300 * time.Millisecond}},
		},
		Resilience: server.DefaultResilience(),
		Expert:     cache.Expert{Freq: 1, MaxSize: 1 << 20},
		Eval:       cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20},
		Mix:        50,
		Seed:       7,
	}
}

// chaosRun replays the trace through a fresh origin+injector+proxy stack and
// returns the client-side result plus the proxy/injector counters.
func chaosRun(cc ChaosConfig, res server.Resilience, tr *trace.Trace) (server.LoadResult, server.ProxyStats, faults.Stats, error) {
	dec, err := baselines.NewStaticSharded(cc.Expert, cc.Eval, cc.Prototype.shards())
	if err != nil {
		return server.LoadResult{}, server.ProxyStats{}, faults.Stats{}, err
	}
	origin := &server.Origin{Latency: cc.Prototype.OriginLatency}
	injector := faults.New(cc.Faults)
	originSrv := httptest.NewServer(injector.Wrap(origin))
	defer originSrv.Close()
	proxy := server.NewResilientProxy(dec, originSrv.URL, cc.Prototype.DCLatency, res)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	// The chaos experiment exercises the real HTTP prototype, not the
	// simulator: outage windows are anchored to the physical clock of the
	// live origin server, which is exactly the wall-clock boundary the
	// determinism rule carves out for internal/server.
	//lint:ignore determinism prototype testbed runs on the physical clock; simulator replays never reach this path
	injector.Restart(time.Now()) // align outage windows with the replay
	lr, err := server.RunLoad(context.Background(), tr, server.LoadConfig{
		ProxyURL:       proxySrv.URL,
		Concurrency:    cc.Prototype.Concurrency,
		ClientLatency:  cc.Prototype.ClientLatency,
		RequestTimeout: 30 * time.Second,
	})
	return lr, proxy.Stats(), injector.Stats(), err
}

// ChaosReport runs the chaos experiment twice under an identical fault
// schedule — once with the legacy happy-path proxy (the pre-hardening
// control) and once with the resilience layer — and tabulates client-visible
// error rate, error classes, degraded serves, OHR, and p99 first-byte
// latency. The hardened row should keep the client error rate well under the
// injected fault rate: retries absorb transient errors, coalescing shrinks
// the origin's blast radius, and serve-stale covers outage windows.
func ChaosReport(cc ChaosConfig) (*Report, error) {
	tr, err := tracegenMix(cc.Mix, cc.Prototype.TraceLen, cc.Seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: fmt.Sprintf("Chaos: proxy under origin faults (resilient vs control, shards=%d)", cc.Prototype.shards()),
		Header: []string{"scheme", "ok", "errors", "errrate", "timeout", "5xx", "trunc",
			"stale", "ohr", "p99ms", "origin-fetches", "retries", "coalesced"},
	}
	arms := []struct {
		name string
		res  server.Resilience
	}{
		{"no-resilience", server.Resilience{}},
		{"resilient", cc.Resilience},
	}
	var injected float64
	for _, arm := range arms {
		lr, ps, fs, err := chaosRun(cc, arm.res, tr)
		if err != nil {
			return nil, err
		}
		ohr := 0.0
		if lr.Requests > 0 {
			ohr = float64(lr.HOCHits) / float64(lr.Requests)
		}
		rep.AddRow(arm.name,
			fmt.Sprint(lr.Requests), fmt.Sprint(lr.Errors), f4(lr.ErrorRate()),
			fmt.Sprint(lr.Timeouts), fmt.Sprint(lr.Status5xx), fmt.Sprint(lr.Truncated),
			fmt.Sprint(lr.StaleServes), f4(ohr),
			fmt.Sprintf("%.2f", float64(lr.LatencyPercentile(99).Microseconds())/1000),
			fmt.Sprint(ps.OriginFetches), fmt.Sprint(ps.Retries), fmt.Sprint(ps.Coalesced))
		if fs.Requests > 0 {
			injected = float64(fs.Errors+fs.OutageDrops+fs.Truncations+fs.Stalls) / float64(fs.Requests)
		}
	}
	rep.AddNote("injected origin fault rate (errors+outage+truncation+stall): %.4f", injected)
	rep.AddNote("resilient arm: retries + coalescing + serve-stale keep client errors under the injected rate")
	return rep, nil
}
