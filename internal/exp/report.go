// Package exp is the experiment harness: it rebuilds every table and figure
// of the Darwin paper's evaluation (§6, Appendix A.3) at a configurable
// scale, printing the same rows/series the paper reports. Each experiment is
// exposed as a function returning a Report; the root bench_test.go and
// cmd/experiments drive them.
package exp

import (
	"fmt"
	"strings"
)

// Report is a printable experiment result: a titled table of rows.
type Report struct {
	// Title identifies the experiment (e.g. "Figure 4a").
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes are free-form lines appended after the table.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report with aligned columns.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("== " + r.Title + " ==\n")
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// f2 formats a float with 2 decimals; f4 with 4.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
