package exp

import (
	"fmt"
	"sync"

	"darwin/internal/core"
	"darwin/internal/par"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

// Corpus bundles the offline training set, the online test set, and the
// trained Darwin model for one Scale.
type Corpus struct {
	Scale   Scale
	Train   []*trace.Trace
	Test    []*trace.Trace
	Dataset *core.Dataset
	Model   *core.Model
}

// BuildTraces generates the Image:Download mix grids of §6 ("CDN Traces"):
// mixes from 100:0 to 0:100 in MixStep increments, TrainSeeds traces per mix
// for training and TestSeeds for testing.
func BuildTraces(sc Scale) (train, test []*trace.Trace, err error) {
	// Enumerate the (mix, seed, length) jobs serially — the job list defines
	// the output order — then generate the traces in parallel.
	type job struct {
		pct, n int
		seed   int64
		test   bool
	}
	var jobs []job
	for pct := 0; pct <= 100; pct += sc.MixStep {
		for s := 0; s < sc.TrainSeeds; s++ {
			jobs = append(jobs, job{pct: pct, n: sc.OfflineTraceLen, seed: sc.Seed + int64(1000*pct+s)})
		}
		for s := 0; s < sc.TestSeeds; s++ {
			jobs = append(jobs, job{pct: pct, n: sc.OnlineTraceLen, seed: sc.Seed + int64(1000*pct+500+s), test: true})
		}
	}
	traces, err := par.Map(jobs, 0, func(i int, j job) (*trace.Trace, error) {
		return tracegen.ImageDownloadMix(j.pct, j.n, j.seed)
	})
	if err != nil {
		return nil, nil, err
	}
	for i, j := range jobs {
		if j.test {
			test = append(test, traces[i])
		} else {
			train = append(train, traces[i])
		}
	}
	return train, test, nil
}

// BuildCorpus generates traces, evaluates the offline set, and trains the
// Darwin model with the given objective ("" selects OHR).
func BuildCorpus(sc Scale, objective string) (*Corpus, error) {
	obj, err := core.ObjectiveByName(objective)
	if err != nil {
		return nil, err
	}
	train, test, err := BuildTraces(sc)
	if err != nil {
		return nil, err
	}
	// Training features come from warm-up-sized windows so that offline
	// clustering sees the same (window-censored) feature statistics the
	// online controller estimates during N_warmup.
	ds, err := core.BuildDataset(train, core.DatasetConfig{
		Experts:       sc.Experts,
		Eval:          sc.Eval,
		FeatureWindow: sc.Online.Warmup,
	})
	if err != nil {
		return nil, err
	}
	model, err := core.Train(ds, core.TrainConfig{
		Objective:   obj,
		NumClusters: sc.NumClusters,
		ThetaPct:    sc.ThetaPct,
		Seed:        sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Corpus{Scale: sc, Train: train, Test: test, Dataset: ds, Model: model}, nil
}

// corpusCache memoises corpora across benchmarks within one process.
// Guarded by corpusMu for callers running inside the engine's worker pool.
var (
	corpusMu    sync.Mutex
	corpusCache = map[string]*Corpus{}
)

// CachedCorpus returns a memoised corpus for (sc, objective); benchmarks for
// different figures share the expensive offline phase.
func CachedCorpus(sc Scale, objective string) (*Corpus, error) {
	key := fmt.Sprintf("%+v|%s", sc, objective)
	corpusMu.Lock()
	c, ok := corpusCache[key]
	corpusMu.Unlock()
	if ok {
		return c, nil
	}
	c, err := BuildCorpus(sc, objective)
	if err != nil {
		return nil, err
	}
	corpusMu.Lock()
	corpusCache[key] = c
	corpusMu.Unlock()
	return c, nil
}
