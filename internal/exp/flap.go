package exp

// Flap chaos: the self-healing membership experiment. Three arms, all driven
// on a simulated clock at the gossip.Membership level — no HTTP, no wall
// clock — so the report is byte-reproducible run to run (the determinism lint
// rule holds with no carve-outs):
//
//  1. Flap detector: a node cycling 1 s up / 1 s down under the graded
//     phi-accrual detector versus the binary /readyz verdict. The graded arm
//     must shed full ring weight zero times (hysteresis: a flap costs at most
//     the suspect slice); the binary arm sheds once per down phase.
//  2. Asymmetric partition: the front's probe path to one node is severed
//     while the node keeps gossiping with its peers. Relayed heartbeat
//     digests keep the partitioned node alive at the front, so the cluster
//     retains its object hit ratio; the binary arm sheds the node and pays
//     the redistribution cold-start.
//  3. Drain handoff: a drained node's cache residency (the DRWNCKPT payload,
//     here the in-process state) merges into its ring successor, which then
//     reaches the donor's steady hit ratio within one window; a cold
//     inheritor needs several.

import (
	"fmt"
	"time"

	"darwin/internal/cache"
	"darwin/internal/gossip"
	"darwin/internal/lb"
)

// simClock is the experiment's injected time source: it only moves when the
// simulation advances it.
type simClock struct{ now time.Time }

func newSimClock() *simClock { return &simClock{now: time.Unix(0, 0)} }

func (c *simClock) Now() time.Time          { return c.now }
func (c *simClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// FlapConfig sizes the three arms.
type FlapConfig struct {
	// ProbeEvery is the front tier's probe cadence (default 250 ms), shared
	// by all arms as the heartbeat period.
	ProbeEvery time.Duration

	// Arm 1: the watched node cycles FlapUp up then FlapDown down, for
	// FlapCycles cycles (defaults 1 s / 1 s / 15).
	FlapUp, FlapDown time.Duration
	FlapCycles       int

	// Arm 2: Nodes-node cluster (default 3); the front's probe path to
	// PartitionNode is severed after PrefaultReqs requests and stays severed
	// for FaultReqs requests. PerRequest is the simulated inter-request gap.
	Nodes         int
	PartitionNode int
	PrefaultReqs  int
	FaultReqs     int
	PerRequest    time.Duration

	// Arm 3: the donor runs WarmWindows windows of WindowLen requests, then
	// drains; warm and cold inheritors replay ReplayWindows more.
	WindowLen     int
	WarmWindows   int
	ReplayWindows int

	// Expert and Eval fix each node's admission expert and level capacities.
	Expert cache.Expert
	Eval   cache.EvalConfig
	// Mix and Seed generate the seeded traces.
	Mix  int
	Seed int64
}

// DefaultFlapConfig returns the benchmark-scale flap schedule.
func DefaultFlapConfig() FlapConfig {
	return FlapConfig{
		ProbeEvery:    250 * time.Millisecond,
		FlapUp:        1 * time.Second,
		FlapDown:      1 * time.Second,
		FlapCycles:    15,
		Nodes:         3,
		PartitionNode: 2,
		PrefaultReqs:  12_000,
		FaultReqs:     12_000,
		PerRequest:    1 * time.Millisecond,
		WindowLen:     2000,
		WarmWindows:   6,
		ReplayWindows: 8,
		Expert:        cache.Expert{Freq: 1, MaxSize: 1 << 20},
		Eval:          cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20},
		Mix:           50,
		Seed:          7,
	}
}

func (c FlapConfig) withDefaults() FlapConfig {
	d := DefaultFlapConfig()
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = d.ProbeEvery
	}
	if c.FlapUp <= 0 || c.FlapDown <= 0 {
		c.FlapUp, c.FlapDown = d.FlapUp, d.FlapDown
	}
	if c.FlapCycles <= 0 {
		c.FlapCycles = d.FlapCycles
	}
	if c.Nodes <= 1 {
		c.Nodes = d.Nodes
	}
	if c.PartitionNode <= 0 || c.PartitionNode >= c.Nodes {
		c.PartitionNode = c.Nodes - 1
	}
	if c.PrefaultReqs <= 0 || c.FaultReqs <= 0 {
		c.PrefaultReqs, c.FaultReqs = d.PrefaultReqs, d.FaultReqs
	}
	if c.PerRequest <= 0 {
		c.PerRequest = d.PerRequest
	}
	if c.WindowLen <= 0 {
		c.WindowLen = d.WindowLen
	}
	if c.WarmWindows <= 0 || c.ReplayWindows <= 0 {
		c.WarmWindows, c.ReplayWindows = d.WarmWindows, d.ReplayWindows
	}
	if c.Eval.HOCBytes <= 0 {
		c.Eval = d.Eval
	}
	if c.Expert == (cache.Expert{}) {
		c.Expert = d.Expert
	}
	if c.Mix <= 0 {
		c.Mix = d.Mix
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// FlapDetectorOutcome is arm 1's result for one detector.
type FlapDetectorOutcome struct {
	// FullSheds counts transitions to zero ring weight.
	FullSheds int
	// SuspectSpells counts entries into the graded Suspect state (always 0
	// for the binary detector, which has no intermediate grade).
	SuspectSpells int
	// PeakPhi is the highest suspicion level the flap ever reached.
	PeakPhi float64
}

// PartitionOutcome is arm 2's result for one readiness scheme.
type PartitionOutcome struct {
	// PreOHR and FaultOHR are the cluster hit ratios over the steady half of
	// the pre-fault phase and the whole fault phase; Retention is their
	// ratio (the acceptance bar is >= 0.9 for the gossip arm).
	PreOHR, FaultOHR, Retention float64
	// Client5xx counts requests routed to a node that could not serve them.
	Client5xx int
	// ShedWindows counts routing windows in which the partitioned node held
	// zero weight at the front.
	ShedWindows int
}

// HandoffOutcome is arm 3's result.
type HandoffOutcome struct {
	// DonorOHR is the donor's steady hit ratio (its last warm window).
	DonorOHR float64
	// WarmWindows / ColdWindows are how many replay windows each inheritor
	// needed to reach 95% of DonorOHR (0 = never).
	WarmWindows, ColdWindows int
	// WarmFirstOHR / ColdFirstOHR are each inheritor's first-window OHR.
	WarmFirstOHR, ColdFirstOHR float64
}

// FlapResult aggregates all three arms.
type FlapResult struct {
	Graded, Binary FlapDetectorOutcome
	Gossip, Readyz PartitionOutcome
	Handoff        HandoffOutcome
}

// runFlapArm drives arm 1: one watched node flapping on a fixed duty cycle,
// graded and binary detectors observing the same probe outcomes.
func runFlapArm(fc FlapConfig) (graded, binary FlapDetectorOutcome, err error) {
	clk := newSimClock()
	memb, err := gossip.New(gossip.Config{
		Nodes:          1,
		Self:           -1,
		HeartbeatEvery: fc.ProbeEvery,
		Clock:          clk.Now,
		OnChange: func(node int, from, to gossip.Status) {
			switch to {
			case gossip.Dead:
				graded.FullSheds++
			case gossip.Suspect:
				graded.SuspectSpells++
			}
		},
	})
	if err != nil {
		return graded, binary, err
	}
	period := fc.FlapUp + fc.FlapDown
	total := time.Duration(fc.FlapCycles) * period
	var seq uint64
	binaryUp := true
	for t := time.Duration(0); t < total; t += fc.ProbeEvery {
		up := t%period < fc.FlapUp
		if up {
			seq++
			memb.Heartbeat(0, seq)
		}
		if phi := memb.Phi(0); phi > graded.PeakPhi {
			graded.PeakPhi = phi
		}
		memb.Status(0) // drive the graded state machine every probe tick
		if binaryUp && !up {
			binary.FullSheds++ // the binary verdict sheds on the first missed probe
		}
		binaryUp = up
		clk.Advance(fc.ProbeEvery)
	}
	return graded, binary, nil
}

// runPartitionArm drives arm 2 once: a cluster under an asymmetric partition
// of the front's probe path to one node, routed by the given readiness
// scheme (graded gossip weights or the binary probe verdict).
func runPartitionArm(fc FlapConfig, useGossip bool) (PartitionOutcome, error) {
	var out PartitionOutcome
	tr, err := tracegenMix(fc.Mix, fc.PrefaultReqs+fc.FaultReqs, fc.Seed)
	if err != nil {
		return out, err
	}

	clk := newSimClock()
	nodes := make([]*cache.Hierarchy, fc.Nodes)
	membs := make([]*gossip.Membership, fc.Nodes)
	for i := range nodes {
		nodes[i], err = cache.New(cache.Config{
			HOCBytes: fc.Eval.HOCBytes, DCBytes: fc.Eval.DCBytes, Expert: fc.Expert,
		})
		if err != nil {
			return out, err
		}
		membs[i], err = gossip.New(gossip.Config{
			Nodes: fc.Nodes, Self: i, HeartbeatEvery: fc.ProbeEvery, Clock: clk.Now,
		})
		if err != nil {
			return out, err
		}
	}
	front, err := gossip.New(gossip.Config{
		Nodes: fc.Nodes, Self: -1, HeartbeatEvery: fc.ProbeEvery, Clock: clk.Now,
	})
	if err != nil {
		return out, err
	}

	// weights is the front's routing view, refreshed at every probe round.
	weights := make([]float64, fc.Nodes)
	for i := range weights {
		weights[i] = 1
	}
	binaryReady := make([]bool, fc.Nodes)
	for i := range binaryReady {
		binaryReady[i] = true
	}

	// probeRound runs one probe tick: full-mesh peer digest exchange (the
	// partition never touches node-to-node edges), then the front probing
	// each node it can reach. Digest answers from reachable peers relay the
	// partitioned node's rising sequence — the indirect heartbeat.
	var scratch []gossip.Entry
	probeRound := func(faultActive bool) {
		for i := 0; i < fc.Nodes; i++ {
			for j := i + 1; j < fc.Nodes; j++ {
				membs[i].Beat()
				scratch = membs[i].Digest(scratch[:0])
				membs[j].Merge(i, scratch)
				membs[j].Beat()
				scratch = membs[j].Digest(scratch[:0])
				membs[i].Merge(j, scratch)
			}
		}
		for j := 0; j < fc.Nodes; j++ {
			reachable := !(faultActive && j == fc.PartitionNode)
			if reachable {
				membs[j].Beat()
				scratch = membs[j].Digest(scratch[:0])
				front.Merge(j, scratch)
			}
			binaryReady[j] = reachable
		}
		for j := 0; j < fc.Nodes; j++ {
			if useGossip {
				weights[j] = front.Weight(j)
			} else if binaryReady[j] {
				weights[j] = 1
			} else {
				weights[j] = 0
			}
		}
	}

	reqsPerProbe := int(fc.ProbeEvery / fc.PerRequest)
	if reqsPerProbe < 1 {
		reqsPerProbe = 1
	}
	ring, err := lb.NewRing(lb.Config{
		Servers:        fc.Nodes,
		VirtualNodes:   64,
		LoadFactor:     0.25,
		RebalanceEvery: reqsPerProbe,
		Readiness: func(window, s int) float64 {
			return weights[s]
		},
	})
	if err != nil {
		return out, err
	}

	var succ [lb.MaxReplicas]int
	width := fc.Nodes
	if width > lb.MaxReplicas {
		width = lb.MaxReplicas
	}
	preHits, preReqs := 0, 0
	faultHits, faultReqs := 0, 0
	window := 0
	for i, req := range tr.Requests {
		faultActive := i >= fc.PrefaultReqs
		if i%reqsPerProbe == 0 {
			probeRound(faultActive)
			end := i + reqsPerProbe
			if end > len(tr.Requests) {
				end = len(tr.Requests)
			}
			ring.BeginWindow(window, end-i)
			if faultActive && weights[fc.PartitionNode] == 0 {
				out.ShedWindows++
			}
			window++
		}
		clk.Advance(fc.PerRequest)

		s := ring.RouteReplicated(req.ID, 1)
		if weights[s] == 0 {
			// In-request failover off a zero-weight node (stale mid-window
			// routing): first positive-weight ring successor takes it.
			k := ring.Successors(req.ID, succ[:width])
			s = -1
			for j := 0; j < k; j++ {
				if weights[succ[j]] > 0 {
					s = succ[j]
					break
				}
			}
			if s < 0 {
				out.Client5xx++
				continue
			}
		}
		// The partition is control-plane only: every node is actually up, so
		// a routed request always gets served — 5xx would require routing to
		// a node with no healthy path at all.
		hit := nodes[s].Serve(req) != cache.Miss
		if faultActive {
			faultReqs++
			if hit {
				faultHits++
			}
		} else if i >= fc.PrefaultReqs/2 {
			// Steady half of the pre-fault phase: skip the cold start.
			preReqs++
			if hit {
				preHits++
			}
		}
	}
	if preReqs > 0 {
		out.PreOHR = float64(preHits) / float64(preReqs)
	}
	if faultReqs > 0 {
		out.FaultOHR = float64(faultHits) / float64(faultReqs)
	}
	if out.PreOHR > 0 {
		out.Retention = out.FaultOHR / out.PreOHR
	}
	return out, nil
}

// runHandoffArm drives arm 3: donor warms, drains, and its residency merges
// into a warm inheritor; a cold inheritor replays the same windows bare.
func runHandoffArm(fc FlapConfig) (HandoffOutcome, error) {
	var out HandoffOutcome
	total := (fc.WarmWindows + fc.ReplayWindows) * fc.WindowLen
	tr, err := tracegenMix(fc.Mix, total, fc.Seed+1)
	if err != nil {
		return out, err
	}
	mk := func() (*cache.Hierarchy, error) {
		return cache.New(cache.Config{
			HOCBytes: fc.Eval.HOCBytes, DCBytes: fc.Eval.DCBytes, Expert: fc.Expert,
		})
	}
	donor, err := mk()
	if err != nil {
		return out, err
	}

	warmLen := fc.WarmWindows * fc.WindowLen
	hits := 0
	for i := 0; i < warmLen; i++ {
		if i%fc.WindowLen == 0 {
			hits = 0
		}
		if donor.Serve(tr.Requests[i]) != cache.Miss {
			hits++
		}
	}
	out.DonorOHR = float64(hits) / float64(fc.WindowLen)

	// The drain handoff: donor residency (DC first, HOC last so the hot core
	// lands most-protected) merges into the warm inheritor's DC — the
	// in-process equivalent of the DRWNCKPT frame POSTed to /state.
	st, err := donor.State()
	if err != nil {
		return out, err
	}
	entries := append(append([]cache.ResidentObject(nil), st.DC...), st.HOC...)
	warm, err := mk()
	if err != nil {
		return out, err
	}
	if _, err := warm.MergeDC(entries); err != nil {
		return out, err
	}
	cold, err := mk()
	if err != nil {
		return out, err
	}

	target := 0.95 * out.DonorOHR
	replay := func(h *cache.Hierarchy) (firstOHR float64, windows int) {
		for w := 0; w < fc.ReplayWindows; w++ {
			start := warmLen + w*fc.WindowLen
			hits := 0
			for i := start; i < start+fc.WindowLen; i++ {
				if h.Serve(tr.Requests[i]) != cache.Miss {
					hits++
				}
			}
			ohr := float64(hits) / float64(fc.WindowLen)
			if w == 0 {
				firstOHR = ohr
			}
			if windows == 0 && ohr >= target {
				windows = w + 1
			}
		}
		return firstOHR, windows
	}
	out.WarmFirstOHR, out.WarmWindows = replay(warm)
	out.ColdFirstOHR, out.ColdWindows = replay(cold)
	return out, nil
}

// RunFlap drives all three arms and returns the aggregate result.
func RunFlap(fc FlapConfig) (*FlapResult, error) {
	fc = fc.withDefaults()
	res := &FlapResult{}
	var err error
	if res.Graded, res.Binary, err = runFlapArm(fc); err != nil {
		return nil, err
	}
	if res.Gossip, err = runPartitionArm(fc, true); err != nil {
		return nil, err
	}
	if res.Readyz, err = runPartitionArm(fc, false); err != nil {
		return nil, err
	}
	if res.Handoff, err = runHandoffArm(fc); err != nil {
		return nil, err
	}
	return res, nil
}

// FlapReport runs the flap schedule and tabulates all three arms against
// their acceptance bars.
func FlapReport(fc FlapConfig) (*Report, error) {
	fc = fc.withDefaults()
	res, err := RunFlap(fc)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: fmt.Sprintf("Flap chaos: graded membership vs binary readiness (%d nodes, probe %v)",
			fc.Nodes, fc.ProbeEvery),
		Header: []string{"arm", "metric", "value", "bar"},
	}
	rep.AddRow("flap/graded", "full-weight sheds", fmt.Sprint(res.Graded.FullSheds), "0")
	rep.AddRow("flap/graded", "suspect spells", fmt.Sprint(res.Graded.SuspectSpells), "-")
	rep.AddRow("flap/graded", "peak phi", f2(res.Graded.PeakPhi), fmt.Sprintf("< %g (dead)", 8.0))
	rep.AddRow("flap/binary", "full-weight sheds", fmt.Sprint(res.Binary.FullSheds), ">= 3")
	rep.AddRow("partition/gossip", "ohr retention", f4(res.Gossip.Retention), ">= 0.9")
	rep.AddRow("partition/gossip", "client 5xx", fmt.Sprint(res.Gossip.Client5xx), "0")
	rep.AddRow("partition/gossip", "shed windows", fmt.Sprint(res.Gossip.ShedWindows), "0")
	rep.AddRow("partition/readyz", "ohr retention", f4(res.Readyz.Retention), "(contrast)")
	rep.AddRow("partition/readyz", "shed windows", fmt.Sprint(res.Readyz.ShedWindows), "(contrast)")
	rep.AddRow("handoff/donor", "steady ohr", f4(res.Handoff.DonorOHR), "-")
	rep.AddRow("handoff/warm", "windows to 95%", fmt.Sprint(res.Handoff.WarmWindows), "1")
	rep.AddRow("handoff/warm", "first-window ohr", f4(res.Handoff.WarmFirstOHR), "-")
	rep.AddRow("handoff/cold", "windows to 95%", fmt.Sprint(res.Handoff.ColdWindows), ">= 4 (or never)")
	rep.AddRow("handoff/cold", "first-window ohr", f4(res.Handoff.ColdFirstOHR), "-")
	rep.AddNote("flap: node cycles %v up / %v down for %d cycles; hysteresis holds the flapper at suspect weight, never dead",
		fc.FlapUp, fc.FlapDown, fc.FlapCycles)
	rep.AddNote("partition: front cannot probe node %d for %d requests; peers relay its heartbeats, so gossip keeps it routable",
		fc.PartitionNode, fc.FaultReqs)
	rep.AddNote("handoff: donor residency merges into the inheritor's DC (DC then HOC, hot core most protected) before replay")
	rep.AddNote("all arms run on a simulated clock: the report is byte-reproducible")
	return rep, nil
}
