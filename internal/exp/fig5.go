package exp

import (
	"fmt"
	"math"
	"sort"

	"darwin/internal/core"
	"darwin/internal/features"
	"darwin/internal/stats"
	"darwin/internal/trace"
)

// Fig5aFeatureConvergence reproduces Figure 5a (and Figure 8): the relative
// error of feature vectors computed over trace prefixes against the
// full-trace values, averaged over the given traces.
func Fig5aFeatureConvergence(traces []*trace.Trace, fcfg features.Config, fracs []float64) (*Report, error) {
	rep := &Report{
		Title:  "Figure 5a/8: feature convergence vs prefix length",
		Header: []string{"prefix", "mean rel. error %"},
	}
	errsAt := make([]float64, len(fracs))
	for _, tr := range traces {
		full, err := features.FromTrace(tr, fcfg)
		if err != nil {
			return nil, err
		}
		for i, f := range fracs {
			prefix, err := features.FromTrace(tr.Window(0, int(float64(tr.Len())*f)), fcfg)
			if err != nil {
				return nil, err
			}
			errsAt[i] += features.RelativeError(prefix, full)
		}
	}
	for i, f := range fracs {
		rep.AddRow(fmt.Sprintf("%.0f%%", f*100), f2(errsAt[i]/float64(len(traces))*100))
	}
	rep.AddNote("paper: features converge to within 10%% using the first 3%% of requests")
	return rep, nil
}

// Fig5bClusterReduction reproduces Figures 5b and 9: for each θ, the
// distribution of per-cluster expert-set sizes and the average reduction
// relative to the full grid.
func Fig5bClusterReduction(ds *core.Dataset, numClusters int, thetas []float64, seed int64) (*Report, error) {
	rep := &Report{
		Title:  "Figure 5b/9: expert reduction after clustering",
		Header: []string{"theta%", "avg set size", "median", "p90", "avg reduction %"},
	}
	k := float64(len(ds.Experts))
	for _, theta := range thetas {
		m, err := core.Train(ds, core.TrainConfig{
			NumClusters:    numClusters,
			ThetaPct:       theta,
			Seed:           seed,
			SkipPredictors: true,
		})
		if err != nil {
			return nil, err
		}
		var sizes []float64
		for _, set := range m.ExpertSets {
			if len(set) > 0 {
				sizes = append(sizes, float64(len(set)))
			}
		}
		if len(sizes) == 0 {
			continue
		}
		avg := stats.Mean(sizes)
		rep.AddRow(
			fmt.Sprintf("%.0f", theta),
			f2(avg),
			f2(stats.Percentile(sizes, 50)),
			f2(stats.Percentile(sizes, 90)),
			f2((1-avg/k)*100),
		)
	}
	rep.AddNote("grid size %d experts; paper reports 82%% reduction at theta=1, 35%% at theta=5", len(ds.Experts))
	return rep, nil
}

// Fig5cPredictorAccuracy reproduces Figure 5c (and the out-of-distribution
// variant of Figure 10): the CDF of order-prediction accuracy over all
// trained predictor pairs at several proximity levels, computed on held-out
// records.
func Fig5cPredictorAccuracy(m *core.Model, test []*core.TraceRecord, proximities []float64) (*Report, error) {
	if len(test) == 0 {
		return nil, fmt.Errorf("exp: no test records")
	}
	rep := &Report{
		Title:  "Figure 5c/10: cross-expert order prediction accuracy",
		Header: []string{"proximity%", "mean acc", "p10 acc", "median acc", ">=80% acc pairs"},
	}
	k := len(m.Experts)
	for _, prox := range proximities {
		var accs []float64
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i == j || m.Predictors[i][j] == nil {
					continue
				}
				correct, total := 0, 0
				for _, rec := range test {
					ohrI := rec.Metrics[i].OHR()
					ohrJ := rec.Metrics[j].OHR()
					est, ok := m.EstimateReward(i, j, ohrI, rec.Extended, rec.Profile)
					if !ok {
						continue
					}
					total++
					// Proximal pairs count as correct (paper's definition).
					if math.Abs(ohrI-ohrJ) <= prox/100 {
						correct++
						continue
					}
					if (est > ohrI) == (ohrJ > ohrI) {
						correct++
					}
				}
				if total > 0 {
					accs = append(accs, float64(correct)/float64(total))
				}
			}
		}
		if len(accs) == 0 {
			continue
		}
		sort.Float64s(accs)
		ge80 := 0
		for _, a := range accs {
			if a >= 0.8 {
				ge80++
			}
		}
		rep.AddRow(
			fmt.Sprintf("%.0f", prox),
			f4(stats.Mean(accs)),
			f4(stats.PercentileSorted(accs, 10)),
			f4(stats.PercentileSorted(accs, 50)),
			fmt.Sprintf("%d/%d", ge80, len(accs)),
		)
	}
	rep.AddNote("paper: with 1%% proximity, >90%% of the 1260 predictors reach >80%% accuracy")
	return rep, nil
}

// Fig5dBanditRounds reproduces Figure 5d: the CDF of bandit rounds needed
// before the best expert is identified, from Darwin's epoch diagnostics.
func Fig5dBanditRounds(diags []core.EpochDiag) *Report {
	rep := &Report{
		Title:  "Figure 5d: rounds for best-expert identification",
		Header: []string{"rounds", "CDF"},
	}
	var rounds []float64
	byReason := map[string]int{}
	for _, d := range diags {
		byReason[d.StopReason]++
		if d.SetSize >= 2 {
			rounds = append(rounds, float64(d.Rounds))
		}
	}
	if len(rounds) == 0 {
		rep.AddNote("all epochs had singleton expert sets; no bandit rounds")
		return rep
	}
	for _, p := range stats.CDF(rounds) {
		rep.AddRow(fmt.Sprintf("%.0f", p.Value), f2(p.Fraction))
	}
	reasons := make([]string, 0, len(byReason))
	for reason := range byReason {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		rep.AddNote("stop reason %q: %d epochs", reason, byReason[reason])
	}
	rep.AddNote("paper: >=80%% of traces stabilise by round 12; worst case 21 rounds")
	return rep
}
