package exp

import (
	"strings"
	"testing"

	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/features"
	"darwin/internal/stats"
)

// tiny returns a scale small enough for unit tests.
func tiny() Scale {
	return Scale{
		OfflineTraceLen: 8_000,
		OnlineTraceLen:  16_000,
		MixStep:         50,
		TrainSeeds:      2,
		TestSeeds:       1,
		Eval:            cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1},
		Online: core.OnlineConfig{
			Epoch:           16_000,
			Warmup:          800,
			Round:           300,
			Delta:           0.05,
			StabilityRounds: 3,
			Neff:            50,
			VarFloor:        1e-4,
		},
		Experts:     cache.Grid([]int{1, 3, 5}, []int64{2 << 10, 20 << 10, 200 << 10}),
		NumClusters: 3,
		ThetaPct:    1,
		Seed:        1,
	}
}

func tinyCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := CachedCorpus(tiny(), "ohr")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReportRendering(t *testing.T) {
	rep := &Report{Title: "t", Header: []string{"a", "bee"}}
	rep.AddRow("xx", "1")
	rep.AddNote("n=%d", 2)
	s := rep.String()
	for _, want := range []string{"== t ==", "a", "bee", "xx", "note: n=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, s)
		}
	}
}

func TestBuildTracesCounts(t *testing.T) {
	sc := tiny()
	train, test, err := BuildTraces(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Mixes: 0, 50, 100 → 3 configs.
	if len(train) != 3*sc.TrainSeeds {
		t.Fatalf("train = %d", len(train))
	}
	if len(test) != 3*sc.TestSeeds {
		t.Fatalf("test = %d", len(test))
	}
	for _, tr := range train {
		if tr.Len() != sc.OfflineTraceLen {
			t.Fatalf("train trace len %d", tr.Len())
		}
	}
	for _, tr := range test {
		if tr.Len() != sc.OnlineTraceLen {
			t.Fatalf("test trace len %d", tr.Len())
		}
	}
}

func TestCachedCorpusMemoises(t *testing.T) {
	a := tinyCorpus(t)
	b := tinyCorpus(t)
	if a != b {
		t.Fatal("CachedCorpus did not memoise")
	}
	if a.Model == nil || a.Dataset == nil {
		t.Fatal("corpus incomplete")
	}
}

func TestFig2Grid(t *testing.T) {
	c := tinyCorpus(t)
	rep, err := Fig2Grid("fig2 test", c.Test[0], c.Scale.Experts, c.Scale.Eval, GridOHR)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 { // three frequency rows
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if len(rep.Header) != 4 { // f column + three size columns
		t.Fatalf("header = %v", rep.Header)
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "optimum") {
		t.Fatal("missing optimum note")
	}
}

func TestFig2DiskWriteLowerIsBetter(t *testing.T) {
	c := tinyCorpus(t)
	rep, err := Fig2Grid("fig2e test", c.Test[0], c.Scale.Experts, c.Scale.Eval, GridDiskWrite)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Notes[0], "lower is better") {
		t.Fatalf("note = %v", rep.Notes)
	}
}

func TestEnsembleSetDiverse(t *testing.T) {
	c := tinyCorpus(t)
	ens, err := EnsembleSet(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens) == 0 {
		t.Fatal("empty ensemble")
	}
	seen := map[string]bool{}
	for _, tr := range ens {
		if seen[tr.Name] {
			t.Fatal("duplicate trace in ensemble")
		}
		seen[tr.Name] = true
	}
}

func TestRunDarwinProducesMetrics(t *testing.T) {
	c := tinyCorpus(t)
	m, diags, err := RunDarwin(c, c.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	wantReqs := int64(c.Test[0].Len()) - int64(float64(c.Test[0].Len())*c.Scale.Eval.WarmupFrac)
	if m.Requests != wantReqs {
		t.Fatalf("requests = %d, want %d", m.Requests, wantReqs)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
}

func TestFig4CompareShapesAndSanity(t *testing.T) {
	c := tinyCorpus(t)
	rep, results, diags, err := Fig4Compare(c, "fig4 test")
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(c.Scale.Experts) + len(BaselineNames())
	if len(rep.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), wantRows)
	}
	if results[0].Scheme != "darwin" {
		t.Fatal("first result must be darwin")
	}
	if len(diags) == 0 {
		t.Fatal("no darwin diagnostics")
	}
	// Sanity: Darwin's mean OHR must be at least 85% of the best static
	// expert's mean OHR (it pays exploration cost but should be close).
	darwinMean := stats.Mean(results[0].OHR)
	bestStatic := 0.0
	for _, r := range results[1 : 1+len(c.Scale.Experts)] {
		if m := stats.Mean(r.OHR); m > bestStatic {
			bestStatic = m
		}
	}
	if darwinMean < 0.85*bestStatic {
		t.Fatalf("darwin mean OHR %.4f far below best static %.4f", darwinMean, bestStatic)
	}
}

func TestTable2AllBaselines(t *testing.T) {
	c := tinyCorpus(t)
	rep, err := Table2(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(c.Scale.Experts)+len(BaselineNames()) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestNewBaselineUnknown(t *testing.T) {
	c := tinyCorpus(t)
	if _, err := NewBaseline("bogus", c); err == nil {
		t.Fatal("unknown baseline accepted")
	}
	for _, name := range BaselineNames() {
		if _, err := NewBaseline(name, c); err != nil {
			t.Fatalf("NewBaseline(%q): %v", name, err)
		}
	}
}

func TestFig5aConvergence(t *testing.T) {
	c := tinyCorpus(t)
	rep, err := Fig5aFeatureConvergence(c.Train[:2], features.DefaultConfig(), []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig5bReduction(t *testing.T) {
	c := tinyCorpus(t)
	rep, err := Fig5bClusterReduction(c.Dataset, 3, []float64{1, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig5cAccuracy(t *testing.T) {
	c := tinyCorpus(t)
	rep, err := Fig5cPredictorAccuracy(c.Model, c.Dataset.Records, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no accuracy rows")
	}
	if _, err := Fig5cPredictorAccuracy(c.Model, nil, []float64{1}); err == nil {
		t.Fatal("empty test records accepted")
	}
}

func TestFig5dRounds(t *testing.T) {
	diags := []core.EpochDiag{
		{SetSize: 3, Rounds: 5, StopReason: "stability"},
		{SetSize: 3, Rounds: 8, StopReason: "stability"},
		{SetSize: 1, Rounds: 0, StopReason: "singleton"},
	}
	rep := Fig5dBanditRounds(diags)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	empty := Fig5dBanditRounds(nil)
	if len(empty.Rows) != 0 {
		t.Fatal("empty diags should have no rows")
	}
}

func TestTable1(t *testing.T) {
	rep := Table1()
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestLargeCacheScale(t *testing.T) {
	sc := tiny()
	scaled := LargeCacheScale(sc, 5)
	if scaled.Eval.HOCBytes != 5*sc.Eval.HOCBytes {
		t.Fatal("HOC not scaled")
	}
	if scaled.Experts[0].MaxSize != 5*sc.Experts[0].MaxSize {
		t.Fatal("expert sizes not scaled")
	}
	if scaled.Experts[0].Freq != sc.Experts[0].Freq {
		t.Fatal("frequency thresholds must not scale")
	}
}

func TestImprovementsGuards(t *testing.T) {
	got := improvements([]float64{0.5}, []float64{0})
	if got[0] != 0 {
		t.Fatal("zero baseline must not divide")
	}
	got = objImprovements([]float64{-0.4}, []float64{-0.5})
	if got[0] <= 0 {
		t.Fatalf("improving a negative objective should be positive, got %v", got[0])
	}
}

func TestFig2Suite(t *testing.T) {
	sc := tiny()
	reps, err := Fig2Suite(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 5 {
		t.Fatalf("panels = %d, want 5 (2a-2e)", len(reps))
	}
	titles := []string{"2a", "2b", "2c", "2d", "2e"}
	for i, rep := range reps {
		if !strings.Contains(rep.Title, titles[i]) {
			t.Fatalf("panel %d title = %q", i, rep.Title)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("panel %q has no rows", rep.Title)
		}
	}
	// The two "production windows" must have different optima or different
	// surfaces (the no-one-size-fits-all claim); at minimum, the grids must
	// not be identical.
	same := true
	for r := range reps[0].Rows {
		for c := range reps[0].Rows[r] {
			if reps[0].Rows[r][c] != reps[1].Rows[r][c] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("window 1 and window 2 grids identical — no traffic variation")
	}
}
