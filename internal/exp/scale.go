package exp

import (
	"darwin/internal/cache"
	"darwin/internal/core"
)

// Scale fixes every size knob of the reproduction so the same experiment
// code runs as a fast benchmark or a fuller offline study (DESIGN.md §5).
type Scale struct {
	// OfflineTraceLen is the length of each offline training trace.
	OfflineTraceLen int
	// OnlineTraceLen is the length of each online test trace.
	OnlineTraceLen int
	// MixStep is the Image:Download percentage step between configurations
	// (paper: 1 → 100 configurations; scaled: 25 → 5).
	MixStep int
	// TrainSeeds and TestSeeds are the traces generated per configuration
	// (paper: 7 train + 3 test).
	TrainSeeds, TestSeeds int
	// Eval sizes the simulated cache.
	Eval cache.EvalConfig
	// Online is Darwin's online-phase configuration.
	Online core.OnlineConfig
	// Experts is the static expert grid.
	Experts []cache.Expert
	// NumClusters is the offline K-means K.
	NumClusters int
	// ThetaPct is the expert-set threshold θ.
	ThetaPct float64
	// Seed makes the whole pipeline deterministic.
	Seed int64
}

// Small returns the benchmark scale: 10 training and 5 test traces over a
// 256 KB HOC. Every experiment finishes in seconds while preserving the
// paper's ratios (warm-up 10%, N_warmup 3%, N_round ~1%).
func Small() Scale {
	return Scale{
		OfflineTraceLen: 20_000,
		OnlineTraceLen:  40_000,
		MixStep:         25,
		TrainSeeds:      2,
		TestSeeds:       1,
		Eval:            cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1},
		Online: core.OnlineConfig{
			Epoch:           40_000,
			Warmup:          1_200,
			Round:           500,
			Delta:           0.05,
			StabilityRounds: 5,
			Neff:            50,
			VarFloor:        1e-4,
		},
		Experts:     cache.Grid([]int{1, 2, 3, 5, 7}, []int64{2 << 10, 10 << 10, 50 << 10, 200 << 10, 1 << 20}),
		NumClusters: 4,
		ThetaPct:    1,
		Seed:        1,
	}
}

// Default returns the scaled operating point of DESIGN.md §5: a 2 MB HOC,
// 200 MB DC, 40k-request offline traces and 200k-request online traces, with
// the paper's 36-expert grid. Intended for cmd/experiments runs.
func Default() Scale {
	return Scale{
		OfflineTraceLen: 40_000,
		OnlineTraceLen:  200_000,
		MixStep:         10,
		TrainSeeds:      3,
		TestSeeds:       1,
		Eval:            cache.DefaultEvalConfig(),
		Online:          core.DefaultOnlineConfig(),
		Experts:         cache.DefaultGrid(),
		NumClusters:     8,
		ThetaPct:        1,
		Seed:            1,
	}
}
