package exp

import (
	"strconv"
	"testing"
	"time"

	"darwin/internal/faults"
	"darwin/internal/server"
)

// fastChaos returns a timing-robust chaos config for CI: rate-based faults
// only (no wall-clock outage window), small trace, tiny latencies.
func fastChaos() ChaosConfig {
	cc := DefaultChaosConfig()
	cc.Prototype.OriginLatency = 200 * time.Microsecond
	cc.Prototype.DCLatency = 50 * time.Microsecond
	cc.Prototype.Concurrency = 8
	cc.Prototype.TraceLen = 800
	cc.Faults = faults.Config{
		Seed:         42,
		ErrorRate:    0.2,
		TruncateRate: 0.05,
	}
	cc.Resilience = server.DefaultResilience()
	cc.Resilience.BackoffBase = 1 * time.Millisecond
	cc.Resilience.BackoffMax = 5 * time.Millisecond
	return cc
}

func TestChaosResilientBeatsControl(t *testing.T) {
	rep, err := ChaosReport(fastChaos())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	parse := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, col, err)
		}
		return v
	}
	const errRateCol = 3
	control, resilient := rep.Rows[0], rep.Rows[1]
	if control[0] != "no-resilience" || resilient[0] != "resilient" {
		t.Fatalf("arm order: %v / %v", control[0], resilient[0])
	}
	cr, rr := parse(control, errRateCol), parse(resilient, errRateCol)
	// 20% hard errors + 5% truncations: the control proxy forwards faults to
	// clients (error rate near the injected rate), the hardened proxy retries
	// them away (well under it).
	if cr < 0.10 {
		t.Errorf("control error rate %.4f implausibly low for a 25%% fault schedule", cr)
	}
	if rr > 0.05 {
		t.Errorf("resilient error rate %.4f, want < 0.05", rr)
	}
	if rr >= cr {
		t.Errorf("resilience did not help: resilient %.4f >= control %.4f", rr, cr)
	}
}

func TestChaosCoalescingVisible(t *testing.T) {
	cc := fastChaos()
	cc.Faults = faults.Config{Seed: 1} // healthy origin; isolate coalescing
	cc.Prototype.OriginLatency = 2 * time.Millisecond
	rep, err := ChaosReport(cc)
	if err != nil {
		t.Fatal(err)
	}
	const coalescedCol = 12
	resilient := rep.Rows[1]
	n, err := strconv.Atoi(resilient[coalescedCol])
	if err != nil {
		t.Fatal(err)
	}
	// A zipf-ish mix at concurrency 8 with a slow origin must coalesce some
	// concurrent misses; zero means single-flight never engaged.
	if n == 0 {
		t.Error("no coalesced fetches recorded in the resilient arm")
	}
}
