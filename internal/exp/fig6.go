package exp

import (
	"fmt"
	"strconv"

	"darwin/internal/core"
	"darwin/internal/par"
	"darwin/internal/stats"
	"darwin/internal/trace"
)

// Fig6Objective reproduces Figures 6a and 6b: Darwin retrained for a
// different objective ("bmr" or "combined") against the static expert grid
// on the ensemble set. The report shows the objective value per scheme and
// Darwin's improvement range.
func Fig6Objective(sc Scale, objective string, title string) (*Report, error) {
	c, err := CachedCorpus(sc, objective)
	if err != nil {
		return nil, err
	}
	obj := c.Model.Objective
	ensemble, err := EnsembleSet(c)
	if err != nil {
		return nil, err
	}

	// Darwin under the retrained objective: one run per ensemble trace,
	// fanned out over the engine in trace order.
	darwinVals, err := par.Map(ensemble, 0, func(i int, tr *trace.Trace) (float64, error) {
		m, _, err := RunDarwin(c, tr)
		if err != nil {
			return 0, fmt.Errorf("darwin on %s: %w", tr.Name, err)
		}
		return obj.Reward(m), nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Title:  title,
		Header: []string{"scheme", "mean objective", "min impr%", "median impr%", "max impr%"},
	}
	for ei, e := range sc.Experts {
		var vals []float64
		for _, tr := range ensemble {
			ms, err := Hindsight(c, tr)
			if err != nil {
				return nil, err
			}
			vals = append(vals, obj.Reward(ms[ei]))
		}
		imps := objImprovements(darwinVals, vals)
		rep.AddRow(e.String(), f4(stats.Mean(vals)),
			f2(minOf(imps)), f2(stats.Percentile(imps, 50)), f2(maxOf(imps)))
	}
	rep.AddNote("darwin mean objective %.4f (%s) over %d traces",
		stats.Mean(darwinVals), obj.Name(), len(ensemble))
	return rep, nil
}

// objImprovements computes percentage improvements for objectives that may
// be negative (e.g. −BMR): improvement is measured on the magnitude of the
// baseline value.
func objImprovements(darwin, baseline []float64) []float64 {
	out := make([]float64, len(darwin))
	for i := range darwin {
		den := baseline[i]
		if den < 0 {
			den = -den
		}
		if den == 0 {
			out[i] = 0
			continue
		}
		out[i] = (darwin[i] - baseline[i]) / den * 100
	}
	return out
}

// runDarwinEnsemble runs Darwin over every ensemble trace (fanned out over
// the engine, results in trace order) and returns the per-trace OHRs plus the
// bandit round counts of every multi-expert epoch.
func runDarwinEnsemble(c *Corpus, ensemble []*trace.Trace) (ohrs, rounds []float64, err error) {
	type runOut struct {
		ohr    float64
		rounds []float64
	}
	outs, err := par.Map(ensemble, 0, func(i int, tr *trace.Trace) (runOut, error) {
		m, diags, err := RunDarwin(c, tr)
		if err != nil {
			return runOut{}, fmt.Errorf("darwin on %s: %w", tr.Name, err)
		}
		o := runOut{ohr: m.OHR()}
		for _, d := range diags {
			if d.SetSize >= 2 {
				o.rounds = append(o.rounds, float64(d.Rounds))
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, o := range outs {
		ohrs = append(ohrs, o.ohr)
		rounds = append(rounds, o.rounds...)
	}
	return ohrs, rounds, nil
}

// AblationSideInfo compares Darwin's identification speed and quality with
// side information enabled vs. classical bandit feedback (DESIGN.md §4.1):
// the ablation the theory (Theorem 2) predicts.
func AblationSideInfo(sc Scale) (*Report, error) {
	c, err := CachedCorpus(sc, "ohr")
	if err != nil {
		return nil, err
	}
	ensemble, err := EnsembleSet(c)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Ablation: side information vs standard bandit feedback",
		Header: []string{"variant", "mean OHR", "mean rounds"},
	}
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"with side info", false}, {"standard feedback", true}} {
		scv := sc
		scv.Online.DisableSideInfo = variant.disable
		cv := &Corpus{Scale: scv, Train: c.Train, Test: c.Test, Dataset: c.Dataset, Model: c.Model}
		ohrs, rounds, err := runDarwinEnsemble(cv, ensemble)
		if err != nil {
			return nil, err
		}
		mr := 0.0
		if len(rounds) > 0 {
			mr = stats.Mean(rounds)
		}
		rep.AddRow(variant.name, f4(stats.Mean(ohrs)), f2(mr))
	}
	rep.AddNote("Theorem 2: side-information rounds do not scale with K; standard feedback scales linearly")
	return rep, nil
}

// AblationStopping compares the practical stability stop against the
// Theorem-1 threshold-only stop.
func AblationStopping(sc Scale) (*Report, error) {
	c, err := CachedCorpus(sc, "ohr")
	if err != nil {
		return nil, err
	}
	ensemble, err := EnsembleSet(c)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Ablation: stability stop vs threshold-only stop",
		Header: []string{"variant", "mean OHR", "mean rounds"},
	}
	for _, variant := range []struct {
		name      string
		stability int
	}{{"stability-5", 5}, {"threshold-only", 0}} {
		scv := sc
		scv.Online.StabilityRounds = variant.stability
		cv := &Corpus{Scale: scv, Train: c.Train, Test: c.Test, Dataset: c.Dataset, Model: c.Model}
		ohrs, rounds, err := runDarwinEnsemble(cv, ensemble)
		if err != nil {
			return nil, err
		}
		mr := 0.0
		if len(rounds) > 0 {
			mr = stats.Mean(rounds)
		}
		rep.AddRow(variant.name, f4(stats.Mean(ohrs)), f2(mr))
	}
	return rep, nil
}

// AblationRoundLength sweeps N_round, the de-correlation knob of §4.2.
func AblationRoundLength(sc Scale, lengths []int) (*Report, error) {
	c, err := CachedCorpus(sc, "ohr")
	if err != nil {
		return nil, err
	}
	ensemble, err := EnsembleSet(c)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Ablation: bandit round length N_round",
		Header: []string{"N_round", "mean OHR"},
	}
	for _, n := range lengths {
		scv := sc
		scv.Online.Round = n
		if scv.Online.Warmup+2*n > scv.Online.Epoch {
			continue
		}
		cv := &Corpus{Scale: scv, Train: c.Train, Test: c.Test, Dataset: c.Dataset, Model: c.Model}
		ohrs, _, err := runDarwinEnsemble(cv, ensemble)
		if err != nil {
			return nil, err
		}
		rep.AddRow(intStr(n), f4(stats.Mean(ohrs)))
	}
	return rep, nil
}

func intStr(n int) string { return strconv.Itoa(n) }

// AblationPredictorFeatures reproduces the §4.1 feature claim: cross-expert
// predictors trained with the bucketised size distribution appended to the
// base features vs. base features only, compared by mean order-prediction
// accuracy (1% proximity) on the given records.
func AblationPredictorFeatures(sc Scale, test []*core.TraceRecord) (*Report, error) {
	c, err := CachedCorpus(sc, "ohr")
	if err != nil {
		return nil, err
	}
	if test == nil {
		test = c.Dataset.Records
	}
	rep := &Report{
		Title:  "Ablation: predictor features with vs without size distribution",
		Header: []string{"features", "mean order acc (1% prox)"},
	}
	for _, variant := range []struct {
		name string
		noSD bool
	}{{"base + size distribution", false}, {"base only", true}} {
		m, err := core.Train(c.Dataset, core.TrainConfig{
			NumClusters:        sc.NumClusters,
			ThetaPct:           sc.ThetaPct,
			Seed:               sc.Seed,
			NoSizeDistribution: variant.noSD,
		})
		if err != nil {
			return nil, err
		}
		acc, err := meanOrderAccuracy(m, test, 1)
		if err != nil {
			return nil, err
		}
		rep.AddRow(variant.name, f4(acc))
	}
	rep.AddNote("paper (§4.1) claims the size distribution sharpens estimates; with few training traces the extra inputs can overfit instead")
	return rep, nil
}

// meanOrderAccuracy averages order-prediction accuracy over all trained
// pairs at the given proximity (percent).
func meanOrderAccuracy(m *core.Model, test []*core.TraceRecord, proximity float64) (float64, error) {
	rep, err := Fig5cPredictorAccuracy(m, test, []float64{proximity})
	if err != nil {
		return 0, err
	}
	if len(rep.Rows) == 0 {
		return 0, nil
	}
	return parseFloat(rep.Rows[0][1]), nil
}

func parseFloat(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}
