package exp

import (
	"strings"
	"testing"

	"darwin/internal/lb"
)

// TestClusterRecovery is the acceptance bar: after node 0 drains mid-flood,
// cluster OHR recovers to >= 90% of its pre-drain level, peer fills and
// adaptive replication are visibly at work, and the drained node takes no
// traffic after the boundary.
func TestClusterRecovery(t *testing.T) {
	cc := DefaultClusterConfig()
	cr, err := RunCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	if got := cr.Recovery(); got < 0.9 {
		t.Fatalf("cluster OHR recovery %.3f < 0.9 (pre-drain %.4f, final %.4f)",
			got, cr.PreDrainOHR, cr.FinalOHR)
	}
	if len(cr.Windows) != (cc.TraceLen+cc.WindowLen-1)/cc.WindowLen {
		t.Fatalf("got %d windows for %d requests / %d", len(cr.Windows), cc.TraceLen, cc.WindowLen)
	}
	var fills, maxR int
	for _, w := range cr.Windows {
		fills += w.peerFills
		if w.maxFactor > maxR {
			maxR = w.maxFactor
		}
	}
	if fills == 0 {
		t.Fatal("no peer fills across the whole run")
	}
	if maxR < 2 {
		t.Fatalf("adaptive replication never widened an object (maxR=%d)", maxR)
	}
	if maxR > lb.MaxReplicas {
		t.Fatalf("maxR=%d exceeds MaxReplicas", maxR)
	}

	// The drain window itself must show in-request failover; afterwards the
	// drained node goes silent.
	dw := cr.DrainWindow
	if cr.Windows[dw].failovers == 0 {
		t.Fatalf("window %d has no failovers despite a mid-window drain", dw)
	}
	total := 0
	for w := dw + 1; w < len(cr.Windows); w++ {
		if got := cr.Windows[w].nodeReqs[cc.DrainNode]; got != 0 {
			t.Fatalf("window %d routed %d requests to the drained node", w, got)
		}
		total += cr.Windows[w].reqs
	}
	if total == 0 {
		t.Fatal("no post-drain windows: DrainAt too close to trace end")
	}
}

// TestClusterReportDeterministic pins byte-reproducibility: two full runs of
// the report render identically (internal/exp is under the determinism lint
// rule, and this experiment takes no wall-clock carve-outs).
func TestClusterReportDeterministic(t *testing.T) {
	cc := DefaultClusterConfig()
	a, err := ClusterReport(cc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterReport(cc)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("cluster report not byte-reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	for _, want := range []string{"recovery", "peerfill", "failover", "maxR"} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, a)
		}
	}
}
