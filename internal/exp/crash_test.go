package exp

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"darwin/internal/diskcache"
)

func TestCrashRecoveryReport(t *testing.T) {
	cc := DefaultCrashConfig()
	cc.Sync = diskcache.SyncAlways // nothing in flight at the simulated kill
	cc.OutFile = filepath.Join(t.TempDir(), "crash.tsv")
	rep, err := CrashRecoveryReport(cc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	recovered, cold := rep.Rows[0], rep.Rows[1]
	if recovered[0] != "recovered" || cold[0] != "cold-start" {
		t.Fatalf("arm order: %v / %v", recovered[0], cold[0])
	}

	const recMSCol, objsCol, firstCol = 1, 2, 5
	ms, err := strconv.ParseFloat(recovered[recMSCol], 64)
	if err != nil || ms < 0 {
		t.Fatalf("recovery-ms = %q", recovered[recMSCol])
	}
	objs, err := strconv.Atoi(recovered[objsCol])
	if err != nil || objs == 0 {
		t.Fatalf("dc-objs-recovered = %q, want > 0", recovered[objsCol])
	}
	if cold[objsCol] != "-" {
		t.Fatalf("cold arm recovered objects = %q, want -", cold[objsCol])
	}

	// The recovered arm starts with a full DC; the cold arm re-earns it. The
	// first post-crash window must show the gap.
	rf, err := strconv.ParseFloat(recovered[firstCol], 64)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := strconv.ParseFloat(cold[firstCol], 64)
	if err != nil {
		t.Fatal(err)
	}
	if rf <= cf {
		t.Errorf("first-window total OHR: recovered %.4f <= cold %.4f", rf, cf)
	}

	out, err := os.ReadFile(cc.OutFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[0] != "request\trecovered_tohr\tcold-start_tohr" {
		t.Fatalf("trajectory header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("trajectory has no data rows")
	}
}

func TestCrashRecoveryReportRejectsBadConfig(t *testing.T) {
	for _, mod := range []func(*CrashConfig){
		func(c *CrashConfig) { c.Window = 0 },
		func(c *CrashConfig) { c.CrashFrac = 0 },
		func(c *CrashConfig) { c.CrashFrac = 1.5 },
	} {
		cc := DefaultCrashConfig()
		mod(&cc)
		if _, err := CrashRecoveryReport(cc); err == nil {
			t.Errorf("config %+v accepted, want error", cc)
		}
	}
}
