package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Trace {
	return &Trace{
		Name: "sample",
		Requests: []Request{
			{ID: 1, Size: 100, Time: 0},
			{ID: 2, Size: 200, Time: 10},
			{ID: 1, Size: 100, Time: 20},
			{ID: 3, Size: 50, Time: 30},
		},
	}
}

func TestWindowBounds(t *testing.T) {
	tr := sample()
	w := tr.Window(1, 3)
	if w.Len() != 2 || w.Requests[0].ID != 2 || w.Requests[1].ID != 1 {
		t.Fatalf("Window(1,3) = %+v", w.Requests)
	}
	if tr.Window(-5, 100).Len() != 4 {
		t.Fatal("clamped window should cover whole trace")
	}
	if tr.Window(3, 1).Len() != 0 {
		t.Fatal("inverted window should be empty")
	}
}

func TestConcatShiftsTime(t *testing.T) {
	a := &Trace{Requests: []Request{{ID: 1, Size: 1, Time: 0}, {ID: 2, Size: 1, Time: 5}}}
	b := &Trace{Requests: []Request{{ID: 3, Size: 1, Time: 0}, {ID: 4, Size: 1, Time: 7}}}
	c := Concat("joined", a, b)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	times := []int64{0, 5, 6, 13}
	for i, want := range times {
		if c.Requests[i].Time != want {
			t.Errorf("req %d time = %d, want %d", i, c.Requests[i].Time, want)
		}
	}
	// Originals untouched.
	if b.Requests[0].Time != 0 {
		t.Fatal("Concat mutated input trace")
	}
}

func TestConcatMonotoneProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		var parts []*Trace
		for _, l := range lens {
			n := int(l % 5)
			tr := &Trace{}
			for i := 0; i < n; i++ {
				tr.Requests = append(tr.Requests, Request{ID: uint64(i), Size: 1, Time: int64(i * 3)})
			}
			parts = append(parts, tr)
		}
		joined := Concat("j", parts...)
		for i := 1; i < joined.Len(); i++ {
			if joined.Requests[i].Time < joined.Requests[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	tr := sample()
	scaled := tr.Scale(2, 0.2, 1)
	if scaled.Len() != tr.Len() {
		t.Fatal("Scale changed length")
	}
	// Per-object consistency: requests 0 and 2 are the same object.
	if scaled.Requests[0].Size != scaled.Requests[2].Size {
		t.Fatal("Scale must perturb per-object, not per-request")
	}
	for i, r := range scaled.Requests {
		orig := float64(tr.Requests[i].Size)
		if f := float64(r.Size); f < orig*2*0.79 || f > orig*2*1.21 {
			t.Fatalf("req %d scaled size %d outside 2x±20%% of %v", i, r.Size, orig)
		}
	}
	// Deterministic for the same seed.
	again := tr.Scale(2, 0.2, 1)
	for i := range scaled.Requests {
		if scaled.Requests[i] != again.Requests[i] {
			t.Fatal("Scale not deterministic for fixed seed")
		}
	}
}

func TestScaleMinimumSize(t *testing.T) {
	tr := &Trace{Requests: []Request{{ID: 1, Size: 1, Time: 0}}}
	s := tr.Scale(0.0001, 0, 1)
	if s.Requests[0].Size < 1 {
		t.Fatal("scaled size must stay >= 1")
	}
}

func TestSummarize(t *testing.T) {
	s := sample().Summarize()
	if s.Requests != 4 || s.UniqueObjects != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.OneHitWonders != 2 { // objects 2 and 3
		t.Fatalf("OneHitWonders = %d", s.OneHitWonders)
	}
	if s.TotalBytes != 450 || s.UniqueBytes != 350 {
		t.Fatalf("bytes = %d/%d", s.TotalBytes, s.UniqueBytes)
	}
	if s.MeanSize != 112.5 {
		t.Fatalf("MeanSize = %v", s.MeanSize)
	}
	if s.DurationUS != 30 {
		t.Fatalf("DurationUS = %d", s.DurationUS)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := (&Trace{}).Summarize()
	if s.Requests != 0 || s.MeanSize != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round-trip length %d != %d", got.Len(), tr.Len())
	}
	for i := range tr.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("req %d = %+v, want %+v", i, got.Requests[i], tr.Requests[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 10 0\n  \n2 20 5\n"
	tr, err := Read(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{"1 10", "a 10 0", "1 -5 0", "1 10 b", "1 2 3 4"}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in), "x"); !errors.Is(err, ErrBadRecord) {
			t.Errorf("input %q: err = %v, want ErrBadRecord", in, err)
		}
	}
}
