// Package trace defines the CDN request-trace model used throughout the
// Darwin reproduction. A trace is a time-ordered sequence of requests, each
// identified by the triple (object ID, object size, timestamp) exactly as
// described in Appendix A.1 of the paper.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Request is a single client request observed at a CDN server.
type Request struct {
	// ID identifies the requested object. Requests with equal IDs refer to
	// the same object.
	ID uint64
	// Size is the object size in bytes.
	Size int64
	// Time is the request arrival time in microseconds since trace start.
	Time int64
}

// Trace is an ordered request sequence.
type Trace struct {
	Requests []Request
	// Name labels the trace (e.g. "download-70:30-seed4") in reports.
	Name string
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// Window returns a sub-trace view of requests [lo, hi). Bounds are clamped.
// The returned trace shares backing storage with t.
func (t *Trace) Window(lo, hi int) *Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Requests) {
		hi = len(t.Requests)
	}
	if lo > hi {
		lo = hi
	}
	return &Trace{
		Requests: t.Requests[lo:hi],
		Name:     fmt.Sprintf("%s[%d:%d]", t.Name, lo, hi),
	}
}

// Concat joins traces end-to-end, shifting timestamps so that each segment
// begins right after the previous one ends. It models the traffic-mix shifts
// a CDN load balancer imposes on one server (§2.1).
func Concat(name string, traces ...*Trace) *Trace {
	var total int
	for _, tr := range traces {
		total += tr.Len()
	}
	out := &Trace{Name: name, Requests: make([]Request, 0, total)}
	var offset int64
	for _, tr := range traces {
		if len(tr.Requests) == 0 {
			continue
		}
		var last int64
		for _, r := range tr.Requests {
			r.Time += offset
			out.Requests = append(out.Requests, r)
			last = r.Time
		}
		offset = last + 1
	}
	return out
}

// Scale returns a copy of t with every object size multiplied by factor and
// then perturbed uniformly by ±perturb (e.g. 0.2 for ±20%). This mirrors the
// paper's construction of traces for larger cache sizes (§6, "CDN Traces"):
// scale object sizes by 2x/5x and perturb each object's size randomly by
// ±20%. Perturbation is per-object (consistent across requests for the same
// ID) and deterministic for a given seed.
func (t *Trace) Scale(factor float64, perturb float64, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	perObj := make(map[uint64]float64)
	out := &Trace{
		Name:     fmt.Sprintf("%s-x%.1f", t.Name, factor),
		Requests: make([]Request, len(t.Requests)),
	}
	for i, r := range t.Requests {
		m, ok := perObj[r.ID]
		if !ok {
			m = 1 + (rng.Float64()*2-1)*perturb
			perObj[r.ID] = m
		}
		size := int64(float64(r.Size) * factor * m)
		if size < 1 {
			size = 1
		}
		out.Requests[i] = Request{ID: r.ID, Size: size, Time: r.Time}
	}
	return out
}

// Stats summarises a trace.
type Stats struct {
	Requests      int
	UniqueObjects int
	TotalBytes    int64
	UniqueBytes   int64
	OneHitWonders int     // objects requested exactly once
	MeanSize      float64 // mean requested size (per request)
	DurationUS    int64
}

// Summarize computes summary statistics for t.
func (t *Trace) Summarize() Stats {
	counts := make(map[uint64]int, len(t.Requests)/2)
	sizes := make(map[uint64]int64, len(t.Requests)/2)
	var s Stats
	s.Requests = len(t.Requests)
	for _, r := range t.Requests {
		counts[r.ID]++
		sizes[r.ID] = r.Size
		s.TotalBytes += r.Size
	}
	s.UniqueObjects = len(counts)
	for id, c := range counts {
		if c == 1 {
			s.OneHitWonders++
		}
		s.UniqueBytes += sizes[id]
	}
	if s.Requests > 0 {
		s.MeanSize = float64(s.TotalBytes) / float64(s.Requests)
		s.DurationUS = t.Requests[len(t.Requests)-1].Time - t.Requests[0].Time
	}
	return s
}

// Write encodes t in the on-disk format: one "id size time" line per request.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", r.ID, r.Size, r.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrBadRecord reports a malformed trace line.
var ErrBadRecord = errors.New("trace: malformed record")

// Read decodes a trace in the "id size time" line format produced by Write.
func Read(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	out := &Trace{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadRecord, lineNo, line)
		}
		id, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d id: %v", ErrBadRecord, lineNo, err)
		}
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("%w: line %d size: %q", ErrBadRecord, lineNo, fields[1])
		}
		ts, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d time: %v", ErrBadRecord, lineNo, err)
		}
		out.Requests = append(out.Requests, Request{ID: id, Size: size, Time: ts})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
