package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachFillsAllSlotsInOrder(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16} {
		out := make([]int, 1000)
		if err := ForEach(len(out), p, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("p=%d: out[%d] = %d", p, i, v)
			}
		}
	}
}

func TestDoAggregatesAllErrors(t *testing.T) {
	wantFail := map[int]bool{3: true, 7: true, 42: true}
	err := ForEach(100, 8, func(i int) error {
		if wantFail[i] {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	var errs *Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error type %T, want *Errors", err)
	}
	if len(errs.Tasks) != len(wantFail) {
		t.Fatalf("got %d failures, want %d: %v", len(errs.Tasks), len(wantFail), err)
	}
	// Sorted by index.
	for k := 1; k < len(errs.Tasks); k++ {
		if errs.Tasks[k-1].Index >= errs.Tasks[k].Index {
			t.Fatalf("failures not sorted: %v", err)
		}
	}
	for _, te := range errs.Tasks {
		if !wantFail[te.Index] {
			t.Fatalf("unexpected failing index %d", te.Index)
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const p = 3
	var cur, max atomic.Int64
	err := ForEach(50, p, func(i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > p {
		t.Fatalf("observed %d concurrent tasks, bound is %d", got, p)
	}
}

func TestDoCancellationSkipsUndispatched(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Do(ctx, 100, 2, func(ctx context.Context, i int) error {
		if i == 0 {
			cancel()
			return nil
		}
		ran.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("want aggregated context errors, got nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	if ran.Load() == 99 {
		t.Fatal("cancellation had no effect: every task ran")
	}
}

func TestSerialPathRunsInline(t *testing.T) {
	// With parallelism 1 tasks run on the calling goroutine in index order.
	var order []int
	if err := ForEach(10, 1, func(i int) error {
		order = append(order, i) // safe only if inline
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; serial path must preserve index order", i, v)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 257)
	for i := range in {
		in[i] = i
	}
	out, err := Map(in, 8, func(i, v int) (string, error) {
		return fmt.Sprintf("v%d", v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if want := fmt.Sprintf("v%d", i); s != want {
			t.Fatalf("out[%d] = %q, want %q", i, s, want)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map([]int{1, 2, 3}, 2, func(i, v int) (int, error) {
		if v == 2 {
			return 0, errors.New("nope")
		}
		return v, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestSetDefault(t *testing.T) {
	prev := SetDefault(3)
	defer SetDefault(prev)
	if Default() != 3 {
		t.Fatalf("Default() = %d, want 3", Default())
	}
	SetDefault(0)
	if Default() != runtime.NumCPU() {
		t.Fatalf("Default() = %d, want NumCPU", Default())
	}
}

func TestZeroTasks(t *testing.T) {
	if err := ForEach(0, 4, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
