// Package par is the shared parallel evaluation engine behind Darwin's
// experiment sweeps. The paper's evaluation is embarrassingly parallel — 100
// mix configurations × train/test seeds × a 25-expert grid × baselines — and
// every task is an independent, deterministic replay over an immutable trace.
// This package turns that shape into a small contract:
//
//   - bounded concurrency (a worker pool of at most P goroutines);
//   - deterministic result ordering (callers write results into slot i, so
//     output is bit-identical to the serial loop regardless of scheduling);
//   - aggregated errors (every failing task is reported with its index, not
//     just the first — a 200-task sweep tells you all 7 failures at once);
//   - context cancellation (undispatched tasks are skipped once ctx fires).
//
// The process-wide default parallelism is runtime.NumCPU() and is plumbed to
// the `-parallelism` flag of cmd/experiments and cmd/darwin-sim via
// SetDefault. Parallelism 1 runs tasks inline on the calling goroutine, which
// is the reference serial path the golden equivalence tests compare against.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// defaultParallelism is the process-wide worker-pool width used when a call
// site passes parallelism <= 0.
var defaultParallelism atomic.Int64

func init() { defaultParallelism.Store(int64(runtime.NumCPU())) }

// SetDefault sets the process-wide default parallelism; n <= 0 restores
// runtime.NumCPU(). It returns the previous value so tests can restore it.
func SetDefault(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return int(defaultParallelism.Swap(int64(n)))
}

// Default returns the process-wide default parallelism.
func Default() int { return int(defaultParallelism.Load()) }

// TaskError records one failed task of a sweep.
type TaskError struct {
	// Index is the task's position in the sweep.
	Index int
	// Err is the task's error.
	Err error
}

// Error implements error.
func (e *TaskError) Error() string { return fmt.Sprintf("task %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// Errors aggregates every failed task of a sweep, ordered by task index.
type Errors struct {
	// Tasks holds one entry per failed task, sorted by Index.
	Tasks []*TaskError
}

// Error implements error, listing every failure.
func (e *Errors) Error() string {
	if len(e.Tasks) == 1 {
		return e.Tasks[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d tasks failed:", len(e.Tasks))
	for _, t := range e.Tasks {
		b.WriteString("\n\t")
		b.WriteString(t.Error())
	}
	return b.String()
}

// Unwrap exposes the task errors to errors.Is/As (multi-error form).
func (e *Errors) Unwrap() []error {
	out := make([]error, len(e.Tasks))
	for i, t := range e.Tasks {
		out[i] = t
	}
	return out
}

// Do runs fn(ctx, i) for every i in [0, n) with at most parallelism
// concurrent invocations (parallelism <= 0 selects Default()). All tasks run
// even if some fail; the returned error is nil or an *Errors aggregating
// every failure in index order. When ctx is cancelled, tasks not yet started
// fail with ctx.Err(); already-running tasks are left to finish.
//
// fn must confine its writes to per-index state (e.g. out[i]) — Do provides
// the memory barrier (all task effects happen-before Do returns).
func Do(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = Default()
	}
	if parallelism > n {
		parallelism = n
	}

	var (
		mu    sync.Mutex
		fails []*TaskError
	)
	record := func(i int, err error) {
		if err == nil {
			return
		}
		mu.Lock()
		fails = append(fails, &TaskError{Index: i, Err: err})
		mu.Unlock()
	}

	if parallelism == 1 {
		// Reference serial path: inline, in order, on the calling goroutine.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				record(i, err)
				continue
			}
			record(i, fn(ctx, i))
		}
		return collect(fails)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					record(i, err)
					continue
				}
				record(i, fn(ctx, i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return collect(fails)
}

// ForEach is Do without cancellation: fn(i) for every i in [0, n) under the
// given parallelism (<= 0 selects Default()).
func ForEach(n, parallelism int, fn func(i int) error) error {
	return Do(context.Background(), n, parallelism, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// Map applies fn to every element of in under the given parallelism and
// returns the results in input order. A failing element leaves the zero value
// in its slot; the error aggregates every failure.
func Map[S, T any](in []S, parallelism int, fn func(i int, v S) (T, error)) ([]T, error) {
	out := make([]T, len(in))
	err := ForEach(len(in), parallelism, func(i int) error {
		v, err := fn(i, in[i])
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// collect sorts the failures by index and boxes them, returning untyped nil
// for a clean sweep.
func collect(fails []*TaskError) error {
	if len(fails) == 0 {
		return nil
	}
	sort.Slice(fails, func(a, b int) bool { return fails[a].Index < fails[b].Index })
	return &Errors{Tasks: fails}
}
