package baselines

import (
	"fmt"

	"darwin/internal/cache"
	"darwin/internal/trace"
)

// TinyLFU is an extra admission baseline beyond the paper's comparison set
// (cited there as a frequency-admission scheme [17], Einziger et al., ACM
// ToS'17): a candidate object is admitted into the HOC only if its observed
// request frequency exceeds that of the object the eviction policy would
// displace. Frequencies come from a window-reset counter (the reproduction's
// stand-in for TinyLFU's halving sketch); admission is evaluated on every
// request, including the miss path, like AdaptSize.
type TinyLFU struct {
	hier    *cache.Hierarchy
	tracker *cache.ExactTracker
	window  int
	n       int
}

// TinyLFUConfig configures the baseline.
type TinyLFUConfig struct {
	// Window is the frequency-reset period in requests (TinyLFU's aging).
	Window int
	// Eval sizes the cache.
	Eval cache.EvalConfig
}

// NewTinyLFU builds the baseline.
func NewTinyLFU(cfg TinyLFUConfig) (*TinyLFU, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("baselines: tinylfu window must be > 0")
	}
	tracker := cache.NewExactTracker()
	h, err := cache.New(cache.Config{
		HOCBytes:    cfg.Eval.HOCBytes,
		DCBytes:     cfg.Eval.DCBytes,
		HOCEviction: cfg.Eval.HOCEviction,
		DCEviction:  cfg.Eval.DCEviction,
		Tracker:     tracker,
	})
	if err != nil {
		return nil, err
	}
	t := &TinyLFU{hier: h, tracker: tracker, window: cfg.Window}
	h.SetAdmission(func(count int, size int64, _ int64) bool {
		vid, _, ok := h.HOCVictim()
		if !ok {
			return true // empty HOC: admit freely
		}
		// Admit only when the candidate is (strictly) more frequent than the
		// incumbent victim — TinyLFU's core comparison.
		return count > t.tracker.Count(vid)
	})
	h.SetAdmitOnMiss(true)
	return t, nil
}

// Name implements Server.
func (t *TinyLFU) Name() string { return "tinylfu" }

// Serve implements Server.
func (t *TinyLFU) Serve(r trace.Request) cache.Result {
	res := t.hier.Serve(r)
	t.n++
	if t.n >= t.window {
		// Window aging: reset the frequency view (halving in real TinyLFU).
		t.tracker.Reset()
		t.n = 0
	}
	return res
}

// Metrics implements Server.
func (t *TinyLFU) Metrics() cache.Metrics { return t.hier.Metrics() }

// ResetMetrics implements Server.
func (t *TinyLFU) ResetMetrics() { t.hier.ResetMetrics() }
