package baselines

import (
	"fmt"

	"darwin/internal/cache"
	"darwin/internal/stats"
	"darwin/internal/trace"
)

// Percentile re-estimates the empirical distributions of object request
// frequencies and request sizes over N-request windows and, for the next
// window, deploys the grid expert whose (f, s) lies closest to the chosen
// frequency/size percentiles (paper §6: 60th and 90th, N = 100K requests at
// paper scale).
type Percentile struct {
	hier    *cache.Hierarchy
	experts []cache.Expert
	window  int
	fPct    float64
	sPct    float64

	n      int
	counts map[uint64]int
	sizes  []float64
}

// PercentileConfig configures the baseline.
type PercentileConfig struct {
	// Experts is the grid to choose from.
	Experts []cache.Expert
	// Window is N, the re-estimation period in requests.
	Window int
	// FreqPct and SizePct are the deployed percentiles (defaults 60, 90).
	FreqPct, SizePct float64
	// Eval sizes the cache.
	Eval cache.EvalConfig
}

// NewPercentile builds the baseline, deploying Experts[0] initially.
func NewPercentile(cfg PercentileConfig) (*Percentile, error) {
	if len(cfg.Experts) == 0 {
		return nil, fmt.Errorf("baselines: percentile needs experts")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("baselines: percentile window must be > 0")
	}
	if cfg.FreqPct <= 0 {
		cfg.FreqPct = 60
	}
	if cfg.SizePct <= 0 {
		cfg.SizePct = 90
	}
	h, err := newHierarchy(cfg.Eval, cfg.Experts[0])
	if err != nil {
		return nil, err
	}
	return &Percentile{
		hier:    h,
		experts: cfg.Experts,
		window:  cfg.Window,
		fPct:    cfg.FreqPct,
		sPct:    cfg.SizePct,
		counts:  make(map[uint64]int),
	}, nil
}

// Name implements Server.
func (p *Percentile) Name() string { return "percentile" }

// Serve implements Server.
func (p *Percentile) Serve(r trace.Request) cache.Result {
	res := p.hier.Serve(r)
	p.counts[r.ID]++
	p.sizes = append(p.sizes, float64(r.Size))
	p.n++
	if p.n >= p.window {
		p.redeploy()
	}
	return res
}

func (p *Percentile) redeploy() {
	freqs := make([]float64, 0, len(p.counts))
	for _, c := range p.counts {
		freqs = append(freqs, float64(c))
	}
	f := stats.Percentile(freqs, p.fPct)
	s := stats.Percentile(p.sizes, p.sPct)
	p.hier.SetExpert(cache.Nearest(p.experts, f, s))
	p.n = 0
	p.counts = make(map[uint64]int)
	p.sizes = p.sizes[:0]
}

// Metrics implements Server.
func (p *Percentile) Metrics() cache.Metrics { return p.hier.Metrics() }

// ResetMetrics implements Server.
func (p *Percentile) ResetMetrics() { p.hier.ResetMetrics() }

// Expert returns the currently deployed expert (for tests).
func (p *Percentile) Expert() cache.Expert { return p.hier.Expert() }
