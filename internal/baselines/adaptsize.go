package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"darwin/internal/cache"
	"darwin/internal/trace"
)

// AdaptSize reproduces Berger et al.'s AdaptSize (NSDI'17) as the paper
// describes it (§3.2.1): HOC admission is probabilistic in the object size,
// admit with probability e^(−size/c), and the size parameter c is re-tuned
// every window by maximising the OHR predicted by a Markov (Che
// approximation) model of the cache over the window's observed object mix.
// Frequency is deliberately ignored — that is the limitation Darwin exploits.
type AdaptSize struct {
	hier *cache.Hierarchy
	cfg  AdaptSizeConfig
	rng  *rand.Rand

	c      float64 // current size parameter
	n      int
	counts map[uint64]int
	osize  map[uint64]int64
}

// cheObj is one observed object in the Che-approximation model: its request
// rate per request-slot and its size in bytes.
type cheObj struct {
	lambda float64
	size   float64
}

// AdaptSizeConfig configures the baseline.
type AdaptSizeConfig struct {
	// Window is the re-tuning period in requests.
	Window int
	// Candidates are the candidate values of c in bytes; empty selects a
	// geometric grid from 1 KB to 1 MB.
	Candidates []float64
	// InitialC is the starting size parameter (default 64 KB).
	InitialC float64
	// Eval sizes the cache.
	Eval cache.EvalConfig
	// Seed drives the admission coin flips.
	Seed int64
}

// NewAdaptSize builds the baseline.
func NewAdaptSize(cfg AdaptSizeConfig) (*AdaptSize, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("baselines: adaptsize window must be > 0")
	}
	if cfg.InitialC <= 0 {
		cfg.InitialC = 64 << 10
	}
	if len(cfg.Candidates) == 0 {
		for c := 1024.0; c <= 1<<20; c *= 2 {
			cfg.Candidates = append(cfg.Candidates, c)
		}
	}
	sort.Float64s(cfg.Candidates)
	// The expert thresholds are irrelevant once the admission override is
	// installed; use a permissive placeholder.
	h, err := newHierarchy(cfg.Eval, cache.Expert{Freq: 0, MaxSize: math.MaxInt64})
	if err != nil {
		return nil, err
	}
	as := &AdaptSize{
		hier:   h,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		c:      cfg.InitialC,
		counts: make(map[uint64]int),
		osize:  make(map[uint64]int64),
	}
	h.SetAdmission(func(_ int, size int64, _ int64) bool {
		return as.rng.Float64() < math.Exp(-float64(size)/as.c)
	})
	// AdaptSize decides admission for every requested object, including on
	// the miss path after an origin fetch — this is how objects with low
	// popularity can pollute its HOC (§3.2.1).
	h.SetAdmitOnMiss(true)
	return as, nil
}

// Name implements Server.
func (as *AdaptSize) Name() string { return "adaptsize" }

// Serve implements Server.
func (as *AdaptSize) Serve(r trace.Request) cache.Result {
	res := as.hier.Serve(r)
	as.counts[r.ID]++
	as.osize[r.ID] = r.Size
	as.n++
	if as.n >= as.cfg.Window {
		as.retune()
	}
	return res
}

// retune picks the candidate c maximising the Che-approximation OHR model
// over the window's observed objects.
func (as *AdaptSize) retune() {
	objs := make([]cheObj, 0, len(as.counts))
	total := float64(as.n)
	for id, cnt := range as.counts {
		objs = append(objs, cheObj{lambda: float64(cnt) / total, size: float64(as.osize[id])})
	}
	bestC, bestOHR := as.c, -1.0
	for _, cand := range as.cfg.Candidates {
		ohr := modelOHR(objs, cand, float64(as.cfg.Eval.HOCBytes))
		if ohr > bestOHR {
			bestC, bestOHR = cand, ohr
		}
	}
	as.c = bestC
	as.n = 0
	as.counts = make(map[uint64]int)
	as.osize = make(map[uint64]int64)
}

// modelOHR evaluates the Che-approximation hit rate for admission parameter
// c: each object is admitted with probability p_i = e^(−size_i/c) and, once
// admitted, is resident with probability 1 − e^(−λ_i·T), where the
// characteristic time T (in request slots) solves the capacity constraint
// Σ_i size_i · p_i · (1 − e^(−λ_i·T)) = cacheBytes.
func modelOHR(objs []cheObj, c, cacheBytes float64) float64 {
	if len(objs) == 0 {
		return 0
	}
	occupancy := func(T float64) float64 {
		var occ float64
		for _, o := range objs {
			p := math.Exp(-o.size / c)
			occ += o.size * p * (1 - math.Exp(-o.lambda*T))
		}
		return occ
	}
	// If even T→∞ does not fill the cache, every admitted object is resident.
	const tMax = 1e12
	if occupancy(tMax) <= cacheBytes {
		return hitRate(objs, c, tMax)
	}
	lo, hi := 0.0, tMax
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if occupancy(mid) > cacheBytes {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hitRate(objs, c, lo)
}

func hitRate(objs []cheObj, c, T float64) float64 {
	var hit, total float64
	for _, o := range objs {
		p := math.Exp(-o.size / c)
		hit += o.lambda * p * (1 - math.Exp(-o.lambda*T))
		total += o.lambda
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

// C returns the current size parameter (for tests).
func (as *AdaptSize) C() float64 { return as.c }

// Metrics implements Server.
func (as *AdaptSize) Metrics() cache.Metrics { return as.hier.Metrics() }

// ResetMetrics implements Server.
func (as *AdaptSize) ResetMetrics() { as.hier.ResetMetrics() }
