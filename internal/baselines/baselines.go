// Package baselines implements every cache-management scheme the Darwin
// paper compares against (§6 "Baselines"):
//
//   - StaticExpert — a fixed (f, s) admission threshold pair;
//   - Percentile — deploys the expert nearest the 60th/90th percentiles of
//     the empirical frequency/size distributions, re-estimated every N
//     requests;
//   - HillClimbing — runs two shadow caches at (f+Δf, s) and (f, s+Δs),
//     switches the main cache to the best of the three every N requests, and
//     flips the probe directions when the main cache wins;
//   - AdaptSize — Berger et al. (NSDI'17): probabilistic size-threshold
//     admission e^(−size/c) with c tuned by a Che-approximation Markov model
//     over a sliding window of observed objects;
//   - DirectMapping — a neural classifier from warm-up traffic features
//     straight to the predicted best expert (§4's rejected design).
//
// All baselines implement the Server interface so the experiment harness can
// drive them interchangeably with Darwin's controller.
package baselines

import (
	"darwin/internal/cache"
	"darwin/internal/trace"
)

// Server is a cache server fed one request at a time.
type Server interface {
	// Name identifies the scheme in reports.
	Name() string
	// Serve processes one request.
	Serve(r trace.Request) cache.Result
	// Metrics returns accumulated cache metrics.
	Metrics() cache.Metrics
	// ResetMetrics clears counters without disturbing cache state (warm-up
	// exclusion).
	ResetMetrics()
}

// Play drives a full trace through a server, resetting metrics after the
// leading warmupFrac of requests, and returns the post-warm-up metrics.
func Play(s Server, tr *trace.Trace, warmupFrac float64) cache.Metrics {
	warm := int(float64(tr.Len()) * warmupFrac)
	for i, r := range tr.Requests {
		if i == warm {
			s.ResetMetrics()
		}
		s.Serve(r)
	}
	return s.Metrics()
}

// newHierarchy builds a hierarchy from an eval config and initial expert.
func newHierarchy(cfg cache.EvalConfig, e cache.Expert) (*cache.Hierarchy, error) {
	return cache.New(cache.Config{
		HOCBytes:    cfg.HOCBytes,
		DCBytes:     cfg.DCBytes,
		HOCEviction: cfg.HOCEviction,
		DCEviction:  cfg.DCEviction,
		Expert:      e,
		DCLog:       cfg.DCLog,
	})
}

// Static is the fixed-expert baseline. It runs over any cache.Engine: the
// serial Hierarchy for trace replay (NewStatic) or a Sharded engine for the
// concurrent proxy data plane (NewStaticSharded). The other baselines keep
// their serial single-hierarchy form — behind the proxy they are wrapped in
// its global serializing adapter, which is the paper's original
// one-lock-per-HOC arrangement.
type Static struct {
	eng  cache.Engine
	name string
}

// NewStatic builds a static-expert server over a serial hierarchy.
func NewStatic(e cache.Expert, cfg cache.EvalConfig) (*Static, error) {
	h, err := newHierarchy(cfg, e)
	if err != nil {
		return nil, err
	}
	return &Static{eng: h, name: e.String()}, nil
}

// NewStaticSharded builds a static-expert server over a sharded engine with
// the given shard count — safe for concurrent callers, for the proxy data
// plane. shards <= 1 still builds a (single-shard) Sharded engine so the
// result always advertises Concurrent() == true.
func NewStaticSharded(e cache.Expert, cfg cache.EvalConfig, shards int) (*Static, error) {
	s, err := cache.NewSharded(cache.Config{
		HOCBytes:    cfg.HOCBytes,
		DCBytes:     cfg.DCBytes,
		HOCEviction: cfg.HOCEviction,
		DCEviction:  cfg.DCEviction,
		Expert:      e,
		DCLog:       cfg.DCLog,
	}, shards)
	if err != nil {
		return nil, err
	}
	return &Static{eng: s, name: e.String()}, nil
}

// Name implements Server.
func (s *Static) Name() string { return s.name }

// Serve implements Server.
func (s *Static) Serve(r trace.Request) cache.Result { return s.eng.Serve(r) }

// Lookup probes residency without mutating cache state (server.Lookuper).
func (s *Static) Lookup(id uint64) cache.Result { return s.eng.Lookup(id) }

// SyncMetrics forces publication of any batched shard counters so a
// following Metrics read is exact, not trailing by up to a publication batch.
// No-op for engines without deferred publication.
func (s *Static) SyncMetrics() {
	if e, ok := s.eng.(interface{ SyncMetrics() }); ok {
		e.SyncMetrics()
	}
}

// Metrics implements Server.
func (s *Static) Metrics() cache.Metrics { return s.eng.Metrics() }

// ResetMetrics implements Server.
func (s *Static) ResetMetrics() { s.eng.ResetMetrics() }

// Engine exposes the underlying cache engine (occupancy inspection in tests
// and reports).
func (s *Static) Engine() cache.Engine { return s.eng }

// Concurrent reports whether this server may be driven from multiple
// goroutines at once — true exactly when the underlying engine is
// concurrency-safe (built by NewStaticSharded).
func (s *Static) Concurrent() bool {
	ce, ok := s.eng.(cache.ConcurrentEngine)
	return ok && ce.Concurrent()
}
