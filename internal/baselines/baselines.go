// Package baselines implements every cache-management scheme the Darwin
// paper compares against (§6 "Baselines"):
//
//   - StaticExpert — a fixed (f, s) admission threshold pair;
//   - Percentile — deploys the expert nearest the 60th/90th percentiles of
//     the empirical frequency/size distributions, re-estimated every N
//     requests;
//   - HillClimbing — runs two shadow caches at (f+Δf, s) and (f, s+Δs),
//     switches the main cache to the best of the three every N requests, and
//     flips the probe directions when the main cache wins;
//   - AdaptSize — Berger et al. (NSDI'17): probabilistic size-threshold
//     admission e^(−size/c) with c tuned by a Che-approximation Markov model
//     over a sliding window of observed objects;
//   - DirectMapping — a neural classifier from warm-up traffic features
//     straight to the predicted best expert (§4's rejected design).
//
// All baselines implement the Server interface so the experiment harness can
// drive them interchangeably with Darwin's controller.
package baselines

import (
	"darwin/internal/cache"
	"darwin/internal/trace"
)

// Server is a cache server fed one request at a time.
type Server interface {
	// Name identifies the scheme in reports.
	Name() string
	// Serve processes one request.
	Serve(r trace.Request) cache.Result
	// Metrics returns accumulated cache metrics.
	Metrics() cache.Metrics
	// ResetMetrics clears counters without disturbing cache state (warm-up
	// exclusion).
	ResetMetrics()
}

// Play drives a full trace through a server, resetting metrics after the
// leading warmupFrac of requests, and returns the post-warm-up metrics.
func Play(s Server, tr *trace.Trace, warmupFrac float64) cache.Metrics {
	warm := int(float64(tr.Len()) * warmupFrac)
	for i, r := range tr.Requests {
		if i == warm {
			s.ResetMetrics()
		}
		s.Serve(r)
	}
	return s.Metrics()
}

// newHierarchy builds a hierarchy from an eval config and initial expert.
func newHierarchy(cfg cache.EvalConfig, e cache.Expert) (*cache.Hierarchy, error) {
	return cache.New(cache.Config{
		HOCBytes:    cfg.HOCBytes,
		DCBytes:     cfg.DCBytes,
		HOCEviction: cfg.HOCEviction,
		DCEviction:  cfg.DCEviction,
		Expert:      e,
	})
}

// Static is the fixed-expert baseline.
type Static struct {
	hier *cache.Hierarchy
	name string
}

// NewStatic builds a static-expert server.
func NewStatic(e cache.Expert, cfg cache.EvalConfig) (*Static, error) {
	h, err := newHierarchy(cfg, e)
	if err != nil {
		return nil, err
	}
	return &Static{hier: h, name: e.String()}, nil
}

// Name implements Server.
func (s *Static) Name() string { return s.name }

// Serve implements Server.
func (s *Static) Serve(r trace.Request) cache.Result { return s.hier.Serve(r) }

// Lookup probes residency without mutating cache state (server.Lookuper).
func (s *Static) Lookup(id uint64) cache.Result { return s.hier.Lookup(id) }

// Metrics implements Server.
func (s *Static) Metrics() cache.Metrics { return s.hier.Metrics() }

// ResetMetrics implements Server.
func (s *Static) ResetMetrics() { s.hier.ResetMetrics() }
