package baselines

import (
	"math"
	"testing"

	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/features"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func evalCfg() cache.EvalConfig {
	return cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1}
}

func grid() []cache.Expert {
	return cache.Grid([]int{1, 3, 5}, []int64{2 << 10, 20 << 10, 200 << 10})
}

func mixTrace(t *testing.T, pct, n int, seed int64) *trace.Trace {
	t.Helper()
	tr, err := tracegen.ImageDownloadMix(pct, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStaticMatchesEvaluate(t *testing.T) {
	tr := mixTrace(t, 50, 10000, 31)
	e := cache.Expert{Freq: 3, MaxSize: 20 << 10}
	s, err := NewStatic(e, evalCfg())
	if err != nil {
		t.Fatal(err)
	}
	got := Play(s, tr, evalCfg().WarmupFrac)
	want, err := cache.Evaluate(tr, e, evalCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Static metrics %+v != Evaluate %+v", got, want)
	}
	if s.Name() != e.String() {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestPercentileValidation(t *testing.T) {
	if _, err := NewPercentile(PercentileConfig{Window: 100, Eval: evalCfg()}); err == nil {
		t.Error("no experts accepted")
	}
	if _, err := NewPercentile(PercentileConfig{Experts: grid(), Window: 0, Eval: evalCfg()}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestPercentileRedeploys(t *testing.T) {
	p, err := NewPercentile(PercentileConfig{Experts: grid(), Window: 2000, Eval: evalCfg()})
	if err != nil {
		t.Fatal(err)
	}
	tr := mixTrace(t, 0, 6000, 32) // pure download: big objects, popular
	initial := p.Expert()
	Play(p, tr, 0)
	after := p.Expert()
	// Download traffic has large sizes; the 90th size percentile should pull
	// the deployed size threshold to the top of the grid.
	if after.MaxSize < initial.MaxSize {
		t.Fatalf("expert did not move toward larger sizes: %v -> %v", initial, after)
	}
	if after.MaxSize != 200<<10 {
		t.Fatalf("expected max size threshold for download traffic, got %v", after)
	}
}

func TestPercentileMetricsAccumulate(t *testing.T) {
	p, err := NewPercentile(PercentileConfig{Experts: grid(), Window: 1000, Eval: evalCfg()})
	if err != nil {
		t.Fatal(err)
	}
	tr := mixTrace(t, 50, 5000, 33)
	m := Play(p, tr, 0.1)
	if m.Requests != 4500 {
		t.Fatalf("Requests = %d, want 4500", m.Requests)
	}
}

func TestHillClimbingValidation(t *testing.T) {
	if _, err := NewHillClimbing(HillClimbingConfig{Window: 0, Eval: evalCfg()}); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestHillClimbingMoves(t *testing.T) {
	hc, err := NewHillClimbing(HillClimbingConfig{
		Initial: cache.Expert{Freq: 5, MaxSize: 2 << 10},
		DeltaF:  1,
		DeltaS:  10 << 10,
		Window:  2000,
		Eval:    evalCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := mixTrace(t, 0, 20000, 34) // download: wants lower f, larger s
	Play(hc, tr, 0)
	got := hc.Expert()
	start := cache.Expert{Freq: 5, MaxSize: 2 << 10}
	if got == start {
		t.Fatalf("hill climbing never moved from %v", start)
	}
	if got.MaxSize < start.MaxSize {
		t.Fatalf("expected size threshold to grow on download traffic, got %v", got)
	}
}

func TestHillClimbingFloors(t *testing.T) {
	hc, err := NewHillClimbing(HillClimbingConfig{
		Initial: cache.Expert{Freq: 1, MaxSize: 1 << 10},
		Window:  500,
		MinFreq: 1,
		MinSize: 1 << 10,
		Eval:    evalCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := mixTrace(t, 100, 5000, 35)
	Play(hc, tr, 0)
	e := hc.Expert()
	if e.Freq < 1 || e.MaxSize < 1<<10 {
		t.Fatalf("thresholds fell below floors: %v", e)
	}
}

func TestAdaptSizeValidation(t *testing.T) {
	if _, err := NewAdaptSize(AdaptSizeConfig{Window: 0, Eval: evalCfg()}); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestAdaptSizeRetunes(t *testing.T) {
	as, err := NewAdaptSize(AdaptSizeConfig{Window: 3000, Eval: evalCfg(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	initial := as.C()
	tr := mixTrace(t, 100, 10000, 36) // image: tiny objects
	Play(as, tr, 0)
	if as.C() == initial {
		t.Log("c unchanged — model considered the initial c optimal (acceptable)")
	}
	if as.C() <= 0 {
		t.Fatalf("invalid c %v", as.C())
	}
	if m := as.Metrics(); m.Requests == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestAdaptSizeAdmissionIsSizeBiased(t *testing.T) {
	// Small objects should be admitted far more often than huge ones.
	as, err := NewAdaptSize(AdaptSizeConfig{Window: 1 << 30, Eval: evalCfg(), Seed: 2, InitialC: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	serveRepeats := func(id uint64, size int64, times int) int64 {
		before := as.Metrics().HOCAdmits
		for i := 0; i < times; i++ {
			as.Serve(trace.Request{ID: id, Size: size, Time: int64(i)})
		}
		return as.Metrics().HOCAdmits - before
	}
	smallAdmits := serveRepeats(1, 1<<10, 200)
	hugeAdmits := serveRepeats(2, 1<<20, 200)
	if smallAdmits == 0 {
		t.Fatal("small object never admitted")
	}
	if hugeAdmits > smallAdmits {
		t.Fatalf("huge object admitted more often (%d) than small (%d)", hugeAdmits, smallAdmits)
	}
}

func TestModelOHRBehaviour(t *testing.T) {
	objs := []cheObj{
		{lambda: 0.4, size: 1 << 10},
		{lambda: 0.4, size: 2 << 10},
		{lambda: 0.2, size: 1 << 20},
	}
	// With c large enough to admit everything and a huge cache, OHR tends to
	// the total request mass.
	if ohr := modelOHR(objs, 1e12, 1e12); ohr < 0.95 {
		t.Fatalf("unbounded model OHR = %v", ohr)
	}
	// A small cache must do worse than a huge one.
	if modelOHR(objs, 64<<10, 1<<10) >= modelOHR(objs, 64<<10, 1<<30) {
		t.Fatal("smaller cache should have lower modeled OHR")
	}
	if modelOHR(nil, 1, 1) != 0 {
		t.Fatal("empty object set should be 0")
	}
}

func buildDirect(t *testing.T) (*DirectMapping, *core.Dataset) {
	t.Helper()
	var traces []*trace.Trace
	for _, pct := range []int{0, 50, 100} {
		for seed := int64(0); seed < 2; seed++ {
			traces = append(traces, mixTrace(t, pct, 8000, 400+seed+int64(pct)))
		}
	}
	ds, err := core.BuildDataset(traces, core.DatasetConfig{Experts: grid(), Eval: evalCfg()})
	if err != nil {
		t.Fatal(err)
	}
	net, mean, std, err := TrainDirectMapping(ds, core.OHRObjective{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := NewDirectMapping(net, mean, std, ds.Experts, ds.FeatureCfg, DirectMappingConfig{
		Warmup: 1000, Epoch: 8000, Eval: evalCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return dm, ds
}

func TestDirectMappingTrainsAndDeploys(t *testing.T) {
	dm, _ := buildDirect(t)
	tr := mixTrace(t, 100, 6000, 500)
	initial := dm.Expert()
	Play(dm, tr, 0)
	if dm.Metrics().Requests != int64(tr.Len()) {
		t.Fatal("requests not counted")
	}
	// After warm-up a prediction must have been deployed (possibly equal to
	// the initial expert, but the classifier must have run).
	if !dm.deployed {
		t.Fatalf("no deployment after %d requests (initial %v)", tr.Len(), initial)
	}
}

func TestDirectMappingInSampleAccuracy(t *testing.T) {
	dm, ds := buildDirect(t)
	correct := 0
	for _, rec := range ds.Records {
		idx := dm.net.Classify(scaleVec(rec.Extended, dm.mean, dm.std))
		if idx == ds.BestExpert(rec, core.OHRObjective{}) {
			correct++
		}
	}
	if correct < len(ds.Records)/2 {
		t.Fatalf("in-sample accuracy %d/%d too low", correct, len(ds.Records))
	}
}

func TestDirectMappingValidation(t *testing.T) {
	_, ds := buildDirect(t)
	net, mean, std, err := TrainDirectMapping(ds, core.OHRObjective{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := features.DefaultConfig()
	if _, err := NewDirectMapping(net, mean, std, ds.Experts, fcfg, DirectMappingConfig{Warmup: 0, Epoch: 10, Eval: evalCfg()}); err == nil {
		t.Error("zero warmup accepted")
	}
	if _, err := NewDirectMapping(net, mean, std, nil, fcfg, DirectMappingConfig{Warmup: 1, Epoch: 10, Eval: evalCfg()}); err == nil {
		t.Error("no experts accepted")
	}
	if _, _, _, err := TrainDirectMapping(&core.Dataset{}, core.OHRObjective{}, 1); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestScaleVec(t *testing.T) {
	got := scaleVec([]float64{10, 20}, []float64{10, 10}, []float64{1, 5})
	if got[0] != 0 || math.Abs(got[1]-2) > 1e-12 {
		t.Fatalf("scaleVec = %v", got)
	}
}

func TestTinyLFUValidation(t *testing.T) {
	if _, err := NewTinyLFU(TinyLFUConfig{Window: 0, Eval: evalCfg()}); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestTinyLFUAdmitsHotRejectsCold(t *testing.T) {
	tl, err := NewTinyLFU(TinyLFUConfig{Window: 1 << 30, Eval: evalCfg()})
	if err != nil {
		t.Fatal(err)
	}
	// Build a hot object (many requests) so it occupies the HOC.
	for i := 0; i < 10; i++ {
		tl.Serve(trace.Request{ID: 1, Size: 200 << 10, Time: int64(i)})
	}
	if m := tl.Metrics(); m.HOCHits == 0 {
		t.Fatal("hot object never reached the HOC")
	}
	// A cold object (fewer requests than the incumbent) must not displace it
	// even though the HOC is full.
	before := tl.Metrics().HOCAdmits
	for i := 0; i < 3; i++ {
		tl.Serve(trace.Request{ID: 2, Size: 200 << 10, Time: int64(100 + i)})
	}
	if got := tl.Metrics().HOCAdmits; got != before {
		t.Fatalf("cold object admitted over hotter incumbent (%d -> %d admits)", before, got)
	}
}

func TestTinyLFUWindowReset(t *testing.T) {
	tl, err := NewTinyLFU(TinyLFUConfig{Window: 50, Eval: evalCfg()})
	if err != nil {
		t.Fatal(err)
	}
	tr := mixTrace(t, 50, 2000, 71)
	m := Play(tl, tr, 0.1)
	if m.Requests != 1800 {
		t.Fatalf("requests = %d", m.Requests)
	}
	if m.HOCAdmits == 0 {
		t.Fatal("tinylfu admitted nothing")
	}
}

func TestTinyLFUEndToEnd(t *testing.T) {
	tl, err := NewTinyLFU(TinyLFUConfig{Window: 5000, Eval: evalCfg()})
	if err != nil {
		t.Fatal(err)
	}
	tr := mixTrace(t, 100, 20000, 72)
	m := Play(tl, tr, 0.1)
	if m.OHR() <= 0 {
		t.Fatal("no hits")
	}
}
