package baselines

import (
	"fmt"
	"math"

	"darwin/internal/cache"
	"darwin/internal/core"
	"darwin/internal/features"
	"darwin/internal/neural"
	"darwin/internal/trace"
)

// DirectMapping is the design Darwin rejects in §4: a neural classifier maps
// warm-up traffic features directly to the single predicted-best expert,
// which is then deployed for the rest of the epoch. It is brittle because
// nothing corrects a wrong prediction — there is no testing of candidates.
type DirectMapping struct {
	hier       *cache.Hierarchy
	net        *neural.Net
	mean, std  []float64
	experts    []cache.Expert
	featureCfg features.Config
	warmup     int
	epoch      int

	extractor *features.Extractor
	n         int
	deployed  bool
}

// DirectMappingConfig configures online deployment.
type DirectMappingConfig struct {
	// Warmup is the feature-estimation prefix per epoch.
	Warmup int
	// Epoch is the redeployment period.
	Epoch int
	// Eval sizes the cache.
	Eval cache.EvalConfig
}

// TrainDirectMapping fits the feature→best-expert classifier on an offline
// dataset under the given objective.
func TrainDirectMapping(ds *core.Dataset, obj core.Objective, seed int64) (*neural.Net, []float64, []float64, error) {
	if len(ds.Records) == 0 {
		return nil, nil, nil, fmt.Errorf("baselines: empty dataset")
	}
	k := len(ds.Experts)
	dim := len(ds.Records[0].Extended)
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, rec := range ds.Records {
		for d, v := range rec.Extended {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= float64(len(ds.Records))
	}
	for _, rec := range ds.Records {
		for d, v := range rec.Extended {
			dv := v - mean[d]
			std[d] += dv * dv
		}
	}
	for d := range std {
		std[d] = sqrt(std[d] / float64(len(ds.Records)))
		if std[d] == 0 {
			std[d] = 1
		}
	}
	xs := make([][]float64, len(ds.Records))
	ys := make([][]float64, len(ds.Records))
	for ri, rec := range ds.Records {
		xs[ri] = scaleVec(rec.Extended, mean, std)
		ys[ri] = neural.OneHot(k, ds.BestExpert(rec, obj))
	}
	net, err := neural.New(neural.Config{
		Inputs:    dim,
		Hidden:    []int{16},
		Outputs:   k,
		OutputAct: neural.Softmax,
		Seed:      seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := (neural.Trainer{LR: 0.1, Epochs: 200, BatchSize: 8, Seed: seed}).Train(net, xs, ys); err != nil {
		return nil, nil, nil, err
	}
	return net, mean, std, nil
}

// NewDirectMapping builds the online server around a trained classifier.
func NewDirectMapping(net *neural.Net, mean, std []float64, experts []cache.Expert, fcfg features.Config, cfg DirectMappingConfig) (*DirectMapping, error) {
	if cfg.Warmup <= 0 || cfg.Epoch <= cfg.Warmup {
		return nil, fmt.Errorf("baselines: need 0 < warmup (%d) < epoch (%d)", cfg.Warmup, cfg.Epoch)
	}
	if len(experts) == 0 {
		return nil, fmt.Errorf("baselines: no experts")
	}
	h, err := newHierarchy(cfg.Eval, experts[0])
	if err != nil {
		return nil, err
	}
	ex, err := features.NewExtractor(fcfg)
	if err != nil {
		return nil, err
	}
	return &DirectMapping{
		hier:       h,
		net:        net,
		mean:       mean,
		std:        std,
		experts:    experts,
		featureCfg: fcfg,
		warmup:     cfg.Warmup,
		epoch:      cfg.Epoch,
		extractor:  ex,
	}, nil
}

// Name implements Server.
func (d *DirectMapping) Name() string { return "directmapping" }

// Serve implements Server.
func (d *DirectMapping) Serve(r trace.Request) cache.Result {
	res := d.hier.Serve(r)
	d.n++
	if !d.deployed {
		d.extractor.Observe(r)
		if d.n >= d.warmup {
			idx := d.net.Classify(scaleVec(d.extractor.Extended(), d.mean, d.std))
			if idx >= len(d.experts) {
				idx = 0
			}
			d.hier.SetExpert(d.experts[idx])
			d.extractor.Reset()
			d.deployed = true
		}
	}
	if d.n >= d.epoch {
		d.n = 0
		d.deployed = false
	}
	return res
}

// Metrics implements Server.
func (d *DirectMapping) Metrics() cache.Metrics { return d.hier.Metrics() }

// ResetMetrics implements Server.
func (d *DirectMapping) ResetMetrics() { d.hier.ResetMetrics() }

// Expert returns the current expert (for tests).
func (d *DirectMapping) Expert() cache.Expert { return d.hier.Expert() }

func scaleVec(x, mean, std []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if i < len(mean) {
			out[i] = (v - mean[i]) / std[i]
		} else {
			out[i] = v
		}
	}
	return out
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
