package baselines

import (
	"fmt"

	"darwin/internal/cache"
	"darwin/internal/trace"
)

// HillClimbing deploys expert (f, s) in the main cache while two shadow
// caches concurrently run (f+Δf, s) and (f, s+Δs) on the same request
// stream. Every N requests the main cache adopts the best-performing of the
// three; if the main expert survives, the shadows flip to probe the downhill
// directions (f−Δf, s), (f, s−Δs) (§6 "Baselines"). The shadow caches are
// the memory overhead the paper criticises (§3.2.1 R4) — they are real
// hierarchies here too.
type HillClimbing struct {
	main    *cache.Hierarchy
	shadows [2]*cache.Hierarchy
	cfg     HillClimbingConfig

	f       int
	s       int64
	up      bool // current probe direction: true = (+Δf, +Δs)
	n       int
	mark    cache.Metrics
	smark   [2]cache.Metrics
	current [2]cache.Expert
}

// HillClimbingConfig configures the baseline.
type HillClimbingConfig struct {
	// Initial is the starting expert.
	Initial cache.Expert
	// DeltaF and DeltaS are the probe step sizes (paper: Δf=1,
	// Δs ∈ {1KB, 10KB}).
	DeltaF int
	DeltaS int64
	// Window is N, the comparison period in requests (paper: 0.5M).
	Window int
	// MinFreq and MinSize floor the thresholds (defaults 1 and 1KB).
	MinFreq int
	MinSize int64
	// Eval sizes the caches.
	Eval cache.EvalConfig
}

// NewHillClimbing builds the baseline with warmed-up probe state.
func NewHillClimbing(cfg HillClimbingConfig) (*HillClimbing, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("baselines: hill climbing window must be > 0")
	}
	if cfg.DeltaF <= 0 {
		cfg.DeltaF = 1
	}
	if cfg.DeltaS <= 0 {
		cfg.DeltaS = 1 << 10
	}
	if cfg.MinFreq <= 0 {
		cfg.MinFreq = 1
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 1 << 10
	}
	main, err := newHierarchy(cfg.Eval, cfg.Initial)
	if err != nil {
		return nil, err
	}
	hc := &HillClimbing{
		main: main,
		cfg:  cfg,
		f:    cfg.Initial.Freq,
		s:    cfg.Initial.MaxSize,
		up:   true,
	}
	if err := hc.rebuildShadows(); err != nil {
		return nil, err
	}
	return hc, nil
}

// probeExperts returns the two probe experts for the current direction.
func (hc *HillClimbing) probeExperts() [2]cache.Expert {
	df, ds := hc.cfg.DeltaF, hc.cfg.DeltaS
	if !hc.up {
		df, ds = -df, -ds
	}
	f2 := hc.f + df
	if f2 < hc.cfg.MinFreq {
		f2 = hc.cfg.MinFreq
	}
	s2 := hc.s + ds
	if s2 < hc.cfg.MinSize {
		s2 = hc.cfg.MinSize
	}
	return [2]cache.Expert{
		{Freq: f2, MaxSize: hc.s},
		{Freq: hc.f, MaxSize: s2},
	}
}

// rebuildShadows starts fresh shadow caches for the current probes.
func (hc *HillClimbing) rebuildShadows() error {
	hc.current = hc.probeExperts()
	for i, e := range hc.current {
		h, err := newHierarchy(hc.cfg.Eval, e)
		if err != nil {
			return err
		}
		hc.shadows[i] = h
		hc.smark[i] = cache.Metrics{}
	}
	hc.mark = hc.main.Metrics()
	hc.n = 0
	return nil
}

// Name implements Server.
func (hc *HillClimbing) Name() string {
	return fmt.Sprintf("hillclimbing-ds%d", hc.cfg.DeltaS>>10)
}

// Serve implements Server.
func (hc *HillClimbing) Serve(r trace.Request) cache.Result {
	res := hc.main.Serve(r)
	for _, sh := range hc.shadows {
		sh.Serve(r)
	}
	hc.n++
	if hc.n >= hc.cfg.Window {
		hc.step()
	}
	return res
}

// step compares the main cache with the shadows over the elapsed window and
// moves or flips direction.
func (hc *HillClimbing) step() {
	mainOHR := hc.main.Metrics().Sub(hc.mark).OHR()
	best, bestOHR := -1, mainOHR
	for i, sh := range hc.shadows {
		ohr := sh.Metrics().Sub(hc.smark[i]).OHR()
		if ohr > bestOHR {
			best, bestOHR = i, ohr
		}
	}
	if best >= 0 {
		// A shadow won: adopt its expert in the main cache and probe onward
		// in the same direction.
		e := hc.current[best]
		hc.f, hc.s = e.Freq, e.MaxSize
		hc.main.SetExpert(e)
	} else {
		// Main survived: flip probe direction.
		hc.up = !hc.up
	}
	// Restart shadows on the new probes (cold, as fresh shadow caches are).
	_ = hc.rebuildShadows() // config already validated; cannot fail
}

// Metrics implements Server.
func (hc *HillClimbing) Metrics() cache.Metrics { return hc.main.Metrics() }

// ResetMetrics implements Server.
func (hc *HillClimbing) ResetMetrics() {
	hc.main.ResetMetrics()
	hc.mark = cache.Metrics{}
}

// Expert returns the main cache's current expert (for tests).
func (hc *HillClimbing) Expert() cache.Expert { return hc.main.Expert() }
