package server

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/faults"
	"darwin/internal/tracegen"
)

// TestShardedProxyStress is the sharded data plane's race-detector workout:
// a multi-shard static decider behind the resilient proxy, a fault-injecting
// origin (transient errors + latency spikes), mixed hit/miss/fault traffic
// from a concurrency-32 closed-loop load run, and a poller goroutine reading
// Stats/Metrics snapshots throughout. Run under -race this exercises every
// new seam at once: shard routing, per-shard locks, seqlock metric mirrors,
// striped proxy counters, coalescing, and retries.
func TestShardedProxyStress(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 1_500, 17)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Concurrent() {
		t.Fatal("sharded static decider must advertise Concurrent()")
	}
	origin := &Origin{}
	injector := faults.New(faults.Config{Seed: 9, ErrorRate: 0.05, SpikeRate: 0.02, Spike: time.Millisecond})
	originSrv := httptest.NewServer(injector.Wrap(origin))
	defer originSrv.Close()
	proxy := NewResilientProxy(dec, originSrv.URL, 0, fastResilience())
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := proxy.Stats()
			if st.Retries > st.OriginFetches {
				panic("torn stats: more retries than fetches")
			}
			m := proxy.Metrics()
			if m.HOCHits+m.DCHits+m.Misses != m.Requests {
				panic("torn metrics: hits+misses != requests")
			}
		}
	}()

	res, err := RunLoad(context.Background(), tr, LoadConfig{
		ProxyURL:       proxySrv.URL,
		Concurrency:    32,
		RequestTimeout: 30 * time.Second,
	})
	close(stop)
	poller.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	// Retries absorb the 5% transient error rate; nearly everything succeeds.
	if rate := res.ErrorRate(); rate > 0.02 {
		t.Fatalf("error rate %.4f with resilience on, want < 0.02", rate)
	}
	// Committed requests equal client successes minus degraded serves: failed
	// fetches and stale answers never commit through the decider.
	if m := dec.Metrics(); m.Requests != int64(res.Requests-res.StaleServes) {
		t.Fatalf("decider accounted %d requests, clients completed %d (%d stale)",
			m.Requests, res.Requests, res.StaleServes)
	}
	// Every shard of the engine should have taken traffic.
	eng := dec.Engine().(*cache.Sharded)
	for i := 0; i < eng.Shards(); i++ {
		if eng.ShardMetrics(i).Requests == 0 {
			t.Errorf("shard %d saw no traffic", i)
		}
	}
}
