package server

import (
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"darwin/internal/cache"
	"darwin/internal/stripe"
)

// This file is the serving fast path's allocation discipline: the static
// body chunk every response is written from (zero copies into per-request
// buffers), a sync.Pool of owned buffers for the few paths that genuinely
// need their own bytes (origin stream relay, loadgen client reads), pooled
// origin-URL builders, and pre-serialized hot response headers (X-Cache
// values and Content-Length strings for recently served sizes). Together
// they make the hit-serving path — request parse → decider → body written —
// 0 allocs/op above net/http's own internals; the darwinlint hotpath
// analyzer roots Proxy.serveLocal and writeBody here to keep it that way.

// pattern is the repeated content block served for every object: one static
// read-only 64 KiB slice shared by every response. writeBody slices it,
// never copies it, so body writes allocate nothing per request.
var pattern = func() []byte {
	b := make([]byte, 64<<10)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}()

// writeBody writes size bytes of deterministic content to w as repeated
// Write calls over the shared static chunk — zero copies into per-request
// buffers.
func writeBody(w io.Writer, size int64) error {
	for size > 0 {
		n := int64(len(pattern))
		if size < n {
			n = size
		}
		if _, err := w.Write(pattern[:n]); err != nil {
			return err
		}
		size -= n
	}
	return nil
}

// copyBufSize is the size of pooled owned buffers: one body chunk.
const copyBufSize = 64 << 10

// copyBufPool hands out 64 KiB buffers for paths that must own their bytes:
// the origin stream relay (io.CopyBuffer when the ResponseWriter has no
// ReadFrom fast path) and the load generator's per-worker body reads. The
// pool is process-wide so an idle proxy holds no per-connection buffers.
var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, copyBufSize)
		return &b
	},
}

// getCopyBuf borrows an owned 64 KiB buffer from the pool.
func getCopyBuf() *[]byte { return copyBufPool.Get().(*[]byte) }

// putCopyBuf returns a buffer borrowed with getCopyBuf.
func putCopyBuf(b *[]byte) { copyBufPool.Put(b) }

// urlBufPool pools the byte builders behind originURL so miss-path URL
// construction costs one string allocation (the URL itself), not a fmt state
// machine plus intermediates.
var urlBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 128)
		return &b
	},
}

// originURL builds "<base>/obj/<id>?size=<n>" from a pooled builder using
// strconv appends.
func originURL(base string, id uint64, size int64) string {
	bp := urlBufPool.Get().(*[]byte)
	b := append((*bp)[:0], base...)
	b = append(b, "/obj/"...)
	b = strconv.AppendUint(b, id, 10)
	b = append(b, "?size="...)
	b = strconv.AppendInt(b, size, 10)
	u := string(b)
	*bp = b
	urlBufPool.Put(bp)
	return u
}

// Pre-serialized X-Cache header values: shared read-only []string slices
// assigned directly into the response header map, so no per-request value
// slice is allocated. net/http treats header values as read-only.
var (
	xcacheHOC   = []string{"hoc-hit"}
	xcacheDC    = []string{"dc-hit"}
	xcacheMiss  = []string{"miss"}
	xcacheStale = []string{"stale"}
)

// contentTypeOctet is the shared Content-Type value for every body the proxy
// and origin serve. Declaring it explicitly matters beyond the allocation:
// a response without Content-Type makes net/http sniff the first 512 body
// bytes per response (http.DetectContentType showed up in CPU profiles of
// the serving path).
var contentTypeOctet = []string{"application/octet-stream"}

// setContentType stores the shared Content-Type value into h.
func setContentType(h http.Header) {
	h["Content-Type"] = contentTypeOctet
}

// setXCache stores the pre-serialized X-Cache value for res into h.
func setXCache(h http.Header, res cache.Result) {
	switch res {
	case cache.HOCHit:
		h["X-Cache"] = xcacheHOC
	case cache.DCHit:
		h["X-Cache"] = xcacheDC
	default:
		h["X-Cache"] = xcacheMiss
	}
}

// clEntry caches one size's decimal serialization as a ready-to-assign
// header value slice.
type clEntry struct {
	size int64
	val  []string
}

// clCacheSlots sizes the Content-Length cache; must be a power of two.
// Popular objects dominate CDN traffic, so their (fixed, per-object) sizes
// stay resident and repeat serves pay zero serialization allocations.
const clCacheSlots = 2048

// clCache maps recently served sizes to pre-serialized Content-Length
// values. Slots are published atomically; a hash collision simply replaces
// the slot (losing a cached size is always correct, only slower).
var clCache [clCacheSlots]atomic.Pointer[clEntry]

// contentLengthValue returns the shared header value slice for size,
// serializing and caching it on first sight.
func contentLengthValue(size int64) []string {
	slot := &clCache[stripe.Mix64(uint64(size))&(clCacheSlots-1)]
	if e := slot.Load(); e != nil && e.size == size {
		return e.val
	}
	e := &clEntry{size: size, val: []string{strconv.FormatInt(size, 10)}}
	slot.Store(e)
	return e.val
}

// setContentLength stores the (cached) pre-serialized Content-Length value
// for size into h.
func setContentLength(h http.Header, size int64) {
	h["Content-Length"] = contentLengthValue(size)
}
