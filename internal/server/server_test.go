package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

// testbed spins up an origin and a proxy around a static expert.
func testbed(t *testing.T, e cache.Expert, originLatency, dcLatency time.Duration) (*httptest.Server, *httptest.Server, *Proxy) {
	t.Helper()
	origin := &Origin{Latency: originLatency}
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)
	dec, err := baselines.NewStatic(e, cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy(dec, originSrv.URL, dcLatency)
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)
	return originSrv, proxySrv, proxy
}

func get(t *testing.T, base string, id uint64, size int64) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/obj/%d?size=%d", base, id, size))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestOriginServesExactBytes(t *testing.T) {
	origin := &Origin{}
	srv := httptest.NewServer(origin)
	defer srv.Close()
	resp, body := get(t, srv.URL, 42, 100000)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(body) != 100000 {
		t.Fatalf("body = %d bytes", len(body))
	}
	reqs, bytes := origin.Stats()
	if reqs != 1 || bytes != 100000 {
		t.Fatalf("stats = %d/%d", reqs, bytes)
	}
}

func TestOriginRejectsBadURL(t *testing.T) {
	srv := httptest.NewServer(&Origin{})
	defer srv.Close()
	for _, path := range []string{"/obj/abc?size=10", "/obj/1?size=-5", "/nope", "/obj/1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("path %q: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestProxyCacheTransitions(t *testing.T) {
	_, proxySrv, _ := testbed(t, cache.Expert{Freq: 1, MaxSize: 1 << 20}, 0, 0)
	// Same object four times: miss, miss(->DC), dc-hit(->HOC), hoc-hit.
	want := []string{"miss", "miss", "dc-hit", "hoc-hit"}
	for i, w := range want {
		resp, body := get(t, proxySrv.URL, 7, 5000)
		if got := resp.Header.Get("X-Cache"); got != w {
			t.Fatalf("request %d: X-Cache = %q, want %q", i+1, got, w)
		}
		if len(body) != 5000 {
			t.Fatalf("request %d: body %d bytes", i+1, len(body))
		}
	}
}

func TestProxyMidgressDropsWithCaching(t *testing.T) {
	_, proxySrv, _ := testbed(t, cache.Expert{Freq: 1, MaxSize: 1 << 20}, 0, 0)
	for i := 0; i < 10; i++ {
		get(t, proxySrv.URL, 99, 1000)
	}
	// After the object is cached, the origin must not see all 10 requests.
	resp, _ := get(t, proxySrv.URL, 99, 1000)
	if resp.Header.Get("X-Cache") != "hoc-hit" {
		t.Fatalf("object not HOC-resident after repeats: %s", resp.Header.Get("X-Cache"))
	}
}

func TestProxyLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("latency injection test")
	}
	_, proxySrv, _ := testbed(t, cache.Expert{Freq: 1, MaxSize: 1 << 20}, 30*time.Millisecond, 10*time.Millisecond)
	timeGet := func() (time.Duration, string) {
		start := time.Now()
		resp, _ := get(t, proxySrv.URL, 5, 2000)
		return time.Since(start), resp.Header.Get("X-Cache")
	}
	d1, c1 := timeGet() // miss: origin latency
	timeGet()           // second miss → DC admit
	d3, c3 := timeGet() // dc hit: disk latency, promotes to HOC
	d4, c4 := timeGet() // hoc hit: fast
	if c1 != "miss" || c3 != "dc-hit" || c4 != "hoc-hit" {
		t.Fatalf("transitions: %s %s %s", c1, c3, c4)
	}
	if d4 >= d3 || d3 >= d1 {
		t.Fatalf("latency ordering violated: hoc %v, dc %v, miss %v", d4, d3, d1)
	}
}

func TestProxyMetrics(t *testing.T) {
	_, proxySrv, proxy := testbed(t, cache.Expert{Freq: 1, MaxSize: 1 << 20}, 0, 0)
	for i := 0; i < 4; i++ {
		get(t, proxySrv.URL, 3, 1000)
	}
	m := proxy.Metrics()
	if m.Requests != 4 || m.HOCHits != 1 || m.DCHits != 1 || m.Misses != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRunLoadBasics(t *testing.T) {
	_, proxySrv, _ := testbed(t, cache.Expert{Freq: 1, MaxSize: 1 << 20}, 0, 0)
	tr, err := tracegen.ImageDownloadMix(50, 300, 71)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLoad(context.Background(), tr, LoadConfig{ProxyURL: proxySrv.URL, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Requests != 300 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.HOCHits+res.DCHits+res.Misses != 300 {
		t.Fatalf("X-Cache breakdown inconsistent: %d+%d+%d", res.HOCHits, res.DCHits, res.Misses)
	}
	if len(res.FirstByte) != 300 {
		t.Fatalf("latencies = %d", len(res.FirstByte))
	}
	if res.ThroughputBps() <= 0 {
		t.Fatal("no throughput")
	}
	if res.LatencyPercentile(50) <= 0 {
		t.Fatal("no median latency")
	}
	var want int64
	for _, r := range tr.Requests {
		want += r.Size
	}
	if res.Bytes != want {
		t.Fatalf("bytes = %d, want %d", res.Bytes, want)
	}
}

func TestRunLoadValidation(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{{ID: 1, Size: 1}}}
	if _, err := RunLoad(context.Background(), tr, LoadConfig{ProxyURL: "http://x", Concurrency: 0}); err == nil {
		t.Error("zero concurrency accepted")
	}
	if _, err := RunLoad(context.Background(), &trace.Trace{}, LoadConfig{ProxyURL: "http://x", Concurrency: 1}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRunLoadCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer srv.Close()
	tr := &trace.Trace{Requests: []trace.Request{{ID: 1, Size: 10}, {ID: 2, Size: 10}}}
	res, err := RunLoad(context.Background(), tr, LoadConfig{ProxyURL: srv.URL, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 5xx responses are classified as errors; accounting must stay
	// consistent either way.
	if res.Requests+res.Errors != 2 {
		t.Fatalf("accounting off: %+v", res)
	}
	if res.Status5xx != 2 {
		t.Fatalf("5xx not classified: %+v", res)
	}
}

func TestLoadResultZero(t *testing.T) {
	var r LoadResult
	if r.ThroughputBps() != 0 || r.LatencyPercentile(99) != 0 {
		t.Fatal("zero result should yield zeros")
	}
}

func TestProxyBadGatewayOnOriginFailure(t *testing.T) {
	dec, err := baselines.NewStatic(cache.Expert{Freq: 1, MaxSize: 1 << 20}, cache.EvalConfig{HOCBytes: 1 << 20, DCBytes: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy(dec, "http://127.0.0.1:1", 0) // nothing listening
	srv := httptest.NewServer(proxy)
	defer srv.Close()
	resp, _ := get(t, srv.URL, 1, 100)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
}
