package server

// Gossip glue: how the membership layer (internal/gossip) rides the cluster's
// existing HTTP fabric. There is no dedicated gossip transport — digests
// piggyback where bytes already flow:
//
//   - peer probes carry X-Darwin-Gossip both ways: the prober attaches its
//     fresh digest to the request, the probed sibling merges it and attaches
//     its own to the response (even a 404 answer gossips).
//   - /gossip is the explicit exchange endpoint: POST a digest, get the
//     node's digest back. The front tier polls it instead of /readyz and —
//     because its observer digest carries everything it has heard from every
//     backend — acts as a relay hub, so a node unreachable on one cluster
//     edge stays alive in everyone's view as long as the front can reach it
//     (the asymmetric-partition case).
//
// Every emission calls Beat first, so each digest leaving the process is a
// fresh proof of life. Malformed digests are dropped silently on the
// piggyback path (they are advisory) and answered 400 on /gossip (the caller
// asked for an exchange and should learn its frame was garbage).

import (
	"encoding/base64"
	"io"
	"net/http"

	"darwin/internal/gossip"
)

// GossipHeader carries a base64-encoded heartbeat digest piggybacked on peer
// probes, in both the request and the response direction.
const GossipHeader = "X-Darwin-Gossip"

// maxGossipBytes bounds a /gossip request body read — comfortably above the
// largest legal digest (gossip.MaxDigestEntries entries).
const maxGossipBytes = 64 << 10

// Membership exposes the proxy's gossip view of its cluster (nil before
// SetPeers, or when the peer config disabled gossip).
func (p *Proxy) Membership() *gossip.Membership {
	if p.peers == nil {
		return nil
	}
	return p.peers.memb
}

// digestBytes encodes this node's current digest, beating first so the
// emission is a proof of life.
func (ps *peerSet) digestBytes() []byte {
	ps.memb.Beat()
	entries := ps.memb.Digest(make([]gossip.Entry, 0, len(ps.nodes)))
	return gossip.AppendDigest(make([]byte, 0, 8+12*len(entries)), ps.self, entries)
}

// gossipValue encodes this node's digest for the piggyback header.
func (ps *peerSet) gossipValue() string {
	return base64.StdEncoding.EncodeToString(ps.digestBytes())
}

// mergeGossip folds a piggybacked digest from h into the membership view.
// Absent or malformed headers are ignored: the piggyback is advisory, and a
// sibling with a corrupt frame still answered HTTP — its liveness is judged
// by the probe outcome, not the trimming.
func (ps *peerSet) mergeGossip(h http.Header) {
	v := h[GossipHeader]
	if ps.memb == nil || len(v) == 0 {
		return
	}
	raw, err := base64.StdEncoding.DecodeString(v[0])
	if err != nil {
		return
	}
	sender, entries, err := gossip.DecodeDigest(raw, nil)
	if err != nil {
		return
	}
	ps.memb.Merge(sender, entries)
}

// ServeGossip is the explicit digest exchange: POST merges the caller's
// digest (400 on a corrupt frame), and every successful answer carries this
// node's fresh digest. GET is a pure read — the front tier's probe uses POST
// so each poll both relays its observer view and collects the node's.
func (p *Proxy) ServeGossip(w http.ResponseWriter, r *http.Request) {
	ps := p.peers
	if ps == nil || ps.memb == nil {
		http.Error(w, "gossip: no cluster membership", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxGossipBytes))
		if err != nil {
			http.Error(w, "gossip: reading digest: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > 0 {
			sender, entries, derr := gossip.DecodeDigest(body, nil)
			if derr != nil {
				http.Error(w, derr.Error(), http.StatusBadRequest)
				return
			}
			ps.memb.Merge(sender, entries)
		}
	default:
		http.Error(w, "gossip: GET or POST only", http.StatusMethodNotAllowed)
		return
	}
	p.stats.Add(uint64(ps.self), psGossipExchanges, 1)
	w.Header()["Content-Type"] = octetStreamValue
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(ps.digestBytes())
}

// octetStreamValue is the pre-allocated Content-Type for binary answers.
var octetStreamValue = []string{"application/octet-stream"}
