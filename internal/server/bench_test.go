package server

import (
	"net/http/httptest"
	"sync"
	"testing"

	"darwin/internal/baselines"
	"darwin/internal/cache"
)

// mutexCounter is the pre-hardening Origin accounting (mutex-guarded ints),
// kept here so the benchmark pair below documents the contention win of the
// atomic counters now used by Origin.
type mutexCounter struct {
	mu              sync.Mutex
	requests, bytes int64
}

func (m *mutexCounter) account(size int64) {
	m.mu.Lock()
	m.requests++
	m.bytes += size
	m.mu.Unlock()
}

func BenchmarkOriginAccountMutex(b *testing.B) {
	var c mutexCounter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.account(1000)
		}
	})
}

func BenchmarkOriginAccountAtomic(b *testing.B) {
	var o Origin
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			o.account(1000)
		}
	})
}

// BenchmarkProxyHOCHit measures the proxy's in-memory fast path under
// parallel load: the decider call is the only serialized section; header and
// body writes run outside the lock.
func BenchmarkProxyHOCHit(b *testing.B) {
	dec, err := baselines.NewStatic(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20})
	if err != nil {
		b.Fatal(err)
	}
	proxy := NewResilientProxy(dec, "http://unused", 0, DefaultResilience())
	origin := httptest.NewServer(&Origin{})
	defer origin.Close()
	proxy.OriginURL = origin.URL
	// Promote object 1 into the HOC: miss, miss → DC, dc-hit → HOC.
	for i := 0; i < 3; i++ {
		w := httptest.NewRecorder()
		proxy.ServeHTTP(w, httptest.NewRequest("GET", "/obj/1?size=4096", nil))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w := httptest.NewRecorder()
			proxy.ServeHTTP(w, httptest.NewRequest("GET", "/obj/1?size=4096", nil))
			if w.Code != 200 || w.Header().Get("X-Cache") != "hoc-hit" {
				b.Fatalf("status %d, X-Cache %q", w.Code, w.Header().Get("X-Cache"))
			}
		}
	})
}
