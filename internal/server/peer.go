package server

// Peer-to-peer cache fill: the cluster layer that lets a miss cost a ~1 ms
// hop to a ring sibling instead of the ~10-100 ms origin round trip. Every
// node in a cluster shares the same ordered node list, so each builds an
// identical consistent-hash ring (lb.Ring) and agrees on which siblings are
// an object's primary and replica successors. On a DC/origin-bound miss the
// proxy probes up to Fanout siblings — the nodes most likely to hold the
// object under front-tier routing — and on a 200 commits the request through
// the decider exactly like an origin fetch, so the peer fill is journaled as
// an admit and the object becomes locally resident for the next request.
//
// Safety mirrors the origin path: each sibling is gated by its own rolling
// circuit breaker (a sick or drained peer stops being probed within its
// breaker window), each probe carries a short deadline, and the
// X-Darwin-Peer-Hop header is a loop guard — a node answering a probe
// serves from memory or answers 404; it never forwards the probe onward and
// never touches the origin on its behalf, so a probe costs at most one hop
// even in a routing cycle.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"darwin/internal/breaker"
	"darwin/internal/cache"
	"darwin/internal/lb"
	"darwin/internal/trace"
)

// PeerHopHeader marks a request as a peer probe. Its presence is the loop
// guard: the receiving node answers from its own cache or 404s, and never
// initiates further peer or origin fetches for it.
const PeerHopHeader = "X-Darwin-Peer-Hop"

// PeerHeader marks a client response whose miss was filled from a ring
// sibling instead of the origin.
const PeerHeader = "X-Darwin-Peer"

// Pre-serialized header values (see body.go for the idiom).
var (
	peerHopValue  = []string{"1"}
	peerFillValue = []string{"fill"}
)

// PeerConfig wires a proxy into a cluster of siblings.
type PeerConfig struct {
	// Self is this node's own entry in Nodes (probes never target it).
	Self string
	// Nodes lists every cluster node's base URL in the same order on every
	// node — the shared ring coordinates.
	Nodes []string
	// Fanout is the maximum siblings probed per miss (default 2).
	Fanout int
	// FetchTimeout bounds each probe (default 150 ms: a peer hop is only
	// worth taking when it is much cheaper than the origin).
	FetchTimeout time.Duration
	// VirtualNodes per node on the shared ring (default 64).
	VirtualNodes int
	// Breaker configures the per-sibling circuit breaker; zero means
	// DefaultPeerBreaker.
	Breaker breaker.Config
	// Client issues probes; nil builds one with the probe timeout.
	Client *http.Client
}

// DefaultPeerBreaker returns the per-sibling breaker configuration: trip on
// a 50% failure rate over a 2 s window and retry a probe after 1 s — fast
// enough that a SIGTERM-drained sibling stops costing probe timeouts within
// a couple of windows.
func DefaultPeerBreaker() breaker.Config {
	return breaker.Config{
		Window:           2 * time.Second,
		Buckets:          8,
		FailureThreshold: 0.5,
		MinRequests:      4,
		OpenFor:          time.Second,
		HalfOpenProbes:   2,
	}
}

// peerSet is the proxy's view of its cluster: the shared ring, sibling
// breakers, and the probe client. Immutable after SetPeers; the ring is only
// read through Successors, which is safe for concurrent handlers.
type peerSet struct {
	ring    *lb.Ring
	self    int
	nodes   []string
	fanout  int
	width   int // successors to walk: fanout siblings plus possibly self
	timeout time.Duration
	brks    []*breaker.Breaker
	client  *http.Client
}

// SetPeers wires the proxy into a peer cluster. Call once before serving
// traffic (darwin-proxy's -peers flag does).
func (p *Proxy) SetPeers(cfg PeerConfig) error {
	if len(cfg.Nodes) < 2 {
		return fmt.Errorf("server: peer cluster needs >= 2 nodes, got %d", len(cfg.Nodes))
	}
	self := -1
	for i, n := range cfg.Nodes {
		if n == cfg.Self {
			self = i
		}
	}
	if self < 0 {
		return fmt.Errorf("server: peer Self %q not in Nodes", cfg.Self)
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.Fanout > len(cfg.Nodes)-1 {
		cfg.Fanout = len(cfg.Nodes) - 1
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 150 * time.Millisecond
	}
	if cfg.Breaker.Window <= 0 {
		cfg.Breaker = DefaultPeerBreaker()
	}
	ring, err := lb.NewRing(lb.Config{
		Servers:      len(cfg.Nodes),
		VirtualNodes: cfg.VirtualNodes,
	})
	if err != nil {
		return err
	}
	width := cfg.Fanout + 1 // the walk may pass through self
	if width > len(cfg.Nodes) {
		width = len(cfg.Nodes)
	}
	if width > lb.MaxReplicas {
		width = lb.MaxReplicas
	}
	brks := make([]*breaker.Breaker, len(cfg.Nodes))
	for i := range brks {
		brks[i] = breaker.New(cfg.Breaker)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.FetchTimeout}
	}
	p.peers = &peerSet{
		ring:    ring,
		self:    self,
		nodes:   cfg.Nodes,
		fanout:  cfg.Fanout,
		width:   width,
		timeout: cfg.FetchTimeout,
		brks:    brks,
		client:  client,
	}
	return nil
}

// isPeerProbe reports whether r is a sibling's probe (loop-guard header set).
func isPeerProbe(r *http.Request) bool {
	return len(r.Header[PeerHopHeader]) > 0
}

// servePeerProbe answers a sibling's probe: a residency hit commits through
// the decider (the served request enters this node's books and traffic mix,
// exactly like client traffic) and streams from memory; anything else is an
// immediate 404 — no origin fetch, no further peer hops. This is the
// cluster's serving fast path (a darwinlint hotpath root): a probe costs a
// residency check plus the zero-allocation local serve.
func (p *Proxy) servePeerProbe(w http.ResponseWriter, req trace.Request) {
	if p.lk != nil {
		if probe := p.lk.Lookup(req.ID); probe != cache.Miss {
			res := p.serve(req)
			p.stats.Add(req.ID, psPeerServed, 1)
			setXCache(w.Header(), res)
			p.serveLocal(w, res, req.Size)
			return
		}
	}
	w.WriteHeader(http.StatusNotFound)
}

// fetchPeer tries to fill a miss from ring siblings before the origin hop:
// the object's successor walk names the nodes front-tier routing (and
// replication) would have sent it to. Probes respect each sibling's breaker;
// a validated 200 reports success. Returns false when no sibling had the
// object — the caller falls through to the resilient origin path.
func (p *Proxy) fetchPeer(ctx context.Context, id uint64, size int64) bool {
	ps := p.peers
	var dst [lb.MaxReplicas]int
	k := ps.ring.Successors(id, dst[:ps.width])
	tried := 0
	for i := 0; i < k && tried < ps.fanout; i++ {
		node := dst[i]
		if node == ps.self {
			continue
		}
		tried++
		brk := ps.brks[node]
		if !brk.Allow() {
			p.stats.Add(id, psPeerRejects, 1)
			continue
		}
		p.stats.Add(id, psPeerProbes, 1)
		hit, healthy := ps.probe(ctx, node, id, size)
		brk.Record(healthy)
		if !healthy {
			p.stats.Add(id, psPeerErrors, 1)
		}
		if hit {
			p.stats.Add(id, psPeerFills, 1)
			return true
		}
	}
	return false
}

// probe asks one sibling for an object. hit reports residency; healthy
// feeds the sibling's breaker — a 404 is a healthy answer (the sibling is
// up, the object just isn't there), while transport errors, non-200/404
// statuses, and truncated bodies are failures.
func (ps *peerSet) probe(ctx context.Context, node int, id uint64, size int64) (hit, healthy bool) {
	ctx, cancel := context.WithTimeout(ctx, ps.timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, originURL(ps.nodes[node], id, size), nil)
	if err != nil {
		return false, false
	}
	hreq.Header[PeerHopHeader] = peerHopValue
	resp, err := ps.client.Do(hreq)
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		n, err := io.Copy(io.Discard, resp.Body)
		if err != nil || n != size {
			return false, false
		}
		return true, true
	case http.StatusNotFound:
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<10) // best-effort drain so the connection can be reused
		return false, true
	default:
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<10) // best-effort drain so the connection can be reused
		return false, false
	}
}
