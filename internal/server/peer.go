package server

// Peer-to-peer cache fill: the cluster layer that lets a miss cost a ~1 ms
// hop to a ring sibling instead of the ~10-100 ms origin round trip. Every
// node in a cluster shares the same ordered node list, so each builds an
// identical consistent-hash ring (lb.Ring) and agrees on which siblings are
// an object's primary and replica successors. On a DC/origin-bound miss the
// proxy probes up to Fanout siblings — the nodes most likely to hold the
// object under front-tier routing — and on a 200 commits the request through
// the decider exactly like an origin fetch, so the peer fill is journaled as
// an admit and the object becomes locally resident for the next request.
//
// Safety mirrors the origin path: each sibling is gated by its own rolling
// circuit breaker (a sick or drained peer stops being probed within its
// breaker window), each probe carries a short deadline, and the
// X-Darwin-Peer-Hop header is a loop guard — a node answering a probe
// serves from memory or answers 404; it never forwards the probe onward and
// never touches the origin on its behalf, so a probe costs at most one hop
// even in a routing cycle.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"darwin/internal/breaker"
	"darwin/internal/cache"
	"darwin/internal/gossip"
	"darwin/internal/lb"
	"darwin/internal/trace"
)

// PeerHopHeader marks a request as a peer probe. Its presence is the loop
// guard: the receiving node answers from its own cache or 404s, and never
// initiates further peer or origin fetches for it.
const PeerHopHeader = "X-Darwin-Peer-Hop"

// PeerHeader marks a client response whose miss was filled from a ring
// sibling instead of the origin.
const PeerHeader = "X-Darwin-Peer"

// Pre-serialized header values (see body.go for the idiom).
var (
	peerHopValue  = []string{"1"}
	peerFillValue = []string{"fill"}
)

// PeerConfig wires a proxy into a cluster of siblings.
type PeerConfig struct {
	// Self is this node's own entry in Nodes (probes never target it).
	Self string
	// Nodes lists every cluster node's base URL in the same order on every
	// node — the shared ring coordinates.
	Nodes []string
	// Fanout is the maximum siblings probed per miss (default 2).
	Fanout int
	// FetchTimeout bounds each probe (default 150 ms: a peer hop is only
	// worth taking when it is much cheaper than the origin).
	FetchTimeout time.Duration
	// VirtualNodes per node on the shared ring (default 64).
	VirtualNodes int
	// Breaker configures the per-sibling circuit breaker; zero means
	// DefaultPeerBreaker.
	Breaker breaker.Config
	// Client issues probes; nil builds one with the probe timeout.
	Client *http.Client
	// Replication configures the local hot-object tracker that approximates
	// the front tier's placement (zero = defaults). fetchPeer probes only an
	// object's designated holders — its first Factor(id) ring successors —
	// so cold siblings are never disturbed for objects routing would not
	// have placed on them.
	Replication lb.ReplicationConfig
	// RebalanceEvery is the replication observation window in requests
	// (default 10_000, matching the front tier's routing window).
	RebalanceEvery int
	// DisableGossip turns the membership layer off: probes carry no digests,
	// /gossip answers 404, and fetchPeer skips no one. The zero value keeps
	// gossip on.
	DisableGossip bool
	// Gossip tunes the failure detector (thresholds, dwell, clock). Nodes
	// and Self are overwritten with the cluster's values; a nil Clock means
	// time.Now.
	Gossip gossip.Config
}

// DefaultPeerBreaker returns the per-sibling breaker configuration: trip on
// a 50% failure rate over a 2 s window and retry a probe after 1 s — fast
// enough that a SIGTERM-drained sibling stops costing probe timeouts within
// a couple of windows.
func DefaultPeerBreaker() breaker.Config {
	return breaker.Config{
		Window:           2 * time.Second,
		Buckets:          8,
		FailureThreshold: 0.5,
		MinRequests:      4,
		OpenFor:          time.Second,
		HalfOpenProbes:   2,
	}
}

// peerSet is the proxy's view of its cluster: the shared ring, sibling
// breakers, the probe client, and (unless disabled) the gossip membership
// view plus the local replication tracker. The struct is immutable after
// SetPeers; memb and rep are internally synchronized.
type peerSet struct {
	ring    *lb.Ring
	self    int
	nodes   []string
	fanout  int
	width   int // successors to walk: enough to cover any replica set
	timeout time.Duration
	brks    []*breaker.Breaker
	client  *http.Client

	// memb is the gossip membership view (nil when DisableGossip): probes
	// piggyback digests on it, and fetchPeer skips siblings it grades Dead.
	memb *gossip.Membership
	// rep approximates the front tier's replication placement from this
	// node's own request stream; repEvery requests close an observation
	// window (reqs counts them).
	rep      *lb.Replicator
	repEvery int64
	reqs     atomic.Int64
}

// SetPeers wires the proxy into a peer cluster. Call once before serving
// traffic (darwin-proxy's -peers flag does).
func (p *Proxy) SetPeers(cfg PeerConfig) error {
	if len(cfg.Nodes) < 2 {
		return fmt.Errorf("server: peer cluster needs >= 2 nodes, got %d", len(cfg.Nodes))
	}
	self := -1
	for i, n := range cfg.Nodes {
		if n == cfg.Self {
			self = i
		}
	}
	if self < 0 {
		return fmt.Errorf("server: peer Self %q not in Nodes", cfg.Self)
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.Fanout > len(cfg.Nodes)-1 {
		cfg.Fanout = len(cfg.Nodes) - 1
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 150 * time.Millisecond
	}
	if cfg.Breaker.Window <= 0 {
		cfg.Breaker = DefaultPeerBreaker()
	}
	ring, err := lb.NewRing(lb.Config{
		Servers:      len(cfg.Nodes),
		VirtualNodes: cfg.VirtualNodes,
	})
	if err != nil {
		return err
	}
	// The walk must cover the widest possible replica set (plus self, which
	// the walk may pass through), not just the probe fanout: designated
	// holders are the first Factor(id) successors.
	width := len(cfg.Nodes)
	if width > lb.MaxReplicas {
		width = lb.MaxReplicas
	}
	if cfg.RebalanceEvery <= 0 {
		cfg.RebalanceEvery = 10_000
	}
	brks := make([]*breaker.Breaker, len(cfg.Nodes))
	for i := range brks {
		brks[i] = breaker.New(cfg.Breaker)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.FetchTimeout}
	}
	var memb *gossip.Membership
	if !cfg.DisableGossip {
		gcfg := cfg.Gossip
		gcfg.Nodes = len(cfg.Nodes)
		gcfg.Self = self
		if gcfg.Clock == nil {
			gcfg.Clock = time.Now
		}
		m, err := gossip.New(gcfg)
		if err != nil {
			return err
		}
		memb = m
	}
	p.peers = &peerSet{
		ring:     ring,
		self:     self,
		nodes:    cfg.Nodes,
		fanout:   cfg.Fanout,
		width:    width,
		timeout:  cfg.FetchTimeout,
		brks:     brks,
		client:   client,
		memb:     memb,
		rep:      lb.NewReplicator(cfg.Replication),
		repEvery: int64(cfg.RebalanceEvery),
	}
	return nil
}

// observe feeds one client request into the replication tracker, closing the
// observation window every repEvery requests so the designated-holder map
// tracks the live traffic mix on the same cadence as the front tier.
func (ps *peerSet) observe(id uint64) {
	ps.rep.Observe(id)
	if ps.reqs.Add(1)%ps.repEvery == 0 {
		ps.rep.Rebalance()
	}
}

// isPeerProbe reports whether r is a sibling's probe (loop-guard header set).
func isPeerProbe(r *http.Request) bool {
	return len(r.Header[PeerHopHeader]) > 0
}

// servePeerProbe answers a sibling's probe: a residency hit commits through
// the decider (the served request enters this node's books and traffic mix,
// exactly like client traffic) and streams from memory; anything else is an
// immediate 404 — no origin fetch, no further peer hops. This is the
// cluster's serving fast path (a darwinlint hotpath root): a probe costs a
// residency check plus the zero-allocation local serve. Probes also gossip:
// the sibling's piggybacked digest merges in, and the answer — hit or 404 —
// carries this node's fresh digest back.
func (p *Proxy) servePeerProbe(w http.ResponseWriter, r *http.Request, req trace.Request) {
	if ps := p.peers; ps.memb != nil {
		ps.mergeGossip(r.Header)
		w.Header()[GossipHeader] = []string{ps.gossipValue()}
	}
	if p.lk != nil {
		if probe := p.lk.Lookup(req.ID); probe != cache.Miss {
			res := p.serve(req)
			p.stats.Add(req.ID, psPeerServed, 1)
			setXCache(w.Header(), res)
			p.serveLocal(w, res, req.Size)
			return
		}
	}
	w.WriteHeader(http.StatusNotFound)
}

// fetchPeer tries to fill a miss from the object's designated holders — its
// first Factor(id) ring successors, the exact nodes front-tier routing and
// replication place it on. A cold object (factor 1) costs at most one probe
// to its primary; a hot replicated object may probe up to Fanout of its
// holders. Siblings the gossip layer grades Dead are skipped outright (no
// point spending a probe timeout on a corpse), and each probe still respects
// the sibling's breaker. Returns false when no holder had the object — the
// caller falls through to the resilient origin path.
func (p *Proxy) fetchPeer(ctx context.Context, id uint64, size int64) bool {
	ps := p.peers
	var dst [lb.MaxReplicas]int
	k := ps.ring.Successors(id, dst[:ps.width])
	holders := ps.rep.Factor(id)
	if holders < 1 {
		holders = 1
	}
	if holders > k {
		holders = k
	}
	tried := 0
	for i := 0; i < holders && tried < ps.fanout; i++ {
		node := dst[i]
		if node == ps.self {
			continue
		}
		if ps.memb != nil && ps.memb.Dead(node) {
			p.stats.Add(id, psPeerSkipsDead, 1)
			continue
		}
		tried++
		brk := ps.brks[node]
		if !brk.Allow() {
			p.stats.Add(id, psPeerRejects, 1)
			continue
		}
		p.stats.Add(id, psPeerProbes, 1)
		hit, healthy := ps.probe(ctx, node, id, size)
		brk.Record(healthy)
		if !healthy {
			p.stats.Add(id, psPeerErrors, 1)
		}
		if hit {
			p.stats.Add(id, psPeerFills, 1)
			return true
		}
	}
	return false
}

// probe asks one sibling for an object. hit reports residency; healthy
// feeds the sibling's breaker — a 404 is a healthy answer (the sibling is
// up, the object just isn't there), while transport errors, non-200/404
// statuses, and truncated bodies are failures. One exception: a probe that
// died because the *client's* request context was cancelled says nothing
// about the sibling — it is classified healthy-no-hit, so a burst of client
// disconnects can never open a sibling's breaker. Probes carry the gossip
// digest both ways.
func (ps *peerSet) probe(ctx context.Context, node int, id uint64, size int64) (hit, healthy bool) {
	ctx, cancel := context.WithTimeout(ctx, ps.timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, originURL(ps.nodes[node], id, size), nil)
	if err != nil {
		return false, false
	}
	hreq.Header[PeerHopHeader] = peerHopValue
	if ps.memb != nil {
		hreq.Header[GossipHeader] = []string{ps.gossipValue()}
	}
	resp, err := ps.client.Do(hreq)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return false, true
		}
		return false, false
	}
	defer resp.Body.Close()
	if ps.memb != nil {
		ps.mergeGossip(resp.Header)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		n, err := io.Copy(io.Discard, resp.Body)
		if err != nil || n != size {
			return false, false
		}
		return true, true
	case http.StatusNotFound:
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<10) // best-effort drain so the connection can be reused
		return false, true
	default:
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<10) // best-effort drain so the connection can be reused
		return false, false
	}
}
