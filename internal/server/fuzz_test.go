package server

import (
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseObjectURL throws arbitrary paths and size parameters at the
// proxy/origin URL parser. Properties: it never panics, it never accepts a
// path outside /obj/<id>, and an accepted request round-trips — rebuilding
// the URL from the parsed (id, size) reproduces the input.
func FuzzParseObjectURL(f *testing.F) {
	f.Add("/obj/7", "13")
	f.Add("/obj/18446744073709551615", "0")
	f.Add("/obj/", "10")
	f.Add("/obj/-1", "10")
	f.Add("/obj/1e3", "10")
	f.Add("/other/1", "10")
	f.Add("/obj/1", "-5")
	f.Add("/obj/1", "")
	f.Add("/obj/007", "1")
	f.Fuzz(func(t *testing.T, path, size string) {
		r := &http.Request{URL: &url.URL{Path: path, RawQuery: "size=" + url.QueryEscape(size)}}
		id, sz, err := parseObjectURL(r)
		if err != nil {
			return
		}
		if !strings.HasPrefix(path, "/obj/") {
			t.Fatalf("accepted path %q without /obj/ prefix", path)
		}
		if sz < 0 {
			t.Fatalf("accepted negative size %d from %q", sz, size)
		}
		// The id portion must parse back to the same value. (Leading zeros
		// and "+" are accepted by ParseUint, so compare values, not strings.)
		back, perr := strconv.ParseUint(path[len("/obj/"):], 10, 64)
		if perr != nil || back != id {
			t.Fatalf("parseObjectURL(%q) = id %d, but id segment reparses to (%d, %v)", path, id, back, perr)
		}
		gotSize, serr := strconv.ParseInt(size, 10, 64)
		if serr != nil || gotSize != sz {
			t.Fatalf("parseObjectURL size %d disagrees with query %q (%v)", sz, size, serr)
		}
	})
}
