package server

// Drain-time state handoff: when a node leaves the cluster deliberately
// (SIGTERM drain), its learned state — bandit posteriors, cache books, the
// controller's epoch position — does not have to die with it. The draining
// node pushes its checkpoint frame (the same DRWNCKPT bytes the durability
// layer snapshots to disk) to its ring successor over POST /state, and the
// successor merges what it can use. The successor is the right inheritor by
// construction: consistent hashing hands a departed node's keyspace to its
// ring successors, so the inheritor is exactly the node about to see the
// donor's traffic.
//
// The merge is validate-then-commit: the frame's CRC and the acceptor's own
// validation run before anything mutates, so a corrupt or adversarial frame
// is answered 400 and the inheritor's state is untouched (the property test
// in state_test.go holds this line). The proxy itself stays agnostic about
// frame contents — the binary wires Provide/Accept to the checkpoint codec,
// keeping the server layer free of controller imports.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
)

// maxStateBytes bounds a /state body read. Checkpoint frames carry cache
// books proportional to resident objects; 256 MiB is far above any plausible
// frame while still bounding a hostile stream.
const maxStateBytes = 256 << 20

// StateHandoff wires the drain-time handoff endpoints to the binary's
// checkpoint codec.
type StateHandoff struct {
	// Provide returns the node's current checkpoint frame (DRWNCKPT bytes).
	Provide func() ([]byte, error)
	// Accept validates and merges an inherited frame. It must be
	// validate-then-commit: an error return promises local state was not
	// mutated.
	Accept func(data []byte) error
}

// EnableStateHandoff arms /state. Call once at startup, before serving.
func (p *Proxy) EnableStateHandoff(h StateHandoff) {
	p.handoff = h
}

// ServeState answers the handoff endpoint: GET streams this node's current
// checkpoint frame, POST merges a donor's frame (validate-then-commit; a
// rejected frame is a 400 and mutates nothing).
func (p *Proxy) ServeState(w http.ResponseWriter, r *http.Request) {
	h := p.handoff
	if h.Provide == nil || h.Accept == nil {
		http.Error(w, "state: handoff not enabled", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, err := h.Provide()
		if err != nil {
			http.Error(w, "state: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header()["Content-Type"] = octetStreamValue
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case http.MethodPost:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxStateBytes))
		if err != nil {
			http.Error(w, "state: reading frame: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.Accept(data); err != nil {
			p.stats.Add(0, psStateRejects, 1)
			http.Error(w, "state: "+err.Error(), http.StatusBadRequest)
			return
		}
		p.stats.Add(0, psStateMerges, 1)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "state: GET or POST only", http.StatusMethodNotAllowed)
	}
}

// PushStateToSuccessor sends this node's checkpoint frame to its ring
// successor — the node that inherits the bulk of its keyspace — as the last
// act of a drain. Returns the successor's index on success. A node without a
// cluster, without handoff wiring, or whose push is refused reports an
// error; drains treat that as best-effort (the successor simply starts
// cold, exactly as before handoff existed).
func (p *Proxy) PushStateToSuccessor(ctx context.Context, client *http.Client) (int, error) {
	ps := p.peers
	if ps == nil {
		return -1, fmt.Errorf("state: no peer cluster configured")
	}
	h := p.handoff
	if h.Provide == nil {
		return -1, fmt.Errorf("state: handoff not enabled")
	}
	succ := ps.ring.SuccessorOf(ps.self)
	if succ < 0 {
		return -1, fmt.Errorf("state: no distinct ring successor")
	}
	data, err := h.Provide()
	if err != nil {
		return succ, fmt.Errorf("state: building frame: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ps.nodes[succ]+"/state", bytes.NewReader(data))
	if err != nil {
		return succ, err
	}
	hreq.Header["Content-Type"] = octetStreamValue
	if client == nil {
		// Not the probe client: a state frame is far larger than a probe and
		// deserves the context's deadline, not the 150 ms probe timeout.
		client = &http.Client{}
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return succ, fmt.Errorf("state: pushing to %s: %w", ps.nodes[succ], err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return succ, fmt.Errorf("state: successor %s answered %d: %s", ps.nodes[succ], resp.StatusCode, bytes.TrimSpace(body))
	}
	_, _ = io.CopyN(io.Discard, resp.Body, 1<<10) // best-effort drain so the connection can be reused
	p.stats.Add(0, psStatePushes, 1)
	return succ, nil
}
