// Package server is the reproduction's ATS-like prototype (§5): an HTTP
// caching proxy whose Hot Object Cache admission is driven by a pluggable
// decider (a static expert, any baseline, or Darwin's online controller), an
// origin server with injected WAN latency, and a closed-loop load generator
// measuring first-byte latency and application throughput (§6.4).
//
// The request path mirrors the paper's testbed shape: an HOC hit is served
// straight from memory; a DC hit pays a configurable disk-access latency; a
// miss pays a round trip to the origin, which itself delays each response by
// the injected origin RTT. Cache-state concurrency is the decider's problem:
// a concurrency-safe decider (one backed by the sharded cache engine, which
// stripes the object space across per-shard mutexes) runs shard-parallel,
// while any other decider is transparently wrapped in a single global mutex —
// the HOC lock contention the paper observes at high concurrency, kept as the
// comparison arm. Either way the critical sections cover only decider calls,
// never body writes or origin I/O, and the proxy's own data-plane counters
// live in lock-striped cells so Stats reads are coherent and lock-free.
//
// The proxy has two data-plane modes. The legacy mode (NewProxy) reproduces
// the paper's happy-path testbed: one origin fetch per miss, streamed to the
// client. The resilient mode (NewResilientProxy) hardens the same path for a
// faulty origin: per-request context deadlines, retried fetches with
// exponential backoff and jitter, single-flight coalescing so concurrent
// misses for one object cost one origin fetch, and graceful degradation —
// when the origin stays down the proxy serves a previously-seen object stale
// (the serve-stale analogue) and only then answers 502. A failed fetch is
// accounted as a proxy error, never as a cache admission, so origin faults
// cannot corrupt the decider's view of what is resident.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darwin/internal/breaker"
	"darwin/internal/cache"
	"darwin/internal/stripe"
	"darwin/internal/trace"
)

// Origin is the content provider's origin server: it serves any object of
// any requested size after an injected WAN delay.
type Origin struct {
	// Latency is the injected delay per request (the paper injects 100 ms
	// between proxy and origin; tests use smaller values).
	Latency time.Duration
	// requests/bytes count served work (midgress accounting). Atomics, so
	// high-concurrency request accounting never serializes handlers.
	requests atomic.Int64
	bytes    atomic.Int64
}

// account records one served request of the given size.
func (o *Origin) account(size int64) {
	o.requests.Add(1)
	o.bytes.Add(size)
}

// ServeHTTP implements http.Handler for GET /obj/<id>?size=<bytes>.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_, size, err := parseObjectURL(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if o.Latency > 0 {
		time.Sleep(o.Latency)
	}
	o.account(size)
	h := w.Header()
	setContentType(h)
	setContentLength(h, size)
	w.WriteHeader(http.StatusOK)
	_ = writeBody(w, size) // client went away; nothing useful to do with the error
}

// Stats returns the origin's served request and byte counts (midgress).
func (o *Origin) Stats() (requests, bytes int64) {
	return o.requests.Load(), o.bytes.Load()
}

// parseObjectURL extracts (id, size) from /obj/<id>?size=<n>. It is the
// first step of every request, so the query parameter is scanned in place:
// r.URL.Query() materializes a url.Values map (two allocations plus the
// string copies) per call, where the common "size=<digits>" form needs none.
func parseObjectURL(r *http.Request) (uint64, int64, error) {
	const prefix = "/obj/"
	path := r.URL.Path
	if len(path) <= len(prefix) || path[:len(prefix)] != prefix {
		return 0, 0, fmt.Errorf("server: bad path %q", path)
	}
	id, err := strconv.ParseUint(path[len(prefix):], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("server: bad object id: %v", err)
	}
	raw := sizeParam(r.URL.RawQuery)
	size, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || size < 0 {
		return 0, 0, fmt.Errorf("server: bad size %q", raw)
	}
	return id, size, nil
}

// sizeParam returns the first "size" value in rawQuery, decoded. The common
// case — a plain decimal value — is returned as a zero-allocation substring;
// values carrying query escapes take the url.QueryUnescape slow path so the
// accepted language matches what url.Values.Get would have produced ('+' is
// a space, %XX decodes, malformed escapes reject the request).
func sizeParam(rawQuery string) string {
	for len(rawQuery) > 0 {
		seg := rawQuery
		if i := strings.IndexByte(seg, '&'); i >= 0 {
			seg, rawQuery = seg[:i], rawQuery[i+1:]
		} else {
			rawQuery = ""
		}
		val, ok := strings.CutPrefix(seg, "size=")
		if !ok {
			continue
		}
		if strings.IndexByte(val, '%') < 0 && strings.IndexByte(val, '+') < 0 {
			return val
		}
		dec, err := url.QueryUnescape(val)
		if err != nil {
			return "" // malformed escape: reject, like url.ParseQuery would
		}
		return dec
	}
	return ""
}

// Decider is the cache-management brain plugged into the proxy: a static
// expert, a learned baseline, or Darwin's online controller.
type Decider interface {
	// Serve accounts one request and decides where it is served from.
	Serve(r trace.Request) cache.Result
	// Metrics exposes accumulated cache metrics.
	Metrics() cache.Metrics
	// Name labels the scheme.
	Name() string
}

// Lookuper is an optional Decider extension: a residency probe that mutates
// no cache state, metrics, or frequency tracking. The resilient proxy probes
// before an origin fetch and commits the request through Serve only after
// the fetch succeeds, so a failed fetch cannot leave a phantom admission in
// the cache (the decider believing an object is DC-resident whose bytes
// never arrived).
type Lookuper interface {
	Lookup(id uint64) cache.Result
}

// serializedDecider adapts a decider that is not safe for concurrent callers
// (anything that does not advertise Concurrent() == true, e.g. a baseline
// over a bare Hierarchy) by serializing every call under one global mutex —
// the legacy proxy data plane, preserved verbatim as the sharded engine's
// comparison arm.
type serializedDecider struct {
	mu sync.Mutex
	// dec is the wrapped decider; guarded by mu.
	dec Decider
	// lk is dec's probe seam, nil if dec has none; guarded by mu.
	lk Lookuper
}

func newSerializedDecider(dec Decider) *serializedDecider {
	lk, _ := dec.(Lookuper)
	return &serializedDecider{dec: dec, lk: lk}
}

func (s *serializedDecider) Serve(r trace.Request) cache.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Serve(r)
}

func (s *serializedDecider) Lookup(id uint64) cache.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lk.Lookup(id)
}

func (s *serializedDecider) Metrics() cache.Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Metrics()
}

func (s *serializedDecider) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec.Name()
}

// Resilience configures the proxy's fault-tolerance layer. The zero value
// disables it, reproducing the legacy happy-path data plane.
type Resilience struct {
	// Enabled turns the resilient miss path on.
	Enabled bool
	// MaxAttempts is the total origin fetch attempts per miss (1 = no retry).
	MaxAttempts int
	// FetchTimeout bounds each attempt (headers + full body).
	FetchTimeout time.Duration
	// BackoffBase is the pre-jitter backoff before the first retry; it
	// doubles per retry up to BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// Coalesce enables single-flight coalescing of concurrent misses.
	Coalesce bool
	// ServeStale enables degraded mode: when the origin stays down after
	// retries, a previously-served object is answered stale instead of 502.
	ServeStale bool
	// StaleCap bounds the remembered-object set (default 64k entries).
	StaleCap int
	// Seed drives the backoff jitter.
	Seed int64
}

// DefaultResilience returns the hardened defaults used by cmd/darwin-proxy
// and the chaos experiment: 4 attempts, 2 s per-attempt deadline, 5 ms base
// backoff capped at 250 ms, coalescing and serve-stale on.
func DefaultResilience() Resilience {
	return Resilience{
		Enabled:      true,
		MaxAttempts:  4,
		FetchTimeout: 2 * time.Second,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   250 * time.Millisecond,
		Coalesce:     true,
		ServeStale:   true,
		StaleCap:     64 << 10,
		Seed:         1,
	}
}

// Stripe-cell indexes for the proxy's data-plane counters.
const (
	psOriginFetches = iota
	psRetries
	psFetchFailures
	psCoalesced
	psStaleServes
	psErrors
	psShed
	psDeadlineSheds
	psBreakerRejects
	psHedges
	psHedgeWins
	psRetryBudgetDenied
	psPeerProbes
	psPeerFills
	psPeerErrors
	psPeerRejects
	psPeerServed
	psPeerSkipsDead
	psGossipExchanges
	psStateMerges
	psStateRejects
	psStatePushes
	psWidth
)

// proxyStatStripes is the stripe count for the proxy counters: enough to
// keep unrelated objects off each other's mutex at high concurrency, small
// enough that a Stats snapshot stays a handful of cache lines.
const proxyStatStripes = 32

// ProxyStats is a snapshot of the proxy's data-plane counters.
type ProxyStats struct {
	// OriginFetches counts fetch attempts sent to the origin.
	OriginFetches int64
	// Retries counts attempts beyond the first per miss.
	Retries int64
	// FetchFailures counts misses that exhausted every attempt.
	FetchFailures int64
	// Coalesced counts requests that piggybacked on another request's fetch.
	Coalesced int64
	// StaleServes counts degraded-mode responses.
	StaleServes int64
	// Errors counts client-visible 5xx responses issued by this proxy.
	Errors int64
	// Shed counts requests the overload layer refused to do full work for
	// (admission, breaker, or deadline sheds — answered stale or 503).
	Shed int64
	// DeadlineSheds counts misses shed because the client's remaining
	// deadline could not cover a fetch (a subset of Shed).
	DeadlineSheds int64
	// BreakerRejects counts fetch attempts denied by the open circuit
	// breaker (no origin traffic was generated for them).
	BreakerRejects int64
	// Hedges counts hedged second fetches launched; HedgeWins counts hedges
	// that answered before the primary fetch.
	Hedges, HedgeWins int64
	// RetryBudgetDenied counts retries suppressed by the rolling-window
	// retry budget (the anti-retry-storm cap).
	RetryBudgetDenied int64
	// PeerProbes counts probes sent to ring siblings; PeerFills counts
	// misses answered by a sibling instead of the origin; PeerErrors counts
	// failed probes (transport errors, bad statuses, truncated bodies);
	// PeerRejects counts probes suppressed by an open sibling breaker.
	PeerProbes, PeerFills, PeerErrors, PeerRejects int64
	// PeerServed counts sibling probes this node answered with a hit.
	PeerServed int64
	// PeerSkipsDead counts probes suppressed because the gossip layer
	// graded the designated holder Dead.
	PeerSkipsDead int64
	// GossipExchanges counts /gossip requests answered.
	GossipExchanges int64
	// StateMerges counts donor checkpoint frames accepted on /state;
	// StateRejects counts frames refused by validation (the inheritor's
	// state was untouched); StatePushes counts drain-time frames this node
	// delivered to its ring successor.
	StateMerges, StateRejects, StatePushes int64
}

// Proxy is the CDN edge server.
type Proxy struct {
	// decider drives HOC/DC decisions. It is always safe for concurrent
	// callers: deciders advertising Concurrent() == true (the sharded cache
	// engine and the online controller over it) are used directly and run
	// shard-parallel; anything else is wrapped in a serializedDecider at
	// construction. The critical sections cover only decider calls, never
	// origin I/O or body writes.
	decider Decider
	// lk is the decider's residency-probe seam, nil when the underlying
	// decider offers none (then the resilient path falls back to
	// decide-first ordering).
	lk Lookuper

	// OriginURL is the origin base URL (e.g. http://127.0.0.1:9000).
	OriginURL string
	// DCLatency is the injected disk-read delay for DC hits.
	DCLatency time.Duration
	// Client issues origin fetches.
	Client *http.Client

	res     Resilience
	flights flightGroup

	// ov is the overload-protection layer (zero = disabled); brk gates
	// origin fetch attempts and retryBudget caps the backoff path when it
	// is enabled. Both publish through seqlock cells, so readiness and
	// stats reads never touch the data plane's locks.
	ov          Overload
	brk         *breaker.Breaker
	retryBudget *breaker.Budget
	// inflight gauges admitted requests for the bounded-in-flight budget.
	inflight atomic.Int64

	// stale remembers objects the proxy has successfully served, bounded by
	// res.StaleCap — the prototype's serve-stale store (bodies are
	// deterministic, so only membership must be remembered).
	staleMu sync.Mutex
	stale   map[uint64]int64 // guarded by staleMu

	// peers is the cluster's peer-fill layer (peer.go); nil outside a
	// cluster. Immutable after SetPeers.
	peers *peerSet

	// handoff wires /state to the binary's checkpoint codec (zero when the
	// drain-time handoff is not enabled).
	handoff StateHandoff

	rngMu sync.Mutex
	rng   *rand.Rand // guarded by rngMu; retry jitter only

	// stats holds the data-plane counters (ps* indexes), striped by object
	// id so concurrent handlers never contend on one counter line and Stats
	// snapshots are coherent without a global lock.
	stats *stripe.Counters

	start time.Time
}

// NewProxy builds a proxy with the legacy happy-path data plane (no retries,
// no coalescing, no degraded mode) — the pre-hardening behavior, kept as the
// chaos experiment's control arm.
func NewProxy(decider Decider, originURL string, dcLatency time.Duration) *Proxy {
	return NewResilientProxy(decider, originURL, dcLatency, Resilience{})
}

// NewResilientProxy builds a proxy with the given fault-tolerance layer.
func NewResilientProxy(decider Decider, originURL string, dcLatency time.Duration, res Resilience) *Proxy {
	if res.Enabled {
		if res.MaxAttempts <= 0 {
			res.MaxAttempts = 1
		}
		if res.BackoffBase <= 0 {
			res.BackoffBase = 5 * time.Millisecond
		}
		if res.StaleCap <= 0 {
			res.StaleCap = 64 << 10
		}
	}
	dec := decider
	if c, ok := decider.(interface{ Concurrent() bool }); !ok || !c.Concurrent() {
		// Not advertised concurrency-safe: serialize it under one global
		// mutex (the legacy data plane).
		dec = newSerializedDecider(decider)
	}
	// The probe seam must come from the original decider — the serialized
	// wrapper always has a Lookup method, but it panics when the wrapped
	// decider has none.
	var lk Lookuper
	if orig, ok := decider.(Lookuper); ok {
		if dec == decider {
			lk = orig
		} else {
			lk = dec.(Lookuper)
		}
	}
	return &Proxy{
		decider:   dec,
		lk:        lk,
		OriginURL: originURL,
		DCLatency: dcLatency,
		Client:    &http.Client{Timeout: 30 * time.Second},
		res:       res,
		rng:       rand.New(rand.NewSource(res.Seed)),
		stats:     stripe.New(proxyStatStripes, psWidth),
		start:     time.Now(),
	}
}

// Metrics returns the decider's cache metrics (thread-safe: the decider is
// either concurrency-safe itself — sharded engines answer from lock-free
// per-shard snapshots — or wrapped in the serializing adapter). Deciders with
// deferred counter publication are synced first so the read is exact.
func (p *Proxy) Metrics() cache.Metrics {
	if s, ok := p.decider.(interface{ SyncMetrics() }); ok {
		s.SyncMetrics()
	}
	return p.decider.Metrics()
}

// Stats returns a coherent snapshot of the proxy's data-plane counters:
// every stripe is observed at one consistent instant, so counters bumped
// together for one request (e.g. a fetch failure and its final retry) are
// never seen torn. The read is lock-free and never stalls handlers.
func (p *Proxy) Stats() ProxyStats {
	var v [psWidth]int64
	p.stats.Snapshot(v[:])
	return ProxyStats{
		OriginFetches:     v[psOriginFetches],
		Retries:           v[psRetries],
		FetchFailures:     v[psFetchFailures],
		Coalesced:         v[psCoalesced],
		StaleServes:       v[psStaleServes],
		Errors:            v[psErrors],
		Shed:              v[psShed],
		DeadlineSheds:     v[psDeadlineSheds],
		BreakerRejects:    v[psBreakerRejects],
		Hedges:            v[psHedges],
		HedgeWins:         v[psHedgeWins],
		RetryBudgetDenied: v[psRetryBudgetDenied],
		PeerProbes:        v[psPeerProbes],
		PeerFills:         v[psPeerFills],
		PeerErrors:        v[psPeerErrors],
		PeerRejects:       v[psPeerRejects],
		PeerServed:        v[psPeerServed],
		PeerSkipsDead:     v[psPeerSkipsDead],
		GossipExchanges:   v[psGossipExchanges],
		StateMerges:       v[psStateMerges],
		StateRejects:      v[psStateRejects],
		StatePushes:       v[psStatePushes],
	}
}

// serve runs the decider for one request. Concurrency is the decider's: a
// sharded engine serializes only within the owning shard, the wrapper
// serializes globally.
func (p *Proxy) serve(req trace.Request) cache.Result {
	return p.decider.Serve(req)
}

// ServeHTTP implements http.Handler for GET /obj/<id>?size=<n>.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id, size, err := parseObjectURL(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req := trace.Request{ID: id, Size: size, Time: time.Since(p.start).Microseconds()}
	if p.peers != nil && isPeerProbe(r) {
		// A sibling's probe: answered from memory or 404, before the
		// overload machinery — the probe path is strictly cheaper than the
		// admission work that would guard it, and must never recurse into
		// peer or origin fetches (loop guard).
		p.servePeerProbe(w, r, req)
		return
	}
	if p.peers != nil {
		// Client traffic feeds the replication tracker (probes don't: the
		// prober already counted the request), so the designated-holder map
		// mirrors what the front tier's replicator sees.
		p.peers.observe(id)
	}
	if p.ov.Enabled {
		// Admission control runs before any cache or origin work: a request
		// over the in-flight budget is shed for pennies (stale or 503) so
		// overload never turns into an unbounded queue of doomed work.
		n := p.inflight.Add(1)
		defer p.inflight.Add(-1)
		if !p.admit(w, req, n) {
			return
		}
		if ctx, cancel := p.deadlineCtx(r); cancel != nil {
			defer cancel()
			r = r.WithContext(ctx)
		}
	}
	if p.res.Enabled {
		p.serveResilient(w, r, req)
		return
	}

	// Legacy happy-path data plane: decide first (a miss is accounted — and
	// possibly admitted — before the origin fetch is known to succeed).
	res := p.serve(req)
	setXCache(w.Header(), res)
	if res == cache.Miss {
		headerSent, err := p.fetchOriginStream(w, r, id, size)
		if err != nil {
			p.stats.Add(id, psErrors, 1)
			if !headerSent {
				http.Error(w, err.Error(), http.StatusBadGateway)
			}
			// After the header is out the short body itself signals the
			// failure: the connection closes below the declared length.
		}
		return
	}
	p.serveLocal(w, res, size)
}

// serveLocal answers a request from the proxy itself (cache hits, committed
// misses, stale serves), paying the DC delay for disk hits. It is the
// serve-hit fast path (a darwinlint hotpath root): pre-serialized headers
// and the shared static body chunk keep it at zero allocations per request
// above net/http's own internals.
func (p *Proxy) serveLocal(w http.ResponseWriter, res cache.Result, size int64) {
	if res == cache.DCHit && p.DCLatency > 0 {
		time.Sleep(p.DCLatency)
	}
	h := w.Header()
	setContentType(h)
	setContentLength(h, size)
	w.WriteHeader(http.StatusOK)
	_ = writeBody(w, size) // client went away; nothing useful to do with the error
}

// serveResilient is the hardened miss path: probe residency without mutating
// the cache, fetch (coalesced + retried) on a miss, and commit the request
// through the decider only once the bytes are known good.
func (p *Proxy) serveResilient(w http.ResponseWriter, r *http.Request, req trace.Request) {
	canProbe := p.lk != nil
	if canProbe {
		if probe := p.lk.Lookup(req.ID); probe != cache.Miss {
			res := p.serve(req)
			setXCache(w.Header(), res)
			p.serveLocal(w, res, req.Size)
			p.rememberStale(req.ID, req.Size)
			return
		}
	} else {
		// No probe seam: fall back to decide-first ordering. Retries and
		// coalescing still apply, but a failed fetch leaves the decider's
		// miss accounting behind (documented phantom-admission caveat).
		res := p.serve(req)
		if res != cache.Miss {
			setXCache(w.Header(), res)
			p.serveLocal(w, res, req.Size)
			p.rememberStale(req.ID, req.Size)
			return
		}
	}

	// Deadline-aware shedding: a miss whose remaining client deadline cannot
	// cover a fetch is doomed work — answer it cheaply now (stale or 503)
	// instead of queueing a fetch the client will never see complete.
	if p.doomed(r.Context()) {
		p.stats.Add(req.ID, psDeadlineSheds, 1)
		p.shed(w, req, "deadline")
		return
	}

	// Peer fill: before paying the origin hop, ask the ring siblings the
	// front tier would have routed this object to. A validated sibling copy
	// commits through the decider exactly like a successful origin fetch —
	// the admit is journaled and the object becomes locally resident.
	// (Requests carrying the probe header never reach this path, so a
	// two-node cycle terminates after one hop.)
	if p.peers != nil {
		if p.fetchPeer(r.Context(), req.ID, req.Size) {
			res := cache.Miss
			if canProbe {
				res = p.serve(req)
			}
			w.Header()[PeerHeader] = peerFillValue
			setXCache(w.Header(), res)
			p.serveLocal(w, res, req.Size)
			p.rememberStale(req.ID, req.Size)
			return
		}
	}

	err := p.fetchResilient(r.Context(), req.ID, req.Size)
	if err == nil {
		res := cache.Miss
		if canProbe {
			// Commit only now: the fetch succeeded, so the miss (and any
			// admission) enters the decider's books. A coalesced peer may
			// have admitted the object already, in which case Serve reports
			// the hit it found.
			res = p.serve(req)
		}
		setXCache(w.Header(), res)
		p.serveLocal(w, res, req.Size)
		p.rememberStale(req.ID, req.Size)
		return
	}

	// Shed outcomes: an open breaker or an expired client deadline is not an
	// origin failure to 502 on, it is load the overload layer refused — shed
	// it (stale or 503+Retry-After) so the client backs off instead of
	// retrying into the same wall.
	if p.ov.Enabled {
		switch {
		case errors.Is(err, breaker.ErrOpen):
			p.shed(w, req, "breaker")
			return
		case errors.Is(err, context.DeadlineExceeded):
			p.stats.Add(req.ID, psDeadlineSheds, 1)
			p.shed(w, req, "deadline")
			return
		}
	}

	// Degraded mode: the origin is down and retries are exhausted. Serve the
	// object stale if this proxy has ever served it, else surface the 502.
	// The request is accounted as a proxy error, not as a cache admission.
	if p.res.ServeStale {
		if _, ok := p.staleHas(req.ID); ok {
			p.stats.Add(req.ID, psStaleServes, 1)
			w.Header()["X-Cache"] = xcacheStale
			w.Header().Set("Warning", `110 darwin-proxy "response is stale"`)
			p.serveLocal(w, cache.HOCHit, req.Size)
			return
		}
	}
	p.stats.Add(req.ID, psErrors, 1)
	http.Error(w, fmt.Sprintf("server: origin unavailable: %v", err), http.StatusBadGateway)
}

// rememberStale records a successfully served object for degraded mode.
func (p *Proxy) rememberStale(id uint64, size int64) {
	if !p.res.ServeStale {
		return
	}
	p.staleMu.Lock()
	defer p.staleMu.Unlock()
	if p.stale == nil {
		p.stale = make(map[uint64]int64)
	}
	if _, ok := p.stale[id]; !ok && len(p.stale) >= p.res.StaleCap {
		for k := range p.stale { // evict an arbitrary entry to stay bounded
			delete(p.stale, k)
			break
		}
	}
	p.stale[id] = size
}

// staleHas reports whether the proxy has served id before.
func (p *Proxy) staleHas(id uint64) (int64, bool) {
	p.staleMu.Lock()
	defer p.staleMu.Unlock()
	size, ok := p.stale[id]
	return size, ok
}

// fetchResilient fetches one object with coalescing and retries. Coalesced
// fetches run under a detached context: their outcome is shared by every
// waiter, so they must not die with the leader's client connection. Under
// overload protection the detached fetch keeps the leader's *deadline* (but
// not its cancellation), so a doomed shared fetch is still cut short, and
// waiters stop waiting when their own deadline expires.
func (p *Proxy) fetchResilient(ctx context.Context, id uint64, size int64) error {
	if !p.res.Coalesce {
		return p.fetchRetry(ctx, id, size)
	}
	err, shared := p.flights.do(ctx, flightKey{id: id, size: size}, func() error {
		fctx := context.Background()
		if p.ov.Enabled {
			if dl, ok := ctx.Deadline(); ok {
				dctx, cancel := context.WithDeadline(fctx, dl)
				defer cancel()
				fctx = dctx
			}
		}
		return p.fetchRetry(fctx, id, size)
	})
	if shared {
		p.stats.Add(id, psCoalesced, 1)
	}
	return err
}

// fetchRetry runs up to MaxAttempts origin fetches with exponential backoff
// and jitter between attempts. Under overload protection every attempt must
// pass the circuit breaker (an open breaker fails the miss immediately with
// ErrOpen) and every attempt beyond the first must win a token from the
// rolling-window retry budget — the cap that keeps the backoff path from
// probing a sick origin harder than the breaker's half-open budget.
func (p *Proxy) fetchRetry(ctx context.Context, id uint64, size int64) error {
	var lastErr error
	for attempt := 0; attempt < p.res.MaxAttempts; attempt++ {
		if attempt > 0 {
			if p.retryBudget != nil && !p.retryBudget.Allow() {
				p.stats.Add(id, psRetryBudgetDenied, 1)
				break
			}
			p.stats.Add(id, psRetries, 1)
			if err := sleepCtx(ctx, p.backoff(attempt)); err != nil {
				break
			}
		}
		if p.brk != nil && !p.brk.Allow() {
			p.stats.Add(id, psBreakerRejects, 1)
			lastErr = breaker.ErrOpen
			break
		}
		p.stats.Add(id, psOriginFetches, 1)
		err := p.fetchMaybeHedged(ctx, id, size)
		if p.brk != nil {
			p.brk.Record(err == nil)
		}
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		return nil
	}
	p.stats.Add(id, psFetchFailures, 1)
	return lastErr
}

// backoff returns the pre-retry delay for the given attempt (1-based):
// exponential with "equal jitter" (half fixed, half uniform) so synchronized
// retry storms against a recovering origin desynchronize.
func (p *Proxy) backoff(attempt int) time.Duration {
	d := p.res.BackoffBase << (attempt - 1)
	if p.res.BackoffMax > 0 && d > p.res.BackoffMax {
		d = p.res.BackoffMax
	}
	p.rngMu.Lock()
	j := time.Duration(p.rng.Int63n(int64(d)/2 + 1))
	p.rngMu.Unlock()
	return d/2 + j
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// fetchDiscard performs one origin fetch under a per-attempt deadline,
// consuming and validating the full body without buffering it: bodies are
// deterministic, so the proxy regenerates them for clients. A non-200
// status, a transport error, or a short body (mid-stream truncation) all
// count as a failed attempt and are retried.
func (p *Proxy) fetchDiscard(ctx context.Context, id uint64, size int64) error {
	if p.res.FetchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.res.FetchTimeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, originURL(p.OriginURL, id, size), nil)
	if err != nil {
		return fmt.Errorf("server: origin request: %w", err)
	}
	resp, err := p.Client.Do(hreq)
	if err != nil {
		return fmt.Errorf("server: origin fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<10) // best-effort drain so the connection can be reused
		return fmt.Errorf("server: origin status %d", resp.StatusCode)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return fmt.Errorf("server: origin body after %d/%d bytes: %w", n, size, err)
	}
	if n != size {
		return fmt.Errorf("server: origin body truncated: %d/%d bytes", n, size)
	}
	return nil
}

// fetchOriginStream streams the object from the origin to the client — the
// legacy miss path. Origin response headers (Content-Length) are propagated
// before the status line, so a truncated origin body surfaces to the client
// as a short read instead of a silent short 200. headerSent tells the caller
// whether a 502 can still be written.
func (p *Proxy) fetchOriginStream(w http.ResponseWriter, r *http.Request, id uint64, size int64) (headerSent bool, err error) {
	p.stats.Add(id, psOriginFetches, 1)
	hreq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, originURL(p.OriginURL, id, size), nil)
	if err != nil {
		return false, fmt.Errorf("server: origin request: %w", err)
	}
	resp, err := p.Client.Do(hreq)
	if err != nil {
		return false, fmt.Errorf("server: origin fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<10) // best-effort drain so the connection can be reused
		return false, fmt.Errorf("server: origin status %d", resp.StatusCode)
	}
	h := w.Header()
	setContentType(h)
	if cl, ok := resp.Header["Content-Length"]; ok && len(cl) > 0 && cl[0] != "" {
		h["Content-Length"] = cl
	} else {
		setContentLength(h, size)
	}
	w.WriteHeader(http.StatusOK)
	// The relay is the one proxy path that must own bytes in flight: copy
	// through a pooled buffer (ResponseWriters with a ReadFrom fast path
	// still take it; the buffer then goes back unused but unharmed).
	buf := getCopyBuf()
	n, err := io.CopyBuffer(w, resp.Body, *buf)
	putCopyBuf(buf)
	if err != nil {
		return true, fmt.Errorf("server: origin copy after %d/%d bytes: %w", n, size, err)
	}
	return true, nil
}
