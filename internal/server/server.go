// Package server is the reproduction's ATS-like prototype (§5): an HTTP
// caching proxy whose Hot Object Cache admission is driven by a pluggable
// decider (a static expert, any baseline, or Darwin's online controller), an
// origin server with injected WAN latency, and a closed-loop load generator
// measuring first-byte latency and application throughput (§6.4).
//
// The request path mirrors the paper's testbed shape: an HOC hit is served
// straight from memory; a DC hit pays a configurable disk-access latency; a
// miss pays a round trip to the origin, which itself delays each response by
// the injected origin RTT. Cache state is guarded by a single mutex — the
// same HOC lock contention the paper observes at high concurrency.
package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"darwin/internal/cache"
	"darwin/internal/trace"
)

// pattern is the repeated content block served for every object.
var pattern = func() []byte {
	b := make([]byte, 64<<10)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}()

// writeBody writes size bytes of deterministic content to w.
func writeBody(w io.Writer, size int64) error {
	for size > 0 {
		n := int64(len(pattern))
		if size < n {
			n = size
		}
		if _, err := w.Write(pattern[:n]); err != nil {
			return err
		}
		size -= n
	}
	return nil
}

// Origin is the content provider's origin server: it serves any object of
// any requested size after an injected WAN delay.
type Origin struct {
	// Latency is the injected delay per request (the paper injects 100 ms
	// between proxy and origin; tests use smaller values).
	Latency time.Duration
	// requests counts served requests (midgress accounting).
	requests int64
	bytes    int64
	mu       sync.Mutex
}

// ServeHTTP implements http.Handler for GET /obj/<id>?size=<bytes>.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_, size, err := parseObjectURL(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	time.Sleep(o.Latency)
	o.mu.Lock()
	o.requests++
	o.bytes += size
	o.mu.Unlock()
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	writeBody(w, size)
}

// Stats returns the origin's served request and byte counts (midgress).
func (o *Origin) Stats() (requests, bytes int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.requests, o.bytes
}

// parseObjectURL extracts (id, size) from /obj/<id>?size=<n>.
func parseObjectURL(r *http.Request) (uint64, int64, error) {
	const prefix = "/obj/"
	path := r.URL.Path
	if len(path) <= len(prefix) || path[:len(prefix)] != prefix {
		return 0, 0, fmt.Errorf("server: bad path %q", path)
	}
	id, err := strconv.ParseUint(path[len(prefix):], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("server: bad object id: %v", err)
	}
	size, err := strconv.ParseInt(r.URL.Query().Get("size"), 10, 64)
	if err != nil || size < 0 {
		return 0, 0, fmt.Errorf("server: bad size %q", r.URL.Query().Get("size"))
	}
	return id, size, nil
}

// Decider is the cache-management brain plugged into the proxy: a static
// expert, a learned baseline, or Darwin's online controller.
type Decider interface {
	// Serve accounts one request and decides where it is served from.
	Serve(r trace.Request) cache.Result
	// Metrics exposes accumulated cache metrics.
	Metrics() cache.Metrics
	// Name labels the scheme.
	Name() string
}

// Proxy is the CDN edge server.
type Proxy struct {
	// Decider drives HOC/DC decisions; guarded by mu.
	decider Decider
	mu      sync.Mutex

	// OriginURL is the origin base URL (e.g. http://127.0.0.1:9000).
	OriginURL string
	// DCLatency is the injected disk-read delay for DC hits.
	DCLatency time.Duration
	// Client issues origin fetches.
	Client *http.Client

	start time.Time
}

// NewProxy builds a proxy around a decider.
func NewProxy(decider Decider, originURL string, dcLatency time.Duration) *Proxy {
	return &Proxy{
		decider:   decider,
		OriginURL: originURL,
		DCLatency: dcLatency,
		Client:    &http.Client{Timeout: 30 * time.Second},
		start:     time.Now(),
	}
}

// Metrics returns the decider's cache metrics (thread-safe).
func (p *Proxy) Metrics() cache.Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.decider.Metrics()
}

// ServeHTTP implements http.Handler for GET /obj/<id>?size=<n>.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id, size, err := parseObjectURL(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req := trace.Request{ID: id, Size: size, Time: time.Since(p.start).Microseconds()}
	p.mu.Lock()
	res := p.decider.Serve(req)
	p.mu.Unlock()

	w.Header().Set("X-Cache", res.String())
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	switch res {
	case cache.HOCHit:
		// In-memory: no artificial delay.
	case cache.DCHit:
		time.Sleep(p.DCLatency)
	case cache.Miss:
		if err := p.fetchOrigin(w, id, size); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		return
	}
	w.WriteHeader(http.StatusOK)
	writeBody(w, size)
}

// fetchOrigin streams the object from the origin to the client.
func (p *Proxy) fetchOrigin(w http.ResponseWriter, id uint64, size int64) error {
	url := fmt.Sprintf("%s/obj/%d?size=%d", p.OriginURL, id, size)
	resp, err := p.Client.Get(url)
	if err != nil {
		return fmt.Errorf("server: origin fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: origin status %d", resp.StatusCode)
	}
	w.WriteHeader(http.StatusOK)
	_, err = io.Copy(w, resp.Body)
	return err
}
