package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// Gate is one readiness condition: a named predicate consulted by /readyz.
// The proxy registers its circuit breaker here ("breaker" is ready while the
// breaker is not open), so an edge whose origin path is tripped advertises
// itself unready and the load-balancing layer sheds its ring weight.
type Gate struct {
	// Name labels the gate in the /readyz body.
	Name string
	// Ready reports whether this condition currently passes.
	Ready func() bool
}

// Health is the serving tier's liveness/readiness surface, shared by
// cmd/darwin-proxy and cmd/origin:
//
//   - /healthz (Healthz) answers 200 while the process is alive — it only
//     says "don't restart me", never "send me traffic";
//   - /readyz (Readyz) answers 200 only while the server is not draining and
//     every gate passes; otherwise 503 with the failing reason in the body.
//
// On SIGTERM the cmds call StartDrain before http.Server.Shutdown: /readyz
// flips to 503 first, the balancer stops routing new work here, and only
// then are in-flight connections drained — the health-gated drain sequence
// that makes restarts invisible to clients.
type Health struct {
	draining atomic.Bool
	gates    []Gate
}

// NewHealth builds a Health with the given readiness gates.
func NewHealth(gates ...Gate) *Health {
	return &Health{gates: gates}
}

// StartDrain marks the server draining: /readyz fails from now on while
// /healthz keeps passing, so orchestrators stop new traffic without killing
// in-flight work.
func (h *Health) StartDrain() {
	h.draining.Store(true)
}

// Draining reports whether StartDrain has been called.
func (h *Health) Draining() bool {
	return h.draining.Load()
}

// Healthz implements the liveness endpoint: 200 while the process runs.
func (h *Health) Healthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprintln(w, "ok") // client went away; nothing useful to do with the error
}

// Readyz implements the readiness endpoint: 503 while draining or while any
// gate fails, naming the reason.
func (h *Health) Readyz(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	for _, g := range h.gates {
		if !g.Ready() {
			http.Error(w, fmt.Sprintf("not ready: %s", g.Name), http.StatusServiceUnavailable)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprintln(w, "ready") // client went away; nothing useful to do with the error
}
