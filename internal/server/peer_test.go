package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/lb"
)

// peerPair builds a 2-node cluster: two resilient sharded proxies over one
// origin, wired as each other's ring sibling.
func peerPair(t *testing.T, originURL string) (a, b *Proxy, aSrv, bSrv *httptest.Server) {
	t.Helper()
	mk := func() *Proxy {
		dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
			cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return NewResilientProxy(dec, originURL, 0, fastResilience())
	}
	a, b = mk(), mk()
	aSrv = httptest.NewServer(a)
	bSrv = httptest.NewServer(b)
	nodes := []string{aSrv.URL, bSrv.URL}
	if err := a.SetPeers(PeerConfig{Self: aSrv.URL, Nodes: nodes}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeers(PeerConfig{Self: bSrv.URL, Nodes: nodes}); err != nil {
		t.Fatal(err)
	}
	return a, b, aSrv, bSrv
}

// peerObjectID returns the first object id >= from whose ring primary is
// node owner on an n-node cluster. Replica-aware peer fill only probes an
// object's designated holders, so tests that want node A to probe node B
// must pick ids the shared ring places on B. The ring here mirrors the one
// SetPeers builds (same server count, default virtual nodes).
func peerObjectID(t *testing.T, n, owner int, from uint64) uint64 {
	t.Helper()
	ring, err := lb.NewRing(lb.Config{Servers: n})
	if err != nil {
		t.Fatal(err)
	}
	var dst [1]int
	for id := from; id < from+1_000_000; id++ {
		if ring.Successors(id, dst[:]) == 1 && dst[0] == owner {
			return id
		}
	}
	t.Fatalf("no object id in [%d,%d) with primary %d", from, from+1_000_000, owner)
	return 0
}

func mustGet(t *testing.T, url string, hdr http.Header) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header[k] = v
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPeerFillServesFromSibling: a miss on node A for an object resident on
// sibling B is answered via the peer hop — no origin fetch — and the fill is
// committed through A's decider like an admit, so the object is locally
// resident afterwards.
func TestPeerFillServesFromSibling(t *testing.T) {
	origin := &Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	a, b, aSrv, bSrv := peerPair(t, originSrv.URL)
	defer aSrv.Close()
	defer bSrv.Close()

	// An object whose ring primary is B: A's replica-aware fill will probe
	// exactly its designated holder. Warm it on B — the Freq-1 expert admits
	// on the second touch; the third confirms residency.
	id := peerObjectID(t, 2, 1, 1)
	objURL := func(base string) string { return fmt.Sprintf("%s/obj/%d?size=1000", base, id) }
	mustGet(t, objURL(bSrv.URL), nil)
	mustGet(t, objURL(bSrv.URL), nil)
	if resp := mustGet(t, objURL(bSrv.URL), nil); resp.Header.Get("X-Cache") == "miss" {
		t.Fatalf("object %d not resident on B after warm-up", id)
	}
	originReqs, _ := origin.Stats()

	// A has never seen the object: its miss must fill from B, not the origin.
	resp := mustGet(t, objURL(aSrv.URL), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-filled request: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(PeerHeader); got != "fill" {
		t.Fatalf("peer-fill marker = %q, want %q", got, "fill")
	}
	if after, _ := origin.Stats(); after != originReqs {
		t.Fatalf("peer fill hit the origin: %d -> %d requests", originReqs, after)
	}
	st := a.Stats()
	if st.PeerProbes != 1 || st.PeerFills != 1 {
		t.Fatalf("A peer stats: probes=%d fills=%d, want 1/1", st.PeerProbes, st.PeerFills)
	}
	if bst := b.Stats(); bst.PeerServed != 1 {
		t.Fatalf("B served %d probes, want 1", bst.PeerServed)
	}

	// The fill was committed through A's decider (the miss is in its books).
	if m := a.Metrics(); m.Requests != 1 || m.Misses != 1 {
		t.Fatalf("peer fill not committed through the decider: %+v", m)
	}
	// A second touch fills from B again and — like a second origin miss —
	// crosses the Freq-1 expert's admission threshold: journaled as an admit.
	mustGet(t, objURL(aSrv.URL), nil)
	if m := a.Metrics(); m.DCWrites == 0 {
		t.Fatalf("second peer fill did not admit: %+v", m)
	}
	if resp := mustGet(t, objURL(aSrv.URL), nil); resp.Header.Get("X-Cache") == "miss" {
		t.Fatalf("object %d not resident on A after admitted peer fill", id)
	}
	if st := a.Stats(); st.PeerProbes != 2 {
		t.Fatalf("locally-resident re-request probed a peer: probes=%d, want 2", st.PeerProbes)
	}
}

// TestPeerProbeLoopGuard is the satellite requirement: in a 2-node cycle a
// probe terminates after exactly one hop. A misses, probes B; B — which also
// misses — must answer 404 without probing back or touching the origin.
func TestPeerProbeLoopGuard(t *testing.T) {
	origin := &Origin{}
	originSrv := httptest.NewServer(origin)
	a, b, aSrv, bSrv := peerPair(t, originSrv.URL)
	defer aSrv.Close()
	defer bSrv.Close()
	// Kill the origin so a probe loop could not hide behind an origin fill.
	originSrv.Close()

	id := peerObjectID(t, 2, 1, 1) // primary on B, so A probes it
	resp := mustGet(t, fmt.Sprintf("%s/obj/%d?size=100", aSrv.URL, id), nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead origin + cold cluster: status %d, want 502", resp.StatusCode)
	}
	ast, bst := a.Stats(), b.Stats()
	if ast.PeerProbes != 1 {
		t.Fatalf("A sent %d probes, want exactly 1", ast.PeerProbes)
	}
	if bst.PeerProbes != 0 {
		t.Fatalf("loop guard breached: B probed back %d time(s)", bst.PeerProbes)
	}
	if reqs, _ := origin.Stats(); reqs != 0 {
		t.Fatalf("a peer probe reached the origin: %d requests", reqs)
	}

	// A probe sent directly to a node is answered 404 (never forwarded),
	// even though the node's own sibling holds nothing either.
	probe := mustGet(t, fmt.Sprintf("%s/obj/%d?size=100", bSrv.URL, id), http.Header{PeerHopHeader: {"1"}})
	if probe.StatusCode != http.StatusNotFound {
		t.Fatalf("nonresident probe: status %d, want 404", probe.StatusCode)
	}
	if bst := b.Stats(); bst.PeerProbes != 0 {
		t.Fatalf("probe handling triggered outbound probes: %d", bst.PeerProbes)
	}
}

// TestPeerBreakerStopsProbingDeadSibling: once a sibling dies, its breaker
// opens after a few failed probes and later misses skip the probe entirely.
func TestPeerBreakerStopsProbingDeadSibling(t *testing.T) {
	origin := &Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	a, _, aSrv, bSrv := peerPair(t, originSrv.URL)
	defer aSrv.Close()
	bSrv.Close() // sibling dies immediately

	// MinRequests for the default peer breaker is 4: a handful of misses on
	// B-primary objects trips it, after which probes are rejected without
	// network I/O.
	ids := make([]uint64, 10)
	next := uint64(1)
	for i := range ids {
		ids[i] = peerObjectID(t, 2, 1, next)
		next = ids[i] + 1
	}
	for i := 0; i < 12; i++ {
		mustGet(t, fmt.Sprintf("%s/obj/%d?size=50", aSrv.URL, ids[i%10]), nil)
	}
	st := a.Stats()
	if st.PeerErrors < 4 {
		t.Fatalf("dead sibling produced %d probe errors, want >= 4", st.PeerErrors)
	}
	if st.PeerRejects == 0 {
		t.Fatal("sibling breaker never opened: no probe rejects recorded")
	}
}
