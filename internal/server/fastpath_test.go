package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"darwin/internal/baselines"
	"darwin/internal/cache"
)

// nullRW is a ResponseWriter with a pre-allocated header map and a discarding
// body writer, so allocation measurements see only the proxy's own work — not
// net/http's connection machinery or the recorder's body buffer.
type nullRW struct {
	h http.Header
	n int64
}

func (w *nullRW) Header() http.Header { return w.h }

func (w *nullRW) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func (w *nullRW) WriteHeader(int) {}

// hitProxy builds a proxy over a sharded static decider with batched counter
// publication (the deployed configuration), warms object 1 into the HOC
// (miss → dc-hit → hoc-hit takes three serves), and returns it.
func hitProxy(t testing.TB, resilient bool) *Proxy {
	t.Helper()
	dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec.Engine().(*cache.Sharded).SetPublishEvery(32)
	origin := httptest.NewServer(&Origin{})
	t.Cleanup(origin.Close)
	res := Resilience{}
	if resilient {
		res = DefaultResilience()
	}
	proxy := NewResilientProxy(dec, origin.URL, 0, res)
	for i := 0; i < 3; i++ {
		w := httptest.NewRecorder()
		proxy.ServeHTTP(w, httptest.NewRequest("GET", "/obj/1?size=4096", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("warm serve %d: status %d", i, w.Code)
		}
	}
	return proxy
}

// TestServeHitZeroAllocs is the committed form of the PR's headline claim:
// the serve-hit path — URL parse, decider call (including batched counter
// publication), pre-serialized headers, static-chunk body — performs zero
// heap allocations per request above net/http, on both the legacy and the
// resilient data planes.
func TestServeHitZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		resilient bool
	}{
		{"legacy", false},
		{"resilient", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			proxy := hitProxy(t, tc.resilient)
			w := &nullRW{h: make(http.Header, 4)}
			req := httptest.NewRequest("GET", "/obj/1?size=4096", nil)
			allocs := testing.AllocsPerRun(1000, func() {
				w.n = 0
				proxy.ServeHTTP(w, req)
				if w.n != 4096 {
					t.Fatalf("body: %d bytes, want 4096", w.n)
				}
			})
			if allocs != 0 {
				t.Errorf("serve-hit path: %.1f allocs/op, want 0", allocs)
			}
			if got := w.h.Get("X-Cache"); got != "hoc-hit" {
				t.Fatalf("X-Cache = %q, want hoc-hit", got)
			}
			if got := w.h.Get("Content-Length"); got != "4096" {
				t.Fatalf("Content-Length = %q, want 4096", got)
			}
		})
	}
}

// BenchmarkProxyServeHitDirect times the serve-hit path without the HTTP
// transport (direct handler call on a discarding ResponseWriter); ReportAllocs
// keeps the 0 allocs/op claim visible in `make microbench` output.
func BenchmarkProxyServeHitDirect(b *testing.B) {
	proxy := hitProxy(b, true)
	w := &nullRW{h: make(http.Header, 4)}
	req := httptest.NewRequest("GET", "/obj/1?size=4096", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proxy.ServeHTTP(w, req)
	}
}

// TestCopyBufPoolStress drives the pooled-buffer and pooled-URL-builder seams
// from concurrent goroutines (run under -race by `make race`): buffers come
// back full-size, writes to a borrowed buffer never race, and originURL built
// from recycled builders is always exactly the fmt.Sprintf string it replaced.
func TestCopyBufPoolStress(t *testing.T) {
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				b := getCopyBuf()
				if len(*b) != copyBufSize {
					t.Errorf("pooled buffer len %d, want %d", len(*b), copyBufSize)
				}
				(*b)[0] = byte(i)
				(*b)[copyBufSize-1] = byte(seed)
				id := uint64(seed)*1_000_003 + uint64(i)
				size := int64(i%100_000 + 1)
				got := originURL("http://origin:9000", id, size)
				want := "http://origin:9000/obj/" + strconv.FormatUint(id, 10) +
					"?size=" + strconv.FormatInt(size, 10)
				if got != want {
					t.Errorf("originURL = %q, want %q", got, want)
				}
				putCopyBuf(b)
			}
		}(g)
	}
	wg.Wait()
}

// TestContentLengthValueConcurrent hammers the lock-free Content-Length cache
// with colliding sizes from many goroutines: whatever entry a slot holds, the
// returned value must always serialize the requested size.
func TestContentLengthValueConcurrent(t *testing.T) {
	const workers, iters = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// A small size set forces both cache hits and slot collisions.
				size := int64((seed*31+i)%17 + 1)
				v := contentLengthValue(size)
				if len(v) != 1 || v[0] != strconv.FormatInt(size, 10) {
					t.Errorf("contentLengthValue(%d) = %v", size, v)
				}
			}
		}(g)
	}
	wg.Wait()
}
