package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"darwin/internal/breaker"
	"darwin/internal/cache"
	"darwin/internal/trace"
)

// DeadlineHeader carries the client's end-to-end deadline in milliseconds.
// The load generator sets it from LoadConfig.Deadline; the proxy (with
// PropagateDeadline on) converts it into a request context deadline that
// bounds every origin fetch attempt, so work the client has already given up
// on is cancelled instead of finished into the void.
const DeadlineHeader = "X-Darwin-Deadline-Ms"

// ShedHeader marks responses the overload layer answered without doing the
// full work: 503 rejects (admission, breaker, deadline) and degraded stale
// serves issued on a shed path. The value names the shed reason.
const ShedHeader = "X-Darwin-Shed"

// Overload configures the proxy's overload-protection layer: circuit
// breaking on the origin path, bounded-in-flight admission control,
// client-deadline propagation with doomed-work shedding, hedged fetches, and
// a rolling-window retry budget. The zero value disables all of it,
// reproducing the PR 1 retry-only data plane.
type Overload struct {
	// Enabled turns the overload layer on. Enabling it also enables the
	// resilient miss path (retries/coalescing/serve-stale ride below it).
	Enabled bool
	// Breaker parameterises the origin circuit breaker; the zero value
	// selects breaker defaults (1s window, 50% threshold, 250ms cool-off,
	// 3 half-open probes).
	Breaker breaker.Config
	// MaxInFlight bounds concurrently admitted requests; a request over the
	// budget is shed immediately (stale or 503+Retry-After) instead of
	// queueing. 0 means unlimited.
	MaxInFlight int64
	// PropagateDeadline honors the client's DeadlineHeader, deriving the
	// request context deadline every fetch attempt inherits.
	PropagateDeadline bool
	// MinFetchBudget is the remaining-deadline floor below which a miss is
	// shed rather than fetched: a fetch that cannot possibly finish in time
	// is doomed work (default 50ms).
	MinFetchBudget time.Duration
	// Hedge, when > 0, launches a second origin fetch if the first has not
	// answered after this delay; the first result wins and the loser is
	// cancelled. Pick a slow-percentile latency (e.g. ~p95 of healthy
	// fetches) so hedges fire only on straggler attempts.
	Hedge time.Duration
	// RetryBudget caps total retry attempts (attempts beyond a miss's first)
	// per RetryBudgetWindow across the whole proxy, so the backoff path can
	// never probe a sick origin harder than the breaker's half-open budget.
	// 0 selects the breaker's HalfOpenProbes; < 0 disables the cap.
	RetryBudget int64
	// RetryBudgetWindow is the retry budget's reset period (default: the
	// breaker window).
	RetryBudgetWindow time.Duration
	// RetryAfter is the advertised Retry-After on shed 503s (default 1s).
	RetryAfter time.Duration
}

// DefaultOverload returns the hardened defaults used by cmd/darwin-proxy and
// the overload chaos experiment: breaker defaults, 512 in-flight requests,
// deadline propagation with a 50ms fetch floor, a 25ms hedge, and a retry
// budget equal to the breaker's half-open probe budget per window.
func DefaultOverload() Overload {
	return Overload{
		Enabled:           true,
		MaxInFlight:       512,
		PropagateDeadline: true,
		MinFetchBudget:    50 * time.Millisecond,
		Hedge:             25 * time.Millisecond,
		RetryAfter:        time.Second,
	}
}

// withDefaults fills the derived knobs that need the breaker config.
func (ov Overload) withDefaults() Overload {
	if !ov.Enabled {
		return ov
	}
	if ov.MinFetchBudget <= 0 {
		ov.MinFetchBudget = 50 * time.Millisecond
	}
	if ov.RetryAfter <= 0 {
		ov.RetryAfter = time.Second
	}
	return ov
}

// NewOverloadProxy builds a proxy with both the fault-tolerance layer and
// the overload-protection layer. Enabling overload protection forces the
// resilient data plane on (with MaxAttempts 1 if the caller left resilience
// off), because shedding decisions hang off the probe-then-commit miss path.
func NewOverloadProxy(decider Decider, originURL string, dcLatency time.Duration, res Resilience, ov Overload) *Proxy {
	ov = ov.withDefaults()
	if ov.Enabled && !res.Enabled {
		res.Enabled = true
		res.MaxAttempts = 1
	}
	p := NewResilientProxy(decider, originURL, dcLatency, res)
	p.ov = ov
	if ov.Enabled {
		p.brk = breaker.New(ov.Breaker)
		if ov.RetryBudget >= 0 {
			max := ov.RetryBudget
			if max == 0 {
				max = ov.Breaker.HalfOpenProbes
				if max <= 0 {
					max = 3 // the breaker default for HalfOpenProbes
				}
			}
			window := ov.RetryBudgetWindow
			if window <= 0 {
				window = ov.Breaker.Window
			}
			p.retryBudget = breaker.NewBudget(max, window, ov.Breaker.Clock)
		}
	}
	return p
}

// Ready reports whether the proxy is fit to receive new traffic: false while
// the origin circuit breaker is open (every miss would be shed), so a
// load-balancing layer consuming readiness sheds this server's ring weight
// until the origin recovers.
func (p *Proxy) Ready() bool {
	return p.brk == nil || p.brk.State() != breaker.Open
}

// BreakerSnapshot returns the circuit breaker's coherent counter snapshot,
// and whether overload protection is active at all.
func (p *Proxy) BreakerSnapshot() (breaker.Snapshot, bool) {
	if p.brk == nil {
		return breaker.Snapshot{}, false
	}
	return p.brk.SnapshotNow(), true
}

// admit runs the overload admission decision for one request; callers must
// pair a true return with a release of the in-flight slot (the caller's
// defer). A false return means the request was already answered (shed).
func (p *Proxy) admit(w http.ResponseWriter, req trace.Request, n int64) bool {
	if p.ov.MaxInFlight > 0 && n > p.ov.MaxInFlight {
		p.shed(w, req, "inflight")
		return false
	}
	return true
}

// deadlineCtx derives the request context carrying the client's propagated
// deadline, if the header is present and well-formed.
func (p *Proxy) deadlineCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if !p.ov.PropagateDeadline {
		return r.Context(), nil
	}
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		return r.Context(), nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return r.Context(), nil
	}
	return context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
}

// doomed reports whether a miss is not worth fetching: the remaining client
// deadline is below the minimum fetch budget, so the fetch would be cancelled
// mid-flight and the client would see a slow failure instead of a fast shed.
func (p *Proxy) doomed(ctx context.Context) bool {
	if !p.ov.Enabled {
		return false
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return false
	}
	return time.Until(dl) < p.ov.MinFetchBudget
}

// shed answers a request the overload layer refuses to do full work for:
// from the stale store when possible (a fast, degraded success), otherwise a
// cheap 503 with Retry-After — never by queueing behind a sick origin.
func (p *Proxy) shed(w http.ResponseWriter, req trace.Request, reason string) {
	p.stats.Add(req.ID, psShed, 1)
	if p.res.ServeStale {
		if _, ok := p.staleHas(req.ID); ok {
			p.stats.Add(req.ID, psStaleServes, 1)
			w.Header().Set("X-Cache", "stale")
			w.Header().Set(ShedHeader, reason)
			w.Header().Set("Warning", `110 darwin-proxy "response is stale"`)
			p.serveLocal(w, cache.HOCHit, req.Size)
			return
		}
	}
	p.stats.Add(req.ID, psErrors, 1)
	w.Header().Set(ShedHeader, reason)
	w.Header().Set("Retry-After", strconv.Itoa(int((p.ov.RetryAfter+time.Second-1)/time.Second)))
	http.Error(w, fmt.Sprintf("server: overloaded (%s)", reason), http.StatusServiceUnavailable)
}

// fetchMaybeHedged runs one breaker-accounted fetch attempt, launching a
// hedged second fetch if the first is still quiet after the hedge delay — or
// immediately, if the first fails before the delay (hedge-on-failure: a fast
// origin error costs one backup request, not a budgeted retry). The pair
// shares one breaker permit and one combined outcome, so hedging cannot
// outrun the breaker the way a retry storm can; whichever fetch answers
// first wins and the loser's context is cancelled.
func (p *Proxy) fetchMaybeHedged(ctx context.Context, id uint64, size int64) error {
	if p.ov.Hedge <= 0 {
		return p.fetchDiscard(ctx, id, size)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		hedged bool
		err    error
	}
	results := make(chan outcome, 2)
	launch := func(hedged bool) {
		results <- outcome{hedged: hedged, err: p.fetchDiscard(hctx, id, size)}
	}
	go launch(false)
	timer := time.NewTimer(p.ov.Hedge)
	defer timer.Stop()
	outstanding := 1
	hedgeFired := false
	hedge := func() {
		hedgeFired = true
		outstanding++
		p.stats.Add(id, psHedges, 1)
		p.stats.Add(id, psOriginFetches, 1)
		go launch(true)
	}
	var firstErr error
	for {
		select {
		case res := <-results:
			outstanding--
			if res.err == nil {
				if res.hedged {
					p.stats.Add(id, psHedgeWins, 1)
				}
				return nil // deferred cancel reaps the loser
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if !hedgeFired && ctx.Err() == nil {
				hedge() // hedge-on-failure: don't wait out the timer
				continue
			}
			if outstanding == 0 {
				return firstErr
			}
		case <-timer.C:
			if !hedgeFired {
				hedge()
			}
		}
	}
}
