package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/trace"
)

// fastResilience returns hardened settings with test-friendly backoffs.
func fastResilience() Resilience {
	r := DefaultResilience()
	r.FetchTimeout = 2 * time.Second
	r.BackoffBase = 1 * time.Millisecond
	r.BackoffMax = 5 * time.Millisecond
	return r
}

// resilientTestbed builds origin (behind optional middleware), a resilient
// proxy, and returns both servers plus the proxy and decider.
func resilientTestbed(t *testing.T, res Resilience, wrap func(http.Handler) http.Handler) (*Origin, *httptest.Server, *Proxy, *baselines.Static) {
	t.Helper()
	origin := &Origin{}
	var h http.Handler = origin
	if wrap != nil {
		h = wrap(origin)
	}
	originSrv := httptest.NewServer(h)
	t.Cleanup(originSrv.Close)
	dec, err := baselines.NewStatic(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewResilientProxy(dec, originSrv.URL, 0, res)
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)
	return origin, proxySrv, proxy, dec
}

func TestParseObjectURLEdgeCases(t *testing.T) {
	cases := []struct {
		url    string
		wantID uint64
		wantSz int64
		ok     bool
	}{
		{"/obj/7?size=0", 7, 0, true},
		{"/obj/18446744073709551615?size=1", 1<<64 - 1, 1, true},
		{"/obj/", 0, 0, false},                            // empty id
		{"/obj", 0, 0, false},                             // prefix only
		{"/obj/abc?size=10", 0, 0, false},                 // non-numeric id
		{"/obj/-1?size=10", 0, 0, false},                  // negative id
		{"/obj/18446744073709551616?size=1", 0, 0, false}, // id overflow
		{"/obj/1", 0, 0, false},                           // missing size
		{"/obj/1?size=", 0, 0, false},                     // empty size
		{"/obj/1?size=-5", 0, 0, false},                   // negative size
		{"/obj/1?size=x", 0, 0, false},                    // non-numeric size
		{"/obj/1/2?size=5", 0, 0, false},                  // overlong path
		{"/other/1?size=5", 0, 0, false},                  // wrong prefix
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodGet, c.url, nil)
		id, size, err := parseObjectURL(r)
		if c.ok {
			if err != nil || id != c.wantID || size != c.wantSz {
				t.Errorf("%q: got (%d, %d, %v), want (%d, %d, nil)", c.url, id, size, err, c.wantID, c.wantSz)
			}
		} else if err == nil {
			t.Errorf("%q: accepted as (%d, %d)", c.url, id, size)
		}
	}
}

// failFirst rejects the first n requests with the given status, then passes.
type failFirst struct {
	n      int64
	status int
	seen   atomic.Int64
	next   http.Handler
}

func (f *failFirst) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.seen.Add(1) <= f.n {
		http.Error(w, "flaky origin", f.status)
		return
	}
	f.next.ServeHTTP(w, r)
}

func TestProxyRetriesFlakyOrigin(t *testing.T) {
	var flaky *failFirst
	_, proxySrv, proxy, dec := resilientTestbed(t, fastResilience(), func(h http.Handler) http.Handler {
		flaky = &failFirst{n: 2, status: http.StatusInternalServerError, next: h}
		return flaky
	})
	resp, body := get(t, proxySrv.URL, 11, 5000)
	if resp.StatusCode != http.StatusOK || len(body) != 5000 {
		t.Fatalf("status %d, body %d bytes", resp.StatusCode, len(body))
	}
	st := proxy.Stats()
	if st.Retries < 2 || st.OriginFetches < 3 {
		t.Fatalf("stats = %+v, want >= 2 retries over >= 3 attempts", st)
	}
	if m := dec.Metrics(); m.Requests != 1 || m.Misses != 1 {
		t.Fatalf("decider metrics = %+v, want exactly one accounted miss", m)
	}
}

// down is a toggleable hard-failing origin middleware.
type down struct {
	broken atomic.Bool
	next   http.Handler
}

func (d *down) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.broken.Load() {
		http.Error(w, "origin down", http.StatusServiceUnavailable)
		return
	}
	d.next.ServeHTTP(w, r)
}

func TestProxyFetchFailureNoPhantomAdmission(t *testing.T) {
	res := fastResilience()
	res.ServeStale = false
	var sw *down
	_, proxySrv, proxy, dec := resilientTestbed(t, res, func(h http.Handler) http.Handler {
		sw = &down{next: h}
		return sw
	})
	sw.broken.Store(true)
	resp, _ := get(t, proxySrv.URL, 5, 1000)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	// The failed fetch must leave no trace in the decider: no request, no
	// miss, no admission — it is a proxy-level error.
	if m := dec.Metrics(); m.Requests != 0 || m.DCWrites != 0 {
		t.Fatalf("phantom accounting after failed fetch: %+v", m)
	}
	if st := proxy.Stats(); st.FetchFailures == 0 || st.Errors == 0 {
		t.Fatalf("stats = %+v, want fetch failure + proxy error recorded", st)
	}

	sw.broken.Store(false)
	resp, body := get(t, proxySrv.URL, 5, 1000)
	if resp.StatusCode != http.StatusOK || len(body) != 1000 {
		t.Fatalf("recovery: status %d, body %d", resp.StatusCode, len(body))
	}
	if m := dec.Metrics(); m.Requests != 1 || m.Misses != 1 {
		t.Fatalf("metrics after recovery = %+v", m)
	}
}

func TestProxyServesStaleWhenOriginDown(t *testing.T) {
	var sw *down
	_, proxySrv, proxy, dec := resilientTestbed(t, fastResilience(), func(h http.Handler) http.Handler {
		sw = &down{next: h}
		return sw
	})
	// Healthy first fetch: the proxy remembers the object.
	resp, _ := get(t, proxySrv.URL, 9, 2000)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("warm request: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	// Origin dies; the object is not yet DC-resident (Bloom admits on the
	// second miss), so the miss path runs, retries fail, and degraded mode
	// serves the remembered object stale.
	sw.broken.Store(true)
	resp, body := get(t, proxySrv.URL, 9, 2000)
	if resp.StatusCode != http.StatusOK || len(body) != 2000 {
		t.Fatalf("degraded: status %d, body %d", resp.StatusCode, len(body))
	}
	if got := resp.Header.Get("X-Cache"); got != "stale" {
		t.Fatalf("X-Cache = %q, want stale", got)
	}
	if resp.Header.Get("Warning") == "" {
		t.Fatal("stale response missing Warning header")
	}
	if st := proxy.Stats(); st.StaleServes != 1 {
		t.Fatalf("stats = %+v, want 1 stale serve", st)
	}
	// The stale serve is not accounted as a cache request either.
	if m := dec.Metrics(); m.Requests != 1 {
		t.Fatalf("metrics = %+v, want only the healthy request accounted", m)
	}
	// An object the proxy has never seen still 502s.
	resp, _ = get(t, proxySrv.URL, 999, 100)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unknown object during outage: status %d, want 502", resp.StatusCode)
	}
}

func TestProxyCoalescesConcurrentMisses(t *testing.T) {
	origin, proxySrv, proxy, dec := resilientTestbed(t, fastResilience(), nil)
	origin.Latency = 30 * time.Millisecond // hold the fetch open so misses pile up

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/obj/77?size=4000", proxySrv.URL))
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || len(body) != 4000 {
				errs <- fmt.Errorf("status %d, body %d", resp.StatusCode, len(body))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	reqs, _ := origin.Stats()
	if reqs != 1 {
		t.Fatalf("origin saw %d fetches for %d concurrent misses, want 1", reqs, n)
	}
	st := proxy.Stats()
	if st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
	// Every client request was committed to the decider after the shared
	// fetch succeeded.
	if m := dec.Metrics(); m.Requests != n {
		t.Fatalf("metrics = %+v, want %d accounted requests", m, n)
	}
}

// truncatingOrigin declares size bytes but sends only half.
func truncatingOrigin() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, size, err := parseObjectURL(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.WriteHeader(http.StatusOK)
		writeBody(w, size/2)
	})
}

func TestLegacyProxySurfacesTruncatedOrigin(t *testing.T) {
	originSrv := httptest.NewServer(truncatingOrigin())
	defer originSrv.Close()
	dec, err := baselines.NewStatic(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy(dec, originSrv.URL, 0)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	resp, err := http.Get(fmt.Sprintf("%s/obj/3?size=10000", proxySrv.URL))
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	// The miss response must declare the origin's Content-Length so the
	// short body is a client-visible error, not a silent short 200.
	if cl := resp.Header.Get("Content-Length"); cl != "10000" {
		t.Fatalf("Content-Length = %q, want 10000", cl)
	}
	if rerr == nil {
		t.Fatalf("truncated origin body read cleanly: %d bytes", len(body))
	}
	if st := proxy.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v, want the copy error surfaced", st)
	}
}

func TestResilientProxyRetriesTruncatedOrigin(t *testing.T) {
	// A truncating origin under the resilient proxy: the fetch validator
	// detects the short body and retries; with a permanently-truncating
	// origin and no stale copy the client gets a clean 502, never a short 200.
	res := fastResilience()
	res.ServeStale = false
	originSrv := httptest.NewServer(truncatingOrigin())
	defer originSrv.Close()
	dec, err := baselines.NewStatic(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewResilientProxy(dec, originSrv.URL, 0, res)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	resp, _ := get(t, proxySrv.URL, 4, 10000)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if st := proxy.Stats(); st.OriginFetches != int64(res.MaxAttempts) {
		t.Fatalf("stats = %+v, want %d validation-failed attempts", st, res.MaxAttempts)
	}
}

func TestRunLoadClassification(t *testing.T) {
	// id%4: 0 → 503, 1 → truncated body, 2 → stale serve, 3 → clean 200.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, size, err := parseObjectURL(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch id % 4 {
		case 0:
			http.Error(w, "down", http.StatusServiceUnavailable)
		case 1:
			w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
			w.WriteHeader(http.StatusOK)
			writeBody(w, size/2)
		case 2:
			w.Header().Set("X-Cache", "stale")
			w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
			w.WriteHeader(http.StatusOK)
			writeBody(w, size)
		default:
			w.Header().Set("X-Cache", "hoc-hit")
			w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
			w.WriteHeader(http.StatusOK)
			writeBody(w, size)
		}
	}))
	defer srv.Close()

	var reqs []trace.Request
	for id := uint64(0); id < 40; id++ {
		reqs = append(reqs, trace.Request{ID: id, Size: 4000})
	}
	res, err := RunLoad(context.Background(), &trace.Trace{Requests: reqs}, LoadConfig{ProxyURL: srv.URL, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status5xx != 10 || res.Truncated != 10 {
		t.Fatalf("classification = %+v", res)
	}
	if res.Errors != res.Status5xx+res.Truncated+res.Timeouts+res.OtherErrors {
		t.Fatalf("error classes don't sum: %+v", res)
	}
	if res.StaleServes != 10 || res.HOCHits != 10 {
		t.Fatalf("success breakdown = %+v", res)
	}
	if res.Requests != 20 || res.Requests+res.Errors != 40 {
		t.Fatalf("accounting = %+v", res)
	}
	if res.ErrorRate() != 0.5 {
		t.Fatalf("error rate = %v", res.ErrorRate())
	}
}

func TestProxyConcurrentMixedLoad(t *testing.T) {
	// Race-detector workout: concurrent hits, misses, coalesced fetches, and
	// metric reads against one resilient proxy.
	_, proxySrv, proxy, dec := resilientTestbed(t, fastResilience(), nil)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := uint64((seed*perWorker + i) % 20) // overlapping ids → hits + coalescing
				resp, err := http.Get(fmt.Sprintf("%s/obj/%d?size=%d", proxySrv.URL, id, 1000+id*10))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				if i%10 == 0 {
					proxy.Metrics()
					proxy.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d failed requests", failures.Load())
	}
	if m := dec.Metrics(); m.Requests != workers*perWorker {
		t.Fatalf("accounted %d requests, want %d", m.Requests, workers*perWorker)
	}
}
