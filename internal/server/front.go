package server

// Front is the cluster's content-aware front tier — the live counterpart of
// the offline lb.Split: an HTTP balancer that routes /obj/ requests over N
// darwin-proxy backends through a consistent-hash ring with bounded loads
// (§2.1's DNS-TTL balancer, re-evaluated every RebalanceEvery requests).
// Three feedback loops close over the ring each window:
//
//   - readiness: a prober polls each backend's /readyz; an unready or
//     breaker-open backend sheds its ring weight at the next window boundary
//     and the bounded-loads spill redistributes its share to ring successors
//     (a SIGTERM drain empties a node's weight within one window).
//   - replication: an lb.Replicator observes per-object request share and
//     widens hot objects over ring successors, so a viral object's traffic
//     spreads instead of saturating its primary — and the successors it
//     lands on are exactly the siblings the backends' peer-fill layer
//     probes, so the copies are warm.
//   - breakers: each backend has a rolling circuit breaker fed by relay
//     outcomes; transport failures fail over to the next distinct ring
//     candidate within the same request.
//
// The routing step (pick) is serialized under one mutex — the ring's window
// state is deliberately single-writer — and is allocation-free, a darwinlint
// hotpath root. Relaying streams through the shared pooled copy buffers.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"darwin/internal/breaker"
	"darwin/internal/gossip"
	"darwin/internal/lb"
	"darwin/internal/stripe"
)

// FrontConfig parameterises the front tier.
type FrontConfig struct {
	// Backends are the darwin-proxy base URLs, in the cluster's shared node
	// order (the same order backends pass to their -peers flag).
	Backends []string
	// VirtualNodes per backend on the ring (default 64).
	VirtualNodes int
	// LoadFactor is the bounded-loads ε (default 0.25).
	LoadFactor float64
	// RebalanceEvery is the routing window length in requests (default
	// 10_000): weights, budgets, and replication factors refresh at every
	// window boundary.
	RebalanceEvery int
	// Replication configures the hot-object tracker (zero = defaults).
	Replication lb.ReplicationConfig
	// Breaker configures the per-backend circuit breaker; zero means
	// DefaultPeerBreaker.
	Breaker breaker.Config
	// Attempts bounds failover: how many distinct ring candidates one
	// request may try (default 3, capped at len(Backends)).
	Attempts int
	// ProbeEvery is the readiness poll period (default 250 ms).
	ProbeEvery time.Duration
	// ProbeTimeout bounds each readiness poll (default ProbeEvery).
	ProbeTimeout time.Duration
	// Client relays requests; nil builds a pooled default.
	Client *http.Client
	// DisableGossip reverts the prober to the binary /readyz verdict. The
	// zero value probes /gossip first: backends that answer it get the
	// graded phi-accrual weight (alive 1, suspect ½, dead 0), and backends
	// that 404/405 it fall back to binary /readyz permanently.
	DisableGossip bool
	// Gossip tunes the failure detector (thresholds, dwell, clock). Nodes
	// and Self (-1: the front is an observer) are overwritten; a nil Clock
	// means time.Now, and HeartbeatEvery defaults to ProbeEvery.
	Gossip gossip.Config
}

// Front-tier stat indexes (stripe counters, same idiom as the proxy's ps*).
const (
	fsRequests       = iota // requests routed
	fsRelayed               // responses streamed back from a backend
	fsFailovers             // relay attempts beyond the first per request
	fsBreakerRejects        // candidates skipped on an open breaker
	fsNoBackend             // requests that exhausted every candidate (502)
	fsReplicated            // requests routed over a widened replica set
	fsWidth
)

// FrontStats is a coherent snapshot of the front tier's counters.
type FrontStats struct {
	// Requests counts routed requests; Relayed counts responses streamed
	// back (Requests - Relayed - NoBackend requests are in flight).
	Requests, Relayed int64
	// Failovers counts relay attempts beyond the first; BreakerRejects
	// counts candidates skipped because their breaker was open.
	Failovers, BreakerRejects int64
	// NoBackend counts requests answered 502 after every candidate failed.
	NoBackend int64
	// Replicated counts requests routed with a replication factor > 1.
	Replicated int64
}

// Front routes client requests over the backend cluster.
type Front struct {
	cfg   FrontConfig
	nodes []string

	// mu serializes the routing step (pick): the ring's window state and the
	// replicator's observation window advance together under it. The ring
	// pointer itself is immutable after NewFront, and Successors reads only
	// construction-time state, so the failover loop walks it lock-free.
	mu   sync.Mutex
	ring *lb.Ring
	rep  *lb.Replicator

	// ready mirrors each backend's last binary probe answer; written by the
	// prober, read (atomically) by the ring's readiness hook at window
	// boundaries. In gossip mode it only matters for backends the detector
	// has never heard from (a backend dead at boot emits no heartbeats, so
	// phi stays 0 and only the binary verdict can shed it).
	ready []atomic.Bool

	// memb is the graded membership view (nil when DisableGossip). The
	// prober feeds it from /gossip answers; the readiness hook reads its
	// weights. gossipOK tracks which backends speak /gossip — a 404/405
	// flips a backend to the binary /readyz path permanently. declined
	// marks a backend whose last probe was an explicit non-200 answer (a
	// drain 503): an answer is a verdict, and sheds immediately, while a
	// transport silence degrades gradually through the detector.
	memb     *gossip.Membership
	gossipOK []atomic.Bool
	declined []atomic.Bool

	// probeTimeouts / probeRefused classify failed probes per backend: a
	// deadline-style failure (the backend exists but is slow or wedged)
	// versus an immediate refusal (nothing is listening). The distinction is
	// an operator's first diagnostic — wedged wants a restart, refused wants
	// a deploy check.
	probeTimeouts []atomic.Int64
	probeRefused  []atomic.Int64

	brks   []*breaker.Breaker
	client *http.Client
	stats  *stripe.Counters
}

// NewFront builds a front tier over the given backends. Call Start to run
// the readiness prober, or drive ProbeOnce manually (tests do).
func NewFront(cfg FrontConfig) (*Front, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("server: front tier needs at least one backend")
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.Attempts > len(cfg.Backends) {
		cfg.Attempts = len(cfg.Backends)
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeEvery
	}
	if cfg.Breaker.Window <= 0 {
		cfg.Breaker = DefaultPeerBreaker()
	}
	f := &Front{
		cfg:           cfg,
		nodes:         cfg.Backends,
		rep:           lb.NewReplicator(cfg.Replication),
		ready:         make([]atomic.Bool, len(cfg.Backends)),
		gossipOK:      make([]atomic.Bool, len(cfg.Backends)),
		declined:      make([]atomic.Bool, len(cfg.Backends)),
		probeTimeouts: make([]atomic.Int64, len(cfg.Backends)),
		probeRefused:  make([]atomic.Int64, len(cfg.Backends)),
		brks:          make([]*breaker.Breaker, len(cfg.Backends)),
		stats:         stripe.New(proxyStatStripes, fsWidth),
	}
	if !cfg.DisableGossip {
		gcfg := cfg.Gossip
		gcfg.Nodes = len(cfg.Backends)
		gcfg.Self = -1 // the front observes; it emits no heartbeats
		if gcfg.Clock == nil {
			gcfg.Clock = time.Now
		}
		if gcfg.HeartbeatEvery <= 0 {
			gcfg.HeartbeatEvery = cfg.ProbeEvery
		}
		m, err := gossip.New(gcfg)
		if err != nil {
			return nil, err
		}
		f.memb = m
	}
	for i := range f.brks {
		f.brks[i] = breaker.New(cfg.Breaker)
		f.ready[i].Store(true)    // optimistic until the first probe says otherwise
		f.gossipOK[i].Store(true) // try /gossip first; 404/405 flips to /readyz
	}
	ring, err := lb.NewRing(lb.Config{
		Servers:        len(cfg.Backends),
		VirtualNodes:   cfg.VirtualNodes,
		LoadFactor:     cfg.LoadFactor,
		RebalanceEvery: cfg.RebalanceEvery,
		Readiness:      f.readiness,
	})
	if err != nil {
		return nil, err
	}
	f.ring = ring
	f.client = cfg.Client
	if f.client == nil {
		f.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 256,
			DisableCompression:  true,
		}}
	}
	return f, nil
}

// readiness is the ring's per-window weight hook. An open breaker always
// sheds everything — live relay failures outrank any probe. Past that, a
// backend the gossip detector has heard from gets the graded verdict: zero
// if its last probe was an explicit non-200 answer (an answer is a verdict —
// a draining backend said "stop"), otherwise the phi-accrual weight (alive
// 1, suspect SuspectWeight, dead 0) — so one slow probe costs a slice of
// ring weight, never the whole keyspace. Backends outside the detector's
// view (gossip disabled, unsupported, or never heard from) get the binary
// /readyz verdict, as before.
func (f *Front) readiness(window, server int) float64 {
	if f.brks[server].State() == breaker.Open {
		return 0
	}
	if f.memb != nil && f.gossipOK[server].Load() && f.memb.Heard(server) {
		if f.declined[server].Load() {
			return 0
		}
		return f.memb.Weight(server)
	}
	if !f.ready[server].Load() {
		return 0
	}
	return 1
}

// Start runs the readiness prober until ctx is cancelled.
func (f *Front) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(f.cfg.ProbeEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				f.ProbeOnce(ctx)
			}
		}
	}()
}

// ProbeOnce polls every backend once and updates the readiness state: a
// /gossip exchange for gossip-speaking backends (digest out, digest in,
// graded verdict), /readyz for the rest. Exported so tests (and the drain
// experiment) can drive probing deterministically instead of racing a
// ticker.
func (f *Front) ProbeOnce(ctx context.Context) {
	for i, n := range f.nodes {
		if f.memb != nil && f.gossipOK[i].Load() {
			switch f.probeGossip(ctx, i, n) {
			case probeOK:
				f.ready[i].Store(true)
				f.declined[i].Store(false)
			case probeDeclined:
				f.ready[i].Store(false)
				f.declined[i].Store(true)
			case probeSilent:
				// No answer says nothing new: the graded detector handles
				// silence, and an earlier explicit decline stays in force (a
				// drained node that then exits must not climb back to
				// suspect weight just because refusals replaced 503s).
				f.ready[i].Store(false)
			case probeUnsupported:
				// The backend answered but doesn't serve /gossip (older
				// build or gossip disabled): binary probing from here on.
				f.gossipOK[i].Store(false)
				f.ready[i].Store(f.probeReadyz(ctx, i, n))
			}
			continue
		}
		f.ready[i].Store(f.probeReadyz(ctx, i, n))
	}
}

// classifyProbeFailure sorts a probe's transport error into the per-backend
// timeout/refused counters: deadline-style failures mean the backend exists
// but is slow or wedged; anything else (connection refused, reset, DNS) is
// counted as a refusal.
func (f *Front) classifyProbeFailure(backend int, err error) {
	var ne net.Error
	if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		f.probeTimeouts[backend].Add(1)
	} else {
		f.probeRefused[backend].Add(1)
	}
}

// probeVerdict is one gossip probe's outcome.
type probeVerdict int

const (
	// probeOK: a clean 200 digest exchange — proof of life, verdict cleared.
	probeOK probeVerdict = iota
	// probeDeclined: an explicit non-200 answer (a drain 503) — an answer is
	// a verdict, and sheds the backend immediately.
	probeDeclined
	// probeSilent: no (usable) answer at all — the graded detector decides.
	probeSilent
	// probeUnsupported: the backend answered 404/405 — it doesn't speak
	// /gossip; fall back to binary /readyz probing.
	probeUnsupported
)

// probeGossip runs one digest exchange with a backend: POST the front's
// observer digest (relaying everything it has heard — the indirect-heartbeat
// path that keeps partitioned-but-alive nodes alive in everyone's view) and
// merge the backend's digest from the answer.
func (f *Front) probeGossip(ctx context.Context, backend int, node string) probeVerdict {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.ProbeTimeout)
	defer cancel()
	out := gossip.AppendDigest(nil, -1, f.memb.Digest(nil))
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/gossip", bytes.NewReader(out))
	if err != nil {
		return probeSilent
	}
	hreq.Header["Content-Type"] = octetStreamValue
	resp, err := f.client.Do(hreq)
	if err != nil {
		f.classifyProbeFailure(backend, err)
		return probeSilent
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxGossipBytes))
		if rerr != nil {
			f.classifyProbeFailure(backend, rerr)
			return probeSilent
		}
		sender, entries, derr := gossip.DecodeDigest(body, nil)
		if derr != nil {
			// Answered garbage: no proof of life, but not a refusal either —
			// let the detector's phi make the call.
			return probeSilent
		}
		f.memb.Merge(sender, entries)
		return probeOK
	case http.StatusNotFound, http.StatusMethodNotAllowed:
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<10)
		return probeUnsupported
	default:
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<10)
		return probeDeclined
	}
}

// probeReadyz reports whether one backend answers /readyz with 200, feeding
// the per-backend failure classification on the way.
func (f *Front) probeReadyz(ctx context.Context, backend int, node string) bool {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.ProbeTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := f.client.Do(hreq)
	if err != nil {
		f.classifyProbeFailure(backend, err)
		return false
	}
	defer resp.Body.Close()
	_, _ = io.CopyN(io.Discard, resp.Body, 1<<10) // best-effort drain so the connection can be reused
	return resp.StatusCode == http.StatusOK
}

// pick routes one request: the ring's bounded-loads choice over the object's
// current replica set, with the replicator observing every request and
// rebalancing at window boundaries. Serialized under mu; allocation-free
// outside window boundaries (a darwinlint hotpath root).
func (f *Front) pick(id uint64) (server int, replicas int) {
	f.mu.Lock()
	replicas = f.rep.Factor(id)
	w := f.ring.Window()
	server = f.ring.RouteReplicated(id, replicas)
	if f.ring.Window() != w {
		// Window boundary crossed: close the replicator's observation window
		// too, so next window's factors reflect last window's shares.
		f.rep.Rebalance()
	}
	f.rep.Observe(id)
	f.mu.Unlock()
	return server, replicas
}

// Window returns the ring's current rebalance window index.
func (f *Front) Window() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Window()
}

// Weights returns the ring's current effective backend weights (after
// readiness shedding) — the front tier's /metrics surface for "who is
// taking traffic".
func (f *Front) Weights() []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Weights()
}

// Stats returns a coherent snapshot of the front tier's counters.
func (f *Front) Stats() FrontStats {
	var v [fsWidth]int64
	f.stats.Snapshot(v[:])
	return FrontStats{
		Requests:       v[fsRequests],
		Relayed:        v[fsRelayed],
		Failovers:      v[fsFailovers],
		BreakerRejects: v[fsBreakerRejects],
		NoBackend:      v[fsNoBackend],
		Replicated:     v[fsReplicated],
	}
}

// ReplicationStats fills dst (len >= lb.RsWidth) with the replicator's last
// completed window row.
func (f *Front) ReplicationStats(dst []int64) {
	f.rep.Stats(dst)
}

// Membership exposes the front's graded view of the cluster (nil when
// gossip is disabled).
func (f *Front) Membership() *gossip.Membership { return f.memb }

// ProbeStats returns backend's cumulative probe-failure classification:
// timeouts (the backend exists but is slow or wedged) versus refusals
// (nothing answered at all). The front tier's /metrics surfaces both
// per-backend.
func (f *Front) ProbeStats(backend int) (timeouts, refused int64) {
	if backend < 0 || backend >= len(f.nodes) {
		return 0, 0
	}
	return f.probeTimeouts[backend].Load(), f.probeRefused[backend].Load()
}

// MembershipStatus names backend's current standing for metrics: the graded
// gossip status ("alive", "suspect", "dead"), "declined" when its last probe
// was an explicit non-200 answer, or "binary-ready"/"binary-unready" for
// backends outside the detector's view.
func (f *Front) MembershipStatus(backend int) string {
	if backend < 0 || backend >= len(f.nodes) {
		return "invalid"
	}
	if f.memb != nil && f.gossipOK[backend].Load() && f.memb.Heard(backend) {
		if f.declined[backend].Load() {
			return "declined"
		}
		return f.memb.Status(backend).String()
	}
	if f.ready[backend].Load() {
		return "binary-ready"
	}
	return "binary-unready"
}

// ServeHTTP routes one client request to a backend and streams the response
// back. The ring's pick goes first; on transport failure the request fails
// over to the next distinct ring candidate (at most Attempts), recording
// each outcome in the backend's breaker. An HTTP response of any status is
// relayed — a 502 or shed 503 from a live backend is an answer, not a
// routing failure.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id, size, err := parseObjectURL(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	primary, replicas := f.pick(id)
	f.stats.Add(id, fsRequests, 1)
	if replicas > 1 {
		f.stats.Add(id, fsReplicated, 1)
	}

	// Failover order: the routed backend first, then the object's remaining
	// ring successors (distinct by construction).
	var cand [lb.MaxReplicas]int
	width := f.cfg.Attempts + 1
	if width > len(f.nodes) {
		width = len(f.nodes)
	}
	if width > lb.MaxReplicas {
		width = lb.MaxReplicas
	}
	k := f.ring.Successors(id, cand[:width])
	tried := 0
	for i := -1; i < k && tried < f.cfg.Attempts; i++ {
		var node int
		if i < 0 {
			node = primary
		} else {
			node = cand[i]
			if node == primary {
				continue
			}
		}
		if !f.brks[node].Allow() {
			f.stats.Add(id, fsBreakerRejects, 1)
			continue
		}
		if tried > 0 {
			f.stats.Add(id, fsFailovers, 1)
		}
		tried++
		if f.relay(w, r, node, id, size) {
			f.stats.Add(id, fsRelayed, 1)
			return
		}
	}
	f.stats.Add(id, fsNoBackend, 1)
	http.Error(w, "front: no backend available", http.StatusBadGateway)
}

// relay forwards the request to one backend and, if the backend answers
// HTTP at all, streams the response to the client. Returns false only on
// transport-level failure (connection refused/reset, deadline), in which
// case nothing has been written and the caller may fail over.
func (f *Front) relay(w http.ResponseWriter, r *http.Request, node int, id uint64, size int64) bool {
	hreq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, originURL(f.nodes[node], id, size), nil)
	if err != nil {
		f.brks[node].Record(false)
		return false
	}
	// Propagate the client's deadline advertisement so backend deadline
	// shedding still works behind the front tier.
	if dl := r.Header[DeadlineHeader]; len(dl) > 0 {
		hreq.Header[DeadlineHeader] = dl
	}
	resp, err := f.client.Do(hreq)
	if err != nil {
		f.brks[node].Record(false)
		return false
	}
	defer resp.Body.Close()
	// Any HTTP answer means the backend is alive: a 502 is the shared
	// origin's trouble and a shed 503 is deliberate — neither should charge
	// this backend's breaker. Only a 500 (the backend itself broke) does.
	f.brks[node].Record(resp.StatusCode != http.StatusInternalServerError)

	h := w.Header()
	for _, key := range relayHeaders {
		if v := resp.Header[key]; len(v) > 0 {
			h[key] = v
		}
	}
	w.WriteHeader(resp.StatusCode)
	buf := getCopyBuf()
	_, _ = io.CopyBuffer(w, resp.Body, *buf) // client went away; nothing useful to do with the error
	putCopyBuf(buf)
	return true
}

// relayHeaders are the backend response headers the front tier propagates to
// clients (pre-canonicalized keys for direct map indexing).
var relayHeaders = []string{
	"Content-Type",
	"Content-Length",
	"X-Cache",
	PeerHeader,
	ShedHeader,
	"Warning",
	"Retry-After",
}
