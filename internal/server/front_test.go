package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"darwin/internal/baselines"
	"darwin/internal/cache"
	"darwin/internal/lb"
)

// frontBackend is one cluster node as the front tier sees it: the caching
// proxy at /obj/ plus its health surface at /readyz.
func frontBackend(t *testing.T, originURL string) (*Proxy, *Health, *httptest.Server) {
	t.Helper()
	dec, err := baselines.NewStaticSharded(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewResilientProxy(dec, originURL, 0, fastResilience())
	health := NewHealth()
	mux := http.NewServeMux()
	mux.Handle("/obj/", proxy)
	mux.HandleFunc("/readyz", health.Readyz)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return proxy, health, srv
}

// TestFrontDrainShedsWeightWithinOneWindow is the satellite requirement: a
// backend whose /readyz starts failing (SIGTERM drain) loses its entire ring
// weight at the next window boundary, and every subsequent request routes to
// the survivors.
func TestFrontDrainShedsWeightWithinOneWindow(t *testing.T) {
	origin := &Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	_, h0, b0 := frontBackend(t, originSrv.URL)
	_, _, b1 := frontBackend(t, originSrv.URL)

	f, err := NewFront(FrontConfig{
		Backends:       []string{b0.URL, b1.URL},
		RebalanceEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.ProbeOnce(ctx)
	w := f.Weights()
	if w[0] != 1 || w[1] != 1 {
		t.Fatalf("healthy cluster weights %v, want [1 1]", w)
	}

	// Backend 0 starts draining: readyz flips to 503 immediately.
	h0.StartDrain()
	f.ProbeOnce(ctx)

	// Route one full window: the boundary must strip backend 0's weight.
	saw0 := false
	for i := 0; i < 100; i++ {
		if s, _ := f.pick(uint64(i)); s == 0 {
			saw0 = true // window 0 weights predate the drain; both legal
		}
	}
	for i := 100; i < 200; i++ {
		if s, _ := f.pick(uint64(1_000_000 + i)); s == 0 {
			t.Fatalf("request %d routed to the draining backend after the boundary", i)
		}
	}
	if got := f.Weights(); got[0] != 0 || got[1] != 1 {
		t.Fatalf("post-drain weights %v, want [0 1]", got)
	}
	if f.Window() == 0 {
		t.Fatal("window never advanced")
	}
	_ = saw0
}

// TestFrontFailoverOnDeadBackend: a backend that dies without draining
// (transport errors, not 503s) is failed over within the same request, its
// breaker opens, and clients keep getting 200s.
func TestFrontFailoverOnDeadBackend(t *testing.T) {
	origin := &Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	_, _, b0 := frontBackend(t, originSrv.URL)
	_, _, b1 := frontBackend(t, originSrv.URL)

	f, err := NewFront(FrontConfig{
		Backends:       []string{b0.URL, b1.URL},
		RebalanceEvery: 1 << 30, // no boundary: failover alone must cope
	})
	if err != nil {
		t.Fatal(err)
	}
	frontSrv := httptest.NewServer(f)
	defer frontSrv.Close()

	if resp := mustGet(t, frontSrv.URL+"/obj/1?size=500", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy cluster: status %d", resp.StatusCode)
	}

	b0.Close() // node 0 dies hard
	for i := 0; i < 40; i++ {
		resp := mustGet(t, frontSrv.URL+"/obj/"+string(rune('0'+i%10))+"?size=500", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after backend death: status %d", i, resp.StatusCode)
		}
	}
	st := f.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers recorded despite a dead backend")
	}
	if st.BreakerRejects == 0 {
		t.Fatal("dead backend's breaker never opened")
	}
	if st.NoBackend != 0 {
		t.Fatalf("%d requests found no backend with a live survivor", st.NoBackend)
	}
}

// TestFrontReplicatesHotObject: after one observed window, a dominant object
// routes with a widened replica set and the stats surface says so.
func TestFrontReplicatesHotObject(t *testing.T) {
	origin := &Origin{}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	_, _, b0 := frontBackend(t, originSrv.URL)
	_, _, b1 := frontBackend(t, originSrv.URL)
	_, _, b2 := frontBackend(t, originSrv.URL)

	f, err := NewFront(FrontConfig{
		Backends:       []string{b0.URL, b1.URL, b2.URL},
		RebalanceEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	const hot = uint64(77)
	servers := map[int]bool{}
	for i := 0; i < 2500; i++ {
		id := uint64(10_000 + i)
		if i%2 == 0 {
			id = hot
		}
		s, replicas := f.pick(id)
		if id == hot && replicas > 1 {
			servers[s] = true
		}
	}
	var rs [lb.RsWidth]int64
	f.ReplicationStats(rs[:])
	if rs[lb.RsHotObjects] == 0 || rs[lb.RsMaxFactor] < 2 {
		t.Fatalf("hot object never widened: stats %v", rs)
	}
	if len(servers) < 2 {
		t.Fatalf("replicated hot object stayed on %d server(s)", len(servers))
	}
}
