package server

import "sync"

// flightKey identifies one origin object for request coalescing.
type flightKey struct {
	id   uint64
	size int64
}

// flightCall is one in-flight origin fetch shared by all coalesced waiters.
type flightCall struct {
	wg  sync.WaitGroup
	err error
}

// flightGroup is a minimal single-flight implementation (stdlib-only stand-in
// for golang.org/x/sync/singleflight): concurrent Do calls with the same key
// share one execution of fn, so N simultaneous misses for one object cost a
// single origin fetch — the proxy's thundering-herd protection.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

// do executes fn once per key among concurrent callers, returning fn's error
// to every waiter. shared reports whether this caller piggybacked on another
// caller's fetch rather than performing its own.
func (g *flightGroup) do(key flightKey, fn func() error) (err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[flightKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.err, false
}
