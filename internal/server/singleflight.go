package server

import (
	"context"
	"sync"
)

// flightKey identifies one origin object for request coalescing.
type flightKey struct {
	id   uint64
	size int64
}

// flightCall is one in-flight origin fetch shared by all coalesced waiters.
// done is closed when fn returns; err is written before the close, so any
// waiter woken by done observes it.
type flightCall struct {
	done chan struct{}
	err  error
}

// flightGroup is a minimal single-flight implementation (stdlib-only stand-in
// for golang.org/x/sync/singleflight): concurrent do calls with the same key
// share one execution of fn, so N simultaneous misses for one object cost a
// single origin fetch — the proxy's thundering-herd protection.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

// do executes fn once per key among concurrent callers, returning fn's error
// to every waiter. shared reports whether this caller piggybacked on another
// caller's fetch rather than performing its own. A waiter whose ctx ends
// before the shared fetch completes stops waiting and returns ctx.Err() —
// the leader keeps running for the remaining waiters (deadline-propagating
// callers shed instead of blocking on work they can no longer use).
func (g *flightGroup) do(ctx context.Context, key flightKey, fn func() error) (err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[flightKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.err, true
		case <-ctx.Done():
			return ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.err, false
}
