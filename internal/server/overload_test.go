package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"darwin/internal/baselines"
	"darwin/internal/breaker"
	"darwin/internal/cache"
	"darwin/internal/faults"
	"darwin/internal/trace"
)

// overloadTestbed builds origin (behind optional middleware) and an
// overload-protected proxy.
func overloadTestbed(t *testing.T, res Resilience, ov Overload, wrap func(http.Handler) http.Handler) (*httptest.Server, *Proxy) {
	t.Helper()
	origin := &Origin{}
	var h http.Handler = origin
	if wrap != nil {
		h = wrap(origin)
	}
	originSrv := httptest.NewServer(h)
	t.Cleanup(originSrv.Close)
	dec, err := baselines.NewStatic(cache.Expert{Freq: 1, MaxSize: 1 << 20},
		cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewOverloadProxy(dec, originSrv.URL, 0, res, ov)
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)
	return proxySrv, proxy
}

// getDeadline issues a GET with a propagated client deadline.
func getDeadline(t *testing.T, base string, id uint64, size int64, deadline time.Duration) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/obj/"+strconv.FormatUint(id, 10)+"?size="+strconv.FormatInt(size, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if deadline > 0 {
		req.Header.Set(DeadlineHeader, strconv.FormatInt(deadline.Milliseconds(), 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestDeadlineShedNotRetry is the deadline-propagation contract: a client
// deadline shorter than an origin stall must produce a fast shed, not a
// retry storm that blows through the deadline N more times.
func TestDeadlineShedNotRetry(t *testing.T) {
	res := fastResilience() // MaxAttempts 4: plenty of retries available
	ov := Overload{
		Enabled:           true,
		PropagateDeadline: true,
		MinFetchBudget:    5 * time.Millisecond,
		RetryBudget:       -1, // uncapped: prove the deadline alone stops retries
	}
	proxySrv, proxy := overloadTestbed(t, res, ov, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(400 * time.Millisecond) // origin stall well past the deadline
			h.ServeHTTP(w, r)
		})
	})
	start := time.Now()
	resp := getDeadline(t, proxySrv.URL, 1, 1000, 60*time.Millisecond)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(ShedHeader); got != "deadline" {
		t.Fatalf("shed header %q, want \"deadline\"", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 missing Retry-After")
	}
	// The response must arrive around the 60 ms deadline, not after the
	// 400 ms stall or a multiple of it.
	if elapsed > 300*time.Millisecond {
		t.Fatalf("shed took %v, want well under the origin stall", elapsed)
	}
	st := proxy.Stats()
	if st.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (deadline must stop the retry loop)", st.Retries)
	}
	if st.DeadlineSheds == 0 || st.Shed == 0 {
		t.Fatalf("stats = %+v, want deadline sheds recorded", st)
	}
}

// TestAdmissionShedsOverBudget covers bounded in-flight admission: requests
// over MaxInFlight are answered immediately with 503+Retry-After (or stale),
// never queued behind the slow work that is hogging the budget.
func TestAdmissionShedsOverBudget(t *testing.T) {
	res := fastResilience()
	ov := Overload{Enabled: true, MaxInFlight: 1, RetryBudget: -1}
	var slow atomic.Bool
	proxySrv, proxy := overloadTestbed(t, res, ov, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slow.Load() {
				time.Sleep(250 * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		})
	})

	// Warm object 1 so the stale store can cover it later.
	if resp := getDeadline(t, proxySrv.URL, 1, 1000, 0); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}

	slow.Store(true)
	occupied := make(chan struct{})
	go func() {
		defer close(occupied)
		getDeadline(t, proxySrv.URL, 2, 1000, 0) // occupies the only slot ~250ms
	}()
	time.Sleep(50 * time.Millisecond) // let the slot fill

	// A cold object over budget: cheap 503 with Retry-After.
	start := time.Now()
	resp := getDeadline(t, proxySrv.URL, 3, 1000, 0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(ShedHeader) != "inflight" || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over-budget headers: shed=%q retry-after=%q", resp.Header.Get(ShedHeader), resp.Header.Get("Retry-After"))
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("shed took %v, want immediate (no queueing)", elapsed)
	}

	// A warm object over budget: degraded stale success beats a 503.
	resp = getDeadline(t, proxySrv.URL, 1, 1000, 0)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "stale" {
		t.Fatalf("warm shed: status %d X-Cache %q, want stale 200", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if resp.Header.Get(ShedHeader) != "inflight" {
		t.Fatalf("warm shed header %q", resp.Header.Get(ShedHeader))
	}
	<-occupied

	// Budget free again: normal service resumes.
	slow.Store(false)
	if resp := getDeadline(t, proxySrv.URL, 4, 1000, 0); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status %d", resp.StatusCode)
	}
	if st := proxy.Stats(); st.Shed < 2 {
		t.Fatalf("stats = %+v, want >= 2 sheds", st)
	}
}

// TestHedgeRescuesStalledFetch: with hedging on, a stalled first fetch is
// overtaken by the hedged second, and the client sees a fast success.
func TestHedgeRescuesStalledFetch(t *testing.T) {
	res := fastResilience()
	ov := Overload{Enabled: true, Hedge: 10 * time.Millisecond, RetryBudget: -1}
	var n atomic.Int64
	proxySrv, proxy := overloadTestbed(t, res, ov, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if n.Add(1) == 1 {
				time.Sleep(400 * time.Millisecond) // only the first fetch stalls
			}
			h.ServeHTTP(w, r)
		})
	})
	start := time.Now()
	resp := getDeadline(t, proxySrv.URL, 7, 2000, 0)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("took %v, want the hedge to beat the 400ms stall", elapsed)
	}
	st := proxy.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("stats = %+v, want a hedge launched and won", st)
	}
}

// TestBreakerGatesReadiness wires the proxy's breaker into the Health
// readiness surface: tripping it flips /readyz to 503 naming the gate.
func TestBreakerGatesReadiness(t *testing.T) {
	ov := Overload{
		Enabled: true,
		Breaker: breaker.Config{MinRequests: 2, OpenFor: time.Hour},
	}
	_, proxy := overloadTestbed(t, fastResilience(), ov, nil)
	health := NewHealth(Gate{Name: "breaker", Ready: proxy.Ready})

	check := func(want int, body string) {
		t.Helper()
		rec := httptest.NewRecorder()
		health.Readyz(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		if rec.Code != want {
			t.Fatalf("readyz = %d (%q), want %d", rec.Code, rec.Body.String(), want)
		}
		if body != "" && !contains(rec.Body.String(), body) {
			t.Fatalf("readyz body %q, want substring %q", rec.Body.String(), body)
		}
	}
	check(http.StatusOK, "")
	for i := 0; i < 2; i++ { // trip the breaker directly
		if proxy.brk.Allow() {
			proxy.brk.Record(false)
		}
	}
	if proxy.Ready() {
		t.Fatal("proxy still ready with an open breaker")
	}
	check(http.StatusServiceUnavailable, "breaker")

	health.StartDrain()
	check(http.StatusServiceUnavailable, "draining")
	rec := httptest.NewRecorder()
	health.Healthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d while draining, want 200 (liveness is not readiness)", rec.Code)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestBurstGapsDeterministic pins the seeded flash-crowd schedule: identical
// config yields an identical schedule, burst positions dispatch back to
// back, baseline gaps are jittered around Gap, and the seed changes the
// jitter stream.
func TestBurstGapsDeterministic(t *testing.T) {
	b := Burst{Seed: 9, Gap: time.Millisecond, Every: 10, Len: 3}
	g1, g2 := b.Gaps(100), b.Gaps(100)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("gap %d: %v != %v (schedule not deterministic)", i, g1[i], g2[i])
		}
	}
	for i, g := range g1 {
		if i%10 < 3 {
			if g != 0 {
				t.Fatalf("burst position %d has gap %v, want 0", i, g)
			}
		} else if g < b.Gap/2 || g > 3*b.Gap/2 {
			t.Fatalf("baseline position %d gap %v outside [%v, %v]", i, g, b.Gap/2, 3*b.Gap/2)
		}
	}
	b2 := b
	b2.Seed = 10
	g3 := b2.Gaps(100)
	same := true
	for i := range g1 {
		if g1[i] != g3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestOverloadSheddingStress drives the full overload stack (admission,
// breaker, deadlines, hedging, retry budget) against a fault-injecting
// origin under concurrency. Exercised by `make race`: the point is that the
// shedding paths are data-race-free and every request is accounted exactly
// once.
func TestOverloadSheddingStress(t *testing.T) {
	res := fastResilience()
	ov := DefaultOverload()
	ov.MaxInFlight = 8
	ov.MinFetchBudget = 2 * time.Millisecond
	ov.Hedge = 5 * time.Millisecond
	proxySrv, proxy := overloadTestbed(t, res, ov, func(h http.Handler) http.Handler {
		inj := faults.New(faults.Config{
			Seed:      5,
			ErrorRate: 0.25,
			StallRate: 0.15,
			Stall:     60 * time.Millisecond,
		})
		return inj.Wrap(h)
	})

	tr := &trace.Trace{Name: "overload-stress"}
	for i := 0; i < 600; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: int64(i), ID: uint64(i % 40), Size: int64(500 + (i%7)*300),
		})
	}
	lr, err := RunLoad(context.Background(), tr, LoadConfig{
		ProxyURL:       proxySrv.URL,
		Concurrency:    16,
		RequestTimeout: 10 * time.Second,
		Deadline:       40 * time.Millisecond,
		Burst:          &Burst{Seed: 3, Gap: 200 * time.Microsecond, Every: 100, Len: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Requests+lr.Errors != tr.Len() {
		t.Fatalf("accounting: ok %d + errors %d != %d issued", lr.Requests, lr.Errors, tr.Len())
	}
	if lr.OnTime > lr.Requests {
		t.Fatalf("on-time %d > successes %d", lr.OnTime, lr.Requests)
	}
	if lr.Shed > lr.Status5xx {
		t.Fatalf("client sheds %d > 5xx %d", lr.Shed, lr.Status5xx)
	}
	st := proxy.Stats()
	if st.DeadlineSheds > st.Shed {
		t.Fatalf("stats %+v: deadline sheds exceed total sheds", st)
	}
	if snap, ok := proxy.BreakerSnapshot(); !ok || snap.Allowed == 0 {
		t.Fatalf("breaker snapshot %+v ok=%v, want breaker engaged", snap, ok)
	}
}
