package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"darwin/internal/trace"
)

// LoadResult aggregates a load-generation run (§6.4's measurements).
type LoadResult struct {
	// Requests completed successfully (including degraded stale serves).
	Requests int
	// Errors counts failed requests; the classification fields below break
	// it down (timeout vs upstream 5xx vs mid-stream truncation).
	Errors int
	// Timeouts counts requests that hit the client deadline (a stalled or
	// unreachable proxy/origin).
	Timeouts int
	// Status5xx counts 5xx (and other non-2xx) responses.
	Status5xx int
	// Truncated counts responses whose body ended short of the declared
	// Content-Length (mid-stream truncation).
	Truncated int
	// OtherErrors counts transport failures that fit none of the above.
	OtherErrors int
	// StaleServes counts degraded-mode responses (X-Cache: stale): the proxy
	// answered from its serve-stale store because the origin was down. They
	// are successes from the client's point of view and also count in
	// Requests.
	StaleServes int
	// Bytes is the total payload bytes received.
	Bytes int64
	// Wall is the end-to-end run duration.
	Wall time.Duration
	// FirstByte holds per-request first-byte latencies.
	FirstByte []time.Duration
	// HOCHits/DCHits/Misses are derived from the X-Cache response header.
	HOCHits, DCHits, Misses int
}

// ThroughputBps returns the application throughput in bits per second.
func (r LoadResult) ThroughputBps() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Wall.Seconds()
}

// ErrorRate returns the client-visible error fraction.
func (r LoadResult) ErrorRate() float64 {
	total := r.Requests + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Errors) / float64(total)
}

// LatencyPercentile returns the p-th percentile first-byte latency.
func (r LoadResult) LatencyPercentile(p float64) time.Duration {
	if len(r.FirstByte) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.FirstByte...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// LoadConfig configures RunLoad.
type LoadConfig struct {
	// ProxyURL is the CDN proxy base URL.
	ProxyURL string
	// Concurrency is the number of closed-loop client workers.
	Concurrency int
	// ClientLatency is an injected client→proxy delay added to each request
	// (the paper injects 10 ms; tests use 0).
	ClientLatency time.Duration
	// RequestTimeout bounds each client request end to end (default 60 s).
	RequestTimeout time.Duration
}

// classify folds one request outcome into res (caller holds the lock).
func classify(res *LoadResult, err error) {
	res.Errors++
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		res.Timeouts++
	case errors.Is(err, io.ErrUnexpectedEOF):
		res.Truncated++
	default:
		res.OtherErrors++
	}
}

// RunLoad replays tr against a proxy with the configured concurrency,
// measuring first-byte latency per request and classifying failures.
// Cancelling ctx stops dispatching new requests; in-flight requests drain
// before RunLoad returns the partial result and ctx.Err().
func RunLoad(ctx context.Context, tr *trace.Trace, cfg LoadConfig) (LoadResult, error) {
	if cfg.Concurrency <= 0 {
		return LoadResult{}, fmt.Errorf("server: concurrency must be > 0")
	}
	if tr.Len() == 0 {
		return LoadResult{}, fmt.Errorf("server: empty trace")
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	transport := &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}
	client := &http.Client{Transport: transport, Timeout: timeout}
	defer transport.CloseIdleConnections()

	work := make(chan trace.Request)
	var (
		mu  sync.Mutex
		res LoadResult
		wg  sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		buf := make([]byte, 32<<10)
		for r := range work {
			if cfg.ClientLatency > 0 {
				time.Sleep(cfg.ClientLatency)
			}
			url := fmt.Sprintf("%s/obj/%d?size=%d", cfg.ProxyURL, r.ID, r.Size)
			start := time.Now()
			resp, err := client.Get(url)
			if err != nil {
				mu.Lock()
				classify(&res, err)
				mu.Unlock()
				continue
			}
			// First byte: the response headers plus the first body read.
			var n int64
			m, rerr := resp.Body.Read(buf)
			fb := time.Since(start)
			n += int64(m)
			for rerr == nil {
				m, rerr = resp.Body.Read(buf)
				n += int64(m)
			}
			_ = resp.Body.Close() // body fully drained above; close can't fail usefully
			mu.Lock()
			switch {
			case resp.StatusCode >= 400:
				res.Errors++
				res.Status5xx++
			case rerr != nil && rerr != io.EOF:
				classify(&res, rerr)
			default:
				res.Requests++
				res.Bytes += n
				res.FirstByte = append(res.FirstByte, fb)
				switch resp.Header.Get("X-Cache") {
				case "hoc-hit":
					res.HOCHits++
				case "dc-hit":
					res.DCHits++
				case "miss":
					res.Misses++
				case "stale":
					res.StaleServes++
				}
			}
			mu.Unlock()
		}
	}
	begin := time.Now()
	wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go worker()
	}
	var dispatchErr error
dispatch:
	for _, r := range tr.Requests {
		select {
		case work <- r:
		case <-ctx.Done():
			dispatchErr = ctx.Err()
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	res.Wall = time.Since(begin)
	return res, dispatchErr
}
