package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"darwin/internal/trace"
)

// LoadResult aggregates a load-generation run (§6.4's measurements).
type LoadResult struct {
	// Requests completed successfully (including degraded stale serves).
	Requests int
	// Errors counts failed requests; the classification fields below break
	// it down (timeout vs upstream 5xx vs mid-stream truncation).
	Errors int
	// Timeouts counts requests that hit the client deadline (a stalled or
	// unreachable proxy/origin).
	Timeouts int
	// Status5xx counts 5xx (and other non-2xx) responses.
	Status5xx int
	// Truncated counts responses whose body ended short of the declared
	// Content-Length (mid-stream truncation).
	Truncated int
	// OtherErrors counts transport failures that fit none of the above.
	OtherErrors int
	// StaleServes counts degraded-mode responses (X-Cache: stale): the proxy
	// answered from its serve-stale store because the origin was down. They
	// are successes from the client's point of view and also count in
	// Requests.
	StaleServes int
	// OnTime counts successful requests that completed within the client
	// deadline (== Requests when no deadline is configured) — the goodput
	// numerator: work the client could actually use.
	OnTime int
	// Shed counts 503 responses carrying the proxy's shed marker (admission,
	// breaker, or deadline rejects). They are also counted in Errors and
	// Status5xx; this field separates deliberate load shedding from
	// unclassified upstream failure.
	Shed int
	// Bytes is the total payload bytes received.
	Bytes int64
	// Wall is the end-to-end run duration.
	Wall time.Duration
	// FirstByte holds per-request first-byte latencies.
	FirstByte []time.Duration
	// HOCHits/DCHits/Misses are derived from the X-Cache response header.
	HOCHits, DCHits, Misses int
	// PeerFills counts responses carrying the peer-fill marker: misses a
	// cluster node answered from a ring sibling instead of the origin (a
	// subset of Misses).
	PeerFills int
}

// ThroughputBps returns the application throughput in bits per second.
func (r LoadResult) ThroughputBps() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Wall.Seconds()
}

// ErrorRate returns the client-visible error fraction.
func (r LoadResult) ErrorRate() float64 {
	total := r.Requests + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Errors) / float64(total)
}

// GoodputRate returns the fraction of all issued requests that completed
// successfully within the client deadline — the §5.6-style claim restated
// for overload: not "how many answers", but "how many answers that arrived
// while the client still wanted them".
func (r LoadResult) GoodputRate() float64 {
	total := r.Requests + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.OnTime) / float64(total)
}

// LatencyPercentile returns the p-th percentile first-byte latency.
func (r LoadResult) LatencyPercentile(p float64) time.Duration {
	if len(r.FirstByte) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.FirstByte...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// LoadConfig configures RunLoad.
type LoadConfig struct {
	// ProxyURL is the CDN proxy base URL.
	ProxyURL string
	// Concurrency is the number of closed-loop client workers.
	Concurrency int
	// ClientLatency is an injected client→proxy delay added to each request
	// (the paper injects 10 ms; tests use 0).
	ClientLatency time.Duration
	// RequestTimeout bounds each client request end to end (default 60 s).
	RequestTimeout time.Duration
	// Deadline, when > 0, is the client's per-request freshness deadline: it
	// is advertised to the proxy via DeadlineHeader (driving deadline
	// propagation and shedding) and used client-side to classify OnTime
	// completions. It does not abort the request — RequestTimeout does that
	// — so late responses are still measured, they just miss goodput.
	Deadline time.Duration
	// Burst, when non-nil, switches dispatch from pure closed-loop to the
	// seeded flash-crowd arrival schedule.
	Burst *Burst
}

// Burst is the seeded flash-crowd arrival mode: dispatch is paced by a
// deterministic gap schedule in which every period of Every requests opens
// with Len requests released back-to-back (the flash crowd slamming the
// edge) followed by jittered Gap-spaced arrivals (the baseline). The
// schedule is a pure function of (Seed, Gap, Every, Len, n), so a chaos run
// is reproducible gap-for-gap and its report can cite the exact arrival
// pattern.
type Burst struct {
	// Seed drives the gap jitter.
	Seed int64
	// Gap is the mean inter-dispatch gap outside bursts (jittered uniformly
	// over [Gap/2, 3·Gap/2]). <= 0 means no pacing outside bursts either.
	Gap time.Duration
	// Every is the burst period in requests (default 500).
	Every int
	// Len is the burst length in requests, dispatched with zero gap
	// (default Every/4).
	Len int
}

// Gaps returns the deterministic inter-dispatch schedule for n requests:
// gaps[i] is slept before dispatching request i. Burst positions get zero
// gap; baseline positions get the jittered Gap.
func (b Burst) Gaps(n int) []time.Duration {
	every := b.Every
	if every <= 0 {
		every = 500
	}
	length := b.Len
	if length <= 0 {
		length = every / 4
	}
	rng := rand.New(rand.NewSource(b.Seed))
	gaps := make([]time.Duration, n)
	for i := range gaps {
		if i%every < length || b.Gap <= 0 {
			continue // inside a flash crowd: back-to-back dispatch
		}
		gaps[i] = b.Gap/2 + time.Duration(rng.Int63n(int64(b.Gap)+1))
	}
	return gaps
}

// classify folds one request outcome into res (caller holds the lock).
func classify(res *LoadResult, err error) {
	res.Errors++
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		res.Timeouts++
	case errors.Is(err, io.ErrUnexpectedEOF):
		res.Truncated++
	default:
		res.OtherErrors++
	}
}

// RunLoad replays tr against a proxy with the configured concurrency,
// measuring first-byte latency per request and classifying failures.
// Cancelling ctx stops dispatching new requests; in-flight requests drain
// before RunLoad returns the partial result and ctx.Err().
func RunLoad(ctx context.Context, tr *trace.Trace, cfg LoadConfig) (LoadResult, error) {
	if cfg.Concurrency <= 0 {
		return LoadResult{}, fmt.Errorf("server: concurrency must be > 0")
	}
	if tr.Len() == 0 {
		return LoadResult{}, fmt.Errorf("server: empty trace")
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	base, err := url.Parse(cfg.ProxyURL)
	if err != nil {
		return LoadResult{}, fmt.Errorf("server: bad proxy URL: %w", err)
	}
	transport := &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
		// Neither the proxy nor the origin compresses; advertising gzip would
		// only add a request header and a decompression check per response.
		DisableCompression: true,
	}
	client := &http.Client{Transport: transport, Timeout: timeout}
	defer transport.CloseIdleConnections()

	// Pre-render every request's URL strings before the clock starts: the
	// load generator is the measuring instrument, not the system under test,
	// so request formatting (and its allocations) stays out of the measured
	// loop — the same discipline benchServe applies to trace generation.
	type urlParts struct{ path, query string }
	parts := make([]urlParts, tr.Len())
	{
		var pathBuf, queryBuf []byte
		for i, r := range tr.Requests {
			pathBuf = append(append(pathBuf[:0], base.Path...), "/obj/"...)
			pathBuf = strconv.AppendUint(pathBuf, r.ID, 10)
			queryBuf = append(queryBuf[:0], "size="...)
			queryBuf = strconv.AppendInt(queryBuf, r.Size, 10)
			parts[i] = urlParts{path: string(pathBuf), query: string(queryBuf)}
		}
	}

	work := make(chan int)
	var (
		mu  sync.Mutex
		res LoadResult
		wg  sync.WaitGroup
	)
	res.FirstByte = make([]time.Duration, 0, tr.Len())
	worker := func() {
		defer wg.Done()
		// The body read buffer is borrowed from the process-wide pool for
		// the worker's lifetime — one buffer per worker, zero per request.
		bufp := getCopyBuf()
		defer putCopyBuf(bufp)
		buf := *bufp
		// One request object per worker, rebuilt in place: the URL struct is
		// pre-parsed once and only its Path/RawQuery strings swap per
		// request, so no url.Parse, header map, or Request allocation sits
		// in the measurement loop.
		u := *base
		hdr := make(http.Header, 1)
		if cfg.Deadline > 0 {
			hdr.Set(DeadlineHeader, strconv.FormatInt(cfg.Deadline.Milliseconds(), 10))
		}
		hreq := &http.Request{
			Method:     http.MethodGet,
			URL:        &u,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     hdr,
			Host:       base.Host,
		}
		for i := range work {
			if cfg.ClientLatency > 0 {
				time.Sleep(cfg.ClientLatency)
			}
			u.Path = parts[i].path
			u.RawQuery = parts[i].query
			start := time.Now()
			resp, err := client.Do(hreq)
			if err != nil {
				mu.Lock()
				classify(&res, err)
				mu.Unlock()
				continue
			}
			// First byte: the response headers plus the first body read.
			var n int64
			m, rerr := resp.Body.Read(buf)
			fb := time.Since(start)
			n += int64(m)
			for rerr == nil {
				m, rerr = resp.Body.Read(buf)
				n += int64(m)
			}
			// Completion time is only read against a configured deadline;
			// skip the clock otherwise.
			onTime := true
			if cfg.Deadline > 0 {
				onTime = time.Since(start) <= cfg.Deadline
			}
			_ = resp.Body.Close() // body fully drained above; close can't fail usefully
			mu.Lock()
			switch {
			case resp.StatusCode >= 400:
				res.Errors++
				res.Status5xx++
				if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get(ShedHeader) != "" {
					res.Shed++
				}
			case rerr != nil && rerr != io.EOF:
				classify(&res, rerr)
			default:
				res.Requests++
				res.Bytes += n
				res.FirstByte = append(res.FirstByte, fb)
				if onTime {
					res.OnTime++
				}
				switch resp.Header.Get("X-Cache") {
				case "hoc-hit":
					res.HOCHits++
				case "dc-hit":
					res.DCHits++
				case "miss":
					res.Misses++
				case "stale":
					res.StaleServes++
				}
				if len(resp.Header[PeerHeader]) > 0 {
					res.PeerFills++
				}
			}
			mu.Unlock()
		}
	}
	begin := time.Now()
	wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go worker()
	}
	var gaps []time.Duration
	if cfg.Burst != nil {
		gaps = cfg.Burst.Gaps(tr.Len())
	}
	var dispatchErr error
	if done := ctx.Done(); done == nil && gaps == nil {
		// Uncancellable unpaced dispatch (the benchmark path): a plain send
		// per request instead of a two-case select keeps the dispatcher's
		// scheduler cost off the measured loop.
		for i := range tr.Requests {
			work <- i
		}
	} else {
	dispatch:
		for i := range tr.Requests {
			if gaps != nil && gaps[i] > 0 {
				if err := sleepCtx(ctx, gaps[i]); err != nil {
					dispatchErr = err
					break dispatch
				}
			}
			select {
			case work <- i:
			case <-ctx.Done():
				dispatchErr = ctx.Err()
				break dispatch
			}
		}
	}
	close(work)
	wg.Wait()
	res.Wall = time.Since(begin)
	return res, dispatchErr
}
