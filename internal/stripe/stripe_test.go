package stripe

import (
	"sync"
	"testing"
)

func TestCellSnapshotConsistency(t *testing.T) {
	// A single writer keeps the invariant vals[1] == 2*vals[0] inside every
	// write section; concurrent readers must never observe it broken.
	c := NewCell(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Begin()
			c.Set(0, i)
			c.Set(1, 2*i)
			c.End()
		}
	}()
	buf := make([]int64, 2)
	for i := 0; i < 20_000; i++ {
		c.Snapshot(buf)
		if buf[1] != 2*buf[0] {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: vals = %v", buf)
		}
	}
	close(stop)
	wg.Wait()
}

func TestCellStoreBulkPublication(t *testing.T) {
	// Store publishes a whole block in one write section; readers must see
	// either the previous block or the new one in full, never a mix. The
	// writer maintains vals[1] == 2*vals[0] in every published block.
	c := NewCell(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		block := make([]int64, 2)
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			block[0], block[1] = i, 2*i
			c.Store(block)
		}
	}()
	buf := make([]int64, 2)
	for i := 0; i < 20_000; i++ {
		c.Snapshot(buf)
		if buf[1] != 2*buf[0] {
			close(stop)
			wg.Wait()
			t.Fatalf("torn bulk publication: vals = %v", buf)
		}
	}
	close(stop)
	wg.Wait()

	// Width mismatch is a programming error and must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("Store with wrong width did not panic")
		}
	}()
	c.Store(make([]int64, 3))
}

func TestCountersTotalsAndOrdering(t *testing.T) {
	// Each worker bumps counter 0 then counter 1 under its own key. Within a
	// stripe the pair is ordered, and every stripe is snapshotted
	// consistently, so any aggregate must satisfy sum0 >= sum1 — and the
	// final totals must be exact.
	const workers, iters = 8, 5_000
	c := New(16, 2)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(key, 0, 1)
				c.Add(key, 1, 1)
			}
		}(uint64(w) * 7919)
	}
	go func() { wg.Wait(); close(done) }()
	buf := make([]int64, 2)
	for {
		c.Snapshot(buf)
		if buf[0] < buf[1] {
			t.Fatalf("aggregate saw counter 1 ahead of counter 0: %v", buf)
		}
		select {
		case <-done:
			c.Snapshot(buf)
			if buf[0] != workers*iters || buf[1] != workers*iters {
				t.Fatalf("totals = %v, want %d each", buf, workers*iters)
			}
			return
		default:
		}
	}
}

func TestNewRoundsStripesUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {16, 16}, {17, 32}} {
		c := New(tc.in, 1)
		if len(c.stripes) != tc.want {
			t.Errorf("New(%d): %d stripes, want %d", tc.in, len(c.stripes), tc.want)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Distinct small ids must spread across shards rather than collapse.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
	if Mix64(0) == 0 && Mix64(1) == 1 {
		t.Fatal("Mix64 looks like identity")
	}
}
