// Package stripe provides lock-striped counter blocks with coherent,
// lock-free snapshots — the accounting layer under the sharded cache data
// plane.
//
// The problem it solves: a hot path that increments counters from many
// goroutines wants neither a global mutex (serializes the data plane) nor a
// bag of independent atomics (readers see torn cross-counter snapshots — a
// "requests" value from one instant paired with an "errors" value from
// another). A stripe.Cell is a fixed-width block of int64 counters published
// under a sequence number: exactly one writer at a time (serialized
// externally, e.g. by a shard mutex), any number of readers that never block
// the writer and always observe the block at one consistent point in time.
// stripe.Counters adds key-hashed striping with per-stripe writer mutexes
// for call sites that have no natural owner lock.
package stripe

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell is a fixed-width block of int64 counters guarded by a sequence
// number (a seqlock). Writers must be externally serialized — callers hold a
// shard mutex or are a single goroutine — and bracket their updates with
// Begin/End. Readers call Snapshot, which never blocks the writer and
// retries until it observes a quiescent block, so every snapshot is a
// consistent point-in-time copy of the whole cell.
type Cell struct {
	// seq is even when the cell is quiescent and odd while a write is in
	// progress; it increments twice per write section.
	seq  atomic.Uint64
	vals []atomic.Int64
}

// NewCell builds a cell with width counters, all zero.
func NewCell(width int) *Cell {
	return &Cell{vals: make([]atomic.Int64, width)}
}

// Width returns the number of counters in the cell.
func (c *Cell) Width() int { return len(c.vals) }

// Begin opens a write section. Snapshot retries while one is open, so the
// counter stores between Begin and End become visible atomically as a group.
// The caller must be the cell's only writer (hold the owning mutex).
func (c *Cell) Begin() { c.seq.Add(1) }

// End closes the write section opened by Begin.
func (c *Cell) End() { c.seq.Add(1) }

// Add adds delta to counter i. Call between Begin and End.
func (c *Cell) Add(i int, delta int64) { c.vals[i].Add(delta) }

// Set stores v into counter i. Call between Begin and End.
func (c *Cell) Set(i int, v int64) { c.vals[i].Store(v) }

// Store publishes a whole counter block in one write section: Begin, one
// store per value, End. It is the batched-publication primitive — a writer
// that accumulates deltas locally (e.g. a cache shard batching K requests)
// pays the two seqlock fences once per publication instead of once per
// counter update. len(vals) must equal Width; the caller must be the cell's
// only writer.
func (c *Cell) Store(vals []int64) {
	// Plain panic string: Store sits on the serving hot path (reachable from
	// Sharded.Serve), where the lint forbids fmt formatting even on the
	// can't-happen branch.
	if len(vals) != len(c.vals) {
		panic("stripe: store width != cell width")
	}
	c.seq.Add(1)
	for i, v := range vals {
		c.vals[i].Store(v)
	}
	c.seq.Add(1)
}

// Snapshot copies every counter into dst (len(dst) must equal Width) at one
// consistent point in time: if the writer is mid-section, the read retries
// until it observes the same even sequence number on both sides of the copy.
// It takes no lock and never blocks the writer.
func (c *Cell) Snapshot(dst []int64) {
	if len(dst) != len(c.vals) {
		panic(fmt.Sprintf("stripe: snapshot width %d != cell width %d", len(dst), len(c.vals)))
	}
	for {
		s1 := c.seq.Load()
		if s1&1 == 0 {
			for i := range c.vals {
				dst[i] = c.vals[i].Load()
			}
			if c.seq.Load() == s1 {
				return
			}
		}
		// A write section is (or was) in flight; yield and retry. Sections
		// are a handful of atomic stores, so retries are short-lived.
		runtime.Gosched()
	}
}

// Counters is a set of key-striped cells for counters updated from many
// goroutines with no natural owner lock (e.g. the HTTP proxy's data-plane
// stats). Updates hash their key to a stripe and run under that stripe's
// mutex, so unrelated keys never contend; Snapshot sums per-stripe
// consistent snapshots without taking any stripe mutex.
//
// Coherence contract: each stripe is observed at one consistent instant, so
// two counters bumped under the same key in one critical section are never
// seen torn relative to each other. The aggregate is a sum of per-stripe
// consistent snapshots — strictly stronger than loading independent global
// atomics one by one, though stripes may be observed at slightly different
// instants relative to each other.
type Counters struct {
	width   int
	stripes []paddedStripe
}

// paddedStripe pads each stripe past a cache line so neighbouring stripes'
// mutexes and sequence numbers never false-share.
type paddedStripe struct {
	mu   sync.Mutex
	cell Cell
	_    [24]byte
}

// New builds a Counters with the given stripe count (rounded up to a power
// of two, minimum 1) and counter width.
func New(stripes, width int) *Counters {
	n := 1
	for n < stripes {
		n <<= 1
	}
	c := &Counters{width: width, stripes: make([]paddedStripe, n)}
	for i := range c.stripes {
		c.stripes[i].cell.vals = make([]atomic.Int64, width)
	}
	return c
}

// Width returns the number of counters per stripe.
func (c *Counters) Width() int { return c.width }

// Add adds delta to counter idx in the stripe owning key.
func (c *Counters) Add(key uint64, idx int, delta int64) {
	s := &c.stripes[Mix64(key)&uint64(len(c.stripes)-1)]
	s.mu.Lock()
	s.cell.Begin()
	s.cell.Add(idx, delta)
	s.cell.End()
	s.mu.Unlock()
}

// Snapshot sums a consistent snapshot of every stripe into dst (len(dst)
// must equal Width). It takes no stripe mutex.
func (c *Counters) Snapshot(dst []int64) {
	if len(dst) != c.width {
		panic(fmt.Sprintf("stripe: snapshot width %d != counters width %d", len(dst), c.width))
	}
	for i := range dst {
		dst[i] = 0
	}
	buf := make([]int64, c.width)
	for i := range c.stripes {
		c.stripes[i].cell.Snapshot(buf)
		for j, v := range buf {
			dst[j] += v
		}
	}
}

// Mix64 is a SplitMix64-style finalizer: a cheap, allocation-free bijective
// mix spreading adjacent keys across the id space. The sharded cache engine
// and the striped counters share it so an object's shard and stats stripe
// derive from the same diffusion.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
