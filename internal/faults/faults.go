// Package faults is a deterministic, seedable fault injector for the HTTP
// prototype's origin server. The paper's §6.4 testbed only models a healthy
// origin; real CDN edges are defined by how they behave when the origin is
// slow or down, so the chaos experiment (internal/exp) wraps the origin in
// an Injector and measures how the proxy's resilience layer absorbs the
// injected faults.
//
// The injector models five fault classes, each drawn independently per
// request from a seeded RNG so a given (seed, schedule) reproduces the same
// aggregate fault mix run after run:
//
//   - hard errors: the origin answers an immediate 5xx
//   - outage windows: wall-clock intervals during which every request is
//     refused with 503 (a crashed or partitioned origin)
//   - latency spikes: an extra delay before the response starts
//   - stalls: the response headers hang before the first byte (a wedged
//     upstream, the slow-origin case clients experience as a timeout)
//   - truncation: the origin declares a full Content-Length but cuts the
//     body short mid-stream, so the connection closes with a short body
package faults

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Window is a wall-clock outage interval relative to the injector's epoch
// (the moment New was called, or the epoch set with Restart).
type Window struct {
	// Start is the offset at which the outage begins.
	Start time.Duration
	// End is the offset at which the outage ends (exclusive).
	End time.Duration
}

// ParseOutages parses a comma-separated outage schedule of
// "<start>+<duration>" items, e.g. "150ms+150ms,2s+500ms".
func ParseOutages(s string) ([]Window, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var ws []Window
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		parts := strings.SplitN(item, "+", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("faults: bad outage %q (want start+duration)", item)
		}
		start, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("faults: bad outage start %q: %v", parts[0], err)
		}
		dur, err := time.ParseDuration(parts[1])
		if err != nil {
			return nil, fmt.Errorf("faults: bad outage duration %q: %v", parts[1], err)
		}
		if start < 0 || dur <= 0 {
			return nil, fmt.Errorf("faults: outage %q must have start >= 0 and duration > 0", item)
		}
		ws = append(ws, Window{Start: start, End: start + dur})
	}
	return ws, nil
}

// Config parameterises an Injector. All rates are probabilities in [0, 1];
// a zero Config injects nothing and passes every request through.
type Config struct {
	// Seed makes the per-request fault draws deterministic.
	Seed int64
	// ErrorRate is the probability of an immediate hard error response.
	ErrorRate float64
	// ErrorStatus is the hard-error status code (default 500).
	ErrorStatus int
	// SpikeRate is the probability of an added latency spike.
	SpikeRate float64
	// Spike is the injected spike duration.
	Spike time.Duration
	// StallRate is the probability the response stalls before its first byte.
	StallRate float64
	// Stall is the injected stall duration.
	Stall time.Duration
	// TruncateRate is the probability the response body is cut short after
	// TruncateFrac of its declared length.
	TruncateRate float64
	// TruncateFrac is the fraction of the body delivered before the cut
	// (default 0.5).
	TruncateFrac float64
	// Outages are hard outage windows relative to the injector epoch.
	Outages []Window
}

// Stats counts injected faults by class. Requests is the total seen;
// Passed is how many were forwarded unmodified.
type Stats struct {
	Requests, Passed                                 int64
	Errors, OutageDrops, Spikes, Stalls, Truncations int64
}

// Injector wraps an http.Handler with the configured fault schedule.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	epoch time.Time

	now func() time.Time // test seam

	requests, passed, errors, outages, spikes, stalls, truncations atomic.Int64
}

// New builds an Injector whose outage clock starts now.
func New(cfg Config) *Injector {
	if cfg.ErrorStatus == 0 {
		cfg.ErrorStatus = http.StatusInternalServerError
	}
	if cfg.TruncateFrac <= 0 || cfg.TruncateFrac >= 1 {
		cfg.TruncateFrac = 0.5
	}
	return &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		epoch: time.Now(),
		now:   time.Now,
	}
}

// Restart resets the outage clock so windows are relative to t. The chaos
// experiment calls this right before replaying a trace so the schedule
// aligns with the run, not with injector construction.
func (in *Injector) Restart(t time.Time) {
	in.mu.Lock()
	in.epoch = t
	in.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Requests:    in.requests.Load(),
		Passed:      in.passed.Load(),
		Errors:      in.errors.Load(),
		OutageDrops: in.outages.Load(),
		Spikes:      in.spikes.Load(),
		Stalls:      in.stalls.Load(),
		Truncations: in.truncations.Load(),
	}
}

// draws holds one request's fault decisions. All four dice are always
// rolled so the RNG stream advances identically regardless of which faults
// fire — the aggregate mix depends only on the seed and request count.
type draws struct {
	err, spike, stall, truncate bool
}

func (in *Injector) roll() draws {
	in.mu.Lock()
	defer in.mu.Unlock()
	return draws{
		err:      in.rng.Float64() < in.cfg.ErrorRate,
		spike:    in.rng.Float64() < in.cfg.SpikeRate,
		stall:    in.rng.Float64() < in.cfg.StallRate,
		truncate: in.rng.Float64() < in.cfg.TruncateRate,
	}
}

func (in *Injector) inOutage() bool {
	if len(in.cfg.Outages) == 0 {
		return false
	}
	in.mu.Lock()
	d := in.now().Sub(in.epoch)
	in.mu.Unlock()
	for _, w := range in.cfg.Outages {
		if d >= w.Start && d < w.End {
			return true
		}
	}
	return false
}

// Wrap returns a handler that applies the fault schedule in front of next.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		in.requests.Add(1)
		if in.inOutage() {
			in.outages.Add(1)
			http.Error(w, "faults: origin outage", http.StatusServiceUnavailable)
			return
		}
		d := in.roll()
		if d.err {
			in.errors.Add(1)
			http.Error(w, "faults: injected origin error", in.cfg.ErrorStatus)
			return
		}
		if d.spike {
			in.spikes.Add(1)
			time.Sleep(in.cfg.Spike)
		}
		if !d.stall && !d.truncate {
			in.passed.Add(1)
			next.ServeHTTP(w, r)
			return
		}
		fw := &faultWriter{ResponseWriter: w, truncateAt: -1}
		if d.stall {
			in.stalls.Add(1)
			fw.stall = in.cfg.Stall
		}
		if d.truncate {
			in.truncations.Add(1)
			fw.truncateFrac = in.cfg.TruncateFrac
		}
		next.ServeHTTP(fw, r)
	})
}

// faultWriter stalls before the first byte and/or silently stops writing
// after a fraction of the declared Content-Length. The handler keeps
// writing into the void; when it returns, the HTTP server notices the short
// body and closes the connection, which clients observe as an unexpected
// EOF mid-download — the mid-stream truncation failure mode.
type faultWriter struct {
	http.ResponseWriter
	stall        time.Duration
	truncateFrac float64
	truncateAt   int64 // -1: no cut; set from Content-Length at WriteHeader
	written      int64
	stalled      bool
	wroteHeader  bool
}

func (f *faultWriter) WriteHeader(code int) {
	if f.wroteHeader {
		return
	}
	f.wroteHeader = true
	if f.truncateFrac > 0 {
		if cl, err := strconv.ParseInt(f.Header().Get("Content-Length"), 10, 64); err == nil && cl > 0 {
			f.truncateAt = int64(float64(cl) * f.truncateFrac)
		}
	}
	if f.stall > 0 && !f.stalled {
		f.stalled = true
		time.Sleep(f.stall)
	}
	f.ResponseWriter.WriteHeader(code)
}

func (f *faultWriter) Write(p []byte) (int, error) {
	if !f.wroteHeader {
		f.WriteHeader(http.StatusOK)
	}
	n := len(p)
	if f.truncateAt >= 0 {
		remain := f.truncateAt - f.written
		if remain <= 0 {
			f.written += int64(n)
			return n, nil // discard: body stays short of Content-Length
		}
		if int64(n) > remain {
			if _, err := f.ResponseWriter.Write(p[:remain]); err != nil {
				return 0, err
			}
			f.written += int64(n)
			return n, nil
		}
	}
	m, err := f.ResponseWriter.Write(p)
	f.written += int64(m)
	return m, err
}
