package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// okHandler serves n bytes with a correct Content-Length.
func okHandler(n int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(n))
		w.WriteHeader(http.StatusOK)
		w.Write(make([]byte, n))
	})
}

func TestZeroConfigPassesThrough(t *testing.T) {
	in := New(Config{Seed: 1})
	srv := httptest.NewServer(in.Wrap(okHandler(1000)))
	defer srv.Close()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || len(body) != 1000 {
			t.Fatalf("request %d: status %d, body %d, err %v", i, resp.StatusCode, len(body), err)
		}
	}
	st := in.Stats()
	if st.Requests != 20 || st.Passed != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorRateIsDeterministic(t *testing.T) {
	counts := func() int64 {
		in := New(Config{Seed: 7, ErrorRate: 0.3})
		srv := httptest.NewServer(in.Wrap(okHandler(10)))
		defer srv.Close()
		errors := 0
		for i := 0; i < 100; i++ {
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusInternalServerError {
				errors++
			}
		}
		st := in.Stats()
		if int64(errors) != st.Errors {
			t.Fatalf("observed %d errors, injector counted %d", errors, st.Errors)
		}
		return st.Errors
	}
	a, b := counts(), counts()
	if a != b {
		t.Fatalf("same seed produced different fault counts: %d vs %d", a, b)
	}
	// 100 draws at rate 0.3: the exact count is seed-determined; sanity-band it.
	if a < 10 || a > 55 {
		t.Fatalf("error count %d implausible for rate 0.3", a)
	}
}

func TestTruncationYieldsShortBody(t *testing.T) {
	in := New(Config{Seed: 1, TruncateRate: 1})
	srv := httptest.NewServer(in.Wrap(okHandler(100000)))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatalf("expected a read error from the truncated body, got %d clean bytes", len(body))
	}
	if len(body) >= 100000 {
		t.Fatalf("body not truncated: %d bytes", len(body))
	}
	if st := in.Stats(); st.Truncations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutageWindow(t *testing.T) {
	in := New(Config{Seed: 1, Outages: []Window{{Start: 0, End: time.Hour}}})
	srv := httptest.NewServer(in.Wrap(okHandler(10)))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// Restart the clock far past the window: requests pass again.
	in.Restart(time.Now().Add(-2 * time.Hour))
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after window = %d, want 200", resp.StatusCode)
	}
	if st := in.Stats(); st.OutageDrops != 1 || st.Passed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpikeAddsLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency injection test")
	}
	in := New(Config{Seed: 1, SpikeRate: 1, Spike: 30 * time.Millisecond})
	srv := httptest.NewServer(in.Wrap(okHandler(10)))
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("no spike: %v", d)
	}
}

func TestParseOutages(t *testing.T) {
	ws, err := ParseOutages("150ms+150ms, 2s+500ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Window{
		{Start: 150 * time.Millisecond, End: 300 * time.Millisecond},
		{Start: 2 * time.Second, End: 2500 * time.Millisecond},
	}
	if len(ws) != 2 || ws[0] != want[0] || ws[1] != want[1] {
		t.Fatalf("ws = %+v", ws)
	}
	if ws, err := ParseOutages(""); err != nil || ws != nil {
		t.Fatalf("empty schedule: %v %v", ws, err)
	}
	for _, bad := range []string{"5s", "x+1s", "1s+y", "-1s+1s", "1s+0s"} {
		if _, err := ParseOutages(bad); err == nil {
			t.Errorf("ParseOutages(%q) accepted", bad)
		}
	}
}
