package features

import (
	"math"
	"testing"

	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func mk(t *testing.T, cfg Config) *Extractor {
	t.Helper()
	e, err := NewExtractor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{NumIAT: -1, NumSD: 1, SizeBuckets: 4, MinSize: 1, MaxSize: 10},
		{NumIAT: 1, NumSD: 1, SizeBuckets: 0, MinSize: 1, MaxSize: 10},
		{NumIAT: 1, NumSD: 1, SizeBuckets: 4, MinSize: 0, MaxSize: 10},
		{NumIAT: 1, NumSD: 1, SizeBuckets: 4, MinSize: 10, MaxSize: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if got := DefaultConfig().VectorLen(); got != 15 {
		t.Fatalf("VectorLen = %d, want 15 (paper's feature vector)", got)
	}
}

func TestAvgSize(t *testing.T) {
	e := mk(t, DefaultConfig())
	e.Observe(trace.Request{ID: 1, Size: 100, Time: 0})
	e.Observe(trace.Request{ID: 2, Size: 300, Time: 1})
	v := e.Vector()
	if v[0] != 200 {
		t.Fatalf("avg size = %v, want 200", v[0])
	}
	if e.Requests() != 2 {
		t.Fatalf("Requests = %d", e.Requests())
	}
}

func TestInterArrivalTimes(t *testing.T) {
	cfg := Config{NumIAT: 3, NumSD: 3, SizeBuckets: 4, MinSize: 1, MaxSize: 1 << 20}
	e := mk(t, cfg)
	// Object 1 at t=0,10,30,60: gaps 10,20,30.
	for _, ts := range []int64{0, 10, 30, 60} {
		e.Observe(trace.Request{ID: 1, Size: 5, Time: ts})
	}
	// Object 2 at t=0,20: gap 20 (first gap).
	e.Observe(trace.Request{ID: 2, Size: 5, Time: 0})
	e.Observe(trace.Request{ID: 2, Size: 5, Time: 20})
	v := e.Vector()
	// iat_1 = mean(10, 20) = 15; iat_2 = 20; iat_3 = 30.
	if v[1] != 15 || v[2] != 20 || v[3] != 30 {
		t.Fatalf("iat = %v, want [15 20 30]", v[1:4])
	}
}

func TestStackDistancesDistinctBytes(t *testing.T) {
	cfg := Config{NumIAT: 2, NumSD: 2, SizeBuckets: 4, MinSize: 1, MaxSize: 1 << 20}
	e := mk(t, cfg)
	// Sequence: A B C B A.
	// A's first gap spans B C B; distinct objects between = {B,C} = 20+30=50.
	// B's first gap spans C = 30.
	seq := []trace.Request{
		{ID: 1, Size: 10, Time: 0}, // A
		{ID: 2, Size: 20, Time: 1}, // B
		{ID: 3, Size: 30, Time: 2}, // C
		{ID: 2, Size: 20, Time: 3}, // B again: sd_1 sample = 30
		{ID: 1, Size: 10, Time: 4}, // A again: sd_1 sample = 20+30 = 50
	}
	for _, r := range seq {
		e.Observe(r)
	}
	v := e.Vector()
	sd1 := v[1+cfg.NumIAT]
	if sd1 != 40 { // mean(30, 50)
		t.Fatalf("sd_1 = %v, want 40", sd1)
	}
}

func TestStackDistanceCountsObjectsOnce(t *testing.T) {
	cfg := Config{NumIAT: 1, NumSD: 1, SizeBuckets: 4, MinSize: 1, MaxSize: 1 << 20}
	e := mk(t, cfg)
	// A B B B A: B is requested 3 times between A's two requests but is one
	// distinct object, so A's sample is 20 (not 60). B's own first reuse is
	// immediate (sample 0), so sd_1 = mean(0, 20) = 10.
	seq := []trace.Request{
		{ID: 1, Size: 10, Time: 0},
		{ID: 2, Size: 20, Time: 1},
		{ID: 2, Size: 20, Time: 2},
		{ID: 2, Size: 20, Time: 3},
		{ID: 1, Size: 10, Time: 4},
	}
	for _, r := range seq {
		e.Observe(r)
	}
	sd1 := e.Vector()[2]
	if sd1 != 10 {
		t.Fatalf("sd_1 = %v, want 10 (distinct objects only, averaged over objects)", sd1)
	}
}

func TestImmediateReuseZeroDistance(t *testing.T) {
	cfg := Config{NumIAT: 1, NumSD: 1, SizeBuckets: 4, MinSize: 1, MaxSize: 1 << 20}
	e := mk(t, cfg)
	e.Observe(trace.Request{ID: 1, Size: 10, Time: 0})
	e.Observe(trace.Request{ID: 1, Size: 10, Time: 1})
	if sd := e.Vector()[2]; sd != 0 {
		t.Fatalf("immediate reuse sd = %v, want 0", sd)
	}
}

func TestSizeDistributionSumsToOne(t *testing.T) {
	e := mk(t, DefaultConfig())
	for i := 0; i < 100; i++ {
		e.Observe(trace.Request{ID: uint64(i), Size: int64(64 << (i % 10)), Time: int64(i)})
	}
	var sum float64
	for _, f := range e.SizeDistribution() {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("size distribution sums to %v", sum)
	}
	ext := e.Extended()
	if len(ext) != 15+16 {
		t.Fatalf("Extended length = %d, want 31", len(ext))
	}
}

func TestZeroSizeRequestHandled(t *testing.T) {
	e := mk(t, DefaultConfig())
	e.Observe(trace.Request{ID: 1, Size: 0, Time: 0}) // must not panic on log2(0)
	if e.Requests() != 1 {
		t.Fatal("request not counted")
	}
}

func TestGrowth(t *testing.T) {
	cfg := Config{NumIAT: 2, NumSD: 2, SizeBuckets: 4, MinSize: 1, MaxSize: 1 << 20}
	e := mk(t, cfg)
	// Push far past the initial 1024-slot tree, interleaving two objects so
	// stack distances remain exercised across growth boundaries.
	for i := 0; i < 5000; i++ {
		e.Observe(trace.Request{ID: uint64(i % 2), Size: 10, Time: int64(i)})
	}
	v := e.Vector()
	if v[0] != 10 {
		t.Fatalf("avg size after growth = %v", v[0])
	}
	// Each object alternates, so every gap has exactly one distinct other
	// object in between: sd = 10.
	if v[1+cfg.NumIAT] != 10 {
		t.Fatalf("sd_1 after growth = %v, want 10", v[1+cfg.NumIAT])
	}
}

func TestGrowthPreservesDistances(t *testing.T) {
	// Same trace through small-then-grown tree vs a naive reference.
	cfg := Config{NumIAT: 1, NumSD: 1, SizeBuckets: 4, MinSize: 1, MaxSize: 1 << 20}
	tr, err := tracegen.ImageDownloadMix(50, 3000, 44)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromTrace(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSD1(tr)
	if math.Abs(got[2]-want) > 1e-6 {
		t.Fatalf("sd_1 = %v, naive reference = %v", got[2], want)
	}
}

// naiveSD1 computes the average first stack distance by brute force.
func naiveSD1(tr *trace.Trace) float64 {
	var sum float64
	var n int
	occ := map[uint64][]int{}
	for i, r := range tr.Requests {
		occ[r.ID] = append(occ[r.ID], i)
	}
	for _, positions := range occ {
		if len(positions) < 2 {
			continue
		}
		lo, hi := positions[0], positions[1]
		seen := map[uint64]int64{}
		for j := lo + 1; j < hi; j++ {
			seen[tr.Requests[j].ID] = tr.Requests[j].Size
		}
		var d int64
		for _, s := range seen {
			d += s
		}
		sum += float64(d)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestReset(t *testing.T) {
	e := mk(t, DefaultConfig())
	for i := 0; i < 100; i++ {
		e.Observe(trace.Request{ID: uint64(i % 5), Size: 100, Time: int64(i)})
	}
	e.Reset()
	if e.Requests() != 0 {
		t.Fatal("Reset did not clear request count")
	}
	v := e.Vector()
	for i, x := range v {
		if x != 0 {
			t.Fatalf("vector[%d] = %v after Reset", i, x)
		}
	}
}

func TestFeatureConvergence(t *testing.T) {
	// Fig 5a behaviour: the prefix feature vector converges to the full-trace
	// vector as the prefix grows.
	tr, err := tracegen.ImageDownloadMix(50, 40000, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	full, err := FromTrace(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(frac float64) float64 {
		prefix, err := FromTrace(tr.Window(0, int(float64(tr.Len())*frac)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return RelativeError(prefix, full)
	}
	e10, e50, e90 := errAt(0.1), errAt(0.5), errAt(0.9)
	if e90 >= e10 {
		t.Fatalf("error did not shrink: 10%%=%.4f 90%%=%.4f", e10, e90)
	}
	if e50 > 1.0 {
		t.Fatalf("error at 50%% unreasonably large: %v", e50)
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError([]float64{1, 2}, []float64{1, 2}) != 0 {
		t.Fatal("identical vectors should have zero error")
	}
	if got := RelativeError([]float64{2}, []float64{1}); got != 1 {
		t.Fatalf("error = %v, want 1", got)
	}
	if got := RelativeError([]float64{5, 1}, []float64{0, 1}); got != 0 {
		t.Fatalf("zero-reference entries should be skipped, got %v", got)
	}
	if !math.IsInf(RelativeError([]float64{1}, []float64{1, 2}), 1) {
		t.Fatal("length mismatch should be +Inf")
	}
	if RelativeError(nil, nil) != 0 {
		t.Fatal("empty vectors should have zero error")
	}
}

func BenchmarkObserve(b *testing.B) {
	tr, err := tracegen.ImageDownloadMix(50, 100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewExtractor(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(tr.Requests[i%tr.Len()])
	}
}
