// Package features extracts the traffic-pattern features Darwin uses for
// clustering and cross-expert prediction (§4.1, Appendix A.1):
//
//	(a) average requested object size;
//	(b) the vector of the first n average inter-arrival times, where the
//	    k-th inter-arrival time of an object is the time elapsed between its
//	    k-th and (k+1)-th requests, averaged over all objects;
//	(c) the vector of the first m average stack distances, where the k-th
//	    stack distance of an object is the cumulative size of the distinct
//	    objects requested between its k-th and (k+1)-th requests, averaged
//	    over all objects.
//
// Stack distances are computed online with a Fenwick tree over request
// positions (the "tree structure" of §6.4), giving O(log n) per request. The
// extractor additionally maintains the bucketised (log-scale) size
// distribution that §4.1 appends to the feature vector to sharpen the
// cross-expert predictors.
package features

import (
	"fmt"
	"math"

	"darwin/internal/stats"
	"darwin/internal/trace"
)

// Config sets the feature vector shape.
type Config struct {
	// NumIAT is n, the number of average inter-arrival entries (paper: 7).
	NumIAT int
	// NumSD is m, the number of average stack-distance entries (paper: 7).
	NumSD int
	// SizeBuckets is the number of log-scale size-distribution buckets.
	SizeBuckets int
	// MinSize and MaxSize bound the log-scale bucket range in bytes.
	MinSize, MaxSize int64
}

// DefaultConfig returns the paper's 15-entry vector shape (1 + 7 + 7) with a
// 16-bucket size distribution spanning 64 B – 4 MB.
func DefaultConfig() Config {
	return Config{NumIAT: 7, NumSD: 7, SizeBuckets: 16, MinSize: 64, MaxSize: 4 << 20}
}

// VectorLen returns the length of the base feature vector.
func (c Config) VectorLen() int { return 1 + c.NumIAT + c.NumSD }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumIAT < 0 || c.NumSD < 0 {
		return fmt.Errorf("features: negative vector dims %d/%d", c.NumIAT, c.NumSD)
	}
	if c.SizeBuckets <= 0 {
		return fmt.Errorf("features: SizeBuckets must be > 0")
	}
	if c.MinSize < 1 || c.MaxSize <= c.MinSize {
		return fmt.Errorf("features: bad size range [%d,%d]", c.MinSize, c.MaxSize)
	}
	return nil
}

// objState tracks one object's occurrence count, last position/time.
type objState struct {
	count    int
	lastPos  int
	lastTime int64
	size     int64
}

// Extractor accumulates features over a request stream. Per-object state is
// stored by value so tracking a new object costs one map store, not a heap
// allocation.
type Extractor struct {
	cfg     Config
	objects map[uint64]objState
	tree    *stats.Fenwick
	raw     []int64 // per-position sizes currently in the tree (for regrow)
	pos     int

	totalBytes int64
	requests   int64

	iatSum   []float64
	iatCount []int64
	sdSum    []float64
	sdCount  []int64

	sizeHist *stats.Histogram // over log2(size)
}

// NewExtractor builds an extractor; cfg must validate.
func NewExtractor(cfg Config) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Extractor{
		cfg:      cfg,
		objects:  make(map[uint64]objState),
		tree:     stats.NewFenwick(1024),
		raw:      make([]int64, 1024),
		iatSum:   make([]float64, cfg.NumIAT),
		iatCount: make([]int64, cfg.NumIAT),
		sdSum:    make([]float64, cfg.NumSD),
		sdCount:  make([]int64, cfg.NumSD),
		sizeHist: stats.NewHistogram(math.Log2(float64(cfg.MinSize)), math.Log2(float64(cfg.MaxSize)), cfg.SizeBuckets),
	}, nil
}

// Observe incorporates one request.
func (e *Extractor) Observe(r trace.Request) {
	e.grow()
	e.requests++
	e.totalBytes += r.Size
	if r.Size > 0 {
		e.sizeHist.Add(math.Log2(float64(r.Size)))
	} else {
		e.sizeHist.Add(math.Log2(float64(e.cfg.MinSize)))
	}

	st, ok := e.objects[r.ID]
	if !ok {
		st.lastPos = -1
	}
	if st.lastPos >= 0 {
		gap := st.count // 1-indexed gap number: between count-th and (count+1)-th request
		if gap >= 1 && gap <= e.cfg.NumIAT {
			e.iatSum[gap-1] += float64(r.Time - st.lastTime)
			e.iatCount[gap-1]++
		}
		if gap >= 1 && gap <= e.cfg.NumSD {
			// Distinct-object bytes requested strictly between the two
			// occurrences: tree positions (lastPos, pos).
			d := e.tree.RangeSum(st.lastPos+1, e.pos-1)
			e.sdSum[gap-1] += float64(d)
			e.sdCount[gap-1]++
		}
		// Move the object's tree mass to the new position.
		e.tree.Add(st.lastPos, -st.size)
		e.raw[st.lastPos] = 0
	}
	st.count++
	st.lastPos = e.pos
	st.lastTime = r.Time
	st.size = r.Size
	e.objects[r.ID] = st
	e.tree.Add(e.pos, r.Size)
	e.raw[e.pos] = r.Size
	e.pos++
}

// grow doubles the Fenwick tree when position space runs out.
func (e *Extractor) grow() {
	if e.pos < e.tree.Len() {
		return
	}
	newLen := e.tree.Len() * 2
	nt := stats.NewFenwick(newLen)
	nraw := make([]int64, newLen)
	copy(nraw, e.raw)
	for i, v := range e.raw {
		if v != 0 {
			nt.Add(i, v)
		}
	}
	e.tree = nt
	e.raw = nraw
}

// Requests returns how many requests have been observed.
func (e *Extractor) Requests() int64 { return e.requests }

// Vector returns the base feature vector
// [avgSize, iat_1..iat_n, sd_1..sd_m]; entries with no observations are 0.
func (e *Extractor) Vector() []float64 {
	out := make([]float64, e.cfg.VectorLen())
	if e.requests > 0 {
		out[0] = float64(e.totalBytes) / float64(e.requests)
	}
	for i := 0; i < e.cfg.NumIAT; i++ {
		if e.iatCount[i] > 0 {
			out[1+i] = e.iatSum[i] / float64(e.iatCount[i])
		}
	}
	for i := 0; i < e.cfg.NumSD; i++ {
		if e.sdCount[i] > 0 {
			out[1+e.cfg.NumIAT+i] = e.sdSum[i] / float64(e.sdCount[i])
		}
	}
	return out
}

// SizeDistribution returns the bucketised request-size distribution
// (fractions summing to 1 once any request has been observed).
func (e *Extractor) SizeDistribution() []float64 { return e.sizeHist.Fractions() }

// Extended returns Vector() with SizeDistribution() appended — the input the
// cross-expert predictors are trained on (§4.1).
func (e *Extractor) Extended() []float64 {
	return append(e.Vector(), e.SizeDistribution()...)
}

// Reset clears all accumulated state, releasing the per-object map and tree.
// §6.4: "This tree is deleted at the end of the stage, and we only store a
// single feature vector with 15 entries."
func (e *Extractor) Reset() {
	fresh, _ := NewExtractor(e.cfg) // cfg already validated
	*e = *fresh
}

// FromTrace extracts the base feature vector of an entire trace.
func FromTrace(tr *trace.Trace, cfg Config) ([]float64, error) {
	ex, err := NewExtractor(cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range tr.Requests {
		ex.Observe(r)
	}
	return ex.Vector(), nil
}

// ExtendedFromTrace extracts the extended vector (features + size buckets).
func ExtendedFromTrace(tr *trace.Trace, cfg Config) ([]float64, error) {
	ex, err := NewExtractor(cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range tr.Requests {
		ex.Observe(r)
	}
	return ex.Extended(), nil
}

// RelativeError returns the mean element-wise relative error |a−b| / |b|
// between a candidate vector a and a reference b, skipping entries where the
// reference is 0 (used for the Figure 5a feature-convergence study).
func RelativeError(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var sum float64
	var n int
	for i := range a {
		if b[i] == 0 {
			continue
		}
		sum += math.Abs(a[i]-b[i]) / math.Abs(b[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
