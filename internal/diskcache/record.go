package diskcache

import (
	"encoding/binary"
	"hash/crc32"
)

// Segment record framing: every append is one self-validating record,
//
//	length  uint32LE — payload length in bytes
//	crc32   uint32LE — IEEE CRC32 of the payload
//	payload [length]byte
//
// and the payload is
//
//	op   byte    — opPut or opDelete
//	id   uint64LE
//	size int64LE — put records only
//
// A record whose length is implausible, whose payload is cut short, or whose
// checksum fails marks the end of the valid prefix: recovery keeps
// everything before it and truncates the rest (torn tail on crash).
const (
	opPut    = 1
	opDelete = 2

	recordHeader = 8             // length + crc32
	putPayload   = 1 + 8 + 8     // op + id + size
	delPayload   = 1 + 8         // op + id
	putRecord    = recordHeader + putPayload
	delRecord    = recordHeader + delPayload
	recordMax    = putRecord
)

// encodePut writes a put record for (id, size) into buf, which must hold at
// least recordMax bytes, and returns the encoded length.
func encodePut(buf []byte, id uint64, size int64) int {
	buf[recordHeader] = opPut
	binary.LittleEndian.PutUint64(buf[recordHeader+1:], id)
	binary.LittleEndian.PutUint64(buf[recordHeader+9:], uint64(size))
	binary.LittleEndian.PutUint32(buf, putPayload)
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[recordHeader:putRecord]))
	return putRecord
}

// encodeDelete writes a delete record for id into buf (at least recordMax
// bytes) and returns the encoded length.
func encodeDelete(buf []byte, id uint64) int {
	buf[recordHeader] = opDelete
	binary.LittleEndian.PutUint64(buf[recordHeader+1:], id)
	binary.LittleEndian.PutUint32(buf, delPayload)
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[recordHeader:delRecord]))
	return delRecord
}

// decodeRecord parses the record at the start of b. It returns the operation,
// id, size (puts only), and the total encoded length. ok is false when b does
// not begin with a complete, checksum-valid, well-formed record — the signal
// that recovery has reached the log's torn tail.
func decodeRecord(b []byte) (op byte, id uint64, size int64, n int, ok bool) {
	if len(b) < recordHeader {
		return 0, 0, 0, 0, false
	}
	length := binary.LittleEndian.Uint32(b)
	if length != putPayload && length != delPayload {
		return 0, 0, 0, 0, false
	}
	end := recordHeader + int(length)
	if len(b) < end {
		return 0, 0, 0, 0, false
	}
	if crc32.ChecksumIEEE(b[recordHeader:end]) != binary.LittleEndian.Uint32(b[4:]) {
		return 0, 0, 0, 0, false
	}
	op = b[recordHeader]
	id = binary.LittleEndian.Uint64(b[recordHeader+1:])
	switch {
	case op == opPut && length == putPayload:
		size = int64(binary.LittleEndian.Uint64(b[recordHeader+9:]))
		if size < 0 {
			return 0, 0, 0, 0, false
		}
	case op == opDelete && length == delPayload:
	default:
		return 0, 0, 0, 0, false
	}
	return op, id, size, end, true
}
