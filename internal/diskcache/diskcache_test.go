package diskcache

import (
	"os"
	"path/filepath"
	"testing"

	"darwin/internal/cache"
)

func open(t *testing.T, dir string, mut ...func(*Config)) *Store {
	t.Helper()
	cfg := Config{Dir: dir, SegmentBytes: 1 << 20, Sync: SyncOff}
	for _, m := range mut {
		m(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutRemoveLiveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Put(1, 100)
	s.Put(2, 200)
	s.Put(3, 300)
	s.Remove(2)
	s.Put(1, 150) // size refresh keeps original order slot semantics (re-put is newer)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir)
	defer r.Close()
	live := r.Live()
	if len(live) != 2 {
		t.Fatalf("live = %v, want 2 entries", live)
	}
	// Insertion order: 3 was put before 1's refresh.
	if live[0].ID != 3 || live[0].Size != 300 || live[1].ID != 1 || live[1].Size != 150 {
		t.Fatalf("live = %v, want [{3 300} {1 150}]", live)
	}
	st := r.Stats()
	if st.RecoveredPuts != 4 || st.RecoveredDeletes != 1 {
		t.Fatalf("recovered %d puts / %d deletes, want 4/1", st.RecoveredPuts, st.RecoveredDeletes)
	}
	if st.LiveBytes != 450 {
		t.Fatalf("LiveBytes = %d, want 450", st.LiveBytes)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := uint64(1); i <= 10; i++ {
		s.Put(i, int64(i)*10)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half, as a crash mid-write would.
	torn := data[:len(data)-10]
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir)
	live := r.Live()
	if len(live) != 9 {
		t.Fatalf("recovered %d objects, want 9 (torn 10th dropped)", len(live))
	}
	st := r.Stats()
	if st.TruncatedSegments != 1 || st.TruncatedBytes != putRecord-10 {
		t.Fatalf("truncation stats = %d segments / %d bytes, want 1 / %d", st.TruncatedSegments, st.TruncatedBytes, putRecord-10)
	}
	// The store keeps appending after the truncation point.
	r.Put(99, 1)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := open(t, dir)
	defer r2.Close()
	if len(r2.Live()) != 10 {
		t.Fatalf("after reopen live = %d, want 10", len(r2.Live()))
	}
}

func TestRecoveryStopsAtBitFlip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := uint64(1); i <= 5; i++ {
		s.Put(i, 10)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the third record: it and everything after it
	// are discarded — corruption is never fatal, never silently accepted.
	data[2*putRecord+recordHeader+3] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir)
	defer r.Close()
	if n := len(r.Live()); n != 2 {
		t.Fatalf("recovered %d objects, want 2 (valid prefix only)", n)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, func(c *Config) {
		c.SegmentBytes = 10 * putRecord
		c.GCFraction = 0.3
	})
	// Churn one hot id so almost all records are dead.
	for i := 0; i < 100; i++ {
		s.Put(7, int64(100+i))
	}
	s.Put(8, 50)
	st := s.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations after 101 appends with 10-record segments")
	}
	if st.Compactions == 0 {
		t.Fatalf("no compactions despite 99%% dead bytes")
	}
	if st.LogBytes > 20*putRecord {
		t.Fatalf("LogBytes = %d after compaction, want bounded", st.LogBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir)
	defer r.Close()
	live := r.Live()
	if len(live) != 2 || live[0].ID != 7 || live[0].Size != 199 || live[1].ID != 8 {
		t.Fatalf("live after compaction = %v, want [{7 199} {8 50}]", live)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncBatch, SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, func(c *Config) { c.Sync = pol; c.BatchEvery = 4 })
			for i := uint64(0); i < 10; i++ {
				s.Put(i, 1)
			}
			st := s.Stats()
			switch pol {
			case SyncAlways:
				if st.Syncs != 10 {
					t.Fatalf("Syncs = %d, want 10", st.Syncs)
				}
			case SyncBatch:
				if st.Syncs != 2 {
					t.Fatalf("Syncs = %d, want 2 (10 appends / batch of 4)", st.Syncs)
				}
			case SyncOff:
				if st.Syncs != 0 {
					t.Fatalf("Syncs = %d, want 0", st.Syncs)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"batch", SyncBatch}, {"always", SyncAlways}, {"off", SyncOff}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("want error for bogus policy")
	}
}

func TestClosedStoreDropsWrites(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Put(1, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Put(2, 2) // must not panic, must be counted
	s.Remove(1)
	if st := s.Stats(); st.DroppedOps != 2 {
		t.Fatalf("DroppedOps = %d, want 2", st.DroppedOps)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err after clean close = %v, want nil", err)
	}
}

func TestOpenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, segmentTempName(3))
	if err := os.WriteFile(tmp, []byte("partial compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir)
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Open: %v", err)
	}
}

func TestStoreImplementsDCLog(t *testing.T) {
	var _ cache.DCLog = (*Store)(nil)
}
