package diskcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeRecord asserts the record decoder's safety contract on arbitrary
// bytes: it either rejects (ok=false) or returns a record that re-encodes to
// exactly the bytes it consumed. No input may panic.
func FuzzDecodeRecord(f *testing.F) {
	var put, del [recordMax]byte
	pn := encodePut(put[:], 42, 1234)
	dn := encodeDelete(del[:], 42)
	f.Add(put[:pn])
	f.Add(del[:dn])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, recordMax))
	f.Fuzz(func(t *testing.T, data []byte) {
		op, id, size, n, ok := decodeRecord(data)
		if !ok {
			return
		}
		if n < delRecord || n > putRecord || n > len(data) {
			t.Fatalf("accepted record with implausible length %d", n)
		}
		var re [recordMax]byte
		var rn int
		switch op {
		case opPut:
			if size < 0 {
				t.Fatalf("accepted negative size %d", size)
			}
			rn = encodePut(re[:], id, size)
		case opDelete:
			rn = encodeDelete(re[:], id)
		default:
			t.Fatalf("accepted unknown op %d", op)
		}
		if rn != n || !bytes.Equal(re[:rn], data[:n]) {
			t.Fatalf("accepted record does not round-trip")
		}
	})
}

// FuzzOpenSegment feeds arbitrary bytes to Open as a segment file: recovery
// must never panic and never fail on content corruption — it recovers the
// valid record prefix and truncates the rest.
func FuzzOpenSegment(f *testing.F) {
	var rec [recordMax]byte
	n := encodePut(rec[:], 7, 100)
	f.Add(append(append([]byte{}, rec[:n]...), 0xde, 0xad))
	f.Add([]byte{})
	f.Add(bytes.Repeat(rec[:n], 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Dir: dir, Sync: SyncOff})
		if err != nil {
			t.Fatalf("Open failed on corrupt segment content: %v", err)
		}
		// The surviving store must accept appends and reopen cleanly.
		s.Put(1, 1)
		liveBefore := len(s.Live())
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(Config{Dir: dir, Sync: SyncOff})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := len(r.Live()); got != liveBefore {
			t.Fatalf("reopen lost state: %d live, want %d", got, liveBefore)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
