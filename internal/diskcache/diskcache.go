// Package diskcache is the durable disk-cache journal behind the cache
// engine's DC level: a log-structured store of append-only segment files
// whose records are the DC's admissions and evictions. The in-memory
// eviction policy remains the authoritative serving index; this log exists
// so a SIGKILLed proxy can rebuild the DC's contents on restart instead of
// refetching its entire working set from the origin (the restart
// thundering-herd failure mode).
//
// Design points:
//
//   - every record carries length + CRC32 framing (record.go), so recovery
//     replays each segment up to the first invalid record and truncates the
//     torn tail — trailing corruption is tolerated, never fatal;
//   - a sparse in-memory index (id → size, insertion order) is rebuilt on
//     Open by replaying the segments in sequence order;
//   - the fsync policy is configurable: per-append (SyncAlways), every
//     BatchEvery appends (SyncBatch, the default), or left to the OS
//     (SyncOff) — the durability/throughput trade-off measured in BENCH;
//   - segments rotate at SegmentBytes, and rotation triggers a full
//     compaction when more than GCFraction of the logged bytes are dead
//     (superseded puts and delete records), reclaiming space with a
//     crash-safe write-temp-then-rename of the surviving live set;
//   - I/O failures are sticky: the store drops (and counts) subsequent
//     appends rather than erroring the request path — losing durability
//     must degrade recovery, not serving.
//
// Put and Remove are reachable from the cache engine's Serve hot path via
// the cache.DCLog seam, so they follow the hot-path rules darwinlint
// enforces: no fmt, no string concatenation, no closures.
package diskcache

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"darwin/internal/cache"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

// Fsync policies, cheapest first.
const (
	// SyncBatch fsyncs every Config.BatchEvery appends (default): bounded
	// loss window, near-SyncOff throughput.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every append: no loss window, every DC write
	// pays a disk flush.
	SyncAlways
	// SyncOff never fsyncs explicitly: the OS flushes on its own schedule;
	// a power failure may lose recent records (a process SIGKILL does not).
	SyncOff
)

// String implements fmt.Stringer ("batch", "always", "off").
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	}
	return "unknown"
}

// ParseSyncPolicy parses the -fsync flag values "batch", "always", "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return SyncBatch, errors.New("diskcache: unknown sync policy " + strconv.Quote(s))
}

// Config parameterises a Store.
type Config struct {
	// Dir is the segment directory, created if absent.
	Dir string
	// SegmentBytes rotates the active segment past this size (default 16 MiB).
	SegmentBytes int64
	// Sync is the fsync policy.
	Sync SyncPolicy
	// BatchEvery is the SyncBatch flush interval in appends (default 256).
	BatchEvery int
	// GCFraction triggers compaction at rotation when the dead fraction of
	// logged bytes exceeds it (default 0.5).
	GCFraction float64
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 16 << 20
	}
	if c.BatchEvery <= 0 {
		c.BatchEvery = 256
	}
	if c.GCFraction <= 0 || c.GCFraction >= 1 {
		c.GCFraction = 0.5
	}
	return c
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Puts and Removes count successfully journaled operations.
	Puts, Removes int64
	// DroppedOps counts operations discarded after a sticky I/O failure.
	DroppedOps int64
	// Appends, Syncs, Rotations, Compactions count physical log activity.
	Appends, Syncs, Rotations, Compactions int64
	// RecoveredPuts and RecoveredDeletes count records replayed by Open.
	RecoveredPuts, RecoveredDeletes int64
	// TruncatedSegments and TruncatedBytes describe torn tails discarded by
	// Open's recovery scan.
	TruncatedSegments, TruncatedBytes int64
	// LiveObjects and LiveBytes describe the current live set.
	LiveObjects, LiveBytes int64
	// LogBytes is the total size of all segments; Segments their count.
	LogBytes, Segments int64
}

// liveEntry is one indexed object: its size and a monotone insertion stamp
// so Live can reproduce journal order after recovery and compaction.
type liveEntry struct {
	size  int64
	order int64
}

// errClosed is the sticky error installed by Close.
var errClosed = errors.New("diskcache: store closed")

// Store is the log-structured disk cache journal. All methods are safe for
// concurrent use; Put and Remove implement cache.DCLog.
type Store struct {
	cfg Config
	dir string

	mu sync.Mutex
	// seg is the active segment's append handle; guarded by mu.
	seg *os.File
	// segSeq is the active segment's sequence number; guarded by mu.
	segSeq uint64
	// segBytes counts bytes in the active segment; guarded by mu.
	segBytes int64
	// logBytes counts bytes across all segments; guarded by mu.
	logBytes int64
	// segments lists on-disk segment names in replay order (active last);
	// guarded by mu.
	segments []string
	// live is the sparse in-memory index rebuilt on Open; guarded by mu.
	live map[uint64]liveEntry
	// liveBytes sums live object sizes; guarded by mu.
	liveBytes int64
	// nextOrder stamps insertions for order reconstruction; guarded by mu.
	nextOrder int64
	// pending counts unsynced appends; guarded by mu.
	pending int
	// err is the sticky I/O failure; guarded by mu.
	err error
	// stats accumulates counters; guarded by mu.
	stats Stats
	// buf is the record encode scratch; guarded by mu.
	buf [recordMax]byte
}

// compile-time check: the store plugs into the cache engine's journal seam.
var _ cache.DCLog = (*Store)(nil)

// segmentName renders "seg-<seq padded to 16 digits>.log"; zero padding makes
// lexicographic directory order equal replay order. Built with byte appends
// (not Sprintf or +) because rotation runs inside the serve hot path.
func segmentName(seq uint64) string {
	b := make([]byte, 0, 24)
	b = append(b, "seg-"...)
	var digits [20]byte
	d := strconv.AppendUint(digits[:0], seq, 10)
	for i := len(d); i < 16; i++ {
		b = append(b, '0')
	}
	b = append(b, d...)
	b = append(b, ".log"...)
	return string(b)
}

// segmentTempName renders segmentName(seq) + ".tmp" with byte appends, for
// the compaction path (hot-path reachable, so no string concatenation).
func segmentTempName(seq uint64) string {
	name := segmentName(seq)
	b := make([]byte, 0, len(name)+4)
	b = append(b, name...)
	b = append(b, ".tmp"...)
	return string(b)
}

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open replays the segment directory and returns a ready store. Torn or
// corrupt record tails are truncated and counted, never fatal; only real
// I/O errors (unreadable directory, failed truncate) fail the open.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("diskcache: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	type segInfo struct {
		name string
		seq  uint64
	}
	var segs []segInfo
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Leftover from a compaction interrupted before its rename;
			// its content is still fully present in the old segments.
			_ = os.Remove(filepath.Join(cfg.Dir, name)) // best-effort cleanup
			continue
		}
		if seq, ok := parseSegmentName(name); ok {
			segs = append(segs, segInfo{name: name, seq: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })

	s := &Store{
		cfg:  cfg,
		dir:  cfg.Dir,
		live: make(map[uint64]liveEntry),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, si := range segs {
		path := filepath.Join(s.dir, si.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		off := 0
		for {
			op, id, size, n, ok := decodeRecord(data[off:])
			if !ok {
				break
			}
			switch op {
			case opPut:
				if old, exists := s.live[id]; exists {
					s.liveBytes -= old.size
				}
				s.nextOrder++
				s.live[id] = liveEntry{size: size, order: s.nextOrder}
				s.liveBytes += size
				s.stats.RecoveredPuts++
			case opDelete:
				if old, exists := s.live[id]; exists {
					s.liveBytes -= old.size
					delete(s.live, id)
				}
				s.stats.RecoveredDeletes++
			}
			off += n
		}
		if off < len(data) {
			// Torn tail: keep the valid prefix, drop the rest.
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, err
			}
			s.stats.TruncatedSegments++
			s.stats.TruncatedBytes += int64(len(data) - off)
		}
		s.segments = append(s.segments, si.name)
		s.logBytes += int64(off)
		s.segSeq = si.seq
		s.segBytes = int64(off)
	}
	s.stats.LiveObjects = int64(len(s.live))
	if len(s.segments) == 0 {
		s.segSeq = 1
		s.openSegmentLocked()
	} else {
		// Reopen the last segment for appends.
		f, err := os.OpenFile(filepath.Join(s.dir, s.segments[len(s.segments)-1]), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		s.seg = f
	}
	if s.err != nil {
		return nil, s.err
	}
	return s, nil
}

// Put journals a DC admission (or size refresh) of id. Implements
// cache.DCLog; called from the cache serve path under the shard lock.
func (s *Store) Put(id uint64, size int64) {
	s.mu.Lock()
	if s.err != nil {
		s.stats.DroppedOps++
		s.mu.Unlock()
		return
	}
	n := encodePut(s.buf[:], id, size)
	//lint:ignore lockorder rotation fsyncs under s.mu by design: the journal's crash guarantee is "no acked op lost", which needs the sync ordered against concurrent appends; rotation is rare (segment-size amortized)
	s.appendLocked(n)
	if s.err != nil {
		s.stats.DroppedOps++
		s.mu.Unlock()
		return
	}
	if old, ok := s.live[id]; ok {
		s.liveBytes -= old.size
	}
	s.nextOrder++
	s.live[id] = liveEntry{size: size, order: s.nextOrder}
	s.liveBytes += size
	s.stats.Puts++
	s.mu.Unlock()
}

// Remove journals a DC eviction of id. Implements cache.DCLog.
func (s *Store) Remove(id uint64) {
	s.mu.Lock()
	if s.err != nil {
		s.stats.DroppedOps++
		s.mu.Unlock()
		return
	}
	n := encodeDelete(s.buf[:], id)
	//lint:ignore lockorder rotation fsyncs under s.mu by design: the journal's crash guarantee is "no acked op lost", which needs the sync ordered against concurrent appends; rotation is rare (segment-size amortized)
	s.appendLocked(n)
	if s.err != nil {
		s.stats.DroppedOps++
		s.mu.Unlock()
		return
	}
	if old, ok := s.live[id]; ok {
		s.liveBytes -= old.size
		delete(s.live, id)
	}
	s.stats.Removes++
	s.mu.Unlock()
}

// appendLocked writes the record staged in s.buf[:n] to the active segment,
// rotating first if the segment is full, then applies the fsync policy.
func (s *Store) appendLocked(n int) {
	if s.segBytes+int64(n) > s.cfg.SegmentBytes && s.segBytes > 0 {
		s.rotateLocked()
		if s.err != nil {
			return
		}
	}
	if _, err := s.seg.Write(s.buf[:n]); err != nil {
		s.err = err
		return
	}
	s.segBytes += int64(n)
	s.logBytes += int64(n)
	s.stats.Appends++
	s.pending++
	switch s.cfg.Sync {
	case SyncAlways:
		s.syncLocked()
	case SyncBatch:
		if s.pending >= s.cfg.BatchEvery {
			s.syncLocked()
		}
	}
}

// syncLocked fsyncs the active segment if there are unsynced appends.
func (s *Store) syncLocked() {
	if s.pending == 0 || s.err != nil {
		return
	}
	if err := s.seg.Sync(); err != nil {
		s.err = err
		return
	}
	s.pending = 0
	s.stats.Syncs++
}

// rotateLocked closes the full active segment, compacts the log when its
// dead fraction exceeds GCFraction, and opens a fresh active segment.
func (s *Store) rotateLocked() {
	s.syncLocked()
	if s.err != nil {
		return
	}
	if err := s.seg.Close(); err != nil {
		s.err = err
		return
	}
	s.seg = nil
	s.stats.Rotations++
	dead := s.logBytes - int64(len(s.live))*putRecord
	if s.logBytes > 0 && float64(dead) > s.cfg.GCFraction*float64(s.logBytes) {
		s.compactLocked()
		if s.err != nil {
			return
		}
	}
	s.segSeq++
	s.openSegmentLocked()
}

// openSegmentLocked creates and activates segment s.segSeq.
func (s *Store) openSegmentLocked() {
	name := segmentName(s.segSeq)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		s.err = err
		return
	}
	s.seg = f
	s.segBytes = 0
	s.segments = append(s.segments, name)
}

// pair carries one live object through compaction and Live ordering.
type pair struct {
	id    uint64
	size  int64
	order int64
}

// pairsByOrder sorts by insertion stamp — a named sort.Interface rather than
// sort.Slice because compaction runs inside the serve hot path, where
// darwinlint forbids closures.
type pairsByOrder []pair

func (p pairsByOrder) Len() int           { return len(p) }
func (p pairsByOrder) Less(i, j int) bool { return p[i].order < p[j].order }
func (p pairsByOrder) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }

// livePairsLocked snapshots the live index in insertion order.
func (s *Store) livePairsLocked() pairsByOrder {
	pairs := make(pairsByOrder, 0, len(s.live))
	for id, e := range s.live {
		pairs = append(pairs, pair{id: id, size: e.size, order: e.order})
	}
	sort.Sort(pairs)
	return pairs
}

// compactLocked rewrites the entire live set into one fresh segment via
// write-temp-then-rename and deletes the superseded segments. Crash-safe at
// every step: until the rename lands, recovery replays the old segments; if
// an old-segment delete is lost, replaying it before the compacted segment
// reproduces the same state.
func (s *Store) compactLocked() {
	s.segSeq++
	name := segmentName(s.segSeq)
	tmpPath := filepath.Join(s.dir, segmentTempName(s.segSeq))
	f, err := os.Create(tmpPath)
	if err != nil {
		s.err = err
		return
	}
	pairs := s.livePairsLocked()
	var rec [recordMax]byte
	ok := true
	for i := range pairs {
		n := encodePut(rec[:], pairs[i].id, pairs[i].size)
		if _, err := f.Write(rec[:n]); err != nil {
			s.err = err
			ok = false
			break
		}
	}
	if ok {
		if err := f.Sync(); err != nil {
			s.err = err
			ok = false
		}
	}
	if err := f.Close(); err != nil && s.err == nil {
		s.err = err
		ok = false
	}
	if !ok {
		_ = os.Remove(tmpPath) // already failing; best-effort cleanup
		return
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, name)); err != nil {
		s.err = err
		_ = os.Remove(tmpPath) // already failing; best-effort cleanup
		return
	}
	for _, old := range s.segments {
		// Best-effort: a surviving old segment replays before the compacted
		// one and yields the same state.
		_ = os.Remove(filepath.Join(s.dir, old))
	}
	s.segments = s.segments[:0]
	s.segments = append(s.segments, name)
	s.logBytes = int64(len(pairs)) * putRecord
	s.stats.Compactions++
}

// Sync forces an fsync of the active segment (checkpoint barriers).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	//lint:ignore lockorder Sync's contract is "all appends accepted before the call are on disk", so the fsync must serialize against writers under s.mu; callers opt into the stall
	s.syncLocked()
	return s.err
}

// Close fsyncs and closes the store. Subsequent Put/Remove calls are
// dropped and counted.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return s.err
	}
	//lint:ignore lockorder Close holds s.mu across the final fsync so no append can race the handle teardown; the store is quiescing, nothing else contends
	s.syncLocked()
	if err := s.seg.Close(); err != nil && s.err == nil {
		s.err = err
	}
	s.seg = nil
	ret := s.err
	if s.err == nil {
		s.err = errClosed
	}
	return ret
}

// Live returns the recovered/current live set in journal insertion order —
// oldest first, so feeding it to the cache's RestoreDC places the most
// recently admitted objects in the most protected positions.
func (s *Store) Live() []cache.ResidentObject {
	s.mu.Lock()
	pairs := s.livePairsLocked()
	s.mu.Unlock()
	out := make([]cache.ResidentObject, len(pairs))
	for i := range pairs {
		out[i] = cache.ResidentObject{ID: pairs[i].id, Size: pairs[i].size}
	}
	return out
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.LiveObjects = int64(len(s.live))
	st.LiveBytes = s.liveBytes
	st.LogBytes = s.logBytes
	st.Segments = int64(len(s.segments))
	return st
}

// Err returns the sticky I/O failure, nil while healthy, errClosed-wrapped
// state after Close.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(s.err, errClosed) {
		return nil
	}
	return s.err
}
