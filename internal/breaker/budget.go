package breaker

import (
	"sync"
	"time"

	"darwin/internal/stripe"
)

// Budget is a fixed-window token budget for auxiliary work — the proxy uses
// one to cap total retry attempts per window, so the PR 1 backoff path can
// never inject more probe load against a sick origin than the breaker's own
// half-open budget would: retries stop amplifying exactly when amplification
// starts to matter.
//
// Like the Breaker it is deterministic under an injected clock and publishes
// its counters through a seqlock cell so Snapshot reads are lock-free.
type Budget struct {
	max    int64
	window time.Duration
	clock  func() time.Time

	mu sync.Mutex
	// winStart is the current window's start instant; guarded by mu.
	winStart time.Time
	// used counts tokens consumed this window; guarded by mu.
	used int64
	// allowed and denied are cumulative admission counters; guarded by mu.
	allowed, denied int64

	// cell mirrors the guarded counters for lock-free snapshots; written
	// only inside mu's critical sections.
	cell *stripe.Cell
}

// Budget cell indexes.
const (
	bUsed = iota
	bAllowed
	bDenied
	bWidth
)

// BudgetSnapshot is a coherent copy of a Budget's counters.
type BudgetSnapshot struct {
	// Used is the tokens consumed in the current window.
	Used int64
	// Allowed/Denied are cumulative admission decisions.
	Allowed, Denied int64
}

// NewBudget builds a budget of max tokens per window. A nil clock selects
// time.Now; max <= 0 denies everything (a zero budget is a hard cap, not
// unlimited — pass no budget at all to disable capping).
func NewBudget(max int64, window time.Duration, clock func() time.Time) *Budget {
	if window <= 0 {
		window = time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	g := &Budget{
		max:    max,
		window: window,
		clock:  clock,
		cell:   stripe.NewCell(bWidth),
	}
	g.mu.Lock()
	g.winStart = clock()
	g.publishLocked()
	g.mu.Unlock()
	return g
}

// Allow consumes one token if the current window has any left.
func (g *Budget) Allow() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.clock()
	if now.Sub(g.winStart) >= g.window {
		// Fixed-window reset, aligned to window multiples so the schedule is
		// a pure function of the clock (no drift from call timing).
		steps := now.Sub(g.winStart) / g.window
		g.winStart = g.winStart.Add(steps * g.window)
		g.used = 0
	}
	ok := g.used < g.max
	if ok {
		g.used++
		g.allowed++
	} else {
		g.denied++
	}
	g.publishLocked()
	return ok
}

// SnapshotNow returns a coherent counter snapshot without taking the mutex.
func (g *Budget) SnapshotNow() BudgetSnapshot {
	var v [bWidth]int64
	g.cell.Snapshot(v[:])
	return BudgetSnapshot{Used: v[bUsed], Allowed: v[bAllowed], Denied: v[bDenied]}
}

// publishLocked mirrors the guarded counters into the seqlock cell.
func (g *Budget) publishLocked() {
	g.cell.Begin()
	g.cell.Set(bUsed, g.used)
	g.cell.Set(bAllowed, g.allowed)
	g.cell.Set(bDenied, g.denied)
	g.cell.End()
}
