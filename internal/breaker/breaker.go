// Package breaker is the overload-protection state machine for the serving
// tier: a deterministic rolling-window circuit breaker gating origin fetches,
// plus a rolling-window retry budget capping the resilience layer's backoff
// path. Both are built for the proxy's worst minutes — flash crowds and
// origin brownouts — where naive retries amplify load instead of shedding it
// (the retry-storm failure mode): once the origin's observed failure ratio
// crosses a threshold, the breaker opens and every would-be fetch fails
// immediately and cheaply, so the proxy degrades to serve-stale/503 instead
// of queueing doomed work behind a dying upstream.
//
// The state machine is the classic three-state breaker:
//
//   - Closed: all calls pass. Outcomes accumulate in a rolling window of
//     fixed-width buckets; when the window holds at least MinRequests
//     outcomes and the failure ratio reaches FailureThreshold, the breaker
//     trips to Open.
//   - Open: every call is denied. After OpenFor elapses the next call moves
//     the breaker to HalfOpen.
//   - HalfOpen: up to HalfOpenProbes calls are admitted as probes; the rest
//     are denied. HalfOpenProbes consecutive probe successes close the
//     breaker (window reset); any probe failure reopens it and restarts the
//     OpenFor timer.
//
// Determinism: every transition is a pure function of the call sequence and
// the injected clock, so tests (and the overload chaos experiment) drive the
// breaker with a fake clock and get bit-identical transition traces.
//
// Concurrency: mutations are serialized under one mutex, and after every
// mutation the full state — current state, windowed counts, cumulative
// transition and admission counters — is published into a stripe.Cell
// (seqlock). State and Snapshot read the cell without taking the mutex, so
// health/readiness probes and experiment reporters never contend with the
// data plane.
package breaker

import (
	"errors"
	"sync"
	"time"

	"darwin/internal/stripe"
)

// ErrOpen is returned by callers that found the breaker open: the fetch was
// denied without touching the origin. The proxy maps it to a cheap shed
// (serve-stale or 503+Retry-After) rather than a 502.
var ErrOpen = errors.New("breaker: circuit open")

// State is the breaker's position in the closed → open → half-open cycle.
type State int32

const (
	// Closed passes every call; outcomes feed the rolling window.
	Closed State = iota
	// Open denies every call until OpenFor has elapsed.
	Open
	// HalfOpen admits a bounded probe budget to test the origin.
	HalfOpen
)

// String names the state for reports and /readyz bodies.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Config parameterises a Breaker. The zero value selects the defaults noted
// on each field.
type Config struct {
	// Window is the rolling failure-ratio window (default 1s).
	Window time.Duration
	// Buckets subdivides the window; outcomes expire one bucket at a time,
	// so a larger count tracks the ratio more smoothly (default 10).
	Buckets int
	// FailureThreshold is the windowed failure ratio at which the breaker
	// trips (default 0.5).
	FailureThreshold float64
	// MinRequests is the volume floor: the ratio is not evaluated until the
	// window holds this many outcomes, so a single failed request on an idle
	// proxy cannot trip the breaker (default 10).
	MinRequests int64
	// OpenFor is how long the breaker stays open before admitting half-open
	// probes (default 250ms).
	OpenFor time.Duration
	// HalfOpenProbes is the probe budget per half-open episode, and the
	// number of consecutive probe successes required to close (default 3).
	HalfOpenProbes int64
	// Clock is the time source (default time.Now). Tests and deterministic
	// replays inject a fake clock; every transition derives from it.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 10
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 250 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Cell indexes for the published state mirror.
const (
	cState = iota
	cWindowRequests
	cWindowFailures
	cOpens
	cHalfOpens
	cReopens
	cCloses
	cAllowed
	cDenied
	cProbes
	cWidth
)

// Snapshot is a coherent point-in-time copy of the breaker's published
// state: the windowed counts and every cumulative transition/admission
// counter observed at one instant (seqlock read, never torn).
type Snapshot struct {
	// State is the breaker position at the snapshot instant.
	State State
	// WindowRequests/WindowFailures are the rolling-window outcome counts.
	WindowRequests, WindowFailures int64
	// Opens counts closed→open trips; Reopens counts half-open→open probe
	// failures; HalfOpens counts open→half-open transitions; Closes counts
	// half-open→closed recoveries.
	Opens, HalfOpens, Reopens, Closes int64
	// Allowed/Denied count admission decisions; Probes counts half-open
	// probe admissions (a subset of Allowed).
	Allowed, Denied, Probes int64
}

// bucket is one rolling-window slot.
type bucket struct {
	ok, fail int64
}

// Breaker is a deterministic rolling-window circuit breaker. Use New.
type Breaker struct {
	cfg   Config
	width time.Duration // bucket width (cfg.Window / cfg.Buckets)

	mu sync.Mutex
	// state is the current position; guarded by mu.
	state State
	// buckets is the rolling window ring; guarded by mu.
	buckets []bucket
	// cur indexes the active bucket; guarded by mu.
	cur int
	// curStart is the active bucket's start instant; guarded by mu.
	curStart time.Time
	// openedAt is when the breaker last tripped open; guarded by mu.
	openedAt time.Time
	// probes/probeOKs track the current half-open episode; guarded by mu.
	probes, probeOKs int64
	// opens, halfOpens, reopens, closes, allowed, denied, probesTotal are the
	// cumulative counters mirrored into cell; guarded by mu.
	opens, halfOpens, reopens, closes, allowed, denied, probesTotal int64

	// cell mirrors the guarded state for lock-free State/Snapshot reads; its
	// writes happen inside mu's critical sections (the seqlock's external
	// writer serialization).
	cell *stripe.Cell
}

// New builds a breaker in the Closed state.
func New(cfg Config) *Breaker {
	cfg = cfg.withDefaults()
	b := &Breaker{
		cfg:     cfg,
		width:   cfg.Window / time.Duration(cfg.Buckets),
		buckets: make([]bucket, cfg.Buckets),
		cell:    stripe.NewCell(cWidth),
	}
	b.mu.Lock()
	b.curStart = cfg.Clock()
	b.publishLocked()
	b.mu.Unlock()
	return b
}

// Allow reports whether a call may proceed, advancing the rolling window and
// the open→half-open timer. A true return must be paired with exactly one
// Record of the call's outcome; a false return means the call was denied
// (breaker open, or half-open probe budget spent) and nothing further is
// owed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock()
	b.advanceLocked(now)
	if b.state == Open {
		if now.Sub(b.openedAt) < b.cfg.OpenFor {
			b.denied++
			b.publishLocked()
			return false
		}
		// The cool-off elapsed: this call race-free transitions to half-open
		// and competes for the probe budget below.
		b.state = HalfOpen
		b.halfOpens++
		b.probes, b.probeOKs = 0, 0
	}
	if b.state == HalfOpen {
		if b.probes >= b.cfg.HalfOpenProbes {
			b.denied++
			b.publishLocked()
			return false
		}
		b.probes++
		b.probesTotal++
	}
	b.allowed++
	b.publishLocked()
	return true
}

// Record folds one allowed call's outcome into the state machine: windowed
// counts (and a possible trip) when closed, probe accounting (close or
// reopen) when half-open.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock()
	b.advanceLocked(now)
	switch b.state {
	case HalfOpen:
		if !ok {
			// A probe failed: the origin is still unhealthy. Reopen and
			// restart the cool-off clock.
			b.state = Open
			b.openedAt = now
			b.reopens++
			break
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.HalfOpenProbes {
			// Enough consecutive probe successes: recover with a clean
			// window so stale brownout outcomes cannot re-trip immediately.
			b.state = Closed
			b.closes++
			b.resetWindowLocked(now)
		}
	default:
		// Closed — and Open, for stragglers that were allowed before a trip
		// and finished after it: fold the outcome into the window (it ages
		// out normally) but never re-trip an already-open breaker.
		bk := &b.buckets[b.cur]
		if ok {
			bk.ok++
		} else {
			bk.fail++
		}
		if b.state == Closed && !ok {
			reqs, fails := b.windowTotalsLocked()
			if reqs >= b.cfg.MinRequests && float64(fails) >= b.cfg.FailureThreshold*float64(reqs) {
				b.state = Open
				b.openedAt = now
				b.opens++
			}
		}
	}
	b.publishLocked()
}

// State returns the current state via the lock-free mirror.
func (b *Breaker) State() State {
	return b.SnapshotNow().State
}

// SnapshotNow returns a coherent snapshot of the published state without
// taking the breaker mutex (seqlock read), so reporters and readiness probes
// never stall the data plane.
func (b *Breaker) SnapshotNow() Snapshot {
	var v [cWidth]int64
	b.cell.Snapshot(v[:])
	return Snapshot{
		State:          State(v[cState]),
		WindowRequests: v[cWindowRequests],
		WindowFailures: v[cWindowFailures],
		Opens:          v[cOpens],
		HalfOpens:      v[cHalfOpens],
		Reopens:        v[cReopens],
		Closes:         v[cCloses],
		Allowed:        v[cAllowed],
		Denied:         v[cDenied],
		Probes:         v[cProbes],
	}
}

// advanceLocked rotates the rolling window up to now, zeroing buckets that
// fell out of the window. Long idle gaps clear the whole window in O(1).
func (b *Breaker) advanceLocked(now time.Time) {
	elapsed := now.Sub(b.curStart)
	if elapsed < b.width {
		return
	}
	if elapsed >= b.cfg.Window+b.width {
		b.resetWindowLocked(now)
		return
	}
	for elapsed >= b.width {
		b.cur = (b.cur + 1) % len(b.buckets)
		b.buckets[b.cur] = bucket{}
		b.curStart = b.curStart.Add(b.width)
		elapsed -= b.width
	}
}

// resetWindowLocked clears every bucket and restarts the window at now.
func (b *Breaker) resetWindowLocked(now time.Time) {
	for i := range b.buckets {
		b.buckets[i] = bucket{}
	}
	b.cur = 0
	b.curStart = now
}

// windowTotalsLocked sums the rolling window.
func (b *Breaker) windowTotalsLocked() (reqs, fails int64) {
	for _, bk := range b.buckets {
		reqs += bk.ok + bk.fail
		fails += bk.fail
	}
	return reqs, fails
}

// publishLocked mirrors the guarded state into the seqlock cell.
func (b *Breaker) publishLocked() {
	reqs, fails := b.windowTotalsLocked()
	b.cell.Begin()
	b.cell.Set(cState, int64(b.state))
	b.cell.Set(cWindowRequests, reqs)
	b.cell.Set(cWindowFailures, fails)
	b.cell.Set(cOpens, b.opens)
	b.cell.Set(cHalfOpens, b.halfOpens)
	b.cell.Set(cReopens, b.reopens)
	b.cell.Set(cCloses, b.closes)
	b.cell.Set(cAllowed, b.allowed)
	b.cell.Set(cDenied, b.denied)
	b.cell.Set(cProbes, b.probesTotal)
	b.cell.End()
}
