package breaker

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually-advanced deterministic time source.
type fakeClock struct {
	mu sync.Mutex
	// t is the current instant; guarded by mu.
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(0, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testConfig returns a small deterministic breaker config on the given clock:
// 100ms window over 10 buckets, threshold 0.5 with a floor of 4 outcomes,
// 50ms open cool-off, 2 half-open probes.
func testConfig(c *fakeClock) Config {
	return Config{
		Window:           100 * time.Millisecond,
		Buckets:          10,
		FailureThreshold: 0.5,
		MinRequests:      4,
		OpenFor:          50 * time.Millisecond,
		HalfOpenProbes:   2,
		Clock:            c.Now,
	}
}

// step is one scripted action against the breaker.
type step struct {
	// advance moves the fake clock before the action.
	advance time.Duration
	// action: "allow" expects wantAllow; "ok"/"fail" record an outcome.
	action    string
	wantAllow bool
	// wantState is checked after the action.
	wantState State
}

func runScript(t *testing.T, b *Breaker, clock *fakeClock, script []step) {
	t.Helper()
	for i, s := range script {
		clock.Advance(s.advance)
		switch s.action {
		case "allow":
			if got := b.Allow(); got != s.wantAllow {
				t.Fatalf("step %d: Allow() = %v, want %v", i, got, s.wantAllow)
			}
		case "ok":
			b.Record(true)
		case "fail":
			b.Record(false)
		default:
			t.Fatalf("step %d: unknown action %q", i, s.action)
		}
		if got := b.State(); got != s.wantState {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.action, got, s.wantState)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	tests := []struct {
		name   string
		script []step
	}{
		{
			// Below the MinRequests floor the ratio is never evaluated: three
			// straight failures cannot trip a breaker with a floor of four.
			name: "volume floor holds",
			script: []step{
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "allow", true, Closed},
			},
		},
		{
			// Four outcomes at 50% failures trips exactly at the threshold.
			name: "trips at threshold",
			script: []step{
				{0, "ok", false, Closed},
				{0, "ok", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Open},
				{0, "allow", false, Open},
			},
		},
		{
			// Open denies until OpenFor elapses, then half-open admits
			// exactly HalfOpenProbes probes; two successes close it.
			name: "open to half-open to closed",
			script: []step{
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Open},
				{10 * time.Millisecond, "allow", false, Open},
				{40 * time.Millisecond, "allow", true, HalfOpen},
				{0, "allow", true, HalfOpen},
				{0, "allow", false, HalfOpen}, // probe budget spent
				{0, "ok", false, HalfOpen},
				{0, "ok", false, Closed},
				{0, "allow", true, Closed},
			},
		},
		{
			// A failed probe reopens the breaker and restarts the cool-off.
			name: "probe failure reopens",
			script: []step{
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Open},
				{50 * time.Millisecond, "allow", true, HalfOpen},
				{0, "fail", false, Open},
				{40 * time.Millisecond, "allow", false, Open}, // cool-off restarted
				{10 * time.Millisecond, "allow", true, HalfOpen},
			},
		},
		{
			// Old failures age out of the rolling window: after the window
			// passes, fresh successes dominate and the breaker stays closed.
			name: "window expiry forgets failures",
			script: []step{
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{150 * time.Millisecond, "ok", false, Closed},
				{0, "ok", false, Closed},
				{0, "ok", false, Closed},
				{0, "fail", false, Closed}, // 1/4 failures < 0.5
			},
		},
		{
			// Closing resets the window, so pre-trip failures cannot re-trip
			// the breaker right after recovery.
			name: "close resets window",
			script: []step{
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Closed},
				{0, "fail", false, Open},
				{50 * time.Millisecond, "allow", true, HalfOpen},
				{0, "ok", false, HalfOpen},
				{0, "allow", true, HalfOpen},
				{0, "ok", false, Closed},
				{0, "fail", false, Closed}, // fresh window: 1 outcome, under floor
				{0, "allow", true, Closed},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			clock := newFakeClock()
			runScript(t, New(testConfig(clock)), clock, tt.script)
		})
	}
}

func TestBreakerSnapshotCounters(t *testing.T) {
	clock := newFakeClock()
	b := New(testConfig(clock))
	// Trip, cool off, probe-fail (reopen), cool off, probe to recovery.
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	clock.Advance(50 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("expected half-open probe to be allowed")
	}
	b.Record(false) // reopen
	clock.Advance(50 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("probe %d denied", i)
		}
		b.Record(true)
	}
	s := b.SnapshotNow()
	if s.State != Closed {
		t.Fatalf("state = %v, want Closed", s.State)
	}
	if s.Opens != 1 || s.HalfOpens != 2 || s.Reopens != 1 || s.Closes != 1 {
		t.Fatalf("transitions = opens %d halfopens %d reopens %d closes %d, want 1/2/1/1",
			s.Opens, s.HalfOpens, s.Reopens, s.Closes)
	}
	if s.Probes != 3 {
		t.Fatalf("probes = %d, want 3", s.Probes)
	}
	if s.WindowRequests != 0 {
		t.Fatalf("window requests = %d, want 0 after close reset", s.WindowRequests)
	}
}

func TestBudget(t *testing.T) {
	clock := newFakeClock()
	g := NewBudget(2, 100*time.Millisecond, clock.Now)
	for i := 0; i < 2; i++ {
		if !g.Allow() {
			t.Fatalf("token %d denied within budget", i)
		}
	}
	if g.Allow() {
		t.Fatal("third token allowed over a budget of 2")
	}
	clock.Advance(100 * time.Millisecond)
	if !g.Allow() {
		t.Fatal("token denied after window reset")
	}
	s := g.SnapshotNow()
	if s.Allowed != 3 || s.Denied != 1 || s.Used != 1 {
		t.Fatalf("snapshot = %+v, want allowed 3, denied 1, used 1", s)
	}
}

// TestHalfOpenProbeRace hammers a half-open breaker from many goroutines and
// asserts the probe budget is never exceeded: exactly HalfOpenProbes callers
// win admission per episode, no matter how many race for it. Run under -race
// this also exercises the seqlock mirror against concurrent snapshots.
func TestHalfOpenProbeRace(t *testing.T) {
	clock := newFakeClock()
	cfg := testConfig(clock)
	cfg.HalfOpenProbes = 3
	b := New(cfg)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	if b.State() != Open {
		t.Fatal("breaker should be open")
	}
	clock.Advance(cfg.OpenFor)

	const goroutines = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				admitted.Add(1)
			}
			_ = b.SnapshotNow() // concurrent lock-free reads
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != cfg.HalfOpenProbes {
		t.Fatalf("admitted %d probes, want exactly %d", got, cfg.HalfOpenProbes)
	}
	// The admitted probes all succeed: the breaker must close.
	for i := int64(0); i < cfg.HalfOpenProbes; i++ {
		b.Record(true)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probes, want Closed", b.State())
	}
	s := b.SnapshotNow()
	if s.Denied != int64(goroutines)-cfg.HalfOpenProbes {
		t.Fatalf("denied = %d, want %d", s.Denied, int64(goroutines)-cfg.HalfOpenProbes)
	}
}

// TestBudgetRace asserts the per-window cap holds under concurrent callers.
func TestBudgetRace(t *testing.T) {
	clock := newFakeClock()
	g := NewBudget(5, time.Second, clock.Now)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g.Allow() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 5 {
		t.Fatalf("admitted %d, want exactly 5", got)
	}
}
