package lb

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"darwin/internal/trace"
)

// TestHashGoldenIdentity pins the inlined FNV-1a paths to the stdlib
// implementations they replaced: routeHash must equal fnv.New64a over the
// id's 8 little-endian bytes, and vnodeHash must equal the old
// fmt.Fprintf(h, "server-%d-vnode-%d", ...) construction. Ring placement and
// request routing are bit-identical to the legacy balancer iff these hold.
func TestHashGoldenIdentity(t *testing.T) {
	ids := []uint64{0, 1, 42, 255, 256, 1<<32 - 1, 1 << 32, 1<<64 - 1, 0xdeadbeefcafebabe}
	for i := uint64(0); i < 1000; i++ {
		ids = append(ids, i*2654435761%97, i*i*31)
	}
	for _, id := range ids {
		h := fnv.New64a()
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(id >> (8 * i))
		}
		h.Write(buf[:])
		if want, got := h.Sum64(), routeHash(id); got != want {
			t.Fatalf("routeHash(%d) = %#x, fnv = %#x", id, got, want)
		}
	}
	for s := 0; s < 40; s++ {
		for v := 0; v < 100; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "server-%d-vnode-%d", s, v)
			if want, got := h.Sum64(), vnodeHash(s, v); got != want {
				t.Fatalf("vnodeHash(%d,%d) = %#x, fnv/fmt = %#x", s, v, got, want)
			}
		}
	}
}

// legacyRoute is the pre-refactor Balancer.Route (per-request fnv.New64a,
// per-probe budget recomputation), kept here as the golden reference: the
// new allocation-free Ring must reproduce its decisions bit-for-bit.
type legacyBalancer struct {
	cfg     Config
	ring    []ringEntry
	loads   []int
	weights []float64
	window  int
	n       int
}

func newLegacy(cfg Config) *legacyBalancer {
	cfg = cfg.withDefaults()
	b := &legacyBalancer{cfg: cfg, loads: make([]int, cfg.Servers)}
	for s := 0; s < cfg.Servers; s++ {
		for v := 0; v < cfg.VirtualNodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "server-%d-vnode-%d", s, v)
			b.ring = append(b.ring, ringEntry{hash: h.Sum64(), server: s})
		}
	}
	sort.Slice(b.ring, func(i, j int) bool { return b.ring[i].hash < b.ring[j].hash })
	b.weights = b.windowWeights(0)
	return b
}

func (b *legacyBalancer) windowWeights(window int) []float64 {
	var w []float64
	switch {
	case b.cfg.WeightSchedule != nil:
		w = b.cfg.WeightSchedule(window)
	case b.cfg.Weights != nil:
		w = b.cfg.Weights
	}
	out := make([]float64, b.cfg.Servers)
	for i := range out {
		out[i] = 1
		if i < len(w) && w[i] >= 0 {
			out[i] = w[i]
		}
		if b.cfg.Readiness != nil {
			if r := b.cfg.Readiness(window, i); r >= 0 && r < 1 {
				out[i] *= r
			}
		}
	}
	return out
}

func (b *legacyBalancer) route(id uint64) int {
	if b.n >= b.cfg.RebalanceEvery {
		b.window++
		b.n = 0
		for i := range b.loads {
			b.loads[i] = 0
		}
		b.weights = b.windowWeights(b.window)
	}
	b.n++
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(id >> (8 * i))
	}
	h.Write(buf[:])
	target := func(hash uint64) int {
		i := sort.Search(len(b.ring), func(i int) bool { return b.ring[i].hash >= hash })
		if i == len(b.ring) {
			i = 0
		}
		return b.ring[i].server
	}(h.Sum64())
	var totalWeight float64
	for _, w := range b.weights {
		totalWeight += w
	}
	for probe := 0; probe < b.cfg.Servers; probe++ {
		s := (target + probe) % b.cfg.Servers
		budget := 1.0
		if totalWeight > 0 {
			budget = (1 + b.cfg.LoadFactor) * float64(b.cfg.RebalanceEvery) * b.weights[s] / totalWeight
		}
		if float64(b.loads[s]) < budget {
			b.loads[s]++
			return s
		}
	}
	b.loads[target]++
	return target
}

// TestRouteBitIdenticalToLegacy drives the refactored Balancer and the
// golden legacy implementation over the same skewed stream — weight
// schedule, readiness scaling, multiple windows, and a partial final window
// — and requires identical routing decisions at every step.
func TestRouteBitIdenticalToLegacy(t *testing.T) {
	cfg := Config{
		Servers:        5,
		VirtualNodes:   32,
		LoadFactor:     0.2,
		RebalanceEvery: 1000,
		WeightSchedule: func(window int) []float64 {
			switch window % 3 {
			case 0:
				return []float64{1, 1, 1, 1, 1}
			case 1:
				return []float64{2, 1, 0.5, 1, 1}
			default:
				return []float64{1, 0, 1, 1, 0.25}
			}
		},
		Readiness: func(window, server int) float64 {
			if window >= 2 && server == 3 {
				return 0.5
			}
			return 1
		},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy := newLegacy(cfg)
	for i := 0; i < 4321; i++ { // 4 full windows + a partial tail
		id := uint64(i) * 2654435761
		if i%3 == 0 {
			id = 7 // hot object to force bounded-loads spills
		}
		got := b.Route(trace.Request{ID: id})
		want := legacy.route(id)
		if got != want {
			t.Fatalf("request %d (id %d): ring routed to %d, legacy to %d", i, id, got, want)
		}
	}
}

// TestRouteZeroAllocs pins the satellite claim: routing allocates nothing,
// including the replicated path.
func TestRouteZeroAllocs(t *testing.T) {
	r, err := NewRing(Config{Servers: 8, RebalanceEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	id := uint64(0)
	if avg := testing.AllocsPerRun(2000, func() {
		r.Route(id)
		id++
	}); avg != 0 {
		t.Fatalf("Route allocates %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		r.RouteReplicated(id, 3)
		id++
	}); avg != 0 {
		t.Fatalf("RouteReplicated allocates %.1f allocs/op, want 0", avg)
	}
	var dst [3]int
	if avg := testing.AllocsPerRun(2000, func() {
		r.Successors(id, dst[:])
		id++
	}); avg != 0 {
		t.Fatalf("Successors allocates %.1f allocs/op, want 0", avg)
	}
}

func BenchmarkRoute(b *testing.B) {
	r, err := NewRing(Config{Servers: 8, RebalanceEvery: 100_000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(uint64(i) * 2654435761)
	}
}

func BenchmarkRouteReplicated(b *testing.B) {
	r, err := NewRing(Config{Servers: 8, RebalanceEvery: 100_000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RouteReplicated(uint64(i)*2654435761, 3)
	}
}

// TestBoundedLoadsProperty is the invariant behind the whole layer: in every
// window — full or partial, under any weight schedule — no server's load
// exceeds its (1+ε)-scaled budget (load ≤ ⌊budget⌋+1, since admission checks
// load < budget). The hot-object pressure (every 3rd request is one id)
// forces constant spilling, and the final window is deliberately partial.
func TestBoundedLoadsProperty(t *testing.T) {
	schedules := map[string]func(window int) []float64{
		"uniform": nil,
		"drain":   func(int) []float64 { return []float64{1, 1, 1, 0} },
		"skew":    func(int) []float64 { return []float64{4, 2, 1, 1} },
		"rotate": func(w int) []float64 {
			out := []float64{1, 1, 1, 1}
			out[w%4] = 0.1
			return out
		},
	}
	for name, sched := range schedules {
		for _, eps := range []float64{0.1, 0.25, 0.5} {
			r, err := NewRing(Config{
				Servers:        4,
				LoadFactor:     eps,
				RebalanceEvery: 5000,
				WeightSchedule: sched,
			})
			if err != nil {
				t.Fatal(err)
			}
			id := uint64(0)
			for window, expect := range []int{5000, 5000, 1234} {
				r.BeginWindow(window, expect)
				for i := 0; i < expect; i++ {
					rid := id * 11400714819323198485
					if i%3 == 0 {
						rid = 99 // hot object: one id takes a third of traffic
					}
					r.Route(rid)
					id++
				}
				weights := r.Weights()
				var total float64
				for _, w := range weights {
					total += w
				}
				for s, load := range r.Loads() {
					budget := (1 + eps) * float64(expect) * weights[s] / total
					if float64(load) >= budget+1 {
						t.Fatalf("%s ε=%.2f window %d: server %d load %d exceeds budget %.1f",
							name, eps, window, s, load, budget)
					}
				}
			}
		}
	}
}

// TestSplitExactFinalWindow is the satellite fix: a readiness change landing
// in a trace's final *partial* window must still shed load. Before the fix,
// Split budgeted the partial window as if it were a full RebalanceEvery
// window, so a down-weighted server's budget dwarfed the window's actual
// traffic and the readiness update was silently dropped.
func TestSplitExactFinalWindow(t *testing.T) {
	const (
		every   = 10_000
		tail    = 1000
		total   = 2*every + tail
		servers = 3
	)
	tr := &trace.Trace{Name: "partial"}
	for i := 0; i < total; i++ {
		tr.Requests = append(tr.Requests, trace.Request{ID: uint64(i), Time: int64(i), Size: 1})
	}
	cfg := Config{
		Servers:        servers,
		RebalanceEvery: every,
		Readiness: func(window, server int) float64 {
			if window == 2 && server == 0 {
				return 0.1 // server 0 degrades for the final partial window
			}
			return 1
		},
	}
	subs, err := Split(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count how much of the final window's traffic server 0 kept. IDs are
	// unique and equal to the global index, so membership identifies the
	// window.
	w2 := 0
	for _, r := range subs[0].Requests {
		if r.ID >= 2*every {
			w2++
		}
	}
	// Exact budget for the partial window: (1+0.25)·1000·0.1/2.1 ≈ 60. Under
	// the old full-window budgeting (≈595 > the server's whole hash share of
	// ~333) the shed never engaged.
	budget := 1.25 * tail * 0.1 / 2.1
	if float64(w2) >= budget+1 {
		t.Fatalf("degraded server kept %d of the partial window, budget %.1f", w2, budget)
	}
	if w2 == 0 {
		t.Fatal("degraded server fully starved: readiness 0.1 should leave a trickle")
	}
	// The healthy servers absorb the remainder.
	if got := subs[0].Len() + subs[1].Len() + subs[2].Len(); got != total {
		t.Fatalf("split lost requests: %d != %d", got, total)
	}
}

// TestReplicatorFactors covers the share→factor mapping, the TopK and
// MaxFactor caps, the stats row, and window reset.
func TestReplicatorFactors(t *testing.T) {
	rep := NewReplicator(ReplicationConfig{TopK: 4, MaxFactor: 3, HotShare: 0.02})
	// 1000 observations: id 1 has 50% share (capped at factor 3), id 2 has
	// 3% (factor 2), id 3 has 1% (cold), remainder unique.
	for i := 0; i < 500; i++ {
		rep.Observe(1)
	}
	for i := 0; i < 30; i++ {
		rep.Observe(2)
	}
	for i := 0; i < 10; i++ {
		rep.Observe(3)
	}
	for i := 0; i < 460; i++ {
		rep.Observe(uint64(1000 + i))
	}
	if f := rep.Factor(1); f != 1 {
		t.Fatalf("factor before rebalance = %d, want 1", f)
	}
	hot := rep.Rebalance()
	if f := rep.Factor(1); f != 3 {
		t.Fatalf("50%%-share object factor = %d, want 3 (MaxFactor cap)", f)
	}
	if f := rep.Factor(2); f != 2 {
		t.Fatalf("3%%-share object factor = %d, want 2", f)
	}
	if f := rep.Factor(3); f != 1 {
		t.Fatalf("1%%-share object factor = %d, want 1", f)
	}
	if f := rep.Factor(1000); f != 1 {
		t.Fatalf("cold object factor = %d, want 1", f)
	}
	if len(hot) != 2 {
		t.Fatalf("hot set size %d, want 2", len(hot))
	}
	stats := make([]int64, RsWidth)
	rep.Stats(stats)
	if stats[RsObserved] != 1000 || stats[RsHotObjects] != 2 ||
		stats[RsExtraReplicas] != 3 || stats[RsMaxFactor] != 3 {
		t.Fatalf("stats row %v, want [1000 2 3 3]", stats)
	}
	// An empty follow-up window clears the hot set.
	rep.Rebalance()
	if f := rep.Factor(1); f != 1 {
		t.Fatalf("factor after empty window = %d, want 1", f)
	}
}

func TestReplicatorTopK(t *testing.T) {
	rep := NewReplicator(ReplicationConfig{TopK: 4, MaxFactor: 3, HotShare: 0.01})
	// 20 objects, every one above HotShare; only the 4 biggest may replicate.
	for id := uint64(0); id < 20; id++ {
		for i := 0; i < 100-int(id); i++ {
			rep.Observe(id)
		}
	}
	hot := rep.Rebalance()
	if len(hot) != 4 {
		t.Fatalf("hot set size %d, want TopK=4", len(hot))
	}
	for id := uint64(0); id < 4; id++ {
		if hot[id] <= 1 {
			t.Fatalf("top object %d not replicated: %v", id, hot)
		}
	}
}

// TestRouteReplicatedSpreadsHotObject closes the loop: after one observed
// window, a 50%-share object routes over its replica set instead of
// saturating (and spilling off) its primary.
func TestRouteReplicatedSpreadsHotObject(t *testing.T) {
	r, err := NewRing(Config{Servers: 4, RebalanceEvery: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplicator(ReplicationConfig{})
	const hot = uint64(7)
	mix := func(i int) uint64 {
		if i%2 == 0 {
			return hot
		}
		return uint64(1000 + i)
	}
	// Window 0: observe while routing unreplicated.
	for i := 0; i < 10_000; i++ {
		id := mix(i)
		rep.Observe(id)
		r.Route(id)
	}
	rep.Rebalance()
	if f := rep.Factor(hot); f != 3 {
		t.Fatalf("hot factor = %d, want 3", f)
	}
	// Window 1: route with the learned factors; the hot object must spread
	// over its replica successors, none taking more than half its traffic.
	r.BeginWindow(1, 10_000)
	perServer := make(map[int]int)
	for i := 0; i < 10_000; i++ {
		id := mix(i)
		s := r.RouteReplicated(id, rep.Factor(id))
		if id == hot {
			perServer[s]++
		}
	}
	if len(perServer) < 2 {
		t.Fatalf("hot object stayed on %d server(s): %v", len(perServer), perServer)
	}
	var dst [3]int
	k := r.Successors(hot, dst[:])
	if k != 3 {
		t.Fatalf("successor walk found %d servers, want 3", k)
	}
	allowed := map[int]bool{dst[0]: true, dst[1]: true, dst[2]: true}
	for s, n := range perServer {
		if !allowed[s] {
			t.Fatalf("hot object routed to %d, outside replica set %v", s, dst)
		}
		if n > 2500 {
			t.Fatalf("replica %d absorbed %d of 5000 hot requests; spread %v", s, n, perServer)
		}
	}
}

// TestSuccessorsDistinct: the walk yields distinct servers, primary first.
func TestSuccessorsDistinct(t *testing.T) {
	r, err := NewRing(Config{Servers: 6, RebalanceEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	var dst [6]int
	for id := uint64(0); id < 200; id++ {
		k := r.Successors(id, dst[:])
		if k != 6 {
			t.Fatalf("id %d: %d successors, want 6", id, k)
		}
		seen := map[int]bool{}
		for _, s := range dst {
			if seen[s] {
				t.Fatalf("id %d: duplicate server %d in %v", id, s, dst)
			}
			seen[s] = true
		}
		// dst[0] is the unloaded hash target: a fresh ring must route there.
		fresh, err := NewRing(Config{Servers: 6, RebalanceEvery: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		if got := fresh.Route(id); got != dst[0] {
			t.Fatalf("id %d: Route -> %d, Successors primary %d", id, got, dst[0])
		}
	}
}

// TestSuccessorOf: the drain-handoff target is a valid distinct node, is
// deterministic, and matches a brute-force plurality count over the ring's
// vnode arcs. A single-server ring has no successor.
func TestSuccessorOf(t *testing.T) {
	for _, servers := range []int{2, 3, 6} {
		r, err := NewRing(Config{Servers: servers, RebalanceEvery: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < servers; s++ {
			got := r.SuccessorOf(s)
			if got < 0 || got >= servers || got == s {
				t.Fatalf("servers=%d: SuccessorOf(%d) = %d", servers, s, got)
			}
			if again := r.SuccessorOf(s); again != got {
				t.Fatalf("servers=%d: SuccessorOf(%d) nondeterministic: %d then %d", servers, s, got, again)
			}
			// Brute force: count, per vnode of s, the next distinct server.
			votes := make(map[int]int)
			for i := range r.ring {
				if r.ring[i].server != s {
					continue
				}
				for off := 1; off <= len(r.ring); off++ {
					j := (i + off) % len(r.ring)
					if r.ring[j].server != s {
						votes[r.ring[j].server]++
						break
					}
				}
			}
			best, bestV := -1, 0
			for cand := 0; cand < servers; cand++ {
				if v := votes[cand]; v > bestV {
					best, bestV = cand, v
				}
			}
			if got != best {
				t.Fatalf("servers=%d: SuccessorOf(%d) = %d, brute force says %d (votes %v)", servers, s, got, best, votes)
			}
		}
	}
	single, err := NewRing(Config{Servers: 1, RebalanceEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.SuccessorOf(0); got != -1 {
		t.Fatalf("single-server SuccessorOf = %d, want -1", got)
	}
}
