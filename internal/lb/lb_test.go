package lb

import (
	"testing"
	"time"

	"darwin/internal/breaker"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Servers: 0}); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := New(Config{Servers: 2, Weights: []float64{1}}); err == nil {
		t.Error("weight/server mismatch accepted")
	}
}

func TestRouteDeterministicByObject(t *testing.T) {
	b, err := New(Config{Servers: 4, RebalanceEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Within one window (no spilling pressure), the same object routes to
	// the same server: content-affinity is the point of CDN load balancing.
	first := b.Route(trace.Request{ID: 42, Size: 1})
	for i := 0; i < 50; i++ {
		b.Route(trace.Request{ID: uint64(1000 + i), Size: 1})
	}
	if got := b.Route(trace.Request{ID: 42, Size: 1}); got != first {
		t.Fatalf("object 42 moved from server %d to %d without load pressure", first, got)
	}
}

func TestRouteBalancesLoad(t *testing.T) {
	b, err := New(Config{Servers: 4, LoadFactor: 0.25, RebalanceEvery: 8000})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.ImageDownloadMix(50, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, r := range tr.Requests {
		counts[b.Route(r)]++
	}
	// Bounded loads: no server may exceed (1+ε)·N/servers (plus the final
	// overflow fallback, which should be rare).
	budget := int(1.25*8000/4) + 10
	for s, c := range counts {
		if c > budget {
			t.Fatalf("server %d took %d requests, budget %d", s, c, budget)
		}
		if c == 0 {
			t.Fatalf("server %d starved", s)
		}
	}
}

func TestWeightsShiftTraffic(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 20000, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Server 0 drains (weight 0.1) in window 1+.
	cfg := Config{
		Servers:        3,
		RebalanceEvery: 10000,
		WeightSchedule: func(window int) []float64 {
			if window == 0 {
				return []float64{1, 1, 1}
			}
			return []float64{0.1, 1, 1}
		},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var w0, w1 int // server 0's load in window 0 and 1
	for i, r := range tr.Requests {
		s := b.Route(r)
		if s == 0 {
			if i < 10000 {
				w0++
			} else {
				w1++
			}
		}
	}
	if w1*3 > w0 {
		t.Fatalf("drained server kept too much traffic: window0=%d window1=%d", w0, w1)
	}
}

func TestSplitPreservesRequests(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 10000, 2)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := Split(tr, Config{Servers: 4, RebalanceEvery: 2500})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sub := range subs {
		total += sub.Len()
		// Timestamps must remain monotone within each sub-trace.
		for i := 1; i < sub.Len(); i++ {
			if sub.Requests[i].Time < sub.Requests[i-1].Time {
				t.Fatal("sub-trace timestamps not monotone")
			}
		}
	}
	if total != tr.Len() {
		t.Fatalf("split lost requests: %d != %d", total, tr.Len())
	}
}

// TestSplitShiftsPerServerMix is the §2.1 claim: with a weight change, a
// server's traffic composition (here: mean object size) shifts between
// windows even though the global workload is stationary.
func TestSplitShiftsPerServerMix(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 40000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Servers:        4,
		RebalanceEvery: 10000,
		LoadFactor:     0.1,
		WeightSchedule: func(window int) []float64 {
			if window < 2 {
				return []float64{1, 1, 1, 1}
			}
			// Two servers drain: survivors absorb spilled traffic, changing
			// their mixes.
			return []float64{1, 1, 0.05, 0.05}
		},
	}
	subs, err := Split(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Split the surviving server's sub-trace at the global time boundary
	// between the uniform windows (0-1) and the drained windows (2-3).
	boundary := tr.Requests[20000].Time
	sub := subs[0]
	cut := 0
	for cut < sub.Len() && sub.Requests[cut].Time < boundary {
		cut++
	}
	s1 := sub.Window(0, cut).Summarize()
	s2 := sub.Window(cut, sub.Len()).Summarize()
	if s1.Requests == 0 || s2.Requests == 0 {
		t.Fatal("empty window")
	}
	// The surviving server absorbs the drained servers' spillover: its
	// request volume must grow substantially across the boundary.
	if float64(s2.Requests) < 1.2*float64(s1.Requests) {
		t.Fatalf("surviving server volume did not grow: %d -> %d", s1.Requests, s2.Requests)
	}
	t.Logf("server 0: %d -> %d requests, mean size %.0f -> %.0f",
		s1.Requests, s2.Requests, s1.MeanSize, s2.MeanSize)
}

// TestReadinessShedsRingWeight wires a real circuit breaker into the
// balancer's readiness hook: while server 1's origin breaker is open, the
// next rebalance boundary strips its ring weight and bounded-loads spill
// redistributes its share — the lb half of health-gated routing.
func TestReadinessShedsRingWeight(t *testing.T) {
	now := time.Unix(0, 0)
	brk := breaker.New(breaker.Config{
		Window:           time.Second,
		Buckets:          10,
		FailureThreshold: 0.5,
		MinRequests:      4,
		OpenFor:          time.Minute,
		HalfOpenProbes:   1,
		Clock:            func() time.Time { return now },
	})
	cfg := Config{
		Servers:        3,
		RebalanceEvery: 5000,
		LoadFactor:     0.1,
		Readiness: func(window, server int) float64 {
			if server == 1 && brk.State() == breaker.Open {
				return 0
			}
			return 1
		},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.ImageDownloadMix(50, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var w0, w1 int // server 1's load in window 0 (healthy) and window 1 (open)
	for i, r := range tr.Requests {
		if i == 5000 {
			// Trip server 1's breaker right before the rebalance boundary.
			for j := 0; j < 4; j++ {
				if brk.Allow() {
					brk.Record(false)
				}
			}
			if brk.State() != breaker.Open {
				t.Fatalf("breaker did not trip: state %v", brk.State())
			}
		}
		if b.Route(r) == 1 {
			if i < 5000 {
				w0++
			} else {
				w1++
			}
		}
	}
	if w0 == 0 {
		t.Fatal("server 1 starved while healthy")
	}
	if w1 != 0 {
		t.Fatalf("open-breaker server still routed %d requests (healthy window: %d)", w1, w0)
	}
}
