package lb

// Adaptive replication (PAPERS.md: "Adaptive Replication in Distributed
// Content Delivery Networks"): a per-window popularity tracker that widens
// each hot object's replica set on the ring. Plain consistent hashing sends
// every request for an object to one primary, so a viral object saturates a
// single node while its siblings idle; the Replicator observes per-object
// request share each rebalance window and grants the top-K objects a
// replication factor R proportional to that share — the front tier then
// routes them over R ring successors (Ring.RouteReplicated) and the peer-fill
// path warms the successors on first touch.
//
// Concurrency: Observe and Rebalance serialize on an internal mutex (the
// routing tier calls them under its own routing lock, so the mutex is
// uncontended there); Factor is lock-free on an atomically swapped read-only
// snapshot so data-plane readers never block, and the per-window aggregate
// stats publish through a stripe.Cell for coherent lock-free scraping by
// /metrics and reports.

import (
	"sort"
	"sync"
	"sync/atomic"

	"darwin/internal/stripe"
)

// ReplicationConfig parameterises the popularity tracker.
type ReplicationConfig struct {
	// TopK bounds how many objects may hold extra replicas at once
	// (default 16).
	TopK int
	// MaxFactor caps any object's replication factor (default 3, hard
	// ceiling MaxReplicas).
	MaxFactor int
	// HotShare is the request share granting one extra replica: an object
	// with share s gets factor 1 + floor(s / HotShare), so a 2%-share object
	// at the default 0.02 gets one extra copy and a 6%-share object gets
	// three (subject to MaxFactor). Default 0.02.
	HotShare float64
}

func (c ReplicationConfig) withDefaults() ReplicationConfig {
	if c.TopK <= 0 {
		c.TopK = 16
	}
	if c.MaxFactor <= 0 {
		c.MaxFactor = 3
	}
	if c.MaxFactor > MaxReplicas {
		c.MaxFactor = MaxReplicas
	}
	if c.HotShare <= 0 {
		c.HotShare = 0.02
	}
	return c
}

// Replication stats indexes for the []int64 published per rebalance window;
// read a coherent row with Replicator.Stats.
const (
	RsObserved      = iota // requests observed in the last completed window
	RsHotObjects           // objects granted extra replicas
	RsExtraReplicas        // sum of (factor-1) over hot objects
	RsMaxFactor            // largest factor granted (0 when nothing is hot)
	RsWidth
)

// Replicator tracks per-object popularity per rebalance window and derives
// replication factors for the next window.
type Replicator struct {
	cfg ReplicationConfig

	mu     sync.Mutex
	counts map[uint64]int64 // guarded by mu: current window's per-object hits
	total  int64            // guarded by mu: current window's request count

	factors atomic.Value // map[uint64]int: read-only snapshot, swapped whole
	stats   *stripe.Cell
}

// NewReplicator builds a tracker with no hot objects.
func NewReplicator(cfg ReplicationConfig) *Replicator {
	r := &Replicator{
		cfg:    cfg.withDefaults(),
		counts: make(map[uint64]int64),
		stats:  stripe.NewCell(RsWidth),
	}
	r.factors.Store(map[uint64]int{})
	return r
}

// Observe records one request for id in the current window.
func (r *Replicator) Observe(id uint64) {
	r.mu.Lock()
	r.counts[id]++
	r.total++
	r.mu.Unlock()
}

// Factor returns id's current replication factor (>= 1). Lock-free.
func (r *Replicator) Factor(id uint64) int {
	if f, ok := r.factors.Load().(map[uint64]int)[id]; ok {
		return f
	}
	return 1
}

// Factors returns the current hot set — object id to replication factor for
// every object with factor > 1. The map is the live read-only snapshot;
// callers must not mutate it.
func (r *Replicator) Factors() map[uint64]int {
	return r.factors.Load().(map[uint64]int)
}

// Stats fills dst (len >= RsWidth) with a coherent snapshot of the last
// completed window's replication row.
func (r *Replicator) Stats(dst []int64) {
	r.stats.Snapshot(dst)
}

// hotCandidate pairs an object with its window hit count for top-K sorting.
type hotCandidate struct {
	id    uint64
	count int64
}

// byCountDesc sorts candidates by count descending, id ascending — a named
// sort.Interface (not a sort.Slice closure) because Rebalance runs on the
// front tier's routing path, which the hotpath lint rule keeps closure-free.
type byCountDesc []hotCandidate

func (s byCountDesc) Len() int { return len(s) }
func (s byCountDesc) Less(i, j int) bool {
	if s[i].count != s[j].count {
		return s[i].count > s[j].count
	}
	return s[i].id < s[j].id
}
func (s byCountDesc) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Rebalance closes the current observation window: the top-K objects by hit
// count are granted factors from their request share, the snapshot read by
// Factor is swapped, window stats publish, and counting restarts. Call at
// every rebalance boundary (typically right after Ring.BeginWindow). Returns
// the new hot set (read-only, same map Factors returns).
func (r *Replicator) Rebalance() map[uint64]int {
	r.mu.Lock()
	defer r.mu.Unlock()

	cand := make([]hotCandidate, 0, len(r.counts))
	for id, n := range r.counts {
		cand = append(cand, hotCandidate{id: id, count: n})
	}
	sort.Sort(byCountDesc(cand))
	if len(cand) > r.cfg.TopK {
		cand = cand[:r.cfg.TopK]
	}

	hot := make(map[uint64]int)
	var extra, maxFactor int64
	for _, c := range cand {
		share := float64(c.count) / float64(r.total)
		f := 1 + int(share/r.cfg.HotShare)
		if f > r.cfg.MaxFactor {
			f = r.cfg.MaxFactor
		}
		if f <= 1 {
			continue
		}
		hot[c.id] = f
		extra += int64(f - 1)
		if int64(f) > maxFactor {
			maxFactor = int64(f)
		}
	}
	r.factors.Store(hot)
	r.stats.Store([]int64{r.total, int64(len(hot)), extra, maxFactor})

	r.counts = make(map[uint64]int64)
	r.total = 0
	return hot
}
