package lb

// This file is the live half of the load-balancing layer: a reusable
// consistent-hash ring with bounded loads that both the offline trace
// splitter (Split) and the online HTTP front tier (server.Front) route
// through. The ring owns the §2.1 mechanics — vnode placement, per-window
// capacity re-weighting (weight schedules and the readiness hook), and the
// bounded-loads spill — while callers own window cadence: an open-ended
// stream advances windows lazily every RebalanceEvery requests, and a caller
// that knows the workload length (Split) begins each window explicitly so
// the final partial window's budgets scale to the requests that actually
// remain in it.
//
// Routing is allocation-free: the FNV-1a hash of the request id is computed
// inline (bit-identical to hash/fnv over the id's 8 little-endian bytes, the
// same identity internal/bloom proves for its u64 path), the ring lookup is
// a hand-rolled binary search, and window state lives in buffers allocated
// once at construction. Ring.Route is a darwinlint hotpath root.

// FNV-1a constants (hash/fnv), inlined for the allocation-free paths.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// routeHash is FNV-1a over the 8 little-endian bytes of id — bit-identical
// to fnv.New64a().Write(le8(id)).Sum64(), which the balancer used to compute
// through a heap-allocated hash.Hash64 per request.
func routeHash(id uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 64; i += 8 {
		h ^= (id >> i) & 0xff
		h *= fnvPrime64
	}
	return h
}

// vnodeHash is FNV-1a over the vnode label "server-<s>-vnode-<v>" —
// bit-identical to fmt.Fprintf(fnv.New64a(), "server-%d-vnode-%d", s, v),
// with the decimal rendering inlined so ring construction does not run a fmt
// state machine per vnode.
func vnodeHash(s, v int) uint64 {
	h := uint64(fnvOffset64)
	h = fnvString(h, "server-")
	h = fnvInt(h, s)
	h = fnvString(h, "-vnode-")
	h = fnvInt(h, v)
	return h
}

// fnvString folds s into a running FNV-1a state.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnvInt folds the decimal rendering of n (n >= 0) into a running FNV-1a
// state without materializing the string.
func fnvInt(h uint64, n int) uint64 {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	for ; i < len(buf); i++ {
		h ^= uint64(buf[i])
		h *= fnvPrime64
	}
	return h
}

// MaxReplicas caps the per-object replication factor the ring will walk for:
// hot objects route over at most this many distinct successors.
const MaxReplicas = 8

// Ring is a consistent-hash ring with bounded loads and per-window capacity
// re-weighting. It is not safe for concurrent routing (callers serialize
// Route/BeginWindow, e.g. under the front tier's routing mutex); Successors
// only reads construction-time state and is safe for concurrent readers.
type Ring struct {
	cfg  Config
	ring []ringEntry

	// Per-window routing state, owned by the router goroutine.
	loads   []int64
	weights []float64
	budgets []float64
	window  int
	n       int // requests routed in the current window
	winLen  int // expected requests in the current window (budget basis)
}

// NewRing builds a ring and begins window 0 sized at a full RebalanceEvery
// window. Callers that know their workload length (Split) re-begin windows
// explicitly with exact lengths.
func NewRing(cfg Config) (*Ring, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := &Ring{
		cfg:     cfg,
		ring:    make([]ringEntry, 0, cfg.Servers*cfg.VirtualNodes),
		loads:   make([]int64, cfg.Servers),
		weights: make([]float64, cfg.Servers),
		budgets: make([]float64, cfg.Servers),
	}
	for s := 0; s < cfg.Servers; s++ {
		for v := 0; v < cfg.VirtualNodes; v++ {
			r.ring = append(r.ring, ringEntry{hash: vnodeHash(s, v), server: s})
		}
	}
	sortRingEntries(r.ring)
	r.BeginWindow(0, cfg.RebalanceEvery)
	return r, nil
}

// Servers returns the cluster size.
func (r *Ring) Servers() int { return r.cfg.Servers }

// Window returns the current rebalance window index.
func (r *Ring) Window() int { return r.window }

// Routed returns how many requests have been routed in the current window.
func (r *Ring) Routed() int { return r.n }

// Weights returns a copy of the current window's effective weights (after
// the weight schedule and readiness scaling).
func (r *Ring) Weights() []float64 {
	out := make([]float64, len(r.weights))
	copy(out, r.weights)
	return out
}

// Loads returns a copy of the current window's per-server load counts.
func (r *Ring) Loads() []int64 {
	out := make([]int64, len(r.loads))
	copy(out, r.loads)
	return out
}

// BeginWindow starts the given rebalance window: loads reset, the weight
// schedule and readiness hook are consulted for this window, and
// bounded-loads budgets are derived from expect — the number of requests the
// caller will route in this window. An open-ended stream passes
// RebalanceEvery; a trace splitter passes the exact (possibly partial) window
// length, so re-weighting keeps its bite in the final window of a trace.
func (r *Ring) BeginWindow(window, expect int) {
	if expect <= 0 {
		expect = r.cfg.RebalanceEvery
	}
	r.window = window
	r.n = 0
	r.winLen = expect
	for i := range r.loads {
		r.loads[i] = 0
	}
	var w []float64
	switch {
	case r.cfg.WeightSchedule != nil:
		w = r.cfg.WeightSchedule(window)
	case r.cfg.Weights != nil:
		w = r.cfg.Weights
	}
	total := 0.0
	for i := range r.weights {
		r.weights[i] = 1
		if i < len(w) && w[i] >= 0 {
			r.weights[i] = w[i]
		}
		if r.cfg.Readiness != nil {
			if v := r.cfg.Readiness(window, i); v >= 0 && v < 1 {
				r.weights[i] *= v
			}
		}
		total += r.weights[i]
	}
	for s := range r.budgets {
		if total > 0 {
			// Expression order matches the legacy per-request computation so
			// precomputing budgets is bit-identical to the old balancer.
			r.budgets[s] = (1 + r.cfg.LoadFactor) * float64(expect) * r.weights[s] / total
		} else {
			r.budgets[s] = 1
		}
	}
}

// advance runs the lazy window cadence: when the current window has routed
// its expected length, the next full-sized window begins.
func (r *Ring) advance() {
	if r.n >= r.winLen {
		r.BeginWindow(r.window+1, r.cfg.RebalanceEvery)
	}
	r.n++
}

// lookupIdx finds the ring index of hash's successor entry.
func (r *Ring) lookupIdx(hash uint64) int {
	lo, hi := 0, len(r.ring)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.ring[mid].hash >= hash {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(r.ring) {
		lo = 0
	}
	return lo
}

// Route returns the server for one request and advances load accounting:
// the hash target takes it unless over its window budget, in which case the
// request spills clockwise (bounded loads). Allocation-free.
func (r *Ring) Route(id uint64) int {
	return r.RouteReplicated(id, 1)
}

// RouteReplicated routes one request over the object's replica set: the
// first `replicas` distinct servers on the ring walk from the object's hash
// position. Among replicas with remaining window budget the least-loaded
// (relative to budget) wins, so a hot object's traffic spreads over its
// replicas instead of saturating the primary; if every replica is over
// budget the request falls back to the plain bounded-loads spill from the
// hash target. replicas <= 1 is exactly Route.
func (r *Ring) RouteReplicated(id uint64, replicas int) int {
	r.advance()
	idx := r.lookupIdx(routeHash(id))
	target := r.ring[idx].server
	if replicas > 1 {
		if s, ok := r.pickReplica(idx, replicas); ok {
			r.loads[s]++
			return s
		}
	}
	// Bounded loads: spill clockwise past servers over their window budget.
	for probe := 0; probe < r.cfg.Servers; probe++ {
		s := target + probe
		if s >= r.cfg.Servers {
			s -= r.cfg.Servers
		}
		if float64(r.loads[s]) < r.budgets[s] {
			r.loads[s]++
			return s
		}
	}
	// Every server over budget (extreme skew): fall back to the hash target.
	r.loads[target]++
	return target
}

// pickReplica chooses the best replica for the object whose primary ring
// entry is idx: among the first `replicas` distinct servers on the ring walk
// that still have window budget, the one with the lowest load-to-budget
// fraction (walk order breaks ties). Zero-weight servers — drained or
// unready — have zero budget and are never chosen.
func (r *Ring) pickReplica(idx, replicas int) (int, bool) {
	if replicas > MaxReplicas {
		replicas = MaxReplicas
	}
	if replicas > r.cfg.Servers {
		replicas = r.cfg.Servers
	}
	var cand [MaxReplicas]int
	k := r.successorsAt(idx, cand[:replicas])
	best, bestFrac := -1, 0.0
	for i := 0; i < k; i++ {
		s := cand[i]
		if float64(r.loads[s]) >= r.budgets[s] {
			continue
		}
		frac := float64(r.loads[s]) / r.budgets[s]
		if best < 0 || frac < bestFrac {
			best, bestFrac = s, frac
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// successorsAt fills dst with distinct servers in ring-walk order starting
// at entry index start, returning how many it found.
func (r *Ring) successorsAt(start int, dst []int) int {
	count := 0
	for off := 0; off < len(r.ring) && count < len(dst); off++ {
		i := start + off
		if i >= len(r.ring) {
			i -= len(r.ring)
		}
		s := r.ring[i].server
		dup := false
		for j := 0; j < count; j++ {
			if dst[j] == s {
				dup = true
				break
			}
		}
		if !dup {
			dst[count] = s
			count++
		}
	}
	return count
}

// Successors fills dst with the first len(dst) distinct servers on the ring
// walk from id's hash position — dst[0] is the primary hash target, the rest
// are the replica successors — and returns how many were found. It reads
// only construction-time state, so concurrent callers (the proxy's peer-fill
// path) need no serialization.
func (r *Ring) Successors(id uint64, dst []int) int {
	return r.successorsAt(r.lookupIdx(routeHash(id)), dst)
}

// SuccessorOf returns the node that inherits the plurality of server's
// keyspace when it leaves the ring: for each of server's vnodes the next
// distinct server clockwise takes over that arc, and the most frequent such
// inheritor (lowest index on ties) is the natural target for a drain-time
// state handoff. Reads only construction-time state — safe for concurrent
// callers. Returns -1 on a single-server ring.
func (r *Ring) SuccessorOf(server int) int {
	votes := make([]int, r.cfg.Servers)
	for i := range r.ring {
		if r.ring[i].server != server {
			continue
		}
		for off := 1; off <= len(r.ring); off++ {
			j := i + off
			if j >= len(r.ring) {
				j -= len(r.ring)
			}
			if s := r.ring[j].server; s != server {
				votes[s]++
				break
			}
		}
	}
	best := -1
	for s, v := range votes {
		if s == server || v == 0 {
			continue
		}
		if best < 0 || v > votes[best] {
			best = s
		}
	}
	return best
}
