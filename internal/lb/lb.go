// Package lb models the CDN load-balancing layer of §2.1: content-aware
// request routing over a server cluster using consistent hashing with
// bounded loads, re-evaluated periodically (the DNS-TTL analogue). Its role
// in the reproduction is to *generate* the per-server traffic-mix shifts
// that motivate Darwin: as capacities or demand change, the balancer spills
// traffic between servers, so the request sub-stream any one server sees
// changes composition over time — even when the global workload is stable.
package lb

import (
	"fmt"
	"hash/fnv"
	"sort"

	"darwin/internal/trace"
)

// Config parameterises a cluster balancer.
type Config struct {
	// Servers is the cluster size.
	Servers int
	// VirtualNodes per server on the hash ring (default 64).
	VirtualNodes int
	// LoadFactor is the bounded-loads ε: within one rebalance window a
	// server accepts at most (1+ε)·(window requests / servers)·weight
	// requests before spilling to its ring successor (default 0.25).
	LoadFactor float64
	// RebalanceEvery is the window length in requests between load resets —
	// the small-TTL DNS re-evaluation of §2.1 (default 10_000).
	RebalanceEvery int
	// Weights scales each server's capacity share; nil means uniform. A
	// WeightSchedule (if set) overrides Weights per window.
	Weights []float64
	// WeightSchedule, when non-nil, returns the capacity weights for a given
	// rebalance window — modelling drains, flash crowds, and capacity
	// changes that shift traffic mixes between servers.
	WeightSchedule func(window int) []float64
	// Readiness, when non-nil, scales each server's effective weight by its
	// health at every rebalance boundary: 1 for a fully ready server, 0 for
	// one that must receive no new traffic (draining, or its origin circuit
	// breaker is open), fractions for partial capacity. This is how the
	// serving tier's /readyz surface feeds back into routing — an unready
	// edge sheds its ring weight and the bounded-loads spill redistributes
	// its share to ring successors until it recovers.
	Readiness func(window, server int) float64
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 0.25
	}
	if c.RebalanceEvery <= 0 {
		c.RebalanceEvery = 10_000
	}
	return c
}

// Balancer routes requests to server indices.
type Balancer struct {
	cfg     Config
	ring    []ringEntry
	loads   []int
	weights []float64
	window  int
	n       int // requests in the current window
}

type ringEntry struct {
	hash   uint64
	server int
}

// New builds a balancer.
func New(cfg Config) (*Balancer, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("lb: Servers must be > 0, got %d", cfg.Servers)
	}
	if cfg.Weights != nil && len(cfg.Weights) != cfg.Servers {
		return nil, fmt.Errorf("lb: %d weights for %d servers", len(cfg.Weights), cfg.Servers)
	}
	cfg = cfg.withDefaults()
	b := &Balancer{
		cfg:   cfg,
		loads: make([]int, cfg.Servers),
	}
	for s := 0; s < cfg.Servers; s++ {
		for v := 0; v < cfg.VirtualNodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "server-%d-vnode-%d", s, v)
			b.ring = append(b.ring, ringEntry{hash: h.Sum64(), server: s})
		}
	}
	sort.Slice(b.ring, func(i, j int) bool { return b.ring[i].hash < b.ring[j].hash })
	b.weights = b.windowWeights(0)
	return b, nil
}

func (b *Balancer) windowWeights(window int) []float64 {
	var w []float64
	switch {
	case b.cfg.WeightSchedule != nil:
		w = b.cfg.WeightSchedule(window)
	case b.cfg.Weights != nil:
		w = b.cfg.Weights
	}
	out := make([]float64, b.cfg.Servers)
	for i := range out {
		out[i] = 1
		if i < len(w) && w[i] >= 0 {
			out[i] = w[i]
		}
		if b.cfg.Readiness != nil {
			if r := b.cfg.Readiness(window, i); r >= 0 && r < 1 {
				out[i] *= r
			}
		}
	}
	return out
}

// Window returns the current rebalance window index.
func (b *Balancer) Window() int { return b.window }

// Route returns the server index for one request and advances the balancer's
// load accounting.
func (b *Balancer) Route(r trace.Request) int {
	if b.n >= b.cfg.RebalanceEvery {
		b.window++
		b.n = 0
		for i := range b.loads {
			b.loads[i] = 0
		}
		b.weights = b.windowWeights(b.window)
	}
	b.n++

	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(r.ID >> (8 * i))
	}
	h.Write(buf[:])
	target := b.lookup(h.Sum64())

	// Bounded loads: spill clockwise past servers over their window budget.
	var totalWeight float64
	for _, w := range b.weights {
		totalWeight += w
	}
	for probe := 0; probe < b.cfg.Servers; probe++ {
		s := (target + probe) % b.cfg.Servers
		budget := 1.0
		if totalWeight > 0 {
			budget = (1 + b.cfg.LoadFactor) * float64(b.cfg.RebalanceEvery) * b.weights[s] / totalWeight
		}
		if float64(b.loads[s]) < budget {
			b.loads[s]++
			return s
		}
	}
	// Every server over budget (extreme skew): fall back to the hash target.
	b.loads[target]++
	return target
}

// lookup finds the ring successor of hash.
func (b *Balancer) lookup(hash uint64) int {
	i := sort.Search(len(b.ring), func(i int) bool { return b.ring[i].hash >= hash })
	if i == len(b.ring) {
		i = 0
	}
	return b.ring[i].server
}

// Split routes an entire trace through the balancer and returns each
// server's sub-trace, preserving timestamps. This is how the reproduction
// derives "per-server production traces" — sub-streams whose composition
// shifts at rebalance boundaries — from one global workload.
func Split(tr *trace.Trace, cfg Config) ([]*trace.Trace, error) {
	b, err := New(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*trace.Trace, b.cfg.Servers)
	for s := range out {
		out[s] = &trace.Trace{Name: fmt.Sprintf("%s-server%d", tr.Name, s)}
	}
	for _, r := range tr.Requests {
		s := b.Route(r)
		out[s].Requests = append(out[s].Requests, r)
	}
	return out, nil
}
