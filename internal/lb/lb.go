// Package lb models the CDN load-balancing layer of §2.1: content-aware
// request routing over a server cluster using consistent hashing with
// bounded loads, re-evaluated periodically (the DNS-TTL analogue). Its role
// in the reproduction is twofold. Offline, Split *generates* the per-server
// traffic-mix shifts that motivate Darwin: as capacities or demand change,
// the balancer spills traffic between servers, so the request sub-stream any
// one server sees changes composition over time — even when the global
// workload is stable. Online, the same Ring routes live HTTP traffic in the
// front tier (server.Front), where the Readiness hook is fed from backend
// /readyz probes and a Replicator widens hot objects over ring successors.
package lb

import (
	"fmt"
	"sort"

	"darwin/internal/trace"
)

// Config parameterises a cluster balancer.
type Config struct {
	// Servers is the cluster size.
	Servers int
	// VirtualNodes per server on the hash ring (default 64).
	VirtualNodes int
	// LoadFactor is the bounded-loads ε: within one rebalance window a
	// server accepts at most (1+ε)·(window requests / servers)·weight
	// requests before spilling to its ring successor (default 0.25).
	LoadFactor float64
	// RebalanceEvery is the window length in requests between load resets —
	// the small-TTL DNS re-evaluation of §2.1 (default 10_000).
	RebalanceEvery int
	// Weights scales each server's capacity share; nil means uniform. A
	// WeightSchedule (if set) overrides Weights per window.
	Weights []float64
	// WeightSchedule, when non-nil, returns the capacity weights for a given
	// rebalance window — modelling drains, flash crowds, and capacity
	// changes that shift traffic mixes between servers.
	WeightSchedule func(window int) []float64
	// Readiness, when non-nil, scales each server's effective weight by its
	// health at every rebalance boundary: 1 for a fully ready server, 0 for
	// one that must receive no new traffic (draining, or its origin circuit
	// breaker is open), fractions for partial capacity. This is how the
	// serving tier's /readyz surface feeds back into routing — an unready
	// edge sheds its ring weight and the bounded-loads spill redistributes
	// its share to ring successors until it recovers.
	Readiness func(window, server int) float64
}

func (c Config) validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("lb: Servers must be > 0, got %d", c.Servers)
	}
	if c.Weights != nil && len(c.Weights) != c.Servers {
		return fmt.Errorf("lb: %d weights for %d servers", len(c.Weights), c.Servers)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 0.25
	}
	if c.RebalanceEvery <= 0 {
		c.RebalanceEvery = 10_000
	}
	return c
}

// Balancer routes requests to server indices: a thin adapter that drives a
// Ring with the lazy full-window cadence (every RebalanceEvery requests).
type Balancer struct {
	ring *Ring
}

type ringEntry struct {
	hash   uint64
	server int
}

func sortRingEntries(ring []ringEntry) {
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
}

// New builds a balancer.
func New(cfg Config) (*Balancer, error) {
	r, err := NewRing(cfg)
	if err != nil {
		return nil, err
	}
	return &Balancer{ring: r}, nil
}

// Window returns the current rebalance window index.
func (b *Balancer) Window() int { return b.ring.Window() }

// Route returns the server index for one request and advances the balancer's
// load accounting.
func (b *Balancer) Route(r trace.Request) int {
	return b.ring.Route(r.ID)
}

// Split routes an entire trace through a ring and returns each server's
// sub-trace, preserving timestamps. This is how the reproduction derives
// "per-server production traces" — sub-streams whose composition shifts at
// rebalance boundaries — from one global workload. Because the trace length
// is known up front, Split begins each window with its exact request count:
// the final window of a trace that does not divide RebalanceEvery gets
// budgets scaled to the requests actually remaining, so a readiness or
// weight change in that window still bites (a full-window budget would
// otherwise dwarf the partial window's traffic and the re-weighting would be
// silently dropped).
func Split(tr *trace.Trace, cfg Config) ([]*trace.Trace, error) {
	rg, err := NewRing(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*trace.Trace, rg.cfg.Servers)
	for s := range out {
		out[s] = &trace.Trace{Name: fmt.Sprintf("%s-server%d", tr.Name, s)}
	}
	reqs := tr.Requests
	every := rg.cfg.RebalanceEvery
	for start, window := 0, 0; start < len(reqs); start, window = start+every, window+1 {
		end := start + every
		if end > len(reqs) {
			end = len(reqs)
		}
		rg.BeginWindow(window, end-start)
		for _, r := range reqs[start:end] {
			s := rg.Route(r.ID)
			out[s].Requests = append(out[s].Requests, r)
		}
	}
	return out, nil
}
