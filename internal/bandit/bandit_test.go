package bandit

import (
	"math"
	"testing"
)

// uniformSigma builds a K×K matrix with every entry = v.
func uniformSigma(k int, v float64) [][]float64 {
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
		for j := range out[i] {
			out[i][j] = v
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(uniformSigma(1, 0.1))); err == nil {
		t.Error("single arm accepted")
	}
	bad := uniformSigma(3, 0.1)
	bad[1] = bad[1][:2]
	if _, err := New(DefaultConfig(bad)); err == nil {
		t.Error("ragged matrix accepted")
	}
	neg := uniformSigma(2, 0.1)
	neg[0][1] = -1
	if _, err := New(DefaultConfig(neg)); err == nil {
		t.Error("negative variance accepted")
	}
	inf := uniformSigma(2, 0.1)
	inf[0][0] = math.Inf(1)
	if _, err := New(DefaultConfig(inf)); err == nil {
		t.Error("infinite own-arm variance accepted")
	}
	cfg := DefaultConfig(uniformSigma(2, 0.1))
	cfg.Delta = 0
	if _, err := New(cfg); err == nil {
		t.Error("delta=0 accepted")
	}
}

func TestInitialisationPlaysEachArmOnce(t *testing.T) {
	alg, err := New(DefaultConfig(uniformSigma(4, 0.05)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for r := 0; r < 4; r++ {
		arm := alg.NextArm()
		if seen[arm] {
			t.Fatalf("arm %d played twice during initialisation", arm)
		}
		seen[arm] = true
		rw := make([]float64, 4)
		if err := alg.Update(arm, rw); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 4 {
		t.Fatal("not all arms initialised")
	}
}

func TestUpdateValidation(t *testing.T) {
	alg, _ := New(DefaultConfig(uniformSigma(2, 0.1)))
	if err := alg.Update(5, []float64{0, 0}); err == nil {
		t.Error("out-of-range arm accepted")
	}
	if err := alg.Update(0, []float64{0}); err == nil {
		t.Error("short reward vector accepted")
	}
}

func TestEstimatorWeighting(t *testing.T) {
	// Two arms; arm 0's samples for arm 1 have high variance (1.0), arm 1's
	// own samples low variance (0.01). The estimator must weight low-variance
	// samples 100x more.
	sigma2 := [][]float64{{0.01, 1.0}, {1.0, 0.01}}
	cfg := DefaultConfig(sigma2)
	cfg.StabilityRounds = 0 // don't stop during this test
	alg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Play arm 0: noisy sample says arm 1 has reward 1.0.
	if err := alg.Update(0, []float64{0.5, 1.0}); err != nil {
		t.Fatal(err)
	}
	// Play arm 1: precise sample says arm 1 has reward 0.2.
	if err := alg.Update(1, []float64{0.5, 0.2}); err != nil {
		t.Fatal(err)
	}
	mu := alg.Estimates()
	// Weighted: (1.0/1 + 0.2/0.01)/(1/1 + 1/0.01) = 21/101 ≈ 0.208.
	want := (1.0/1 + 0.2/0.01) / (1/1.0 + 1/0.01)
	if math.Abs(mu[1]-want) > 1e-9 {
		t.Fatalf("mu[1] = %v, want %v", mu[1], want)
	}
}

func TestPhiClosedForm(t *testing.T) {
	// Two arms, uniform allocation, equal variances.
	nu := []float64{0.6, 0.4}
	alpha := []float64{0.5, 0.5}
	sigma2 := uniformSigma(2, 0.1)
	// w_k = 0.5/0.1 + 0.5/0.1 = 10 for both; Φ = 10·10·0.04/(2·20) = 0.1.
	got := Phi(nu, alpha, sigma2)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Phi = %v, want 0.1", got)
	}
}

func TestPhiZeroWhenTied(t *testing.T) {
	nu := []float64{0.5, 0.5}
	if got := Phi(nu, []float64{0.5, 0.5}, uniformSigma(2, 0.1)); got != 0 {
		t.Fatalf("Phi of tied means = %v, want 0", got)
	}
}

func TestPhiHomogeneous(t *testing.T) {
	nu := []float64{0.7, 0.5, 0.3}
	sigma2 := uniformSigma(3, 0.2)
	alpha := []float64{0.2, 0.5, 0.3}
	scaled := []float64{2, 5, 3} // 10x
	a, b := Phi(nu, alpha, sigma2), Phi(nu, scaled, sigma2)
	if math.Abs(b-10*a) > 1e-9 {
		t.Fatalf("Phi not 1-homogeneous: %v vs %v", a, b)
	}
}

func TestSolveAlphaSimplex(t *testing.T) {
	nu := []float64{0.6, 0.5, 0.3}
	sigma2 := uniformSigma(3, 0.1)
	alpha := SolveAlpha(nu, sigma2)
	var sum float64
	for _, a := range alpha {
		if a < 0 {
			t.Fatalf("negative allocation %v", alpha)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("allocation sums to %v", sum)
	}
}

func TestSolveAlphaImprovesOverUniform(t *testing.T) {
	// With standard feedback (no side info) and one arm much weaker, the
	// optimal allocation should spend less on the weak arm than uniform and
	// achieve a strictly larger Φ.
	nu := []float64{0.6, 0.55, 0.1}
	sigma2 := StandardSigma2([]float64{0.1, 0.1, 0.1})
	alpha := SolveAlpha(nu, sigma2)
	uniform := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if Phi(nu, alpha, sigma2) <= Phi(nu, uniform, sigma2) {
		t.Fatalf("solved Φ %.6f not above uniform %.6f (alpha=%v)",
			Phi(nu, alpha, sigma2), Phi(nu, uniform, sigma2), alpha)
	}
	if alpha[2] >= uniform[2] {
		t.Fatalf("weak arm over-allocated: %v", alpha)
	}
}

func TestSolveAlphaDegenerateTies(t *testing.T) {
	alpha := SolveAlpha([]float64{0.5, 0.5}, uniformSigma(2, 0.1))
	if math.Abs(alpha[0]-0.5) > 1e-9 {
		t.Fatalf("tied means should give uniform, got %v", alpha)
	}
}

func TestIdentifiesBestArmWithSideInfo(t *testing.T) {
	mu := []float64{0.30, 0.45, 0.38, 0.25}
	sigma2 := uniformSigma(4, 0.02)
	env, err := NewEnv(mu, sigma2, 99)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	var totalRounds int
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		env.rng.Seed(int64(1000 + trial))
		alg, err := New(DefaultConfig(sigma2))
		if err != nil {
			t.Fatal(err)
		}
		best, rounds, err := Run(alg, env, 500)
		if err != nil {
			t.Fatal(err)
		}
		totalRounds += rounds
		if best == 1 {
			correct++
		}
	}
	// The practical 5-round stability rule trades some confidence for speed
	// (the δ-sound guarantee belongs to the threshold rule), so expect a
	// large majority rather than δ-level accuracy here.
	if correct < 24 {
		t.Fatalf("identified best arm in only %d/%d trials", correct, trials)
	}
	if avg := float64(totalRounds) / trials; avg > 200 {
		t.Fatalf("average rounds %.1f too high", avg)
	}
}

func TestSideInfoFasterThanStandard(t *testing.T) {
	// The headline theoretical claim (Theorem 2): with side information the
	// stopping time does not scale with K; with standard feedback it does.
	mu := []float64{0.50, 0.40, 0.38, 0.36, 0.34, 0.32, 0.30, 0.28}
	k := len(mu)
	side := uniformSigma(k, 0.02)
	std := StandardSigma2(repeat(0.02, k))

	avgRounds := func(sigma2 [][]float64) float64 {
		var total int
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			env, err := NewEnv(mu, sigma2, int64(500+trial))
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(sigma2)
			cfg.StabilityRounds = 5
			alg, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			_, rounds, err := Run(alg, env, 2000)
			if err != nil {
				t.Fatal(err)
			}
			total += rounds
		}
		return float64(total) / trials
	}

	withSide := avgRounds(side)
	withStd := avgRounds(std)
	if withSide >= withStd {
		t.Fatalf("side info (%.1f rounds) not faster than standard feedback (%.1f)", withSide, withStd)
	}
}

func TestStabilityStopReason(t *testing.T) {
	sigma2 := uniformSigma(2, 0.05)
	env, err := NewEnv([]float64{0.8, 0.2}, sigma2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(sigma2)
	cfg.C = 1e-9 // make the theoretical threshold unreachable
	cfg.StabilityRounds = 5
	alg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, _, err := Run(alg, env, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !alg.Stopped() {
		t.Fatal("did not stop")
	}
	if best != 0 {
		t.Fatalf("recommended arm %d, want 0", best)
	}
	if alg.StopReason() != "stability" {
		t.Fatalf("reason = %q", alg.StopReason())
	}
}

func TestMaxRoundsStop(t *testing.T) {
	sigma2 := uniformSigma(2, 0.25)
	env, err := NewEnv([]float64{0.5, 0.5}, sigma2, 8) // indistinguishable arms
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(sigma2)
	cfg.StabilityRounds = 0
	cfg.MaxRounds = 30
	alg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, rounds, err := Run(alg, env, 10000); err != nil {
		t.Fatal(err)
	} else if rounds != 30 {
		t.Fatalf("rounds = %d, want 30", rounds)
	}
	if alg.StopReason() != "max-rounds" {
		t.Fatalf("reason = %q", alg.StopReason())
	}
}

func TestStandardSigma2Shape(t *testing.T) {
	m := StandardSigma2([]float64{0.1, 0.2})
	if m[0][0] != 0.1 || m[1][1] != 0.2 {
		t.Fatal("diagonal wrong")
	}
	if !math.IsInf(m[0][1], 1) || !math.IsInf(m[1][0], 1) {
		t.Fatal("off-diagonal must be +Inf")
	}
}

func TestBetaGrowsWithT(t *testing.T) {
	alg, err := New(DefaultConfig(uniformSigma(3, 0.1)))
	if err != nil {
		t.Fatal(err)
	}
	rewards := []float64{0, 0, 0}
	var prev float64
	for r := 0; r < 5; r++ {
		alg.Update(alg.NextArm(), rewards)
		b := alg.Beta()
		if b <= prev {
			t.Fatalf("beta not increasing at round %d: %v <= %v", r, b, prev)
		}
		prev = b
	}
}

func TestEnvValidation(t *testing.T) {
	if _, err := NewEnv([]float64{1}, uniformSigma(2, 0.1), 1); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func BenchmarkSolveAlpha(b *testing.B) {
	nu := make([]float64, 12)
	for i := range nu {
		nu[i] = 0.5 - 0.02*float64(i)
	}
	sigma2 := uniformSigma(12, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveAlpha(nu, sigma2)
	}
}
