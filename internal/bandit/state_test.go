package bandit

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func testSigma2() [][]float64 {
	return [][]float64{
		{0.01, 0.02, 0.04},
		{0.02, 0.01, 0.02},
		{0.04, 0.02, 0.01},
	}
}

func TestStateRoundTrip(t *testing.T) {
	cfg := DefaultConfig(testSigma2())
	cfg.StabilityRounds = 0 // keep it running so we snapshot mid-flight
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mus := []float64{0.3, 0.5, 0.45}
	x := uint64(1)
	for r := 0; r < 25; r++ {
		arm := a.NextArm()
		rewards := make([]float64, 3)
		for j := range rewards {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			noise := (float64(x%1000)/1000 - 0.5) * 0.1
			rewards[j] = mus[j] + noise
		}
		if err := a.Update(arm, rewards); err != nil {
			t.Fatal(err)
		}
	}

	st := a.State()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetState(&decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatalf("state diverges after round trip:\n a=%+v\n b=%+v", a.State(), b.State())
	}
	// The restored run must make identical decisions forever after.
	for r := 0; r < 10; r++ {
		armA, armB := a.NextArm(), b.NextArm()
		if armA != armB {
			t.Fatalf("round %d: arms diverge (%d vs %d)", r, armA, armB)
		}
		rewards := []float64{0.3, 0.5, 0.45}
		if err := a.Update(armA, rewards); err != nil {
			t.Fatal(err)
		}
		if err := b.Update(armB, rewards); err != nil {
			t.Fatal(err)
		}
		if a.Stopped() != b.Stopped() || a.Recommendation() != b.Recommendation() {
			t.Fatalf("round %d: stop/recommendation diverge", r)
		}
	}
}

func TestSetStateRejectsInvalid(t *testing.T) {
	a, err := New(DefaultConfig(testSigma2()))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Update(a.NextArm(), []float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	before := a.State()
	good := a.State()

	cases := []struct {
		name string
		mut  func(st *State)
	}{
		{"nil", nil},
		{"short-plays", func(st *State) { st.Plays = st.Plays[:1] }},
		{"negative-t", func(st *State) { st.T = -1 }},
		{"negative-play", func(st *State) { st.Plays[0] = -2 }},
		{"plays-sum-mismatch", func(st *State) { st.T = 99 }},
		{"nan-mu", func(st *State) { st.Mu[1] = math.NaN() }},
		{"inf-sumwy", func(st *State) { st.SumWY[0] = math.Inf(1) }},
		{"negative-rho", func(st *State) { st.Rho[2] = -1 }},
		{"last-out-of-range", func(st *State) { st.Last = 7 }},
		{"negative-stable", func(st *State) { st.Stable = -1 }},
		{"bogus-reason", func(st *State) { st.Reason = "vibes" }},
		{"done-no-reason", func(st *State) { st.Done = true; st.Reason = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var bad *State
			if tc.mut != nil {
				blob, _ := json.Marshal(good)
				bad = &State{}
				if err := json.Unmarshal(blob, bad); err != nil {
					t.Fatal(err)
				}
				tc.mut(bad)
			}
			if err := a.SetState(bad); err == nil {
				t.Fatal("invalid state accepted")
			}
			if !reflect.DeepEqual(a.State(), before) {
				t.Fatal("failed SetState mutated the algorithm")
			}
		})
	}
}
