// Package bandit implements Darwin's best-arm identification algorithm,
// Track and Stop with Side Information (Algorithm 1 of the paper, §4.2).
//
// The setting: K experts (arms); deploying expert i for one round yields a
// real reward for i and *fictitious* reward samples for every other expert j,
// produced by the cross-expert predictors. Each sample Y_j(t) observed while
// arm E_t is deployed is modelled as Gaussian with mean μ_j and a known
// deployment-dependent variance σ²_{E_t,j}, encoded in the side-information
// matrix Σ. An entry of +Inf means "no observation of j while playing i",
// which recovers the standard bandit feedback model — used here for the
// ablation comparing against classical Track and Stop.
//
// The algorithm keeps the variance-weighted estimators of Equation (1),
// solves the allocation program of Equations (2)–(3) each round, deploys the
// most under-played arm relative to the optimal allocation (D-tracking), and
// stops when the information level Z_t = Φ(μ̂_t, T(t)) crosses the threshold
// β_t(δ, Σ) of Theorem 1 — or, as in the paper's evaluation (§6.2), when the
// empirically best arm has been stable for a configurable number of
// consecutive rounds.
package bandit

import (
	"fmt"
	"math"
)

// Config parameterises the algorithm.
type Config struct {
	// Sigma2 is the K×K side-information matrix: Sigma2[i][j] is the variance
	// of the reward sample for arm j collected while arm i is deployed.
	// +Inf marks unobserved pairs.
	Sigma2 [][]float64
	// Delta is the failure probability δ for the δ-sound stopping rule.
	Delta float64
	// M bounds rewards: |Y| <= M with probability >= 1-δ/2 (hit rates: 1).
	M float64
	// C is the concentration constant in β_t(δ, Σ) (Theorem 1).
	C float64
	// StabilityRounds stops when the same arm has been empirically best for
	// this many consecutive rounds (the paper's practical criterion, §6.2,
	// Figure 5d). 0 disables the practical rule.
	StabilityRounds int
	// Uniform selects round-robin deployment instead of D-tracking (an
	// ablation baseline).
	Uniform bool
	// MaxRounds force-stops after this many rounds; 0 means unbounded.
	MaxRounds int
}

// DefaultConfig returns the reproduction defaults: δ=0.05, M=1, C=100, the
// paper's 5-round stability rule.
func DefaultConfig(sigma2 [][]float64) Config {
	return Config{Sigma2: sigma2, Delta: 0.05, M: 1, C: 100, StabilityRounds: 5}
}

// Algorithm is the mutable state of one identification run.
type Algorithm struct {
	cfg    Config
	k      int
	t      int       // completed rounds
	plays  []int     // T_i(t)
	sumWY  []float64 // Σ_n Y_i(n) / σ²_{E_n,i}
	rho    []float64 // Σ_n 1 / σ²_{E_n,i}
	mu     []float64 // current estimates μ̂_i(t)
	stable int       // consecutive post-init rounds with the same best arm
	last   int       // empirically best arm after the previous round
	done   bool
	reason string
}

// New validates cfg and returns a fresh run.
func New(cfg Config) (*Algorithm, error) {
	k := len(cfg.Sigma2)
	if k < 2 {
		return nil, fmt.Errorf("bandit: need at least 2 arms, got %d", k)
	}
	for i, row := range cfg.Sigma2 {
		if len(row) != k {
			return nil, fmt.Errorf("bandit: Sigma2 row %d has %d entries, want %d", i, len(row), k)
		}
		if !(row[i] > 0) || math.IsInf(row[i], 1) {
			return nil, fmt.Errorf("bandit: own-arm variance Sigma2[%d][%d] must be positive and finite", i, i)
		}
		for j, v := range row {
			if !(v > 0) {
				return nil, fmt.Errorf("bandit: Sigma2[%d][%d] = %v must be > 0", i, j, v)
			}
		}
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("bandit: Delta must be in (0,1), got %v", cfg.Delta)
	}
	if cfg.M <= 0 {
		cfg.M = 1
	}
	if cfg.C <= 0 {
		cfg.C = 100
	}
	return &Algorithm{
		cfg:   cfg,
		k:     k,
		plays: make([]int, k),
		sumWY: make([]float64, k),
		rho:   make([]float64, k),
		mu:    make([]float64, k),
		last:  -1,
	}, nil
}

// K returns the number of arms.
func (a *Algorithm) K() int { return a.k }

// Rounds returns the number of completed rounds.
func (a *Algorithm) Rounds() int { return a.t }

// Plays returns a copy of the per-arm deployment counts.
func (a *Algorithm) Plays() []int { return append([]int(nil), a.plays...) }

// Estimates returns a copy of the current mean-reward estimates.
func (a *Algorithm) Estimates() []float64 { return append([]float64(nil), a.mu...) }

// NextArm returns the arm to deploy next (Line 2 and Line 5 of Algorithm 1).
func (a *Algorithm) NextArm() int {
	// Initialisation: play each arm once.
	for i, p := range a.plays {
		if p == 0 {
			return i
		}
	}
	if a.cfg.Uniform {
		return a.t % a.k
	}
	// Forced exploration (D-tracking): keep every arm's count above
	// sqrt(t) - K/2 so estimates cannot starve.
	minArm, minPlays := 0, a.plays[0]
	for i, p := range a.plays {
		if p < minPlays {
			minArm, minPlays = i, p
		}
	}
	if float64(minPlays) < math.Sqrt(float64(a.t))-float64(a.k)/2 {
		return minArm
	}
	alpha := SolveAlpha(a.mu, a.cfg.Sigma2)
	best, bestGap := 0, math.Inf(-1)
	for i := 0; i < a.k; i++ {
		gap := float64(a.t)*alpha[i] - float64(a.plays[i])
		if gap > bestGap {
			best, bestGap = i, gap
		}
	}
	return best
}

// Update ingests the reward vector of one round in which arm was deployed.
// rewards[j] is the (real or fictitious) sample Y_j(t); entries whose
// Sigma2[arm][j] is +Inf are ignored.
func (a *Algorithm) Update(arm int, rewards []float64) error {
	if arm < 0 || arm >= a.k {
		return fmt.Errorf("bandit: arm %d out of range", arm)
	}
	if len(rewards) != a.k {
		return fmt.Errorf("bandit: got %d rewards, want %d", len(rewards), a.k)
	}
	for j := 0; j < a.k; j++ {
		s2 := a.cfg.Sigma2[arm][j]
		if math.IsInf(s2, 1) {
			continue
		}
		a.sumWY[j] += rewards[j] / s2
		a.rho[j] += 1 / s2
		if a.rho[j] > 0 {
			a.mu[j] = a.sumWY[j] / a.rho[j]
		}
	}
	a.plays[arm]++
	a.t++
	a.checkStop()
	return nil
}

// checkStop evaluates both stopping rules after a completed round.
func (a *Algorithm) checkStop() {
	if a.done {
		return
	}
	// All arms must have been tried before any stop is meaningful; the
	// initialization sweep does not count toward stability.
	for _, p := range a.plays {
		if p == 0 {
			a.last = -1
			a.stable = 0
			return
		}
	}
	// Practical rule (§6.2): the bandit's selected (empirically best) expert
	// has been the same for StabilityRounds consecutive post-init rounds.
	best := argmax(a.mu)
	if best == a.last {
		a.stable++
	} else {
		a.stable = 1
		a.last = best
	}
	if a.cfg.StabilityRounds > 0 && a.stable >= a.cfg.StabilityRounds {
		a.done = true
		a.reason = "stability"
		return
	}
	z := a.information()
	if z >= a.Beta() {
		a.done = true
		a.reason = "threshold"
		return
	}
	if a.cfg.MaxRounds > 0 && a.t >= a.cfg.MaxRounds {
		a.done = true
		a.reason = "max-rounds"
	}
}

// information computes Z_t = Φ(μ̂_t, T(t)) using the deployment counts as the
// (unnormalised) allocation; Φ is 1-homogeneous in its allocation argument.
func (a *Algorithm) information() float64 {
	counts := make([]float64, a.k)
	for i, p := range a.plays {
		counts[i] = float64(p)
	}
	return Phi(a.mu, counts, a.cfg.Sigma2)
}

// Information exposes Z_t for diagnostics.
func (a *Algorithm) Information() float64 { return a.information() }

// Beta returns the Theorem-1 threshold β_t(δ, Σ) at the current round.
func (a *Algorithm) Beta() float64 {
	s2min, s2max := sigmaRange(a.cfg.Sigma2)
	kappa := s2min / s2max
	t := float64(a.t)
	k := float64(a.k)
	return k*t/(2*kappa) +
		k*a.cfg.M*a.cfg.M/(2*s2min*kappa*math.Sqrt(a.cfg.C))*
			math.Sqrt(t*math.Log(2/a.cfg.Delta))
}

// Stopped reports whether a stopping rule has fired.
func (a *Algorithm) Stopped() bool { return a.done }

// StopReason returns "stability", "threshold", "max-rounds", or "" while
// running.
func (a *Algorithm) StopReason() string { return a.reason }

// Recommendation returns ψ(μ̂) = argmax μ̂_i, the recommended best arm.
func (a *Algorithm) Recommendation() int { return argmax(a.mu) }

// Phi evaluates Equation (2) in closed form for Gaussian rewards:
//
//	Φ(ν, α) = ½ · min_{k≠k*} (w_{k*} · w_k · Δ_k²) / (w_{k*} + w_k),
//
// where w_k = Σ_i α_i / σ²_{ik} is the information weight accumulated on arm
// k and Δ_k = ν_{k*} − ν_k. The inner infimum over alternative environments
// is attained by moving ν_{k*} and ν_k to their information-weighted mean.
func Phi(nu []float64, alpha []float64, sigma2 [][]float64) float64 {
	k := len(nu)
	star := argmax(nu)
	w := weights(alpha, sigma2)
	best := math.Inf(1)
	for j := 0; j < k; j++ {
		if j == star {
			continue
		}
		d := nu[star] - nu[j]
		var f float64
		switch {
		case w[star] == 0 || w[j] == 0:
			f = 0
		default:
			f = w[star] * w[j] * d * d / (2 * (w[star] + w[j]))
		}
		if f < best {
			best = f
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// weights computes w_k = Σ_i α_i / σ²_{ik}.
func weights(alpha []float64, sigma2 [][]float64) []float64 {
	k := len(alpha)
	w := make([]float64, k)
	for i := 0; i < k; i++ {
		if alpha[i] == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			s2 := sigma2[i][j]
			if math.IsInf(s2, 1) {
				continue
			}
			w[j] += alpha[i] / s2
		}
	}
	return w
}

// SolveAlpha numerically solves Equation (3): the allocation over the
// probability simplex maximising Φ(ν, ·). Φ is concave (a minimum of concave
// 1-homogeneous functions of the affine weights w), so exponentiated
// (sub)gradient ascent converges; 300 fixed iterations give allocations
// accurate to well under 1% in the K≤36 regimes used here.
func SolveAlpha(nu []float64, sigma2 [][]float64) []float64 {
	k := len(nu)
	alpha := make([]float64, k)
	for i := range alpha {
		alpha[i] = 1 / float64(k)
	}
	star := argmax(nu)
	unique := false
	for j := 0; j < k; j++ {
		if j != star && nu[j] != nu[star] {
			unique = true
		}
	}
	if !unique && k > 1 {
		return alpha // degenerate ties: uniform
	}
	grad := make([]float64, k)
	for iter := 1; iter <= 300; iter++ {
		w := weights(alpha, sigma2)
		// Active (minimising) alternative arm.
		minJ, minF := -1, math.Inf(1)
		for j := 0; j < k; j++ {
			if j == star || nu[j] == nu[star] {
				continue
			}
			d := nu[star] - nu[j]
			var f float64
			if w[star] == 0 || w[j] == 0 {
				f = 0
			} else {
				f = w[star] * w[j] * d * d / (2 * (w[star] + w[j]))
			}
			if f < minF {
				minJ, minF = j, f
			}
		}
		if minJ < 0 {
			return alpha
		}
		d := nu[star] - nu[minJ]
		// ∂f/∂w_star and ∂f/∂w_minJ for f = w_a·w_b·d²/(2(w_a+w_b)).
		wa, wb := w[star], w[minJ]
		var dfa, dfb float64
		if wa+wb > 0 {
			dfa = d * d / 2 * (wb / (wa + wb)) * (wb / (wa + wb))
			dfb = d * d / 2 * (wa / (wa + wb)) * (wa / (wa + wb))
		} else {
			dfa, dfb = d*d/2, d*d/2
		}
		var gmax float64
		for i := 0; i < k; i++ {
			grad[i] = 0
			if !math.IsInf(sigma2[i][star], 1) {
				grad[i] += dfa / sigma2[i][star]
			}
			if !math.IsInf(sigma2[i][minJ], 1) {
				grad[i] += dfb / sigma2[i][minJ]
			}
			if g := math.Abs(grad[i]); g > gmax {
				gmax = g
			}
		}
		if gmax == 0 {
			return alpha
		}
		eta := 0.3 / math.Sqrt(float64(iter))
		var sum float64
		for i := 0; i < k; i++ {
			alpha[i] *= math.Exp(eta * grad[i] / gmax)
			sum += alpha[i]
		}
		for i := 0; i < k; i++ {
			alpha[i] /= sum
		}
	}
	return alpha
}

// StandardSigma2 builds the side-information matrix of classical bandit
// feedback: playing arm i observes only arm i, with the given own-arm
// variances. Used by the no-side-information ablation.
func StandardSigma2(own []float64) [][]float64 {
	k := len(own)
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
		for j := range out[i] {
			if i == j {
				out[i][j] = own[i]
			} else {
				out[i][j] = math.Inf(1)
			}
		}
	}
	return out
}

func argmax(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range xs {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

func sigmaRange(sigma2 [][]float64) (min, max float64) {
	min, max = math.Inf(1), 0
	for _, row := range sigma2 {
		for _, v := range row {
			if math.IsInf(v, 1) {
				continue
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if math.IsInf(min, 1) {
		min, max = 1, 1
	}
	return min, max
}
