package bandit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomInstance builds a small random bandit instance from fuzz bytes.
func randomInstance(seed int64, k int) ([]float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	nu := make([]float64, k)
	for i := range nu {
		nu[i] = rng.Float64()
	}
	sigma2 := make([][]float64, k)
	for i := range sigma2 {
		sigma2[i] = make([]float64, k)
		for j := range sigma2[i] {
			sigma2[i][j] = 0.005 + rng.Float64()*0.2
		}
	}
	return nu, sigma2
}

// Φ is non-negative and exactly 1-homogeneous in the allocation for any
// random instance.
func TestPhiPropertiesQuick(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 2 + int(kRaw%5)
		nu, sigma2 := randomInstance(seed, k)
		rng := rand.New(rand.NewSource(seed + 1))
		alpha := make([]float64, k)
		for i := range alpha {
			alpha[i] = rng.Float64()
		}
		v := Phi(nu, alpha, sigma2)
		if v < 0 || math.IsNaN(v) {
			return false
		}
		scaled := make([]float64, k)
		for i := range scaled {
			scaled[i] = alpha[i] * 7
		}
		v7 := Phi(nu, scaled, sigma2)
		return math.Abs(v7-7*v) <= 1e-9*(1+math.Abs(v7))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// SolveAlpha always returns a simplex point whose Φ is at least as good as
// uniform (it maximises a concave function starting from uniform).
func TestSolveAlphaPropertiesQuick(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 2 + int(kRaw%5)
		nu, sigma2 := randomInstance(seed, k)
		alpha := SolveAlpha(nu, sigma2)
		var sum float64
		for _, a := range alpha {
			if a < -1e-12 || math.IsNaN(a) {
				return false
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		uniform := make([]float64, k)
		for i := range uniform {
			uniform[i] = 1 / float64(k)
		}
		// Allow a small tolerance: the subgradient iteration is approximate.
		return Phi(nu, alpha, sigma2) >= Phi(nu, uniform, sigma2)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The weighted estimator is invariant to the order in which (arm, reward)
// observations arrive.
func TestEstimatorOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		const k = 3
		nu, sigma2 := randomInstance(seed, k)
		_ = nu
		type obs struct {
			arm int
			y   []float64
		}
		rng := rand.New(rand.NewSource(seed))
		var observations []obs
		for n := 0; n < 20; n++ {
			y := make([]float64, k)
			for j := range y {
				y[j] = rng.Float64()
			}
			observations = append(observations, obs{arm: rng.Intn(k), y: y})
		}
		run := func(order []int) []float64 {
			cfg := DefaultConfig(sigma2)
			cfg.StabilityRounds = 0
			cfg.C = 1e-12
			alg, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range order {
				if err := alg.Update(observations[i].arm, observations[i].y); err != nil {
					t.Fatal(err)
				}
			}
			return alg.Estimates()
		}
		fwd := make([]int, len(observations))
		rev := make([]int, len(observations))
		for i := range fwd {
			fwd[i] = i
			rev[i] = len(observations) - 1 - i
		}
		a, b := run(fwd), run(rev)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
