package bandit

import (
	"fmt"
	"math"
	"math/rand"
)

// Env is the synthetic Gaussian reward environment of §4.2: deploying arm i
// yields, for every arm j with finite σ²_{ij}, an independent Gaussian sample
// with mean μ_j and variance σ²_{ij}. It is used by the unit tests and the
// side-information ablation benchmarks.
type Env struct {
	Mu     []float64
	Sigma2 [][]float64
	rng    *rand.Rand
}

// NewEnv builds an environment; Mu and Sigma2 dimensions must agree.
func NewEnv(mu []float64, sigma2 [][]float64, seed int64) (*Env, error) {
	if len(mu) != len(sigma2) {
		return nil, fmt.Errorf("bandit: %d means for %d arms", len(mu), len(sigma2))
	}
	return &Env{Mu: mu, Sigma2: sigma2, rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample draws the reward vector observed when arm is deployed. Entries with
// infinite variance are NaN (and ignored by Algorithm.Update through the
// matching Sigma2).
func (e *Env) Sample(arm int) []float64 {
	out := make([]float64, len(e.Mu))
	for j := range out {
		s2 := e.Sigma2[arm][j]
		if math.IsInf(s2, 1) {
			out[j] = math.NaN()
			continue
		}
		out[j] = e.Mu[j] + e.rng.NormFloat64()*math.Sqrt(s2)
	}
	return out
}

// Best returns the true best arm.
func (e *Env) Best() int { return argmax(e.Mu) }

// Run drives alg against env until it stops or maxRounds elapse, returning
// the recommendation and the number of rounds used.
func Run(alg *Algorithm, env *Env, maxRounds int) (best, rounds int, err error) {
	for !alg.Stopped() && alg.Rounds() < maxRounds {
		arm := alg.NextArm()
		if err := alg.Update(arm, env.Sample(arm)); err != nil {
			return 0, alg.Rounds(), err
		}
	}
	return alg.Recommendation(), alg.Rounds(), nil
}
