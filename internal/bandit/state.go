package bandit

import (
	"fmt"
	"math"
)

// State is a JSON-serialisable snapshot of an identification run. It captures
// everything Update mutates; Config (the Σ matrix and stopping constants) is
// deliberately excluded — the restorer reconstructs it from its own
// configuration and SetState validates dimensional agreement against it.
type State struct {
	T      int       `json:"t"`
	Plays  []int     `json:"plays"`
	SumWY  []float64 `json:"sum_wy"`
	Rho    []float64 `json:"rho"`
	Mu     []float64 `json:"mu"`
	Stable int       `json:"stable"`
	Last   int       `json:"last"`
	Done   bool      `json:"done"`
	Reason string    `json:"reason"`
}

// State returns a deep-copied snapshot of the run's mutable state.
func (a *Algorithm) State() *State {
	return &State{
		T:      a.t,
		Plays:  append([]int(nil), a.plays...),
		SumWY:  append([]float64(nil), a.sumWY...),
		Rho:    append([]float64(nil), a.rho...),
		Mu:     append([]float64(nil), a.mu...),
		Stable: a.stable,
		Last:   a.last,
		Done:   a.done,
		Reason: a.reason,
	}
}

// SetState restores a snapshot taken by State onto a run created with an
// equivalent Config. Every field is validated before anything is mutated; on
// error the receiver is unchanged.
func (a *Algorithm) SetState(st *State) error {
	if st == nil {
		return fmt.Errorf("bandit: nil state")
	}
	if len(st.Plays) != a.k || len(st.SumWY) != a.k || len(st.Rho) != a.k || len(st.Mu) != a.k {
		return fmt.Errorf("bandit: state arm count mismatch: plays=%d sumWY=%d rho=%d mu=%d, want %d",
			len(st.Plays), len(st.SumWY), len(st.Rho), len(st.Mu), a.k)
	}
	if st.T < 0 {
		return fmt.Errorf("bandit: negative round count %d", st.T)
	}
	total := 0
	for i, p := range st.Plays {
		if p < 0 {
			return fmt.Errorf("bandit: negative play count %d for arm %d", p, i)
		}
		total += p
	}
	if total != st.T {
		return fmt.Errorf("bandit: play counts sum to %d, want t=%d", total, st.T)
	}
	for i := 0; i < a.k; i++ {
		if math.IsNaN(st.SumWY[i]) || math.IsInf(st.SumWY[i], 0) ||
			math.IsNaN(st.Rho[i]) || math.IsInf(st.Rho[i], 0) ||
			math.IsNaN(st.Mu[i]) || math.IsInf(st.Mu[i], 0) {
			return fmt.Errorf("bandit: non-finite estimator state for arm %d", i)
		}
		if st.Rho[i] < 0 {
			return fmt.Errorf("bandit: negative precision %v for arm %d", st.Rho[i], i)
		}
	}
	if st.Last < -1 || st.Last >= a.k {
		return fmt.Errorf("bandit: last best arm %d out of range", st.Last)
	}
	if st.Stable < 0 {
		return fmt.Errorf("bandit: negative stability counter %d", st.Stable)
	}
	switch st.Reason {
	case "", "stability", "threshold", "max-rounds":
	default:
		return fmt.Errorf("bandit: unknown stop reason %q", st.Reason)
	}
	if st.Done && st.Reason == "" {
		return fmt.Errorf("bandit: done without a stop reason")
	}

	a.t = st.T
	copy(a.plays, st.Plays)
	copy(a.sumWY, st.SumWY)
	copy(a.rho, st.Rho)
	copy(a.mu, st.Mu)
	a.stable = st.Stable
	a.last = st.Last
	a.done = st.Done
	a.reason = st.Reason
	return nil
}
