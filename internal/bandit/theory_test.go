package bandit

import (
	"math"
	"testing"
)

// TestTheorem1Soundness verifies the δ-soundness claim empirically: with the
// stability rule disabled (threshold-only stopping), the fraction of runs
// recommending a wrong arm must stay below δ (with slack for finite trials).
func TestTheorem1Soundness(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// The Theorem-1 threshold β_t grows like K·t/(2κ), so it only fires when
	// Φ(ν, α*) exceeds K/(2κ): the arm gaps must be large relative to the
	// sample noise. Pick such an operating point.
	mu := []float64{0.8, 0.3, 0.25}
	k := len(mu)
	sigma2 := make([][]float64, k)
	for i := range sigma2 {
		sigma2[i] = make([]float64, k)
		for j := range sigma2[i] {
			sigma2[i][j] = 0.01
		}
	}
	const delta = 0.1
	const trials = 100
	wrong := 0
	stoppedByThreshold := 0
	for trial := 0; trial < trials; trial++ {
		env, err := NewEnv(mu, sigma2, int64(9000+trial))
		if err != nil {
			t.Fatal(err)
		}
		alg, err := New(Config{
			Sigma2: sigma2, Delta: delta, M: 1, C: 100,
			StabilityRounds: 0, MaxRounds: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		best, _, err := Run(alg, env, 500)
		if err != nil {
			t.Fatal(err)
		}
		if alg.StopReason() == "threshold" {
			stoppedByThreshold++
		}
		if best != 0 {
			wrong++
		}
	}
	if stoppedByThreshold == 0 {
		t.Skip("threshold never fired at this operating point; nothing to verify")
	}
	// Allow 2x slack over δ for the 100-trial estimate.
	if rate := float64(wrong) / trials; rate > 2*delta {
		t.Fatalf("error rate %.2f exceeds 2·δ = %.2f (threshold stops: %d)", rate, 2*delta, stoppedByThreshold)
	}
}

// TestTheorem2KIndependence verifies the headline scaling property: with
// side information, the number of *post-initialisation* rounds to identify
// the best arm stays roughly constant as K grows, whereas standard bandit
// feedback needs more rounds for more arms.
func TestTheorem2KIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	postInit := func(k int, standard bool) float64 {
		mu := make([]float64, k)
		mu[0] = 0.5
		for i := 1; i < k; i++ {
			mu[i] = 0.35 - 0.01*float64(i) // clear 0.15 gap to the best
		}
		var sigma2 [][]float64
		if standard {
			own := make([]float64, k)
			for i := range own {
				own[i] = 0.01
			}
			sigma2 = StandardSigma2(own)
		} else {
			sigma2 = make([][]float64, k)
			for i := range sigma2 {
				sigma2[i] = make([]float64, k)
				for j := range sigma2[i] {
					sigma2[i][j] = 0.01
				}
			}
		}
		const trials = 25
		total := 0
		for trial := 0; trial < trials; trial++ {
			env, err := NewEnv(mu, sigma2, int64(7000*k+trial))
			if err != nil {
				t.Fatal(err)
			}
			alg, err := New(DefaultConfig(sigma2))
			if err != nil {
				t.Fatal(err)
			}
			_, rounds, err := Run(alg, env, 5000)
			if err != nil {
				t.Fatal(err)
			}
			total += rounds - k // exclude the mandatory init sweep
		}
		return float64(total) / trials
	}

	sideSmall, sideLarge := postInit(4, false), postInit(16, false)
	stdSmall, stdLarge := postInit(4, true), postInit(16, true)

	// Side information: post-init rounds must not blow up with K.
	if sideLarge > 3*sideSmall+3 {
		t.Fatalf("side-info post-init rounds scaled with K: %.1f (K=4) -> %.1f (K=16)", sideSmall, sideLarge)
	}
	// Standard feedback must grow at least as fast as side info.
	if stdLarge-stdSmall < sideLarge-sideSmall-1 {
		t.Fatalf("standard feedback grew slower than side info: std %.1f->%.1f, side %.1f->%.1f",
			stdSmall, stdLarge, sideSmall, sideLarge)
	}
	t.Logf("post-init rounds: side %.1f->%.1f, standard %.1f->%.1f", sideSmall, sideLarge, stdSmall, stdLarge)
}

// TestEstimatorConsistency: the Eq. (1) estimator converges to the true means
// under an arbitrary (here: round-robin) deployment sequence.
func TestEstimatorConsistency(t *testing.T) {
	mu := []float64{0.42, 0.37, 0.51}
	k := len(mu)
	sigma2 := make([][]float64, k)
	for i := range sigma2 {
		sigma2[i] = make([]float64, k)
		for j := range sigma2[i] {
			sigma2[i][j] = 0.04 * float64(1+(i+j)%3) // heterogeneous variances
		}
	}
	env, err := NewEnv(mu, sigma2, 321)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(sigma2)
	cfg.StabilityRounds = 0
	cfg.C = 1e-12 // never stop via threshold either
	cfg.MaxRounds = 0
	alg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3000; r++ {
		arm := r % k
		if err := alg.Update(arm, env.Sample(arm)); err != nil {
			t.Fatal(err)
		}
	}
	for i, est := range alg.Estimates() {
		if math.Abs(est-mu[i]) > 0.02 {
			t.Fatalf("estimate %d = %.4f, true %.4f", i, est, mu[i])
		}
	}
}
