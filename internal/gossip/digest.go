package gossip

// The heartbeat digest wire format: the compact byte string nodes piggyback
// on peer probes (X-Darwin-Gossip, base64) and exchange on /gossip. Layout
// (little-endian):
//
//	[0]   magic 'G'
//	[1]   version (1)
//	[2:4] sender node id (0xFFFF = observer)
//	[4:6] entry count
//	then count entries of 11 bytes each: node uint16, seq uint64, status byte
//
// Encoding appends into a caller-owned buffer and decoding fills a
// caller-owned entry slice, so both directions are allocation-free once the
// buffers are warm — the digest rides on every probe, so its cost must stay
// in the noise (see the gossip bench arm). Corrupt bytes produce typed
// errors, never panics: the decoder is fuzzed like every other wire decoder
// in the repo.

import "errors"

// Entry is one node's heartbeat line in a digest.
type Entry struct {
	// Node is the node's index in the cluster's shared node order.
	Node uint16
	// Seq is the node's heartbeat sequence as known to the digest's sender.
	Seq uint64
	// Status is the sender's graded view of the node (a Status value) —
	// advisory observability; receivers grade with their own detector.
	Status uint8
}

// DigestVersion is the current wire format version.
const DigestVersion = 1

// digestMagic is the single-byte format tag.
const digestMagic = 'G'

// ObserverSender is the on-wire sender id of an observer digest (Self < 0).
const ObserverSender = 0xFFFF

// entrySize is the encoded size of one Entry.
const entrySize = 11

// headerSize is the encoded size of the digest header.
const headerSize = 6

// MaxDigestEntries bounds a digest's entry count — far above any plausible
// cluster, low enough that a hostile count can't balloon the decode.
const MaxDigestEntries = 4096

// Typed digest decode errors.
var (
	// ErrDigestMagic: the first byte is not the digest tag.
	ErrDigestMagic = errors.New("gossip: bad digest magic")
	// ErrDigestVersion: an unknown format version.
	ErrDigestVersion = errors.New("gossip: unsupported digest version")
	// ErrDigestLength: the byte length disagrees with the entry count
	// (truncated or trailing garbage).
	ErrDigestLength = errors.New("gossip: digest length mismatch")
	// ErrDigestStatus: an entry carries an invalid status byte.
	ErrDigestStatus = errors.New("gossip: invalid digest status")
)

// AppendDigest encodes sender's digest entries onto dst and returns the
// extended slice (append semantics: pass a buffer with spare capacity for an
// allocation-free encode).
func AppendDigest(dst []byte, sender int, entries []Entry) []byte {
	s := uint16(ObserverSender)
	if sender >= 0 {
		s = uint16(sender)
	}
	dst = append(dst, digestMagic, DigestVersion,
		byte(s), byte(s>>8),
		byte(len(entries)), byte(len(entries)>>8))
	for _, e := range entries {
		dst = append(dst,
			byte(e.Node), byte(e.Node>>8),
			byte(e.Seq), byte(e.Seq>>8), byte(e.Seq>>16), byte(e.Seq>>24),
			byte(e.Seq>>32), byte(e.Seq>>40), byte(e.Seq>>48), byte(e.Seq>>56),
			e.Status)
	}
	return dst
}

// DecodeDigest parses a digest into dst (append semantics), returning the
// sender node id (-1 for observers) and the filled entries. All errors are
// bare typed sentinels — the decoder runs on the peer-probe hot path, so the
// failure paths allocate nothing.
func DecodeDigest(data []byte, dst []Entry) (sender int, entries []Entry, err error) {
	if len(data) < headerSize {
		if len(data) > 0 && data[0] != digestMagic {
			return -1, dst, ErrDigestMagic
		}
		return -1, dst, ErrDigestLength
	}
	if data[0] != digestMagic {
		return -1, dst, ErrDigestMagic
	}
	if data[1] != DigestVersion {
		return -1, dst, ErrDigestVersion
	}
	s := uint16(data[2]) | uint16(data[3])<<8
	count := int(uint16(data[4]) | uint16(data[5])<<8)
	if count > MaxDigestEntries {
		return -1, dst, ErrDigestLength
	}
	if len(data) != headerSize+count*entrySize {
		return -1, dst, ErrDigestLength
	}
	sender = -1
	if s != ObserverSender {
		sender = int(s)
	}
	for i := 0; i < count; i++ {
		b := data[headerSize+i*entrySize:]
		e := Entry{
			Node: uint16(b[0]) | uint16(b[1])<<8,
			Seq: uint64(b[2]) | uint64(b[3])<<8 | uint64(b[4])<<16 | uint64(b[5])<<24 |
				uint64(b[6])<<32 | uint64(b[7])<<40 | uint64(b[8])<<48 | uint64(b[9])<<56,
			Status: b[10],
		}
		if e.Status > uint8(Dead) {
			return sender, dst, ErrDigestStatus
		}
		dst = append(dst, e)
	}
	return sender, dst, nil
}
