package gossip

import (
	"errors"
	"testing"
	"time"
)

// simClock is the injected test clock: tests advance it explicitly, so every
// detector decision is a pure function of the scripted schedule.
type simClock struct{ now time.Time }

func (c *simClock) clock() func() time.Time { return func() time.Time { return c.now } }
func (c *simClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestMembership(t *testing.T, clk *simClock, self int) *Membership {
	t.Helper()
	m, err := New(Config{
		Nodes:          3,
		Self:           self,
		HeartbeatEvery: 250 * time.Millisecond,
		PhiSuspect:     1.5,
		PhiDead:        8,
		MinDwell:       2 * time.Second,
		SuspectWeight:  0.5,
		Clock:          clk.clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	clk := &simClock{}
	if _, err := New(Config{Nodes: 0, Clock: clk.clock()}); err == nil {
		t.Fatal("Nodes=0 accepted")
	}
	if _, err := New(Config{Nodes: 2, Self: 2, Clock: clk.clock()}); err == nil {
		t.Fatal("Self out of range accepted")
	}
	if _, err := New(Config{Nodes: 2, Self: 0}); err == nil {
		t.Fatal("nil Clock accepted")
	}
	// Observers (Self = -1) are valid.
	if _, err := New(Config{Nodes: 2, Self: -1, Clock: clk.clock()}); err != nil {
		t.Fatal(err)
	}
}

// TestPhiAccrual: phi is zero before contact, stays low under on-cadence
// beats, and grows with the gap.
func TestPhiAccrual(t *testing.T) {
	clk := &simClock{}
	m := newTestMembership(t, clk, -1)
	if phi := m.Phi(1); phi != 0 {
		t.Fatalf("phi before contact = %v, want 0", phi)
	}
	seq := uint64(0)
	for i := 0; i < 10; i++ {
		seq++
		m.Heartbeat(1, seq)
		clk.advance(250 * time.Millisecond)
	}
	// One cadence gap: phi = 0.25/(0.25*ln10) ~ 0.43.
	if phi := m.Phi(1); phi < 0.3 || phi > 0.6 {
		t.Fatalf("phi at one cadence = %v, want ~0.43", phi)
	}
	clk.advance(750 * time.Millisecond) // 1 s total gap: phi ~ 1.74
	if phi := m.Phi(1); phi < 1.5 || phi > 2.0 {
		t.Fatalf("phi at 1 s gap = %v, want ~1.74", phi)
	}
	if st := m.Status(1); st != Suspect {
		t.Fatalf("status at phi>threshold = %v, want suspect", st)
	}
}

// TestGradedTransitions walks alive -> suspect -> dead -> suspect -> alive
// and checks the dwell gates both suspect exits.
func TestGradedTransitions(t *testing.T) {
	clk := &simClock{}
	m := newTestMembership(t, clk, -1)
	var transitions []string
	m.cfg.OnChange = func(node int, from, to Status) {
		transitions = append(transitions, from.String()+">"+to.String())
	}
	seq := uint64(0)
	beat := func() { seq++; m.Heartbeat(1, seq) }
	for i := 0; i < 8; i++ {
		beat()
		clk.advance(250 * time.Millisecond)
	}
	if st := m.Status(1); st != Alive {
		t.Fatalf("on-cadence status = %v", st)
	}

	// Silence. Suspicion is immediate once phi crosses, death needs phi >= 8
	// AND a 2 s dwell in suspect.
	clk.advance(time.Second)
	if st := m.Status(1); st != Suspect {
		t.Fatalf("1.25 s gap: status = %v, want suspect", st)
	}
	// phi 8 needs elapsed = 8 * 0.25 * ln10 ~ 4.6 s; dwell passes sooner.
	clk.advance(2 * time.Second)
	if st := m.Status(1); st != Suspect {
		t.Fatalf("3.25 s gap (phi < 8): status = %v, want suspect still", st)
	}
	clk.advance(2 * time.Second)
	if st := m.Status(1); st != Dead {
		t.Fatalf("5.25 s gap: status = %v, want dead", st)
	}
	if w := m.Weight(1); w != 0 {
		t.Fatalf("dead weight = %v", w)
	}

	// Recovery: beats resume -> suspect immediately, alive only after the
	// dwell (no instant flap back to full weight).
	beat()
	if st := m.Status(1); st != Suspect {
		t.Fatalf("post-recovery status = %v, want suspect", st)
	}
	if w := m.Weight(1); w != 0.5 {
		t.Fatalf("suspect weight = %v, want 0.5", w)
	}
	for i := 0; i < 7; i++ {
		clk.advance(250 * time.Millisecond)
		beat()
	}
	// 1.75 s since suspect re-entry: still dwelling.
	if st := m.Status(1); st != Suspect {
		t.Fatalf("pre-dwell status = %v, want suspect", st)
	}
	clk.advance(250 * time.Millisecond)
	beat()
	if st := m.Status(1); st != Alive {
		t.Fatalf("post-dwell status = %v, want alive", st)
	}
	want := []string{"alive>suspect", "suspect>dead", "dead>suspect", "suspect>alive"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// TestFlappingNodeNeverDies is the tentpole property: a node alternating
// 1 s up / 1 s down oscillates between alive and suspect but never sheds
// its full weight — the binary prober would zero it every down phase.
func TestFlappingNodeNeverDies(t *testing.T) {
	clk := &simClock{}
	m := newTestMembership(t, clk, -1)
	deaths := 0
	m.cfg.OnChange = func(node int, from, to Status) {
		if to == Dead {
			deaths++
		}
	}
	seq := uint64(0)
	// 2 s of steady cadence to calibrate, then 20 s of 1 s up / 1 s down.
	for tick := 0; tick < 88; tick++ {
		phase := clk.now.Sub(time.Time{})
		up := phase < 2*time.Second || (phase/time.Second)%2 == 0
		if up {
			seq++
			m.Heartbeat(1, seq)
		}
		m.Status(1) // evaluate every probe tick, like the live readiness hook
		clk.advance(250 * time.Millisecond)
	}
	if deaths != 0 {
		t.Fatalf("flapping node declared dead %d times, want 0", deaths)
	}
	if w := m.Weight(1); w == 0 {
		t.Fatal("flapping node at zero weight")
	}
}

// TestIndirectHeartbeat: a sequence advance relayed through a third party's
// digest is proof of life — the asymmetric-partition property.
func TestIndirectHeartbeat(t *testing.T) {
	clk := &simClock{}
	b := newTestMembership(t, clk, 1) // B cannot reach A (node 0) directly
	seqA := uint64(0)
	for i := 0; i < 40; i++ {
		seqA++
		// C's digest relays A's rising sequence; B merges it.
		b.Merge(2, []Entry{{Node: 0, Seq: seqA, Status: uint8(Alive)}, {Node: 2, Seq: uint64(i + 1), Status: uint8(Alive)}})
		clk.advance(250 * time.Millisecond)
	}
	if st := b.Status(0); st != Alive {
		t.Fatalf("indirectly heartbeated node status = %v, want alive", st)
	}
	if got := b.Seq(0); got != seqA {
		t.Fatalf("merged seq = %d, want %d", got, seqA)
	}
	// Stale entries never regress knowledge.
	b.Merge(2, []Entry{{Node: 0, Seq: 3, Status: uint8(Alive)}})
	if got := b.Seq(0); got != seqA {
		t.Fatalf("stale merge regressed seq to %d", got)
	}
}

// TestRestartReset: a node's own digest reporting a lower sequence is a
// rebirth — the detector forgets the old life instead of ignoring the node.
func TestRestartReset(t *testing.T) {
	clk := &simClock{}
	m := newTestMembership(t, clk, -1)
	m.Merge(1, []Entry{{Node: 1, Seq: 500, Status: uint8(Alive)}})
	clk.advance(250 * time.Millisecond)
	// Restarted process begins at 1: a third party's stale relay must NOT
	// reset (it is not authoritative)...
	m.Merge(2, []Entry{{Node: 1, Seq: 1, Status: uint8(Alive)}})
	if got := m.Seq(1); got != 500 {
		t.Fatalf("third-party stale entry reset seq to %d", got)
	}
	// ...but the node's own self-report does.
	m.Merge(1, []Entry{{Node: 1, Seq: 1, Status: uint8(Alive)}})
	if got := m.Seq(1); got != 1 {
		t.Fatalf("self-reported rebirth ignored: seq = %d, want 1", got)
	}
	if st := m.Status(1); st != Alive {
		t.Fatalf("reborn node status = %v, want alive", st)
	}
}

// TestBeatAndDigest: Beat advances the self sequence, Digest carries it plus
// every heard node in node order, and observers emit no self entry.
func TestBeatAndDigest(t *testing.T) {
	clk := &simClock{}
	m := newTestMembership(t, clk, 0)
	if m.Beat() != 1 || m.Beat() != 2 {
		t.Fatal("Beat did not advance monotonically")
	}
	m.Heartbeat(2, 7)
	d := m.Digest(nil)
	if len(d) != 2 {
		t.Fatalf("digest entries = %d, want 2 (self + node 2)", len(d))
	}
	if d[0].Node != 0 || d[0].Seq != 2 {
		t.Fatalf("self entry = %+v", d[0])
	}
	if d[1].Node != 2 || d[1].Seq != 7 {
		t.Fatalf("heard entry = %+v", d[1])
	}

	obs := newTestMembership(t, clk, -1)
	if obs.Beat() != 0 {
		t.Fatal("observer Beat returned nonzero")
	}
	obs.Merge(0, d)
	od := obs.Digest(nil)
	if len(od) != 2 {
		t.Fatalf("observer digest entries = %d, want 2", len(od))
	}
}

// TestDigestRoundTrip: encode/decode is exact, including the observer
// sender and every status value.
func TestDigestRoundTrip(t *testing.T) {
	entries := []Entry{
		{Node: 0, Seq: 1, Status: uint8(Alive)},
		{Node: 1, Seq: 1<<63 + 12345, Status: uint8(Suspect)},
		{Node: 65534, Seq: 42, Status: uint8(Dead)},
	}
	for _, sender := range []int{-1, 0, 2} {
		buf := AppendDigest(nil, sender, entries)
		gotSender, got, err := DecodeDigest(buf, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotSender != sender {
			t.Fatalf("sender = %d, want %d", gotSender, sender)
		}
		if len(got) != len(entries) {
			t.Fatalf("entries = %d, want %d", len(got), len(entries))
		}
		for i := range entries {
			if got[i] != entries[i] {
				t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
			}
		}
	}
	// Empty digest round-trips too.
	if _, got, err := DecodeDigest(AppendDigest(nil, 1, nil), nil); err != nil || len(got) != 0 {
		t.Fatalf("empty digest: %v, %d entries", err, len(got))
	}
}

// TestDigestDecodeErrors: every corruption class produces its typed error.
func TestDigestDecodeErrors(t *testing.T) {
	good := AppendDigest(nil, 0, []Entry{{Node: 1, Seq: 9, Status: uint8(Alive)}})
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrDigestLength},
		{"bad magic", []byte{'X', 1, 0, 0, 0, 0}, ErrDigestMagic},
		{"bad version", []byte{'G', 9, 0, 0, 0, 0}, ErrDigestVersion},
		{"truncated entry", good[:len(good)-3], ErrDigestLength},
		{"trailing bytes", append(append([]byte{}, good...), 0xAA), ErrDigestLength},
		{"count overflow", []byte{'G', 1, 0, 0, 0xFF, 0xFF}, ErrDigestLength},
		{"bad status", func() []byte {
			b := append([]byte{}, good...)
			b[len(b)-1] = 99
			return b
		}(), ErrDigestStatus},
	}
	for _, tc := range cases {
		if _, _, err := DecodeDigest(tc.data, nil); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestEncodeDecodeAllocFree: with warm buffers, the digest hot path does not
// allocate (the bench arm's 0-allocs claim, asserted in the test suite).
func TestEncodeDecodeAllocFree(t *testing.T) {
	entries := []Entry{{0, 100, 0}, {1, 200, 1}, {2, 300, 0}}
	buf := make([]byte, 0, 256)
	dst := make([]Entry, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendDigest(buf[:0], 0, entries)
		_, dst, _ = DecodeDigest(buf, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("digest encode+decode allocates %.1f/op, want 0", allocs)
	}
}

// TestDeterminism: two memberships fed the same scripted schedule report
// identical phi, status, and digests.
func TestDeterminism(t *testing.T) {
	run := func() ([]Entry, float64, Status) {
		clk := &simClock{}
		m := newTestMembership(t, clk, 0)
		seq := uint64(0)
		for i := 0; i < 50; i++ {
			if i%7 != 6 {
				seq++
				m.Heartbeat(1, seq)
			}
			m.Merge(2, []Entry{{Node: 2, Seq: uint64(i/2 + 1), Status: uint8(Alive)}})
			m.Status(1)
			m.Status(2)
			clk.advance(250 * time.Millisecond)
		}
		return m.Digest(nil), m.Phi(1), m.Status(1)
	}
	d1, p1, s1 := run()
	d2, p2, s2 := run()
	if p1 != p2 || s1 != s2 || len(d1) != len(d2) {
		t.Fatalf("runs disagree: phi %v/%v status %v/%v", p1, p2, s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("digest entry %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}

// FuzzDecodeDigest: arbitrary bytes must produce typed errors or valid
// entries, never a panic, and valid decodes must re-encode to the input.
func FuzzDecodeDigest(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendDigest(nil, 2, []Entry{{Node: 1, Seq: 77, Status: 1}}))
	f.Add(AppendDigest(nil, -1, []Entry{{Node: 0, Seq: 1, Status: 0}, {Node: 9, Seq: 2, Status: 2}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		sender, entries, err := DecodeDigest(data, nil)
		if err != nil {
			return
		}
		back := AppendDigest(nil, sender, entries)
		if len(back) != len(data) {
			t.Fatalf("re-encode length %d, want %d", len(back), len(data))
		}
		for i := range back {
			if back[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}
