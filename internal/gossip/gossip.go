// Package gossip is the cluster's SWIM-style membership layer: a
// phi-accrual failure detector over heartbeat digests that nodes piggyback
// on the peer-probe HTTP path (and exchange on /gossip). It replaces the
// front tier's binary /readyz verdict with a graded one:
//
//   - alive:   heartbeats arrive on cadence — full ring weight.
//   - suspect: the inter-arrival gap is statistically unusual (phi above
//     PhiSuspect) — partial weight, so one slow probe costs a slice of
//     traffic, never the whole keyspace.
//   - dead:    the gap is overwhelming (phi above PhiDead) AND the node has
//     dwelt in suspicion for MinDwell — zero weight.
//
// Heartbeats are monotone sequence numbers. A digest entry whose sequence
// exceeds the locally known one is proof of life at local receive time no
// matter who delivered it, so a node unreachable on one edge of an
// asymmetric partition stays alive as long as any mutually reachable peer
// relays its rising sequence.
//
// The package is deterministic by construction (a darwinlint determinism
// package): it never reads the wall clock — Config.Clock is mandatory and
// every arrival is stamped through it — so experiments drive membership on
// simulated time and replay bit-identically.
package gossip

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Status is a node's graded membership state.
type Status uint8

const (
	// Alive: heartbeats arriving on cadence (or nothing known yet — a node
	// is presumed alive until evidence accrues against it).
	Alive Status = iota
	// Suspect: the current heartbeat gap is unusual (phi >= PhiSuspect).
	// A suspect node keeps SuspectWeight of its ring weight.
	Suspect
	// Dead: the gap is overwhelming (phi >= PhiDead) and the node dwelt in
	// suspicion for at least MinDwell. Zero ring weight.
	Dead
)

// String names the status for logs and metrics.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "invalid"
}

// ln10 converts the exponential-model survival probability into the
// phi-accrual scale: phi = elapsed / (mean * ln 10) is the standard
// suspicion level of the phi-accrual detector under exponentially
// distributed inter-arrivals (phi 1 ~ "one in ten chance this gap is
// benign", phi 2 ~ one in a hundred, ...).
const ln10 = 2.302585092994046

// Config parameterises a Membership.
type Config struct {
	// Nodes is the cluster size; node indexes are [0, Nodes).
	Nodes int
	// Self is this node's own index in the shared node order, or -1 for an
	// observer (the front tier): observers merge digests and grade peers but
	// emit no heartbeats of their own.
	Self int
	// HeartbeatEvery is the expected heartbeat cadence — the inter-arrival
	// mean assumed before enough samples accrue, and the floor under the
	// observed mean so scheduling jitter cannot shrink it into a hair
	// trigger. Default 250 ms (the front tier's probe period).
	HeartbeatEvery time.Duration
	// PhiSuspect and PhiDead are the suspicion thresholds (defaults 1.5
	// and 8): at the default cadence a node turns suspect after roughly a
	// missed beat and a half, and can only be declared dead after a gap an
	// order of magnitude beyond anything plausible.
	PhiSuspect float64
	PhiDead    float64
	// MinDwell is the hysteresis dwell: a node must sit in Suspect at least
	// this long before it may be promoted to Dead OR demoted back to Alive
	// (default 2 s). One slow probe therefore costs at most the suspect
	// weight slice for MinDwell — never a full weight shed — and a
	// recovering node cannot flap the ring at probe frequency.
	MinDwell time.Duration
	// SuspectWeight is the ring weight of a suspect node in [0,1)
	// (default 0.5).
	SuspectWeight float64
	// Window is how many inter-arrival samples the per-node estimator keeps
	// (default 32).
	Window int
	// MinSamples is how many samples must accrue before the observed mean
	// replaces HeartbeatEvery as the phi basis (default 3).
	MinSamples int
	// Clock supplies the current time. Mandatory — the package never reads
	// the wall clock itself; live callers pass time.Now, experiments pass a
	// simulated clock.
	Clock func() time.Time
	// OnChange, when set, observes every status transition. Called with the
	// membership lock held: keep it cheap (counters, a log line).
	OnChange func(node int, from, to Status)
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.PhiSuspect <= 0 {
		c.PhiSuspect = 1.5
	}
	if c.PhiDead <= 0 {
		c.PhiDead = 8
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 2 * time.Second
	}
	if c.SuspectWeight <= 0 || c.SuspectWeight >= 1 {
		c.SuspectWeight = 0.5
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	return c
}

// peer is one node's detector state.
type peer struct {
	seq   uint64    // highest heartbeat sequence seen (0 = never heard)
	last  time.Time // local arrival time of that heartbeat
	state Status
	since time.Time // when state was entered

	// Inter-arrival ring buffer (seconds) and its running sum.
	samples []float64
	head    int
	count   int
	sum     float64
}

// Membership is one node's (or observer's) view of the cluster. All methods
// are safe for concurrent use; the evaluation work per call is a few float
// operations per node.
type Membership struct {
	cfg Config

	mu    sync.Mutex
	peers []peer // guarded by mu
	self  uint64 // guarded by mu; own heartbeat sequence (Self >= 0 only)
}

// New builds a Membership. Clock is mandatory and Nodes must cover Self.
func New(cfg Config) (*Membership, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("gossip: need Nodes > 0, got %d", cfg.Nodes)
	}
	if cfg.Self >= cfg.Nodes {
		return nil, fmt.Errorf("gossip: Self %d out of range [0,%d)", cfg.Self, cfg.Nodes)
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("gossip: Config.Clock is mandatory (pass time.Now for live use)")
	}
	cfg = cfg.withDefaults()
	peers := make([]peer, cfg.Nodes)
	for i := range peers {
		peers[i].samples = make([]float64, cfg.Window)
	}
	return &Membership{cfg: cfg, peers: peers}, nil
}

// Nodes returns the cluster size.
func (m *Membership) Nodes() int { return m.cfg.Nodes }

// Self returns this membership's own node index (-1 for observers).
func (m *Membership) Self() int { return m.cfg.Self }

// Beat advances and returns this node's own heartbeat sequence — call it
// whenever a digest is about to leave the process, so every emission is a
// fresh proof of life. Observers (Self < 0) return 0.
func (m *Membership) Beat() uint64 {
	if m.cfg.Self < 0 {
		return 0
	}
	m.mu.Lock()
	m.self++
	s := m.self
	m.mu.Unlock()
	return s
}

// Heartbeat records a direct proof of life from node carrying sequence seq,
// stamped at the injected clock's now. Stale or repeated sequences are
// ignored — only a sequence advance is evidence.
func (m *Membership) Heartbeat(node int, seq uint64) {
	if node < 0 || node >= m.cfg.Nodes || node == m.cfg.Self {
		return
	}
	now := m.cfg.Clock()
	m.mu.Lock()
	m.beatLocked(node, seq, now)
	m.mu.Unlock()
}

// beatLocked folds one sequence advance into node's estimator.
func (m *Membership) beatLocked(node int, seq uint64, now time.Time) {
	p := &m.peers[node]
	if seq <= p.seq {
		return
	}
	if p.seq > 0 {
		gap := now.Sub(p.last).Seconds()
		if gap > 0 {
			if p.count == len(p.samples) {
				m.evictSampleLocked(p)
			}
			p.samples[p.head] = gap
			p.head++
			if p.head == len(p.samples) {
				p.head = 0
			}
			p.count++
			p.sum += gap
		}
	} else {
		p.since = now // first contact anchors the state clock
	}
	p.seq = seq
	p.last = now
}

// evictSampleLocked drops the oldest inter-arrival sample.
func (m *Membership) evictSampleLocked(p *peer) {
	tail := p.head // head == tail when full
	p.sum -= p.samples[tail]
	p.count--
}

// Merge folds a remote digest in: every entry whose sequence exceeds the
// locally known one is an indirect heartbeat at local receive time. Entries
// about self or out-of-range nodes are ignored. sender is the digest's
// origin node (-1 when unknown or an observer): the sender's entry about
// itself is authoritative, so a *lower* nonzero self-reported sequence means
// the process restarted — the estimator resets and the new sequence is
// accepted, instead of ignoring the reborn node until it out-counts its
// previous life. Returns how many entries advanced local knowledge.
func (m *Membership) Merge(sender int, entries []Entry) int {
	now := m.cfg.Clock()
	advanced := 0
	m.mu.Lock()
	for _, e := range entries {
		node := int(e.Node)
		if node >= m.cfg.Nodes || node == m.cfg.Self {
			continue
		}
		p := &m.peers[node]
		if node == sender && e.Seq > 0 && e.Seq < p.seq {
			// Self-report below what we know: the node restarted and its
			// sequence began again. Forget the old life.
			m.resetLocked(node)
		}
		if e.Seq > m.peers[node].seq {
			m.beatLocked(node, e.Seq, now)
			advanced++
		}
	}
	m.mu.Unlock()
	return advanced
}

// resetLocked forgets node's detector history (restart handling).
func (m *Membership) resetLocked(node int) {
	p := &m.peers[node]
	samples := p.samples
	*p = peer{samples: samples}
}

// Digest appends this membership's current view to dst: one entry per node
// with a known sequence, plus the self entry (sequence as of the last Beat).
// Call Beat first when emitting, so the digest carries a fresh proof of
// life. Entries are in node order — deterministic output.
func (m *Membership) Digest(dst []Entry) []Entry {
	now := m.cfg.Clock()
	m.mu.Lock()
	for i := range m.peers {
		if i == m.cfg.Self {
			dst = append(dst, Entry{Node: uint16(i), Seq: m.self, Status: uint8(Alive)})
			continue
		}
		p := &m.peers[i]
		if p.seq == 0 {
			continue
		}
		st := m.evalLocked(i, now)
		dst = append(dst, Entry{Node: uint16(i), Seq: p.seq, Status: uint8(st)})
	}
	m.mu.Unlock()
	return dst
}

// phiLocked computes node's current suspicion level: elapsed time since the
// last heartbeat over the mean inter-arrival, on the phi-accrual log scale.
// Nodes never heard from have phi 0 (presumed alive until evidence accrues).
func (m *Membership) phiLocked(node int, now time.Time) float64 {
	p := &m.peers[node]
	if p.seq == 0 {
		return 0
	}
	mean := m.cfg.HeartbeatEvery.Seconds()
	if p.count >= m.cfg.MinSamples {
		if observed := p.sum / float64(p.count); observed > mean {
			mean = observed
		}
	}
	elapsed := now.Sub(p.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return elapsed / (mean * ln10)
}

// evalLocked advances node's graded state machine against the clock and
// returns the resulting status. Transitions:
//
//	Alive   -> Suspect  when phi >= PhiSuspect (immediate: suspicion is cheap)
//	Suspect -> Dead     when phi >= PhiDead AND dwelt >= MinDwell
//	Suspect -> Alive    when phi <  PhiSuspect AND dwelt >= MinDwell
//	Dead    -> Suspect  when phi <  PhiSuspect (recovery walks back gradually)
//
// The dwell on both Suspect exits is the hysteresis: a flapping node
// oscillates between full and suspect weight at MinDwell frequency at worst,
// and never sheds its full weight unless phi stays overwhelming for a dwell.
func (m *Membership) evalLocked(node int, now time.Time) Status {
	if node == m.cfg.Self {
		return Alive
	}
	p := &m.peers[node]
	phi := m.phiLocked(node, now)
	from := p.state
	switch p.state {
	case Alive:
		if phi >= m.cfg.PhiSuspect {
			p.state, p.since = Suspect, now
		}
	case Suspect:
		if now.Sub(p.since) >= m.cfg.MinDwell {
			if phi >= m.cfg.PhiDead {
				p.state, p.since = Dead, now
			} else if phi < m.cfg.PhiSuspect {
				p.state, p.since = Alive, now
			}
		}
	case Dead:
		if phi < m.cfg.PhiSuspect {
			p.state, p.since = Suspect, now
		}
	}
	if p.state != from && m.cfg.OnChange != nil {
		m.cfg.OnChange(node, from, p.state)
	}
	return p.state
}

// Phi returns node's current suspicion level (0 when unknown or self).
func (m *Membership) Phi(node int) float64 {
	if node < 0 || node >= m.cfg.Nodes || node == m.cfg.Self {
		return 0
	}
	now := m.cfg.Clock()
	m.mu.Lock()
	phi := m.phiLocked(node, now)
	m.mu.Unlock()
	return phi
}

// Status evaluates and returns node's graded state.
func (m *Membership) Status(node int) Status {
	if node < 0 || node >= m.cfg.Nodes {
		return Dead
	}
	if node == m.cfg.Self {
		return Alive
	}
	now := m.cfg.Clock()
	m.mu.Lock()
	st := m.evalLocked(node, now)
	m.mu.Unlock()
	return st
}

// Weight maps node's status to a ring weight: Alive 1, Suspect
// SuspectWeight, Dead 0.
func (m *Membership) Weight(node int) float64 {
	switch m.Status(node) {
	case Alive:
		return 1
	case Suspect:
		return m.cfg.SuspectWeight
	}
	return 0
}

// Dead reports whether node has been declared dead.
func (m *Membership) Dead(node int) bool { return m.Status(node) == Dead }

// Heard reports whether any heartbeat from node was ever observed.
func (m *Membership) Heard(node int) bool {
	if node < 0 || node >= m.cfg.Nodes {
		return false
	}
	m.mu.Lock()
	h := m.peers[node].seq > 0
	m.mu.Unlock()
	return h
}

// Seq returns the highest heartbeat sequence observed for node (own
// sequence for self).
func (m *Membership) Seq(node int) uint64 {
	if node < 0 || node >= m.cfg.Nodes {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if node == m.cfg.Self {
		return m.self
	}
	return m.peers[node].seq
}

// MeanInterval returns node's current estimated heartbeat inter-arrival
// (the configured cadence until MinSamples accrue) — an observability
// surface for metrics and the flap report.
func (m *Membership) MeanInterval(node int) time.Duration {
	if node < 0 || node >= m.cfg.Nodes {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p := &m.peers[node]
	mean := m.cfg.HeartbeatEvery.Seconds()
	if p.count >= m.cfg.MinSamples {
		if observed := p.sum / float64(p.count); observed > mean {
			mean = observed
		}
	}
	return time.Duration(math.Round(mean * float64(time.Second)))
}
