package core

import (
	"fmt"
	"math"
	"sort"

	"darwin/internal/cache"
	"darwin/internal/cluster"
	"darwin/internal/features"
	"darwin/internal/neural"
)

// TrainConfig configures offline training (steps 1a and 1b of Figure 3).
type TrainConfig struct {
	// Objective selects the reward (default OHRObjective).
	Objective Objective
	// NumClusters is K for K-means (paper: 52; scaled default: ~1 cluster
	// per 4 training traces, at least 2).
	NumClusters int
	// ThetaPct is the expert-set association threshold θ in percent (paper
	// default 1): an expert joins a trace's best set when its reward is
	// within θ% of the trace's best reward.
	ThetaPct float64
	// PredictorHidden is the hidden width of the cross-expert nets; 0 trains
	// the paper's single fully-connected layer (logistic regression).
	PredictorHidden int
	// PredictorTrainer holds SGD hyper-parameters (defaults applied).
	PredictorTrainer neural.Trainer
	// TrainAllPairs trains predictors for every ordered expert pair instead
	// of only pairs co-occurring in some cluster set (needed for the Fig 5c
	// study over all 1260 predictors).
	TrainAllPairs bool
	// SkipPredictors skips step 1b entirely — used by θ-sweep studies that
	// only need clustering and expert sets (Figures 5b, 9, 11).
	SkipPredictors bool
	// NoSizeDistribution trains the predictors on the base 15-entry feature
	// vector only, without the bucketised size distribution — the feature
	// ablation of §4.1 ("Adding the size distribution to the features helps
	// provide sharper estimates").
	NoSizeDistribution bool
	// Seed drives clustering and net initialisation.
	Seed int64
}

func (c TrainConfig) withDefaults(numTraces int) TrainConfig {
	if c.Objective == nil {
		c.Objective = OHRObjective{}
	}
	if c.NumClusters <= 0 {
		c.NumClusters = numTraces / 4
		if c.NumClusters < 2 {
			c.NumClusters = 2
		}
	}
	if c.ThetaPct <= 0 {
		c.ThetaPct = 1
	}
	if c.PredictorTrainer.Epochs == 0 {
		c.PredictorTrainer = neural.Trainer{LR: 0.1, Epochs: 120, BatchSize: 8, Seed: c.Seed}
	}
	return c
}

// Model is Darwin's trained offline state: the clustering, the per-cluster
// promising expert sets, the per-cluster mean rewards (σ priors and
// fallbacks), and the cross-expert prediction networks.
type Model struct {
	// Experts is the expert grid.
	Experts []cache.Expert
	// FeatureCfg reproduces the training feature extraction.
	FeatureCfg features.Config
	// Objective is the trained objective.
	Objective Objective
	// Clusters maps feature vectors to clusters.
	Clusters *cluster.Model
	// ExpertSets[c] lists (sorted) expert indices promising for cluster c.
	ExpertSets [][]int
	// MeanReward[c][k] is expert k's mean reward over cluster c's traces.
	MeanReward [][]float64
	// MeanOHR[c][k] is expert k's mean OHR over cluster c's traces (the
	// P(E_i hit) prior used to seed the side-information matrix).
	MeanOHR [][]float64
	// Predictors[i][j] is M_{i,j}; nil when untrained.
	Predictors [][]*neural.Net
	// ScalerMean and ScalerStd standardise extended feature vectors before
	// they reach the predictors (raw features span bytes to microseconds, so
	// unscaled inputs would saturate the sigmoids).
	ScalerMean, ScalerStd []float64
	// PredictorInputs is the number of leading extended-vector entries the
	// predictors consume (the full extended length, or just the base vector
	// under the NoSizeDistribution ablation).
	PredictorInputs int
	// FeatureWindow is the training feature-extraction window; online
	// deployments should use a matching N_warmup so cluster lookup sees the
	// same (window-censored) feature statistics.
	FeatureWindow int
}

// scale standardises (and, under the NoSizeDistribution ablation, truncates)
// an extended feature vector with the training moments.
func (m *Model) scale(extended []float64) []float64 {
	n := m.PredictorInputs
	if n <= 0 || n > len(extended) {
		n = len(extended)
	}
	if len(m.ScalerMean) < n {
		n = len(m.ScalerMean)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = (extended[i] - m.ScalerMean[i]) / m.ScalerStd[i]
	}
	return out
}

// Train runs offline steps 1a (clustering and expert-set association) and 1b
// (cross-expert predictor training) over a built dataset.
func Train(ds *Dataset, cfg TrainConfig) (*Model, error) {
	if len(ds.Records) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	cfg = cfg.withDefaults(len(ds.Records))
	k := len(ds.Experts)

	// --- Step 1a: cluster base feature vectors.
	points := make([][]float64, len(ds.Records))
	for i, r := range ds.Records {
		points[i] = r.Features
	}
	cm, err := cluster.Fit(points, cluster.Config{
		K: cfg.NumClusters, MaxIter: 100, Seed: cfg.Seed, Restarts: 4,
	})
	if err != nil {
		return nil, err
	}

	// Trace-level best expert sets, then cluster-level unions.
	nc := cm.K()
	setUnion := make([]map[int]bool, nc)
	sumReward := make([][]float64, nc)
	sumOHR := make([][]float64, nc)
	counts := make([]int, nc)
	for c := 0; c < nc; c++ {
		setUnion[c] = make(map[int]bool)
		sumReward[c] = make([]float64, k)
		sumOHR[c] = make([]float64, k)
	}
	for ri, rec := range ds.Records {
		c := cm.Assignments[ri]
		counts[c]++
		rewards := ds.Rewards(rec, cfg.Objective)
		best := rewards[0]
		for _, v := range rewards {
			if v > best {
				best = v
			}
		}
		for ei, v := range rewards {
			sumReward[c][ei] += v
			sumOHR[c][ei] += rec.Metrics[ei].OHR()
			if withinTheta(v, best, cfg.ThetaPct) {
				setUnion[c][ei] = true
			}
		}
	}
	m := &Model{
		Experts:       ds.Experts,
		FeatureCfg:    ds.FeatureCfg,
		Objective:     cfg.Objective,
		Clusters:      cm,
		ExpertSets:    make([][]int, nc),
		MeanReward:    make([][]float64, nc),
		MeanOHR:       make([][]float64, nc),
		FeatureWindow: ds.FeatureWindow,
	}
	for c := 0; c < nc; c++ {
		for ei := range setUnion[c] {
			m.ExpertSets[c] = append(m.ExpertSets[c], ei)
		}
		sort.Ints(m.ExpertSets[c])
		m.MeanReward[c] = make([]float64, k)
		m.MeanOHR[c] = make([]float64, k)
		if counts[c] > 0 {
			for ei := 0; ei < k; ei++ {
				m.MeanReward[c][ei] = sumReward[c][ei] / float64(counts[c])
				m.MeanOHR[c][ei] = sumOHR[c][ei] / float64(counts[c])
			}
		}
	}

	// --- Step 1b: train cross-expert predictors.
	m.Predictors = make([][]*neural.Net, k)
	for i := range m.Predictors {
		m.Predictors[i] = make([]*neural.Net, k)
	}
	if cfg.SkipPredictors {
		return m, nil
	}
	need := make([][]bool, k)
	for i := range need {
		need[i] = make([]bool, k)
	}
	if cfg.TrainAllPairs {
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				need[i][j] = i != j
			}
		}
	} else {
		for _, set := range m.ExpertSets {
			for _, i := range set {
				for _, j := range set {
					if i != j {
						need[i][j] = true
					}
				}
			}
		}
	}
	inDim := len(ds.Records[0].Extended)
	if cfg.NoSizeDistribution {
		inDim = ds.FeatureCfg.VectorLen()
	}
	m.PredictorInputs = inDim
	m.ScalerMean = make([]float64, inDim)
	m.ScalerStd = make([]float64, inDim)
	for _, rec := range ds.Records {
		for d, v := range rec.Extended[:inDim] {
			m.ScalerMean[d] += v
		}
	}
	for d := range m.ScalerMean {
		m.ScalerMean[d] /= float64(len(ds.Records))
	}
	for _, rec := range ds.Records {
		for d, v := range rec.Extended[:inDim] {
			dv := v - m.ScalerMean[d]
			m.ScalerStd[d] += dv * dv
		}
	}
	for d := range m.ScalerStd {
		m.ScalerStd[d] = math.Sqrt(m.ScalerStd[d] / float64(len(ds.Records)))
		if m.ScalerStd[d] == 0 {
			m.ScalerStd[d] = 1
		}
	}
	xs := make([][]float64, len(ds.Records))
	for ri, rec := range ds.Records {
		xs[ri] = m.scale(rec.Extended)
	}
	var hidden []int
	if cfg.PredictorHidden > 0 {
		hidden = []int{cfg.PredictorHidden}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if !need[i][j] {
				continue
			}
			ys := make([][]float64, len(ds.Records))
			for ri, rec := range ds.Records {
				ys[ri] = []float64{rec.CondHit[i][j], rec.CondMiss[i][j]}
			}
			net, err := neural.New(neural.Config{
				Inputs:  inDim,
				Hidden:  hidden,
				Outputs: 2,
				Seed:    cfg.Seed + int64(i)*1000 + int64(j),
			})
			if err != nil {
				return nil, err
			}
			if _, err := cfg.PredictorTrainer.Train(net, xs, ys); err != nil {
				return nil, err
			}
			m.Predictors[i][j] = net
		}
	}
	return m, nil
}

// withinTheta reports whether reward v is within thetaPct percent of best.
// Rewards may be negative (e.g. −BMR), so the tolerance is relative to the
// magnitude of the best reward with a small absolute floor.
func withinTheta(v, best, thetaPct float64) bool {
	tol := thetaPct / 100 * abs(best)
	if tol < 1e-6 {
		tol = 1e-6
	}
	return best-v <= tol
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Lookup assigns a feature vector to its cluster and returns the cluster id
// and the cluster's expert set. An empty set falls back to the cluster's
// best-by-mean-reward expert, and, degenerately, to expert 0.
func (m *Model) Lookup(feat []float64) (clusterID int, set []int) {
	c := m.Clusters.Assign(feat)
	set = m.ExpertSets[c]
	if len(set) == 0 {
		best := 0
		for ei, v := range m.MeanReward[c] {
			if v > m.MeanReward[c][best] {
				best = ei
			}
		}
		set = []int{best}
	}
	return c, set
}

// PredictCond runs M_{i,j} on an extended feature vector, returning
// (P(E_j hit | E_i hit), P(E_j hit | E_i miss)). ok is false when the pair
// has no trained predictor.
func (m *Model) PredictCond(i, j int, extended []float64) (condHit, condMiss float64, ok bool) {
	if i < 0 || j < 0 || i >= len(m.Predictors) || j >= len(m.Predictors) {
		return 0, 0, false
	}
	net := m.Predictors[i][j]
	if net == nil {
		return 0, 0, false
	}
	out := net.Forward(m.scale(extended))
	return out[0], out[1], true
}

// EstimateReward predicts expert j's reward while expert i is deployed with
// observed hit rate obsOHR, per §4.2's fictitious sample construction:
// ohr_j = P(i hit)·P(j hit|i hit) + P(i miss)·P(j hit|i miss), mapped through
// the objective. ok is false without a trained predictor.
func (m *Model) EstimateReward(i, j int, obsOHR float64, extended []float64, prof SizeProfile) (float64, bool) {
	ch, cm, ok := m.PredictCond(i, j, extended)
	if !ok {
		return 0, false
	}
	ohrJ := obsOHR*ch + (1-obsOHR)*cm
	return m.Objective.RewardFromOHR(ohrJ, prof, m.Experts[j]), true
}

// SideVariance computes σ²_ij of §4.1 from predictor outputs and a prior hit
// rate for expert i: σ²_ij = P(i hit)·V_hit + P(i miss)·V_miss with
// V = p(1−p). For i == j the sampling variance of the real observed hit rate
// is p(1−p). The caller rescales by its effective sample count.
func (m *Model) SideVariance(i, j int, priorOHR float64, extended []float64) (float64, bool) {
	if i == j {
		return priorOHR * (1 - priorOHR), true
	}
	ch, cm, ok := m.PredictCond(i, j, extended)
	if !ok {
		return 0, false
	}
	vh := ch * (1 - ch)
	vm := cm * (1 - cm)
	return priorOHR*vh + (1-priorOHR)*vm, true
}
