package core

import (
	"math"
	"testing"
	"testing/quick"

	"darwin/internal/cache"
)

// SizeProfile-derived quantities stay within physical bounds for arbitrary
// bucket fractions.
func TestSizeProfileBoundsQuick(t *testing.T) {
	f := func(raw [8]uint8, ohrRaw uint8, thRaw uint16) bool {
		var total float64
		fr := make([]float64, len(raw))
		for i, v := range raw {
			fr[i] = float64(v)
			total += fr[i]
		}
		if total == 0 {
			fr[0] = 1
			total = 1
		}
		for i := range fr {
			fr[i] /= total
		}
		p := NewSizeProfile(fr, 64, 1<<20)
		ohr := float64(ohrRaw) / 255
		e := cache.Expert{MaxSize: int64(thRaw) + 1}
		bmr := p.EstimateBMR(ohr, e)
		if bmr < 0 || bmr > 1 || math.IsNaN(bmr) {
			return false
		}
		// Monotone in OHR: a strictly higher hit rate cannot raise BMR.
		if b2 := p.EstimateBMR(math.Min(1, ohr+0.2), e); b2 > bmr+1e-12 {
			return false
		}
		// MeanSizeBelow never exceeds MeanSize.
		return p.MeanSizeBelow(e.MaxSize) <= p.MeanSize()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Objective rewards estimated through RewardFromOHR agree with rewards
// computed from metrics when the metrics are consistent with the profile's
// assumptions (pass-through check for the OHR objective, bound checks for
// the others).
func TestObjectiveEstimateConsistencyQuick(t *testing.T) {
	p := NewSizeProfile([]float64{0.5, 0.3, 0.2}, 64, 1<<20)
	f := func(ohrRaw uint8) bool {
		ohr := float64(ohrRaw) / 255
		e := cache.Expert{MaxSize: 1 << 19}
		if (OHRObjective{}).RewardFromOHR(ohr, p, e) != ohr {
			return false
		}
		b := (BMRObjective{}).RewardFromOHR(ohr, p, e)
		if b < -1 || b > 0 {
			return false
		}
		c := (CombinedObjective{K: 0.5}).RewardFromOHR(ohr, p, e)
		return c >= -0.5-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Fatal(err)
	}
}

// withinTheta is reflexive, monotone in θ, and symmetric about the best.
func TestWithinThetaQuick(t *testing.T) {
	f := func(vRaw, bRaw int16, thRaw uint8) bool {
		v, best := float64(vRaw)/1000, float64(bRaw)/1000
		if v > best {
			v, best = best, v
		}
		theta := float64(thRaw%50) + 1
		if !withinTheta(best, best, theta) {
			return false // the best is always within θ of itself
		}
		if withinTheta(v, best, theta) && !withinTheta(v, best, theta*2) {
			return false // larger θ can only admit more
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
