// Package core implements the Darwin pipeline itself (§4): the offline phase
// — expert evaluation over historical traces, unsupervised clustering,
// expert-set association, and cross-expert predictor training — and the
// online phase — per-epoch feature estimation, cluster lookup, and
// best-expert identification with the Track-and-Stop-with-Side-Information
// bandit, followed by deployment of the identified expert.
package core

import (
	"fmt"
	"math"

	"darwin/internal/cache"
)

// SizeProfile is the bucketised request-size distribution observed during
// feature collection, together with each bucket's representative size. §6.3
// uses it to convert estimated hit rates of non-deployed experts into
// byte-level objectives (BMR, disk writes).
type SizeProfile struct {
	// Fractions[b] is the fraction of requests in bucket b.
	Fractions []float64
	// Sizes[b] is the representative (geometric-mean) size of bucket b in
	// bytes.
	Sizes []float64
}

// NewSizeProfile pairs bucket fractions with log-scale representative sizes
// spanning [minSize, maxSize), mirroring features.Config bucketing.
func NewSizeProfile(fractions []float64, minSize, maxSize int64) SizeProfile {
	n := len(fractions)
	sizes := make([]float64, n)
	lo, hi := math.Log2(float64(minSize)), math.Log2(float64(maxSize))
	for b := 0; b < n; b++ {
		mid := lo + (hi-lo)*(float64(b)+0.5)/float64(n)
		sizes[b] = math.Exp2(mid)
	}
	return SizeProfile{Fractions: fractions, Sizes: sizes}
}

// MeanSize returns E[size] per request in bytes.
func (p SizeProfile) MeanSize() float64 {
	var m float64
	for b, f := range p.Fractions {
		m += f * p.Sizes[b]
	}
	return m
}

// MeanSizeBelow returns E[size · 1{size <= threshold}] per request.
func (p SizeProfile) MeanSizeBelow(threshold int64) float64 {
	var m float64
	for b, f := range p.Fractions {
		if p.Sizes[b] <= float64(threshold) {
			m += f * p.Sizes[b]
		}
	}
	return m
}

// EstimateBMR converts an estimated HOC hit rate for an expert with size
// threshold s into an estimated byte miss ratio: hits are confined to objects
// of size <= s, so the expected bytes served from the HOC per request are
// ohr · E[size | size <= s], and BMR = 1 − hitBytes/E[size].
func (p SizeProfile) EstimateBMR(ohr float64, e cache.Expert) float64 {
	mean := p.MeanSize()
	if mean <= 0 {
		return 1
	}
	below := p.MeanSizeBelow(e.MaxSize)
	totalBelow := 0.0
	for b, f := range p.Fractions {
		if p.Sizes[b] <= float64(e.MaxSize) {
			totalBelow += f
		}
	}
	var meanHitSize float64
	if totalBelow > 0 {
		meanHitSize = below / totalBelow
	}
	bmr := 1 - ohr*meanHitSize/mean
	if bmr < 0 {
		return 0
	}
	if bmr > 1 {
		return 1
	}
	return bmr
}

// Objective maps cache behaviour to a scalar reward the bandit maximises.
// Implementations must be consistent between the deployed expert's real
// metrics (Reward) and the cross-expert estimate for non-deployed experts
// (RewardFromOHR), since both feed the same estimator.
type Objective interface {
	// Name labels the objective in reports.
	Name() string
	// Reward computes the reward of a deployed expert from its round metrics.
	Reward(m cache.Metrics) float64
	// RewardFromOHR estimates the reward of a non-deployed expert e from its
	// predicted HOC hit rate and the observed size profile.
	RewardFromOHR(ohr float64, prof SizeProfile, e cache.Expert) float64
}

// OHRObjective maximises the HOC object hit rate (the paper's primary goal).
type OHRObjective struct{}

// Name implements Objective.
func (OHRObjective) Name() string { return "ohr" }

// Reward implements Objective.
func (OHRObjective) Reward(m cache.Metrics) float64 { return m.OHR() }

// RewardFromOHR implements Objective.
func (OHRObjective) RewardFromOHR(ohr float64, _ SizeProfile, _ cache.Expert) float64 {
	return ohr
}

// BMRObjective minimises the HOC byte miss ratio (Figure 6a); the reward is
// −BMR so that maximisation minimises the ratio.
type BMRObjective struct{}

// Name implements Objective.
func (BMRObjective) Name() string { return "bmr" }

// Reward implements Objective.
func (BMRObjective) Reward(m cache.Metrics) float64 { return -m.BMR() }

// RewardFromOHR implements Objective.
func (BMRObjective) RewardFromOHR(ohr float64, prof SizeProfile, e cache.Expert) float64 {
	return -prof.EstimateBMR(ohr, e)
}

// CombinedObjective maximises OHR − K·(normalised HOC disk-write pressure)
// (Figure 6b). Following §6.3, disk-write bytes are approximated by the bytes
// missed in the HOC, normalised by total bytes so both terms live on [0,1]:
// reward = OHR − K·BMR.
type CombinedObjective struct {
	// K weighs the disk-write term; the paper's experiments use a fixed
	// operator-chosen constant (default 0.5 here).
	K float64
}

// Name implements Objective.
func (c CombinedObjective) Name() string { return fmt.Sprintf("ohr-%.2gxdiskwrite", c.k()) }

func (c CombinedObjective) k() float64 {
	if c.K <= 0 {
		return 0.5
	}
	return c.K
}

// Reward implements Objective.
func (c CombinedObjective) Reward(m cache.Metrics) float64 {
	return m.OHR() - c.k()*m.BMR()
}

// RewardFromOHR implements Objective.
func (c CombinedObjective) RewardFromOHR(ohr float64, prof SizeProfile, e cache.Expert) float64 {
	return ohr - c.k()*prof.EstimateBMR(ohr, e)
}

// ObjectiveByName returns a configured objective: "ohr", "bmr", or
// "combined".
func ObjectiveByName(name string) (Objective, error) {
	switch name {
	case "ohr", "":
		return OHRObjective{}, nil
	case "bmr":
		return BMRObjective{}, nil
	case "combined":
		return CombinedObjective{}, nil
	}
	return nil, fmt.Errorf("core: unknown objective %q", name)
}
