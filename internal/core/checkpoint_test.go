package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"darwin/internal/cache"
	"darwin/internal/persist"
)

// newShardedController builds the proxy-shaped stack: controller over a
// single-shard Sharded engine, so engine snapshots use ShardedState.
func newShardedController(t *testing.T, m *Model) (*Controller, *cache.Sharded) {
	t.Helper()
	ec := testEval()
	eng, err := cache.NewSharded(cache.Config{HOCBytes: ec.HOCBytes, DCBytes: ec.DCBytes}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(m, eng, onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	return c, eng
}

// resume builds a fresh controller+engine from the checkpoint, as a restarted
// process would.
func resume(t *testing.T, ck *Checkpoint) *Controller {
	t.Helper()
	ec := testEval()
	eng, err := cache.NewSharded(cache.Config{HOCBytes: ec.HOCBytes, DCBytes: ec.DCBytes}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(ck.Model, eng, onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RestoreState(ck.Engine); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreState(ck.Controller); err != nil {
		t.Fatal(err)
	}
	return c
}

func checkpointOf(t *testing.T, c *Controller, eng *cache.Sharded, m *Model) *Checkpoint {
	t.Helper()
	es, err := eng.State()
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{Model: m, Engine: es, Controller: c.CheckpointState()}
}

// TestCheckpointResumeMidIdentify is the core crash-recovery property: a
// controller checkpointed mid-identification and resumed in a fresh process
// image makes the same decisions as the original from that point on.
func TestCheckpointResumeMidIdentify(t *testing.T) {
	m := trainedModel(t)
	c, eng := newShardedController(t, m)
	tr := testTraces(t)[3]

	// Drive past warm-up into identification (or exploit for singleton sets).
	i := 0
	for ; i < tr.Len() && c.Phase() == PhaseWarmup; i++ {
		c.Serve(tr.Requests[i])
	}
	if c.Phase() == PhaseIdentify {
		// Land mid-round for the strictest resume test.
		for n := 0; n < onlineCfg().Round/2; n++ {
			c.Serve(tr.Requests[i])
			i++
		}
	}

	ck := checkpointOf(t, c, eng, m)
	payload, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCheckpoint(payload)
	if err != nil {
		t.Fatal(err)
	}
	r := resume(t, decoded)

	if r.Phase() != c.Phase() {
		t.Fatalf("resumed phase %v, want %v", r.Phase(), c.Phase())
	}
	if r.Metrics() != c.Metrics() {
		t.Fatalf("resumed metrics %+v, want %+v", r.Metrics(), c.Metrics())
	}
	// Both must now evolve in lockstep through the rest of the trace:
	// identical serve results, phase transitions, and expert deployments.
	for ; i < tr.Len(); i++ {
		a := c.Serve(tr.Requests[i])
		b := r.Serve(tr.Requests[i])
		if a != b {
			t.Fatalf("request %d: results diverge (%v vs %v)", i, a, b)
		}
		if c.Engine().Expert() != r.Engine().Expert() {
			t.Fatalf("request %d: deployed experts diverge", i)
		}
	}
	if c.Phase() != r.Phase() || c.Metrics() != r.Metrics() {
		t.Fatalf("end state diverges: %v/%v, metrics %+v vs %+v",
			c.Phase(), r.Phase(), c.Metrics(), r.Metrics())
	}
	da, db := c.Diags(), r.Diags()
	if len(da) != len(db) {
		t.Fatalf("diag counts diverge: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("diag %d diverges: %+v vs %+v", i, da[i], db[i])
		}
	}
}

// TestCheckpointResumeWarmup: a warm-up snapshot re-enters warm-up fresh but
// keeps the epoch counter and cache contents.
func TestCheckpointResumeWarmup(t *testing.T) {
	m := trainedModel(t)
	c, eng := newShardedController(t, m)
	tr := testTraces(t)[0]
	for i := 0; i < 500; i++ { // stay inside warm-up (1500)
		c.Serve(tr.Requests[i])
	}
	ck := checkpointOf(t, c, eng, m)
	r := resume(t, ck)
	if r.Phase() != PhaseWarmup {
		t.Fatalf("phase = %v, want warmup", r.Phase())
	}
	if r.Metrics() != c.Metrics() {
		t.Fatal("cache contents not carried through warm-up restore")
	}
	// The restored controller re-runs the full warm-up before identifying.
	cfg := onlineCfg()
	for i := 0; i < cfg.Warmup-1; i++ {
		r.Serve(tr.Requests[i%tr.Len()])
		if r.Phase() != PhaseWarmup {
			t.Fatalf("left warmup after %d of %d requests", i+1, cfg.Warmup)
		}
	}
}

func TestControllerRestoreRejectsInvalid(t *testing.T) {
	m := trainedModel(t)
	c, eng := newShardedController(t, m)
	tr := testTraces(t)[3]
	i := 0
	for ; c.Phase() == PhaseWarmup; i++ {
		c.Serve(tr.Requests[i])
	}
	good := c.CheckpointState()
	identify := c.Phase() == PhaseIdentify

	cases := []struct {
		name string
		skip bool
		mut  func(st *ControllerState)
	}{
		{"nil", false, nil},
		{"bad-phase", false, func(st *ControllerState) { st.Phase = "transcend" }},
		{"negative-epoch", false, func(st *ControllerState) { st.Epoch = -1 }},
		{"epoch-overrun", false, func(st *ControllerState) { st.EpochReqs = onlineCfg().Epoch }},
		{"bad-expert-ref", len(good.Set) == 0, func(st *ControllerState) { st.Set[0] = 999 }},
		{"bad-cluster", len(good.Set) == 0, func(st *ControllerState) { st.ClusterID = 999 }},
		{"identify-no-bandit", !identify, func(st *ControllerState) { st.Bandit = nil }},
		{"identify-bad-arm", !identify, func(st *ControllerState) { st.CurArm = 99 }},
		{"identify-bandit-mismatch", !identify, func(st *ControllerState) { st.Bandit.Plays = st.Bandit.Plays[:1] }},
		{"profile-mismatch", false, func(st *ControllerState) { st.Prof.Sizes = append(st.Prof.Sizes, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.skip {
				t.Skip("snapshot phase does not exercise this case")
			}
			before := c.CheckpointState()
			var bad *ControllerState
			if tc.mut != nil {
				payload, err := EncodeCheckpoint(&Checkpoint{Controller: good})
				if err != nil {
					t.Fatal(err)
				}
				ck, err := DecodeCheckpoint(payload)
				if err != nil {
					t.Fatal(err)
				}
				bad = ck.Controller
				tc.mut(bad)
			}
			if err := c.RestoreState(bad); err == nil {
				t.Fatal("invalid controller state accepted")
			}
			afterBlob, _ := EncodeCheckpoint(&Checkpoint{Controller: c.CheckpointState()})
			beforeBlob, _ := EncodeCheckpoint(&Checkpoint{Controller: before})
			if !bytes.Equal(afterBlob, beforeBlob) {
				t.Fatal("failed restore mutated the controller")
			}
		})
	}
	_ = eng
}

func TestSaveLoadCheckpointFile(t *testing.T) {
	m := trainedModel(t)
	c, eng := newShardedController(t, m)
	tr := testTraces(t)[1]
	for i := 0; i < 3000; i++ {
		c.Serve(tr.Requests[i])
	}
	path := filepath.Join(t.TempDir(), "darwin.ckpt")
	ck := checkpointOf(t, c, eng, m)
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model == nil || got.Engine == nil || got.Controller == nil {
		t.Fatal("checkpoint parts lost in file round trip")
	}
	r := resume(t, got)
	if r.Metrics() != c.Metrics() {
		t.Fatal("file round trip lost engine state")
	}

	// Missing file is a cold start, not an error.
	absent, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err != nil || absent != nil {
		t.Fatalf("missing checkpoint: got %v, %v; want nil, nil", absent, err)
	}

	// A flipped bit anywhere fails loudly with a typed framing error.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCheckpoint(path)
	var fe *persist.FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("corrupt checkpoint error = %v, want *persist.FormatError", err)
	}
}

func TestFramedModelRejectsBitFlip(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-2] ^= 0x10
	if _, err := ReadModel(bytes.NewReader(data)); err == nil {
		t.Fatal("bit-flipped model accepted")
	}
}

// FuzzDecodeCheckpoint: arbitrary payload bytes must never panic and either
// error or produce a checkpoint that re-encodes.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"controller":{"phase":"warmup"}}`))
	f.Add([]byte(`{"model":{"version":1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if _, err := EncodeCheckpoint(ck); err != nil {
			t.Fatalf("accepted checkpoint fails to re-encode: %v", err)
		}
	})
}
