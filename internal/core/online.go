package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"darwin/internal/bandit"
	"darwin/internal/cache"
	"darwin/internal/features"
	"darwin/internal/trace"
)

// Phase names the online controller's state within an epoch (Figure 3,
// Step 2).
type Phase int

// Online phases.
const (
	// PhaseWarmup is feature estimation over the first N_warmup requests.
	PhaseWarmup Phase = iota
	// PhaseIdentify is bandit best-expert identification over rounds.
	PhaseIdentify
	// PhaseExploit deploys the identified expert for the rest of the epoch.
	PhaseExploit
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseWarmup:
		return "warmup"
	case PhaseIdentify:
		return "identify"
	case PhaseExploit:
		return "exploit"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// OnlineConfig parameterises the online selection loop.
type OnlineConfig struct {
	// Epoch is N_e, the epoch length in requests.
	Epoch int
	// Warmup is N_warmup, the feature-estimation prefix of each epoch.
	Warmup int
	// Round is N_round, the requests per bandit round.
	Round int
	// Delta is the bandit failure probability δ.
	Delta float64
	// StabilityRounds is the practical stop (same best arm this many
	// consecutive rounds); 0 disables it.
	StabilityRounds int
	// MaxRounds caps the identification phase (safety; the epoch budget also
	// caps it). 0 derives a cap from the epoch length.
	MaxRounds int
	// Neff is the effective number of independent reward samples per round,
	// used to scale the per-request indicator variances σ²_ij down to
	// round-level sample variances. Consecutive requests are correlated
	// through the cache state, so Neff ≪ Round (default 50).
	Neff float64
	// VarFloor keeps all variances positive (default 1e-4).
	VarFloor float64
	// InitialExpert is deployed during the first warm-up; zero value selects
	// the model's first expert.
	InitialExpert cache.Expert
	// UniformBandit switches the bandit to round-robin deployment (ablation).
	UniformBandit bool
	// DisableSideInfo replaces cross-expert fictitious samples with standard
	// bandit feedback (ablation): only the deployed arm's reward is used.
	DisableSideInfo bool
}

// DefaultOnlineConfig returns the scaled defaults of DESIGN.md §5:
// N_e=200k, N_warmup=6k (3%), N_round=1k (0.5%).
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{
		Epoch:           200_000,
		Warmup:          6_000,
		Round:           1_000,
		Delta:           0.05,
		StabilityRounds: 5,
		Neff:            50,
		VarFloor:        1e-4,
	}
}

func (c OnlineConfig) validate() error {
	if c.Epoch <= 0 || c.Warmup <= 0 || c.Round <= 0 {
		return fmt.Errorf("core: epoch/warmup/round must be positive (%d/%d/%d)", c.Epoch, c.Warmup, c.Round)
	}
	if c.Warmup+2*c.Round > c.Epoch {
		return fmt.Errorf("core: epoch %d too short for warmup %d + 2 rounds of %d", c.Epoch, c.Warmup, c.Round)
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("core: delta %v outside (0,1)", c.Delta)
	}
	return nil
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Neff <= 0 {
		c.Neff = 50
	}
	if c.VarFloor <= 0 {
		c.VarFloor = 1e-4
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = (c.Epoch - c.Warmup) / c.Round
	}
	return c
}

// EpochDiag records one epoch's online decisions for the component studies
// (Figures 5b–5d).
type EpochDiag struct {
	// Epoch is the 0-based epoch number.
	Epoch int
	// Cluster is the matched cluster.
	Cluster int
	// SetSize is the size of the cluster's expert set.
	SetSize int
	// Rounds is the number of bandit rounds used (0 when the set was a
	// singleton).
	Rounds int
	// StopReason is the bandit's stop reason ("stability", "threshold",
	// "max-rounds", "singleton", or "epoch-end").
	StopReason string
	// Chosen is the deployed expert after identification.
	Chosen cache.Expert
}

// Controller drives Darwin's online phase over a cache engine — the serial
// Hierarchy in simulation, or a Sharded engine behind the concurrent proxy.
// The cache Serve itself runs at the engine's concurrency (shard-parallel for
// Sharded); only the small per-request state-machine update serializes under
// the controller mutex, and expert deployments at warm-up, round, and epoch
// boundaries broadcast to every shard through Engine.SetExpert.
type Controller struct {
	model *Model
	eng   cache.Engine
	cfg   OnlineConfig

	// mu serializes the online state machine; the fields below are all
	// guarded by mu.
	mu         sync.Mutex
	phase      Phase
	epoch      int
	epochReqs  int
	extractor  *features.Extractor
	set        []int
	alg        *bandit.Algorithm
	curArm     int
	roundStart cache.Metrics
	roundReqs  int
	extended   []float64
	prof       SizeProfile
	clusterID  int
	diags      []EpochDiag
	learningNS int64
}

// NewController wires a trained model to a cache engine (a *cache.Hierarchy
// for serial replay, or a *cache.Sharded for the concurrent data plane).
func NewController(model *Model, eng cache.Engine, cfg OnlineConfig) (*Controller, error) {
	if model == nil || eng == nil {
		return nil, fmt.Errorf("core: nil model or engine")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ex, err := features.NewExtractor(model.FeatureCfg)
	if err != nil {
		return nil, err
	}
	init := cfg.InitialExpert
	if init == (cache.Expert{}) {
		init = model.Experts[0]
	}
	eng.SetExpert(init)
	return &Controller{
		model:     model,
		eng:       eng,
		cfg:       cfg,
		phase:     PhaseWarmup,
		extractor: ex,
	}, nil
}

// Phase returns the current phase.
func (c *Controller) Phase() Phase {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

// Diags returns per-epoch diagnostics recorded so far (including the current
// epoch once identification has finished).
func (c *Controller) Diags() []EpochDiag {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]EpochDiag(nil), c.diags...)
}

// LearningDuration returns the cumulative wall time spent in learning
// operations (cluster lookup, Σ construction, bandit solves) — the work §6.4
// describes as off the request fast path, occurring only at warm-up end and
// round boundaries.
func (c *Controller) LearningDuration() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.learningNS)
}

// Engine returns the controlled cache engine.
func (c *Controller) Engine() cache.Engine { return c.eng }

// Concurrent reports whether the controller may be driven from multiple
// goroutines at once: true when the underlying engine is concurrency-safe
// (the state machine itself always serializes under the controller mutex).
func (c *Controller) Concurrent() bool {
	ce, ok := c.eng.(cache.ConcurrentEngine)
	return ok && ce.Concurrent()
}

// Name implements the baselines.Server naming convention.
func (c *Controller) Name() string { return "darwin" }

// syncedMetrics returns the engine's metrics, first forcing publication of
// any batched counters (engines with deferred seqlock publication, e.g. a
// Sharded with publishEvery > 1, expose SyncMetrics). Round boundaries and
// external reads need exact counts, not counts trailing by up to a batch.
func (c *Controller) syncedMetrics() cache.Metrics {
	if s, ok := c.eng.(interface{ SyncMetrics() }); ok {
		s.SyncMetrics()
	}
	return c.eng.Metrics()
}

// Metrics returns the engine's accumulated metrics.
func (c *Controller) Metrics() cache.Metrics { return c.syncedMetrics() }

// ResetMetrics clears the engine's counters (warm-up exclusion).
func (c *Controller) ResetMetrics() { c.eng.ResetMetrics() }

// Lookup probes residency without mutating cache or controller state
// (server.Lookuper): the controller's state machine advances only on
// committed Serve calls, so failed origin fetches never consume warm-up or
// round budget.
func (c *Controller) Lookup(id uint64) cache.Result { return c.eng.Lookup(id) }

// Serve processes one request through the cache and advances the controller
// state machine. The cache access runs at the engine's own concurrency; only
// the state-machine bookkeeping holds the controller mutex.
func (c *Controller) Serve(r trace.Request) cache.Result {
	res := c.eng.Serve(r)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochReqs++
	switch c.phase {
	case PhaseWarmup:
		c.extractor.Observe(r)
		if c.epochReqs >= c.cfg.Warmup {
			start := time.Now()
			c.finishWarmupLocked()
			c.learningNS += time.Since(start).Nanoseconds()
		}
	case PhaseIdentify:
		c.roundReqs++
		if c.roundReqs >= c.cfg.Round {
			start := time.Now()
			c.finishRoundLocked()
			c.learningNS += time.Since(start).Nanoseconds()
		}
	}
	if c.epochReqs >= c.cfg.Epoch {
		c.finishEpochLocked()
	}
	return res
}

// Play serves an entire trace.
func (c *Controller) Play(tr *trace.Trace) {
	for _, r := range tr.Requests {
		c.Serve(r)
	}
}

// finishWarmupLocked performs cluster lookup and starts identification.
func (c *Controller) finishWarmupLocked() {
	feat := c.extractor.Vector()
	c.extended = c.extractor.Extended()
	c.prof = NewSizeProfile(c.extractor.SizeDistribution(), c.model.FeatureCfg.MinSize, c.model.FeatureCfg.MaxSize)
	c.clusterID, c.set = c.model.Lookup(feat)
	// The feature tree is deleted after the collection stage (§6.4).
	c.extractor.Reset()

	if len(c.set) < 2 {
		chosen := c.model.Experts[c.set[0]]
		c.eng.SetExpert(chosen)
		c.phase = PhaseExploit
		c.diags = append(c.diags, EpochDiag{
			Epoch: c.epoch, Cluster: c.clusterID, SetSize: len(c.set),
			StopReason: "singleton", Chosen: chosen,
		})
		return
	}

	sigma2 := c.buildSigmaLocked()
	alg, err := bandit.New(banditConfig(c.cfg, sigma2, c.epochReqs))
	if err != nil {
		// Degenerate side information; fall back to the cluster's best mean
		// expert for the epoch.
		best := c.set[0]
		for _, ei := range c.set {
			if c.model.MeanReward[c.clusterID][ei] > c.model.MeanReward[c.clusterID][best] {
				best = ei
			}
		}
		chosen := c.model.Experts[best]
		c.eng.SetExpert(chosen)
		c.phase = PhaseExploit
		c.diags = append(c.diags, EpochDiag{
			Epoch: c.epoch, Cluster: c.clusterID, SetSize: len(c.set),
			StopReason: "degenerate-sigma", Chosen: chosen,
		})
		return
	}
	c.alg = alg
	c.curArm = alg.NextArm()
	c.eng.SetExpert(c.model.Experts[c.set[c.curArm]])
	c.roundStart = c.syncedMetrics()
	c.roundReqs = 0
	c.phase = PhaseIdentify
}

// buildSigmaLocked constructs the side-information matrix over the cluster's
// expert set using the prediction networks and the cluster's prior hit rates
// (§4.1), scaled to round-level sample variances.
func (c *Controller) buildSigmaLocked() [][]float64 {
	return buildSigma(c.model, c.cfg, c.set, c.clusterID, c.extended)
}

// banditConfig derives the identification run's bandit configuration from
// the online config and the requests already consumed this epoch. Checkpoint
// restore reuses it (with epochReqs = Warmup, the value at warm-up end) so a
// restored run is governed by exactly the constants of the original.
func banditConfig(cfg OnlineConfig, sigma2 [][]float64, epochReqs int) bandit.Config {
	maxRounds := cfg.MaxRounds
	if budget := (cfg.Epoch - epochReqs) / cfg.Round; budget < maxRounds {
		maxRounds = budget
	}
	return bandit.Config{
		Sigma2:          sigma2,
		Delta:           cfg.Delta,
		M:               1,
		C:               100,
		StabilityRounds: cfg.StabilityRounds,
		Uniform:         cfg.UniformBandit,
		MaxRounds:       maxRounds,
	}
}

// buildSigma is the pure form of buildSigmaLocked, shared with checkpoint
// restore (which must rebuild Σ from snapshotted set/cluster/features before
// committing any controller state).
func buildSigma(model *Model, cfg OnlineConfig, set []int, clusterID int, extended []float64) [][]float64 {
	n := len(set)
	sigma2 := make([][]float64, n)
	for a := 0; a < n; a++ {
		sigma2[a] = make([]float64, n)
		i := set[a]
		prior := model.MeanOHR[clusterID][i]
		for b := 0; b < n; b++ {
			j := set[b]
			if cfg.DisableSideInfo && a != b {
				sigma2[a][b] = math.Inf(1)
				continue
			}
			v, ok := model.SideVariance(i, j, prior, extended)
			if !ok && a != b {
				sigma2[a][b] = math.Inf(1)
				continue
			}
			sigma2[a][b] = v/cfg.Neff + cfg.VarFloor
		}
	}
	return sigma2
}

// finishRoundLocked closes a bandit round: computes the deployed arm's real reward,
// generates fictitious samples for the other arms, and advances or stops the
// bandit.
func (c *Controller) finishRoundLocked() {
	delta := c.syncedMetrics().Sub(c.roundStart)
	obsOHR := delta.OHR()
	obsReward := c.model.Objective.Reward(delta)
	n := len(c.set)
	rewards := make([]float64, n)
	deployed := c.set[c.curArm]
	for b := 0; b < n; b++ {
		if b == c.curArm {
			rewards[b] = obsReward
			continue
		}
		if c.cfg.DisableSideInfo {
			continue // ignored via +Inf variance
		}
		est, ok := c.model.EstimateReward(deployed, c.set[b], obsOHR, c.extended, c.prof)
		if ok {
			rewards[b] = est
		}
	}
	if err := c.alg.Update(c.curArm, rewards); err != nil {
		// Cannot happen with a well-formed controller; deploy best-known.
		c.deployRecommendationLocked("update-error")
		return
	}
	if c.alg.Stopped() {
		c.deployRecommendationLocked(c.alg.StopReason())
		return
	}
	c.curArm = c.alg.NextArm()
	c.eng.SetExpert(c.model.Experts[c.set[c.curArm]])
	c.roundStart = c.syncedMetrics()
	c.roundReqs = 0
}

func (c *Controller) deployRecommendationLocked(reason string) {
	chosen := c.model.Experts[c.set[c.alg.Recommendation()]]
	c.eng.SetExpert(chosen)
	c.phase = PhaseExploit
	c.diags = append(c.diags, EpochDiag{
		Epoch: c.epoch, Cluster: c.clusterID, SetSize: len(c.set),
		Rounds: c.alg.Rounds(), StopReason: reason, Chosen: chosen,
	})
}

// finishEpochLocked rolls over to the next epoch's warm-up, keeping the currently
// deployed expert in place for the new warm-up phase.
func (c *Controller) finishEpochLocked() {
	if c.phase == PhaseIdentify {
		// Identification ran out of epoch: deploy the current recommendation
		// and record the truncated run.
		c.deployRecommendationLocked("epoch-end")
	}
	c.epoch++
	c.epochReqs = 0
	c.roundReqs = 0
	c.alg = nil
	c.phase = PhaseWarmup
	c.extractor.Reset()
}
