package core

import (
	"encoding/json"
	"fmt"
	"io"

	"darwin/internal/cache"
	"darwin/internal/cluster"
	"darwin/internal/features"
	"darwin/internal/neural"
	"darwin/internal/persist"
)

// ModelMagic identifies a framed model file; ModelFormatVersion is the frame
// format version (v2 = persist-framed JSON with checksum; v1 was bare JSON).
const (
	ModelMagic         = "DRWNMODL"
	ModelFormatVersion = 2
)

// modelJSON is the on-disk form of a trained Model. The objective is encoded
// by name (+ parameters) because Objective is an interface.
type modelJSON struct {
	Version         int             `json:"version"`
	Experts         []cache.Expert  `json:"experts"`
	FeatureCfg      features.Config `json:"feature_cfg"`
	Objective       string          `json:"objective"`
	CombinedK       float64         `json:"combined_k,omitempty"`
	Clusters        *cluster.Model  `json:"clusters"`
	ExpertSets      [][]int         `json:"expert_sets"`
	MeanReward      [][]float64     `json:"mean_reward"`
	MeanOHR         [][]float64     `json:"mean_ohr"`
	Predictors      [][]*neural.Net `json:"predictors"`
	ScalerMean      []float64       `json:"scaler_mean"`
	ScalerStd       []float64       `json:"scaler_std"`
	PredictorInputs int             `json:"predictor_inputs"`
	FeatureWindow   int             `json:"feature_window"`
}

const modelVersion = 1

// modelToJSON converts a Model to its serialisable form. It is shared by
// WriteModel and the checkpoint encoder.
func modelToJSON(m *Model) (modelJSON, error) {
	mj := modelJSON{
		Version:         modelVersion,
		Experts:         m.Experts,
		FeatureCfg:      m.FeatureCfg,
		Clusters:        m.Clusters,
		ExpertSets:      m.ExpertSets,
		MeanReward:      m.MeanReward,
		MeanOHR:         m.MeanOHR,
		Predictors:      m.Predictors,
		ScalerMean:      m.ScalerMean,
		ScalerStd:       m.ScalerStd,
		PredictorInputs: m.PredictorInputs,
		FeatureWindow:   m.FeatureWindow,
	}
	switch obj := m.Objective.(type) {
	case OHRObjective:
		mj.Objective = "ohr"
	case BMRObjective:
		mj.Objective = "bmr"
	case CombinedObjective:
		mj.Objective = "combined"
		mj.CombinedK = obj.K
	default:
		return modelJSON{}, fmt.Errorf("core: objective %q is not serialisable", m.Objective.Name())
	}
	return mj, nil
}

// modelFromJSON validates a decoded modelJSON and rebuilds the Model. Shared
// by ReadModel and the checkpoint decoder.
func modelFromJSON(mj modelJSON) (*Model, error) {
	if mj.Version != modelVersion {
		return nil, fmt.Errorf("core: model version %d, want %d", mj.Version, modelVersion)
	}
	if len(mj.Experts) == 0 || mj.Clusters == nil {
		return nil, fmt.Errorf("core: model missing experts or clustering")
	}
	var obj Objective
	switch mj.Objective {
	case "ohr":
		obj = OHRObjective{}
	case "bmr":
		obj = BMRObjective{}
	case "combined":
		obj = CombinedObjective{K: mj.CombinedK}
	default:
		return nil, fmt.Errorf("core: unknown objective %q", mj.Objective)
	}
	k := len(mj.Experts)
	if len(mj.ExpertSets) != mj.Clusters.K() || len(mj.MeanReward) != mj.Clusters.K() || len(mj.MeanOHR) != mj.Clusters.K() {
		return nil, fmt.Errorf("core: per-cluster slices do not match %d clusters", mj.Clusters.K())
	}
	for c, set := range mj.ExpertSets {
		for _, ei := range set {
			if ei < 0 || ei >= k {
				return nil, fmt.Errorf("core: cluster %d references expert %d of %d", c, ei, k)
			}
		}
	}
	if len(mj.Predictors) != k {
		return nil, fmt.Errorf("core: predictor matrix is %dx?, want %dx%d", len(mj.Predictors), k, k)
	}
	return &Model{
		Experts:         mj.Experts,
		FeatureCfg:      mj.FeatureCfg,
		Objective:       obj,
		Clusters:        mj.Clusters,
		ExpertSets:      mj.ExpertSets,
		MeanReward:      mj.MeanReward,
		MeanOHR:         mj.MeanOHR,
		Predictors:      mj.Predictors,
		ScalerMean:      mj.ScalerMean,
		ScalerStd:       mj.ScalerStd,
		PredictorInputs: mj.PredictorInputs,
		FeatureWindow:   mj.FeatureWindow,
	}, nil
}

// WriteModel serialises a trained model: a persist frame (magic, format
// version, length, CRC32) wrapping the JSON payload. Torn or bit-flipped
// files fail ReadModel with a typed *persist.FormatError instead of decoding
// into a half-valid model.
func WriteModel(w io.Writer, m *Model) error {
	mj, err := modelToJSON(m)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(mj)
	if err != nil {
		return err
	}
	return persist.EncodeFrame(w, ModelMagic, ModelFormatVersion, payload)
}

// ReadModel restores a model written by WriteModel.
func ReadModel(r io.Reader) (*Model, error) {
	payload, err := persist.DecodeFrame(r, ModelMagic, ModelFormatVersion)
	if err != nil {
		return nil, fmt.Errorf("core: reading model: %w", err)
	}
	var mj modelJSON
	if err := json.Unmarshal(payload, &mj); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	return modelFromJSON(mj)
}
