package core
