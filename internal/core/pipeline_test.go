package core

import (
	"math"
	"sync"
	"testing"

	"darwin/internal/cache"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

// Small-scale shared fixtures: building a dataset evaluates every expert on
// every trace, so the corpus is kept deliberately tiny and cached.
var (
	fixtureOnce sync.Once
	fixtureDS   *Dataset
	fixtureErr  error
)

func testEval() cache.EvalConfig {
	return cache.EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1}
}

func testExperts() []cache.Expert {
	return cache.Grid([]int{1, 3, 5}, []int64{2 << 10, 20 << 10, 200 << 10})
}

func testTraces(t *testing.T) []*trace.Trace {
	t.Helper()
	var out []*trace.Trace
	for _, pct := range []int{0, 25, 50, 75, 100} {
		for seed := int64(0); seed < 2; seed++ {
			tr, err := tracegen.ImageDownloadMix(pct, 12000, 100+seed+int64(pct))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tr)
		}
	}
	return out
}

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureDS, fixtureErr = BuildDataset(testTraces(t), DatasetConfig{
			Experts: testExperts(),
			Eval:    testEval(),
		})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDS
}

func TestBuildDatasetValidation(t *testing.T) {
	if _, err := BuildDataset(nil, DatasetConfig{}); err == nil {
		t.Fatal("empty trace set accepted")
	}
	tr, _ := tracegen.ImageDownloadMix(50, 1000, 1)
	if _, err := BuildDataset([]*trace.Trace{tr}, DatasetConfig{Experts: []cache.Expert{}, Eval: testEval()}); err == nil {
		t.Fatal("empty expert grid accepted")
	}
}

func TestDatasetShape(t *testing.T) {
	ds := testDataset(t)
	if len(ds.Records) != 10 {
		t.Fatalf("records = %d", len(ds.Records))
	}
	k := len(ds.Experts)
	for _, rec := range ds.Records {
		if len(rec.Metrics) != k || len(rec.CondHit) != k || len(rec.CondMiss) != k {
			t.Fatalf("record %s has wrong shapes", rec.Name)
		}
		if len(rec.Features) != ds.FeatureCfg.VectorLen() {
			t.Fatalf("feature len = %d", len(rec.Features))
		}
		if len(rec.Extended) != ds.FeatureCfg.VectorLen()+ds.FeatureCfg.SizeBuckets {
			t.Fatalf("extended len = %d", len(rec.Extended))
		}
	}
}

func TestDatasetConditionalConsistency(t *testing.T) {
	ds := testDataset(t)
	for _, rec := range ds.Records {
		for i := range ds.Experts {
			ohrI := rec.Metrics[i].OHR()
			// Diagonal: P(i hit | i hit) = 1 when i ever hits, P(i hit | i miss) = 0.
			if ohrI > 0 && math.Abs(rec.CondHit[i][i]-1) > 1e-9 {
				t.Fatalf("%s: CondHit[%d][%d] = %v, want 1", rec.Name, i, i, rec.CondHit[i][i])
			}
			if rec.CondMiss[i][i] != 0 {
				t.Fatalf("%s: CondMiss[%d][%d] = %v, want 0", rec.Name, i, i, rec.CondMiss[i][i])
			}
			for j := range ds.Experts {
				// Law of total probability reconstructs j's marginal.
				got := ohrI*rec.CondHit[i][j] + (1-ohrI)*rec.CondMiss[i][j]
				want := rec.Metrics[j].OHR()
				if math.Abs(got-want) > 1e-6 {
					t.Fatalf("%s: pair (%d,%d): reconstructed %v, want %v", rec.Name, i, j, got, want)
				}
			}
		}
	}
}

func TestDatasetRewardsAndBest(t *testing.T) {
	ds := testDataset(t)
	rec := ds.Records[0]
	rw := ds.Rewards(rec, OHRObjective{})
	best := ds.BestExpert(rec, OHRObjective{})
	for i, v := range rw {
		if v > rw[best] {
			t.Fatalf("BestExpert missed %d", i)
		}
		if math.Abs(v-rec.Metrics[i].OHR()) > 1e-12 {
			t.Fatalf("reward %d != OHR", i)
		}
	}
}

func TestTrainModelShape(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Clusters.K() != 3 {
		t.Fatalf("clusters = %d", m.Clusters.K())
	}
	if len(m.ExpertSets) != 3 || len(m.MeanReward) != 3 || len(m.MeanOHR) != 3 {
		t.Fatal("per-cluster slices wrong length")
	}
	k := len(ds.Experts)
	for c, set := range m.ExpertSets {
		for _, ei := range set {
			if ei < 0 || ei >= k {
				t.Fatalf("cluster %d has invalid expert index %d", c, ei)
			}
		}
	}
}

func TestTrainExpertSetsCoverBest(t *testing.T) {
	// §6.2: "at least one of the trace's best experts is always included in
	// its corresponding expert set".
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for ri, rec := range ds.Records {
		c := m.Clusters.Assignments[ri]
		best := ds.BestExpert(rec, OHRObjective{})
		found := false
		for _, ei := range m.ExpertSets[c] {
			if ei == best {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trace %s: best expert %d missing from cluster %d set %v",
				rec.Name, best, c, m.ExpertSets[c])
		}
	}
}

func TestTrainThetaGrowsSets(t *testing.T) {
	ds := testDataset(t)
	m1, err := Train(ds, TrainConfig{NumClusters: 3, ThetaPct: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m5, err := Train(ds, TrainConfig{NumClusters: 3, ThetaPct: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := func(m *Model) int {
		n := 0
		for _, s := range m.ExpertSets {
			n += len(s)
		}
		return n
	}
	if total(m5) < total(m1) {
		t.Fatalf("θ=5%% sets (%d) smaller than θ=1%% (%d)", total(m5), total(m1))
	}
}

func TestTrainClusteringReducesExperts(t *testing.T) {
	// Fig 5b behaviour: the per-cluster sets should be much smaller than the
	// full grid at θ=1%.
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 4, ThetaPct: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	k := len(ds.Experts)
	var totalFrac float64
	n := 0
	for _, set := range m.ExpertSets {
		if len(set) == 0 {
			continue
		}
		totalFrac += float64(len(set)) / float64(k)
		n++
	}
	if n == 0 {
		t.Fatal("no non-empty expert sets")
	}
	if avg := totalFrac / float64(n); avg > 0.8 {
		t.Fatalf("average set fraction %.2f — clustering reduced nothing", avg)
	}
}

func TestPredictorsExistForSetPairs(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for c, set := range m.ExpertSets {
		for _, i := range set {
			for _, j := range set {
				if i == j {
					continue
				}
				ch, cm, ok := m.PredictCond(i, j, ds.Records[0].Extended)
				if !ok {
					t.Fatalf("cluster %d pair (%d,%d) has no predictor", c, i, j)
				}
				if ch < 0 || ch > 1 || cm < 0 || cm > 1 {
					t.Fatalf("conditional probabilities out of range: %v %v", ch, cm)
				}
			}
		}
	}
}

func TestPredictCondBounds(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m.PredictCond(-1, 0, ds.Records[0].Extended); ok {
		t.Fatal("negative index accepted")
	}
	if _, _, ok := m.PredictCond(0, 0, ds.Records[0].Extended); ok {
		t.Fatal("diagonal should have no predictor")
	}
}

func TestPredictorOrderAccuracy(t *testing.T) {
	// Fig 5c behaviour: for most pairs, the trained predictors order expert
	// hit rates correctly (or the pair is proximal).
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 3, TrainAllPairs: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const proximal = 0.01
	correct, total := 0, 0
	for _, rec := range ds.Records {
		for i := range ds.Experts {
			for j := range ds.Experts {
				if i == j {
					continue
				}
				ohrI := rec.Metrics[i].OHR()
				ohrJ := rec.Metrics[j].OHR()
				est, ok := m.EstimateReward(i, j, ohrI, rec.Extended, rec.Profile)
				if !ok {
					t.Fatalf("missing predictor (%d,%d) with TrainAllPairs", i, j)
				}
				total++
				if math.Abs(ohrI-ohrJ) < proximal {
					correct++ // proximal pairs count as correct (paper's rule)
					continue
				}
				if (est > ohrI) == (ohrJ > ohrI) {
					correct++
				}
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Fatalf("in-sample order accuracy %.2f too low", acc)
	}
}

func TestSideVariance(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal: p(1-p).
	v, ok := m.SideVariance(0, 0, 0.3, ds.Records[0].Extended)
	if !ok || math.Abs(v-0.21) > 1e-12 {
		t.Fatalf("own variance = %v, %v", v, ok)
	}
	// Off-diagonal with a trained pair must lie in [0, 0.25].
	var found bool
	for _, set := range m.ExpertSets {
		if len(set) >= 2 {
			v, ok := m.SideVariance(set[0], set[1], 0.3, ds.Records[0].Extended)
			if !ok {
				t.Fatal("trained pair has no variance")
			}
			if v < 0 || v > 0.25 {
				t.Fatalf("sigma^2 = %v", v)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no multi-expert sets in this fixture")
	}
}

func TestLookupFallback(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Force an empty set for one cluster and check the fallback.
	m.ExpertSets[0] = nil
	m.ExpertSets[1] = nil
	_, set := m.Lookup(ds.Records[0].Features)
	if len(set) != 1 {
		t.Fatalf("fallback set = %v", set)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	if _, err := Train(&Dataset{}, TrainConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
