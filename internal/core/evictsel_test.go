package core

import (
	"testing"

	"darwin/internal/cache"
	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func evictHier(t *testing.T) *cache.Hierarchy {
	t.Helper()
	h, err := cache.New(cache.Config{HOCBytes: 256 << 10, DCBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestEvictionSelectorValidation(t *testing.T) {
	h := evictHier(t)
	if _, err := NewEvictionSelector(nil, EvictionSelectorConfig{Epoch: 1000, Round: 100}); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := NewEvictionSelector(h, EvictionSelectorConfig{Policies: []string{"lru"}, Epoch: 1000, Round: 100}); err == nil {
		t.Error("single policy accepted")
	}
	if _, err := NewEvictionSelector(h, EvictionSelectorConfig{Epoch: 100, Round: 100}); err == nil {
		t.Error("epoch too short accepted")
	}
	if _, err := NewEvictionSelector(h, EvictionSelectorConfig{
		Policies: []string{"lru", "belady"}, Epoch: 10000, Round: 100,
	}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEvictionSelectorIdentifies(t *testing.T) {
	h := evictHier(t)
	s, err := NewEvictionSelector(h, EvictionSelectorConfig{
		Epoch: 20000, Round: 500, StabilityRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.ImageDownloadMix(50, 20000, 88)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		s.Serve(r)
	}
	if !s.Exploiting() && len(s.Choices()) == 0 {
		t.Fatal("selector never committed to a policy")
	}
	deployed := s.Deployed()
	found := false
	for _, p := range []string{"lru", "s4lru", "lfu", "gdsf"} {
		if deployed == p {
			found = true
		}
	}
	if !found {
		t.Fatalf("deployed policy %q not a candidate", deployed)
	}
	if m := s.Metrics(); m.Requests != int64(tr.Len()) {
		t.Fatalf("requests = %d", m.Requests)
	}
}

func TestEvictionSelectorEpochRollover(t *testing.T) {
	h := evictHier(t)
	s, err := NewEvictionSelector(h, EvictionSelectorConfig{
		Epoch: 6000, Round: 300, StabilityRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.ImageDownloadMix(100, 13000, 89)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		s.Serve(r)
	}
	if len(s.Choices()) < 2 {
		t.Fatalf("choices = %v, want 2 completed epochs", s.Choices())
	}
}

func TestSetHOCEvictionMigratesState(t *testing.T) {
	h := evictHier(t)
	h.SetExpert(cache.Expert{Freq: 1, MaxSize: 1 << 20})
	// Make one object HOC-resident under LRU.
	for i := 0; i < 4; i++ {
		h.Serve(cacheReq(7, 1000, int64(i)))
	}
	if !h.HOCContains(7) {
		t.Fatal("setup: object not resident")
	}
	before := h.HOCBytes()
	if err := h.SetHOCEviction("lfu"); err != nil {
		t.Fatal(err)
	}
	if !h.HOCContains(7) {
		t.Fatal("resident object lost in migration")
	}
	if h.HOCBytes() != before {
		t.Fatalf("bytes changed in migration: %d -> %d", before, h.HOCBytes())
	}
	if err := h.SetHOCEviction("belady"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// cacheReq builds a request for the migration test.
func cacheReq(id uint64, size int64, ts int64) trace.Request {
	return trace.Request{ID: id, Size: size, Time: ts}
}
