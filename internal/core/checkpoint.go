package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"darwin/internal/bandit"
	"darwin/internal/cache"
	"darwin/internal/persist"
)

// CheckpointMagic identifies a framed checkpoint file; CheckpointFormatVersion
// is its frame format version.
const (
	CheckpointMagic         = "DRWNCKPT"
	CheckpointFormatVersion = 1
)

// ControllerState is a JSON-serialisable snapshot of the online controller's
// state machine. Together with the engine snapshot (taken from the same
// quiesced moment) it lets a restarted process resume mid-epoch instead of
// relearning from scratch.
//
// Restore semantics are phase-specific:
//
//   - warmup: feature estimation cannot be checkpointed mid-stream (the
//     extractor's tree is transient by design, §6.4), so restore re-enters a
//     fresh warm-up of the same epoch. Epoch counters, diagnostics, and the
//     engine's deployed expert are preserved.
//   - identify: the bandit run resumes exactly — Σ is rebuilt from the
//     snapshotted cluster/set/features, the bandit's estimator state is
//     restored, and the in-flight round continues from its snapshotted
//     metrics baseline.
//   - exploit: counters resume; the deployed expert rides in the engine
//     snapshot.
type ControllerState struct {
	Phase      string        `json:"phase"`
	Epoch      int           `json:"epoch"`
	EpochReqs  int           `json:"epoch_reqs"`
	RoundReqs  int           `json:"round_reqs"`
	ClusterID  int           `json:"cluster_id"`
	Set        []int         `json:"set,omitempty"`
	Extended   []float64     `json:"extended,omitempty"`
	Prof       SizeProfile   `json:"prof"`
	CurArm     int           `json:"cur_arm"`
	RoundStart cache.Metrics `json:"round_start"`
	Bandit     *bandit.State `json:"bandit,omitempty"`
	Diags      []EpochDiag   `json:"diags,omitempty"`
	LearningNS int64         `json:"learning_ns"`
}

// CheckpointState snapshots the controller's state machine.
func (c *Controller) CheckpointState() *ControllerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &ControllerState{
		Phase:      c.phase.String(),
		Epoch:      c.epoch,
		EpochReqs:  c.epochReqs,
		RoundReqs:  c.roundReqs,
		ClusterID:  c.clusterID,
		Set:        append([]int(nil), c.set...),
		Extended:   append([]float64(nil), c.extended...),
		Prof: SizeProfile{
			Fractions: append([]float64(nil), c.prof.Fractions...),
			Sizes:     append([]float64(nil), c.prof.Sizes...),
		},
		CurArm:     c.curArm,
		RoundStart: c.roundStart,
		Diags:      append([]EpochDiag(nil), c.diags...),
		LearningNS: c.learningNS,
	}
	if c.phase == PhaseIdentify && c.alg != nil {
		st.Bandit = c.alg.State()
	}
	return st
}

// restorePlan holds a fully validated controller state ready to commit.
type restorePlan struct {
	phase     Phase
	alg       *bandit.Algorithm // non-nil only for identify
	setExpert bool              // re-deploy set[curArm] on commit (identify)
	st        *ControllerState
}

// prepareRestoreLocked validates st against the controller's model and config
// and builds everything that restore needs, without mutating the controller.
func (c *Controller) prepareRestoreLocked(st *ControllerState) (restorePlan, error) {
	var plan restorePlan
	if st == nil {
		return plan, fmt.Errorf("core: nil controller state")
	}
	switch st.Phase {
	case "warmup":
		plan.phase = PhaseWarmup
	case "identify":
		plan.phase = PhaseIdentify
	case "exploit":
		plan.phase = PhaseExploit
	default:
		return plan, fmt.Errorf("core: unknown phase %q", st.Phase)
	}
	if st.Epoch < 0 || st.EpochReqs < 0 || st.EpochReqs >= c.cfg.Epoch {
		return plan, fmt.Errorf("core: epoch position %d/%d out of range", st.EpochReqs, st.Epoch)
	}
	if st.LearningNS < 0 {
		return plan, fmt.Errorf("core: negative learning time %d", st.LearningNS)
	}
	if len(st.Prof.Fractions) != len(st.Prof.Sizes) {
		return plan, fmt.Errorf("core: size profile has %d fractions but %d sizes",
			len(st.Prof.Fractions), len(st.Prof.Sizes))
	}
	for _, v := range append(append([]float64(nil), st.Prof.Fractions...), st.Extended...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return plan, fmt.Errorf("core: non-finite feature state")
		}
	}
	if len(st.Set) > 0 {
		if st.ClusterID < 0 || st.ClusterID >= c.model.Clusters.K() {
			return plan, fmt.Errorf("core: cluster %d out of range", st.ClusterID)
		}
		for _, ei := range st.Set {
			if ei < 0 || ei >= len(c.model.Experts) {
				return plan, fmt.Errorf("core: snapshot references expert %d of %d", ei, len(c.model.Experts))
			}
		}
	}
	if plan.phase != PhaseIdentify {
		plan.st = st
		return plan, nil
	}

	// Identify: rebuild the bandit run and restore its estimators.
	if st.Bandit == nil {
		return plan, fmt.Errorf("core: identify snapshot missing bandit state")
	}
	if len(st.Set) < 2 {
		return plan, fmt.Errorf("core: identify snapshot has %d-expert set", len(st.Set))
	}
	if st.CurArm < 0 || st.CurArm >= len(st.Set) {
		return plan, fmt.Errorf("core: current arm %d out of range for %d-arm set", st.CurArm, len(st.Set))
	}
	if st.RoundReqs < 0 || st.RoundReqs >= c.cfg.Round {
		return plan, fmt.Errorf("core: round position %d out of range", st.RoundReqs)
	}
	sigma2 := buildSigma(c.model, c.cfg, st.Set, st.ClusterID, st.Extended)
	alg, err := bandit.New(banditConfig(c.cfg, sigma2, c.cfg.Warmup))
	if err != nil {
		return plan, fmt.Errorf("core: rebuilding bandit: %w", err)
	}
	if err := alg.SetState(st.Bandit); err != nil {
		return plan, fmt.Errorf("core: restoring bandit: %w", err)
	}
	plan.alg = alg
	plan.setExpert = true
	plan.st = st
	return plan, nil
}

// commitRestoreLocked applies a validated plan.
func (c *Controller) commitRestoreLocked(plan restorePlan) {
	st := plan.st
	c.phase = plan.phase
	c.epoch = st.Epoch
	c.epochReqs = st.EpochReqs
	c.roundReqs = st.RoundReqs
	c.clusterID = st.ClusterID
	c.set = append([]int(nil), st.Set...)
	c.extended = append([]float64(nil), st.Extended...)
	c.prof = SizeProfile{
		Fractions: append([]float64(nil), st.Prof.Fractions...),
		Sizes:     append([]float64(nil), st.Prof.Sizes...),
	}
	c.curArm = st.CurArm
	c.roundStart = st.RoundStart
	c.alg = plan.alg
	c.diags = append([]EpochDiag(nil), st.Diags...)
	c.learningNS = st.LearningNS
	c.extractor.Reset()
	if plan.phase == PhaseWarmup {
		// Mid-warmup feature state is not recoverable: re-enter this epoch's
		// warm-up from its start, keeping the engine's deployed expert.
		c.epochReqs = 0
		c.roundReqs = 0
	}
	if plan.setExpert {
		c.eng.SetExpert(c.model.Experts[c.set[c.curArm]])
	}
}

// RestoreState restores a snapshot taken by CheckpointState. Everything is
// validated before anything is mutated; on error the controller is unchanged.
func (c *Controller) RestoreState(st *ControllerState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	plan, err := c.prepareRestoreLocked(st)
	if err != nil {
		return err
	}
	c.commitRestoreLocked(plan)
	return nil
}

// Checkpoint bundles everything a restarted proxy needs to resume: the
// trained model (skipping retraining), the engine's full cache state, and the
// controller's state machine.
type Checkpoint struct {
	Model      *Model
	Engine     *cache.ShardedState
	Controller *ControllerState
}

// checkpointJSON is the serialised form; the model rides as its modelJSON.
type checkpointJSON struct {
	Model      *modelJSON          `json:"model,omitempty"`
	Engine     *cache.ShardedState `json:"engine,omitempty"`
	Controller *ControllerState    `json:"controller,omitempty"`
}

// EncodeCheckpoint serialises a checkpoint to its frame payload.
func EncodeCheckpoint(ck *Checkpoint) ([]byte, error) {
	if ck == nil {
		return nil, fmt.Errorf("core: nil checkpoint")
	}
	cj := checkpointJSON{Engine: ck.Engine, Controller: ck.Controller}
	if ck.Model != nil {
		mj, err := modelToJSON(ck.Model)
		if err != nil {
			return nil, err
		}
		cj.Model = &mj
	}
	return json.Marshal(cj)
}

// DecodeCheckpoint parses and validates a frame payload produced by
// EncodeCheckpoint.
func DecodeCheckpoint(payload []byte) (*Checkpoint, error) {
	var cj checkpointJSON
	if err := json.Unmarshal(payload, &cj); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	ck := &Checkpoint{Engine: cj.Engine, Controller: cj.Controller}
	if cj.Model != nil {
		m, err := modelFromJSON(*cj.Model)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint model: %w", err)
		}
		ck.Model = m
	}
	return ck, nil
}

// SaveCheckpoint atomically writes a framed, checksummed checkpoint file.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	payload, err := EncodeCheckpoint(ck)
	if err != nil {
		return err
	}
	return persist.SaveFrame(path, CheckpointMagic, CheckpointFormatVersion, payload, 0o644)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. A missing file
// returns (nil, nil) — cold start; a present-but-corrupt file returns a typed
// error (*persist.FormatError for framing damage).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	payload, err := persist.LoadFrame(path, CheckpointMagic, CheckpointFormatVersion)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(payload)
}

// EncodeCheckpointFrame serialises a checkpoint into the same framed,
// checksummed byte stream SaveCheckpoint writes to disk — the wire format of
// the /state drain handoff: a DRWNCKPT frame whose CRC lets the receiving
// node validate the whole transfer before touching any live state.
func EncodeCheckpointFrame(ck *Checkpoint) ([]byte, error) {
	payload, err := EncodeCheckpoint(ck)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := persist.EncodeFrame(&buf, CheckpointMagic, CheckpointFormatVersion, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpointFrame parses a framed checkpoint produced by
// EncodeCheckpointFrame (or read from a SaveCheckpoint file). Framing damage
// returns a typed *persist.FormatError; nothing panics.
func DecodeCheckpointFrame(data []byte) (*Checkpoint, error) {
	payload, err := persist.DecodeFrame(bytes.NewReader(data), CheckpointMagic, CheckpointFormatVersion)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(payload)
}
