package core

import (
	"fmt"

	"darwin/internal/cache"
	"darwin/internal/features"
	"darwin/internal/par"
	"darwin/internal/trace"
)

// TraceRecord is the offline evaluation of one training trace: its feature
// vectors, every expert's post-warm-up metrics, and the pairwise conditional
// hit statistics that train the cross-expert predictors.
type TraceRecord struct {
	// Name is the trace name.
	Name string
	// Features is the base feature vector (avg size, inter-arrivals, stack
	// distances).
	Features []float64
	// Extended is Features with the bucketised size distribution appended —
	// the cross-expert predictor input (§4.1).
	Extended []float64
	// Profile is the bucketised size profile used by byte-level objectives.
	Profile SizeProfile
	// Metrics[k] is expert k's evaluation on this trace.
	Metrics []cache.Metrics
	// CondHit[i][j] = P(E_j hit | E_i hit); CondMiss[i][j] = P(E_j hit | E_i miss).
	CondHit, CondMiss [][]float64
}

// Dataset is the offline evaluation of a training corpus.
type Dataset struct {
	// Experts is the expert grid shared by all records.
	Experts []cache.Expert
	// FeatureCfg is the feature extraction configuration.
	FeatureCfg features.Config
	// Eval is the cache configuration used for evaluation.
	Eval cache.EvalConfig
	// FeatureWindow is the per-trace feature-extraction window used when the
	// dataset was built (0 = whole trace); the online warm-up should match.
	FeatureWindow int
	// Records holds one entry per trace.
	Records []*TraceRecord
}

// DatasetConfig configures BuildDataset.
type DatasetConfig struct {
	// Experts is the expert grid (default cache.DefaultGrid()).
	Experts []cache.Expert
	// Eval configures the simulated cache (default cache.DefaultEvalConfig()).
	Eval cache.EvalConfig
	// Features configures extraction (default features.DefaultConfig()).
	Features features.Config
	// FeatureWindow caps feature extraction to the first N requests of each
	// trace (0 = whole trace). Setting it to the online phase's N_warmup
	// aligns offline training features with what the online controller can
	// actually observe: inter-arrival and stack-distance averages are
	// censored by the observation window, so mixing window lengths between
	// training and deployment systematically shifts cluster assignment.
	FeatureWindow int
	// Parallelism bounds concurrent trace evaluations; <= 0 selects the
	// engine default (par.Default(), i.e. NumCPU or the -parallelism flag).
	Parallelism int
}

func (c DatasetConfig) withDefaults() DatasetConfig {
	if c.Experts == nil {
		c.Experts = cache.DefaultGrid()
	}
	if c.Eval == (cache.EvalConfig{}) {
		c.Eval = cache.DefaultEvalConfig()
	}
	if c.Features == (features.Config{}) {
		c.Features = features.DefaultConfig()
	}
	return c
}

// BuildDataset evaluates every expert on every trace (with pairwise joint
// statistics) and extracts features. This is the expensive offline step; it
// parallelises across traces.
func BuildDataset(traces []*trace.Trace, cfg DatasetConfig) (*Dataset, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: no traces")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Features.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Experts) == 0 {
		return nil, fmt.Errorf("core: empty expert grid")
	}

	ds := &Dataset{
		Experts:       cfg.Experts,
		FeatureCfg:    cfg.Features,
		Eval:          cfg.Eval,
		FeatureWindow: cfg.FeatureWindow,
		Records:       make([]*TraceRecord, len(traces)),
	}
	// Fan out over the shared engine: one task per trace, results written to
	// Records[ti] so ordering matches the input; failures are aggregated with
	// trace identity rather than fail-fast.
	err := par.ForEach(len(traces), cfg.Parallelism, func(ti int) error {
		rec, err := evaluateTrace(traces[ti], cfg)
		if err != nil {
			return fmt.Errorf("core: trace %s: %w", traces[ti].Name, err)
		}
		ds.Records[ti] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// evaluateTrace runs all experts over one trace in lockstep, accumulating
// marginal and pairwise hit counts after warm-up, and extracts features.
func evaluateTrace(tr *trace.Trace, cfg DatasetConfig) (*TraceRecord, error) {
	k := len(cfg.Experts)
	hier := make([]*cache.Hierarchy, k)
	for i, e := range cfg.Experts {
		h, err := cache.New(cache.Config{
			HOCBytes:    cfg.Eval.HOCBytes,
			DCBytes:     cfg.Eval.DCBytes,
			HOCEviction: cfg.Eval.HOCEviction,
			DCEviction:  cfg.Eval.DCEviction,
			Expert:      e,
		})
		if err != nil {
			return nil, err
		}
		hier[i] = h
	}
	ex, err := features.NewExtractor(cfg.Features)
	if err != nil {
		return nil, err
	}

	warm := int(float64(tr.Len()) * cfg.Eval.WarmupFrac)
	hits := make([]int64, k)
	joint := make([][]int64, k) // joint[i][j] = both i and j hit
	for i := range joint {
		joint[i] = make([]int64, k)
	}
	hitSet := make([]int, 0, k)
	var counted int64

	featureWindow := cfg.FeatureWindow
	if featureWindow <= 0 || featureWindow > tr.Len() {
		featureWindow = tr.Len()
	}
	for ri, r := range tr.Requests {
		if ri < featureWindow {
			ex.Observe(r)
		}
		if ri == warm {
			for _, h := range hier {
				h.ResetMetrics()
			}
		}
		hitSet = hitSet[:0]
		for i, h := range hier {
			if h.Serve(r) == cache.HOCHit && ri >= warm {
				hitSet = append(hitSet, i)
			}
		}
		if ri < warm {
			continue
		}
		counted++
		for _, i := range hitSet {
			hits[i]++
			for _, j := range hitSet {
				joint[i][j]++
			}
		}
	}

	rec := &TraceRecord{
		Name:     tr.Name,
		Features: ex.Vector(),
		Extended: ex.Extended(),
		Profile:  NewSizeProfile(ex.SizeDistribution(), cfg.Features.MinSize, cfg.Features.MaxSize),
		Metrics:  make([]cache.Metrics, k),
		CondHit:  make([][]float64, k),
		CondMiss: make([][]float64, k),
	}
	for i, h := range hier {
		rec.Metrics[i] = h.Metrics()
	}
	for i := 0; i < k; i++ {
		rec.CondHit[i] = make([]float64, k)
		rec.CondMiss[i] = make([]float64, k)
		misses := counted - hits[i]
		for j := 0; j < k; j++ {
			if hits[i] > 0 {
				rec.CondHit[i][j] = float64(joint[i][j]) / float64(hits[i])
			}
			if misses > 0 {
				rec.CondMiss[i][j] = float64(hits[j]-joint[i][j]) / float64(misses)
			}
		}
	}
	return rec, nil
}

// Rewards returns the per-expert rewards of record r under obj.
func (ds *Dataset) Rewards(r *TraceRecord, obj Objective) []float64 {
	out := make([]float64, len(ds.Experts))
	for i, m := range r.Metrics {
		out[i] = obj.Reward(m)
	}
	return out
}

// BestExpert returns the index of the best expert for record r under obj.
func (ds *Dataset) BestExpert(r *TraceRecord, obj Objective) int {
	rw := ds.Rewards(r, obj)
	best := 0
	for i, v := range rw {
		if v > rw[best] {
			best = i
		}
	}
	return best
}
