package core

import (
	"math"
	"testing"

	"darwin/internal/cache"
)

func profileFor(t *testing.T) SizeProfile {
	t.Helper()
	// Two buckets spanning [1k, 4k): representative sizes ~1.4k and ~2.8k.
	return NewSizeProfile([]float64{0.75, 0.25}, 1<<10, 4<<10)
}

func TestNewSizeProfileSizes(t *testing.T) {
	p := NewSizeProfile([]float64{0.5, 0.5}, 1<<10, 4<<10)
	// Log2 range [10,12]; bucket mids 10.5 and 11.5.
	if math.Abs(p.Sizes[0]-math.Exp2(10.5)) > 1e-9 {
		t.Fatalf("bucket 0 size = %v", p.Sizes[0])
	}
	if math.Abs(p.Sizes[1]-math.Exp2(11.5)) > 1e-9 {
		t.Fatalf("bucket 1 size = %v", p.Sizes[1])
	}
}

func TestMeanSize(t *testing.T) {
	p := profileFor(t)
	want := 0.75*p.Sizes[0] + 0.25*p.Sizes[1]
	if math.Abs(p.MeanSize()-want) > 1e-9 {
		t.Fatalf("MeanSize = %v, want %v", p.MeanSize(), want)
	}
}

func TestMeanSizeBelow(t *testing.T) {
	p := profileFor(t)
	// Threshold between the buckets: only bucket 0 counts.
	th := int64(p.Sizes[0]) + 1
	want := 0.75 * p.Sizes[0]
	if got := p.MeanSizeBelow(th); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanSizeBelow = %v, want %v", got, want)
	}
	if p.MeanSizeBelow(1) != 0 {
		t.Fatal("threshold below all buckets should be 0")
	}
}

func TestEstimateBMRBounds(t *testing.T) {
	p := profileFor(t)
	e := cache.Expert{MaxSize: 1 << 20}
	if bmr := p.EstimateBMR(0, e); bmr != 1 {
		t.Fatalf("BMR at OHR=0 should be 1, got %v", bmr)
	}
	for _, ohr := range []float64{0, 0.3, 0.7, 1} {
		bmr := p.EstimateBMR(ohr, e)
		if bmr < 0 || bmr > 1 {
			t.Fatalf("BMR(%v) = %v outside [0,1]", ohr, bmr)
		}
	}
	// Higher hit rate → lower BMR.
	if p.EstimateBMR(0.8, e) >= p.EstimateBMR(0.2, e) {
		t.Fatal("BMR must decrease with OHR")
	}
}

func TestEstimateBMRSizeThresholdMatters(t *testing.T) {
	p := profileFor(t)
	small := cache.Expert{MaxSize: int64(p.Sizes[0]) + 1} // only small objects hit
	large := cache.Expert{MaxSize: 1 << 20}               // everything can hit
	if p.EstimateBMR(0.5, small) <= p.EstimateBMR(0.5, large) {
		t.Fatal("same OHR over smaller objects should save fewer bytes (higher BMR)")
	}
}

func TestEstimateBMREmptyProfile(t *testing.T) {
	var p SizeProfile
	if got := p.EstimateBMR(0.5, cache.Expert{MaxSize: 100}); got != 1 {
		t.Fatalf("empty profile BMR = %v, want 1", got)
	}
}

func TestOHRObjective(t *testing.T) {
	o := OHRObjective{}
	m := cache.Metrics{Requests: 10, HOCHits: 3}
	if o.Reward(m) != 0.3 {
		t.Fatal("OHR reward wrong")
	}
	if o.RewardFromOHR(0.42, SizeProfile{}, cache.Expert{}) != 0.42 {
		t.Fatal("OHR estimate must pass through")
	}
	if o.Name() != "ohr" {
		t.Fatal("name")
	}
}

func TestBMRObjectiveSign(t *testing.T) {
	o := BMRObjective{}
	lowBMR := cache.Metrics{Requests: 10, Bytes: 1000, HOCHitBytes: 900}
	highBMR := cache.Metrics{Requests: 10, Bytes: 1000, HOCHitBytes: 100}
	if o.Reward(lowBMR) <= o.Reward(highBMR) {
		t.Fatal("lower BMR must score higher")
	}
	p := profileFor(t)
	if o.RewardFromOHR(0.9, p, cache.Expert{MaxSize: 1 << 20}) <=
		o.RewardFromOHR(0.1, p, cache.Expert{MaxSize: 1 << 20}) {
		t.Fatal("estimated reward must increase with OHR")
	}
}

func TestCombinedObjective(t *testing.T) {
	o := CombinedObjective{K: 0.5}
	m := cache.Metrics{Requests: 10, HOCHits: 4, Bytes: 1000, HOCHitBytes: 600}
	want := 0.4 - 0.5*0.4
	if math.Abs(o.Reward(m)-want) > 1e-12 {
		t.Fatalf("combined reward = %v, want %v", o.Reward(m), want)
	}
	if (CombinedObjective{}).k() != 0.5 {
		t.Fatal("default K should be 0.5")
	}
}

func TestObjectiveByName(t *testing.T) {
	for _, name := range []string{"", "ohr", "bmr", "combined"} {
		if _, err := ObjectiveByName(name); err != nil {
			t.Errorf("ObjectiveByName(%q): %v", name, err)
		}
	}
	if _, err := ObjectiveByName("latency"); err == nil {
		t.Fatal("unknown objective accepted")
	}
}
