package core

import (
	"fmt"

	"darwin/internal/bandit"
	"darwin/internal/cache"
	"darwin/internal/trace"
)

// EvictionSelector implements the paper's §7 future-work direction: applying
// Darwin's online expert-selection machinery to *eviction* decisions. The
// arms are HOC eviction policies; each epoch the selector deploys policies
// over rounds on the live cache (migrating resident objects on each swap via
// Hierarchy.SetHOCEviction), collects the observed objective reward, and
// commits to the identified best policy for the remainder of the epoch.
//
// Eviction policies have no cross-expert structure analogous to the
// admission experts' threshold nesting, so no fictitious samples are
// generated: the bandit runs with standard feedback (infinite off-diagonal
// variances), which the paper's framework also supports. A systematic
// eviction-side predictor is exactly what the paper defers to future work.
type EvictionSelector struct {
	hier      *cache.Hierarchy
	cfg       EvictionSelectorConfig
	objective Objective

	alg        *bandit.Algorithm
	curArm     int
	epochReqs  int
	roundReqs  int
	roundStart cache.Metrics
	exploiting bool
	choices    []string
}

// EvictionSelectorConfig parameterises the selector.
type EvictionSelectorConfig struct {
	// Policies are the candidate HOC eviction policies (default
	// {"lru","s4lru","lfu","gdsf"}).
	Policies []string
	// Epoch, Round mirror the admission controller's online knobs.
	Epoch, Round int
	// Delta is the bandit failure probability.
	Delta float64
	// StabilityRounds is the practical stop (default 5).
	StabilityRounds int
	// RewardVariance is the assumed per-round reward variance (default
	// 0.25/50, matching the admission controller's Neff scaling of a
	// worst-case Bernoulli round).
	RewardVariance float64
	// Objective is the reward (default OHRObjective).
	Objective Objective
}

func (c EvictionSelectorConfig) withDefaults() EvictionSelectorConfig {
	if len(c.Policies) == 0 {
		c.Policies = []string{"lru", "s4lru", "lfu", "gdsf"}
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.StabilityRounds == 0 {
		c.StabilityRounds = 5
	}
	if c.RewardVariance <= 0 {
		c.RewardVariance = 0.25 / 50
	}
	if c.Objective == nil {
		c.Objective = OHRObjective{}
	}
	return c
}

// NewEvictionSelector wires a selector to a hierarchy.
func NewEvictionSelector(hier *cache.Hierarchy, cfg EvictionSelectorConfig) (*EvictionSelector, error) {
	if hier == nil {
		return nil, fmt.Errorf("core: nil hierarchy")
	}
	cfg = cfg.withDefaults()
	if len(cfg.Policies) < 2 {
		return nil, fmt.Errorf("core: need at least 2 eviction policies")
	}
	if cfg.Epoch <= 0 || cfg.Round <= 0 || cfg.Round*(len(cfg.Policies)+1) > cfg.Epoch {
		return nil, fmt.Errorf("core: epoch %d too short for %d policies at round %d",
			cfg.Epoch, len(cfg.Policies), cfg.Round)
	}
	for _, p := range cfg.Policies {
		if _, err := cache.NewEviction(p); err != nil {
			return nil, err
		}
	}
	s := &EvictionSelector{hier: hier, cfg: cfg, objective: cfg.Objective}
	if err := s.startEpoch(); err != nil {
		return nil, err
	}
	return s, nil
}

// startEpoch (re)initialises the bandit with standard feedback.
func (s *EvictionSelector) startEpoch() error {
	own := make([]float64, len(s.cfg.Policies))
	for i := range own {
		own[i] = s.cfg.RewardVariance
	}
	alg, err := bandit.New(bandit.Config{
		Sigma2:          bandit.StandardSigma2(own),
		Delta:           s.cfg.Delta,
		M:               1,
		C:               100,
		StabilityRounds: s.cfg.StabilityRounds,
		MaxRounds:       s.cfg.Epoch/s.cfg.Round - 1,
	})
	if err != nil {
		return err
	}
	s.alg = alg
	s.exploiting = false
	s.epochReqs = 0
	s.roundReqs = 0
	s.curArm = alg.NextArm()
	if err := s.hier.SetHOCEviction(s.cfg.Policies[s.curArm]); err != nil {
		return err
	}
	s.roundStart = s.hier.Metrics()
	return nil
}

// Serve processes one request, advancing the selection state machine.
func (s *EvictionSelector) Serve(r trace.Request) cache.Result {
	res := s.hier.Serve(r)
	s.epochReqs++
	if !s.exploiting {
		s.roundReqs++
		if s.roundReqs >= s.cfg.Round {
			s.finishRound()
		}
	}
	if s.epochReqs >= s.cfg.Epoch {
		s.choices = append(s.choices, s.Deployed())
		_ = s.startEpoch() // policies already validated; cannot fail
	}
	return res
}

func (s *EvictionSelector) finishRound() {
	delta := s.hier.Metrics().Sub(s.roundStart)
	rewards := make([]float64, len(s.cfg.Policies))
	rewards[s.curArm] = s.objective.Reward(delta)
	if err := s.alg.Update(s.curArm, rewards); err != nil {
		s.exploiting = true
		return
	}
	if s.alg.Stopped() {
		best := s.alg.Recommendation()
		_ = s.hier.SetHOCEviction(s.cfg.Policies[best])
		s.curArm = best
		s.exploiting = true
		return
	}
	next := s.alg.NextArm()
	if next != s.curArm {
		_ = s.hier.SetHOCEviction(s.cfg.Policies[next])
		s.curArm = next
	}
	s.roundStart = s.hier.Metrics()
	s.roundReqs = 0
}

// Deployed returns the currently deployed eviction policy name.
func (s *EvictionSelector) Deployed() string { return s.cfg.Policies[s.curArm] }

// Exploiting reports whether identification has finished for this epoch.
func (s *EvictionSelector) Exploiting() bool { return s.exploiting }

// Choices returns the policy committed to at the end of each completed
// epoch.
func (s *EvictionSelector) Choices() []string { return append([]string(nil), s.choices...) }

// Metrics returns the hierarchy's metrics.
func (s *EvictionSelector) Metrics() cache.Metrics { return s.hier.Metrics() }
