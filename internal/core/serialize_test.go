package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestModelRoundTrip(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Experts) != len(m.Experts) {
		t.Fatalf("experts %d != %d", len(got.Experts), len(m.Experts))
	}
	if got.Objective.Name() != m.Objective.Name() {
		t.Fatalf("objective %q != %q", got.Objective.Name(), m.Objective.Name())
	}
	// Cluster assignment must be identical for every training point.
	for ri, rec := range ds.Records {
		if got.Clusters.Assign(rec.Features) != m.Clusters.Assign(rec.Features) {
			t.Fatalf("record %d assigned differently after round trip", ri)
		}
	}
	// Predictor outputs must be bit-identical.
	for i := range m.Predictors {
		for j := range m.Predictors[i] {
			if (m.Predictors[i][j] == nil) != (got.Predictors[i][j] == nil) {
				t.Fatalf("predictor (%d,%d) nil-ness changed", i, j)
			}
			if m.Predictors[i][j] == nil {
				continue
			}
			a, am, _ := m.PredictCond(i, j, ds.Records[0].Extended)
			b, bm, _ := got.PredictCond(i, j, ds.Records[0].Extended)
			if math.Abs(a-b) > 1e-12 || math.Abs(am-bm) > 1e-12 {
				t.Fatalf("predictor (%d,%d) output changed: %v/%v vs %v/%v", i, j, a, am, b, bm)
			}
		}
	}
	// Lookup must behave identically.
	c1, s1 := m.Lookup(ds.Records[0].Features)
	c2, s2 := got.Lookup(ds.Records[0].Features)
	if c1 != c2 || len(s1) != len(s2) {
		t.Fatalf("Lookup diverged: (%d,%v) vs (%d,%v)", c1, s1, c2, s2)
	}
}

func TestModelRoundTripCombinedObjective(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 2, Seed: 1, Objective: CombinedObjective{K: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	co, ok := got.Objective.(CombinedObjective)
	if !ok || co.K != 1.5 {
		t.Fatalf("combined objective K lost: %+v", got.Objective)
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99}`,
		`{"version": 1}`, // missing experts/clusters
		`{"version": 1, "objective": "bogus", "experts": [{"Freq":1,"MaxSize":10}], "clusters": {"Centroids": [[0]], "Mean": [0], "Std": [1]}, "expert_sets": [[0]], "mean_reward": [[0]], "mean_ohr": [[0]], "predictors": [[null]]}`,
	}
	for i, in := range cases {
		if _, err := ReadModel(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage model accepted", i)
		}
	}
}

func TestReadModelRejectsOutOfRangeExpertSet(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.ExpertSets[0] = []int{999}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf); err == nil {
		t.Fatal("out-of-range expert index accepted")
	}
}

func TestSerializedControllerWorks(t *testing.T) {
	// A model restored from disk must drive the online controller.
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := newHier(t)
	ctrl, err := NewController(restored, h, onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraces(t)[0]
	ctrl.Play(tr)
	if ctrl.Metrics().Requests != int64(tr.Len()) {
		t.Fatal("restored model controller did not serve")
	}
}

func TestNoSizeDistributionAblation(t *testing.T) {
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 2, Seed: 1, NoSizeDistribution: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.PredictorInputs != ds.FeatureCfg.VectorLen() {
		t.Fatalf("PredictorInputs = %d, want %d", m.PredictorInputs, ds.FeatureCfg.VectorLen())
	}
	// Predictions must still work on full extended vectors (truncated
	// internally) and survive a serialisation round trip.
	found := false
	for _, set := range m.ExpertSets {
		if len(set) >= 2 {
			ch, cm, ok := m.PredictCond(set[0], set[1], ds.Records[0].Extended)
			if !ok || ch < 0 || ch > 1 || cm < 0 || cm > 1 {
				t.Fatalf("truncated predictor misbehaved: %v %v %v", ch, cm, ok)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no multi-expert set")
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PredictorInputs != m.PredictorInputs {
		t.Fatalf("PredictorInputs lost in round trip: %d", got.PredictorInputs)
	}
}
