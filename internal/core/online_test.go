package core

import (
	"time"

	"testing"

	"darwin/internal/cache"
	"darwin/internal/tracegen"
)

func onlineCfg() OnlineConfig {
	return OnlineConfig{
		Epoch:           12000,
		Warmup:          1500,
		Round:           400,
		Delta:           0.05,
		StabilityRounds: 3,
		Neff:            50,
		VarFloor:        1e-4,
	}
}

func trainedModel(t *testing.T) *Model {
	t.Helper()
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newHier(t *testing.T) *cache.Hierarchy {
	t.Helper()
	ec := testEval()
	h, err := cache.New(cache.Config{HOCBytes: ec.HOCBytes, DCBytes: ec.DCBytes})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewControllerValidation(t *testing.T) {
	m := trainedModel(t)
	h := newHier(t)
	if _, err := NewController(nil, h, onlineCfg()); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewController(m, nil, onlineCfg()); err == nil {
		t.Error("nil hierarchy accepted")
	}
	bad := onlineCfg()
	bad.Epoch = bad.Warmup // no room for rounds
	if _, err := NewController(m, h, bad); err == nil {
		t.Error("epoch shorter than warmup+rounds accepted")
	}
	bad2 := onlineCfg()
	bad2.Delta = 1.5
	if _, err := NewController(m, h, bad2); err == nil {
		t.Error("bad delta accepted")
	}
}

func TestDefaultOnlineConfigValid(t *testing.T) {
	if err := DefaultOnlineConfig().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestControllerPhaseProgression(t *testing.T) {
	m := trainedModel(t)
	h := newHier(t)
	c, err := NewController(m, h, onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	if c.Phase() != PhaseWarmup {
		t.Fatalf("initial phase = %v", c.Phase())
	}
	tr, err := tracegen.ImageDownloadMix(50, 12000, 200)
	if err != nil {
		t.Fatal(err)
	}
	sawIdentify, sawExploit := false, false
	for _, r := range tr.Requests {
		c.Serve(r)
		switch c.Phase() {
		case PhaseIdentify:
			sawIdentify = true
		case PhaseExploit:
			sawExploit = true
		}
	}
	if !sawExploit {
		t.Fatal("controller never reached exploit phase")
	}
	diags := c.Diags()
	if len(diags) == 0 {
		t.Fatal("no epoch diagnostics recorded")
	}
	d := diags[0]
	if d.SetSize > 1 && !sawIdentify {
		t.Fatal("multi-expert set but no identify phase observed")
	}
	if d.Chosen == (cache.Expert{}) {
		t.Fatal("no expert chosen")
	}
	if d.SetSize > 1 && d.Rounds < d.SetSize {
		t.Fatalf("identification used %d rounds for %d arms (must init all)", d.Rounds, d.SetSize)
	}
}

func TestControllerEpochRollover(t *testing.T) {
	m := trainedModel(t)
	h := newHier(t)
	cfg := onlineCfg()
	c, err := NewController(m, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.ImageDownloadMix(30, cfg.Epoch*2+100, 201)
	if err != nil {
		t.Fatal(err)
	}
	c.Play(tr)
	diags := c.Diags()
	if len(diags) < 2 {
		t.Fatalf("expected >= 2 epochs of diagnostics, got %d", len(diags))
	}
	if diags[0].Epoch == diags[1].Epoch {
		t.Fatal("epoch counter did not advance")
	}
}

func TestControllerPicksGoodExpert(t *testing.T) {
	// End-to-end sanity: Darwin's chosen expert should be within the top
	// half of the grid for the served trace (hindsight evaluation).
	m := trainedModel(t)
	h := newHier(t)
	cfg := onlineCfg()
	c, err := NewController(m, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.ImageDownloadMix(100, 14000, 300) // pure image
	if err != nil {
		t.Fatal(err)
	}
	c.Play(tr)
	diags := c.Diags()
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	chosen := diags[len(diags)-1].Chosen
	// Hindsight: evaluate all experts on the trace.
	ms, err := cache.EvaluateAll(tr, m.Experts, testEval())
	if err != nil {
		t.Fatal(err)
	}
	chosenIdx := cache.Index(m.Experts, chosen)
	if chosenIdx < 0 {
		t.Fatalf("chosen expert %v not in grid", chosen)
	}
	better := 0
	for _, mm := range ms {
		if mm.OHR() > ms[chosenIdx].OHR() {
			better++
		}
	}
	if better > len(ms)/2 {
		t.Fatalf("chosen expert %v ranks %d/%d by hindsight OHR", chosen, better+1, len(ms))
	}
}

func TestControllerDisableSideInfo(t *testing.T) {
	m := trainedModel(t)
	h := newHier(t)
	cfg := onlineCfg()
	cfg.DisableSideInfo = true
	c, err := NewController(m, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.ImageDownloadMix(50, 12000, 203)
	if err != nil {
		t.Fatal(err)
	}
	c.Play(tr)
	if len(c.Diags()) == 0 {
		t.Fatal("ablation run recorded no diagnostics")
	}
}

func TestControllerSingletonSet(t *testing.T) {
	m := trainedModel(t)
	// Shrink every set to one expert.
	for i := range m.ExpertSets {
		if len(m.ExpertSets[i]) > 1 {
			m.ExpertSets[i] = m.ExpertSets[i][:1]
		}
	}
	h := newHier(t)
	c, err := NewController(m, h, onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.ImageDownloadMix(50, 4000, 204)
	if err != nil {
		t.Fatal(err)
	}
	c.Play(tr)
	d := c.Diags()
	if len(d) == 0 || d[0].StopReason != "singleton" {
		t.Fatalf("diags = %+v, want singleton stop", d)
	}
	if c.Phase() != PhaseExploit {
		t.Fatalf("phase = %v", c.Phase())
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseWarmup.String() != "warmup" || PhaseIdentify.String() != "identify" || PhaseExploit.String() != "exploit" {
		t.Fatal("phase strings wrong")
	}
	if Phase(9).String() == "" {
		t.Fatal("unknown phase should still render")
	}
}

func TestControllerWithoutPredictors(t *testing.T) {
	// A model trained with SkipPredictors has no cross-expert networks: the
	// controller must degrade gracefully to standard bandit feedback
	// (infinite off-diagonal variances) rather than fail.
	ds := testDataset(t)
	m, err := Train(ds, TrainConfig{NumClusters: 3, Seed: 1, SkipPredictors: true})
	if err != nil {
		t.Fatal(err)
	}
	h := newHier(t)
	c, err := NewController(m, h, onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraces(t)[2]
	c.Play(tr)
	if c.Metrics().Requests != int64(tr.Len()) {
		t.Fatal("controller stalled without predictors")
	}
	if len(c.Diags()) == 0 {
		t.Fatal("no diagnostics")
	}
}

func TestControllerUniformBanditAblation(t *testing.T) {
	m := trainedModel(t)
	h := newHier(t)
	cfg := onlineCfg()
	cfg.UniformBandit = true
	c, err := NewController(m, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraces(t)[4]
	c.Play(tr)
	if len(c.Diags()) == 0 {
		t.Fatal("uniform-bandit run recorded nothing")
	}
}

func TestLearningDurationAccounting(t *testing.T) {
	m := trainedModel(t)
	h := newHier(t)
	c, err := NewController(m, h, onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr := testTraces(t)[0]
	c.Play(tr)
	d := c.LearningDuration()
	if d <= 0 {
		t.Fatal("no learning time recorded")
	}
	if d > time.Second {
		t.Fatalf("learning time %v implausibly large for a %d-request trace", d, tr.Len())
	}
}
