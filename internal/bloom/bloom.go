// Package bloom implements the probabilistic set membership filters used by
// the CDN cache substrate: a classic Bloom filter for the disk cache's
// "one-hit wonder" admission rule (admit only on the second request, §2.2 of
// the Darwin paper), and a counting variant used to track per-object request
// frequencies for the HOC admission experts.
package bloom

import (
	"hash/fnv"
	"math"
)

// Filter is a standard Bloom filter with double hashing.
// The zero value is unusable; construct with New.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // number of hash functions
	count uint64 // number of Add calls (approximate element count)
}

// New creates a Bloom filter sized for n expected elements at the given
// target false-positive probability (0 < fp < 1). Invalid arguments are
// clamped to safe minima.
func New(n int, fp float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// hash2 derives two independent 64-bit hashes of key using FNV-1a over the
// key bytes and a seeded variant; double hashing g_i = h1 + i*h2 gives the k
// probe positions (Kirsch–Mitzenmacher).
func hash2(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h.Write([]byte{0x9e, 0x37, 0x79, 0xb9})
	h2 := h.Sum64() | 1 // force odd so probes cycle through all positions
	return h1, h2
}

// FNV-1a constants (hash/fnv), inlined for the allocation-free uint64 path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash2U64 is hash2 over the 8 little-endian bytes of id, computed inline so
// the cache's per-request probes allocate nothing. It is bit-identical to
// hash2(string(le8(id))), which the simulator hot path used to call — the
// probe positions, and therefore every recorded metric, are unchanged.
func hash2U64(id uint64) (uint64, uint64) {
	h := uint64(fnvOffset64)
	for i := 0; i < 64; i += 8 {
		h ^= (id >> i) & 0xff
		h *= fnvPrime64
	}
	h1 := h
	for _, b := range [4]uint64{0x9e, 0x37, 0x79, 0xb9} {
		h ^= b
		h *= fnvPrime64
	}
	return h1, h | 1
}

// Add inserts key into the filter.
func (f *Filter) Add(key string) {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.count++
}

// Contains reports whether key may have been added (false positives possible,
// false negatives impossible).
func (f *Filter) Contains(key string) bool {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// TestAndAdd reports whether key was (probably) present and inserts it.
func (f *Filter) TestAndAdd(key string) bool {
	present := f.Contains(key)
	f.Add(key)
	return present
}

// AddU64 inserts a uint64 key without allocating. Equivalent to Add on the
// key's 8 little-endian bytes.
func (f *Filter) AddU64(id uint64) {
	h1, h2 := hash2U64(id)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.count++
}

// ContainsU64 reports membership of a uint64 key without allocating.
func (f *Filter) ContainsU64(id uint64) bool {
	h1, h2 := hash2U64(id)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// TestAndAddU64 reports whether the uint64 key was (probably) present and
// inserts it, computing the probe positions once.
func (f *Filter) TestAndAddU64(id uint64) bool {
	h1, h2 := hash2U64(id)
	present := true
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		word, bit := pos/64, uint64(1)<<(pos%64)
		if f.bits[word]&bit == 0 {
			present = false
			f.bits[word] |= bit
		}
	}
	f.count++
	return present
}

// ApproxCount returns the number of Add calls made.
func (f *Filter) ApproxCount() uint64 { return f.count }

// Reset clears the filter in place.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

// Bits returns the filter size in bits (for overhead accounting).
func (f *Filter) Bits() uint64 { return f.m }

// Counting is a counting Bloom filter: an approximate per-key counter with
// bounded memory, used to track object request frequencies. Increment raises
// k counters; Estimate returns the minimum (a count–min sketch style bound
// that can only over-estimate).
type Counting struct {
	counters []uint32
	m        uint64
	k        int
}

// NewCounting creates a counting filter sized for n expected distinct keys at
// the given per-key over-count probability.
func NewCounting(n int, fp float64) *Counting {
	base := New(n, fp)
	return &Counting{counters: make([]uint32, base.m), m: base.m, k: base.k}
}

// Increment adds one to key's count and returns the new estimate.
func (c *Counting) Increment(key string) uint32 {
	h1, h2 := hash2(key)
	min := uint32(math.MaxUint32)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		if c.counters[pos] != math.MaxUint32 {
			c.counters[pos]++
		}
		if c.counters[pos] < min {
			min = c.counters[pos]
		}
	}
	return min
}

// IncrementU64 adds one to a uint64 key's count without allocating and
// returns the new estimate. Equivalent to Increment on the key's 8
// little-endian bytes.
func (c *Counting) IncrementU64(id uint64) uint32 {
	h1, h2 := hash2U64(id)
	min := uint32(math.MaxUint32)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		if c.counters[pos] != math.MaxUint32 {
			c.counters[pos]++
		}
		if c.counters[pos] < min {
			min = c.counters[pos]
		}
	}
	return min
}

// EstimateU64 returns an upper bound on a uint64 key's count, allocation-free.
func (c *Counting) EstimateU64(id uint64) uint32 {
	h1, h2 := hash2U64(id)
	min := uint32(math.MaxUint32)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		if c.counters[pos] < min {
			min = c.counters[pos]
		}
	}
	return min
}

// Estimate returns an upper bound on how many times key was incremented.
func (c *Counting) Estimate(key string) uint32 {
	h1, h2 := hash2(key)
	min := uint32(math.MaxUint32)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		if c.counters[pos] < min {
			min = c.counters[pos]
		}
	}
	return min
}

// Reset clears all counters.
func (c *Counting) Reset() {
	for i := range c.counters {
		c.counters[i] = 0
	}
}
