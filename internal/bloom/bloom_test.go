package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestFilterNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFilterNoFalseNegativesProperty(t *testing.T) {
	f := New(4096, 0.01)
	check := func(key string) bool {
		f.Add(key)
		return f.Contains(key)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterFalsePositiveRate(t *testing.T) {
	f := New(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.4f exceeds 5%%", rate)
	}
}

func TestTestAndAdd(t *testing.T) {
	f := New(100, 0.01)
	if f.TestAndAdd("a") {
		t.Fatal("first TestAndAdd should report absent")
	}
	if !f.TestAndAdd("a") {
		t.Fatal("second TestAndAdd should report present")
	}
	if f.ApproxCount() != 2 {
		t.Fatalf("ApproxCount = %d, want 2", f.ApproxCount())
	}
}

func TestFilterReset(t *testing.T) {
	f := New(100, 0.01)
	f.Add("x")
	f.Reset()
	if f.Contains("x") {
		t.Fatal("Reset did not clear membership")
	}
	if f.ApproxCount() != 0 {
		t.Fatal("Reset did not clear count")
	}
}

func TestNewClampsArguments(t *testing.T) {
	f := New(-5, 2.0)
	f.Add("k")
	if !f.Contains("k") {
		t.Fatal("clamped filter must still work")
	}
	if f.Bits() < 64 {
		t.Fatalf("Bits = %d, want >= 64", f.Bits())
	}
}

func TestCountingMonotoneUpperBound(t *testing.T) {
	c := NewCounting(1000, 0.01)
	truth := map[string]uint32{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("obj-%d", i%60)
		truth[key]++
		c.Increment(key)
	}
	for key, want := range truth {
		if got := c.Estimate(key); got < want {
			t.Fatalf("Estimate(%s) = %d < true count %d (underestimate impossible)", key, got, want)
		}
	}
}

func TestCountingIncrementReturnsEstimate(t *testing.T) {
	c := NewCounting(100, 0.01)
	if got := c.Increment("a"); got < 1 {
		t.Fatalf("Increment returned %d, want >= 1", got)
	}
	if got := c.Increment("a"); got < 2 {
		t.Fatalf("second Increment returned %d, want >= 2", got)
	}
}

func TestCountingReset(t *testing.T) {
	c := NewCounting(100, 0.01)
	c.Increment("a")
	c.Reset()
	if got := c.Estimate("a"); got != 0 {
		t.Fatalf("Estimate after Reset = %d, want 0", got)
	}
}

func TestCountingExactWhenSparse(t *testing.T) {
	// With very few keys and a large filter, estimates should be exact.
	c := NewCounting(100000, 0.001)
	for i := 0; i < 5; i++ {
		c.Increment("solo")
	}
	if got := c.Estimate("solo"); got != 5 {
		t.Fatalf("Estimate = %d, want exactly 5", got)
	}
	if got := c.Estimate("other"); got != 0 {
		t.Fatalf("Estimate(other) = %d, want 0", got)
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	f := New(1<<20, 0.01)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(keys[i%len(keys)])
	}
}

func BenchmarkCountingIncrement(b *testing.B) {
	c := NewCounting(1<<20, 0.01)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Increment(keys[i%len(keys)])
	}
}

// leKey is the 8-little-endian-byte string encoding the uint64 hot path
// replaced; the U64 methods must be bit-identical to the string methods on it.
func leKey(id uint64) string {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(id >> (8 * i))
	}
	return string(b[:])
}

func TestHash2U64MatchesStringHash(t *testing.T) {
	ids := []uint64{0, 1, 0xff, 1 << 32, 0xdeadbeefcafebabe, ^uint64(0)}
	for i := uint64(0); i < 1000; i++ {
		ids = append(ids, i*2654435761)
	}
	for _, id := range ids {
		wh1, wh2 := hash2(leKey(id))
		gh1, gh2 := hash2U64(id)
		if gh1 != wh1 || gh2 != wh2 {
			t.Fatalf("hash2U64(%#x) = (%#x,%#x), want (%#x,%#x)", id, gh1, gh2, wh1, wh2)
		}
	}
}

func TestFilterU64MatchesString(t *testing.T) {
	fs := New(1<<12, 0.01)
	fu := New(1<<12, 0.01)
	for i := uint64(0); i < 500; i++ {
		id := i * 0x9e3779b97f4a7c15
		if got, want := fu.TestAndAddU64(id), fs.TestAndAdd(leKey(id)); got != want {
			t.Fatalf("TestAndAddU64(%#x) = %v, want %v", id, got, want)
		}
	}
	for i := uint64(0); i < 500; i++ {
		id := i * 0x9e3779b97f4a7c15
		if got, want := fu.ContainsU64(id), fs.Contains(leKey(id)); got != want {
			t.Fatalf("ContainsU64(%#x) = %v, want %v", id, got, want)
		}
		if !fu.ContainsU64(id) {
			t.Fatalf("false negative for %#x", id)
		}
	}
	fu2 := New(1<<12, 0.01)
	for i := uint64(0); i < 500; i++ {
		fu2.AddU64(i)
		if !fu2.ContainsU64(i) {
			t.Fatalf("AddU64 then ContainsU64(%d) = false", i)
		}
	}
}

func TestCountingU64MatchesString(t *testing.T) {
	cs := NewCounting(1<<12, 0.01)
	cu := NewCounting(1<<12, 0.01)
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 300; i++ {
			if got, want := cu.IncrementU64(i), cs.Increment(leKey(i)); got != want {
				t.Fatalf("IncrementU64(%d) = %d, want %d", i, got, want)
			}
		}
	}
	for i := uint64(0); i < 300; i++ {
		if got, want := cu.EstimateU64(i), cs.Estimate(leKey(i)); got != want {
			t.Fatalf("EstimateU64(%d) = %d, want %d", i, got, want)
		}
	}
}
