package bloom

import (
	"encoding/binary"
	"testing"
)

// le8 is the string of the 8 little-endian bytes of id — the key the string
// API sees when the caller encodes a uint64 the way the simulator used to.
func le8(id uint64) string {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], id)
	return string(b[:])
}

// FuzzHashIdentity checks the load-bearing claim in hash2U64's doc comment:
// the allocation-free uint64 path is bit-identical to hash2 over the 8
// little-endian bytes of the id. If this identity breaks, every Bloom probe
// position shifts and recorded simulator metrics silently change.
func FuzzHashIdentity(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	f.Add(uint64(0xdeadbeefcafebabe))
	f.Fuzz(func(t *testing.T, id uint64) {
		sh1, sh2 := hash2(le8(id))
		uh1, uh2 := hash2U64(id)
		if sh1 != uh1 || sh2 != uh2 {
			t.Fatalf("hash2U64(%#x) = (%#x, %#x), hash2(le8) = (%#x, %#x)", id, uh1, uh2, sh1, sh2)
		}
	})
}

// FuzzFilterU64StringIdentity checks that the string and uint64 Filter APIs
// are interchangeable views of the same probe positions: an id added via one
// path must be visible via the other, and TestAndAdd must agree with a
// preceding Contains.
func FuzzFilterU64StringIdentity(f *testing.F) {
	f.Add(uint64(0), uint64(7))
	f.Add(uint64(42), uint64(42))
	f.Add(^uint64(0), uint64(1)<<63)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		fl := New(128, 0.01)
		fl.AddU64(a)
		if !fl.Contains(le8(a)) {
			t.Fatalf("AddU64(%#x) not visible via Contains(le8)", a)
		}
		if !fl.ContainsU64(a) {
			t.Fatalf("AddU64(%#x) not visible via ContainsU64", a)
		}
		fl.Add(le8(b))
		if !fl.ContainsU64(b) {
			t.Fatalf("Add(le8(%#x)) not visible via ContainsU64", b)
		}
		// TestAndAdd on an id that is resident via either path must report it.
		if !fl.TestAndAddU64(a) || !fl.TestAndAdd(le8(b)) {
			t.Fatalf("TestAndAdd disagrees with residency for %#x / %#x", a, b)
		}
	})
}

// FuzzCountingU64StringIdentity checks the same identity for the counting
// filter: increments through either API must be observable through both.
func FuzzCountingU64StringIdentity(f *testing.F) {
	f.Add(uint64(3), uint8(2))
	f.Add(uint64(0), uint8(1))
	f.Add(^uint64(0), uint8(5))
	f.Fuzz(func(t *testing.T, id uint64, n uint8) {
		reps := int(n%8) + 1
		c := NewCounting(128, 0.01)
		for i := 0; i < reps; i++ {
			c.IncrementU64(id)
		}
		// Counting filters can overestimate, never underestimate.
		if got := c.Estimate(le8(id)); got < uint32(reps) {
			t.Fatalf("Estimate(le8(%#x)) = %d after %d IncrementU64", id, got, reps)
		}
		if got := c.EstimateU64(id); got < uint32(reps) {
			t.Fatalf("EstimateU64(%#x) = %d after %d IncrementU64", id, got, reps)
		}
		// And the string-increment path must be visible to the uint64 view.
		c2 := NewCounting(128, 0.01)
		c2.Increment(le8(id))
		if got := c2.EstimateU64(id); got < 1 {
			t.Fatalf("EstimateU64(%#x) = %d after Increment(le8)", id, got)
		}
	})
}
