package bloom

import (
	"encoding/binary"
	"fmt"
)

// FilterState is the serialisable form of a Filter. Bits is the little-endian
// byte image of the bit array ([]byte so JSON encodes it as base64, an ~8x
// saving over a number array for the megabit filters the DC uses).
type FilterState struct {
	M     uint64 `json:"m"`
	K     int    `json:"k"`
	Count uint64 `json:"count"`
	Bits  []byte `json:"bits"`
}

// State snapshots the filter for checkpointing.
func (f *Filter) State() FilterState {
	bits := make([]byte, len(f.bits)*8)
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(bits[i*8:], w)
	}
	return FilterState{M: f.m, K: f.k, Count: f.count, Bits: bits}
}

// FilterFromState rebuilds a Filter from a snapshot, validating every
// structural invariant New establishes so a corrupt snapshot can never
// produce a filter that indexes out of bounds.
func FilterFromState(st FilterState) (*Filter, error) {
	if st.M < 64 {
		return nil, fmt.Errorf("bloom: filter state has %d bits, need >= 64", st.M)
	}
	if st.K < 1 || st.K > 16 {
		return nil, fmt.Errorf("bloom: filter state has k=%d, need 1..16", st.K)
	}
	words := int((st.M + 63) / 64)
	if len(st.Bits) != words*8 {
		return nil, fmt.Errorf("bloom: filter state has %d bit-image bytes, want %d for m=%d", len(st.Bits), words*8, st.M)
	}
	bits := make([]uint64, words)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(st.Bits[i*8:])
	}
	return &Filter{bits: bits, m: st.M, k: st.K, count: st.Count}, nil
}

// CountingState is the serialisable form of a Counting filter. Counters is
// the little-endian byte image of the uint32 counter array.
type CountingState struct {
	M        uint64 `json:"m"`
	K        int    `json:"k"`
	Counters []byte `json:"counters"`
}

// State snapshots the counting filter for checkpointing.
func (c *Counting) State() CountingState {
	ctr := make([]byte, len(c.counters)*4)
	for i, v := range c.counters {
		binary.LittleEndian.PutUint32(ctr[i*4:], v)
	}
	return CountingState{M: c.m, K: c.k, Counters: ctr}
}

// CountingFromState rebuilds a Counting filter from a snapshot with the same
// validation discipline as FilterFromState.
func CountingFromState(st CountingState) (*Counting, error) {
	if st.M < 64 {
		return nil, fmt.Errorf("bloom: counting state has %d counters, need >= 64", st.M)
	}
	if st.K < 1 || st.K > 16 {
		return nil, fmt.Errorf("bloom: counting state has k=%d, need 1..16", st.K)
	}
	if uint64(len(st.Counters)) != st.M*4 {
		return nil, fmt.Errorf("bloom: counting state has %d counter-image bytes, want %d for m=%d", len(st.Counters), st.M*4, st.M)
	}
	counters := make([]uint32, st.M)
	for i := range counters {
		counters[i] = binary.LittleEndian.Uint32(st.Counters[i*4:])
	}
	return &Counting{counters: counters, m: st.M, k: st.K}, nil
}
