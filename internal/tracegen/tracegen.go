// Package tracegen synthesises CDN request traces in the style of Tragen
// (Sabnis & Sitaraman, IMC'21), the generator the Darwin paper uses to build
// its offline training and online test sets. A traffic class is modelled by a
// Zipf popularity distribution over a fixed object catalog, a log-normal
// object-size distribution, and a Poisson arrival process; mixed traces
// interleave two or more classes at a configurable request-rate ratio,
// mirroring the paper's 100 Image:Download mix configurations (§6).
//
// The generator is fully deterministic for a given seed.
package tracegen

import (
	"fmt"
	"math"
	"math/rand"

	"darwin/internal/trace"
)

// Class describes one traffic class (e.g. Image, Download).
type Class struct {
	// Name labels the class in trace names and reports.
	Name string
	// Objects is the catalog size (number of distinct objects).
	Objects int
	// ZipfS and ZipfV parameterise the popularity distribution
	// P(rank k) ∝ (ZipfV + k)^(-ZipfS); ZipfS must be > 1, ZipfV >= 1.
	ZipfS, ZipfV float64
	// MeanLogSize and SigmaLogSize parameterise the log-normal object size
	// distribution (of the natural log of the size in bytes).
	MeanLogSize, SigmaLogSize float64
	// MinSize and MaxSize clamp object sizes in bytes.
	MinSize, MaxSize int64
	// RatePerSec is the class request rate used when mixing classes and for
	// Poisson arrival timestamps.
	RatePerSec float64
	// ChurnRate is the expected number of popularity-rank swaps per request
	// (0 = stationary popularity). Production CDN popularity is
	// non-stationary — content ages and new content becomes hot — and this
	// knob slowly migrates the Zipf ranks across the catalog to model it.
	ChurnRate float64
}

// Validate reports whether the class parameters are usable.
func (c Class) Validate() error {
	switch {
	case c.Objects <= 0:
		return fmt.Errorf("tracegen: class %s: Objects must be > 0", c.Name)
	case c.ZipfS <= 1:
		return fmt.Errorf("tracegen: class %s: ZipfS must be > 1", c.Name)
	case c.ZipfV < 1:
		return fmt.Errorf("tracegen: class %s: ZipfV must be >= 1", c.Name)
	case c.MinSize < 1 || c.MaxSize < c.MinSize:
		return fmt.Errorf("tracegen: class %s: bad size bounds [%d,%d]", c.Name, c.MinSize, c.MaxSize)
	case c.RatePerSec <= 0:
		return fmt.Errorf("tracegen: class %s: RatePerSec must be > 0", c.Name)
	}
	return nil
}

// The predefined classes are scaled ~10x down from the paper's production
// numbers (DESIGN.md §5) so that the default 2 MB HOC plays the role of the
// paper's 100 MB HOC.

// Image returns a class modelled on the paper's Image traffic: a large
// catalog of small objects with many one-/two-hit wonders ("many requests for
// infrequently accessed objects and 71.9% of the requests are for objects
// whose sizes are smaller than 20KB", §3.1 — scaled here to ~2 KB).
func Image() Class {
	return Class{
		Name:         "image",
		Objects:      60000,
		ZipfS:        1.25,
		ZipfV:        10,
		MeanLogSize:  math.Log(900), // median ~0.9 KB
		SigmaLogSize: 0.9,
		MinSize:      64,
		MaxSize:      64 << 10,
		RatePerSec:   160,
	}
}

// Download returns a class modelled on the paper's Download traffic: a small
// catalog of popular, large objects ("objects all have more than 7 requests
// ... only 21.5% of the requests are for objects below 50KB", §3.1 — scaled
// to ~5 KB).
func Download() Class {
	return Class{
		Name:         "download",
		Objects:      900,
		ZipfS:        1.4,
		ZipfV:        3,
		MeanLogSize:  math.Log(24 << 10), // median ~24 KB
		SigmaLogSize: 1.0,
		MinSize:      2 << 10,
		MaxSize:      1 << 20,
		RatePerSec:   106,
	}
}

// Web returns a mixed text/page class between Image and Download in both
// popularity skew and size.
func Web() Class {
	return Class{
		Name:         "web",
		Objects:      20000,
		ZipfS:        1.35,
		ZipfV:        5,
		MeanLogSize:  math.Log(3 << 10),
		SigmaLogSize: 1.1,
		MinSize:      128,
		MaxSize:      256 << 10,
		RatePerSec:   120,
	}
}

// Video returns a media-segment class: moderately popular, mid-size objects
// with low size variance (fixed-duration segments).
func Video() Class {
	return Class{
		Name:         "video",
		Objects:      8000,
		ZipfS:        1.3,
		ZipfV:        4,
		MeanLogSize:  math.Log(48 << 10),
		SigmaLogSize: 0.4,
		MinSize:      8 << 10,
		MaxSize:      512 << 10,
		RatePerSec:   90,
	}
}

// Scan returns a cache-scan class: a one-pass sweep of cold objects (every
// object requested about once), the adversarial pattern cited in §3.2.1
// against size-only admission.
func Scan() Class {
	return Class{
		Name:         "scan",
		Objects:      200000,
		ZipfS:        1.01, // nearly uniform
		ZipfV:        100,
		MeanLogSize:  math.Log(2 << 10),
		SigmaLogSize: 0.7,
		MinSize:      256,
		MaxSize:      128 << 10,
		RatePerSec:   150,
	}
}

// ByName returns a predefined class by name.
func ByName(name string) (Class, error) {
	switch name {
	case "image":
		return Image(), nil
	case "download":
		return Download(), nil
	case "web":
		return Web(), nil
	case "video":
		return Video(), nil
	case "scan":
		return Scan(), nil
	}
	return Class{}, fmt.Errorf("tracegen: unknown class %q", name)
}

// classState holds the per-class sampling state during generation.
type classState struct {
	class Class
	zipf  *rand.Zipf
	sizes map[uint64]int64 // lazily assigned per-object sizes
	base  uint64           // ID namespace offset
	rng   *rand.Rand
	// perm maps popularity rank → object index, lazily materialised; churn
	// swaps entries so popularity migrates across the catalog over time.
	perm map[uint64]uint64
}

func newClassState(c Class, index int, seed int64) *classState {
	rng := rand.New(rand.NewSource(seed + int64(index)*7919))
	return &classState{
		class: c,
		zipf:  rand.NewZipf(rng, c.ZipfS, c.ZipfV, uint64(c.Objects-1)),
		sizes: make(map[uint64]int64),
		base:  uint64(index) << 40,
		rng:   rng,
		perm:  make(map[uint64]uint64),
	}
}

// object resolves a popularity rank to an object index through the (mostly
// identity) churned permutation.
func (s *classState) object(rank uint64) uint64 {
	if o, ok := s.perm[rank]; ok {
		return o
	}
	return rank
}

// churn performs one popularity swap between a (likely hot) Zipf-drawn rank
// and a uniformly random rank.
func (s *classState) churn() {
	a := s.zipf.Uint64()
	b := uint64(s.rng.Intn(s.class.Objects))
	oa, ob := s.object(a), s.object(b)
	s.perm[a], s.perm[b] = ob, oa
}

// next draws one request (without a timestamp) from the class.
func (s *classState) next() trace.Request {
	if s.class.ChurnRate > 0 {
		n := int(s.class.ChurnRate)
		if s.rng.Float64() < s.class.ChurnRate-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			s.churn()
		}
	}
	rank := s.zipf.Uint64()
	id := s.base + s.object(rank)
	size, ok := s.sizes[id]
	if !ok {
		size = sampleLogNormal(s.rng, s.class.MeanLogSize, s.class.SigmaLogSize, s.class.MinSize, s.class.MaxSize)
		s.sizes[id] = size
	}
	return trace.Request{ID: id, Size: size}
}

func sampleLogNormal(rng *rand.Rand, mu, sigma float64, min, max int64) int64 {
	v := int64(math.Exp(mu + sigma*rng.NormFloat64()))
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// MixConfig configures a mixed-class trace.
type MixConfig struct {
	// Classes to interleave.
	Classes []Class
	// Weights give each class's share of the total request rate. They are
	// normalised internally; a zero-weight class is excluded. If nil, the
	// classes' RatePerSec values are used.
	Weights []float64
	// Requests is the total trace length.
	Requests int
	// Seed makes generation deterministic.
	Seed int64
	// Name overrides the generated trace name.
	Name string
}

// Generate produces a mixed trace: each request's class is drawn according to
// the weights, and timestamps follow a Poisson process at the summed request
// rate of the participating classes.
func Generate(cfg MixConfig) (*trace.Trace, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("tracegen: Requests must be > 0, got %d", cfg.Requests)
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("tracegen: no classes")
	}
	weights := cfg.Weights
	if weights == nil {
		weights = make([]float64, len(cfg.Classes))
		for i, c := range cfg.Classes {
			weights[i] = c.RatePerSec
		}
	}
	if len(weights) != len(cfg.Classes) {
		return nil, fmt.Errorf("tracegen: %d weights for %d classes", len(weights), len(cfg.Classes))
	}
	var totalW, totalRate float64
	for i, c := range cfg.Classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if weights[i] < 0 {
			return nil, fmt.Errorf("tracegen: negative weight %v", weights[i])
		}
		totalW += weights[i]
		totalRate += c.RatePerSec * weights[i]
	}
	if totalW == 0 {
		return nil, fmt.Errorf("tracegen: all weights zero")
	}
	totalRate /= totalW

	rng := rand.New(rand.NewSource(cfg.Seed))
	states := make([]*classState, len(cfg.Classes))
	for i, c := range cfg.Classes {
		states[i] = newClassState(c, i, cfg.Seed)
	}
	// Cumulative weights for class selection.
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / totalW
		cum[i] = acc
	}

	name := cfg.Name
	if name == "" {
		name = mixName(cfg.Classes, weights, cfg.Seed)
	}
	out := &trace.Trace{Name: name, Requests: make([]trace.Request, 0, cfg.Requests)}
	var now float64 // microseconds
	usPerReq := 1e6 / totalRate
	for n := 0; n < cfg.Requests; n++ {
		u := rng.Float64()
		ci := len(cum) - 1
		for i, c := range cum {
			if u <= c {
				ci = i
				break
			}
		}
		r := states[ci].next()
		now += rng.ExpFloat64() * usPerReq
		r.Time = int64(now)
		out.Requests = append(out.Requests, r)
	}
	return out, nil
}

func mixName(classes []Class, weights []float64, seed int64) string {
	s := "mix"
	for i, c := range classes {
		s += fmt.Sprintf("-%s:%.0f", c.Name, weights[i])
	}
	return fmt.Sprintf("%s-seed%d", s, seed)
}

// ImageDownloadMix generates the paper's canonical two-class mix with the
// Image class receiving imagePct percent of requests and Download the rest.
func ImageDownloadMix(imagePct int, requests int, seed int64) (*trace.Trace, error) {
	if imagePct < 0 || imagePct > 100 {
		return nil, fmt.Errorf("tracegen: imagePct %d outside [0,100]", imagePct)
	}
	return Generate(MixConfig{
		Classes:  []Class{Image(), Download()},
		Weights:  []float64{float64(imagePct), float64(100 - imagePct)},
		Requests: requests,
		Seed:     seed,
		Name:     fmt.Sprintf("mix-image%d-download%d-seed%d", imagePct, 100-imagePct, seed),
	})
}
