package tracegen

import (
	"sort"
	"testing"

	"darwin/internal/trace"
)

func TestPredefinedClassesValid(t *testing.T) {
	for _, c := range []Class{Image(), Download(), Web(), Video(), Scan()} {
		if err := c.Validate(); err != nil {
			t.Errorf("class %s invalid: %v", c.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"image", "download", "web", "video", "scan"} {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, c.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should reject unknown classes")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := Image()
	cases := []func(*Class){
		func(c *Class) { c.Objects = 0 },
		func(c *Class) { c.ZipfS = 1.0 },
		func(c *Class) { c.ZipfV = 0.5 },
		func(c *Class) { c.MinSize = 0 },
		func(c *Class) { c.MaxSize = c.MinSize - 1 },
		func(c *Class) { c.RatePerSec = 0 },
	}
	for i, mut := range cases {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid class", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := ImageDownloadMix(50, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ImageDownloadMix(50, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	c, err := ImageDownloadMix(50, 2000, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Requests {
		if a.Requests[i].ID == c.Requests[i].ID {
			same++
		}
	}
	if same == a.Len() {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateTimestampsMonotone(t *testing.T) {
	tr, err := ImageDownloadMix(30, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Requests[i].Time < tr.Requests[i-1].Time {
			t.Fatalf("time went backwards at %d", i)
		}
	}
}

func TestPerObjectSizeStable(t *testing.T) {
	tr, err := ImageDownloadMix(0, 20000, 9) // pure download: heavy reuse
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[uint64]int64{}
	for _, r := range tr.Requests {
		if prev, ok := sizes[r.ID]; ok && prev != r.Size {
			t.Fatalf("object %d changed size %d -> %d", r.ID, prev, r.Size)
		}
		sizes[r.ID] = r.Size
	}
}

func TestClassCharacteristics(t *testing.T) {
	img, err := ImageDownloadMix(100, 40000, 11)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := ImageDownloadMix(0, 40000, 11)
	if err != nil {
		t.Fatal(err)
	}
	si, sd := img.Summarize(), dl.Summarize()
	// Image: many one-hit wonders; Download: few.
	ohwImg := float64(si.OneHitWonders) / float64(si.UniqueObjects)
	ohwDl := float64(sd.OneHitWonders) / float64(sd.UniqueObjects)
	if ohwImg < 0.3 {
		t.Errorf("image one-hit-wonder fraction %.2f too low", ohwImg)
	}
	if ohwDl > ohwImg {
		t.Errorf("download OHW fraction %.2f should be below image %.2f", ohwDl, ohwImg)
	}
	// Download objects are much larger on average.
	if sd.MeanSize < 4*si.MeanSize {
		t.Errorf("download mean size %.0f not >> image mean size %.0f", sd.MeanSize, si.MeanSize)
	}
	// Image catalog is much bigger (more unique objects in same-length trace).
	if si.UniqueObjects < 4*sd.UniqueObjects {
		t.Errorf("image uniques %d not >> download uniques %d", si.UniqueObjects, sd.UniqueObjects)
	}
}

func TestImageSmallObjectShare(t *testing.T) {
	// Paper: 71.9% of Image requests are for objects < 20 KB (scaled: 2 KB).
	tr, err := ImageDownloadMix(100, 40000, 3)
	if err != nil {
		t.Fatal(err)
	}
	small := 0
	for _, r := range tr.Requests {
		if r.Size < 2<<10 {
			small++
		}
	}
	if frac := float64(small) / float64(tr.Len()); frac < 0.55 {
		t.Errorf("image small-object request share %.2f, want majority", frac)
	}
}

func TestMixRatioRespected(t *testing.T) {
	tr, err := ImageDownloadMix(70, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	imgReqs := 0
	for _, r := range tr.Requests {
		if r.ID>>40 == 0 { // class index 0 = image
			imgReqs++
		}
	}
	frac := float64(imgReqs) / float64(tr.Len())
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("image share %.3f, want ~0.70", frac)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(MixConfig{Requests: 0, Classes: []Class{Image()}}); err == nil {
		t.Error("Requests=0 accepted")
	}
	if _, err := Generate(MixConfig{Requests: 10}); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := Generate(MixConfig{Requests: 10, Classes: []Class{Image()}, Weights: []float64{1, 2}}); err == nil {
		t.Error("weight/class mismatch accepted")
	}
	if _, err := Generate(MixConfig{Requests: 10, Classes: []Class{Image()}, Weights: []float64{0}}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := Generate(MixConfig{Requests: 10, Classes: []Class{Image()}, Weights: []float64{-1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := ImageDownloadMix(101, 10, 1); err == nil {
		t.Error("imagePct out of range accepted")
	}
}

func TestNamespacesDisjoint(t *testing.T) {
	tr, err := ImageDownloadMix(50, 10000, 13)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[uint64]bool{}
	for _, r := range tr.Requests {
		classes[r.ID>>40] = true
	}
	if len(classes) != 2 {
		t.Fatalf("expected 2 ID namespaces, got %d", len(classes))
	}
}

func TestScanClassNearlyOnePass(t *testing.T) {
	tr, err := Generate(MixConfig{Classes: []Class{Scan()}, Requests: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if ratio := float64(s.Requests) / float64(s.UniqueObjects); ratio > 3 {
		t.Errorf("scan reuse ratio %.2f, want near 1", ratio)
	}
}

var sinkTrace *trace.Trace

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := ImageDownloadMix(50, 10000, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		sinkTrace = tr
	}
}

func TestChurnMigratesPopularity(t *testing.T) {
	// With churn, the hot set drifts: the top objects of the first half
	// should overlap less with the second half than without churn.
	overlap := func(churn float64) float64 {
		c := Download()
		c.ChurnRate = churn
		tr, err := Generate(MixConfig{Classes: []Class{c}, Requests: 40000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		top := func(lo, hi int) map[uint64]bool {
			counts := map[uint64]int{}
			for _, r := range tr.Requests[lo:hi] {
				counts[r.ID]++
			}
			type kv struct {
				id uint64
				n  int
			}
			var all []kv
			for id, n := range counts {
				all = append(all, kv{id, n})
			}
			sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
			out := map[uint64]bool{}
			for i := 0; i < 50 && i < len(all); i++ {
				out[all[i].id] = true
			}
			return out
		}
		a := top(0, 20000)
		b := top(20000, 40000)
		shared := 0
		for id := range a {
			if b[id] {
				shared++
			}
		}
		return float64(shared) / 50
	}
	stationary := overlap(0)
	churned := overlap(0.05)
	if churned >= stationary {
		t.Fatalf("churn did not reduce hot-set overlap: %.2f vs %.2f", churned, stationary)
	}
	if stationary < 0.8 {
		t.Fatalf("stationary hot set unexpectedly unstable: %.2f", stationary)
	}
}

func TestChurnDeterministic(t *testing.T) {
	c := Image()
	c.ChurnRate = 0.01
	a, err := Generate(MixConfig{Classes: []Class{c}, Requests: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(MixConfig{Classes: []Class{c}, Requests: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("churned generation not deterministic")
		}
	}
}
