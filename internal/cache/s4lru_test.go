package cache

import (
	"testing"
	"testing/quick"

	"darwin/internal/tracegen"
)

func TestS4LRUImplementsEviction(t *testing.T) {
	var _ Eviction = NewS4LRU(0)
	if _, err := NewEviction("s4lru"); err != nil {
		t.Fatal(err)
	}
}

func TestS4LRUBasics(t *testing.T) {
	s := NewS4LRU(0)
	if _, _, ok := s.Victim(); ok {
		t.Fatal("empty policy has victim")
	}
	s.Insert(1, 100)
	s.Insert(2, 200)
	if s.Len() != 2 || s.Bytes() != 300 {
		t.Fatalf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	if !s.Contains(1) || s.Size(2) != 200 {
		t.Fatal("lookup broken")
	}
	s.Remove(1)
	if s.Len() != 1 || s.Bytes() != 200 {
		t.Fatal("remove broken")
	}
	s.Remove(42) // absent
	s.Touch(42)  // absent
	if s.Len() != 1 {
		t.Fatal("absent ops changed state")
	}
	s.Insert(2, 250) // reinsert updates size
	if s.Bytes() != 250 || s.Len() != 1 {
		t.Fatalf("reinsert: Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

func TestS4LRUPromotedSurvivesColdInserts(t *testing.T) {
	// A once-hit object sits in segment 1; cold objects flood segment 0 and
	// must be evicted before it.
	s := NewS4LRU(0)
	s.Insert(1, 1)
	s.Touch(1) // promote to segment 1
	for id := uint64(100); id < 110; id++ {
		s.Insert(id, 1)
	}
	for i := 0; i < 10; i++ {
		vid, _, ok := s.Victim()
		if !ok {
			t.Fatal("no victim")
		}
		if vid == 1 {
			t.Fatalf("promoted object evicted before %d cold objects", 10-i)
		}
		s.Remove(vid)
	}
	if !s.Contains(1) {
		t.Fatal("promoted object lost")
	}
}

func TestS4LRUBalancingDemotes(t *testing.T) {
	// With a capacity hint, an over-full upper segment demotes its tail.
	s := NewS4LRU(40) // per-segment budget 10
	for id := uint64(1); id <= 4; id++ {
		s.Insert(id, 5)
		s.Touch(id) // everything lands in segment 1 (20 bytes > 10 budget)
	}
	// The balance pass must have demoted some objects back to segment 0.
	if s.segBytes[1] > 10 {
		t.Fatalf("segment 1 holds %d bytes, budget 10", s.segBytes[1])
	}
	if s.Bytes() != 20 || s.Len() != 4 {
		t.Fatalf("totals wrong: %d/%d", s.Bytes(), s.Len())
	}
}

func TestS4LRUBytesInvariant(t *testing.T) {
	type op struct {
		Kind uint8
		ID   uint8
		Size uint16
	}
	f := func(ops []op) bool {
		s := NewS4LRU(1000)
		ref := map[uint64]int64{}
		for _, o := range ops {
			id := uint64(o.ID % 16)
			switch o.Kind % 3 {
			case 0:
				size := int64(o.Size%100) + 1
				s.Insert(id, size)
				ref[id] = size
			case 1:
				s.Touch(id)
			case 2:
				s.Remove(id)
				delete(ref, id)
			}
			var want int64
			for _, sz := range ref {
				want += sz
			}
			if s.Bytes() != want || s.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyWithS4LRU(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 20000, 61)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1, HOCEviction: "s4lru"}
	m, err := Evaluate(tr, Expert{Freq: 2, MaxSize: 50 << 10}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.HOCHits == 0 {
		t.Fatal("no HOC hits under s4lru")
	}
	// And capacity must hold.
	h, err := New(Config{HOCBytes: 64 << 10, DCBytes: 1 << 20, HOCEviction: "s4lru", Expert: Expert{Freq: 1, MaxSize: 50 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests[:5000] {
		h.Serve(r)
		if h.HOCBytes() > 64<<10 {
			t.Fatalf("HOC over capacity under s4lru: %d", h.HOCBytes())
		}
	}
}
