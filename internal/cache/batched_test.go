package cache_test

import (
	"sync"
	"testing"

	"darwin/internal/cache"
	"darwin/internal/tracegen"
)

// TestShardedBatchedTrailAndSync pins the deterministic staleness contract of
// batched publication on a single shard: lock-free Metrics reads trail the
// data plane by at most publishEvery-1 requests, a batch boundary publishes
// immediately, SyncMetrics makes any read exact, and SetPublishEvery(1)
// flushes pending deltas and restores per-request publication.
func TestShardedBatchedTrailAndSync(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cache.NewSharded(cache.Config{HOCBytes: 64 << 10, DCBytes: 1 << 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPublishEvery(8)
	serve := func(n int) {
		for i := 0; i < n; i++ {
			s.Serve(tr.Requests[i%len(tr.Requests)])
		}
	}
	serve(7)
	if got := s.Metrics().Requests; got != 0 {
		t.Fatalf("7 serves under publishEvery=8: mirror shows %d requests, want 0 (trailing)", got)
	}
	serve(1)
	if got := s.Metrics().Requests; got != 8 {
		t.Fatalf("batch boundary: mirror shows %d requests, want 8", got)
	}
	serve(3)
	if got := s.Metrics().Requests; got != 8 {
		t.Fatalf("3 pending serves: mirror shows %d requests, want 8", got)
	}
	s.SyncMetrics()
	if got := s.Metrics().Requests; got != 11 {
		t.Fatalf("after SyncMetrics: %d requests, want 11", got)
	}
	s.SetPublishEvery(1)
	serve(1)
	if got := s.Metrics().Requests; got != 12 {
		t.Fatalf("publishEvery=1: mirror shows %d requests, want 12 (exact)", got)
	}
}

// TestShardedBatchedPublicationCoherence hammers a batched 4-shard engine
// from concurrent writers while a reader polls lock-free aggregates, and
// asserts the cross-counter invariants hold in every observed snapshot:
// batching defers publication but always publishes the whole consistent
// block, so hits+misses == requests and the byte-sum identity can never be
// seen broken — the snapshots merely trail. After the writers drain,
// SyncMetrics must surface the exact totals.
func TestShardedBatchedPublicationCoherence(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 40_000, 13)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cache.NewSharded(cache.Config{HOCBytes: 64 << 10, DCBytes: 1 << 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPublishEvery(8)

	const workers = 4
	var wg sync.WaitGroup
	done := make(chan struct{})
	per := len(tr.Requests) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(reqs []int) {
			defer wg.Done()
			for _, i := range reqs {
				s.Serve(tr.Requests[i])
			}
		}(indexRange(w*per, (w+1)*per))
	}
	go func() { wg.Wait(); close(done) }()

	polls := 0
	for {
		m := s.Metrics()
		if m.HOCHits+m.DCHits+m.Misses != m.Requests {
			t.Fatalf("torn aggregate: hits %d+%d + misses %d != requests %d",
				m.HOCHits, m.DCHits, m.Misses, m.Requests)
		}
		if m.HOCHitBytes+m.DCHitBytes+m.MissBytes != m.Bytes {
			t.Fatalf("torn byte aggregate: %d+%d+%d != %d",
				m.HOCHitBytes, m.DCHitBytes, m.MissBytes, m.Bytes)
		}
		polls++
		select {
		case <-done:
			s.SyncMetrics()
			m := s.Metrics()
			want := int64(workers * per)
			if m.Requests != want {
				t.Fatalf("after SyncMetrics: %d requests, want %d", m.Requests, want)
			}
			if m.HOCHits+m.DCHits+m.Misses != m.Requests {
				t.Fatalf("final aggregate torn: %+v", m)
			}
			if polls < 10 {
				t.Logf("only %d coherence polls overlapped the run", polls)
			}
			return
		default:
		}
	}
}

// indexRange returns [lo, hi) as a slice of ints.
func indexRange(lo, hi int) []int {
	idx := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		idx = append(idx, i)
	}
	return idx
}
