package cache

// nodeArena is a slab-backed allocator for intrusive doubly-linked lists,
// replacing container/list in the hot request path. container/list costs two
// heap objects per resident entry (list.Element plus the boxed value) and a
// pointer chase per link hop; the arena stores all nodes of a policy in one
// contiguous slice, links them by int32 index, and recycles removed nodes
// through a free list, so steady-state insert/evict churn allocates nothing.
//
// Lists are circular with a sentinel node: newList returns the sentinel's
// index, and an empty list is one whose sentinel links to itself. Several
// lists (e.g. S4LRU's four segments) can share one arena.
type nodeArena struct {
	nodes []listNode
	free  int32 // head of the free list, linked through next; nilNode = empty
}

// listNode is one resident object (or a list sentinel) in the arena.
type listNode struct {
	id         uint64
	size       int64
	prev, next int32
}

// nilNode marks "no node" (free-list end).
const nilNode = int32(-1)

// newNodeArena returns an arena with room for hint nodes before regrowing.
func newNodeArena(hint int) *nodeArena {
	if hint < 8 {
		hint = 8
	}
	return &nodeArena{nodes: make([]listNode, 0, hint), free: nilNode}
}

// newList allocates a sentinel and returns its index (the list handle).
func (a *nodeArena) newList() int32 {
	s := a.alloc(0, 0)
	a.nodes[s].prev = s
	a.nodes[s].next = s
	return s
}

// alloc returns a detached node carrying (id, size), reusing a freed node
// when possible.
func (a *nodeArena) alloc(id uint64, size int64) int32 {
	if a.free != nilNode {
		i := a.free
		a.free = a.nodes[i].next
		a.nodes[i] = listNode{id: id, size: size}
		return i
	}
	a.nodes = append(a.nodes, listNode{id: id, size: size})
	return int32(len(a.nodes) - 1)
}

// release returns an unlinked node to the free list.
func (a *nodeArena) release(i int32) {
	a.nodes[i].next = a.free
	a.free = i
}

// unlink detaches node i from whatever list it is on.
func (a *nodeArena) unlink(i int32) {
	p, n := a.nodes[i].prev, a.nodes[i].next
	a.nodes[p].next = n
	a.nodes[n].prev = p
}

// pushFront links node i at the front (most-recent end) of list.
func (a *nodeArena) pushFront(list, i int32) {
	first := a.nodes[list].next
	a.nodes[i].prev = list
	a.nodes[i].next = first
	a.nodes[first].prev = i
	a.nodes[list].next = i
}

// moveToFront re-links node i at the front of list.
func (a *nodeArena) moveToFront(list, i int32) {
	if a.nodes[list].next == i {
		return
	}
	a.unlink(i)
	a.pushFront(list, i)
}

// back returns the last node of list (the victim end), or nilNode when empty.
func (a *nodeArena) back(list int32) int32 {
	b := a.nodes[list].prev
	if b == list {
		return nilNode
	}
	return b
}

// appendVictimFirst appends list's entries back-to-front (victim first).
func (a *nodeArena) appendVictimFirst(list int32, out []ResidentObject) []ResidentObject {
	for i := a.nodes[list].prev; i != list; i = a.nodes[i].prev {
		out = append(out, ResidentObject{ID: a.nodes[i].id, Size: a.nodes[i].size})
	}
	return out
}
