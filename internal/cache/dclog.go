package cache

// DCLog is the optional durability journal for the DC level: the hierarchy
// reports every DC admission (Put) and eviction (Remove) so an on-disk
// log-structured store (internal/diskcache) can rebuild the DC's contents
// after a crash. The in-memory eviction policy stays authoritative for
// serving; the journal is write-only on the request path.
//
// Implementations must be cheap and must not fail the request path: the
// methods return nothing, and implementations are expected to make I/O
// errors sticky internally (drop-and-count) rather than panic. Both methods
// are called from Serve under the owning shard's lock, so they execute in
// the hot path — implementations must respect the darwinlint hot-path rules
// (no fmt, no string concatenation, no closures).
type DCLog interface {
	// Put records that id (with the given size) is now DC-resident.
	// Re-putting a resident id refreshes its size.
	Put(id uint64, size int64)
	// Remove records that id left the DC.
	Remove(id uint64)
}
