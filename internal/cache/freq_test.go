package cache

import "testing"

func TestExactTracker(t *testing.T) {
	tr := NewExactTracker()
	c, age := tr.Observe(1, 0)
	if c != 1 || age != -1 {
		t.Fatalf("first observe = (%d,%d)", c, age)
	}
	c, age = tr.Observe(1, 5)
	if c != 2 || age != 5 {
		t.Fatalf("second observe = (%d,%d)", c, age)
	}
	c, age = tr.Observe(1, 7)
	if c != 3 || age != 2 {
		t.Fatalf("third observe = (%d,%d)", c, age)
	}
	if tr.Count(1) != 3 || tr.Count(2) != 0 {
		t.Fatal("Count wrong")
	}
	tr.Reset()
	if c, age := tr.Observe(1, 10); c != 1 || age != -1 {
		t.Fatalf("after reset observe = (%d,%d)", c, age)
	}
}

func TestApproxTrackerUpperBounds(t *testing.T) {
	tr := NewApproxTracker(10000)
	for i := 0; i < 5; i++ {
		tr.Observe(42, int64(i))
	}
	c, age := tr.Observe(42, 9)
	if c < 6 {
		t.Fatalf("approx count %d below true count 6", c)
	}
	if age != 5 {
		t.Fatalf("age = %d, want 5", age)
	}
	tr.Reset()
	if c, _ := tr.Observe(42, 0); c != 1 {
		t.Fatalf("after reset count = %d", c)
	}
}

func TestApproxTrackerBoundedLastSeen(t *testing.T) {
	tr := NewApproxTracker(16)
	for i := 0; i < 1000; i++ {
		tr.Observe(uint64(i), int64(i))
	}
	if n := len(tr.lastSeen); n > 17 {
		t.Fatalf("lastSeen grew to %d entries, bound is ~16", n)
	}
}
