package cache

import (
	"testing"
	"testing/quick"

	"darwin/internal/tracegen"
)

func TestGDSFImplementsEviction(t *testing.T) {
	var _ Eviction = NewGDSF()
	if _, err := NewEviction("gdsf"); err != nil {
		t.Fatal(err)
	}
}

func TestGDSFPrefersSmallFrequent(t *testing.T) {
	g := NewGDSF()
	g.Insert(1, 10)   // small
	g.Insert(2, 1000) // large, same frequency → lower priority
	if id, _, _ := g.Victim(); id != 2 {
		t.Fatalf("victim = %d, want the large object", id)
	}
	// Touch the large object repeatedly: frequency can overcome size.
	for i := 0; i < 200; i++ {
		g.Touch(2)
	}
	if id, _, _ := g.Victim(); id != 1 {
		t.Fatalf("victim = %d, want the now-cold small object", id)
	}
}

func TestGDSFInflationAges(t *testing.T) {
	g := NewGDSF()
	g.Insert(1, 100)
	for i := 0; i < 50; i++ {
		g.Touch(1) // high priority
	}
	// Evict something to raise L, then a fresh insert competes fairly.
	g.Insert(2, 100)
	vid, _, _ := g.Victim()
	if vid != 2 {
		t.Fatalf("victim = %d, want cold newcomer", vid)
	}
	g.Remove(2) // advances L to 2's priority
	g.Insert(3, 100)
	// Object 3 enters at L + 1/100, not at 1/100: aging protects it from
	// being starved behind historical high-frequency objects forever.
	e3 := g.index[3]
	if e3.prio <= 1.0/100 {
		t.Fatalf("newcomer priority %v not inflated", e3.prio)
	}
}

func TestGDSFBytesInvariant(t *testing.T) {
	type op struct {
		Kind uint8
		ID   uint8
		Size uint16
	}
	f := func(ops []op) bool {
		g := NewGDSF()
		ref := map[uint64]int64{}
		for _, o := range ops {
			id := uint64(o.ID % 16)
			switch o.Kind % 3 {
			case 0:
				size := int64(o.Size%1000) + 1
				g.Insert(id, size)
				ref[id] = size
			case 1:
				g.Touch(id)
			case 2:
				g.Remove(id)
				delete(ref, id)
			}
			var want int64
			for _, s := range ref {
				want += s
			}
			if g.Bytes() != want || g.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyWithGDSF(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 20000, 62)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EvalConfig{HOCBytes: 256 << 10, DCBytes: 32 << 20, WarmupFrac: 0.1, HOCEviction: "gdsf"}
	m, err := Evaluate(tr, Expert{Freq: 2, MaxSize: 50 << 10}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.HOCHits == 0 {
		t.Fatal("no HOC hits under gdsf")
	}
}
