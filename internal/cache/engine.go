package cache

import "darwin/internal/trace"

// Engine is the cache data-plane seam shared by the simulator, the HTTP
// proxy, and the online controller: one request-serving cache hierarchy with
// pluggable expert admission. The serial Hierarchy implements it for
// single-goroutine replay; Sharded implements it for the concurrent proxy
// data plane by partitioning the object space across lock-striped shards.
type Engine interface {
	// Serve processes one request and returns where it was served from.
	Serve(r trace.Request) Result
	// Lookup probes residency without mutating cache state, metrics, or
	// frequency tracking (the proxy's fetch-before-commit seam).
	Lookup(id uint64) Result
	// Metrics returns a snapshot of the accumulated counters.
	Metrics() Metrics
	// ResetMetrics zeroes the counters without disturbing cache contents.
	ResetMetrics()
	// SetExpert swaps the HOC admission expert (broadcast to every shard in
	// sharded engines).
	SetExpert(e Expert)
	// Expert returns the currently deployed admission expert.
	Expert() Expert
}

// A ConcurrentEngine is an Engine that is additionally safe for concurrent
// callers without external locking. Sharded implements it (per-shard
// mutexes); the bare Hierarchy deliberately does not — callers that share a
// Hierarchy across goroutines must serialize it themselves, which is exactly
// the legacy global-lock data plane the sharded seam replaces.
type ConcurrentEngine interface {
	Engine
	// Concurrent is the marker: it reports whether the engine may be driven
	// from multiple goroutines at once.
	Concurrent() bool
}

// Compile-time seam checks.
var (
	_ Engine           = (*Hierarchy)(nil)
	_ ConcurrentEngine = (*Sharded)(nil)
)
