package cache

import "darwin/internal/bloom"

// FrequencyTracker counts per-object requests and remembers each object's
// previous request index so the recency knob can be evaluated.
type FrequencyTracker interface {
	// Observe records a request for id arriving as request number idx
	// (0-based, monotonically increasing) and returns the total observed
	// count including this request, and the object's age: the number of
	// requests since its previous request, or -1 if this is the first.
	Observe(id uint64, idx int64) (count int, age int64)
	// Reset clears all state (used at epoch boundaries if desired).
	Reset()
}

// ExactTracker keeps exact per-object counts and last-seen indices. Both live
// in one map so the per-request Observe costs a single lookup plus a single
// store. This is the simulator default; production deployments would use the
// bounded-memory ApproxTracker.
type ExactTracker struct {
	objects map[uint64]exactEntry
}

type exactEntry struct {
	count    int
	lastSeen int64
}

// NewExactTracker returns an empty exact tracker.
func NewExactTracker() *ExactTracker {
	return &ExactTracker{objects: make(map[uint64]exactEntry)}
}

// Observe implements FrequencyTracker.
func (t *ExactTracker) Observe(id uint64, idx int64) (int, int64) {
	e, ok := t.objects[id]
	age := int64(-1)
	if ok {
		age = idx - e.lastSeen
	}
	e.count++
	e.lastSeen = idx
	t.objects[id] = e
	return e.count, age
}

// Reset implements FrequencyTracker.
func (t *ExactTracker) Reset() {
	t.objects = make(map[uint64]exactEntry)
}

// Count returns the exact observed count for id.
func (t *ExactTracker) Count(id uint64) int { return t.objects[id].count }

// ApproxTracker bounds memory with a counting Bloom filter for counts and a
// fixed-size last-seen table (random-replacement). Counts can only be
// over-estimated, matching production frequency-admission filters.
type ApproxTracker struct {
	counting *bloom.Counting
	lastSeen map[uint64]int64
	maxLast  int
}

// NewApproxTracker sizes the tracker for n expected distinct objects.
func NewApproxTracker(n int) *ApproxTracker {
	return &ApproxTracker{
		counting: bloom.NewCounting(n, 0.01),
		lastSeen: make(map[uint64]int64, n),
		maxLast:  n,
	}
}

// Observe implements FrequencyTracker.
func (t *ApproxTracker) Observe(id uint64, idx int64) (int, int64) {
	c := t.counting.IncrementU64(id)
	age := int64(-1)
	if prev, ok := t.lastSeen[id]; ok {
		age = idx - prev
	}
	if len(t.lastSeen) >= t.maxLast {
		// Evict one arbitrary entry to stay bounded; Go map iteration order
		// provides the randomness.
		for k := range t.lastSeen {
			delete(t.lastSeen, k)
			break
		}
	}
	t.lastSeen[id] = idx
	return int(c), age
}

// Reset implements FrequencyTracker.
func (t *ApproxTracker) Reset() {
	t.counting.Reset()
	t.lastSeen = make(map[uint64]int64, t.maxLast)
}
