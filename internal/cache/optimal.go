package cache

import (
	"container/heap"

	"darwin/internal/trace"
)

// OfflineOptimal computes a clairvoyant (Belady-style) hit-rate bound for a
// single cache of the given byte capacity over tr: on each miss the object
// is admitted only if it is requested again, and eviction removes the
// resident object whose next request is farthest in the future. With
// variable object sizes this greedy rule is not provably optimal (size-aware
// MIN is NP-hard), but it is the standard clairvoyant upper-bound heuristic
// (cf. LRB's "relaxed Belady" boundary) and serves as the "hindsight
// optimal" reference of requirement R1 (§3.2.1).
//
// It returns the number of hits and requests over the post-warm-up region.
func OfflineOptimal(tr *trace.Trace, capacity int64, warmupFrac float64) (hits, requests int64) {
	n := tr.Len()
	if n == 0 || capacity <= 0 {
		return 0, 0
	}
	// next[i] = index of the next request for the same object, or n.
	next := make([]int, n)
	last := make(map[uint64]int, n/2)
	for i := n - 1; i >= 0; i-- {
		id := tr.Requests[i].ID
		if j, ok := last[id]; ok {
			next[i] = j
		} else {
			next[i] = n
		}
		last[id] = i
	}

	warm := int(float64(n) * warmupFrac)
	resident := make(map[uint64]int64, 1024) // id → size
	nextUse := make(map[uint64]int, 1024)    // id → next request index
	h := &farthestHeap{}
	var bytes int64

	for i, r := range tr.Requests {
		if i == warm {
			hits, requests = 0, 0
		}
		requests++
		if _, ok := resident[r.ID]; ok {
			hits++
			if next[i] >= n {
				// Never requested again: free the space immediately (the
				// clairvoyant policy would evict it next anyway).
				bytes -= resident[r.ID]
				delete(resident, r.ID)
				delete(nextUse, r.ID)
			} else {
				nextUse[r.ID] = next[i]
				heap.Push(h, heapEntry{id: r.ID, next: next[i]})
			}
			continue
		}
		// Miss. Admit only objects that will be requested again and fit.
		if next[i] >= n || r.Size > capacity {
			continue
		}
		for bytes+r.Size > capacity {
			// Evict the valid entry with the farthest next use; skip stale
			// heap entries (lazy deletion).
			top := heap.Pop(h).(heapEntry)
			cur, ok := nextUse[top.id]
			if !ok || cur != top.next {
				continue
			}
			// Don't evict something needed sooner than the newcomer — then
			// the newcomer is the worst choice, so skip admitting it.
			if top.next < next[i] {
				heap.Push(h, top)
				break
			}
			bytes -= resident[top.id]
			delete(resident, top.id)
			delete(nextUse, top.id)
		}
		if bytes+r.Size > capacity {
			continue // newcomer was the farthest-use object; not admitted
		}
		resident[r.ID] = r.Size
		nextUse[r.ID] = next[i]
		bytes += r.Size
		heap.Push(h, heapEntry{id: r.ID, next: next[i]})
	}
	return hits, requests
}

// heapEntry is one (possibly stale) residency record in the farthest heap.
type heapEntry struct {
	id   uint64
	next int
}

// farthestHeap is a max-heap on next request index.
type farthestHeap []heapEntry

func (h farthestHeap) Len() int           { return len(h) }
func (h farthestHeap) Less(i, j int) bool { return h[i].next > h[j].next }
func (h farthestHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *farthestHeap) Push(x any)        { *h = append(*h, x.(heapEntry)) }
func (h *farthestHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// OfflineOptimalOHR is OfflineOptimal expressed as a hit rate.
func OfflineOptimalOHR(tr *trace.Trace, capacity int64, warmupFrac float64) float64 {
	hits, requests := OfflineOptimal(tr, capacity, warmupFrac)
	if requests == 0 {
		return 0
	}
	return float64(hits) / float64(requests)
}
