package cache

import (
	"math"
	"strings"
	"testing"

	"darwin/internal/trace"
	"darwin/internal/tracegen"
)

func TestEvaluateWarmupExcluded(t *testing.T) {
	tr := &trace.Trace{Name: "t"}
	for i := 0; i < 100; i++ {
		tr.Requests = append(tr.Requests, trace.Request{ID: 1, Size: 10, Time: int64(i)})
	}
	m, err := Evaluate(tr, Expert{Freq: 1, MaxSize: 100}, EvalConfig{
		HOCBytes: 1000, DCBytes: 10000, WarmupFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 90 {
		t.Fatalf("Requests = %d, want 90 (warm-up excluded)", m.Requests)
	}
	// After warm-up the single object is HOC-resident: all 90 are hits.
	if m.HOCHits != 90 {
		t.Fatalf("HOCHits = %d, want 90", m.HOCHits)
	}
}

func TestEvaluateAllOrder(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 5000, 8)
	if err != nil {
		t.Fatal(err)
	}
	experts := []Expert{
		{Freq: 1, MaxSize: 100 << 10},
		{Freq: 7, MaxSize: 1 << 10},
	}
	ms, err := EvaluateAll(tr, experts, DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d metrics", len(ms))
	}
	// The permissive expert should admit at least as much as the strict one.
	if ms[0].HOCAdmits < ms[1].HOCAdmits {
		t.Fatalf("permissive expert admitted %d < strict %d", ms[0].HOCAdmits, ms[1].HOCAdmits)
	}
}

func TestEvaluateRejectsBadConfig(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{{ID: 1, Size: 1}}}
	if _, err := Evaluate(tr, Expert{}, EvalConfig{HOCBytes: 0, DCBytes: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestEvaluateJointConsistency(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(30, 20000, 12)
	if err != nil {
		t.Fatal(err)
	}
	ei := Expert{Freq: 2, MaxSize: 10 << 10}
	ej := Expert{Freq: 4, MaxSize: 2 << 10}
	cfg := DefaultEvalConfig()
	js, err := EvaluateJoint(tr, ei, ej, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if js.Requests != js.IHitJHit+js.IHitJMiss+js.IMissJHit+js.IMissJMiss {
		t.Fatal("joint counts do not partition the requests")
	}
	// Marginals from the joint run must match independent evaluations.
	mi, err := Evaluate(tr, ei, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mj, err := Evaluate(tr, ej, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(js.IHitRate-mi.OHR()) > 1e-12 {
		t.Fatalf("IHitRate %.6f != independent OHR %.6f", js.IHitRate, mi.OHR())
	}
	if math.Abs(js.JHitRate-mj.OHR()) > 1e-12 {
		t.Fatalf("JHitRate %.6f != independent OHR %.6f", js.JHitRate, mj.OHR())
	}
	// Law of total probability: P(j hit) = P(i hit)P(j|i hit)+P(i miss)P(j|i miss).
	reconstructed := js.IHitRate*js.PJHitGivenIHit + (1-js.IHitRate)*js.PJHitGivenIMiss
	if math.Abs(reconstructed-js.JHitRate) > 1e-9 {
		t.Fatalf("total probability violated: %.6f vs %.6f", reconstructed, js.JHitRate)
	}
	if js.SideInformationVariance < 0 || js.SideInformationVariance > 0.25 {
		t.Fatalf("sigma^2 = %v outside [0, 0.25]", js.SideInformationVariance)
	}
}

func TestCorrelatedExpertsShareHits(t *testing.T) {
	// Experts sharing a structure should be positively correlated (§4.1):
	// P(j hit | i hit) > P(j hit | i miss) for nested thresholds.
	tr, err := tracegen.ImageDownloadMix(50, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	js, err := EvaluateJoint(tr,
		Expert{Freq: 2, MaxSize: 10 << 10},
		Expert{Freq: 3, MaxSize: 5 << 10}, DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if js.PJHitGivenIHit <= js.PJHitGivenIMiss {
		t.Fatalf("expected positive correlation: P(j|i hit)=%.4f P(j|i miss)=%.4f",
			js.PJHitGivenIHit, js.PJHitGivenIMiss)
	}
}

func TestImageTracePreferHigherFreq(t *testing.T) {
	// §3.1: the Image class is best served with a higher frequency threshold
	// and a small size threshold; a tiny size threshold should beat a huge
	// one because large rare objects pollute the HOC.
	tr, err := tracegen.ImageDownloadMix(100, 60000, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EvalConfig{HOCBytes: 256 << 10, DCBytes: 64 << 20, WarmupFrac: 0.1}
	small, err := Evaluate(tr, Expert{Freq: 4, MaxSize: 2 << 10}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := Evaluate(tr, Expert{Freq: 1, MaxSize: 1 << 20}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if small.OHR() <= huge.OHR() {
		t.Fatalf("image trace: selective expert OHR %.4f should beat permissive %.4f",
			small.OHR(), huge.OHR())
	}
}

// TestEvaluateAllSerialParallelIdentical is the golden equivalence check for
// the engine-backed expert sweep: every expert replays an independent cold
// hierarchy, so worker scheduling must not change a single counter.
func TestEvaluateAllSerialParallelIdentical(t *testing.T) {
	tr, err := tracegen.ImageDownloadMix(50, 20_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	experts := Grid([]int{1, 2, 3}, []int64{2 << 10, 50 << 10, 1 << 20})
	cfg := EvalConfig{HOCBytes: 128 << 10, DCBytes: 8 << 20, WarmupFrac: 0.1}

	serial, err := EvaluateAllParallel(tr, experts, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 16} {
		got, err := EvaluateAllParallel(tr, experts, cfg, p)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("parallelism %d: expert %s metrics diverge:\n got %+v\nwant %+v",
					p, experts[i], got[i], serial[i])
			}
		}
	}
}

// TestEvaluateAllAggregatesErrors verifies the sweep reports every failing
// expert with its identity, not just the first failure.
func TestEvaluateAllAggregatesErrors(t *testing.T) {
	tr := &trace.Trace{Name: "t", Requests: []trace.Request{{ID: 1, Size: 100}}}
	experts := Grid([]int{1, 2}, []int64{1 << 10})
	// Invalid capacities make every expert evaluation fail.
	_, err := EvaluateAll(tr, experts, EvalConfig{HOCBytes: 0, DCBytes: 0})
	if err == nil {
		t.Fatal("want error for zero capacities")
	}
	for _, e := range experts {
		if !strings.Contains(err.Error(), "expert "+e.String()) {
			t.Fatalf("aggregated error missing expert %s: %v", e, err)
		}
	}
}
