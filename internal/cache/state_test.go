package cache

import (
	"encoding/json"
	"reflect"
	"testing"

	"darwin/internal/trace"
)

func serveSynthetic(t *testing.T, e Engine, n int, seed uint64) {
	t.Helper()
	x := seed
	for i := 0; i < n; i++ {
		// xorshift64 id stream with a zipf-ish fold, sized 1..16KiB.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		id := x % 500
		e.Serve(trace.Request{ID: id, Size: int64(1024 + id*13%15360)})
	}
}

func newStateTestConfig() Config {
	return Config{
		HOCBytes:     64 << 10,
		DCBytes:      1 << 20,
		Expert:       Expert{Freq: 1, MaxSize: 32 << 10},
		BloomObjects: 1 << 12,
	}
}

// TestHierarchyStateRoundTrip: a restored hierarchy is behaviourally
// indistinguishable from the original — same metrics, same residency, and
// identical results on a continued request stream.
func TestHierarchyStateRoundTrip(t *testing.T) {
	cfg := newStateTestConfig()
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveSynthetic(t, orig, 20_000, 0x9e3779b97f4a7c15)

	st, err := orig.State()
	if err != nil {
		t.Fatal(err)
	}
	// Serialise through JSON, as the checkpoint file does.
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded HierarchyState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(&decoded); err != nil {
		t.Fatal(err)
	}

	if restored.Metrics() != orig.Metrics() {
		t.Fatalf("metrics diverge:\n restored %+v\n original %+v", restored.Metrics(), orig.Metrics())
	}
	if restored.HOCBytes() != orig.HOCBytes() || restored.DCBytes() != orig.DCBytes() ||
		restored.HOCLen() != orig.HOCLen() || restored.DCLen() != orig.DCLen() {
		t.Fatal("occupancy diverges after restore")
	}
	if restored.Expert() != orig.Expert() {
		t.Fatal("expert diverges after restore")
	}

	// Continued identical streams must produce identical outcomes — the
	// save→restore is bit-identical for every decision input.
	x := uint64(0xdeadbeefcafe)
	for i := 0; i < 20_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		id := x % 700
		r := trace.Request{ID: id, Size: int64(1024 + id*13%15360)}
		if a, b := orig.Serve(r), restored.Serve(r); a != b {
			t.Fatalf("request %d: original served %v, restored served %v", i, a, b)
		}
	}
	if restored.Metrics() != orig.Metrics() {
		t.Fatalf("post-continuation metrics diverge:\n restored %+v\n original %+v", restored.Metrics(), orig.Metrics())
	}

	// Snapshot-of-restore equals snapshot-of-original (bit-identical state).
	stA, err := orig.State()
	if err != nil {
		t.Fatal(err)
	}
	stB, err := restored.State()
	if err != nil {
		t.Fatal(err)
	}
	blobA, _ := json.Marshal(stA)
	blobB, _ := json.Marshal(stB)
	if string(blobA) != string(blobB) {
		t.Fatal("re-snapshot after restore is not bit-identical")
	}
}

func TestHierarchyStateApproxTracker(t *testing.T) {
	cfg := newStateTestConfig()
	cfg.Tracker = NewApproxTracker(1 << 10)
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveSynthetic(t, orig, 5_000, 42)
	st, err := orig.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tracker.Kind != "approx" {
		t.Fatalf("tracker kind = %q", st.Tracker.Kind)
	}
	cfg2 := newStateTestConfig()
	cfg2.Tracker = NewApproxTracker(1 << 10)
	restored, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if restored.Metrics() != orig.Metrics() {
		t.Fatal("metrics diverge for approx tracker restore")
	}
}

// TestHierarchyRestoreRejectsCorruptState: every malformed snapshot is
// rejected whole — the target hierarchy keeps serving its own state.
func TestHierarchyRestoreRejectsCorruptState(t *testing.T) {
	cfg := newStateTestConfig()
	donor, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveSynthetic(t, donor, 5_000, 7)
	good, err := donor.State()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := []struct {
		name string
		mut  func(st *HierarchyState)
	}{
		{"capacity-mismatch", func(st *HierarchyState) { st.HOCBytes++ }},
		{"eviction-mismatch", func(st *HierarchyState) { st.DCEviction = "lfu" }},
		{"negative-size", func(st *HierarchyState) { st.DC[0].Size = -5 }},
		{"duplicate-entry", func(st *HierarchyState) { st.DC[1] = st.DC[0] }},
		{"overflow", func(st *HierarchyState) { st.HOC[0].Size = st.HOCBytes + 1 }},
		{"bloom-garbage", func(st *HierarchyState) { st.Seen.Bits = st.Seen.Bits[:8] }},
		{"bloom-bad-k", func(st *HierarchyState) { st.Seen.K = 99 }},
		{"tracker-nil", func(st *HierarchyState) { st.Tracker = nil }},
		{"tracker-kind", func(st *HierarchyState) { st.Tracker.Kind = "quantum" }},
		{"tracker-arrays", func(st *HierarchyState) { st.Tracker.Counts = st.Tracker.Counts[:1] }},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			target, err := New(newStateTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			serveSynthetic(t, target, 1_000, 99)
			before, err := target.State()
			if err != nil {
				t.Fatal(err)
			}
			blobBefore, _ := json.Marshal(before)

			// Deep-copy the good snapshot via JSON, then corrupt it.
			blob, _ := json.Marshal(good)
			var bad HierarchyState
			if err := json.Unmarshal(blob, &bad); err != nil {
				t.Fatal(err)
			}
			tc.mut(&bad)
			if err := target.RestoreState(&bad); err == nil {
				t.Fatal("corrupt state accepted")
			}
			after, err := target.State()
			if err != nil {
				t.Fatal(err)
			}
			blobAfter, _ := json.Marshal(after)
			if string(blobBefore) != string(blobAfter) {
				t.Fatal("failed restore mutated the hierarchy (half-applied state)")
			}
		})
	}
}

func TestShardedStateRoundTrip(t *testing.T) {
	cfg := newStateTestConfig()
	orig, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	serveSynthetic(t, orig, 30_000, 0xabcdef)

	st, err := orig.State()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if restored.Metrics() != orig.Metrics() {
		t.Fatalf("metrics diverge:\n restored %+v\n original %+v", restored.Metrics(), orig.Metrics())
	}
	// The lock-free mirrors must have been republished.
	if restored.ShardMetrics(0) != orig.ShardMetrics(0) {
		t.Fatal("shard 0 mirror not republished after restore")
	}
	x := uint64(31337)
	for i := 0; i < 10_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		id := x % 900
		r := trace.Request{ID: id, Size: int64(512 + id%8192)}
		if a, b := orig.Serve(r), restored.Serve(r); a != b {
			t.Fatalf("request %d diverged after sharded restore", i)
		}
	}

	wrong, err := NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.RestoreState(st); err == nil {
		t.Fatal("4-shard snapshot accepted by 2-shard engine")
	}
}

func TestRestoreDCKeepsNewestSuffix(t *testing.T) {
	cfg := newStateTestConfig()
	cfg.DCBytes = 1000
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Oldest-first journal live set totalling 1500 bytes: the oldest 500
	// must be dropped, the newest kept.
	entries := []ResidentObject{{ID: 1, Size: 500}, {ID: 2, Size: 400}, {ID: 3, Size: 600}}
	if err := h.RestoreDC(entries); err != nil {
		t.Fatal(err)
	}
	if h.Lookup(1) != Miss {
		t.Fatal("oldest entry should have been dropped")
	}
	if h.Lookup(2) != DCHit || h.Lookup(3) != DCHit {
		t.Fatal("newest entries should be DC-resident")
	}
	if h.DCBytes() != 1000 {
		t.Fatalf("DCBytes = %d, want 1000", h.DCBytes())
	}
	if err := h.RestoreDC([]ResidentObject{{ID: 9, Size: 0}}); err == nil {
		t.Fatal("zero-size journal entry accepted")
	}
}

// fakeDCLog records journal calls for hook-order assertions.
type fakeDCLog struct {
	puts, removes []uint64
}

func (f *fakeDCLog) Put(id uint64, size int64) { f.puts = append(f.puts, id) }
func (f *fakeDCLog) Remove(id uint64)          { f.removes = append(f.removes, id) }

func TestDCLogJournalHooks(t *testing.T) {
	log := &fakeDCLog{}
	h, err := New(Config{
		HOCBytes: 1 << 10,
		DCBytes:  1000,
		Expert:   Expert{Freq: 1 << 30, MaxSize: 1}, // never admit to HOC
		DCLog:    log,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := func(id uint64, size int64) {
		h.Serve(trace.Request{ID: id, Size: size})
	}
	// Second request admits to DC (bloom), journaling a put.
	req(1, 600)
	req(1, 600)
	if !reflect.DeepEqual(log.puts, []uint64{1}) {
		t.Fatalf("puts = %v, want [1]", log.puts)
	}
	// Admitting a second object evicts the first: journal remove then put.
	req(2, 600)
	req(2, 600)
	if !reflect.DeepEqual(log.removes, []uint64{1}) {
		t.Fatalf("removes = %v, want [1]", log.removes)
	}
	if !reflect.DeepEqual(log.puts, []uint64{1, 2}) {
		t.Fatalf("puts = %v, want [1 2]", log.puts)
	}
	// RestoreDC must not journal.
	np, nr := len(log.puts), len(log.removes)
	if err := h.RestoreDC([]ResidentObject{{ID: 5, Size: 10}}); err != nil {
		t.Fatal(err)
	}
	if len(log.puts) != np || len(log.removes) != nr {
		t.Fatal("RestoreDC wrote to the journal")
	}
}

// TestMergeDC: the drain-handoff merge admits donor residents the inheritor
// lacks, skips ones it already holds, evicts locals only under capacity
// pressure, and rejects invalid entries without mutating anything.
func TestMergeDC(t *testing.T) {
	cfg := newStateTestConfig()
	donor, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inheritor, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveSynthetic(t, donor, 20_000, 0x9e3779b97f4a7c15)
	serveSynthetic(t, inheritor, 20_000, 0x123456789abcdef)

	st, err := donor.State()
	if err != nil {
		t.Fatal(err)
	}
	entries := append(append([]ResidentObject{}, st.HOC...), st.DC...)
	if len(entries) == 0 {
		t.Fatal("donor has no residents to merge")
	}

	// An invalid entry must reject the whole merge without touching state.
	preBytes, preLen := inheritor.DCBytes(), inheritor.DCLen()
	bad := append(append([]ResidentObject{}, entries...), ResidentObject{ID: 999999, Size: 0})
	if _, err := inheritor.MergeDC(bad); err == nil {
		t.Fatal("zero-size merge entry accepted")
	}
	if inheritor.DCBytes() != preBytes || inheritor.DCLen() != preLen {
		t.Fatal("rejected merge mutated the inheritor")
	}

	added, err := inheritor.MergeDC(entries)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("merge admitted nothing")
	}
	for _, e := range entries {
		if e.Size > cfg.DCBytes {
			continue
		}
		if inheritor.Lookup(e.ID) == Miss {
			// Capacity pressure may have evicted the least-protected; the
			// donor's most-protected tail (end of the victim-first list) must
			// survive.
			continue
		}
	}
	// The most-protected donor DC resident is resident on the inheritor.
	if n := len(st.DC); n > 0 {
		if inheritor.Lookup(st.DC[n-1].ID) == Miss {
			t.Fatalf("most-protected donor object %d not resident after merge", st.DC[n-1].ID)
		}
	}
	if inheritor.DCBytes() > cfg.DCBytes {
		t.Fatalf("merge overflowed DC: %d > %d", inheritor.DCBytes(), cfg.DCBytes)
	}
	// A merge that fits entirely is idempotent: re-merging admits nothing.
	cold, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := []ResidentObject{{ID: 1, Size: 100}, {ID: 2, Size: 200}, {ID: 3, Size: 300}}
	if n, err := cold.MergeDC(small); err != nil || n != 3 {
		t.Fatalf("small merge: n=%d err=%v", n, err)
	}
	if n, err := cold.MergeDC(small); err != nil || n != 0 {
		t.Fatalf("re-merge: n=%d err=%v, want 0 admits", n, err)
	}
}

// TestShardedMergeDC: entries route to their owning shards and the merged
// engine answers lookups for donor residents.
func TestShardedMergeDC(t *testing.T) {
	cfg := newStateTestConfig()
	cfg.DCBytes = 4 << 20 // roomy: the whole donor set fits, no merge churn
	donor, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	inheritor, err := NewSharded(cfg, 2) // shard counts need not match
	if err != nil {
		t.Fatal(err)
	}
	serveSynthetic(t, donor, 20_000, 0x9e3779b97f4a7c15)

	st, err := donor.State()
	if err != nil {
		t.Fatal(err)
	}
	var entries []ResidentObject
	for _, sh := range st.Shards {
		entries = append(entries, sh.HOC...)
		entries = append(entries, sh.DC...)
	}
	added, err := inheritor.MergeDC(entries)
	if err != nil {
		t.Fatal(err)
	}
	// Everything fits: each unique donor object (an id can appear in both
	// HOC and DC lists) is admitted exactly once and answers lookups.
	unique := map[uint64]bool{}
	for _, e := range entries {
		unique[e.ID] = true
	}
	if added != len(unique) {
		t.Fatalf("cold inheritor admitted %d entries, want %d unique", added, len(unique))
	}
	for id := range unique {
		if inheritor.Lookup(id) == Miss {
			t.Fatalf("donor object %d not resident after sharded merge", id)
		}
	}
}
