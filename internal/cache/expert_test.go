package cache

import (
	"testing"
	"testing/quick"
)

func TestExpertAdmit(t *testing.T) {
	e := Expert{Freq: 2, MaxSize: 100}
	cases := []struct {
		count int
		size  int64
		want  bool
	}{
		{1, 50, false}, // too few requests
		{2, 50, false}, // count must be strictly greater than f
		{3, 50, true},
		{3, 100, true},  // size at threshold is admitted
		{3, 101, false}, // size above threshold
	}
	for _, c := range cases {
		if got := e.Admit(c.count, c.size, -1); got != c.want {
			t.Errorf("Admit(%d,%d) = %v, want %v", c.count, c.size, got, c.want)
		}
	}
}

func TestExpertString(t *testing.T) {
	cases := []struct {
		e    Expert
		want string
	}{
		{Expert{Freq: 2, MaxSize: 50 << 10}, "f2s50k"},
		{Expert{Freq: 1, MaxSize: 5 << 20}, "f1s5M"},
		{Expert{Freq: 3, MaxSize: 777}, "f3s777"},
		{Expert{Freq: 2, MaxSize: 1 << 10, MaxAge: 500}, "f2s1kr500"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid([]int{2, 3}, []int64{10, 20, 30})
	if len(g) != 6 {
		t.Fatalf("len = %d, want 6", len(g))
	}
	seen := map[Expert]bool{}
	for _, e := range g {
		if seen[e] {
			t.Fatalf("duplicate expert %v", e)
		}
		seen[e] = true
	}
}

func TestDefaultGridMatchesPaperShape(t *testing.T) {
	g := DefaultGrid()
	if len(g) != 36 {
		t.Fatalf("default grid has %d experts, want 36 (6 freqs x 6 sizes)", len(g))
	}
}

func TestGrid3(t *testing.T) {
	g := Grid3([]int{2, 3}, []int64{10, 20}, []int64{100, 200, 300})
	if len(g) != 12 {
		t.Fatalf("len = %d, want 12", len(g))
	}
}

func TestIndex(t *testing.T) {
	g := DefaultGrid()
	for i, e := range g {
		if Index(g, e) != i {
			t.Fatalf("Index(%v) != %d", e, i)
		}
	}
	if Index(g, Expert{Freq: 99, MaxSize: 1}) != -1 {
		t.Fatal("Index of absent expert should be -1")
	}
}

func TestNearestExact(t *testing.T) {
	g := DefaultGrid()
	for _, e := range g {
		got := Nearest(g, float64(e.Freq), float64(e.MaxSize))
		if got != e {
			t.Fatalf("Nearest(%v) = %v", e, got)
		}
	}
}

func TestNearestOffGrid(t *testing.T) {
	g := Grid([]int{2, 5}, []int64{10, 1000})
	got := Nearest(g, 4.6, 900)
	if got != (Expert{Freq: 5, MaxSize: 1000}) {
		t.Fatalf("Nearest = %v", got)
	}
	if Nearest(nil, 1, 1) != (Expert{}) {
		t.Fatal("Nearest of empty set should be zero expert")
	}
}

// Admission is monotone: raising the frequency requirement or lowering the
// size threshold can only reject more.
func TestAdmissionMonotoneProperty(t *testing.T) {
	f := func(count uint8, size uint16, freq uint8, maxSize uint16) bool {
		c, s := int(count), int64(size)
		e1 := Expert{Freq: int(freq % 8), MaxSize: int64(maxSize)}
		e2 := Expert{Freq: e1.Freq + 1, MaxSize: e1.MaxSize / 2}
		if e2.Admit(c, s, -1) && !e1.Admit(c, s, -1) {
			return false // stricter expert admitted what looser rejected
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
