package cache

import (
	"fmt"
	"sort"
)

// Expert is a HOC admission policy parameterised by decision knobs (§4 of the
// paper): an object is promoted into the HOC when it has been requested more
// than Freq times (i.e. upon its (1+Freq)-th request, matching the paper's
// bloom-filter footnote), its size is at most MaxSize bytes, and — when the
// optional third recency knob is enabled — it was last requested at most
// MaxAge requests ago.
type Expert struct {
	// Freq is the frequency threshold f. Admit when observed request count
	// is strictly greater than Freq.
	Freq int
	// MaxSize is the size threshold s in bytes. Admit when size <= MaxSize.
	MaxSize int64
	// MaxAge is the optional recency threshold r, measured in requests since
	// the object's previous request. Zero disables the knob.
	MaxAge int64
}

// Admit reports whether an object with the given observed request count
// (including the current request), size, and age (requests since previous
// request of the same object; <0 when never seen) should enter the HOC.
func (e Expert) Admit(count int, size int64, age int64) bool {
	if count <= e.Freq {
		return false
	}
	if size > e.MaxSize {
		return false
	}
	if e.MaxAge > 0 && (age < 0 || age > e.MaxAge) {
		return false
	}
	return true
}

// String renders the expert as "f2s50k" (or "f2s50kr1000" with recency).
func (e Expert) String() string {
	s := fmt.Sprintf("f%ds%s", e.Freq, humanSize(e.MaxSize))
	if e.MaxAge > 0 {
		s += fmt.Sprintf("r%d", e.MaxAge)
	}
	return s
}

func humanSize(b int64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dk", b>>10)
	default:
		return fmt.Sprintf("%d", b)
	}
}

// Grid builds the cross product of frequency and size thresholds, the
// paper's 36-expert static grid (f=2..7 × six size thresholds, §6
// "Baselines").
func Grid(freqs []int, sizes []int64) []Expert {
	out := make([]Expert, 0, len(freqs)*len(sizes))
	for _, f := range freqs {
		for _, s := range sizes {
			out = append(out, Expert{Freq: f, MaxSize: s})
		}
	}
	return out
}

// Grid3 builds a three-knob grid including recency thresholds (Appendix A.3,
// Figure 11).
func Grid3(freqs []int, sizes []int64, ages []int64) []Expert {
	out := make([]Expert, 0, len(freqs)*len(sizes)*len(ages))
	for _, f := range freqs {
		for _, s := range sizes {
			for _, a := range ages {
				out = append(out, Expert{Freq: f, MaxSize: s, MaxAge: a})
			}
		}
	}
	return out
}

// DefaultGrid returns the scaled 36-expert grid used across the reproduction
// (DESIGN.md §5): f ∈ 2..7, six size thresholds from 2 KB to 1 MB spanning
// both traffic classes' object sizes (the paper's grid spans 10 KB–1 MB over
// ~10x larger objects).
func DefaultGrid() []Expert {
	return Grid(
		[]int{2, 3, 4, 5, 6, 7},
		[]int64{2 << 10, 5 << 10, 10 << 10, 50 << 10, 200 << 10, 1 << 20},
	)
}

// Index returns the position of e in experts, or -1.
func Index(experts []Expert, e Expert) int {
	for i, x := range experts {
		if x == e {
			return i
		}
	}
	return -1
}

// Nearest returns the expert in experts whose (Freq, MaxSize) is closest to
// the requested thresholds — used by the Percentile baseline to map empirical
// percentiles onto the available expert grid. Distance is measured in rank
// space over the distinct knob values so that the very different scales of f
// and s don't dominate one another.
func Nearest(experts []Expert, freq float64, size float64) Expert {
	if len(experts) == 0 {
		return Expert{}
	}
	fr := distinctInts(experts)
	sr := distinctSizes(experts)
	frank := rankOf(fr, freq)
	srank := rankOfSizes(sr, size)
	best, bestD := experts[0], 1e18
	for _, e := range experts {
		df := rankOf(fr, float64(e.Freq)) - frank
		ds := rankOfSizes(sr, float64(e.MaxSize)) - srank
		d := df*df + ds*ds
		if d < bestD {
			bestD = d
			best = e
		}
	}
	return best
}

func distinctInts(experts []Expert) []float64 {
	seen := map[int]bool{}
	var out []float64
	for _, e := range experts {
		if !seen[e.Freq] {
			seen[e.Freq] = true
			out = append(out, float64(e.Freq))
		}
	}
	sort.Float64s(out)
	return out
}

func distinctSizes(experts []Expert) []float64 {
	seen := map[int64]bool{}
	var out []float64
	for _, e := range experts {
		if !seen[e.MaxSize] {
			seen[e.MaxSize] = true
			out = append(out, float64(e.MaxSize))
		}
	}
	sort.Float64s(out)
	return out
}

// rankOf returns the fractional rank of v among the sorted distinct values.
func rankOf(sorted []float64, v float64) float64 {
	for i, x := range sorted {
		if v <= x {
			return float64(i)
		}
	}
	return float64(len(sorted) - 1)
}

func rankOfSizes(sorted []float64, v float64) float64 { return rankOf(sorted, v) }
